module mnemo

go 1.22
