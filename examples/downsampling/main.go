// Downsampling: §V's practical concern — real traces have millions of
// requests, so users profile with a sampled version. This example
// downsizes the Edit Thumbnail trace by increasing factors and shows the
// advised sizing staying put while profiling cost drops proportionally.
//
//	go run ./examples/downsampling
package main

import (
	"fmt"
	"log"

	"mnemo"
)

func main() {
	full, err := mnemo.WorkloadByName("edit_thumbnail", 23)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Profiling edit_thumbnail on redis-like at increasing sampling factors")
	fmt.Printf("%-8s %10s %14s %14s %16s\n",
		"factor", "requests", "cost factor", "FastMem MiB", "baseline ops/s")

	for _, factor := range []int{1, 2, 5, 10, 20} {
		w := full
		if factor > 1 {
			// The paper's scheme: evict random requests at fixed
			// intervals, preserving ordering and the key distribution.
			w = full.Downsample(factor, int64(factor))
		}
		rep, err := mnemo.Profile(w, mnemo.Options{Store: mnemo.RedisLike, Seed: 23, SLO: 0.10})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %10d %14.3f %14.1f %16.0f\n",
			factor, w.RequestCount(),
			rep.Advice.Point.CostFactor,
			float64(rep.Advice.Point.FastBytes)/(1<<20),
			rep.Baselines.Fast.ThroughputOpsSec)
	}

	fmt.Println("\nThe advised cost factor barely moves while the trace (and the")
	fmt.Println("Sensitivity Engine's execution time) shrinks by the factor — the")
	fmt.Println("paper's argument that downsized workloads keep Mnemo's trade-offs valid.")
}
