// Cloud-sizing: combine the paper's two cost analyses. First reproduce
// the Fig 1 observation — memory dominates the price of Memory Optimized
// cloud VMs — then translate a Mnemo sizing into projected hourly savings
// for a concrete cache deployment.
//
//	go run ./examples/cloud-sizing
package main

import (
	"fmt"
	"log"

	"mnemo"
)

func main() {
	// Part 1 — Fig 1: how much of a Memory Optimized VM's price is memory?
	shares, err := mnemo.CloudMemoryShares()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Memory share of Memory Optimized VM cost (least-squares over 2018 catalogs):")
	provider := ""
	for _, s := range shares {
		if s.Provider != provider {
			provider = s.Provider
			fmt.Printf("  %s:\n", provider)
		}
		fmt.Printf("    %-18s %5.1f%%\n", s.Instance, s.MemoryShare*100)
	}

	// Part 2 — size a Redis-like cache for the Trending workload and
	// project the hosting savings for a VM whose memory is ~65% of cost.
	w, err := mnemo.WorkloadByName("trending", 7)
	if err != nil {
		log.Fatal(err)
	}

	// Suppose the operator has actual price quotes: NVM at $1.6/GB vs
	// DRAM at $8/GB → p = 0.2, the paper's default.
	p, err := mnemo.PriceFactorFromHardware(1.6, 8.0)
	if err != nil {
		log.Fatal(err)
	}

	rep, err := mnemo.Profile(w, mnemo.Options{
		Store:       mnemo.RedisLike,
		Seed:        7,
		SLO:         0.10,
		PriceFactor: p,
	})
	if err != nil {
		log.Fatal(err)
	}
	a := rep.Advice

	const (
		vmHourly    = 6.30 // n1-ultramem-40-class instance, $/h
		memoryShare = 0.65 // from part 1
	)
	memHourly := vmHourly * memoryShare
	hybridMemHourly := memHourly * a.Point.CostFactor
	fmt.Println()
	fmt.Printf("Sizing trending on redis-like with p=%.2f:\n", p)
	fmt.Printf("  advised FastMem:   %.1f MiB of %.1f MiB (%d of %d keys)\n",
		float64(a.Point.FastBytes)/(1<<20), float64(w.Dataset.TotalBytes)/(1<<20),
		a.Point.KeysInFast, len(w.Dataset.Records))
	fmt.Printf("  memory cost:       %.1f%% of DRAM-only\n", a.Point.CostFactor*100)
	fmt.Printf("  estimated perf:    %.0f ops/s (FastMem-only: %.0f ops/s)\n",
		a.Point.EstThroughputOps, rep.Baselines.Fast.ThroughputOpsSec)
	fmt.Println()
	fmt.Printf("Projected onto a $%.2f/h memory-optimized VM (%.0f%% memory):\n", vmHourly, memoryShare*100)
	fmt.Printf("  DRAM-only memory spend:  $%.2f/h\n", memHourly)
	fmt.Printf("  hybrid memory spend:     $%.2f/h\n", hybridMemHourly)
	fmt.Printf("  saving:                  $%.2f/h (%.0f%% of the VM bill)\n",
		memHourly-hybridMemHourly, (memHourly-hybridMemHourly)/vmHourly*100)
}
