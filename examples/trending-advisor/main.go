// Trending-advisor: the Fig 9 workflow as an operator would run it —
// profile every Table III social-media workload on every store engine
// and report where hybrid memory saves money and where it doesn't.
//
//	go run ./examples/trending-advisor
package main

import (
	"fmt"
	"log"

	"mnemo"
)

func main() {
	fmt.Println("Advised memory cost under a 10% slowdown SLO")
	fmt.Println("(1.00 = DRAM-only cost; 0.20 = everything on the cheap tier)")
	fmt.Println()
	fmt.Printf("%-18s %12s %16s %15s\n", "workload", "Redis-like", "Memcached-like", "DynamoDB-like")

	type cell struct {
		cost    float64
		fastMiB float64
	}
	best := struct {
		workload string
		engine   string
		cost     float64
	}{cost: 2}

	for _, name := range mnemo.WorkloadNames() {
		w, err := mnemo.WorkloadByName(name, 42)
		if err != nil {
			log.Fatal(err)
		}
		cells := make([]cell, 0, 3)
		for _, engine := range mnemo.Engines() {
			rep, err := mnemo.Profile(w, mnemo.Options{Store: engine, Seed: 42, SLO: 0.10})
			if err != nil {
				log.Fatal(err)
			}
			c := cell{
				cost:    rep.Advice.Point.CostFactor,
				fastMiB: float64(rep.Advice.Point.FastBytes) / (1 << 20),
			}
			cells = append(cells, c)
			if c.cost < best.cost {
				best.workload, best.engine, best.cost = name, engine.String(), c.cost
			}
		}
		fmt.Printf("%-18s %12.3f %16.3f %15.3f\n", name, cells[0].cost, cells[1].cost, cells[2].cost)
	}

	fmt.Println()
	fmt.Printf("Deepest savings: %s on %s at %.1f%% of DRAM-only cost.\n",
		best.workload, best.engine, best.cost*100)
	fmt.Println()
	fmt.Println("Reading the table the way the paper does:")
	fmt.Println(" * Memcached-like overlaps memory stalls across worker threads, so it")
	fmt.Println("   runs whole datasets from the slow tier within the SLO (cost 0.20).")
	fmt.Println(" * news_feed ('latest' pattern) spreads its hot set across the whole")
	fmt.Println("   key space over time — static tiering can save very little.")
	fmt.Println(" * DynamoDB-like amplifies every record access through its layered")
	fmt.Println("   request path, so it tolerates the least slow memory.")
}
