// Quickstart: profile the paper's Trending workload on the Redis-like
// store and print the advised FastMem sizing plus the head of the
// cost/performance curve — the 30-second tour of the library.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mnemo"
)

func main() {
	// 1. A workload descriptor: Table III's Trending — a hotspot read-only
	//    trace over 10 000 ≈100 KB thumbnails. (Use GenerateWorkload or
	//    LoadWorkloadCSV for your own traces.)
	w, err := mnemo.WorkloadByName("trending", 42)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Profile it: two real baseline executions on the emulated hybrid
	//    memory testbed, then the analytical estimate, then the advisor
	//    with the paper's 10% slowdown SLO.
	rep, err := mnemo.Profile(w, mnemo.Options{
		Store: mnemo.RedisLike,
		Seed:  42,
		SLO:   0.10,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Workload:  %s (%d keys, %d requests)\n",
		rep.Workload, len(w.Dataset.Records), w.RequestCount())
	fmt.Printf("Baselines: FastMem-only %.0f ops/s | SlowMem-only %.0f ops/s (%.2fx slower)\n",
		rep.Baselines.Fast.ThroughputOpsSec,
		rep.Baselines.Slow.ThroughputOpsSec,
		rep.Baselines.SlowdownAllSlow())

	// 3. The advised sweet spot.
	a := rep.Advice
	fmt.Printf("\nAdvice for a %.0f%% slowdown budget:\n", a.MaxSlowdown*100)
	fmt.Printf("  keys in FastMem:   %d of %d\n", a.Point.KeysInFast, len(w.Dataset.Records))
	fmt.Printf("  FastMem capacity:  %.1f MiB of %.1f MiB total\n",
		float64(a.Point.FastBytes)/(1<<20), float64(w.Dataset.TotalBytes)/(1<<20))
	fmt.Printf("  memory cost:       %.1f%% of a DRAM-only system (%.0f%% savings)\n",
		a.Point.CostFactor*100, a.CostSavings*100)
	fmt.Printf("  est. throughput:   %.0f ops/s\n", a.Point.EstThroughputOps)

	// 4. A few rows of the paper's three-column output: pick any line
	//    that fits your budget.
	fmt.Println("\ncurve (every 2000th key):")
	fmt.Println("  keys_in_fast  cost_factor  est_ops/s")
	for k := 0; k < len(rep.Curve.Points); k += 2000 {
		p := rep.Curve.Points[k]
		fmt.Printf("  %12d  %11.3f  %9.0f\n", p.KeysInFast, p.CostFactor, p.EstThroughputOps)
	}
}
