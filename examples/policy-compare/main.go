// Policy-compare: profile one measured workload under several tiering
// policies through a single Session — the staged pipeline measures the
// Fast/Slow baselines exactly once, then each policy contributes only
// its ordering and estimate. The comparison lands on stdout as CSV
// (one row per policy per sampled curve point, plus the advised sizing)
// ready for a spreadsheet or gnuplot.
//
//	go run ./examples/policy-compare
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"mnemo"
)

func main() {
	w, err := mnemo.WorkloadByNameSized("trending", 42, 2_000, 20_000)
	if err != nil {
		log.Fatal(err)
	}

	// One session = one baseline measurement, shared by every policy.
	session, err := mnemo.NewSession(w, mnemo.Options{
		Store: mnemo.RedisLike,
		Seed:  42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Four registered policies plus an "external" ordering as a fifth —
	// the kind an existing tiering tool would hand over (here: the first
	// 100 dataset keys, deliberately naive).
	var policies []mnemo.TieringPolicy
	for _, name := range []string{"touch", "mnemot", "tahoe", "freqdecay"} {
		p, err := mnemo.PolicyByName(name, 42)
		if err != nil {
			log.Fatal(err)
		}
		policies = append(policies, p)
	}
	var naive []string
	for _, rec := range w.Dataset.Records[:100] {
		naive = append(naive, rec.Key)
	}
	policies = append(policies, mnemo.ExternalPolicy(naive))

	reports, err := session.Compare(context.Background(), 0.10, policies...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "compared %d policies with %d baseline measurement(s)\n",
		len(reports), session.MeasureCount())

	// CSV: the advised sizing per policy, then curves sampled every 5% of
	// the key space so the file stays plottable.
	fmt.Println("policy,kind,keys_in_fast,cost_factor,est_throughput_ops")
	for _, rep := range reports {
		a := rep.Advice.Point
		fmt.Printf("%s,advice,%d,%.4f,%.0f\n", rep.Policy, a.KeysInFast, a.CostFactor, a.EstThroughputOps)
	}
	for _, rep := range reports {
		step := len(rep.Curve.Points) / 20
		if step < 1 {
			step = 1
		}
		for i := 0; i < len(rep.Curve.Points); i += step {
			p := rep.Curve.Points[i]
			fmt.Printf("%s,curve,%d,%.4f,%.0f\n", rep.Policy, p.KeysInFast, p.CostFactor, p.EstThroughputOps)
		}
	}
}
