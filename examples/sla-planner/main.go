// SLA-planner: size memory against the SLAs operators actually sign —
// an absolute average-latency budget plus a p99 ceiling — using the
// latency advisor and the tail-estimation extension (the paper's model
// stops at averages; the extension predicts the percentiles).
//
//	go run ./examples/sla-planner
package main

import (
	"fmt"
	"log"

	"mnemo"
)

func main() {
	w, err := mnemo.WorkloadByName("trending", 31)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := mnemo.Profile(w, mnemo.Options{Store: mnemo.RedisLike, Seed: 31})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Profiled %s on %s: FastMem-only averages %.1f µs/request.\n\n",
		rep.Workload, rep.Engine, rep.Baselines.Fast.AvgNs/1000)

	// 1. Average-latency SLA sweep: "serve within X µs on average".
	fmt.Println("Average-latency SLA sweep:")
	fmt.Printf("  %-12s %14s %14s %12s\n", "budget µs", "cost factor", "FastMem MiB", "satisfiable")
	for _, budgetUs := range []float64{120, 130, 140, 150, 175} {
		a, err := mnemo.AdviseLatency(rep.Curve, budgetUs*1000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12.0f %14.3f %14.1f %12v\n",
			budgetUs, a.Point.CostFactor, float64(a.Point.FastBytes)/(1<<20), a.Satisfiable)
	}

	// 2. Check the advised sizings against a p99 ceiling using the tail
	//    estimator: averages can pass while tails bust the SLA.
	const p99CeilingUs = 320.0
	a, err := mnemo.AdviseLatency(rep.Curve, 140*1000)
	if err != nil {
		log.Fatal(err)
	}
	ks := []int{0, a.Point.KeysInFast, len(w.Dataset.Records)}
	tails, err := mnemo.EstimateTails(rep, ks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPredicted percentiles around the 140µs-average sizing (p99 ceiling %.0f µs):\n", p99CeilingUs)
	fmt.Printf("  %-14s %10s %10s %10s %10s\n", "keys in fast", "p50 µs", "p95 µs", "p99 µs", "p99 ok?")
	for _, tp := range tails {
		fmt.Printf("  %-14d %10.1f %10.1f %10.1f %10v\n",
			tp.KeysInFast, tp.P50Ns/1000, tp.P95Ns/1000, tp.P99Ns/1000,
			tp.P99Ns/1000 <= p99CeilingUs)
	}
	fmt.Println("\nThe published model answers the first table; the histogram-mixture")
	fmt.Println("extension answers the second — both from the same two baseline runs.")
}
