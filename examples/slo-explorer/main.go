// SLO-explorer: one profiling session, many answers. The estimate curve
// is computed once; the advisor then answers "what does an X% slowdown
// budget cost me?" for a whole sweep of SLOs and SlowMem price points —
// the exploration the paper argues existing tiering tools cannot do
// without reprofiling at every capacity ratio.
//
//	go run ./examples/slo-explorer
package main

import (
	"fmt"
	"log"

	"mnemo"
)

func main() {
	w, err := mnemo.WorkloadByName("timeline", 11)
	if err != nil {
		log.Fatal(err)
	}

	// Profile once with MnemoT's tiered ordering (Fig 2c): the curve is
	// reused for every question below — no further executions happen.
	rep, err := mnemo.Profile(w, mnemo.Options{
		Store:     mnemo.RedisLike,
		Seed:      11,
		UseMnemoT: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Profiled %s on %s once: Fast %.0f ops/s, Slow %.0f ops/s\n\n",
		rep.Workload, rep.Engine,
		rep.Baselines.Fast.ThroughputOpsSec, rep.Baselines.Slow.ThroughputOpsSec)

	// Sweep 1: slowdown budget vs advised cost at the paper's p = 0.2.
	fmt.Println("SLO sweep (p = 0.2):")
	fmt.Printf("  %-10s %12s %14s %12s\n", "slowdown", "cost factor", "FastMem MiB", "est ops/s")
	for _, slo := range []float64{0.01, 0.02, 0.05, 0.10, 0.20, 0.50} {
		a, err := mnemo.Advise(rep.Curve, slo)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %9.0f%% %12.3f %14.1f %12.0f\n",
			slo*100, a.Point.CostFactor,
			float64(a.Point.FastBytes)/(1<<20), a.Point.EstThroughputOps)
	}

	// Sweep 2: how does the sweet spot move as NVM pricing changes? The
	// curve's sizing is price-independent; only the cost labels change,
	// so R(p) is recomputed from the advised point's byte split.
	a, err := mnemo.Advise(rep.Curve, 0.10)
	if err != nil {
		log.Fatal(err)
	}
	total := w.Dataset.TotalBytes
	fmt.Println("\nPrice sweep at the 10% SLO sizing:")
	fmt.Printf("  %-22s %12s\n", "SlowMem price factor p", "cost factor")
	for _, p := range []float64{0.1, 0.2, 0.3, 0.5, 0.7} {
		fmt.Printf("  %22.1f %12.3f\n", p, mnemo.CostReduction(a.Point.FastBytes, total, p))
	}
	fmt.Println("\nEvery answer above came from the single profiling session at the top.")
}
