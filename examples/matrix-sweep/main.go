// Matrix-sweep: profile every built-in workload (the paper's Table III
// traces plus the stock YCSB core suite) on every store engine, in
// parallel, and print the advised-cost matrix — the whole Fig 9 pipeline
// as three library calls.
//
//	go run ./examples/matrix-sweep
package main

import (
	"fmt"
	"log"
	"time"

	"mnemo"
)

func main() {
	names := mnemo.AllWorkloadNames()
	fmt.Printf("Sweeping %d workloads × %d engines in parallel...\n\n",
		len(names), len(mnemo.Engines()))

	start := time.Now()
	cells, err := mnemo.ProfileMatrix(mnemo.MatrixRequest{
		Workloads: names,
		Options:   mnemo.Options{Seed: 42, SLO: 0.10},
	})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	// Arrange the advised cost factors into a matrix.
	fmt.Printf("%-18s %12s %16s %15s\n", "workload", "Redis-like", "Memcached-like", "DynamoDB-like")
	byWorkload := map[string]map[mnemo.Engine]float64{}
	for _, c := range cells {
		if c.Err != nil {
			log.Fatalf("%s/%v: %v", c.Workload, c.Engine, c.Err)
		}
		if byWorkload[c.Workload] == nil {
			byWorkload[c.Workload] = map[mnemo.Engine]float64{}
		}
		byWorkload[c.Workload][c.Engine] = c.Report.Advice.Point.CostFactor
	}
	for _, name := range names {
		row := byWorkload[name]
		fmt.Printf("%-18s %12.3f %16.3f %15.3f\n", name,
			row[mnemo.RedisLike], row[mnemo.MemcachedLike], row[mnemo.DynamoLike])
	}

	// Each cell ran two full baseline executions of a 100k-request trace.
	fmt.Printf("\n%d profiling sessions (%d baseline executions) in %v wall time.\n",
		len(cells), 2*len(cells), elapsed.Round(time.Millisecond))
	fmt.Println("Every session is independent and deterministic, so the matrix")
	fmt.Println("parallelizes across all cores with bit-identical results.")
}
