package mnemo

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"mnemo/internal/pool"
)

// chaosSpec is a deliberately tiny workload so hundreds of fault
// schedules stay fast under -race.
func chaosSpec(name string, seed int64) WorkloadSpec {
	return WorkloadSpec{
		Name: name, Keys: 60, Requests: 400,
		Dist:      DistSpec{Kind: Hotspot, HotSetFraction: 0.2, HotOpnFraction: 0.9},
		ReadRatio: 0.9, Sizes: SizeThumbnail, Seed: seed,
	}
}

// expectedChaosErr reports whether err is one of the typed failures a
// fault-injected profile is allowed to surface: an injected fault, a
// run-timeout cut, or the caller's own cancellation. Anything else —
// and in particular a captured panic — is a bug.
func expectedChaosErr(err error) bool {
	var fe *FaultError
	return errors.As(err, &fe) ||
		errors.Is(err, ErrRunTimeout) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// TestChaosMatrixSchedules drives ProfileMatrixContext through hundreds
// of randomized (but seeded, hence reproducible) fault schedules. The
// robustness contract under test: every cell ends with exactly one of a
// report or a typed error, no panic ever escapes (or is even captured),
// and the process does not leak goroutines.
func TestChaosMatrixSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep is a long test")
	}
	const schedules = 500

	warmup := runtime.NumGoroutine()

	for i := 0; i < schedules; i++ {
		rng := rand.New(rand.NewSource(int64(i)*7919 + 1))
		opts := Options{
			Seed: int64(i) + 1,
			Runs: 1 + rng.Intn(3),
			Fault: FaultSpec{
				Seed:        int64(i)*13 + 5,
				FailProb:    rng.Float64() * 0.6,
				StallProb:   rng.Float64() * 0.3,
				OutlierProb: rng.Float64() * 0.4,
			},
			Retries: rng.Intn(3),
		}
		if rng.Intn(2) == 0 {
			opts.RunTimeout = 2 * Second // cuts injected stalls
		}
		if rng.Intn(2) == 0 {
			opts.MinRuns = 1
			if rng.Intn(2) == 0 {
				opts.OutlierMAD = 3.5
			}
		}
		cells, sweepErr := ProfileMatrixContext(context.Background(), MatrixRequest{
			Specs:       []WorkloadSpec{chaosSpec(fmt.Sprintf("chaos_%d", i), int64(i))},
			Engines:     []Engine{RedisLike, DynamoLike},
			Options:     opts,
			Parallelism: 1 + rng.Intn(4),
		})
		if sweepErr != nil {
			// Per-cell failures never abort the sweep; only invalid
			// requests or cancellation do, and this request is valid.
			t.Fatalf("schedule %d: sweep error %v", i, sweepErr)
		}
		if len(cells) != 2 {
			t.Fatalf("schedule %d: %d cells", i, len(cells))
		}
		for _, cell := range cells {
			if (cell.Report == nil) == (cell.Err == nil) {
				t.Fatalf("schedule %d %s/%v: report %v, err %v — want exactly one",
					i, cell.Workload, cell.Engine, cell.Report, cell.Err)
			}
			if cell.Err != nil {
				var pe *pool.PanicError
				if errors.As(cell.Err, &pe) {
					t.Fatalf("schedule %d %s/%v: panic captured: %v\n%s",
						i, cell.Workload, cell.Engine, pe.Value, pe.Stack)
				}
				if !expectedChaosErr(cell.Err) {
					t.Fatalf("schedule %d %s/%v: untyped error %v",
						i, cell.Workload, cell.Engine, cell.Err)
				}
			}
			if cell.Report != nil && opts.MinRuns == 0 && cell.Report.Degraded {
				t.Fatalf("schedule %d %s/%v: strict-mode report flagged degraded",
					i, cell.Workload, cell.Engine)
			}
		}
	}

	// Worker goroutines must all have drained; allow the runtime a
	// moment to retire them.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= warmup+2 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after %d schedules", warmup, n, schedules)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosMatrixCancellationPrompt cancels a sweep mid-flight: the call
// must return quickly in wall time (the testbed runs on simulated time),
// report the context error, and leave every unfinished cell carrying it.
func TestChaosMatrixCancellationPrompt(t *testing.T) {
	specs := make([]WorkloadSpec, 6)
	for i := range specs {
		specs[i] = WorkloadSpec{
			Name: fmt.Sprintf("cancel_%d", i), Keys: 2000, Requests: 100_000,
			Dist:      DistSpec{Kind: Hotspot, HotSetFraction: 0.2, HotOpnFraction: 0.9},
			ReadRatio: 0.9, Sizes: SizeThumbnail, Seed: int64(i),
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	cells, err := ProfileMatrixContext(ctx, MatrixRequest{
		Specs:   specs,
		Options: Options{Seed: 1, Runs: 4},
	})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("sweep error = %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	finished, cut := 0, 0
	for _, cell := range cells {
		switch {
		case cell.Report != nil && cell.Err == nil:
			finished++
		case cell.Err != nil && errors.Is(cell.Err, context.Canceled):
			cut++
		default:
			t.Fatalf("cell %s/%v: report %v err %v after cancellation",
				cell.Workload, cell.Engine, cell.Report, cell.Err)
		}
	}
	if cut == 0 {
		t.Skip("sweep finished before cancellation; nothing to assert")
	}
	t.Logf("cancelled sweep: %d finished, %d cut", finished, cut)
}
