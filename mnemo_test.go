package mnemo

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// smallWorkload keeps facade tests fast: 1k keys instead of the paper's
// 10k.
func smallWorkload(t *testing.T) *Workload {
	t.Helper()
	w, err := GenerateWorkload(WorkloadSpec{
		Name: "facade_test", Keys: 1000, Requests: 8000,
		Dist:      DistSpec{Kind: Hotspot, HotSetFraction: 0.2, HotOpnFraction: 0.9},
		ReadRatio: 1.0, Sizes: SizeThumbnail, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestWorkloadByName(t *testing.T) {
	for _, name := range WorkloadNames() {
		w, err := WorkloadByName(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(w.Ops) != 100000 || len(w.Dataset.Records) != 10000 {
			t.Errorf("%s: wrong scale (%d ops, %d keys)", name, len(w.Ops), len(w.Dataset.Records))
		}
	}
	if _, err := WorkloadByName("nope", 1); err == nil {
		t.Error("unknown workload accepted")
	}
	if len(WorkloadNames()) != 5 {
		t.Errorf("Table III should have 5 workloads, got %d", len(WorkloadNames()))
	}
}

func TestProfileEndToEnd(t *testing.T) {
	w := smallWorkload(t)
	rep, err := Profile(w, Options{Store: RedisLike, Seed: 1, SLO: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Advice == nil {
		t.Fatal("SLO set but no advice")
	}
	if rep.Advice.Point.CostFactor >= 1 || rep.Advice.Point.CostFactor < DefaultPriceFactor {
		t.Fatalf("advised cost %.3f out of range", rep.Advice.Point.CostFactor)
	}
	if rep.Curve == nil || len(rep.Curve.Points) != 1001 {
		t.Fatal("curve missing or wrong size")
	}
	// CSV output works.
	var buf bytes.Buffer
	if err := rep.Curve.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "key,est_throughput_ops,cost_factor") {
		t.Error("CSV header wrong")
	}
}

func TestProfileMnemoTMode(t *testing.T) {
	w := smallWorkload(t)
	rep, err := Profile(w, Options{Store: RedisLike, Seed: 2, UseMnemoT: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Curve.Ordering != "mnemot" {
		t.Fatalf("ordering = %q", rep.Curve.Ordering)
	}
}

func TestProfileWithTiering(t *testing.T) {
	w := smallWorkload(t)
	keys := []string{w.Dataset.Records[3].Key, w.Dataset.Records[1].Key}
	rep, err := ProfileWithTiering(w, keys, Options{Store: MemcachedLike, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Curve.Ordering != "external" {
		t.Fatalf("ordering = %q", rep.Curve.Ordering)
	}
	if rep.Ordering.Keys[0].Key != keys[0] {
		t.Error("external priority not honored")
	}
	if _, err := ProfileWithTiering(w, []string{"bogus"}, Options{}); err == nil {
		t.Error("bad external key accepted")
	}
}

func TestAdviseReusesCurve(t *testing.T) {
	w := smallWorkload(t)
	rep, err := Profile(w, Options{Store: RedisLike, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Advise(rep.Curve, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Advise(rep.Curve, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if loose.Point.CostFactor > tight.Point.CostFactor {
		t.Fatalf("looser SLO should not cost more: %.3f vs %.3f",
			loose.Point.CostFactor, tight.Point.CostFactor)
	}
}

func TestAdviseLatencyAndTailsFacade(t *testing.T) {
	w := smallWorkload(t)
	rep, err := Profile(w, Options{Store: RedisLike, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	budget := rep.Curve.SlowOnly().EstAvgLatencyNs * 0.95
	a, err := AdviseLatency(rep.Curve, budget)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Satisfiable || a.Point.EstAvgLatencyNs > budget {
		t.Fatalf("latency advice broken: %+v", a)
	}
	tails, err := EstimateTails(rep, []int{0, 500, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(tails) != 3 {
		t.Fatalf("tails = %d", len(tails))
	}
	for _, tp := range tails {
		if tp.P99Ns < tp.P95Ns || tp.P95Ns < tp.P50Ns || tp.P50Ns <= 0 {
			t.Fatalf("percentiles disordered: %+v", tp)
		}
	}
}

func TestCostReductionFacade(t *testing.T) {
	if got := CostReduction(20, 100, 0.2); math.Abs(got-0.36) > 1e-12 {
		t.Fatalf("R = %v", got)
	}
}

func TestWorkloadCSVRoundTripViaFacade(t *testing.T) {
	w := smallWorkload(t)
	var buf bytes.Buffer
	if err := w.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadWorkloadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Ops) != len(w.Ops) {
		t.Fatal("ops lost in round trip")
	}
}

func TestEngineHelpers(t *testing.T) {
	if len(Engines()) != 3 {
		t.Fatal("expected 3 engines")
	}
	e, ok := EngineByName("dynamolike")
	if !ok || e != DynamoLike {
		t.Fatal("EngineByName broken")
	}
	if _, ok := EngineByName("x"); ok {
		t.Fatal("unknown engine resolved")
	}
}

func TestNoiseOverrides(t *testing.T) {
	w := smallWorkload(t)
	// Disabled noise: two identical profiles agree exactly.
	a, err := Profile(w, Options{Store: RedisLike, Seed: 9, NoiseSigma: -1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Profile(w, Options{Store: RedisLike, Seed: 9, NoiseSigma: -1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Baselines.Fast.Runtime != b.Baselines.Fast.Runtime {
		t.Fatal("noise-free profiles differ")
	}
}
