package mnemo_test

import (
	"context"
	"reflect"
	"testing"

	"mnemo"
)

func apiWorkload(t *testing.T) *mnemo.Workload {
	t.Helper()
	w, err := mnemo.WorkloadByNameSized("trending", 71, 300, 3000)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestOptionsPolicy exercises the named-policy path of the public API
// and its compatibility contract with the deprecated UseMnemoT switch.
func TestOptionsPolicy(t *testing.T) {
	w := apiWorkload(t)
	viaName, err := mnemo.Profile(w, mnemo.Options{Store: mnemo.RedisLike, Seed: 71, SLO: 0.10, Policy: "mnemot"})
	if err != nil {
		t.Fatal(err)
	}
	viaFlag, err := mnemo.Profile(w, mnemo.Options{Store: mnemo.RedisLike, Seed: 71, SLO: 0.10, UseMnemoT: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaName, viaFlag) {
		t.Fatal("Policy \"mnemot\" and UseMnemoT disagree")
	}
	if viaName.Policy != "mnemot" {
		t.Fatalf("report policy %q", viaName.Policy)
	}
	// The alias spelling works; the conflict is rejected.
	if _, err := mnemo.Profile(w, mnemo.Options{Store: mnemo.RedisLike, Seed: 71, Policy: "standalone"}); err != nil {
		t.Fatalf("standalone alias: %v", err)
	}
	if _, err := mnemo.Profile(w, mnemo.Options{Store: mnemo.RedisLike, Seed: 71, Policy: "touch", UseMnemoT: true}); err == nil {
		t.Fatal("conflicting Policy+UseMnemoT accepted")
	}
	if _, err := mnemo.Profile(w, mnemo.Options{Store: mnemo.RedisLike, Seed: 71, Policy: "bogus"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestPoliciesCatalog(t *testing.T) {
	policies := mnemo.Policies()
	if len(policies) < 6 {
		t.Fatalf("catalog has %d policies", len(policies))
	}
	for _, p := range policies {
		if p.Description == "" {
			t.Errorf("policy %q lacks a description", p.Name)
		}
		built, err := mnemo.PolicyByName(p.Name, 1)
		if err != nil {
			t.Fatal(err)
		}
		if built.Name() != p.Name {
			t.Errorf("PolicyByName(%q) built %q", p.Name, built.Name())
		}
	}
	if _, err := mnemo.PolicyByName("bogus", 1); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestSessionCompareAPI drives the staged pipeline end to end through
// the public API: one measurement, per-policy reports matching their
// one-shot Profile twins.
func TestSessionCompareAPI(t *testing.T) {
	w := apiWorkload(t)
	opts := mnemo.Options{Store: mnemo.RedisLike, Seed: 72}
	session, err := mnemo.NewSession(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	var policies []mnemo.TieringPolicy
	for _, name := range []string{"touch", "mnemot", "tahoe", "freqdecay"} {
		p, err := mnemo.PolicyByName(name, opts.Seed)
		if err != nil {
			t.Fatal(err)
		}
		policies = append(policies, p)
	}
	reports, err := session.Compare(context.Background(), 0.10, policies...)
	if err != nil {
		t.Fatal(err)
	}
	if session.MeasureCount() != 1 {
		t.Fatalf("%d policies took %d measurements", len(policies), session.MeasureCount())
	}
	optsT := opts
	optsT.Policy = "tahoe"
	optsT.SLO = 0.10
	solo, err := mnemo.Profile(w, optsT)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(solo, reports[2]) {
		t.Fatal("session tahoe report differs from one-shot Profile")
	}
}

// TestSessionCompareRepeatable pins the registry freshness contract from
// the caller's side: Compare called twice back to back — same session,
// same policy instances, the whole catalog including the stateful
// (pagesample) and adaptive ones — must produce identical reports. A
// policy that leaks mutable state from one Order call into the next
// breaks this.
func TestSessionCompareRepeatable(t *testing.T) {
	w := apiWorkload(t)
	opts := mnemo.Options{Store: mnemo.RedisLike, Seed: 72}
	session, err := mnemo.NewSession(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	var policies []mnemo.TieringPolicy
	for _, info := range mnemo.Policies() {
		p, err := mnemo.PolicyByName(info.Name, opts.Seed)
		if err != nil {
			t.Fatal(err)
		}
		policies = append(policies, p)
	}
	first, err := session.Compare(context.Background(), 0.10, policies...)
	if err != nil {
		t.Fatal(err)
	}
	second, err := session.Compare(context.Background(), 0.10, policies...)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if !reflect.DeepEqual(first[i], second[i]) {
			t.Errorf("policy %q: repeated Compare diverged", first[i].Policy)
		}
	}
	// Fresh instances from the registry repeat the result too.
	var rebuilt []mnemo.TieringPolicy
	for _, info := range mnemo.Policies() {
		p, err := mnemo.PolicyByName(info.Name, opts.Seed)
		if err != nil {
			t.Fatal(err)
		}
		rebuilt = append(rebuilt, p)
	}
	third, err := session.Compare(context.Background(), 0.10, rebuilt...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, third) {
		t.Error("fresh registry instances diverged from the first Compare")
	}
}

func TestWorkloadByNameSized(t *testing.T) {
	w, err := mnemo.WorkloadByNameSized("ycsb_f", 5, 120, 600)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Dataset.Records) != 120 {
		t.Fatalf("keys override ignored: %d", len(w.Dataset.Records))
	}
	if _, err := mnemo.WorkloadByNameSized("bogus", 5, 0, 0); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
