// Package linalg implements the small dense linear-algebra kernel needed
// by the cloud cost regression of the paper's introduction: solving an
// overdetermined system VMcost = vCPU·C + GB·M by ordinary least squares,
// following the methodology of Amur et al. (SOCC'13) that the paper cites.
//
// The implementation forms the normal equations AᵀA x = Aᵀb and solves them
// with Gaussian elimination with partial pivoting; for the 2–3 unknown
// systems that arise here this is numerically comfortable and keeps the
// package dependency-free.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when the system matrix is (numerically) singular.
var ErrSingular = errors.New("linalg: singular matrix")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewMatrix allocates a zeroed Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must be equal length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("linalg: FromRows needs a non-empty rectangle")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m·o, panicking on a dimension mismatch.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.Cols != o.Rows {
		panic(fmt.Sprintf("linalg: dimension mismatch %dx%d · %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	out := NewMatrix(m.Rows, o.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < o.Cols; j++ {
				out.Data[i*out.Cols+j] += a * o.At(k, j)
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m·x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if m.Cols != len(x) {
		panic("linalg: MulVec dimension mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		for j := 0; j < m.Cols; j++ {
			s += m.At(i, j) * x[j]
		}
		out[i] = s
	}
	return out
}

// SolveSquare solves the square system A·x = b by Gaussian elimination with
// partial pivoting. A and b are not modified.
func SolveSquare(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: SolveSquare on %dx%d matrix", a.Rows, a.Cols)
	}
	if a.Rows != len(b) {
		return nil, errors.New("linalg: SolveSquare rhs length mismatch")
	}
	n := a.Rows
	// Working copies.
	aug := make([]float64, n*(n+1))
	for i := 0; i < n; i++ {
		copy(aug[i*(n+1):i*(n+1)+n], a.Data[i*n:(i+1)*n])
		aug[i*(n+1)+n] = b[i]
	}
	stride := n + 1
	for col := 0; col < n; col++ {
		// Partial pivot: largest magnitude in column.
		pivot := col
		best := math.Abs(aug[col*stride+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(aug[r*stride+col]); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			for j := col; j <= n; j++ {
				aug[col*stride+j], aug[pivot*stride+j] = aug[pivot*stride+j], aug[col*stride+j]
			}
		}
		pv := aug[col*stride+col]
		for r := col + 1; r < n; r++ {
			f := aug[r*stride+col] / pv
			if f == 0 {
				continue
			}
			for j := col; j <= n; j++ {
				aug[r*stride+j] -= f * aug[col*stride+j]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := aug[i*stride+n]
		for j := i + 1; j < n; j++ {
			s -= aug[i*stride+j] * x[j]
		}
		x[i] = s / aug[i*stride+i]
	}
	return x, nil
}

// LeastSquares solves the overdetermined system A·x ≈ b in the
// least-squares sense via the normal equations. It returns the coefficient
// vector and the residual sum of squares.
func LeastSquares(a *Matrix, b []float64) (x []float64, rss float64, err error) {
	if a.Rows != len(b) {
		return nil, 0, errors.New("linalg: LeastSquares rhs length mismatch")
	}
	if a.Rows < a.Cols {
		return nil, 0, fmt.Errorf("linalg: underdetermined system %dx%d", a.Rows, a.Cols)
	}
	at := a.Transpose()
	ata := at.Mul(a)
	atb := at.MulVec(b)
	x, err = SolveSquare(ata, atb)
	if err != nil {
		return nil, 0, err
	}
	pred := a.MulVec(x)
	for i := range b {
		r := b[i] - pred[i]
		rss += r * r
	}
	return x, rss, nil
}
