package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixAccessors(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatal("Set/At mismatch")
	}
	if m.At(0, 0) != 0 {
		t.Fatal("fresh matrix not zeroed")
	}
}

func TestFromRowsAndTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose dims %dx%d", tr.Rows, tr.Cols)
	}
	if tr.At(2, 1) != 6 || tr.At(0, 0) != 1 {
		t.Fatal("transpose values wrong")
	}
}

func TestFromRowsPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { FromRows(nil) },
		func() { FromRows([][]float64{{}}) },
		func() { FromRows([][]float64{{1, 2}, {3}}) },
		func() { NewMatrix(0, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Errorf("c[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := a.MulVec([]float64{1, 1, 1})
	if got[0] != 6 || got[1] != 15 {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestMulDimensionPanics(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Mul(b)
}

func TestSolveSquareKnown(t *testing.T) {
	// 2x + y = 5 ; x - y = 1  →  x=2, y=1
	a := FromRows([][]float64{{2, 1}, {1, -1}})
	x, err := SolveSquare(a, []float64{5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 2, 1e-12) || !almostEqual(x[1], 1, 1e-12) {
		t.Fatalf("x = %v, want [2 1]", x)
	}
}

func TestSolveSquareNeedsPivoting(t *testing.T) {
	// Leading zero forces a row swap.
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := SolveSquare(a, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 4, 1e-12) || !almostEqual(x[1], 3, 1e-12) {
		t.Fatalf("x = %v, want [4 3]", x)
	}
}

func TestSolveSquareSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveSquare(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveSquareShapeErrors(t *testing.T) {
	if _, err := SolveSquare(NewMatrix(2, 3), []float64{1, 2}); err == nil {
		t.Error("non-square accepted")
	}
	if _, err := SolveSquare(NewMatrix(2, 2), []float64{1}); err == nil {
		t.Error("bad rhs length accepted")
	}
}

func TestSolveSquareDoesNotMutate(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, -1}})
	b := []float64{5, 1}
	orig := append([]float64(nil), a.Data...)
	if _, err := SolveSquare(a, b); err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if a.Data[i] != orig[i] {
			t.Fatal("SolveSquare mutated A")
		}
	}
	if b[0] != 5 || b[1] != 1 {
		t.Fatal("SolveSquare mutated b")
	}
}

func TestLeastSquaresExactSystem(t *testing.T) {
	// y = 3·vcpu + 2·gb, exactly — the regression of the paper's intro.
	a := FromRows([][]float64{{1, 10}, {2, 20}, {4, 30}, {8, 100}})
	b := make([]float64, 4)
	for i := 0; i < 4; i++ {
		b[i] = 3*a.At(i, 0) + 2*a.At(i, 1)
	}
	x, rss, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 3, 1e-9) || !almostEqual(x[1], 2, 1e-9) {
		t.Fatalf("x = %v, want [3 2]", x)
	}
	if rss > 1e-15 {
		t.Errorf("rss = %v, want ~0", rss)
	}
}

func TestLeastSquaresNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rows := make([][]float64, 200)
	b := make([]float64, 200)
	for i := range rows {
		v := float64(1 + rng.Intn(64))
		g := float64(2 + rng.Intn(1024))
		rows[i] = []float64{v, g}
		b[i] = 0.04*v + 0.009*g + rng.NormFloat64()*0.01
	}
	x, _, err := LeastSquares(FromRows(rows), b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 0.04, 0.005) || !almostEqual(x[1], 0.009, 0.0005) {
		t.Fatalf("x = %v, want ≈[0.04 0.009]", x)
	}
}

func TestLeastSquaresUnderdetermined(t *testing.T) {
	if _, _, err := LeastSquares(NewMatrix(1, 2), []float64{1}); err == nil {
		t.Fatal("underdetermined system accepted")
	}
}

// Property: solving A·x = b for a random well-conditioned A reproduces b.
func TestSolveRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func() bool {
		n := 1 + rng.Intn(5)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Set(i, i, a.At(i, i)+float64(n)) // diagonally dominant
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVec(want)
		got, err := SolveSquare(a, b)
		if err != nil {
			return false
		}
		for i := range want {
			if !almostEqual(got[i], want[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
