package ycsb

import (
	"math"
	"testing"

	"mnemo/internal/kvstore"
)

func TestStandardWorkloadsGenerate(t *testing.T) {
	for _, spec := range StandardWorkloads(5) {
		spec.Keys = 500
		spec.Requests = 5000
		w, err := Generate(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if rf := w.ReadFraction(); math.Abs(rf-spec.ReadRatio) > 0.02 {
			t.Errorf("%s: read fraction %.3f, want %.2f", spec.Name, rf, spec.ReadRatio)
		}
		// Stock YCSB records are 1 KB.
		if w.Dataset.Records[0].Size != 1024 {
			t.Errorf("%s: record size %d, want 1024", spec.Name, w.Dataset.Records[0].Size)
		}
	}
}

func TestStandardByName(t *testing.T) {
	for _, name := range []string{"ycsb_a", "ycsb_b", "ycsb_c", "ycsb_d", "ycsb_f"} {
		if _, ok := StandardByName(name, 1); !ok {
			t.Errorf("%s not found", name)
		}
	}
	if _, ok := StandardByName("ycsb_e", 1); ok {
		t.Error("workload E should not exist (scans unsupported)")
	}
}

func TestAnySpecByName(t *testing.T) {
	if _, ok := AnySpecByName("trending", 1); !ok {
		t.Error("Table III name not resolved")
	}
	if _, ok := AnySpecByName("ycsb_c", 1); !ok {
		t.Error("standard name not resolved")
	}
	if _, ok := AnySpecByName("nope", 1); ok {
		t.Error("unknown name resolved")
	}
}

func TestAllWorkloadNamesUnique(t *testing.T) {
	names := AllWorkloadNames()
	// 5 Table III presets + 5 YCSB core workloads + 2 drift presets.
	if len(names) != 12 {
		t.Fatalf("names = %d, want 12", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate %q", n)
		}
		seen[n] = true
	}
}

func TestWorkloadCSkewMatchesZipfian(t *testing.T) {
	spec := WorkloadC(7)
	spec.Keys = 1000
	spec.Requests = 50000
	w := MustGenerate(spec)
	reads, _ := w.AccessCounts()
	top, total := 0, 0
	for i, c := range reads {
		total += c
		if i < 200 {
			top += c
		}
	}
	if frac := float64(top) / float64(total); frac < 0.7 {
		t.Errorf("zipfian top-20%% share %.3f too low", frac)
	}
}

func TestGenerateFReadModifyWrite(t *testing.T) {
	w, err := GenerateF(3, 300, 3000)
	if err != nil {
		t.Fatal(err)
	}
	// Physical ops exceed logical requests (each RMW adds one).
	if len(w.Ops) <= 3000 || len(w.Ops) > 4600 {
		t.Fatalf("ops = %d, want in (3000, 4600]", len(w.Ops))
	}
	// Every write must be immediately preceded by a read of the same key.
	for i, op := range w.Ops {
		if op.Kind != kvstore.Write {
			continue
		}
		if i == 0 || w.Ops[i-1].Kind != kvstore.Read || w.Ops[i-1].Key != op.Key {
			t.Fatalf("write at %d not preceded by read of same key", i)
		}
	}
	if w.Spec.Requests != len(w.Ops) {
		t.Fatal("spec request count not updated")
	}
}

func TestGenerateFValidates(t *testing.T) {
	if _, err := GenerateF(1, 0, 100); err == nil {
		t.Error("zero keys accepted")
	}
	if _, err := GenerateF(1, 100, 0); err == nil {
		t.Error("zero requests accepted")
	}
}

func TestWorkloadDRecency(t *testing.T) {
	spec := WorkloadD(9)
	spec.Keys = 1000
	spec.Requests = 20000
	w := MustGenerate(spec)
	// Early ops hit low key IDs; late ops hit high IDs (the drifting
	// head of the latest distribution).
	meanKey := func(ops []Op) float64 {
		s := 0
		for _, op := range ops {
			s += op.Key
		}
		return float64(s) / float64(len(ops))
	}
	early := meanKey(w.Ops[:2000])
	late := meanKey(w.Ops[len(w.Ops)-2000:])
	if late-early < 300 {
		t.Errorf("latest head did not advance: early %.0f, late %.0f", early, late)
	}
}
