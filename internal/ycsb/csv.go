package ycsb

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"mnemo/internal/kvstore"
)

// Workload CSV format ("mnemo-workload v1"):
//
//	row 0:  header  ["mnemo-workload", "v1", <name>]
//	rec rows:       ["rec", <key>, <size-bytes>]
//	op rows:        ["op", <key>, "read"|"write"|"delete"]
//
// Record rows must precede the op rows that reference their keys. This is
// the interchange format of cmd/workloadgen and of Mnemo's "user-provided
// sequence of keys and request types" input (§IV, Interfacing with
// Mnemo).

// maxRecordSize bounds a single record's declared size (1 GiB). Traces
// are untrusted input: a hostile row declaring a petabyte record would
// otherwise sail through Atoi and poison every capacity and cost
// computation downstream.
const maxRecordSize = 1 << 30

// WriteCSV serializes the workload.
func (w *Workload) WriteCSV(out io.Writer) error {
	cw := csv.NewWriter(out)
	if err := cw.Write([]string{"mnemo-workload", "v1", w.Spec.Name}); err != nil {
		return err
	}
	for _, rec := range w.Dataset.Records {
		if err := cw.Write([]string{"rec", rec.Key, strconv.Itoa(rec.Size)}); err != nil {
			return err
		}
	}
	for _, op := range w.Ops {
		if err := cw.Write([]string{"op", w.Dataset.Records[op.Key].Key, op.Kind.String()}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a workload in the format written by WriteCSV. The
// resulting Spec carries only the name and derived counts; distribution
// metadata is not recoverable from a trace (nor needed — Mnemo consumes
// the trace itself).
func ReadCSV(in io.Reader) (*Workload, error) {
	cr := csv.NewReader(in)
	cr.FieldsPerRecord = 3
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("ycsb: reading header: %w", err)
	}
	if header[0] != "mnemo-workload" || header[1] != "v1" {
		return nil, fmt.Errorf("ycsb: not a mnemo-workload v1 file (header %q)", header)
	}
	w := &Workload{Spec: Spec{Name: header[2]}}
	index := map[string]int{}
	line := 1
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("ycsb: line %d: %w", line, err)
		}
		switch row[0] {
		case "rec":
			if row[1] == "" {
				return nil, fmt.Errorf("ycsb: line %d: empty record key", line)
			}
			size, err := strconv.Atoi(row[2])
			if err != nil || size < 0 {
				return nil, fmt.Errorf("ycsb: line %d: bad record size %q", line, row[2])
			}
			if size > maxRecordSize {
				return nil, fmt.Errorf("ycsb: line %d: record size %d exceeds the %d-byte limit",
					line, size, maxRecordSize)
			}
			if _, dup := index[row[1]]; dup {
				return nil, fmt.Errorf("ycsb: line %d: duplicate record %q", line, row[1])
			}
			index[row[1]] = len(w.Dataset.Records)
			w.Dataset.Records = append(w.Dataset.Records, Record{
				Key: row[1], ID: kvstore.KeyID(row[1]), Size: size,
			})
			w.Dataset.TotalBytes += int64(size)
		case "op":
			idx, ok := index[row[1]]
			if !ok {
				return nil, fmt.Errorf("ycsb: line %d: op references unknown key %q", line, row[1])
			}
			var kind kvstore.OpKind
			switch row[2] {
			case "read":
				kind = kvstore.Read
			case "write":
				kind = kvstore.Write
			case "delete":
				kind = kvstore.Delete
			default:
				return nil, fmt.Errorf("ycsb: line %d: unknown op kind %q", line, row[2])
			}
			w.Ops = append(w.Ops, Op{Key: idx, Kind: kind})
		default:
			return nil, fmt.Errorf("ycsb: line %d: unknown row type %q", line, row[0])
		}
	}
	w.Spec.Keys = len(w.Dataset.Records)
	w.Spec.Requests = len(w.Ops)
	w.Spec.ReadRatio = w.ReadFraction()
	return w, nil
}
