package ycsb

import (
	"math"
	"testing"

	"mnemo/internal/kvstore"
)

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(Trending(42))
	b := MustGenerate(Trending(42))
	if len(a.Ops) != len(b.Ops) || len(a.Dataset.Records) != len(b.Dataset.Records) {
		t.Fatal("sizes differ across identical generations")
	}
	for i := range a.Ops {
		if a.Ops[i] != b.Ops[i] {
			t.Fatalf("op %d differs", i)
		}
	}
	for i := range a.Dataset.Records {
		if a.Dataset.Records[i] != b.Dataset.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := MustGenerate(Trending(1))
	b := MustGenerate(Trending(2))
	same := 0
	for i := range a.Ops {
		if a.Ops[i].Key == b.Ops[i].Key {
			same++
		}
	}
	if same == len(a.Ops) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestTableIIIShapes(t *testing.T) {
	for _, spec := range TableIII(7) {
		w := MustGenerate(spec)
		if len(w.Dataset.Records) != DefaultKeys {
			t.Errorf("%s: keys = %d", spec.Name, len(w.Dataset.Records))
		}
		if len(w.Ops) != DefaultRequests {
			t.Errorf("%s: requests = %d", spec.Name, len(w.Ops))
		}
		rf := w.ReadFraction()
		if math.Abs(rf-spec.ReadRatio) > 0.01 {
			t.Errorf("%s: read fraction %.3f, want %.2f", spec.Name, rf, spec.ReadRatio)
		}
		if w.Dataset.TotalBytes <= 0 {
			t.Errorf("%s: empty dataset", spec.Name)
		}
	}
}

func TestReadOnlyWorkloadsHaveNoWrites(t *testing.T) {
	w := MustGenerate(Timeline(3))
	for i, op := range w.Ops {
		if op.Kind != kvstore.Read {
			t.Fatalf("op %d is %v in a read-only workload", i, op.Kind)
		}
	}
}

func TestEditThumbnailMix(t *testing.T) {
	w := MustGenerate(EditThumbnail(3))
	if rf := w.ReadFraction(); math.Abs(rf-0.5) > 0.01 {
		t.Fatalf("read fraction = %.3f, want ≈0.5", rf)
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	bad := []Spec{
		{Name: "nokeys", Keys: 0, Requests: 10, ReadRatio: 1},
		{Name: "noreqs", Keys: 10, Requests: 0, ReadRatio: 1},
		{Name: "badratio", Keys: 10, Requests: 10, ReadRatio: 1.5},
		{Name: "negratio", Keys: 10, Requests: 10, ReadRatio: -0.1},
	}
	for _, s := range bad {
		if _, err := Generate(s); err == nil {
			t.Errorf("spec %q accepted", s.Name)
		}
	}
}

func TestAccessCounts(t *testing.T) {
	w := MustGenerate(EditThumbnail(9))
	reads, writes := w.AccessCounts()
	var r, wr int
	for i := range reads {
		r += reads[i]
		wr += writes[i]
	}
	if r+wr != len(w.Ops) {
		t.Fatalf("counts %d+%d != %d ops", r, wr, len(w.Ops))
	}
	if r == 0 || wr == 0 {
		t.Fatal("mixed workload missing reads or writes")
	}
}

func TestTouchOrder(t *testing.T) {
	w := MustGenerate(Trending(5))
	order := w.TouchOrder()
	if len(order) != len(w.Dataset.Records) {
		t.Fatalf("touch order len = %d", len(order))
	}
	seen := map[int]bool{}
	for _, k := range order {
		if seen[k] {
			t.Fatalf("key %d appears twice in touch order", k)
		}
		seen[k] = true
	}
	// First entry must be the first op's key.
	if order[0] != w.Ops[0].Key {
		t.Fatalf("touch order starts at %d, first op key %d", order[0], w.Ops[0].Key)
	}
}

func TestTrendingHotSetConcentration(t *testing.T) {
	w := MustGenerate(Trending(11))
	reads, _ := w.AccessCounts()
	hot := 0
	total := 0
	for i, c := range reads {
		total += c
		if i < DefaultKeys/5 {
			hot += c
		}
	}
	frac := float64(hot) / float64(total)
	if math.Abs(frac-0.9) > 0.01 {
		t.Fatalf("hot 20%% of keys received %.3f of ops, want ≈0.9", frac)
	}
}

func TestDownsamplePreservesShape(t *testing.T) {
	w := MustGenerate(Trending(13))
	d := w.Downsample(10, 99)
	if got, want := len(d.Ops), len(w.Ops)/10; got != want {
		t.Fatalf("downsampled ops = %d, want %d", got, want)
	}
	// Hot-set share must be preserved within a few percent.
	share := func(x *Workload) float64 {
		reads, writes := x.AccessCounts()
		hot, total := 0, 0
		for i := range reads {
			c := reads[i] + writes[i]
			total += c
			if i < DefaultKeys/5 {
				hot += c
			}
		}
		return float64(hot) / float64(total)
	}
	if math.Abs(share(w)-share(d)) > 0.03 {
		t.Fatalf("hot share drifted: full %.3f vs sampled %.3f", share(w), share(d))
	}
	// Dataset unchanged.
	if d.Dataset.TotalBytes != w.Dataset.TotalBytes {
		t.Fatal("downsample altered dataset")
	}
	if d.Spec.Name == w.Spec.Name {
		t.Fatal("downsample should rename the spec")
	}
}

func TestDownsampleFactorOneCopies(t *testing.T) {
	w := MustGenerate(Timeline(17))
	d := w.Downsample(1, 0)
	if len(d.Ops) != len(w.Ops) {
		t.Fatal("factor-1 downsample changed length")
	}
	d.Ops[0].Key = -1
	if w.Ops[0].Key == -1 {
		t.Fatal("factor-1 downsample shares the ops slice")
	}
}

func TestDownsamplePanicsOnBadFactor(t *testing.T) {
	w := MustGenerate(Trending(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.Downsample(0, 1)
}

func TestSpecByName(t *testing.T) {
	for _, name := range []string{"trending", "news_feed", "timeline", "edit_thumbnail", "trending_preview"} {
		if _, ok := SpecByName(name, 1); !ok {
			t.Errorf("%q not found", name)
		}
	}
	if _, ok := SpecByName("nonsense", 1); ok {
		t.Error("unknown name resolved")
	}
}

func TestDistKindAndSizeKindStrings(t *testing.T) {
	if Hotspot.String() != "hotspot" || Latest.String() != "latest" {
		t.Error("dist kind strings wrong")
	}
	if SizeThumbnail.String() != "thumbnail" {
		t.Error("size kind string wrong")
	}
	if DistKind(99).String() == "" || SizeKind(99).String() == "" {
		t.Error("unknown kinds should still format")
	}
}

func TestDistSpecNewPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DistSpec{Kind: DistKind(99)}.New(10, 10)
}

func TestSizeKindNewPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SizeKind(99).New()
}

func TestKeyNameStable(t *testing.T) {
	if KeyName(7) != "user00000007" {
		t.Fatalf("KeyName(7) = %q", KeyName(7))
	}
}

func TestFixedSizeKinds(t *testing.T) {
	for kind, want := range map[SizeKind]float64{
		SizeFixed1KB:   1024,
		SizeFixed10KB:  10240,
		SizeFixed100KB: 102400,
	} {
		if got := kind.New().Mean(); got != want {
			t.Errorf("%v mean = %v, want %v", kind, got, want)
		}
	}
}

func TestPackedTraceMatchesOps(t *testing.T) {
	w := MustGenerate(Spec{
		Name: "packed", Keys: 100, Requests: 1000,
		Dist: DistSpec{Kind: Zipfian}, ReadRatio: 0.5, Seed: 4,
	})
	pt := w.Packed()
	if pt == nil || !pt.Batchable() {
		t.Fatal("read/write trace not batchable")
	}
	if len(pt.Keys) != len(w.Ops) || len(pt.Kinds) != len(w.Ops) {
		t.Fatalf("packed lengths %d/%d != %d ops", len(pt.Keys), len(pt.Kinds), len(w.Ops))
	}
	for i, op := range w.Ops {
		if int(pt.Keys[i]) != op.Key || kvstore.OpKind(pt.Kinds[i]) != op.Kind {
			t.Fatalf("op %d: packed (%d,%d) != (%d,%v)", i, pt.Keys[i], pt.Kinds[i], op.Key, op.Kind)
		}
	}
	if w.Packed() != pt {
		t.Fatal("Packed not cached")
	}
}

func TestPackedTraceDeleteNotBatchable(t *testing.T) {
	w := MustGenerate(Spec{
		Name: "del", Keys: 10, Requests: 20,
		Dist: DistSpec{Kind: Uniform}, ReadRatio: 1, Seed: 1,
	})
	w.Ops[7].Kind = kvstore.Delete
	pt := w.Packed()
	if pt == nil {
		t.Fatal("trace should still encode")
	}
	if pt.Batchable() {
		t.Fatal("trace with a Delete marked batchable")
	}
	var nilPT *PackedTrace
	if nilPT.Batchable() {
		t.Fatal("nil trace marked batchable")
	}
}
