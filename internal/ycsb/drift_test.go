package ycsb

import (
	"reflect"
	"testing"
)

func TestDriftPresetsGenerateAndPack(t *testing.T) {
	for _, spec := range DriftWorkloads(3) {
		spec.Keys, spec.Requests = 400, 8000
		w, err := Generate(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if len(w.Dataset.Records) != 400 || len(w.Ops) != 8000 {
			t.Fatalf("%s: %d records, %d ops", spec.Name, len(w.Dataset.Records), len(w.Ops))
		}
		// Both drift presets are read/write-only, so their traces must
		// stay on the batched replay kernel (and in epoch-chunked runs).
		if !w.Packed().Batchable() {
			t.Errorf("%s: trace not batchable", spec.Name)
		}
		for _, op := range w.Ops {
			if op.Key < 0 || op.Key >= 400 {
				t.Fatalf("%s: op key %d out of range", spec.Name, op.Key)
			}
		}
	}
}

func TestDriftByName(t *testing.T) {
	for _, name := range []string{"hot_drift", "phase_shift"} {
		spec, ok := DriftByName(name, 9)
		if !ok || spec.Name != name || spec.Seed != 9 {
			t.Errorf("DriftByName(%q) = %+v, %v", name, spec, ok)
		}
		// The shared resolver reaches them too (cmd/workloadgen, API).
		if _, ok := AnySpecByName(name, 9); !ok {
			t.Errorf("AnySpecByName(%q) missed the drift preset", name)
		}
	}
	if _, ok := DriftByName("trending", 9); ok {
		t.Error("DriftByName resolved a non-drift name")
	}
}

func TestDriftGenerateDeterministic(t *testing.T) {
	spec := HotDrift(4)
	spec.Keys, spec.Requests = 200, 4000
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Ops, b.Ops) {
		t.Fatal("same spec generated different traces")
	}
	spec2 := spec
	spec2.Seed = 5
	c, err := Generate(spec2)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Ops, c.Ops) {
		t.Fatal("different seeds generated identical traces")
	}
}

// TestHotDriftMovesItsHotSet is the shape check that separates the drift
// preset from Trending: the keys dominating the first tenth of the trace
// are nearly disjoint from those dominating the last tenth.
func TestHotDriftMovesItsHotSet(t *testing.T) {
	spec := HotDrift(6)
	spec.Keys, spec.Requests = 1000, 50000
	w, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	tenth := len(w.Ops) / 10
	top := func(ops []Op) map[int]bool {
		counts := map[int]int{}
		for _, op := range ops {
			counts[op.Key]++
		}
		m := map[int]bool{}
		for len(m) < 50 {
			best, bestN := -1, -1
			for k, n := range counts {
				if n > bestN && !m[k] {
					best, bestN = k, n
				}
			}
			m[best] = true
		}
		return m
	}
	head, tail := top(w.Ops[:tenth]), top(w.Ops[len(w.Ops)-tenth:])
	overlap := 0
	for k := range head {
		if tail[k] {
			overlap++
		}
	}
	if overlap > 10 {
		t.Fatalf("head and tail hot sets share %d/50 keys — the window never moved", overlap)
	}
}
