package ycsb

// In-package tests of the trace-backing seams used by the streamed
// .mtrc path: FromPacked construction, and ForEachOp/RequestCount over
// all three backings (Ops, packed, stream). The on-disk stream
// implementation lives in internal/trace (which imports this package),
// so the stream here is a test double.

import (
	"errors"
	"io"
	"testing"

	"mnemo/internal/kvstore"
)

// fakeStream is a TraceStream over in-memory frames.
type fakeStream struct {
	keys  [][]uint32
	kinds [][]uint8
	err   error // returned by Frames when set
}

func (s *fakeStream) Requests() int {
	n := 0
	for _, f := range s.keys {
		n += len(f)
	}
	return n
}

func (s *fakeStream) Frames() (FrameIter, error) {
	if s.err != nil {
		return nil, s.err
	}
	return &fakeIter{s: s}, nil
}

type fakeIter struct {
	s    *fakeStream
	next int
}

func (it *fakeIter) Next() ([]uint32, []uint8, bool, error) {
	if it.next >= len(it.s.keys) {
		return nil, nil, false, io.EOF
	}
	i := it.next
	it.next++
	return it.s.keys[i], it.s.kinds[i], true, nil
}

func testDataset(n int) Dataset {
	ds := Dataset{Records: make([]Record, n)}
	for i := range ds.Records {
		name := KeyName(i)
		ds.Records[i] = Record{Key: name, ID: kvstore.KeyID(name), Size: 100}
		ds.TotalBytes += 100
	}
	return ds
}

func TestFromPacked(t *testing.T) {
	keys := []uint32{0, 2, 1, 2}
	kinds := []uint8{0, 1, 0, 0}
	w := FromPacked(Spec{Name: "fp", Keys: 3, Requests: 4}, testDataset(3), keys, kinds)
	if w.Ops != nil {
		t.Fatal("FromPacked materialized Ops")
	}
	pt := w.Packed()
	if pt == nil || !pt.Batchable() {
		t.Fatal("read/write packed trace not batchable")
	}
	if w.RequestCount() != 4 {
		t.Fatalf("RequestCount = %d, want 4", w.RequestCount())
	}
	var got []int
	if err := w.ForEachOp(func(key int, kind kvstore.OpKind) {
		got = append(got, key)
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[1] != 2 {
		t.Fatalf("ForEachOp over packed backing yielded %v", got)
	}

	del := FromPacked(Spec{Keys: 3, Requests: 1}, testDataset(3),
		[]uint32{1}, []uint8{uint8(kvstore.Delete)})
	if del.Packed().Batchable() {
		t.Error("packed trace with a Delete reported batchable")
	}
}

func TestForEachOpStreamBacking(t *testing.T) {
	st := &fakeStream{
		keys:  [][]uint32{{0, 1}, {2}},
		kinds: [][]uint8{{0, 1}, {2}},
	}
	w := &Workload{Spec: Spec{Keys: 3, Requests: 3}, Dataset: testDataset(3), Stream: st}
	if w.RequestCount() != 3 {
		t.Fatalf("RequestCount over stream = %d, want 3", w.RequestCount())
	}
	var keys []int
	var kinds []kvstore.OpKind
	if err := w.ForEachOp(func(key int, kind kvstore.OpKind) {
		keys = append(keys, key)
		kinds = append(kinds, kind)
	}); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 3 || keys[2] != 2 || kinds[2] != kvstore.Delete {
		t.Fatalf("ForEachOp over stream yielded %v / %v", keys, kinds)
	}

	// A streamed workload never materializes a packed encoding.
	if w.Packed() != nil {
		t.Error("Packed() materialized a streamed trace")
	}

	broken := &Workload{Spec: Spec{Keys: 1}, Stream: &fakeStream{err: errors.New("no frames")}}
	if err := broken.ForEachOp(func(int, kvstore.OpKind) {}); err == nil {
		t.Error("ForEachOp swallowed a stream error")
	}
}

func TestRequestCountEmpty(t *testing.T) {
	if n := (&Workload{}).RequestCount(); n != 0 {
		t.Fatalf("empty workload RequestCount = %d", n)
	}
}
