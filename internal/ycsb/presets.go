package ycsb

// Table III presets: the paper's custom workloads, each matched to a
// Facebook use case via Atikoglu et al.'s workload analysis. Hotspot
// parameters follow the paper's motivating example ("a workload heavily
// accesses 20% of the keys"): 20% of the key space receives 90% of the
// operations.

// hotspotDefaults matches the Trending narrative: a small set of trending
// items absorbs nearly all reads.
var hotspotDefaults = DistSpec{Kind: Hotspot, HotSetFraction: 0.2, HotOpnFraction: 0.9}

// Trending reads Facebook short Trending News: hotspot, read-only,
// thumbnails.
func Trending(seed int64) Spec {
	return Spec{
		Name:      "trending",
		Keys:      DefaultKeys,
		Requests:  DefaultRequests,
		Dist:      hotspotDefaults,
		ReadRatio: 1.0,
		Sizes:     SizeThumbnail,
		Seed:      seed,
		UseCase:   "Read Facebook short Trending News.",
	}
}

// NewsFeed reads the Facebook News Feed: latest, read-only, thumbnails.
func NewsFeed(seed int64) Spec {
	return Spec{
		Name:      "news_feed",
		Keys:      DefaultKeys,
		Requests:  DefaultRequests,
		Dist:      DistSpec{Kind: Latest},
		ReadRatio: 1.0,
		Sizes:     SizeThumbnail,
		Seed:      seed,
		UseCase:   "Read Facebook News Feed.",
	}
}

// Timeline reads a user's Timeline: scrambled zipfian, read-only,
// thumbnails.
func Timeline(seed int64) Spec {
	return Spec{
		Name:      "timeline",
		Keys:      DefaultKeys,
		Requests:  DefaultRequests,
		Dist:      DistSpec{Kind: ScrambledZipfian},
		ReadRatio: 1.0,
		Sizes:     SizeThumbnail,
		Seed:      seed,
		UseCase:   "Read Facebook user's Timeline.",
	}
}

// EditThumbnail edits a profile photo: scrambled zipfian, 50:50
// update-heavy, thumbnails.
func EditThumbnail(seed int64) Spec {
	return Spec{
		Name:      "edit_thumbnail",
		Keys:      DefaultKeys,
		Requests:  DefaultRequests,
		Dist:      DistSpec{Kind: ScrambledZipfian},
		ReadRatio: 0.5,
		Sizes:     SizeThumbnail,
		Seed:      seed,
		UseCase:   "Edit Profile Photo - Add filter/frame.",
	}
}

// TrendingPreview scrolls trending news previews: hotspot, read-only,
// mixed thumbnail/text/caption sizes.
func TrendingPreview(seed int64) Spec {
	return Spec{
		Name:      "trending_preview",
		Keys:      DefaultKeys,
		Requests:  DefaultRequests,
		Dist:      hotspotDefaults,
		ReadRatio: 1.0,
		Sizes:     SizeTrendingPreview,
		Seed:      seed,
		UseCase:   "Scroll through Facebook Trending News; preview the news photo thumbnail, caption and news summary.",
	}
}

// TableIII returns all five paper workload specs with the given seed.
func TableIII(seed int64) []Spec {
	return []Spec{
		Trending(seed),
		NewsFeed(seed),
		Timeline(seed),
		EditThumbnail(seed),
		TrendingPreview(seed),
	}
}

// SpecByName resolves a Table III workload by its name, returning false
// if unknown.
func SpecByName(name string, seed int64) (Spec, bool) {
	for _, s := range TableIII(seed) {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}
