package ycsb

import (
	"fmt"
	"io"
	"sort"
)

// Profile is a descriptive summary of a workload trace — the "knowledge
// of the access distribution across the key space" the paper identifies
// as the enabler of good sizing decisions (§III takeaways). It answers,
// before any profiling run, how much hot-set structure a trace has.
type Profile struct {
	Name     string
	Keys     int
	Requests int

	ReadFraction float64
	TotalBytes   int64
	MeanRecord   float64
	MaxRecord    int
	MinRecord    int

	// TouchedKeys counts keys receiving at least one request.
	TouchedKeys int
	// HotKeys50/90/99: how many of the most-accessed keys cover 50%,
	// 90%, 99% of all requests. Small values mean strong tiering
	// opportunity.
	HotKeys50, HotKeys90, HotKeys99 int
	// HotBytes90 is the byte footprint of the 90% hot set — the FastMem
	// capacity a frequency-perfect tiering would need.
	HotBytes90 int64
	// Gini is the Gini coefficient of the per-key access counts: 0 =
	// perfectly uniform, →1 = extremely skewed.
	Gini float64
}

// Describe computes the trace summary.
func Describe(w *Workload) Profile {
	p := Profile{
		Name:         w.Spec.Name,
		Keys:         len(w.Dataset.Records),
		Requests:     w.RequestCount(),
		ReadFraction: w.ReadFraction(),
		TotalBytes:   w.Dataset.TotalBytes,
	}
	if p.Keys == 0 {
		return p
	}
	p.MinRecord = w.Dataset.Records[0].Size
	for _, rec := range w.Dataset.Records {
		if rec.Size > p.MaxRecord {
			p.MaxRecord = rec.Size
		}
		if rec.Size < p.MinRecord {
			p.MinRecord = rec.Size
		}
	}
	p.MeanRecord = float64(p.TotalBytes) / float64(p.Keys)

	reads, writes := w.AccessCounts()
	counts := make([]keyCount, p.Keys)
	total := 0
	for i := range reads {
		c := reads[i] + writes[i]
		counts[i] = keyCount{i, c}
		total += c
		if c > 0 {
			p.TouchedKeys++
		}
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i].count > counts[j].count })

	if total > 0 {
		cum := 0
		var bytes90 int64
		for rank, e := range counts {
			cum += e.count
			frac := float64(cum) / float64(total)
			if p.HotKeys50 == 0 && frac >= 0.5 {
				p.HotKeys50 = rank + 1
			}
			if p.HotKeys90 == 0 && frac >= 0.9 {
				p.HotKeys90 = rank + 1
				p.HotBytes90 = bytes90 + int64(w.Dataset.Records[e.idx].Size)
			}
			if p.HotKeys99 == 0 && frac >= 0.99 {
				p.HotKeys99 = rank + 1
				break
			}
			bytes90 += int64(w.Dataset.Records[e.idx].Size)
		}
		p.Gini = gini(counts, total)
	}
	return p
}

// keyCount pairs a key index with its access count.
type keyCount struct{ idx, count int }

// gini computes the Gini coefficient from descending-sorted counts.
func gini(sortedDesc []keyCount, total int) float64 {
	n := len(sortedDesc)
	if n == 0 || total == 0 {
		return 0
	}
	// Standard formula over ascending order: G = (2·Σ i·x_i)/(n·Σx) − (n+1)/n.
	var weighted float64
	for i := n - 1; i >= 0; i-- {
		ascRank := n - i // 1-based rank in ascending order
		weighted += float64(ascRank) * float64(sortedDesc[i].count)
	}
	return 2*weighted/(float64(n)*float64(total)) - float64(n+1)/float64(n)
}

// Render writes the profile as a human-readable block.
func (p Profile) Render(w io.Writer) error {
	_, err := fmt.Fprintf(w,
		"workload %s: %d keys, %d requests, %.0f%% reads\n"+
			"  dataset: %d bytes total, records %d..%d (mean %.0f)\n"+
			"  touched keys: %d (%.1f%%)\n"+
			"  hot set: 50%% of requests hit %d keys; 90%% hit %d keys (%d bytes); 99%% hit %d keys\n"+
			"  access skew (Gini): %.3f\n",
		p.Name, p.Keys, p.Requests, p.ReadFraction*100,
		p.TotalBytes, p.MinRecord, p.MaxRecord, p.MeanRecord,
		p.TouchedKeys, percent(p.TouchedKeys, p.Keys),
		p.HotKeys50, p.HotKeys90, p.HotBytes90, p.HotKeys99,
		p.Gini)
	return err
}

func percent(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b) * 100
}
