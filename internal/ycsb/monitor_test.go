package ycsb

import (
	"strings"
	"testing"

	"mnemo/internal/kvstore"
)

const sampleMonitor = `OK
1530699284.926984 [0 127.0.0.1:51442] "GET" "user:1001"
1530699284.930000 [0 127.0.0.1:51442] "SET" "user:1001" "0123456789"
1530699285.000000 [0 127.0.0.1:51442] "GET" "user:1002"
1530699285.100000 [0 127.0.0.1:51442] "MGET" "user:1001" "user:1002"
1530699285.200000 [0 127.0.0.1:51442] "SETEX" "sess:9" "300" "abcd"
1530699285.300000 [0 127.0.0.1:51442] "PING"
1530699285.400000 [0 127.0.0.1:51442] "DEL" "user:1002"
1530699285.500000 [0 127.0.0.1:51442] "INCR" "counter"
`

func TestParseRedisMonitor(t *testing.T) {
	w, err := ParseRedisMonitor(strings.NewReader(sampleMonitor), 128)
	if err != nil {
		t.Fatal(err)
	}
	// Keys: user:1001, user:1002, sess:9, counter.
	if len(w.Dataset.Records) != 4 {
		t.Fatalf("records = %d, want 4", len(w.Dataset.Records))
	}
	// Ops: GET, SET, GET, 2×MGET reads, SETEX write, DEL, INCR = 8.
	if len(w.Ops) != 8 {
		t.Fatalf("ops = %d, want 8", len(w.Ops))
	}
	kinds := map[kvstore.OpKind]int{}
	for _, op := range w.Ops {
		kinds[op.Kind]++
	}
	if kinds[kvstore.Read] != 4 || kinds[kvstore.Write] != 3 || kinds[kvstore.Delete] != 1 {
		t.Fatalf("kind mix = %v", kinds)
	}
	// user:1001's size comes from its SET payload (10 bytes); counter
	// never saw a payload → default.
	bySize := map[string]int{}
	for _, rec := range w.Dataset.Records {
		bySize[rec.Key] = rec.Size
	}
	if bySize["user:1001"] != 10 {
		t.Errorf("user:1001 size %d, want 10", bySize["user:1001"])
	}
	if bySize["sess:9"] != 4 {
		t.Errorf("sess:9 size %d, want 4 (SETEX payload)", bySize["sess:9"])
	}
	if bySize["counter"] != 128 {
		t.Errorf("counter size %d, want default 128", bySize["counter"])
	}
	if w.Spec.Name != "redis_monitor" || w.Spec.Requests != 8 || w.Spec.Keys != 4 {
		t.Errorf("spec: %+v", w.Spec)
	}
}

func TestParseRedisMonitorEscapes(t *testing.T) {
	in := `1.0 [0 x] "SET" "key\"with\\quotes" "\x41\x42\n"` + "\n" +
		`1.1 [0 x] "GET" "key\"with\\quotes"` + "\n"
	w, err := ParseRedisMonitor(strings.NewReader(in), 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Dataset.Records) != 1 {
		t.Fatalf("escaped key not deduplicated: %d records", len(w.Dataset.Records))
	}
	if w.Dataset.Records[0].Key != `key"with\quotes` {
		t.Errorf("key = %q", w.Dataset.Records[0].Key)
	}
	if w.Dataset.Records[0].Size != 3 { // "AB\n"
		t.Errorf("payload size = %d, want 3", w.Dataset.Records[0].Size)
	}
}

func TestParseRedisMonitorErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"only noise":   "OK\n1.0 [0 x] \"PING\"\n",
		"keyless get":  `1.0 [0 x] "GET"` + "\n",
		"unterminated": `1.0 [0 x] "GET" "user` + "\n",
	}
	for name, in := range cases {
		if _, err := ParseRedisMonitor(strings.NewReader(in), 64); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := ParseRedisMonitor(strings.NewReader(sampleMonitor), 0); err == nil {
		t.Error("zero default size accepted")
	}
	if _, err := ParseRedisMonitor(strings.NewReader(sampleMonitor), 1<<31-1); err == nil {
		t.Error("absurd default size accepted")
	}
}

func TestParseRedisMonitorProfilesEndToEnd(t *testing.T) {
	// An imported trace behaves like any other workload descriptor.
	var b strings.Builder
	b.WriteString("OK\n")
	for i := 0; i < 50; i++ {
		key := KeyName(i % 10)
		b.WriteString(`1.0 [0 x] "SET" "` + key + `" "payloadpayload"` + "\n")
		b.WriteString(`1.1 [0 x] "GET" "` + key + `"` + "\n")
	}
	w, err := ParseRedisMonitor(strings.NewReader(b.String()), 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Ops) != 100 || len(w.Dataset.Records) != 10 {
		t.Fatalf("trace shape: %d ops, %d records", len(w.Ops), len(w.Dataset.Records))
	}
	order := w.TouchOrder()
	if len(order) != 10 {
		t.Fatalf("touch order len %d", len(order))
	}
	reads, writes := w.AccessCounts()
	for i := 0; i < 10; i++ {
		if reads[i] != 5 || writes[i] != 5 {
			t.Fatalf("key %d counts %d/%d, want 5/5", i, reads[i], writes[i])
		}
	}
}
