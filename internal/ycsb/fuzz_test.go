package ycsb

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV hammers the workload parser with arbitrary input: it must
// either return an error or a structurally consistent workload, never
// panic. Run with `go test -fuzz=FuzzReadCSV ./internal/ycsb`; the seeds
// below also execute as ordinary unit cases.
func FuzzReadCSV(f *testing.F) {
	f.Add("mnemo-workload,v1,t\nrec,k1,10\nop,k1,read\n")
	f.Add("mnemo-workload,v1,t\nrec,k1,10\nrec,k2,0\nop,k2,write\nop,k1,delete\n")
	f.Add("mnemo-workload,v1,\n")
	f.Add("")
	f.Add("garbage")
	f.Add("mnemo-workload,v1,t\nrec,k1,-3\n")
	f.Add("mnemo-workload,v1,t\nop,k1,read\n")
	f.Add("mnemo-workload,v1,t\nrec,\"a,b\",7\nop,\"a,b\",read\n")
	// Hostile inputs the hardened parser must reject, not absorb:
	// petabyte-scale declared sizes, overflowing integers, empty keys,
	// truncated rows.
	f.Add("mnemo-workload,v1,t\nrec,k1,1125899906842624\n")
	f.Add("mnemo-workload,v1,t\nrec,k1,99999999999999999999999999\n")
	f.Add("mnemo-workload,v1,t\nrec,,10\n")
	f.Add("mnemo-workload,v1,t\nrec,k1\n")
	f.Add("mnemo-workload,v1,t\nrec,k1,10,extra\n")
	f.Add("mnemo-workload,v1")
	f.Fuzz(func(t *testing.T, in string) {
		w, err := ReadCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		// Structural invariants of any accepted workload.
		if w.Spec.Keys != len(w.Dataset.Records) {
			t.Fatalf("keys %d != records %d", w.Spec.Keys, len(w.Dataset.Records))
		}
		if w.Spec.Requests != len(w.Ops) {
			t.Fatalf("requests %d != ops %d", w.Spec.Requests, len(w.Ops))
		}
		var total int64
		seen := map[string]bool{}
		for _, rec := range w.Dataset.Records {
			if rec.Size < 0 {
				t.Fatalf("negative record size %d", rec.Size)
			}
			if seen[rec.Key] {
				t.Fatalf("duplicate record %q accepted", rec.Key)
			}
			seen[rec.Key] = true
			total += int64(rec.Size)
		}
		if total != w.Dataset.TotalBytes {
			t.Fatalf("total bytes %d != sum %d", w.Dataset.TotalBytes, total)
		}
		for i, op := range w.Ops {
			if op.Key < 0 || op.Key >= len(w.Dataset.Records) {
				t.Fatalf("op %d references record %d of %d", i, op.Key, len(w.Dataset.Records))
			}
		}
		// An accepted workload must round-trip.
		var buf bytes.Buffer
		if err := w.WriteCSV(&buf); err != nil {
			t.Fatalf("round-trip write failed: %v", err)
		}
		if _, err := ReadCSV(&buf); err != nil {
			t.Fatalf("round-trip read failed: %v", err)
		}
	})
}

// FuzzParseRedisMonitor hammers the MONITOR-capture importer: arbitrary
// input must yield an error or a structurally consistent workload, never
// a panic — captures come straight off production machines and arrive
// truncated, interleaved and binary-laden.
func FuzzParseRedisMonitor(f *testing.F) {
	f.Add(`1530699284.926984 [0 127.0.0.1:51442] "GET" "user:1001"`, 100)
	f.Add(`1530699285.130800 [0 127.0.0.1:51442] "SET" "user:1001" "payload"`, 100)
	f.Add("OK\n"+`1.0 [0 c] "MGET" "a" "b" "c"`, 1)
	f.Add(`1.0 [0 c] "DEL" "a" "b"`, 64)
	f.Add(`"SET" "k" "\x41\x42"`+"\n"+`"GET" "k"`, 10)
	f.Add(`"SET" "unterminated`, 10)
	f.Add(`"SETEX" "k" "60" "v"`, 10)
	f.Add("", 100)
	f.Add("no quotes at all", 100)
	f.Add(`"INCR" "counter"`, -1)
	f.Add(`"GET" "k"`, 1<<31-1)
	f.Add("\"GET\" \"\\", 5)
	f.Fuzz(func(t *testing.T, in string, defaultSize int) {
		w, err := ParseRedisMonitor(strings.NewReader(in), defaultSize)
		if err != nil {
			return
		}
		if w.Spec.Keys != len(w.Dataset.Records) {
			t.Fatalf("keys %d != records %d", w.Spec.Keys, len(w.Dataset.Records))
		}
		if w.Spec.Requests != len(w.Ops) {
			t.Fatalf("requests %d != ops %d", w.Spec.Requests, len(w.Ops))
		}
		if len(w.Ops) == 0 {
			t.Fatal("accepted a capture with no data commands")
		}
		var total int64
		for _, rec := range w.Dataset.Records {
			if rec.Size <= 0 {
				t.Fatalf("record %q has non-positive size %d", rec.Key, rec.Size)
			}
			total += int64(rec.Size)
		}
		if total != w.Dataset.TotalBytes {
			t.Fatalf("total bytes %d != sum %d", w.Dataset.TotalBytes, total)
		}
		for i, op := range w.Ops {
			if op.Key < 0 || op.Key >= len(w.Dataset.Records) {
				t.Fatalf("op %d references record %d of %d", i, op.Key, len(w.Dataset.Records))
			}
		}
	})
}
