package ycsb

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"mnemo/internal/kvstore"
)

// ParseRedisMonitor converts a Redis MONITOR capture into a workload
// descriptor — the practical way to obtain the "representative key and
// request type sequence" Mnemo consumes (§IV) from a production cache.
//
// MONITOR lines look like:
//
//	1530699284.926984 [0 127.0.0.1:51442] "GET" "user:1001"
//	1530699285.130800 [0 127.0.0.1:51442] "SET" "user:1001" "....payload...."
//
// Command mapping: GET/MGET/GETRANGE/EXISTS → read; SET/SETEX/SETNX/
// APPEND/INCR*/DECR* → write; DEL/UNLINK → delete. Other commands
// (SELECT, PING, EXPIRE, …) are skipped. Record sizes are taken from the
// largest SET payload observed per key; keys never written use
// defaultSize (MONITOR does not show GET reply payloads).
func ParseRedisMonitor(r io.Reader, defaultSize int) (*Workload, error) {
	if defaultSize <= 0 {
		return nil, fmt.Errorf("ycsb: default record size %d must be positive", defaultSize)
	}
	if defaultSize > maxRecordSize {
		return nil, fmt.Errorf("ycsb: default record size %d exceeds the %d-byte limit",
			defaultSize, maxRecordSize)
	}
	w := &Workload{Spec: Spec{Name: "redis_monitor"}}
	index := map[string]int{}
	sizes := map[int]int{}
	type pendingOp struct {
		key  int
		kind kvstore.OpKind
	}
	var pending []pendingOp

	intern := func(key string) int {
		if idx, ok := index[key]; ok {
			return idx
		}
		idx := len(w.Dataset.Records)
		index[key] = idx
		w.Dataset.Records = append(w.Dataset.Records, Record{Key: key, ID: kvstore.KeyID(key)})
		return idx
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text == "OK" { // MONITOR's opening "OK"
			continue
		}
		fields, err := splitMonitorLine(text)
		if err != nil {
			return nil, fmt.Errorf("ycsb: monitor line %d: %w", line, err)
		}
		if len(fields) == 0 {
			continue
		}
		cmd := strings.ToUpper(fields[0])
		kind, argKeys, payloadIdx := classifyRedisCommand(cmd, len(fields))
		if kind < 0 {
			continue // uninteresting command
		}
		if len(fields) < 2 {
			return nil, fmt.Errorf("ycsb: monitor line %d: %s without a key", line, cmd)
		}
		for k := 1; k <= argKeys && k < len(fields); k++ {
			idx := intern(fields[k])
			pending = append(pending, pendingOp{key: idx, kind: kvstore.OpKind(kind)})
		}
		if payloadIdx > 0 && payloadIdx < len(fields) {
			idx := index[fields[1]]
			if n := len(fields[payloadIdx]); n > sizes[idx] {
				sizes[idx] = n
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ycsb: reading monitor log: %w", err)
	}
	if len(pending) == 0 {
		return nil, fmt.Errorf("ycsb: monitor log contained no data commands")
	}
	// Finalize record sizes, then ops.
	for i := range w.Dataset.Records {
		size, ok := sizes[i]
		if !ok || size == 0 {
			size = defaultSize
		}
		w.Dataset.Records[i].Size = size
		w.Dataset.TotalBytes += int64(size)
	}
	for _, p := range pending {
		w.Ops = append(w.Ops, Op{Key: p.key, Kind: p.kind})
	}
	w.Spec.Keys = len(w.Dataset.Records)
	w.Spec.Requests = len(w.Ops)
	w.Spec.ReadRatio = w.ReadFraction()
	w.Spec.UseCase = "imported from a Redis MONITOR capture"
	return w, nil
}

// classifyRedisCommand maps a command to an op kind (−1 = skip), the
// number of key arguments it touches, and the field index of a payload
// argument that reveals the value size (0 = none).
func classifyRedisCommand(cmd string, nfields int) (kind int, argKeys int, payloadIdx int) {
	switch cmd {
	case "GET", "GETRANGE", "STRLEN", "EXISTS", "TTL", "HGETALL", "LRANGE":
		return int(kvstore.Read), 1, 0
	case "MGET":
		return int(kvstore.Read), nfields - 1, 0
	case "SET", "SETNX", "GETSET":
		return int(kvstore.Write), 1, 2
	case "SETEX", "PSETEX":
		return int(kvstore.Write), 1, 3 // SETEX key seconds value
	case "APPEND", "HSET", "LPUSH", "RPUSH":
		return int(kvstore.Write), 1, 2
	case "INCR", "DECR", "INCRBY", "DECRBY", "INCRBYFLOAT":
		return int(kvstore.Write), 1, 0
	case "DEL", "UNLINK":
		return int(kvstore.Delete), nfields - 1, 0
	default:
		return -1, 0, 0
	}
}

// splitMonitorLine extracts the quoted fields of a MONITOR line,
// unescaping Redis's \xNN, \n, \r, \t, \\ and \" sequences. The
// timestamp/client prefix (everything before the first quote) is
// discarded; a prefix-only line yields no fields.
func splitMonitorLine(line string) ([]string, error) {
	var fields []string
	i := 0
	for i < len(line) {
		if line[i] != '"' {
			i++
			continue
		}
		i++ // consume opening quote
		var b strings.Builder
		closed := false
		for i < len(line) {
			c := line[i]
			if c == '"' {
				i++
				closed = true
				break
			}
			if c == '\\' && i+1 < len(line) {
				i++
				switch line[i] {
				case 'n':
					b.WriteByte('\n')
				case 'r':
					b.WriteByte('\r')
				case 't':
					b.WriteByte('\t')
				case '\\', '"':
					b.WriteByte(line[i])
				case 'x':
					if i+2 < len(line) {
						hi, ok1 := hexVal(line[i+1])
						lo, ok2 := hexVal(line[i+2])
						if ok1 && ok2 {
							b.WriteByte(hi<<4 | lo)
							i += 2
						} else {
							b.WriteByte('x')
						}
					} else {
						b.WriteByte('x')
					}
				default:
					b.WriteByte(line[i])
				}
				i++
				continue
			}
			b.WriteByte(c)
			i++
		}
		if !closed {
			return nil, fmt.Errorf("unterminated quote")
		}
		fields = append(fields, b.String())
	}
	return fields, nil
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	default:
		return 0, false
	}
}
