package ycsb

import (
	"bytes"
	"math"
	"testing"
)

func TestDescribeTrending(t *testing.T) {
	spec := Trending(7)
	spec.Keys = 1000
	spec.Requests = 50000
	w := MustGenerate(spec)
	p := Describe(w)
	if p.Keys != 1000 || p.Requests != 50000 {
		t.Fatalf("scale: %+v", p)
	}
	if p.ReadFraction != 1.0 {
		t.Errorf("read fraction %v", p.ReadFraction)
	}
	// Hotspot(20%, 90%): half the requests come from a small slice of
	// the 200 hot keys; 90% needs roughly the hot set.
	if p.HotKeys50 > 150 {
		t.Errorf("HotKeys50 = %d, want ≲150 for hotspot", p.HotKeys50)
	}
	if p.HotKeys90 < 150 || p.HotKeys90 > 450 {
		t.Errorf("HotKeys90 = %d, want ≈200-400", p.HotKeys90)
	}
	if p.HotBytes90 <= 0 || p.HotBytes90 >= p.TotalBytes {
		t.Errorf("HotBytes90 = %d of %d", p.HotBytes90, p.TotalBytes)
	}
	if p.Gini < 0.4 {
		t.Errorf("Gini %.3f too low for a hotspot trace", p.Gini)
	}
	var buf bytes.Buffer
	if err := p.Render(&buf); err != nil || buf.Len() == 0 {
		t.Fatal("render failed")
	}
}

func TestDescribeUniformLowSkew(t *testing.T) {
	w := MustGenerate(Spec{
		Name: "uni", Keys: 500, Requests: 50000,
		Dist: DistSpec{Kind: Uniform}, ReadRatio: 0.5, Sizes: SizeFixed1KB, Seed: 3,
	})
	p := Describe(w)
	if p.Gini > 0.15 {
		t.Errorf("uniform Gini %.3f too high", p.Gini)
	}
	// 50% of uniform requests need ≈50% of keys.
	if math.Abs(float64(p.HotKeys50)-250) > 40 {
		t.Errorf("uniform HotKeys50 = %d, want ≈250", p.HotKeys50)
	}
	if math.Abs(p.ReadFraction-0.5) > 0.02 {
		t.Errorf("read fraction %v", p.ReadFraction)
	}
	if p.MinRecord != 1024 || p.MaxRecord != 1024 {
		t.Errorf("fixed sizes: %d..%d", p.MinRecord, p.MaxRecord)
	}
}

func TestDescribeSkewOrdering(t *testing.T) {
	gen := func(kind DistKind) Profile {
		w := MustGenerate(Spec{
			Name: "x", Keys: 500, Requests: 50000,
			Dist: DistSpec{Kind: kind}, ReadRatio: 1, Sizes: SizeFixed1KB, Seed: 5,
		})
		return Describe(w)
	}
	uni := gen(Uniform)
	zipf := gen(Zipfian)
	if zipf.Gini <= uni.Gini {
		t.Errorf("zipfian Gini %.3f not above uniform %.3f", zipf.Gini, uni.Gini)
	}
	if zipf.HotKeys90 >= uni.HotKeys90 {
		t.Errorf("zipfian HotKeys90 %d not below uniform %d", zipf.HotKeys90, uni.HotKeys90)
	}
}

func TestDescribeEmptyWorkload(t *testing.T) {
	p := Describe(&Workload{Spec: Spec{Name: "empty"}})
	if p.Keys != 0 || p.Gini != 0 {
		t.Fatalf("empty describe: %+v", p)
	}
	var buf bytes.Buffer
	if err := p.Render(&buf); err != nil {
		t.Fatal(err)
	}
}
