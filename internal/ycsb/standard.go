package ycsb

import (
	"fmt"
	"math/rand"

	"mnemo/internal/kvstore"
)

// The default YCSB core workloads the paper's custom Table III traces are
// adapted from (Cooper et al., SoCC'10). They use the benchmark's stock
// parameters: zipfian or latest request distributions and ≈1 KB records
// (10 fields × 100 B). Workload E (short scans) is omitted — none of the
// profiled stores expose scans in this reproduction, and the paper does
// not use it either.

// WorkloadA is YCSB-A: update heavy, 50:50 read:update, zipfian.
func WorkloadA(seed int64) Spec {
	return Spec{
		Name:      "ycsb_a",
		Keys:      DefaultKeys,
		Requests:  DefaultRequests,
		Dist:      DistSpec{Kind: Zipfian},
		ReadRatio: 0.5,
		Sizes:     SizeFixed1KB,
		Seed:      seed,
		UseCase:   "YCSB-A: session store recording recent actions.",
	}
}

// WorkloadB is YCSB-B: read mostly, 95:5 read:update, zipfian.
func WorkloadB(seed int64) Spec {
	return Spec{
		Name:      "ycsb_b",
		Keys:      DefaultKeys,
		Requests:  DefaultRequests,
		Dist:      DistSpec{Kind: Zipfian},
		ReadRatio: 0.95,
		Sizes:     SizeFixed1KB,
		Seed:      seed,
		UseCase:   "YCSB-B: photo tagging; mostly reads, occasional tag updates.",
	}
}

// WorkloadC is YCSB-C: read only, zipfian.
func WorkloadC(seed int64) Spec {
	return Spec{
		Name:      "ycsb_c",
		Keys:      DefaultKeys,
		Requests:  DefaultRequests,
		Dist:      DistSpec{Kind: Zipfian},
		ReadRatio: 1.0,
		Sizes:     SizeFixed1KB,
		Seed:      seed,
		UseCase:   "YCSB-C: user profile cache.",
	}
}

// WorkloadD is YCSB-D: read latest, 95:5 read:insert. The reproduction's
// key space is fixed (Mnemo sizes a fixed dataset), so inserts become
// updates of the newest records, preserving the recency-skewed access
// pattern that defines D.
func WorkloadD(seed int64) Spec {
	return Spec{
		Name:      "ycsb_d",
		Keys:      DefaultKeys,
		Requests:  DefaultRequests,
		Dist:      DistSpec{Kind: Latest},
		ReadRatio: 0.95,
		Sizes:     SizeFixed1KB,
		Seed:      seed,
		UseCase:   "YCSB-D: user status updates; people read the latest.",
	}
}

// WorkloadF is YCSB-F: read-modify-write, 50:50 read:RMW, zipfian. See
// GenerateF: each RMW issues a read of the key immediately followed by a
// write of the same key, as the real benchmark does.
func WorkloadF(seed int64) Spec {
	return Spec{
		Name:      "ycsb_f",
		Keys:      DefaultKeys,
		Requests:  DefaultRequests,
		Dist:      DistSpec{Kind: Zipfian},
		ReadRatio: 0.5, // half of the logical operations are RMW
		Sizes:     SizeFixed1KB,
		Seed:      seed,
		UseCase:   "YCSB-F: user database; records read, modified, written back.",
	}
}

// StandardWorkloads returns the YCSB core specs (A, B, C, D, F).
func StandardWorkloads(seed int64) []Spec {
	return []Spec{WorkloadA(seed), WorkloadB(seed), WorkloadC(seed), WorkloadD(seed), WorkloadF(seed)}
}

// StandardByName resolves a YCSB core workload ("ycsb_a" … "ycsb_f").
func StandardByName(name string, seed int64) (Spec, bool) {
	for _, s := range StandardWorkloads(seed) {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// GenerateF builds the YCSB-F trace with true read-modify-write pairs:
// logical operations are drawn like any other workload, but each "write"
// becomes a read of the key immediately followed by a write of the same
// key. The trace therefore holds up to 1.5× Spec.Requests physical
// operations, as the real benchmark's RMW accounting does.
func GenerateF(seed int64, keys, requests int) (*Workload, error) {
	spec := WorkloadF(seed)
	spec.Keys = keys
	spec.Requests = requests
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	sizes := spec.Sizes.New()
	ds := Dataset{Records: make([]Record, spec.Keys)}
	for i := range ds.Records {
		key := KeyName(i)
		size := sizes.Next(rng)
		ds.Records[i] = Record{Key: key, ID: kvstore.KeyID(key), Size: size}
		ds.TotalBytes += int64(size)
	}
	chooser := spec.Dist.New(spec.Keys, spec.Requests)
	ops := make([]Op, 0, spec.Requests*3/2)
	for i := 0; i < spec.Requests; i++ {
		k := chooser.Next(rng)
		if rng.Float64() < spec.ReadRatio {
			ops = append(ops, Op{Key: k, Kind: kvstore.Read})
			continue
		}
		// Read-modify-write: read then write back the same key.
		ops = append(ops, Op{Key: k, Kind: kvstore.Read}, Op{Key: k, Kind: kvstore.Write})
	}
	w := &Workload{Spec: spec, Dataset: ds, Ops: ops}
	w.Spec.Requests = len(ops)
	return w, nil
}

// AnySpecByName resolves a Table III, YCSB core, or drift workload name.
func AnySpecByName(name string, seed int64) (Spec, bool) {
	if s, ok := SpecByName(name, seed); ok {
		return s, ok
	}
	if s, ok := StandardByName(name, seed); ok {
		return s, ok
	}
	return DriftByName(name, seed)
}

// AllWorkloadNames lists every built-in workload name.
func AllWorkloadNames() []string {
	var names []string
	for _, s := range TableIII(0) {
		names = append(names, s.Name)
	}
	for _, s := range StandardWorkloads(0) {
		names = append(names, s.Name)
	}
	for _, s := range DriftWorkloads(0) {
		names = append(names, s.Name)
	}
	return names
}

// mustNoDuplicateNames guards the preset registries at init time.
func init() {
	seen := map[string]bool{}
	for _, n := range AllWorkloadNames() {
		if seen[n] {
			panic(fmt.Sprintf("ycsb: duplicate workload name %q", n))
		}
		seen[n] = true
	}
}
