package ycsb

// Drift presets: non-stationary workloads whose hot set moves during the
// trace. Static placement pins one ordering for the whole run and can
// only capture the time-averaged popularity, which drift washes out —
// these are the workloads the adaptive (epoch-based) tiering policies
// are evaluated against. Both are read/write-only, so their traces pack
// into the batched replay kernel.

// HotDrift is the hot-set-drift workload: a 20%-of-keys hot window
// absorbing 90% of operations slides once across the whole key space
// over the trace. Read-only, thumbnails, like Trending — but Trending's
// hot set stands still and this one doesn't.
func HotDrift(seed int64) Spec {
	return Spec{
		Name:      "hot_drift",
		Keys:      DefaultKeys,
		Requests:  DefaultRequests,
		Dist:      DistSpec{Kind: HotSetDrift, HotSetFraction: 0.2, HotOpnFraction: 0.9},
		ReadRatio: 1.0,
		Sizes:     SizeThumbnail,
		Seed:      seed,
		UseCase:   "Trending News across a news day: the trending set keeps turning over.",
	}
}

// PhaseShift is the phase-change workload: the trace is four equal
// phases of scrambled zipfian whose popular keys move to an unrelated
// region at every boundary. Within a phase it is as tierable as
// Timeline; across phases no static placement is good.
func PhaseShift(seed int64) Spec {
	return Spec{
		Name:      "phase_shift",
		Keys:      DefaultKeys,
		Requests:  DefaultRequests,
		Dist:      DistSpec{Kind: PhaseChange, Phases: DefaultPhases},
		ReadRatio: 1.0,
		Sizes:     SizeThumbnail,
		Seed:      seed,
		UseCase:   "Timeline reads across audience shifts: each phase has an unrelated hot set.",
	}
}

// DriftWorkloads returns the drift workload specs with the given seed.
func DriftWorkloads(seed int64) []Spec {
	return []Spec{HotDrift(seed), PhaseShift(seed)}
}

// DriftByName resolves a drift workload ("hot_drift", "phase_shift").
func DriftByName(name string, seed int64) (Spec, bool) {
	for _, s := range DriftWorkloads(seed) {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}
