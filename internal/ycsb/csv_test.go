package ycsb

import (
	"bytes"
	"strings"
	"testing"

	"mnemo/internal/kvstore"
)

func TestCSVRoundTrip(t *testing.T) {
	spec := EditThumbnail(21)
	spec.Keys = 50
	spec.Requests = 500
	w := MustGenerate(spec)
	var buf bytes.Buffer
	if err := w.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Spec.Name != w.Spec.Name {
		t.Errorf("name %q != %q", got.Spec.Name, w.Spec.Name)
	}
	if len(got.Dataset.Records) != len(w.Dataset.Records) {
		t.Fatalf("records %d != %d", len(got.Dataset.Records), len(w.Dataset.Records))
	}
	for i := range got.Dataset.Records {
		if got.Dataset.Records[i] != w.Dataset.Records[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, got.Dataset.Records[i], w.Dataset.Records[i])
		}
	}
	if len(got.Ops) != len(w.Ops) {
		t.Fatalf("ops %d != %d", len(got.Ops), len(w.Ops))
	}
	for i := range got.Ops {
		if got.Ops[i] != w.Ops[i] {
			t.Fatalf("op %d differs", i)
		}
	}
	if got.Dataset.TotalBytes != w.Dataset.TotalBytes {
		t.Error("total bytes differ")
	}
	if got.Spec.Keys != 50 || got.Spec.Requests != 500 {
		t.Error("derived counts wrong")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"bad header":    "foo,v1,x\n",
		"bad version":   "mnemo-workload,v2,x\n",
		"bad size":      "mnemo-workload,v1,x\nrec,k1,notanumber\n",
		"negative size": "mnemo-workload,v1,x\nrec,k1,-5\n",
		"dup record":    "mnemo-workload,v1,x\nrec,k1,5\nrec,k1,6\n",
		"huge size":     "mnemo-workload,v1,x\nrec,k1,1125899906842624\n",
		"overflow size": "mnemo-workload,v1,x\nrec,k1,99999999999999999999999999\n",
		"empty key":     "mnemo-workload,v1,x\nrec,,5\n",
		"unknown key":   "mnemo-workload,v1,x\nop,k9,read\n",
		"unknown kind":  "mnemo-workload,v1,x\nrec,k1,5\nop,k1,scan\n",
		"unknown row":   "mnemo-workload,v1,x\nblah,k1,5\n",
		"ragged row":    "mnemo-workload,v1,x\nrec,k1\n",
		"short header":  "mnemo-workload,v1\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadCSVDeleteOps(t *testing.T) {
	in := "mnemo-workload,v1,t\nrec,k1,10\nop,k1,delete\n"
	w, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Ops) != 1 || w.Ops[0].Kind != kvstore.Delete {
		t.Fatalf("ops = %+v", w.Ops)
	}
}
