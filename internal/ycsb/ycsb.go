// Package ycsb generates the paper's custom YCSB workloads (Table III):
// fixed key spaces with per-key record sizes drawn from the Fig 4
// distributions, and request traces drawn from the Fig 3 key
// distributions with configurable read:write mixes.
//
// A generated Workload doubles as Mnemo's "workload descriptor": the
// paper's tool consumes exactly a key sequence with request types and a
// description of key-value sizes, which is what Trace/Dataset carry.
package ycsb

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"

	"mnemo/internal/dist"
	"mnemo/internal/kvstore"
)

// Defaults from Table III: "Number of keys is 10,000 and number of
// requests 100,000."
const (
	DefaultKeys     = 10_000
	DefaultRequests = 100_000
)

// DistKind selects a request distribution.
type DistKind int

// Supported request distributions (Fig 3), plus the non-stationary
// drift distributions used to evaluate adaptive tiering.
const (
	Uniform DistKind = iota
	Zipfian
	ScrambledZipfian
	Hotspot
	Latest
	HotSetDrift
	PhaseChange
)

// String implements fmt.Stringer.
func (k DistKind) String() string {
	switch k {
	case Uniform:
		return "uniform"
	case Zipfian:
		return "zipfian"
	case ScrambledZipfian:
		return "scrambled_zipfian"
	case Hotspot:
		return "hotspot"
	case Latest:
		return "latest"
	case HotSetDrift:
		return "hot_set_drift"
	case PhaseChange:
		return "phase_change"
	default:
		return fmt.Sprintf("DistKind(%d)", int(k))
	}
}

// DistSpec parameterizes a request distribution.
type DistSpec struct {
	Kind DistKind
	// Theta is the zipfian skew (Zipfian/ScrambledZipfian); 0 means the
	// YCSB default of 0.99.
	Theta float64
	// HotSetFraction and HotOpnFraction parameterize Hotspot and
	// HotSetDrift.
	HotSetFraction, HotOpnFraction float64
	// Phases is the number of distinct popularity regimes for
	// PhaseChange; 0 means the default of 4.
	Phases int
}

// DefaultPhases is the phase count used when DistSpec.Phases is zero.
const DefaultPhases = 4

// New builds the chooser for a key space of the given size and a trace of
// the given length.
func (d DistSpec) New(keys, requests int) dist.KeyChooser {
	theta := d.Theta
	if theta == 0 {
		theta = dist.ZipfianTheta
	}
	switch d.Kind {
	case Uniform:
		return dist.NewUniform(keys)
	case Zipfian:
		return dist.NewZipfian(keys, theta)
	case ScrambledZipfian:
		return dist.NewScrambledZipfian(keys, theta)
	case Hotspot:
		return dist.NewHotspot(keys, d.HotSetFraction, d.HotOpnFraction)
	case Latest:
		return dist.NewLatest(keys, requests)
	case HotSetDrift:
		return dist.NewHotSetDrift(keys, requests, d.HotSetFraction, d.HotOpnFraction)
	case PhaseChange:
		phases := d.Phases
		if phases == 0 {
			phases = DefaultPhases
		}
		return dist.NewPhaseChange(keys, requests, phases)
	default:
		panic(fmt.Sprintf("ycsb: unknown distribution kind %d", int(d.Kind)))
	}
}

// SizeKind selects a record-size distribution (Fig 4).
type SizeKind int

// Supported record-size models.
const (
	SizeThumbnail SizeKind = iota
	SizeTextPost
	SizePhotoCaption
	SizeTrendingPreview
	SizeFixed1KB
	SizeFixed10KB
	SizeFixed100KB
)

// String implements fmt.Stringer.
func (k SizeKind) String() string {
	switch k {
	case SizeThumbnail:
		return "thumbnail"
	case SizeTextPost:
		return "text_post"
	case SizePhotoCaption:
		return "photo_caption"
	case SizeTrendingPreview:
		return "trending_preview_mix"
	case SizeFixed1KB:
		return "fixed_1kb"
	case SizeFixed10KB:
		return "fixed_10kb"
	case SizeFixed100KB:
		return "fixed_100kb"
	default:
		return fmt.Sprintf("SizeKind(%d)", int(k))
	}
}

// New builds the size distribution.
func (k SizeKind) New() dist.SizeDist {
	switch k {
	case SizeThumbnail:
		return dist.Thumbnail()
	case SizeTextPost:
		return dist.TextPost()
	case SizePhotoCaption:
		return dist.PhotoCaption()
	case SizeTrendingPreview:
		return dist.TrendingPreviewMix()
	case SizeFixed1KB:
		return dist.NewFixed(1*dist.KB, "fixed_1kb")
	case SizeFixed10KB:
		return dist.NewFixed(10*dist.KB, "fixed_10kb")
	case SizeFixed100KB:
		return dist.NewFixed(100*dist.KB, "fixed_100kb")
	default:
		panic(fmt.Sprintf("ycsb: unknown size kind %d", int(k)))
	}
}

// Spec describes a workload to generate.
type Spec struct {
	Name      string
	Keys      int
	Requests  int
	Dist      DistSpec
	ReadRatio float64 // fraction of requests that are reads, in [0,1]
	Sizes     SizeKind
	Seed      int64
	// UseCase is the narrative scenario from Table III, for reports.
	UseCase string
}

// Validate checks the spec for consistency.
func (s Spec) Validate() error {
	if s.Keys <= 0 {
		return fmt.Errorf("ycsb: spec %q: keys %d must be positive", s.Name, s.Keys)
	}
	if s.Requests <= 0 {
		return fmt.Errorf("ycsb: spec %q: requests %d must be positive", s.Name, s.Requests)
	}
	if s.ReadRatio < 0 || s.ReadRatio > 1 {
		return fmt.Errorf("ycsb: spec %q: read ratio %v outside [0,1]", s.Name, s.ReadRatio)
	}
	return nil
}

// Record is one key-value pair of the dataset.
type Record struct {
	Key  string
	ID   uint64 // kvstore.KeyID(Key), cached
	Size int    // value size in bytes; fixed for the workload's lifetime
}

// Dataset is the fixed key population of a workload. The paper fixes the
// total memory capacity to the dataset size, so TotalBytes is the C of
// the cost model.
type Dataset struct {
	Records    []Record
	TotalBytes int64
}

// Op is one request of the trace, referring to a record by index.
type Op struct {
	Key  int // index into Dataset.Records
	Kind kvstore.OpKind
}

// Workload is a generated dataset plus request trace — the full workload
// descriptor Mnemo consumes. The trace has three possible backings, in
// lookup order: materialized Ops, the packed struct-of-arrays encoding
// (shard sub-workloads), or a Stream (an on-disk .mtrc trace yielded
// frame by frame, for traces larger than memory).
type Workload struct {
	Spec    Spec
	Dataset Dataset
	Ops     []Op

	// Stream backs the trace with an external frame source instead of
	// in-memory ops. A streamed workload has nil Ops and a nil packed
	// encoding; replay consumes frames directly (internal/client), and
	// the trace-wide helpers below iterate the stream.
	Stream TraceStream

	// packed caches the struct-of-arrays trace encoding; built at most
	// once (Packed), shared by every deployment replaying this workload.
	packedOnce sync.Once
	packed     *PackedTrace
}

// FrameIter yields a trace's frames in order. The returned slices alias
// iterator-owned buffers valid until the next call; rw reports that the
// frame holds only Read and Write ops (the batched kernel's per-frame
// precondition). The iterator ends with io.EOF.
type FrameIter interface {
	Next() (keys []uint32, kinds []uint8, rw bool, err error)
}

// TraceStream is a re-iterable source of trace frames — the contract an
// on-disk trace (internal/trace) satisfies. Frames must return a fresh,
// independent iterator positioned at the first frame on every call:
// repetitions, retried shards and trace-wide statistics each stream the
// trace again from the start.
type TraceStream interface {
	// Requests is the total op count across all frames.
	Requests() int
	// Frames starts a new iteration from the first frame.
	Frames() (FrameIter, error)
}

// PackedTrace is the struct-of-arrays encoding of a request trace for
// the batched replay kernel (DESIGN.md §12): one packed uint32 record
// index and one uint8 op kind per request, so a replay block streams two
// dense arrays instead of loading 16-byte Op structs.
type PackedTrace struct {
	Keys  []uint32
	Kinds []uint8
	// readWriteOnly reports that the trace contains only Read and Write
	// ops — the precondition of table-driven replay, which cannot price
	// deletions against a static dataset.
	readWriteOnly bool
}

// Batchable reports whether this encoding can drive the batched replay
// kernel. Nil-safe: a nil PackedTrace (trace not encodable) is not
// batchable.
func (t *PackedTrace) Batchable() bool { return t != nil && t.readWriteOnly }

// Packed returns the workload's struct-of-arrays trace encoding, built
// lazily and cached; concurrent callers (parallel measurement runs share
// one *Workload) get the same instance. It returns nil when the trace is
// not encodable (key indices beyond uint32). The encoding is read-only —
// callers must not mutate it, and it goes stale if Ops is modified after
// the first call.
func (w *Workload) Packed() *PackedTrace {
	if w.Stream != nil {
		// A streamed trace is never materialized; replay consumes frames.
		return nil
	}
	w.packedOnce.Do(func() {
		if len(w.Dataset.Records) > math.MaxUint32 {
			return
		}
		pt := &PackedTrace{
			Keys:          make([]uint32, len(w.Ops)),
			Kinds:         make([]uint8, len(w.Ops)),
			readWriteOnly: true,
		}
		for i, op := range w.Ops {
			pt.Keys[i] = uint32(op.Key)
			pt.Kinds[i] = uint8(op.Kind)
			if op.Kind != kvstore.Read && op.Kind != kvstore.Write {
				pt.readWriteOnly = false
			}
		}
		w.packed = pt
	})
	return w.packed
}

// KeyName formats the canonical key string for a key index.
func KeyName(i int) string { return fmt.Sprintf("user%08d", i) }

// FromPacked builds a workload whose trace exists only in packed form
// (Ops stays nil): the struct-of-arrays encoding is installed directly
// and the packing Once is consumed at construction. The shard
// partitioner uses this to split batchable traces without ever
// materializing 16-byte Ops per shard. Keys and kinds must reference
// ds.Records; the caller transfers ownership of both slices.
func FromPacked(spec Spec, ds Dataset, keys []uint32, kinds []uint8) *Workload {
	pt := &PackedTrace{Keys: keys, Kinds: kinds, readWriteOnly: true}
	for _, k := range kinds {
		if kvstore.OpKind(k) != kvstore.Read && kvstore.OpKind(k) != kvstore.Write {
			pt.readWriteOnly = false
			break
		}
	}
	w := &Workload{Spec: spec, Dataset: ds}
	w.packedOnce.Do(func() { w.packed = pt })
	return w
}

// RequestCount returns the trace length regardless of representation:
// Ops when materialized, the stream's declared total, or the packed
// encoding.
func (w *Workload) RequestCount() int {
	if w.Ops != nil {
		return len(w.Ops)
	}
	if w.Stream != nil {
		return w.Stream.Requests()
	}
	if pt := w.Packed(); pt != nil {
		return len(pt.Keys)
	}
	return 0
}

// ForEachOp visits every trace op in order, whichever backing the trace
// has: materialized Ops, the packed encoding, or a stream (iterated
// frame by frame in O(frame) memory). It is the trace-wide iteration
// primitive behind AccessCounts, TouchOrder and ReadFraction, and the
// one policies should use instead of reaching for w.Ops. The only error
// source is a stream that fails to decode.
func (w *Workload) ForEachOp(fn func(key int, kind kvstore.OpKind)) error {
	switch {
	case w.Ops != nil:
		for _, op := range w.Ops {
			fn(op.Key, op.Kind)
		}
	case w.Stream != nil:
		it, err := w.Stream.Frames()
		if err != nil {
			return err
		}
		for {
			keys, kinds, _, err := it.Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			for i := range keys {
				fn(int(keys[i]), kvstore.OpKind(kinds[i]))
			}
		}
	default:
		if pt := w.Packed(); pt != nil {
			for i := range pt.Keys {
				fn(int(pt.Keys[i]), kvstore.OpKind(pt.Kinds[i]))
			}
		}
	}
	return nil
}

// Generate builds the workload deterministically from its spec and
// seed. It is GenerateStream with the frames materialized — one
// implementation, so the in-memory and streamed op sequences cannot
// drift.
func Generate(spec Spec) (*Workload, error) {
	ops := make([]Op, 0, spec.Requests)
	ds, err := GenerateStream(spec, nil, func(keys []uint32, kinds []uint8) error {
		for i := range keys {
			ops = append(ops, Op{Key: int(keys[i]), Kind: kvstore.OpKind(kinds[i])})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Workload{Spec: spec, Dataset: ds, Ops: ops}, nil
}

// MustGenerate is Generate that panics on error, for presets known valid.
func MustGenerate(spec Spec) *Workload {
	w, err := Generate(spec)
	if err != nil {
		panic(err)
	}
	return w
}

// AccessCounts tallies per-key read and write counts over the trace —
// the Req(keys) relationship the Pattern Engine extracts. It works on
// every trace backing (Ops, packed, stream); a stream that fails to
// decode mid-iteration yields the counts accumulated so far — replay of
// the same stream surfaces the error loudly.
func (w *Workload) AccessCounts() (reads, writes []int) {
	reads = make([]int, len(w.Dataset.Records))
	writes = make([]int, len(w.Dataset.Records))
	_ = w.ForEachOp(func(key int, kind kvstore.OpKind) {
		if kind == kvstore.Read {
			reads[key]++
		} else {
			writes[key]++
		}
	})
	return reads, writes
}

// TouchOrder returns key indices in order of first touch by the trace;
// untouched keys follow in index order. This is the incremental sizing
// order of stand-alone Mnemo ("with the keys as they get accessed
// (touched) by the workload access pattern").
func (w *Workload) TouchOrder() []int {
	seen := make([]bool, len(w.Dataset.Records))
	order := make([]int, 0, len(w.Dataset.Records))
	_ = w.ForEachOp(func(key int, _ kvstore.OpKind) {
		if !seen[key] {
			seen[key] = true
			order = append(order, key)
		}
	})
	for i := range seen {
		if !seen[i] {
			order = append(order, i)
		}
	}
	return order
}

// Downsample reduces the trace by the given factor using the paper's
// scheme: "evict from the workload random key requests at fixed
// intervals" — one surviving request is kept per block of factor
// requests, chosen uniformly within the block, preserving both ordering
// and the key distribution. The dataset is unchanged. factor 1 returns a
// copy.
func (w *Workload) Downsample(factor int, seed int64) *Workload {
	if factor <= 0 {
		panic(fmt.Sprintf("ycsb: downsample factor %d must be positive", factor))
	}
	if w.Stream != nil {
		// Downsampling materializes the surviving ops; a streamed trace
		// must be regenerated (or captured) at the reduced rate instead.
		panic("ycsb: downsample is not supported on streamed traces")
	}
	out := &Workload{Spec: w.Spec, Dataset: w.Dataset}
	out.Spec.Name = fmt.Sprintf("%s/ds%d", w.Spec.Name, factor)
	if factor == 1 {
		out.Ops = append([]Op(nil), w.Ops...)
		out.Spec.Requests = len(out.Ops)
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	for start := 0; start < len(w.Ops); start += factor {
		end := start + factor
		if end > len(w.Ops) {
			end = len(w.Ops)
		}
		out.Ops = append(out.Ops, w.Ops[start+rng.Intn(end-start)])
	}
	out.Spec.Requests = len(out.Ops)
	return out
}

// ReadFraction reports the measured fraction of reads in the trace, on
// any trace backing.
func (w *Workload) ReadFraction() float64 {
	reads, total := 0, 0
	_ = w.ForEachOp(func(_ int, kind kvstore.OpKind) {
		total++
		if kind == kvstore.Read {
			reads++
		}
	})
	if total == 0 {
		return 0
	}
	return float64(reads) / float64(total)
}

// StreamFrameOps is the frame granularity of GenerateStream, equal to
// the batched replay kernel's block size and the .mtrc frame bound.
const StreamFrameOps = 4096

// GenerateStream is Generate for traces too large to materialize: the
// dataset is built eagerly (it is O(keys), the part every consumer
// needs resident) and the request trace is emitted through the emit
// callback in StreamFrameOps-sized batches, using memory bounded by one
// batch. begin, if non-nil, runs once between the dataset build and the
// first frame — a trace writer uses it to emit its schema header, whose
// value-size table comes from the dataset. The op sequence is
// bit-identical to Generate's for the same spec — the RNG draw order is
// the same — so a trace written through emit replays exactly like the
// in-memory workload.
func GenerateStream(spec Spec, begin func(ds *Dataset) error, emit func(keys []uint32, kinds []uint8) error) (Dataset, error) {
	if err := spec.Validate(); err != nil {
		return Dataset{}, err
	}
	if spec.Keys > math.MaxUint32 {
		return Dataset{}, fmt.Errorf("ycsb: spec %q: %d keys exceed the packed key index range", spec.Name, spec.Keys)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	sizes := spec.Sizes.New()
	ds := Dataset{Records: make([]Record, spec.Keys)}
	for i := range ds.Records {
		key := KeyName(i)
		size := sizes.Next(rng)
		ds.Records[i] = Record{Key: key, ID: kvstore.KeyID(key), Size: size}
		ds.TotalBytes += int64(size)
	}
	if begin != nil {
		if err := begin(&ds); err != nil {
			return Dataset{}, err
		}
	}
	chooser := spec.Dist.New(spec.Keys, spec.Requests)
	var keys [StreamFrameOps]uint32
	var kinds [StreamFrameOps]uint8
	n := 0
	for i := 0; i < spec.Requests; i++ {
		k := chooser.Next(rng)
		kind := kvstore.Read
		if rng.Float64() >= spec.ReadRatio {
			kind = kvstore.Write
		}
		keys[n] = uint32(k)
		kinds[n] = uint8(kind)
		n++
		if n == StreamFrameOps {
			if err := emit(keys[:n], kinds[:n]); err != nil {
				return Dataset{}, err
			}
			n = 0
		}
	}
	if n > 0 {
		if err := emit(keys[:n], kinds[:n]); err != nil {
			return Dataset{}, err
		}
	}
	return ds, nil
}
