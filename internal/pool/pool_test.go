package pool

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersClamp(t *testing.T) {
	if got := Workers(0, 8); got != runtime.GOMAXPROCS(0) && got != 8 {
		// Workers(0, n) is GOMAXPROCS clamped to n.
		if want := runtime.GOMAXPROCS(0); want < 8 && got != want {
			t.Fatalf("Workers(0,8) = %d, want min(GOMAXPROCS, 8)", got)
		}
	}
	if got := Workers(16, 4); got != 4 {
		t.Fatalf("Workers(16,4) = %d, want 4", got)
	}
	if got := Workers(-3, 4); got < 1 || got > 4 {
		t.Fatalf("Workers(-3,4) = %d out of [1,4]", got)
	}
	if got := Workers(2, 0); got != 1 {
		t.Fatalf("Workers(2,0) = %d, want 1", got)
	}
}

func TestRunCtxRunsAllJobs(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		var hits [100]int32
		if err := RunCtx(context.Background(), len(hits), workers, func(i int) {
			atomic.AddInt32(&hits[i], 1)
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestRunCtxNilContext(t *testing.T) {
	ran := false
	if err := RunCtx(nil, 1, 1, func(int) { ran = true }); err != nil || !ran {
		t.Fatalf("nil ctx: err=%v ran=%v", err, ran)
	}
}

func TestRunCtxPanicBecomesTypedError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := RunCtx(context.Background(), 8, workers, func(i int) {
			if i == 3 {
				panic("boom")
			}
		})
		var perr *PanicError
		if !errors.As(err, &perr) {
			t.Fatalf("workers=%d: err = %v (%T), want *PanicError", workers, err, err)
		}
		if workers == 1 && perr.Job != 3 {
			t.Fatalf("serial panic job = %d, want 3", perr.Job)
		}
		if perr.Value != "boom" {
			t.Fatalf("panic value = %v, want boom", perr.Value)
		}
		if len(perr.Stack) == 0 || !strings.Contains(string(perr.Stack), "pool") {
			t.Fatalf("panic stack missing: %q", perr.Stack)
		}
		if !strings.Contains(perr.Error(), "panicked") {
			t.Fatalf("Error() = %q", perr.Error())
		}
	}
}

// TestRunCtxPanicDoesNotWedgeFeeder is the regression test for the
// deadlock the hardened pool exists to prevent: with far more jobs than
// workers, a panicking worker used to leave the feeder blocked on
// `jobs <-` forever. The drain path must let RunCtx return promptly.
func TestRunCtxPanicDoesNotWedgeFeeder(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		done <- RunCtx(context.Background(), 10_000, 2, func(i int) {
			panic(i)
		})
	}()
	select {
	case err := <-done:
		var perr *PanicError
		if !errors.As(err, &perr) {
			t.Fatalf("err = %v, want *PanicError", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunCtx wedged after a worker panic")
	}
}

func TestRunCtxCancellation(t *testing.T) {
	for _, workers := range []int{1, 3} {
		ctx, cancel := context.WithCancel(context.Background())
		var started atomic.Int32
		err := RunCtx(ctx, 1000, workers, func(i int) {
			if started.Add(1) == 2 {
				cancel()
			}
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if n := started.Load(); n >= 1000 {
			t.Fatalf("workers=%d: cancellation did not stop the sweep (%d jobs ran)", workers, n)
		}
	}
}

func TestRunCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	err := RunCtx(ctx, 1<<30, 2, func(i int) { time.Sleep(100 * time.Microsecond) })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestRunCtxPanicWinsOverCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := RunCtx(ctx, 100, 2, func(i int) {
		cancel()
		panic("late")
	})
	var perr *PanicError
	if !errors.As(err, &perr) {
		t.Fatalf("err = %v, want *PanicError to win over cancellation", err)
	}
}

func TestRunCtxNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		_ = RunCtx(context.Background(), 64, 8, func(j int) {
			if j == 13 {
				panic("leak check")
			}
		})
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}

func TestRunPreservesPanicSemantics(t *testing.T) {
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("Run swallowed the panic")
		}
		if _, ok := v.(*PanicError); !ok {
			t.Fatalf("recovered %T, want *PanicError", v)
		}
	}()
	Run(4, 2, func(i int) { panic("legacy") })
}

func TestGuard(t *testing.T) {
	if perr := Guard(7, func() {}); perr != nil {
		t.Fatalf("Guard of clean fn = %v", perr)
	}
	perr := Guard(7, func() { panic("g") })
	if perr == nil || perr.Job != 7 || perr.Value != "g" {
		t.Fatalf("Guard = %+v", perr)
	}
}
