// Package pool provides the bounded worker pool shared by the
// reproduction's embarrassingly parallel sweeps: repeated measurement
// runs (internal/client.ExecuteMean), the two baseline executions
// (internal/core.SensitivityEngine) and the workload×engine profiling
// matrix (mnemo.ProfileMatrix). Each job owns its state (deployment,
// noise stream, accumulators), so parallel execution changes wall-clock
// time only — results are folded by the caller in job-index order,
// keeping parallel output bit-identical to serial.
package pool

import (
	"runtime"
	"sync"
)

// Workers clamps a requested worker count to [1, n] jobs, defaulting to
// GOMAXPROCS when the request is non-positive.
func Workers(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes fn(0) … fn(n-1) across at most `workers` goroutines and
// returns once all calls have finished. Job indices are handed out in
// ascending order; with workers ≤ 1 the calls run sequentially on the
// calling goroutine, so a serial reference execution is the workers=1
// special case of the same code path. fn must write its result into
// caller-owned, index-addressed storage rather than shared state.
func Run(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}
