// Package pool provides the bounded worker pool shared by the
// reproduction's embarrassingly parallel sweeps: repeated measurement
// runs (internal/client.ExecuteMean), the two baseline executions
// (internal/core.SensitivityEngine) and the workload×engine profiling
// matrix (mnemo.ProfileMatrix). Each job owns its state (deployment,
// noise stream, accumulators), so parallel execution changes wall-clock
// time only — results are folded by the caller in job-index order,
// keeping parallel output bit-identical to serial.
//
// RunCtx is the hardened entry point: it honors context cancellation
// between jobs and converts a panicking job into a typed *PanicError
// instead of crashing the process or wedging the feeder goroutine.
package pool

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"mnemo/internal/obs"
)

// Workers clamps a requested worker count to [1, n] jobs, defaulting to
// GOMAXPROCS when the request is non-positive.
func Workers(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// PanicError is a panic recovered from a pool job, carrying the job
// index, the recovered value and the stack of the panicking goroutine.
// It is the typed error RunCtx returns so a sweep can report which cell
// blew up without taking the process down.
type PanicError struct {
	Job   int
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("pool: job %d panicked: %v", e.Job, e.Value)
}

// Guard runs fn, converting a panic into a *PanicError tagged with the
// given job index (nil when fn returns normally). Callers that want
// per-job failure isolation — e.g. a matrix sweep recording one cell's
// panic as that cell's error — wrap their job body in Guard so RunCtx
// never sees the panic at all.
func Guard(job int, fn func()) (perr *PanicError) {
	defer func() {
		if v := recover(); v != nil {
			perr = &PanicError{Job: job, Value: v, Stack: debug.Stack()}
		}
	}()
	fn()
	return nil
}

// Run executes fn(0) … fn(n-1) across at most `workers` goroutines and
// returns once all calls have finished. Job indices are handed out in
// ascending order; with workers ≤ 1 the calls run sequentially on the
// calling goroutine, so a serial reference execution is the workers=1
// special case of the same code path. fn must write its result into
// caller-owned, index-addressed storage rather than shared state.
//
// A panic in fn is re-raised on the calling goroutine (as a *PanicError
// carrying the original value and stack) after the pool has shut down
// cleanly — workers exit, no goroutine leaks. Callers that want an
// error instead use RunCtx.
func Run(n, workers int, fn func(i int)) {
	if err := RunCtx(context.Background(), n, workers, fn); err != nil {
		// Background context cannot be cancelled, so the only possible
		// error is a recovered job panic; preserve panic semantics for
		// legacy callers.
		panic(err)
	}
}

// RunCtx is Run with cancellation and panic containment. It executes
// fn(0) … fn(n-1) across at most `workers` goroutines and returns nil
// once all jobs have finished.
//
// Cancellation: when ctx is cancelled (or its deadline passes) no new
// jobs are started; in-flight jobs run to completion and RunCtx returns
// ctx.Err(). Jobs that never started simply leave their index-addressed
// result slot untouched, so the caller observes a clean partial result.
//
// Panics: the first panicking job is recovered and converted into a
// *PanicError (job index, panic value, stack). Remaining queued jobs are
// drained without running, the feeder never blocks on a dead pool, and
// every worker goroutine exits before RunCtx returns. A panic takes
// precedence over a concurrent cancellation in the returned error.
func RunCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	return RunObs(ctx, n, workers, nil, fn)
}

// RunObs is RunCtx with observability: the sink's pool metrics count
// completed jobs and contained panics, and a busy-worker gauge tracks
// occupancy while jobs execute. A nil sink records nothing and changes
// no behavior — RunCtx is exactly RunObs with a nil sink.
func RunObs(ctx context.Context, n, workers int, sink *obs.Sink, fn func(i int)) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	tel := newPoolTelemetry(sink)
	workers = Workers(workers, n)
	// Under a shared worker budget (nested fan-outs; see Budget), the
	// calling goroutine is an implicit worker and each one beyond it
	// needs a token. Acquisition is non-blocking: a pool that gets
	// nothing runs the serial path below — same code, same job order.
	if b := BudgetFrom(ctx); b != nil && workers > 1 {
		granted := b.TryAcquire(workers - 1)
		defer b.ReleaseN(granted)
		workers = 1 + granted
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if perr := tel.guard(i, fn); perr != nil {
				return perr
			}
		}
		return nil
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	var failed atomic.Bool
	var mu sync.Mutex
	var first *PanicError
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if failed.Load() {
					continue // drain: keep the feeder unblocked, run nothing
				}
				if perr := tel.guard(i, fn); perr != nil {
					mu.Lock()
					if first == nil {
						first = perr
					}
					mu.Unlock()
					failed.Store(true)
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		if failed.Load() {
			break
		}
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	mu.Lock()
	perr := first
	mu.Unlock()
	if perr != nil {
		return perr
	}
	return ctx.Err()
}

// poolTelemetry pre-resolves the pool's metric handles once per Run so
// the per-job cost with a live sink is two atomic adds and a gauge
// swing; with a nil sink every handle is nil and each call degrades to
// an inert branch.
type poolTelemetry struct {
	sink *obs.Sink
	jobs *obs.Counter // mnemo_pool_jobs_total
	pan  *obs.Counter // mnemo_pool_panics_total
	busy *obs.Gauge   // mnemo_pool_workers_busy
}

func newPoolTelemetry(s *obs.Sink) poolTelemetry {
	if s == nil {
		return poolTelemetry{}
	}
	return poolTelemetry{
		sink: s,
		jobs: s.Counter("mnemo_pool_jobs_total"),
		pan:  s.Counter("mnemo_pool_panics_total"),
		busy: s.Gauge("mnemo_pool_workers_busy"),
	}
}

// guard wraps one job in Guard plus occupancy accounting and panic
// telemetry.
func (t *poolTelemetry) guard(i int, fn func(int)) *PanicError {
	t.busy.Add(1)
	perr := Guard(i, func() { fn(i) })
	t.busy.Add(-1)
	t.jobs.Inc()
	if perr != nil {
		t.pan.Inc()
		t.sink.Eventf(obs.EventPanic, "pool", 0, "job %d panicked: %v", perr.Job, perr.Value)
	}
	return perr
}
