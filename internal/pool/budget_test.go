package pool

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestBudgetTryAcquire(t *testing.T) {
	b := NewBudget(3)
	if got := b.TryAcquire(2); got != 2 {
		t.Fatalf("TryAcquire(2) = %d", got)
	}
	if got := b.TryAcquire(5); got != 1 {
		t.Fatalf("TryAcquire(5) on 1 remaining = %d", got)
	}
	if got := b.TryAcquire(1); got != 0 {
		t.Fatalf("TryAcquire on empty budget = %d", got)
	}
	b.ReleaseN(3)
	if b.Extra() != 3 {
		t.Fatalf("Extra() = %d after full release", b.Extra())
	}
	if NewBudget(-1).Extra() != 0 {
		t.Fatal("negative allowance should clamp to 0")
	}
}

// TestNestedFanOutsShareBudget composes two pool layers — an outer
// 4-way fan-out whose every job runs an inner 8-way fan-out — under one
// 3-extra-worker budget, and asserts peak concurrent job execution
// never exceeds callers+extra. Without the budget this shape runs up to
// 4×8 jobs at once.
func TestNestedFanOutsShareBudget(t *testing.T) {
	const extra = 3
	ctx := WithBudget(context.Background(), NewBudget(extra))
	var active, peak atomic.Int64
	var mu sync.Mutex
	job := func(int) {
		a := active.Add(1)
		mu.Lock()
		if a > peak.Load() {
			peak.Store(a)
		}
		mu.Unlock()
		for i := 0; i < 1000; i++ {
			_ = i * i
		}
		active.Add(-1)
	}
	var inner atomic.Int64
	if err := RunObs(ctx, 4, 4, nil, func(int) {
		if err := RunObs(ctx, 8, 8, nil, func(i int) {
			inner.Add(1)
			job(i)
		}); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if inner.Load() != 32 {
		t.Fatalf("ran %d inner jobs, want 32", inner.Load())
	}
	// Outer workers run inner jobs on their own goroutines (1 implicit
	// worker each) plus whatever extra tokens they win; jobs in flight
	// can never exceed the outer width plus the shared allowance.
	if p := peak.Load(); p > 4+extra {
		t.Fatalf("peak concurrency %d exceeds bound %d", p, 4+extra)
	}
	if got := BudgetFrom(ctx).Extra(); got != extra {
		t.Fatalf("budget leaked: %d of %d tokens returned", got, extra)
	}
}

// TestBudgetReleasedOnEarlyReturn is the hedge-loser leak regression:
// every early-return path out of RunObs — cancellation mid-feed, a
// panicking job — must hand its acquired tokens back, or a sharded
// client that hedges and cancels repeatedly would bleed the process-wide
// allowance down to serial execution.
func TestBudgetReleasedOnEarlyReturn(t *testing.T) {
	const extra = 4
	b := NewBudget(extra)
	ctx := WithBudget(context.Background(), b)

	// Cancellation mid-feed: workers drain and return their tokens. The
	// first job to start triggers the cancel; every job blocks on the
	// context, so RunObs can only return via the cancellation path.
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	started := make(chan struct{})
	var once sync.Once
	go func() {
		<-started
		cancel()
	}()
	err := RunObs(cctx, 64, 8, nil, func(i int) {
		once.Do(func() { close(started) })
		<-cctx.Done()
	})
	if err == nil {
		t.Fatal("cancelled fan-out returned nil")
	}
	if got := b.Extra(); got != extra {
		t.Fatalf("budget leaked after cancellation: %d of %d tokens", got, extra)
	}

	// A panicking job: the pool shuts down cleanly and still releases.
	perr := RunObs(ctx, 16, 8, nil, func(i int) {
		if i == 3 {
			panic("boom")
		}
	})
	var pe *PanicError
	if !errors.As(perr, &pe) {
		t.Fatalf("got %v, want a *PanicError", perr)
	}
	if got := b.Extra(); got != extra {
		t.Fatalf("budget leaked after panic: %d of %d tokens", got, extra)
	}
}

func TestEnsureBudget(t *testing.T) {
	ctx := EnsureBudget(context.Background())
	b := BudgetFrom(ctx)
	if b == nil {
		t.Fatal("EnsureBudget installed nothing")
	}
	if again := EnsureBudget(ctx); BudgetFrom(again) != b {
		t.Fatal("EnsureBudget replaced an existing budget")
	}
	if BudgetFrom(context.Background()) != nil {
		t.Fatal("BudgetFrom invented a budget")
	}
	if BudgetFrom(nil) != nil { //nolint:staticcheck // nil-safety contract
		t.Fatal("BudgetFrom(nil) should be nil")
	}
}
