package pool

import (
	"context"
	"runtime"
)

// Budget is a process-wide extra-worker allowance shared by nested
// fan-outs. Composed parallel layers — validation points × repeated
// runs × per-shard replay — each ask the pool for workers; without a
// shared cap the products multiply into far more goroutines than cores
// (Validate×ExecuteMean×Shards on an 8-way box is hundreds), which the
// race detector amplifies into real slowdowns.
//
// The budget counts *extra* goroutines beyond the callers themselves: a
// caller entering RunObs is already running, so a serial fallback is
// always free and acquisition can be strictly non-blocking. Nested
// pools therefore never deadlock on the budget — a pool that gets no
// tokens degrades to the workers=1 serial path, which is the same code
// executing the same job order.
type Budget struct {
	tokens chan struct{}
}

// NewBudget allows up to `extra` concurrent extra workers across every
// pool sharing it (extra < 0 is treated as 0: all pools run serial).
func NewBudget(extra int) *Budget {
	if extra < 0 {
		extra = 0
	}
	b := &Budget{tokens: make(chan struct{}, extra)}
	for i := 0; i < extra; i++ {
		b.tokens <- struct{}{}
	}
	return b
}

// TryAcquire takes up to n tokens without blocking and returns how many
// it got. Callers must ReleaseN exactly that many.
func (b *Budget) TryAcquire(n int) int {
	got := 0
	for ; got < n; got++ {
		select {
		case <-b.tokens:
		default:
			return got
		}
	}
	return got
}

// ReleaseN returns n tokens to the budget.
func (b *Budget) ReleaseN(n int) {
	for i := 0; i < n; i++ {
		b.tokens <- struct{}{}
	}
}

// Extra reports the budget's currently available extra-worker count
// (a snapshot; for tests and introspection).
func (b *Budget) Extra() int { return len(b.tokens) }

type budgetKeyType struct{}

var budgetKey budgetKeyType

// WithBudget returns a context carrying the budget; every RunObs under
// it sizes its worker pool from the shared allowance.
func WithBudget(ctx context.Context, b *Budget) context.Context {
	return context.WithValue(ctx, budgetKey, b)
}

// BudgetFrom returns the context's budget, or nil.
func BudgetFrom(ctx context.Context) *Budget {
	if ctx == nil {
		return nil
	}
	b, _ := ctx.Value(budgetKey).(*Budget)
	return b
}

// EnsureBudget returns ctx unchanged if it already carries a budget,
// else a child carrying a fresh GOMAXPROCS-sized one (the calling
// goroutine plus GOMAXPROCS−1 extra workers). Every fan-out entry point
// calls this, so the outermost layer installs the budget and every
// nested layer shares it.
func EnsureBudget(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	if BudgetFrom(ctx) != nil {
		return ctx
	}
	return WithBudget(ctx, NewBudget(runtime.GOMAXPROCS(0)-1))
}
