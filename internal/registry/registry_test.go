package registry

import (
	"context"
	"testing"

	"mnemo/internal/core"
	"mnemo/internal/ycsb"
)

func testWorkload(t *testing.T, seed int64) *ycsb.Workload {
	t.Helper()
	w, err := ycsb.Generate(ycsb.Spec{
		Name:      "regtest",
		Keys:      200,
		Requests:  4000,
		Dist:      ycsb.DistSpec{Kind: ycsb.Hotspot, HotSetFraction: 0.1, HotOpnFraction: 0.9},
		ReadRatio: 0.9,
		Sizes:     ycsb.SizeTrendingPreview,
		Seed:      seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestCatalog(t *testing.T) {
	names := Names()
	want := []string{"freqdecay", "knapsack", "mnemot", "pagesample", "tahoe", "touch"}
	if len(names) < len(want) {
		t.Fatalf("catalog has %d policies: %v", len(names), names)
	}
	for _, n := range want {
		e, ok := ByName(n)
		if !ok {
			t.Fatalf("policy %q not registered", n)
		}
		if e.Description == "" {
			t.Errorf("policy %q has no description", n)
		}
		p, err := New(n, 7)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != n {
			t.Errorf("New(%q) built policy named %q", n, p.Name())
		}
	}
	if len(Entries()) != len(names) {
		t.Error("Entries and Names disagree")
	}
}

func TestStandaloneAlias(t *testing.T) {
	p, err := New("standalone", 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "touch" {
		t.Fatalf("alias resolved to %q", p.Name())
	}
	if _, err := New("bogus", 0); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestRegisterRejectsCollisions(t *testing.T) {
	if err := Register(Entry{Name: "", New: func(int64) core.TieringPolicy { return core.Touch }}); err == nil {
		t.Error("empty name accepted")
	}
	if err := Register(Entry{Name: "nilctor"}); err == nil {
		t.Error("nil constructor accepted")
	}
	if err := Register(Entry{Name: "touch", New: func(int64) core.TieringPolicy { return core.Touch }}); err == nil {
		t.Error("duplicate name accepted")
	}
	if err := Register(Entry{Name: "standalone", New: func(int64) core.TieringPolicy { return core.Touch }}); err == nil {
		t.Error("alias shadowing accepted")
	}
}

// TestEveryPolicyOrdersCompletely runs every cataloged policy through a
// session Analyze, which enforces the full-coverage contract.
func TestEveryPolicyOrdersCompletely(t *testing.T) {
	w := testWorkload(t, 11)
	for _, e := range Entries() {
		p := e.New(11)
		ord, err := p.Order(context.Background(), w)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if ord.Name != e.Name {
			t.Errorf("%s: ordering named %q", e.Name, ord.Name)
		}
		seen := map[string]bool{}
		for _, k := range ord.Keys {
			if seen[k.Key] {
				t.Fatalf("%s: key %q repeated", e.Name, k.Key)
			}
			seen[k.Key] = true
		}
		if len(seen) != len(w.Dataset.Records) {
			t.Fatalf("%s: ordered %d of %d keys", e.Name, len(seen), len(w.Dataset.Records))
		}
	}
}

func TestTahoeOrdersByFrequency(t *testing.T) {
	w := testWorkload(t, 12)
	ord, err := Tahoe.Order(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(ord.Keys); i++ {
		if ord.Keys[i].Accesses() > ord.Keys[i-1].Accesses() {
			t.Fatalf("access counts not descending at %d", i)
		}
	}
}

func TestFreqDecayWeighsRecency(t *testing.T) {
	// Key 0 is hot early, key 1 equally hot late; decay must rank the
	// recent key first even though the raw counts tie.
	w := testWorkload(t, 13)
	ops := make([]ycsb.Op, 0, len(w.Ops))
	half := len(w.Ops) / 2
	for i := range w.Ops {
		op := w.Ops[i]
		if i < half {
			op.Key = 0
		} else {
			op.Key = 1
		}
		ops = append(ops, op)
	}
	w.Ops = ops
	ord, err := FreqDecay(8, 0.5).Order(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	if ord.Keys[0].Index != 1 {
		t.Fatalf("recent-hot key ranked %d, early-hot first", ord.Keys[0].Index)
	}
	// Parameter validation.
	if _, err := FreqDecay(0, 0.5).Order(context.Background(), w); err == nil {
		t.Error("zero epochs accepted")
	}
	if _, err := FreqDecay(8, 0).Order(context.Background(), w); err == nil {
		t.Error("zero decay accepted")
	}
	if _, err := FreqDecay(8, 1.5).Order(context.Background(), w); err == nil {
		t.Error("decay > 1 accepted")
	}
}

func TestPageSampleStateAndDeterminism(t *testing.T) {
	w := testWorkload(t, 14)
	p := PageSample(1, 99)
	ord1, err := p.Order(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	if p.Samples() == 0 {
		t.Fatal("rate-1 profiling collected no samples")
	}
	p2 := PageSample(1, 99)
	ord2, err := p2.Order(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ord1.Keys {
		if ord1.Keys[i].Key != ord2.Keys[i].Key {
			t.Fatalf("same-seed profiling orders diverge at %d", i)
		}
	}
	if _, err := PageSample(0, 1).Order(context.Background(), w); err == nil {
		t.Error("non-positive rate accepted")
	}
	// Sparse sampling collects strictly fewer observations.
	sparse := PageSample(4000, 99)
	if _, err := sparse.Order(context.Background(), w); err != nil {
		t.Fatal(err)
	}
	if sparse.Samples() >= p.Samples() {
		t.Fatalf("rate-4000 took %d samples, rate-1 took %d", sparse.Samples(), p.Samples())
	}
}

func TestKnapsackTiersRespectOptima(t *testing.T) {
	w := testWorkload(t, 15)
	ord, err := KnapsackExact.Order(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	// The knapsack front should concentrate at least as much heat as the
	// same-prefix tail: the first quarter of keys must carry more accesses
	// than the last quarter.
	q := len(ord.Keys) / 4
	var front, back int
	for _, k := range ord.Keys[:q] {
		front += k.Accesses()
	}
	for _, k := range ord.Keys[len(ord.Keys)-q:] {
		back += k.Accesses()
	}
	if front <= back {
		t.Fatalf("knapsack front (%d accesses) no hotter than tail (%d)", front, back)
	}
	// Cancellation propagates out of the DP ladder.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := KnapsackExact.Order(ctx, w); err == nil {
		t.Error("cancelled context accepted")
	}
}

func TestResolveWorkload(t *testing.T) {
	w, err := ResolveWorkload("trending", 42, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Spec.Name != "trending" {
		t.Fatalf("resolved %q", w.Spec.Name)
	}
	w, err = ResolveWorkload("trending", 42, 123, 456)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Dataset.Records) != 123 || len(w.Ops) != 456 {
		t.Fatalf("overrides ignored: %d keys, %d ops", len(w.Dataset.Records), len(w.Ops))
	}
	w, err = ResolveWorkload("ycsb_f", 42, 100, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Dataset.Records) != 100 {
		t.Fatalf("ycsb_f keys override ignored: %d", len(w.Dataset.Records))
	}
	if _, err := ResolveWorkload("nope", 42, 0, 0); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := ResolveWorkload("trending", 42, -1, 0); err == nil {
		t.Error("negative keys accepted")
	}
	if _, err := ResolveWorkload("trending", 42, 0, -1); err == nil {
		t.Error("negative requests accepted")
	}
}
