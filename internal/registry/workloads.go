package registry

import (
	"fmt"

	"mnemo/internal/ycsb"
)

// ResolveWorkload generates a built-in workload by name: a Table III
// preset, a YCSB core workload, or the special trace-structured "ycsb_f".
// keys/requests override the preset sizes when positive; zero keeps the
// defaults. This is the one workload-name resolver — the mnemo and
// workloadgen commands and the public API all route through it.
func ResolveWorkload(name string, seed int64, keys, requests int) (*ycsb.Workload, error) {
	if keys < 0 {
		return nil, fmt.Errorf("registry: keys %d must be non-negative", keys)
	}
	if requests < 0 {
		return nil, fmt.Errorf("registry: requests %d must be non-negative", requests)
	}
	if name == "ycsb_f" {
		// YCSB-F's read-modify-write pairing needs trace-level structure a
		// Spec cannot express, so it has a dedicated generator.
		k, r := ycsb.DefaultKeys, ycsb.DefaultRequests
		if keys > 0 {
			k = keys
		}
		if requests > 0 {
			r = requests
		}
		return ycsb.GenerateF(seed, k, r)
	}
	spec, ok := ycsb.AnySpecByName(name, seed)
	if !ok {
		return nil, fmt.Errorf("registry: unknown workload %q (want one of %v)", name, ycsb.AllWorkloadNames())
	}
	if keys > 0 {
		spec.Keys = keys
	}
	if requests > 0 {
		spec.Requests = requests
	}
	return ycsb.Generate(spec)
}
