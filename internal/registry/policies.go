package registry

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"mnemo/internal/core"
	"mnemo/internal/knapsack"
	"mnemo/internal/kvstore"
	"mnemo/internal/tiering"
	"mnemo/internal/ycsb"
)

// Defaults for the parameterized policies, used by the registry entries.
const (
	// DefaultSampleRate approximates PEBS-style hardware sampling (one
	// observation per 4000 page touches), the rate the ModeB experiment
	// centres on.
	DefaultSampleRate = 4000
	// DefaultEpochs / DefaultDecay are the decayed-frequency policy's
	// window count and per-epoch retention factor.
	DefaultEpochs = 8
	DefaultDecay  = 0.5
)

// Tunable surfaces of the parameterized policies (Entry.Params). Bounds
// are the domains the policies themselves validate; defaults match the
// parameterless registry constructors, so a default vector resolves to
// the plain policy.
var (
	decayParam = Param{Name: "decay", Min: 0.01, Max: 1, Default: DefaultDecay, Log: true,
		Description: "per-epoch score retention factor (1 = plain frequency)"}
	freqDecaySpace = ParamSpace{
		decayParam,
		{Name: "epochs", Min: 1, Max: 64, Default: DefaultEpochs, Integer: true,
			Description: "trace windows the decay is applied between"},
	}
	pageSampleSpace = ParamSpace{
		{Name: "rate", Min: 1, Max: 1 << 20, Default: DefaultSampleRate, Integer: true, Log: true,
			Description: "page touches per sampled observation (PEBS-style)"},
	}
	knapsackSpace = ParamSpace{
		{Name: "anchor", Min: 0, Max: 1, Default: 0,
			Description: "extra exact-DP rung at this fraction of the dataset (0 = off)"},
		{Name: "rungs", Min: 1, Max: 6, Default: 3, Integer: true,
			Description: "halving capacity ladder depth: rungs at 1/2^n … 1/2 of the dataset"},
	}
	adaptiveFreqSpace = ParamSpace{decayParam}
)

// keyStats tallies the per-key access pattern, mirroring what the core
// pattern engines compute internally.
func keyStats(w *ycsb.Workload) []core.KeyStat {
	reads, writes := w.AccessCounts()
	out := make([]core.KeyStat, len(w.Dataset.Records))
	for i, rec := range w.Dataset.Records {
		out[i] = core.KeyStat{Index: i, Key: rec.Key, Size: rec.Size, Reads: reads[i], Writes: writes[i]}
	}
	return out
}

// orderingOf assembles an Ordering from record indices in priority order.
func orderingOf(name string, stats []core.KeyStat, order []int) core.Ordering {
	keys := make([]core.KeyStat, len(order))
	for i, idx := range order {
		keys[i] = stats[idx]
	}
	return core.Ordering{Name: name, Keys: keys}
}

// Tahoe orders keys by raw access frequency, descending — the
// structure-heat heuristic of Tahoe-class tiering systems, which track
// how often an object is reached without normalizing by its size. On
// workloads with uniform record sizes it coincides with MnemoT's density
// order; with mixed sizes it over-prioritizes hot large objects, which
// is exactly the gap the comparison experiments surface.
var Tahoe core.TieringPolicy = tahoePolicy{}

type tahoePolicy struct{}

func (tahoePolicy) Name() string { return "tahoe" }

func (tahoePolicy) Order(_ context.Context, w *ycsb.Workload) (core.Ordering, error) {
	stats := keyStats(w)
	order := make([]int, len(stats))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		fa, fb := stats[order[a]].Accesses(), stats[order[b]].Accesses()
		if fa != fb {
			return fa > fb
		}
		return order[a] < order[b]
	})
	return orderingOf("tahoe", stats, order), nil
}

// FreqDecay builds the HybridTier-style decayed-frequency policy: the
// trace is split into epochs, every key's score is multiplied by decay at
// each epoch boundary and incremented per access, so recent activity
// dominates and long-cold keys age out of the FastMem front. epochs must
// be positive and decay in (0, 1]; decay = 1 degrades to plain frequency
// counting over the whole trace.
func FreqDecay(epochs int, decay float64) core.TieringPolicy {
	return freqDecayPolicy{epochs: epochs, decay: decay}
}

type freqDecayPolicy struct {
	// name is the parameter-qualified instance name; empty for the
	// default-constructed policy.
	name   string
	epochs int
	decay  float64
}

func (p freqDecayPolicy) Name() string {
	if p.name == "" {
		return "freqdecay"
	}
	return p.name
}

func (p freqDecayPolicy) Order(_ context.Context, w *ycsb.Workload) (core.Ordering, error) {
	if p.epochs <= 0 {
		return core.Ordering{}, fmt.Errorf("freqdecay: epochs %d must be positive", p.epochs)
	}
	if p.decay <= 0 || p.decay > 1 {
		return core.Ordering{}, fmt.Errorf("freqdecay: decay %v outside (0,1]", p.decay)
	}
	stats := keyStats(w)
	score := make([]float64, len(stats))
	per := (w.RequestCount() + p.epochs - 1) / p.epochs
	if per == 0 {
		per = 1
	}
	idx := 0
	if err := w.ForEachOp(func(key int, _ kvstore.OpKind) {
		if idx > 0 && idx%per == 0 {
			for i := range score {
				score[i] *= p.decay
			}
		}
		score[key]++
		idx++
	}); err != nil {
		return core.Ordering{}, fmt.Errorf("freqdecay: reading trace: %w", err)
	}
	order := make([]int, len(stats))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if score[order[a]] != score[order[b]] {
			return score[order[a]] > score[order[b]]
		}
		return order[a] < order[b]
	})
	return orderingOf(p.Name(), stats, order), nil
}

// PageSample wraps the generic page-granularity sampling profiler
// (internal/tiering) as a policy: the workload is replayed through a
// simulated address space, page touches are observed with probability
// 1/rate, and page heat is aggregated back to a key ordering — the
// deployment-mode-2b pipeline where an existing tiering solution feeds
// Mnemo. The policy is stateful: Samples reports the observation count
// of the last Order call, the profiler's data-collection cost.
//
// The default rate profiles as "pagesample"; other rates get a
// rate-qualified name ("pagesample-1", "pagesample-16000", …) so that
// several rates can be compared within one Session without their cached
// artifacts colliding.
func PageSample(rate int, seed int64) *PageSamplePolicy {
	name := "pagesample"
	if rate != DefaultSampleRate {
		name = fmt.Sprintf("pagesample-%d", rate)
	}
	return &PageSamplePolicy{name: name, rate: rate, seed: seed}
}

// PageSamplePolicy is the stateful page-sampling policy; construct with
// PageSample.
type PageSamplePolicy struct {
	name string
	rate int
	seed int64

	mu      sync.Mutex
	samples int64
}

// Name implements core.TieringPolicy.
func (p *PageSamplePolicy) Name() string { return p.name }

// Samples reports how many page observations the last Order collected.
func (p *PageSamplePolicy) Samples() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.samples
}

// Order implements core.TieringPolicy by profiling the replay and
// translating the resulting key priority into an Ordering.
func (p *PageSamplePolicy) Order(_ context.Context, w *ycsb.Workload) (core.Ordering, error) {
	if p.rate <= 0 {
		return core.Ordering{}, fmt.Errorf("pagesample: sampling rate %d must be positive", p.rate)
	}
	space := tiering.NewAddressSpace(w.Dataset)
	prof := tiering.NewProfiler(space, p.rate, p.seed)
	prof.Observe(w)
	p.mu.Lock()
	p.samples = prof.Samples()
	p.mu.Unlock()

	stats := keyStats(w)
	byKey := make(map[string]int, len(stats))
	for i, k := range stats {
		byKey[k.Key] = i
	}
	keyOrder := prof.KeyOrdering(w.Dataset)
	order := make([]int, len(keyOrder))
	for i, key := range keyOrder {
		idx, ok := byKey[key]
		if !ok {
			return core.Ordering{}, fmt.Errorf("pagesample: profiler emitted unknown key %q", key)
		}
		order[i] = idx
	}
	return orderingOf(p.name, stats, order), nil
}

// KnapsackExact orders keys by solving the 0/1 knapsack exactly at a
// ladder of FastMem capacities (1/8, 1/4, 1/2 of the dataset by
// default): a key's priority is the smallest capacity whose optimal
// packing includes it, with MnemoT's density order inside each rung.
// Weights are coarsened to page units — doubling the unit until the DP
// table fits — the same trick the knapsack ablation uses, so the policy
// stays usable on full-size workloads.
var KnapsackExact core.TieringPolicy = knapsackPolicy{}

// knapsackPolicy generalizes the ladder: rungs halving capacities
// (1/2^rungs … 1/2 of the dataset) plus an optional anchor rung at an
// arbitrary capacity fraction. The anchor is the tunable that lets the
// policy beat pure density ordering: an exact DP solved at the fraction
// the advisor will actually cut at exploits the knapsack integrality
// gap that the greedy density order leaves on the table.
type knapsackPolicy struct {
	// name is the parameter-qualified instance name; empty for the
	// default ladder.
	name string
	// rungs is the halving-ladder depth (0 = the default 3).
	rungs int
	// anchor, in (0,1], inserts an extra exact rung at that fraction of
	// the dataset's page units; 0 disables it.
	anchor float64
}

func (p knapsackPolicy) Name() string {
	if p.name == "" {
		return "knapsack"
	}
	return p.name
}

// dpBudget caps the DP table at n·capacity cells; capacities beyond it
// are coarsened.
const dpBudget = 20_000_000

// capacityLadder builds the ascending capacity rungs in page units.
func (p knapsackPolicy) capacityLadder(totalUnits int64) []int64 {
	rungs := p.rungs
	if rungs == 0 {
		rungs = 3
	}
	caps := make([]int64, 0, rungs+1)
	for den := int64(1) << uint(rungs); den >= 2; den /= 2 {
		caps = append(caps, totalUnits/den)
	}
	if p.anchor > 0 {
		anchorCap := int64(p.anchor * float64(totalUnits))
		i := sort.Search(len(caps), func(i int) bool { return caps[i] >= anchorCap })
		if i == len(caps) || caps[i] != anchorCap {
			caps = append(caps, 0)
			copy(caps[i+1:], caps[i:])
			caps[i] = anchorCap
		}
	}
	// Drop degenerate rungs (tiny datasets can floor a fraction to 0).
	out := caps[:0]
	for _, c := range caps {
		if c > 0 {
			out = append(out, c)
		}
	}
	return out
}

func (p knapsackPolicy) Order(ctx context.Context, w *ycsb.Workload) (core.Ordering, error) {
	stats := keyStats(w)
	const pageUnit = int64(4096)
	items := make([]knapsack.Item, len(stats))
	var totalUnits int64
	for i, k := range stats {
		units := (int64(k.Size) + pageUnit - 1) / pageUnit
		if units == 0 {
			units = 1
		}
		items[i] = knapsack.Item{Weight: units, Profit: float64(k.Accesses())}
		totalUnits += units
	}
	capacities := p.capacityLadder(totalUnits)
	tiers := make([]int, len(stats))
	for i := range tiers {
		tiers[i] = len(capacities) + 1 // never optimal at any rung
	}
	for tier, capUnits := range capacities {
		if err := ctx.Err(); err != nil {
			return core.Ordering{}, err
		}
		// Coarsen until the DP table fits the budget.
		unit := int64(1)
		for int64(len(items)+1)*(capUnits/unit+1) > dpBudget {
			unit *= 2
		}
		scaled := items
		if unit > 1 {
			scaled = make([]knapsack.Item, len(items))
			for i, it := range items {
				scaled[i] = knapsack.Item{Weight: (it.Weight + unit - 1) / unit, Profit: it.Profit}
			}
		}
		picked, _ := knapsack.Exact(scaled, capUnits/unit)
		for i, in := range picked {
			if in && tier < tiers[i] {
				tiers[i] = tier
			}
		}
	}
	// Keys outside every rung's optimal packing are approximated by
	// density to keep the DP ladder short.
	order := make([]int, len(stats))
	for i := range order {
		order[i] = i
	}
	density := func(i int) float64 {
		if items[i].Weight <= 0 {
			return items[i].Profit
		}
		return items[i].Profit / float64(items[i].Weight)
	}
	sort.SliceStable(order, func(a, b int) bool {
		if tiers[order[a]] != tiers[order[b]] {
			return tiers[order[a]] < tiers[order[b]]
		}
		da, db := density(order[a]), density(order[b])
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	return orderingOf(p.Name(), stats, order), nil
}
