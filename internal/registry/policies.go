package registry

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"mnemo/internal/core"
	"mnemo/internal/knapsack"
	"mnemo/internal/kvstore"
	"mnemo/internal/tiering"
	"mnemo/internal/ycsb"
)

// Defaults for the parameterized policies, used by the registry entries.
const (
	// DefaultSampleRate approximates PEBS-style hardware sampling (one
	// observation per 4000 page touches), the rate the ModeB experiment
	// centres on.
	DefaultSampleRate = 4000
	// DefaultEpochs / DefaultDecay are the decayed-frequency policy's
	// window count and per-epoch retention factor.
	DefaultEpochs = 8
	DefaultDecay  = 0.5
)

// keyStats tallies the per-key access pattern, mirroring what the core
// pattern engines compute internally.
func keyStats(w *ycsb.Workload) []core.KeyStat {
	reads, writes := w.AccessCounts()
	out := make([]core.KeyStat, len(w.Dataset.Records))
	for i, rec := range w.Dataset.Records {
		out[i] = core.KeyStat{Index: i, Key: rec.Key, Size: rec.Size, Reads: reads[i], Writes: writes[i]}
	}
	return out
}

// orderingOf assembles an Ordering from record indices in priority order.
func orderingOf(name string, stats []core.KeyStat, order []int) core.Ordering {
	keys := make([]core.KeyStat, len(order))
	for i, idx := range order {
		keys[i] = stats[idx]
	}
	return core.Ordering{Name: name, Keys: keys}
}

// Tahoe orders keys by raw access frequency, descending — the
// structure-heat heuristic of Tahoe-class tiering systems, which track
// how often an object is reached without normalizing by its size. On
// workloads with uniform record sizes it coincides with MnemoT's density
// order; with mixed sizes it over-prioritizes hot large objects, which
// is exactly the gap the comparison experiments surface.
var Tahoe core.TieringPolicy = tahoePolicy{}

type tahoePolicy struct{}

func (tahoePolicy) Name() string { return "tahoe" }

func (tahoePolicy) Order(_ context.Context, w *ycsb.Workload) (core.Ordering, error) {
	stats := keyStats(w)
	order := make([]int, len(stats))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		fa, fb := stats[order[a]].Accesses(), stats[order[b]].Accesses()
		if fa != fb {
			return fa > fb
		}
		return order[a] < order[b]
	})
	return orderingOf("tahoe", stats, order), nil
}

// FreqDecay builds the HybridTier-style decayed-frequency policy: the
// trace is split into epochs, every key's score is multiplied by decay at
// each epoch boundary and incremented per access, so recent activity
// dominates and long-cold keys age out of the FastMem front. epochs must
// be positive and decay in (0, 1]; decay = 1 degrades to plain frequency
// counting over the whole trace.
func FreqDecay(epochs int, decay float64) core.TieringPolicy {
	return freqDecayPolicy{epochs: epochs, decay: decay}
}

type freqDecayPolicy struct {
	epochs int
	decay  float64
}

func (freqDecayPolicy) Name() string { return "freqdecay" }

func (p freqDecayPolicy) Order(_ context.Context, w *ycsb.Workload) (core.Ordering, error) {
	if p.epochs <= 0 {
		return core.Ordering{}, fmt.Errorf("freqdecay: epochs %d must be positive", p.epochs)
	}
	if p.decay <= 0 || p.decay > 1 {
		return core.Ordering{}, fmt.Errorf("freqdecay: decay %v outside (0,1]", p.decay)
	}
	stats := keyStats(w)
	score := make([]float64, len(stats))
	per := (w.RequestCount() + p.epochs - 1) / p.epochs
	if per == 0 {
		per = 1
	}
	idx := 0
	if err := w.ForEachOp(func(key int, _ kvstore.OpKind) {
		if idx > 0 && idx%per == 0 {
			for i := range score {
				score[i] *= p.decay
			}
		}
		score[key]++
		idx++
	}); err != nil {
		return core.Ordering{}, fmt.Errorf("freqdecay: reading trace: %w", err)
	}
	order := make([]int, len(stats))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if score[order[a]] != score[order[b]] {
			return score[order[a]] > score[order[b]]
		}
		return order[a] < order[b]
	})
	return orderingOf("freqdecay", stats, order), nil
}

// PageSample wraps the generic page-granularity sampling profiler
// (internal/tiering) as a policy: the workload is replayed through a
// simulated address space, page touches are observed with probability
// 1/rate, and page heat is aggregated back to a key ordering — the
// deployment-mode-2b pipeline where an existing tiering solution feeds
// Mnemo. The policy is stateful: Samples reports the observation count
// of the last Order call, the profiler's data-collection cost.
//
// The default rate profiles as "pagesample"; other rates get a
// rate-qualified name ("pagesample-1", "pagesample-16000", …) so that
// several rates can be compared within one Session without their cached
// artifacts colliding.
func PageSample(rate int, seed int64) *PageSamplePolicy {
	name := "pagesample"
	if rate != DefaultSampleRate {
		name = fmt.Sprintf("pagesample-%d", rate)
	}
	return &PageSamplePolicy{name: name, rate: rate, seed: seed}
}

// PageSamplePolicy is the stateful page-sampling policy; construct with
// PageSample.
type PageSamplePolicy struct {
	name string
	rate int
	seed int64

	mu      sync.Mutex
	samples int64
}

// Name implements core.TieringPolicy.
func (p *PageSamplePolicy) Name() string { return p.name }

// Samples reports how many page observations the last Order collected.
func (p *PageSamplePolicy) Samples() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.samples
}

// Order implements core.TieringPolicy by profiling the replay and
// translating the resulting key priority into an Ordering.
func (p *PageSamplePolicy) Order(_ context.Context, w *ycsb.Workload) (core.Ordering, error) {
	if p.rate <= 0 {
		return core.Ordering{}, fmt.Errorf("pagesample: sampling rate %d must be positive", p.rate)
	}
	space := tiering.NewAddressSpace(w.Dataset)
	prof := tiering.NewProfiler(space, p.rate, p.seed)
	prof.Observe(w)
	p.mu.Lock()
	p.samples = prof.Samples()
	p.mu.Unlock()

	stats := keyStats(w)
	byKey := make(map[string]int, len(stats))
	for i, k := range stats {
		byKey[k.Key] = i
	}
	keyOrder := prof.KeyOrdering(w.Dataset)
	order := make([]int, len(keyOrder))
	for i, key := range keyOrder {
		idx, ok := byKey[key]
		if !ok {
			return core.Ordering{}, fmt.Errorf("pagesample: profiler emitted unknown key %q", key)
		}
		order[i] = idx
	}
	return orderingOf(p.name, stats, order), nil
}

// KnapsackExact orders keys by solving the 0/1 knapsack exactly at a
// ladder of FastMem capacities (1/8, 1/4, 1/2 and 3/4 of the dataset):
// a key's priority is the smallest capacity whose optimal packing
// includes it, with MnemoT's density order inside each rung. Weights are
// coarsened to page units — doubling the unit until the DP table fits —
// the same trick the knapsack ablation uses, so the policy stays usable
// on full-size workloads.
var KnapsackExact core.TieringPolicy = knapsackPolicy{}

type knapsackPolicy struct{}

func (knapsackPolicy) Name() string { return "knapsack" }

// dpBudget caps the DP table at n·capacity cells; capacities beyond it
// are coarsened.
const dpBudget = 20_000_000

func (knapsackPolicy) Order(ctx context.Context, w *ycsb.Workload) (core.Ordering, error) {
	stats := keyStats(w)
	const pageUnit = int64(4096)
	items := make([]knapsack.Item, len(stats))
	var totalUnits int64
	for i, k := range stats {
		units := (int64(k.Size) + pageUnit - 1) / pageUnit
		if units == 0 {
			units = 1
		}
		items[i] = knapsack.Item{Weight: units, Profit: float64(k.Accesses())}
		totalUnits += units
	}
	fractions := []int64{8, 4, 2} // denominators for 1/8, 1/4, 1/2
	tiers := make([]int, len(stats))
	for i := range tiers {
		tiers[i] = len(fractions) + 1 // never optimal at any rung
	}
	for tier, den := range fractions {
		if err := ctx.Err(); err != nil {
			return core.Ordering{}, err
		}
		capUnits := totalUnits / den
		// Coarsen until the DP table fits the budget.
		unit := int64(1)
		for int64(len(items)+1)*(capUnits/unit+1) > dpBudget {
			unit *= 2
		}
		scaled := items
		if unit > 1 {
			scaled = make([]knapsack.Item, len(items))
			for i, it := range items {
				scaled[i] = knapsack.Item{Weight: (it.Weight + unit - 1) / unit, Profit: it.Profit}
			}
		}
		picked, _ := knapsack.Exact(scaled, capUnits/unit)
		for i, in := range picked {
			if in && tier < tiers[i] {
				tiers[i] = tier
			}
		}
	}
	// Last explicit rung: everything "picked at 3/4 capacity" is
	// approximated by density to keep the DP ladder short.
	order := make([]int, len(stats))
	for i := range order {
		order[i] = i
	}
	density := func(i int) float64 {
		if items[i].Weight <= 0 {
			return items[i].Profit
		}
		return items[i].Profit / float64(items[i].Weight)
	}
	sort.SliceStable(order, func(a, b int) bool {
		if tiers[order[a]] != tiers[order[b]] {
			return tiers[order[a]] < tiers[order[b]]
		}
		da, db := density(order[a]), density(order[b])
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	return orderingOf("knapsack", stats, order), nil
}
