package registry

import (
	"context"
	"strings"
	"testing"

	"mnemo/internal/core"
	"mnemo/internal/ycsb"
)

func paramsTestWorkload(t *testing.T) *ycsb.Workload {
	t.Helper()
	w, err := ycsb.Generate(ycsb.Spec{
		Name: "params-test", Keys: 200, Requests: 4000, Seed: 7,
		ReadRatio: 0.9,
		Dist:      ycsb.DistSpec{Kind: ycsb.Hotspot, HotSetFraction: 0.2, HotOpnFraction: 0.9},
		Sizes:     ycsb.SizeTrendingPreview,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return w
}

func TestNewParamsDefaultVectorIsPlainPolicy(t *testing.T) {
	for _, name := range Names() {
		e, _ := ByName(name)
		p, err := NewParams(name, 1, nil)
		if err != nil {
			t.Fatalf("NewParams(%s, nil): %v", name, err)
		}
		if p.Name() != e.New(1).Name() {
			t.Errorf("NewParams(%s, nil) named %q, want the default name", name, p.Name())
		}
		if len(e.Params) == 0 {
			continue
		}
		// The full default vector must also resolve to the plain policy.
		p, err = NewParams(name, 1, e.Params.Defaults())
		if err != nil {
			t.Fatalf("NewParams(%s, defaults): %v", name, err)
		}
		if got, want := p.Name(), e.New(1).Name(); got != want {
			t.Errorf("NewParams(%s, defaults) named %q, want %q", name, got, want)
		}
	}
}

func TestNewParamsQualifiesNonDefaultNames(t *testing.T) {
	p, err := NewParams("freqdecay", 1, map[string]float64{"decay": 0.25})
	if err != nil {
		t.Fatalf("NewParams: %v", err)
	}
	// Missing params keep their defaults and appear in the name, so the
	// same vector always maps to the same artifact-cache key.
	if got, want := p.Name(), "freqdecay(decay=0.25,epochs=8)"; got != want {
		t.Errorf("Name() = %q, want %q", got, want)
	}
	k, err := NewParams("knapsack", 1, map[string]float64{"anchor": 0.3})
	if err != nil {
		t.Fatalf("NewParams: %v", err)
	}
	if got, want := k.Name(), "knapsack(anchor=0.3,rungs=3)"; got != want {
		t.Errorf("Name() = %q, want %q", got, want)
	}
}

func TestNewParamsRejections(t *testing.T) {
	cases := []struct {
		name   string
		policy string
		params map[string]float64
		want   string
	}{
		{"unknown policy", "nosuch", map[string]float64{"x": 1}, "unknown policy"},
		{"unknown param", "freqdecay", map[string]float64{"rate": 3}, `unknown param "rate"`},
		{"below min", "freqdecay", map[string]float64{"decay": 0}, "outside [0.01,1]"},
		{"above max", "freqdecay", map[string]float64{"epochs": 1000}, "outside [1,64]"},
		{"non-integer", "freqdecay", map[string]float64{"epochs": 2.5}, "must be an integer"},
		{"NaN", "knapsack", map[string]float64{"anchor": nan()}, "not a finite number"},
		{"no params", "touch", map[string]float64{"decay": 0.5}, "no tunable parameters"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewParams(tc.policy, 1, tc.params)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("NewParams(%s, %v) error = %v, want substring %q", tc.policy, tc.params, err, tc.want)
			}
		})
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}

func TestParamClamp(t *testing.T) {
	p := Param{Name: "epochs", Min: 1, Max: 64, Integer: true}
	for _, tc := range []struct{ in, want float64 }{
		{0.2, 1}, {2.6, 3}, {500, 64}, {8, 8},
	} {
		if got := p.Clamp(tc.in); got != tc.want {
			t.Errorf("Clamp(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// The generalized knapsack ladder with default params must reproduce the
// original {1/8, 1/4, 1/2} ladder bit-identically.
func TestKnapsackDefaultLadderUnchanged(t *testing.T) {
	w := paramsTestWorkload(t)
	def, err := KnapsackExact.Order(context.Background(), w)
	if err != nil {
		t.Fatalf("default Order: %v", err)
	}
	viaParams, err := NewParams("knapsack", 1, map[string]float64{"rungs": 3, "anchor": 0})
	if err != nil {
		t.Fatalf("NewParams: %v", err)
	}
	got, err := viaParams.Order(context.Background(), w)
	if err != nil {
		t.Fatalf("params Order: %v", err)
	}
	if len(got.Keys) != len(def.Keys) {
		t.Fatalf("ordering sizes differ: %d vs %d", len(got.Keys), len(def.Keys))
	}
	for i := range got.Keys {
		if got.Keys[i] != def.Keys[i] {
			t.Fatalf("ordering diverges at %d: %+v vs %+v", i, got.Keys[i], def.Keys[i])
		}
	}
}

// An anchored knapsack must produce a valid full ordering and a
// different FastMem front when the anchor rung's exact packing disagrees
// with density order.
func TestKnapsackAnchorOrdering(t *testing.T) {
	w := paramsTestWorkload(t)
	p, err := NewParams("knapsack", 1, map[string]float64{"anchor": 0.17})
	if err != nil {
		t.Fatalf("NewParams: %v", err)
	}
	ord, err := p.Order(context.Background(), w)
	if err != nil {
		t.Fatalf("Order: %v", err)
	}
	if len(ord.Keys) != len(w.Dataset.Records) {
		t.Fatalf("ordered %d of %d keys", len(ord.Keys), len(w.Dataset.Records))
	}
	seen := make(map[int]bool, len(ord.Keys))
	for _, k := range ord.Keys {
		if seen[k.Index] {
			t.Fatalf("key index %d appears twice", k.Index)
		}
		seen[k.Index] = true
	}
	if ord.Name != p.Name() {
		t.Errorf("ordering named %q, want %q", ord.Name, p.Name())
	}
}

// Parameterized adaptive-freq must stay an epoch policy: the qualified
// instance still opens per-run observers.
func TestAdaptiveFreqParamsKeepsEpochPolicy(t *testing.T) {
	p, err := NewParams("adaptive-freq", 1, map[string]float64{"decay": 0.3})
	if err != nil {
		t.Fatalf("NewParams: %v", err)
	}
	if got, want := p.Name(), "adaptive-freq(decay=0.3)"; got != want {
		t.Errorf("Name() = %q, want %q", got, want)
	}
	ep, ok := core.AsEpochPolicy(p)
	if !ok {
		t.Fatal("parameterized adaptive-freq lost the EpochPolicy interface")
	}
	obs, err := ep.Begin(paramsTestWorkload(t))
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if obs == nil {
		t.Fatal("Begin returned a nil observer")
	}
}

func TestRuntimeParamsCatalog(t *testing.T) {
	rp := RuntimeParams()
	if len(rp) == 0 {
		t.Fatal("empty runtime param catalog")
	}
	if err := rp.Validate(map[string]float64{"epoch_ops": 4096, "retries": 2}); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if err := rp.Validate(map[string]float64{"epoch_ops": -1}); err == nil {
		t.Fatal("negative epoch_ops accepted")
	}
	if err := rp.Validate(map[string]float64{"nope": 1}); err == nil {
		t.Fatal("unknown runtime param accepted")
	}
}

func TestFormatParamsCanonical(t *testing.T) {
	v := map[string]float64{"b": 2, "a": 0.5, "c": 10}
	if got, want := FormatParams(v), "a=0.5,b=2,c=10"; got != want {
		t.Errorf("FormatParams = %q, want %q", got, want)
	}
}
