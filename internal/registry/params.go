package registry

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"mnemo/internal/core"
	"mnemo/internal/obs"
)

// Param is one tunable knob of a policy (or of the measurement runtime):
// inclusive bounds, a default, and the scale a search driver should
// explore it on. Bounds are part of the contract — NewParams rejects
// out-of-range values before any policy is constructed.
type Param struct {
	Name string
	// Min and Max bound the value inclusively.
	Min, Max float64
	// Default is the value the registry's parameterless constructor uses;
	// a vector equal to all defaults resolves to the plain policy.
	Default float64
	// Integer constrains the value to whole numbers.
	Integer bool
	// Log marks a multiplicative scale: search drivers should step the
	// value by factors, not increments (decay rates, sampling rates).
	Log         bool
	Description string
}

// Check validates one value against the param's bounds and integrality.
func (p Param) Check(v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("registry: param %s=%v is not a finite number", p.Name, v)
	}
	if v < p.Min || v > p.Max {
		return fmt.Errorf("registry: param %s=%v outside [%v,%v]", p.Name, v, p.Min, p.Max)
	}
	if p.Integer && v != math.Trunc(v) {
		return fmt.Errorf("registry: param %s=%v must be an integer", p.Name, v)
	}
	return nil
}

// Clamp snaps a proposed value into the param's domain: rounded if
// integral, then clipped to the bounds. Search drivers use it to keep
// perturbed candidates valid.
func (p Param) Clamp(v float64) float64 {
	if p.Integer {
		v = math.Round(v)
	}
	if v < p.Min {
		v = p.Min
	}
	if v > p.Max {
		v = p.Max
	}
	return v
}

// ParamSpace is a policy's full tunable surface, in display order.
type ParamSpace []Param

// ByName finds a param in the space.
func (ps ParamSpace) ByName(name string) (Param, bool) {
	for _, p := range ps {
		if p.Name == name {
			return p, true
		}
	}
	return Param{}, false
}

// Defaults returns the space's default vector (nil for an empty space).
func (ps ParamSpace) Defaults() map[string]float64 {
	if len(ps) == 0 {
		return nil
	}
	out := make(map[string]float64, len(ps))
	for _, p := range ps {
		out[p.Name] = p.Default
	}
	return out
}

// Validate checks a partial vector against the space: every named param
// must exist and every value must be in bounds. Params absent from the
// vector keep their defaults.
func (ps ParamSpace) Validate(v map[string]float64) error {
	names := make([]string, 0, len(v))
	for name := range v {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p, ok := ps.ByName(name)
		if !ok {
			return fmt.Errorf("registry: unknown param %q (want one of %s)", name, ps.names())
		}
		if err := p.Check(v[name]); err != nil {
			return err
		}
	}
	return nil
}

// complete fills a partial vector with the space's defaults.
func (ps ParamSpace) complete(v map[string]float64) map[string]float64 {
	out := ps.Defaults()
	for name, val := range v {
		out[name] = val
	}
	return out
}

// isDefault reports whether a complete vector equals the defaults.
func (ps ParamSpace) isDefault(v map[string]float64) bool {
	for _, p := range ps {
		if v[p.Name] != p.Default {
			return false
		}
	}
	return true
}

func (ps ParamSpace) names() string {
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return "[" + strings.Join(names, " ") + "]"
}

// FormatParam renders one param value canonically: integers without a
// fraction, everything else in shortest round-trip form.
func FormatParam(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// FormatParams renders a vector canonically: names sorted, values in
// FormatParam form, comma-joined ("decay=0.3,epochs=8"). Qualified
// policy names embed this, so equal vectors always collide in the
// Session's name-keyed artifact caches and unequal ones never do.
func FormatParams(v map[string]float64) string {
	names := make([]string, 0, len(v))
	for name := range v {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, name := range names {
		parts[i] = name + "=" + FormatParam(v[name])
	}
	return strings.Join(parts, ",")
}

// qualifiedName is the cache-key-safe name of a parameterized policy
// instance: "freqdecay(decay=0.3,epochs=8)".
func qualifiedName(name string, v map[string]float64) string {
	return name + "(" + FormatParams(v) + ")"
}

// NewParams constructs the named policy from a parameter vector. A nil
// or empty vector — and a vector equal to the space's defaults — resolves
// to the plain default-named policy, so artifact caches keyed by policy
// name share work with unparameterized callers. Params absent from the
// vector keep their defaults; unknown names and out-of-bounds values are
// rejected. Policies without a tunable surface reject any non-empty
// vector.
func NewParams(name string, seed int64, params map[string]float64) (core.TieringPolicy, error) {
	e, ok := ByName(name)
	if !ok {
		return nil, fmt.Errorf("registry: unknown policy %q (want one of %v)", name, Names())
	}
	if len(params) == 0 {
		return e.New(seed), nil
	}
	if e.FromParams == nil {
		return nil, fmt.Errorf("registry: policy %q has no tunable parameters", e.Name)
	}
	if err := e.Params.Validate(params); err != nil {
		return nil, fmt.Errorf("registry: policy %q: %w", e.Name, err)
	}
	full := e.Params.complete(params)
	if e.Params.isDefault(full) {
		return e.New(seed), nil
	}
	return e.FromParams(seed, full)
}

// NewParamsObs is NewParams with observability: a successful resolution
// counts toward the sink's
// mnemo_registry_policy_resolutions_total{policy=…} under the canonical
// base name, exactly like NewObs. A nil sink records nothing.
func NewParamsObs(name string, seed int64, params map[string]float64, sink *obs.Sink) (core.TieringPolicy, error) {
	p, err := NewParams(name, seed, params)
	if err != nil {
		return nil, err
	}
	if e, ok := ByName(name); ok {
		sink.Counter(obs.Name("mnemo_registry_policy_resolutions_total", "policy", e.Name)).Inc()
	}
	return p, nil
}

// RuntimeParams is the typed catalog of measurement-runtime knobs a
// tuned spec may carry alongside the policy vector: the adaptive-replay
// epoch and migration knobs and the client resilience thresholds. They
// parameterize how a config is measured, not how keys are ordered — in
// the artifact cache they are part of the measurement key, so changing
// one invalidates baselines rather than reusing them, and the static
// estimate objective the tuner searches is independent of them (see
// DESIGN.md §17).
func RuntimeParams() ParamSpace {
	return ParamSpace{
		{Name: "epoch_ops", Min: 0, Max: 1e9, Default: 0, Integer: true,
			Description: "adaptive-replay epoch length in requests (0 = static replay)"},
		{Name: "migration_cost_per_byte", Min: 0, Max: 1e6, Default: 0,
			Description: "simulated ns charged per migrated payload byte"},
		{Name: "migration_budget", Min: 0, Max: 1e15, Default: 0, Integer: true,
			Description: "payload-byte cap per epoch migration (0 = unlimited)"},
		{Name: "retries", Min: 0, Max: 64, Default: 0, Integer: true,
			Description: "extra attempts per failed measurement run"},
		{Name: "min_runs", Min: 0, Max: 1024, Default: 0, Integer: true,
			Description: "surviving repetitions required before degrading (0 = strict)"},
		{Name: "outlier_mad", Min: 0, Max: 100, Default: 0,
			Description: "MAD multiple beyond which surviving runs are rejected (0 = off)"},
	}
}
