package registry

import (
	"context"
	"sort"
	"testing"

	"mnemo/internal/client"
	"mnemo/internal/core"
	"mnemo/internal/memsim"
	"mnemo/internal/server"
	"mnemo/internal/ycsb"
)

// convergenceWorkload is a stationary hotspot trace: 400 fixed-1KB keys,
// a 20% hot set taking 90% of the requests, long enough for several
// 4096-op epochs.
func convergenceWorkload(t *testing.T) *ycsb.Workload {
	t.Helper()
	w, err := ycsb.Generate(ycsb.Spec{
		Name: "converge", Keys: 400, Requests: 32768,
		Dist:      ycsb.DistSpec{Kind: ycsb.Hotspot, HotSetFraction: 0.2, HotOpnFraction: 0.9},
		ReadRatio: 1.0, Sizes: ycsb.SizeFixed1KB, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// accessOrder returns record indices sorted by descending whole-trace
// access count — the static oracle a stationary trace converges to.
func accessOrder(w *ycsb.Workload) []int {
	counts := make([]int, len(w.Dataset.Records))
	for _, op := range w.Ops {
		counts[op.Key]++
	}
	order := make([]int, len(counts))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return counts[order[a]] > counts[order[b]] })
	return order
}

// TestAdaptiveFreqConvergesToOracle pins the stationary-convergence
// guarantee: on a trace whose hot set never moves, adaptive-freq started
// from the worst possible placement (the coldest records in FastMem)
// must migrate to within ε of the static-oracle placement — the hottest
// records, at the same fast-byte budget.
func TestAdaptiveFreqConvergesToOracle(t *testing.T) {
	w := convergenceWorkload(t)
	n := len(w.Dataset.Records)
	oracle := accessOrder(w)
	k := n / 5 // the oracle fast set: exactly the hot records' budget

	cfg := server.DefaultConfig(server.RedisLike, 5)
	cfg.Adaptive = AdaptiveFreq(DefaultDecay)
	cfg.EpochOps = 4096
	d := server.NewDeployment(cfg)
	// Worst case: the k coldest records occupy the fast tier.
	coldest := append([]int(nil), oracle[n-k:]...)
	if err := d.Load(w.Dataset, server.FastIndices(coldest, n)); err != nil {
		t.Fatal(err)
	}
	if _, err := client.RunCtx(context.Background(), d, w, 0); err != nil {
		t.Fatal(err)
	}

	want := make(map[int]bool, k)
	for _, idx := range oracle[:k] {
		want[idx] = true
	}
	var overlap, fast int
	for i, tier := range d.RecordTiers() {
		if tier == memsim.Fast {
			fast++
			if want[i] {
				overlap++
			}
		}
	}
	if fast != k {
		t.Fatalf("fast set grew from %d to %d records — planMoves must preserve the byte budget", k, fast)
	}
	if min := (k * 9) / 10; overlap < min {
		t.Fatalf("after the run only %d/%d fast records are oracle-hot (want ≥ %d)", overlap, k, min)
	}
}

// TestAdaptiveWrapperStaticOrderMatchesInner: the wrapper's Order is the
// inner policy's, renamed — the static degenerate case of the tentpole.
func TestAdaptiveWrapperStaticOrderMatchesInner(t *testing.T) {
	w := convergenceWorkload(t)
	inner, err := core.MnemoT.Order(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := Adaptive(core.MnemoT).Order(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	if wrapped.Name != "adaptive-mnemot" {
		t.Fatalf("wrapper ordering name %q", wrapped.Name)
	}
	for i := range inner.Keys {
		if inner.Keys[i].Index != wrapped.Keys[i].Index {
			t.Fatalf("rank %d: wrapper ordered record %d, inner %d", i, wrapped.Keys[i].Index, inner.Keys[i].Index)
		}
	}
}

// TestPlanMovesPreservesBudgetAndSkipsDegenerate covers the move
// planner's guardrails directly.
func TestPlanMovesPreservesBudgetAndSkipsDegenerate(t *testing.T) {
	recs := []ycsb.Record{{Size: 1024}, {Size: 1024}, {Size: 1024}, {Size: 1024}}
	allSlow := []memsim.Tier{memsim.Slow, memsim.Slow, memsim.Slow, memsim.Slow}
	if moves := planMoves([]int{0, 1, 2, 3}, recs, allSlow); moves != nil {
		t.Fatalf("all-slow placement produced moves: %v", moves)
	}
	allFast := []memsim.Tier{memsim.Fast, memsim.Fast, memsim.Fast, memsim.Fast}
	if moves := planMoves([]int{3, 2, 1, 0}, recs, allFast); moves != nil {
		t.Fatalf("all-fast placement produced moves: %v", moves)
	}
	// One fast slot, priority order wants record 2: swap, nothing more.
	tiers := []memsim.Tier{memsim.Fast, memsim.Slow, memsim.Slow, memsim.Slow}
	moves := planMoves([]int{2, 0, 1, 3}, recs, tiers)
	wantDemote := server.Move{Index: 0, To: memsim.Slow}
	wantPromote := server.Move{Index: 2, To: memsim.Fast}
	if len(moves) != 2 || moves[0] != wantDemote && moves[1] != wantDemote ||
		moves[0] != wantPromote && moves[1] != wantPromote {
		t.Fatalf("single-slot swap planned %v", moves)
	}
}
