package registry

import (
	"context"
	"fmt"
	"sort"

	"mnemo/internal/core"
	"mnemo/internal/kvstore"
	"mnemo/internal/memsim"
	"mnemo/internal/server"
	"mnemo/internal/ycsb"
)

// Adaptive policies (DESIGN.md §15): core.EpochPolicy implementations
// whose Order is the static degenerate case and whose Begin opens an
// online-migration run. All mutable per-run state lives on the observer
// Begin returns — never on the policy value — so one policy instance can
// serve many concurrent runs (the registry freshness contract).

// planMoves turns a priority order into the migrations that reshape the
// current placement toward it. The FastMem byte budget is what the
// current placement already spends — the sum of fast-resident record
// sizes — so migration swaps records without growing the fast tier's
// footprint: the cost model's C_fast is preserved, only its contents
// change. The target set packs the priority order greedily (records that
// do not fit are skipped, not cut off), then promotes target records now
// slow and demotes fast records outside the target. An all-fast or
// all-slow placement has nothing to swap and yields no moves.
func planMoves(order []int, recs []ycsb.Record, tiers []memsim.Tier) []server.Move {
	var budget int64
	for i, t := range tiers {
		if t == memsim.Fast {
			budget += int64(recs[i].Size)
		}
	}
	if budget == 0 {
		return nil
	}
	inTarget := make([]bool, len(recs))
	var used int64
	for _, idx := range order {
		s := int64(recs[idx].Size)
		if used+s > budget {
			continue
		}
		used += s
		inTarget[idx] = true
	}
	var moves []server.Move
	for i, t := range tiers {
		switch {
		case inTarget[i] && t != memsim.Fast:
			moves = append(moves, server.Move{Index: i, To: memsim.Fast})
		case !inTarget[i] && t == memsim.Fast:
			moves = append(moves, server.Move{Index: i, To: memsim.Slow})
		}
	}
	return moves
}

// scoreOrder returns record indices sorted by descending score, index
// ascending on ties — the stable order every frequency policy here uses.
func scoreOrder(score []float64) []int {
	order := make([]int, len(score))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if score[order[a]] != score[order[b]] {
			return score[order[a]] > score[order[b]]
		}
		return order[a] < order[b]
	})
	return order
}

// AdaptiveFreq builds the HybridTier-style online decayed-frequency
// policy: each epoch every record's score decays by the retention factor
// and gains its epoch accesses, and the placement is reshaped toward the
// highest-scoring records. Statically (Order) it degenerates to plain
// whole-trace access frequency. decay must be in (0, 1].
func AdaptiveFreq(decay float64) core.EpochPolicy {
	return adaptiveFreqPolicy{decay: decay}
}

type adaptiveFreqPolicy struct {
	// name is the parameter-qualified instance name; empty for the
	// default decay.
	name  string
	decay float64
}

// Name implements core.TieringPolicy.
func (p adaptiveFreqPolicy) Name() string {
	if p.name == "" {
		return "adaptive-freq"
	}
	return p.name
}

// Order implements core.TieringPolicy — the static degenerate case:
// whole-trace access frequency, descending.
func (p adaptiveFreqPolicy) Order(_ context.Context, w *ycsb.Workload) (core.Ordering, error) {
	if p.decay <= 0 || p.decay > 1 {
		return core.Ordering{}, fmt.Errorf("adaptive-freq: decay %v outside (0,1]", p.decay)
	}
	stats := keyStats(w)
	score := make([]float64, len(stats))
	for i, k := range stats {
		score[i] = float64(k.Accesses())
	}
	return orderingOf(p.Name(), stats, scoreOrder(score)), nil
}

// Begin implements server.EpochSource.
func (p adaptiveFreqPolicy) Begin(w *ycsb.Workload) (server.EpochObserver, error) {
	if p.decay <= 0 || p.decay > 1 {
		return nil, fmt.Errorf("adaptive-freq: decay %v outside (0,1]", p.decay)
	}
	return &freqObserver{
		decay: p.decay,
		recs:  w.Dataset.Records,
		score: make([]float64, len(w.Dataset.Records)),
	}, nil
}

// freqObserver is one run's decayed-frequency state.
type freqObserver struct {
	decay float64
	recs  []ycsb.Record
	score []float64
}

// Observe implements server.EpochObserver.
func (o *freqObserver) Observe(st server.EpochStats) []server.Move {
	for i := range o.score {
		o.score[i] *= o.decay
		o.score[i] += float64(st.Reads[i]) + float64(st.Writes[i])
	}
	return planMoves(scoreOrder(o.score), o.recs, st.Tiers)
}

// Adaptive wraps any static tiering policy as an epoch policy: each
// epoch the inner policy's Order is re-run on a synthetic workload
// assembled from the epoch's observed access counts, and the placement
// is reshaped toward the resulting ordering. Statically it is exactly
// the inner policy. An inner Order failure mid-run keeps the current
// placement (migration is an optimization; a run never fails for want
// of one).
func Adaptive(inner core.TieringPolicy) core.EpochPolicy {
	return adaptiveWrapper{inner: inner}
}

type adaptiveWrapper struct{ inner core.TieringPolicy }

// Name implements core.TieringPolicy.
func (p adaptiveWrapper) Name() string { return "adaptive-" + p.inner.Name() }

// Order implements core.TieringPolicy by delegating to the inner policy,
// renamed so Session caches and reports keep the two distinct.
func (p adaptiveWrapper) Order(ctx context.Context, w *ycsb.Workload) (core.Ordering, error) {
	ord, err := p.inner.Order(ctx, w)
	if err != nil {
		return core.Ordering{}, err
	}
	ord.Name = p.Name()
	return ord, nil
}

// Begin implements server.EpochSource.
func (p adaptiveWrapper) Begin(w *ycsb.Workload) (server.EpochObserver, error) {
	return &wrapperObserver{inner: p.inner, w: w}, nil
}

// wrapperObserver re-runs the inner policy on per-epoch observations.
type wrapperObserver struct {
	inner core.TieringPolicy
	w     *ycsb.Workload
}

// Observe implements server.EpochObserver. The synthetic workload it
// hands the inner policy carries the real dataset with a trace expanded
// from the epoch's access counts (reads then writes, per record, in
// index order) — frequency-and-size information is preserved exactly;
// intra-epoch request order, which the epoch counters do not keep, is
// not. Policies whose static order depends on arrival order (first
// touch) see an index-ordered epoch.
func (o *wrapperObserver) Observe(st server.EpochStats) []server.Move {
	ops := make([]ycsb.Op, 0, st.Ops)
	for i := range st.Reads {
		for r := int32(0); r < st.Reads[i]; r++ {
			ops = append(ops, ycsb.Op{Key: i, Kind: kvstore.Read})
		}
		for w := int32(0); w < st.Writes[i]; w++ {
			ops = append(ops, ycsb.Op{Key: i, Kind: kvstore.Write})
		}
	}
	spec := o.w.Spec
	spec.Requests = len(ops)
	synth := &ycsb.Workload{Spec: spec, Dataset: o.w.Dataset, Ops: ops}
	ord, err := o.inner.Order(context.Background(), synth)
	if err != nil {
		return nil
	}
	order := make([]int, len(ord.Keys))
	for i, k := range ord.Keys {
		order[i] = k.Index
	}
	return planMoves(order, o.w.Dataset.Records, st.Tiers)
}
