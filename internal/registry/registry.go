// Package registry is the catalog of tiering policies Mnemo can profile
// a workload under. Every orderer in the tree — the stand-alone
// first-touch order, MnemoT's weighted order, the generic page-sampling
// profiler, the exact knapsack ablation, the Tahoe-class frequency
// heuristic and the HybridTier-style decayed-frequency policy — is
// registered here behind the core.TieringPolicy seam, so commands,
// experiments and library callers resolve policies by name instead of
// hard-wiring a mode enum.
//
// The package also owns workload-name resolution (ResolveWorkload), the
// one other piece of lookup logic the commands used to duplicate.
package registry

import (
	"fmt"
	"sort"
	"sync"

	"mnemo/internal/core"
	"mnemo/internal/obs"
)

// Entry describes one registered policy. New constructs a fresh policy
// instance; seed feeds policies with internal randomness (the sampling
// profiler) and is ignored by deterministic ones.
//
// Freshness contract: every New call must return an instance sharing no
// mutable state with any previous call's — stateful policies (pointer
// receivers like PageSamplePolicy, adaptive policies with per-run
// observers) would otherwise leak state between the Sessions or Compare
// calls that resolved them. Stateless value-type policies trivially
// satisfy this.
type Entry struct {
	Name        string
	Description string
	New         func(seed int64) core.TieringPolicy
	// Params is the policy's typed tunable surface (nil for policies
	// without one). Search drivers read bounds, defaults and scales from
	// it; NewParams validates vectors against it.
	Params ParamSpace
	// FromParams constructs the policy from a complete parameter vector
	// (every param of the space present and in bounds — NewParams
	// guarantees both). The returned instance must carry a
	// parameter-qualified Name so Session's name-keyed artifact caches
	// never collide across vectors. nil for policies without params.
	FromParams func(seed int64, v map[string]float64) (core.TieringPolicy, error)
}

var (
	mu      sync.RWMutex
	entries = map[string]Entry{}
	// aliases maps historical spellings to registered names. "standalone"
	// is the pre-registry name of the first-touch policy (the old Mode
	// enum's StandAlone).
	aliases = map[string]string{"standalone": "touch"}
)

// Register adds a policy to the catalog. It errors on empty or duplicate
// names, including collisions with an alias.
func Register(e Entry) error {
	if e.Name == "" {
		return fmt.Errorf("registry: empty policy name")
	}
	if e.New == nil {
		return fmt.Errorf("registry: policy %q has no constructor", e.Name)
	}
	mu.Lock()
	defer mu.Unlock()
	if _, ok := entries[e.Name]; ok {
		return fmt.Errorf("registry: policy %q already registered", e.Name)
	}
	if _, ok := aliases[e.Name]; ok {
		return fmt.Errorf("registry: policy name %q shadows an alias", e.Name)
	}
	entries[e.Name] = e
	return nil
}

// MustRegister is Register for init-time use.
func MustRegister(e Entry) {
	if err := Register(e); err != nil {
		panic(err)
	}
}

// resolve canonicalizes a name through the alias table.
func resolve(name string) string {
	if canonical, ok := aliases[name]; ok {
		return canonical
	}
	return name
}

// ByName looks a policy entry up by registered name or alias.
func ByName(name string) (Entry, bool) {
	mu.RLock()
	defer mu.RUnlock()
	e, ok := entries[resolve(name)]
	return e, ok
}

// New constructs the named policy, resolving aliases. The error lists
// the available names.
func New(name string, seed int64) (core.TieringPolicy, error) {
	return NewObs(name, seed, nil)
}

// NewObs is New with observability: each successful resolution counts
// toward the sink's mnemo_registry_policy_resolutions_total{policy=…},
// keyed by the canonical (post-alias) name. A nil sink records nothing.
func NewObs(name string, seed int64, sink *obs.Sink) (core.TieringPolicy, error) {
	e, ok := ByName(name)
	if !ok {
		return nil, fmt.Errorf("registry: unknown policy %q (want one of %v)", name, Names())
	}
	sink.Counter(obs.Name("mnemo_registry_policy_resolutions_total", "policy", e.Name)).Inc()
	return e.New(seed), nil
}

// Names lists the registered policy names, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(entries))
	for n := range entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Entries lists the full catalog, sorted by name.
func Entries() []Entry {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]Entry, 0, len(entries))
	for _, e := range entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func init() {
	MustRegister(Entry{
		Name:        "touch",
		Description: "stand-alone Mnemo: keys in workload first-touch order (alias: standalone)",
		New:         func(int64) core.TieringPolicy { return core.Touch },
	})
	MustRegister(Entry{
		Name:        "mnemot",
		Description: "MnemoT: keys by descending accesses/size placement weight",
		New:         func(int64) core.TieringPolicy { return core.MnemoT },
	})
	MustRegister(Entry{
		Name:        "tahoe",
		Description: "Tahoe-class heuristic: keys by raw access frequency",
		New:         func(int64) core.TieringPolicy { return tahoePolicy{} },
	})
	MustRegister(Entry{
		Name:        "freqdecay",
		Description: "HybridTier-style exponentially decayed access frequency",
		New:         func(int64) core.TieringPolicy { return FreqDecay(DefaultEpochs, DefaultDecay) },
		Params:      freqDecaySpace,
		FromParams: func(_ int64, v map[string]float64) (core.TieringPolicy, error) {
			return freqDecayPolicy{
				name:   qualifiedName("freqdecay", v),
				epochs: int(v["epochs"]),
				decay:  v["decay"],
			}, nil
		},
	})
	MustRegister(Entry{
		Name:        "pagesample",
		Description: "generic page-granularity sampling profiler (mode 2b)",
		New:         func(seed int64) core.TieringPolicy { return PageSample(DefaultSampleRate, seed) },
		Params:      pageSampleSpace,
		FromParams: func(seed int64, v map[string]float64) (core.TieringPolicy, error) {
			// PageSample already qualifies non-default rates in its name.
			return PageSample(int(v["rate"]), seed), nil
		},
	})
	MustRegister(Entry{
		Name:        "knapsack",
		Description: "exact 0/1-knapsack DP over staged FastMem capacities",
		New:         func(int64) core.TieringPolicy { return knapsackPolicy{} },
		Params:      knapsackSpace,
		FromParams: func(_ int64, v map[string]float64) (core.TieringPolicy, error) {
			return knapsackPolicy{
				name:   qualifiedName("knapsack", v),
				rungs:  int(v["rungs"]),
				anchor: v["anchor"],
			}, nil
		},
	})
	MustRegister(Entry{
		Name:        "adaptive-freq",
		Description: "adaptive HybridTier-style online decayed frequency (epoch migration)",
		New:         func(int64) core.TieringPolicy { return AdaptiveFreq(DefaultDecay) },
		Params:      adaptiveFreqSpace,
		FromParams: func(_ int64, v map[string]float64) (core.TieringPolicy, error) {
			return adaptiveFreqPolicy{
				name:  qualifiedName("adaptive-freq", v),
				decay: v["decay"],
			}, nil
		},
	})
	MustRegister(Entry{
		Name:        "adaptive-mnemot",
		Description: "adaptive wrapper: MnemoT re-ordered on each epoch's observed accesses",
		New:         func(int64) core.TieringPolicy { return Adaptive(core.MnemoT) },
	})
}
