package memsim

import "container/list"

// LRUCache models the testbed's shared last-level cache at record
// granularity: a record is either fully resident or absent. Record-level
// rather than line-level granularity keeps the model O(1) per access
// while preserving the first-order effect the paper's measurements embed
// — repeatedly touched small hot records are served at cache speed, large
// or cold records pay full memory cost.
type LRUCache struct {
	capacity int64
	used     int64
	order    *list.List // front = most recently used; values are cacheEntry
	index    map[uint64]*list.Element

	hits, misses int64
}

type cacheEntry struct {
	id    uint64
	bytes int64
}

// NewLRUCache creates a cache with the given byte capacity.
func NewLRUCache(capacity int64) *LRUCache {
	if capacity <= 0 {
		panic("memsim: cache capacity must be positive")
	}
	return &LRUCache{
		capacity: capacity,
		order:    list.New(),
		index:    make(map[uint64]*list.Element),
	}
}

// Access records a touch of rec and reports whether it was a hit. On a
// miss the record is inserted (if it fits at all) and cold entries are
// evicted LRU-first. Records larger than the whole cache never hit.
func (c *LRUCache) Access(rec RecordRef) bool {
	size := int64(rec.Bytes)
	if el, ok := c.index[rec.ID]; ok {
		ent := el.Value.(cacheEntry)
		if ent.bytes == size {
			c.order.MoveToFront(el)
			c.hits++
			return true
		}
		// Size changed (record overwritten with a different value):
		// treat as a miss and reinsert below.
		c.removeElement(el)
	}
	c.misses++
	if size > c.capacity {
		return false // streaming record, uncacheable
	}
	for c.used+size > c.capacity {
		c.evictOldest()
	}
	el := c.order.PushFront(cacheEntry{id: rec.ID, bytes: size})
	c.index[rec.ID] = el
	c.used += size
	return false
}

// Remove invalidates a record, if present.
func (c *LRUCache) Remove(id uint64) {
	if el, ok := c.index[id]; ok {
		c.removeElement(el)
	}
}

func (c *LRUCache) removeElement(el *list.Element) {
	ent := el.Value.(cacheEntry)
	c.order.Remove(el)
	delete(c.index, ent.id)
	c.used -= ent.bytes
}

func (c *LRUCache) evictOldest() {
	back := c.order.Back()
	if back == nil {
		return
	}
	c.removeElement(back)
}

// Flush empties the cache (used between baseline runs so each starts
// cold, as the paper's repeated fresh executions do).
func (c *LRUCache) Flush() {
	c.order.Init()
	c.index = make(map[uint64]*list.Element)
	c.used = 0
}

// ResetStats zeroes the hit/miss counters without touching contents.
func (c *LRUCache) ResetStats() { c.hits, c.misses = 0, 0 }

// Used reports resident bytes.
func (c *LRUCache) Used() int64 { return c.used }

// Capacity reports the configured capacity.
func (c *LRUCache) Capacity() int64 { return c.capacity }

// Len reports the number of resident records.
func (c *LRUCache) Len() int { return c.order.Len() }

// Hits reports the number of accesses served from cache.
func (c *LRUCache) Hits() int64 { return c.hits }

// Misses reports the number of accesses that went to memory.
func (c *LRUCache) Misses() int64 { return c.misses }

// HitRate reports hits / (hits + misses), or 0 when no accesses occurred.
func (c *LRUCache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
