package memsim

// LRUCache models the testbed's shared last-level cache at record
// granularity: a record is either fully resident or absent. Record-level
// rather than line-level granularity keeps the model O(1) per access
// while preserving the first-order effect the paper's measurements embed
// — repeatedly touched small hot records are served at cache speed, large
// or cold records pay full memory cost.
//
// The cache sits on the replay hot path (one Access per request), so it
// is built from flat slices instead of container/list plus a built-in
// map: resident records live in a slot arena threaded into an intrusive
// doubly-linked recency list, and an open-addressed table with linear
// probing maps record IDs to slots. Record IDs are already FNV-64a
// hashes (kvstore.KeyID), so the table indexes them directly without
// re-hashing. Steady-state accesses — hits and miss/evict cycles alike —
// allocate nothing.
type LRUCache struct {
	capacity int64
	used     int64

	slots []cacheSlot
	free  []int32 // recycled slot indices
	head  int32   // most recently used, -1 when empty
	tail  int32   // least recently used, -1 when empty
	size  int     // resident records

	table []int32 // open-addressed id index; -1 = empty, else slot index
	mask  uint64

	hits, misses int64
}

type cacheSlot struct {
	id         uint64
	bytes      int64
	prev, next int32  // intrusive recency list, -1 terminated
	pos        uint32 // current probe-table position, kept in sync by moves
}

// minTableSize keeps the probe table a power of two; it doubles whenever
// residency reaches half the table, bounding probe sequences.
const minTableSize = 64

// NewLRUCache creates a cache with the given byte capacity.
func NewLRUCache(capacity int64) *LRUCache {
	if capacity <= 0 {
		panic("memsim: cache capacity must be positive")
	}
	c := &LRUCache{capacity: capacity, head: -1, tail: -1}
	c.resetTable(minTableSize)
	return c
}

func (c *LRUCache) resetTable(n int) {
	c.table = make([]int32, n)
	for i := range c.table {
		c.table[i] = -1
	}
	c.mask = uint64(n - 1)
}

// findPos probes for id, returning its table position if resident or the
// position where it would be inserted.
func (c *LRUCache) findPos(id uint64) (pos uint64, found bool) {
	pos = id & c.mask
	for {
		s := c.table[pos]
		if s < 0 {
			return pos, false
		}
		if c.slots[s].id == id {
			return pos, true
		}
		pos = (pos + 1) & c.mask
	}
}

func (c *LRUCache) grow() {
	old := c.table
	c.resetTable(len(old) * 2)
	for _, s := range old {
		if s >= 0 {
			pos, _ := c.findPos(c.slots[s].id)
			c.table[pos] = s
			c.slots[s].pos = uint32(pos)
		}
	}
}

// tableDelete empties the table position pos and compacts the probe
// cluster behind it (backward-shift deletion), so lookups never need
// tombstones.
func (c *LRUCache) tableDelete(pos uint64) {
	i := pos
	for {
		c.table[i] = -1
		j := i
		for {
			j = (j + 1) & c.mask
			s := c.table[j]
			if s < 0 {
				return
			}
			h := c.slots[s].id & c.mask
			// Move the entry at j into the hole at i unless its home
			// position lies cyclically within (i, j] — in that case the
			// hole does not break its probe sequence.
			var move bool
			if j > i {
				move = h <= i || h > j
			} else {
				move = h <= i && h > j
			}
			if move {
				c.table[i] = s
				c.slots[s].pos = uint32(i)
				i = j
				break
			}
		}
	}
}

func (c *LRUCache) unlink(s int32) {
	sl := &c.slots[s]
	if sl.prev >= 0 {
		c.slots[sl.prev].next = sl.next
	} else {
		c.head = sl.next
	}
	if sl.next >= 0 {
		c.slots[sl.next].prev = sl.prev
	} else {
		c.tail = sl.prev
	}
}

func (c *LRUCache) pushFront(s int32) {
	sl := &c.slots[s]
	sl.prev = -1
	sl.next = c.head
	if c.head >= 0 {
		c.slots[c.head].prev = s
	}
	c.head = s
	if c.tail < 0 {
		c.tail = s
	}
}

// removeAt evicts the record at table position pos.
func (c *LRUCache) removeAt(pos uint64) {
	s := c.table[pos]
	c.unlink(s)
	c.tableDelete(pos)
	c.used -= c.slots[s].bytes
	c.size--
	c.free = append(c.free, s)
}

func (c *LRUCache) insert(id uint64, size int64) {
	if (c.size+1)*2 > len(c.table) {
		c.grow()
	}
	var s int32
	if n := len(c.free); n > 0 {
		s = c.free[n-1]
		c.free = c.free[:n-1]
	} else {
		c.slots = append(c.slots, cacheSlot{})
		s = int32(len(c.slots) - 1)
	}
	pos, _ := c.findPos(id)
	c.slots[s] = cacheSlot{id: id, bytes: size, prev: -1, next: -1, pos: uint32(pos)}
	c.table[pos] = s
	c.pushFront(s)
	c.used += size
	c.size++
}

// Access records a touch of rec and reports whether it was a hit. On a
// miss the record is inserted (if it fits at all) and cold entries are
// evicted LRU-first. Records larger than the whole cache never hit.
func (c *LRUCache) Access(rec RecordRef) bool {
	size := int64(rec.Bytes)
	if pos, ok := c.findPos(rec.ID); ok {
		s := c.table[pos]
		if c.slots[s].bytes == size {
			if c.head != s {
				c.unlink(s)
				c.pushFront(s)
			}
			c.hits++
			return true
		}
		// Size changed (record overwritten with a different value):
		// treat as a miss and reinsert below.
		c.removeAt(pos)
	}
	c.misses++
	if size > c.capacity {
		return false // streaming record, uncacheable
	}
	for c.used+size > c.capacity {
		c.evictOldest()
	}
	c.insert(rec.ID, size)
	return false
}

// Remove invalidates a record, if present.
func (c *LRUCache) Remove(id uint64) {
	if pos, ok := c.findPos(id); ok {
		c.removeAt(pos)
	}
}

func (c *LRUCache) evictOldest() {
	if c.tail < 0 {
		return
	}
	// The slot remembers its own probe-table position, so eviction does
	// not re-probe; the sanity check keeps index/list desyncs loud.
	pos := uint64(c.slots[c.tail].pos)
	if c.table[pos] != c.tail {
		panic("memsim: cache recency list out of sync with index")
	}
	c.removeAt(pos)
}

// Flush empties the cache (used between baseline runs so each starts
// cold, as the paper's repeated fresh executions do). The probe table
// keeps its size, since the next run typically reaches similar residency.
func (c *LRUCache) Flush() {
	c.slots = c.slots[:0]
	c.free = c.free[:0]
	c.head, c.tail = -1, -1
	c.size = 0
	c.used = 0
	c.resetTable(len(c.table))
}

// ResetStats zeroes the hit/miss counters without touching contents.
func (c *LRUCache) ResetStats() { c.hits, c.misses = 0, 0 }

// Used reports resident bytes.
func (c *LRUCache) Used() int64 { return c.used }

// Capacity reports the configured capacity.
func (c *LRUCache) Capacity() int64 { return c.capacity }

// Len reports the number of resident records.
func (c *LRUCache) Len() int { return c.size }

// Hits reports the number of accesses served from cache.
func (c *LRUCache) Hits() int64 { return c.hits }

// Misses reports the number of accesses that went to memory.
func (c *LRUCache) Misses() int64 { return c.misses }

// HitRate reports hits / (hits + misses), or 0 when no accesses occurred.
func (c *LRUCache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
