package memsim

import (
	"testing"
	"testing/quick"
)

func TestCacheHitMiss(t *testing.T) {
	c := NewLRUCache(1 << 20)
	a := RecordRef{ID: 1, Bytes: 1024}
	if c.Access(a) {
		t.Fatal("cold access hit")
	}
	if !c.Access(a) {
		t.Fatal("warm access missed")
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("hits/misses = %d/%d", c.Hits(), c.Misses())
	}
	if c.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", c.HitRate())
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	c := NewLRUCache(3000)
	a := RecordRef{ID: 1, Bytes: 1000}
	b := RecordRef{ID: 2, Bytes: 1000}
	d := RecordRef{ID: 3, Bytes: 1000}
	c.Access(a)
	c.Access(b)
	c.Access(d)
	c.Access(a) // refresh a; b is now LRU
	e := RecordRef{ID: 4, Bytes: 1000}
	c.Access(e) // evicts b
	if !c.Access(a) {
		t.Error("a should still be resident")
	}
	if c.Access(b) {
		t.Error("b should have been evicted")
	}
}

func TestCacheOversizedRecordNeverCached(t *testing.T) {
	c := NewLRUCache(1000)
	big := RecordRef{ID: 1, Bytes: 5000}
	if c.Access(big) || c.Access(big) {
		t.Fatal("oversized record must never hit")
	}
	if c.Used() != 0 {
		t.Fatalf("oversized record consumed cache: used=%d", c.Used())
	}
}

func TestCacheSizeChangeIsMiss(t *testing.T) {
	c := NewLRUCache(1 << 20)
	c.Access(RecordRef{ID: 1, Bytes: 1000})
	// Record overwritten with a larger value: same ID, new size.
	if c.Access(RecordRef{ID: 1, Bytes: 2000}) {
		t.Fatal("resized record should miss")
	}
	if !c.Access(RecordRef{ID: 1, Bytes: 2000}) {
		t.Fatal("record with new size should now hit")
	}
	if c.Used() != 2000 {
		t.Fatalf("used = %d, want 2000 (no double-count)", c.Used())
	}
}

func TestCacheRemoveAndFlush(t *testing.T) {
	c := NewLRUCache(1 << 20)
	a := RecordRef{ID: 1, Bytes: 100}
	c.Access(a)
	c.Remove(1)
	if c.Access(a) {
		t.Fatal("removed record hit")
	}
	c.Remove(999) // absent: no-op
	c.Flush()
	if c.Used() != 0 || c.Len() != 0 {
		t.Fatal("flush did not empty cache")
	}
	if c.Access(a) {
		t.Fatal("post-flush access hit")
	}
}

func TestCacheResetStats(t *testing.T) {
	c := NewLRUCache(1 << 20)
	c.Access(RecordRef{ID: 1, Bytes: 10})
	c.ResetStats()
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Fatal("ResetStats did not zero counters")
	}
	if c.HitRate() != 0 {
		t.Fatal("empty hit rate should be 0")
	}
}

func TestCachePanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLRUCache(0)
}

// Property: used bytes never exceed capacity and Len matches index size.
func TestCacheInvariantProperty(t *testing.T) {
	c := NewLRUCache(10_000)
	f := func(ops []struct {
		ID    uint8
		Bytes uint16
	}) bool {
		for _, op := range ops {
			b := int(op.Bytes)
			if b == 0 {
				b = 1
			}
			c.Access(RecordRef{ID: uint64(op.ID), Bytes: b})
			if c.Used() > c.Capacity() {
				return false
			}
			if c.Used() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
