// Package memsim emulates the paper's hybrid memory testbed: a machine
// with one fast memory node (DRAM — "FastMem") and one slow node
// (emulated NVDIMM — "SlowMem"), fronted by a shared last-level cache.
//
// The paper emulates SlowMem by thermally throttling the DRAM of one
// socket of a dual-socket Xeon, yielding the Table I parameters:
//
//	           FastMem   SlowMem
//	Latency    65.7 ns   238.1 ns   (×3.62)
//	Bandwidth  14.9 GB/s 1.81 GB/s  (×0.12)
//
// This package substitutes a discrete-event model with exactly those
// parameters. A memory access is decomposed into pointer chases (random
// accesses that pay the node latency) and streamed bytes (that pay the
// node's inverse bandwidth); a 12 MB LRU record cache stands in for the
// testbed's shared LLC. SlowMem extends the flat address space — FastMem
// does not act as a cache for SlowMem, matching the paper's setup.
package memsim

import (
	"errors"
	"fmt"

	"mnemo/internal/simclock"
)

// Tier identifies one of the two memory components.
type Tier int

// The two tiers of the hybrid memory system.
const (
	Fast Tier = iota
	Slow
)

// String implements fmt.Stringer.
func (t Tier) String() string {
	switch t {
	case Fast:
		return "FastMem"
	case Slow:
		return "SlowMem"
	default:
		return fmt.Sprintf("Tier(%d)", int(t))
	}
}

// NodeParams describes the performance of one memory node.
type NodeParams struct {
	Name          string
	LatencyNs     float64 // random-access (pointer chase) latency
	BandwidthGBps float64 // sustained streaming bandwidth
}

// Table I parameters of the paper's testbed.
var (
	// FastMemParams is the unthrottled DRAM node (B:1 L:1).
	FastMemParams = NodeParams{Name: "FastMem", LatencyNs: 65.7, BandwidthGBps: 14.9}
	// SlowMemParams is the throttled node emulating NVM (B:0.12 L:3.62).
	SlowMemParams = NodeParams{Name: "SlowMem", LatencyNs: 238.1, BandwidthGBps: 1.81}
	// LLCParams models the shared 12 MB last-level cache of the testbed.
	LLCParams = NodeParams{Name: "LLC", LatencyNs: 12.0, BandwidthGBps: 60}
)

// SlowTier describes an alternative slow-memory technology: its node
// parameters plus the per-byte price relative to DRAM. The paper's
// analysis fixes one emulated NVM and p = 0.2; these presets let the
// technology-sensitivity experiment re-ask the sizing question for the
// slow tiers that materialized after publication.
type SlowTier struct {
	Params      NodeParams
	PriceFactor float64
}

// SlowTiers returns the bundled slow-tier technology presets, the
// paper's emulation first. Latency/bandwidth values follow published
// measurements of the respective device classes; price factors are
// coarse per-GB ratios against DRAM.
func SlowTiers() []SlowTier {
	return []SlowTier{
		{Params: SlowMemParams, PriceFactor: 0.2}, // the paper's emulated NVDIMM
		{Params: NodeParams{Name: "OptaneDC", LatencyNs: 346, BandwidthGBps: 2.4}, PriceFactor: 0.4},
		{Params: NodeParams{Name: "CXL-DRAM", LatencyNs: 220, BandwidthGBps: 11}, PriceFactor: 0.7},
		{Params: NodeParams{Name: "FarMemory", LatencyNs: 3000, BandwidthGBps: 1.5}, PriceFactor: 0.1},
	}
}

// bytesPerNsPerGBps converts GB/s to bytes per nanosecond.
const bytesPerNsPerGBps = 1.073741824 // 2^30 bytes / 1e9 ns

// TransferNs returns the time in nanoseconds to stream the given number
// of bytes at this node's bandwidth.
func (p NodeParams) TransferNs(bytes int) float64 {
	if bytes <= 0 {
		return 0
	}
	return float64(bytes) / (p.BandwidthGBps * bytesPerNsPerGBps)
}

// ChaseNs returns the time in nanoseconds for n dependent pointer chases.
func (p NodeParams) ChaseNs(n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) * p.LatencyNs
}

// AccessNs returns the combined cost of n pointer chases plus streaming
// the given bytes.
func (p NodeParams) AccessNs(chases, bytes int) float64 {
	return p.ChaseNs(chases) + p.TransferNs(bytes)
}

// OpCost returns the two static components of one logical access against
// this medium, unsummed: the chase cost of n dependent loads and the
// streaming cost of the given bytes. This is the cost-table export used
// by the server's batched replay kernel, which needs the components
// separately (writes scale only the transfer term by the engine's
// WritePenalty) yet must combine them in exactly the per-operation
// order to stay bit-identical with the live pricing path.
func (p NodeParams) OpCost(chases, bytes int) (chaseNs, transferNs float64) {
	return p.ChaseNs(chases), p.TransferNs(bytes)
}

// Node is one memory component with capacity accounting.
type Node struct {
	Params   NodeParams
	capacity int64
	used     int64
}

// ErrNoCapacity is returned when an allocation exceeds the node's
// remaining capacity.
var ErrNoCapacity = errors.New("memsim: node capacity exhausted")

// NewNode creates a node with the given parameters and byte capacity.
// A capacity of 0 means unlimited (the consultant sizes capacity itself,
// so the substrate does not need to enforce a bound during profiling).
func NewNode(p NodeParams, capacity int64) *Node {
	if capacity < 0 {
		panic("memsim: negative capacity")
	}
	return &Node{Params: p, capacity: capacity}
}

// Alloc reserves bytes on the node.
func (n *Node) Alloc(bytes int64) error {
	if bytes < 0 {
		panic("memsim: negative allocation")
	}
	if n.capacity > 0 && n.used+bytes > n.capacity {
		return fmt.Errorf("%w: %s used %d + %d > cap %d", ErrNoCapacity, n.Params.Name, n.used, bytes, n.capacity)
	}
	n.used += bytes
	return nil
}

// Free releases bytes previously allocated.
func (n *Node) Free(bytes int64) {
	if bytes < 0 {
		panic("memsim: negative free")
	}
	n.used -= bytes
	if n.used < 0 {
		n.used = 0
	}
}

// Used reports the bytes currently allocated on the node.
func (n *Node) Used() int64 { return n.used }

// Capacity reports the node's configured capacity (0 = unlimited).
func (n *Node) Capacity() int64 { return n.capacity }

// RecordRef identifies a stored record for cache-model purposes.
type RecordRef struct {
	ID    uint64
	Bytes int
}

// Traffic describes how one logical access was served.
type Traffic struct {
	Tier      Tier
	HitBytes  int  // bytes served from the LLC
	MissBytes int  // bytes served from the memory node
	Chases    int  // dependent pointer chases issued
	CacheHit  bool // true when the record was fully LLC-resident
}

// Machine is the emulated dual-node platform.
type Machine struct {
	fast, slow *Node
	llc        *LRUCache
}

// Config parameterizes a Machine.
type Config struct {
	FastParams, SlowParams NodeParams
	FastCapacity           int64 // bytes; 0 = unlimited
	SlowCapacity           int64 // bytes; 0 = unlimited
	LLCBytes               int64 // shared cache size; 0 disables the cache model
	LLCParams              NodeParams
}

// DefaultConfig returns the Table I testbed: unlimited node capacities
// (the consultant decides sizing) and the 12 MB shared LLC.
func DefaultConfig() Config {
	return Config{
		FastParams: FastMemParams,
		SlowParams: SlowMemParams,
		LLCBytes:   12 << 20,
		LLCParams:  LLCParams,
	}
}

// NewMachine builds a machine from the config.
func NewMachine(cfg Config) *Machine {
	m := &Machine{
		fast: NewNode(cfg.FastParams, cfg.FastCapacity),
		slow: NewNode(cfg.SlowParams, cfg.SlowCapacity),
	}
	if cfg.LLCBytes > 0 {
		m.llc = NewLRUCache(cfg.LLCBytes)
	}
	return m
}

// Node returns the node backing the given tier.
func (m *Machine) Node(t Tier) *Node {
	if t == Fast {
		return m.fast
	}
	return m.slow
}

// LLC returns the cache model, or nil when disabled.
func (m *Machine) LLC() *LRUCache { return m.llc }

// Touch performs one logical access of the record on the given tier with
// the given number of pointer chases, updating the LLC model, and returns
// how the access was served.
func (m *Machine) Touch(t Tier, rec RecordRef, chases int) Traffic {
	tr := Traffic{Tier: t, Chases: chases}
	if m.llc != nil && m.llc.Access(rec) {
		tr.CacheHit = true
		tr.HitBytes = rec.Bytes
		return tr
	}
	tr.MissBytes = rec.Bytes
	return tr
}

// TouchHit performs one logical access of the record, updating the LLC
// model exactly as Touch does, and reports only whether the record was
// LLC-resident. This is the narrow form used by the server's pricing hot
// path, which selects the serving medium from the hit bit alone and has
// no use for a Traffic breakdown.
func (m *Machine) TouchHit(rec RecordRef) bool {
	return m.llc != nil && m.llc.Access(rec)
}

// Invalidate drops a record from the LLC model (e.g. after deletion).
func (m *Machine) Invalidate(rec RecordRef) {
	if m.llc != nil {
		m.llc.Remove(rec.ID)
	}
}

// CostNs prices a Traffic result: chases and miss bytes at the node's
// parameters, hit bytes at LLC parameters. The caller (internal/server)
// layers engine-specific memory-level parallelism and write buffering on
// top of this raw cost.
func (m *Machine) CostNs(tr Traffic) float64 {
	if tr.CacheHit {
		return LLCParams.ChaseNs(tr.Chases) + LLCParams.TransferNs(tr.HitBytes)
	}
	p := m.Node(tr.Tier).Params
	return p.ChaseNs(tr.Chases) + p.TransferNs(tr.MissBytes)
}

// Cost is CostNs expressed as a simulated duration.
func (m *Machine) Cost(tr Traffic) simclock.Duration {
	return simclock.FromNanos(m.CostNs(tr))
}

// Calibration holds the latency and bandwidth measured through the access
// path, used to regenerate Table I and to validate the model wiring.
type Calibration struct {
	Tier          Tier
	LatencyNs     float64
	BandwidthGBps float64
}

// Calibrate measures a tier with a pointer-chase microbenchmark (latency)
// and a large streaming access (bandwidth), bypassing the LLC the way the
// paper's calibration does (working sets larger than the cache).
func (m *Machine) Calibrate(t Tier) Calibration {
	p := m.Node(t).Params
	const chases = 1_000_000
	latTotal := p.ChaseNs(chases)
	const streamBytes = 1 << 30
	xferNs := p.TransferNs(streamBytes)
	return Calibration{
		Tier:          t,
		LatencyNs:     latTotal / chases,
		BandwidthGBps: float64(streamBytes) / (xferNs * bytesPerNsPerGBps),
	}
}
