package memsim

// Model-based test of the flat-slice LRUCache: a reference cache built on
// container/list (the previous implementation, kept here as the
// executable specification) is driven through long randomized op
// sequences in lockstep with the real one, and every observable — hit
// results, residency, byte usage, counters — must agree at every step.

import (
	"container/list"
	"math/rand"
	"testing"
)

type refCache struct {
	capacity int64
	used     int64
	order    *list.List
	index    map[uint64]*list.Element

	hits, misses int64
}

type refEntry struct {
	id    uint64
	bytes int64
}

func newRefCache(capacity int64) *refCache {
	return &refCache{capacity: capacity, order: list.New(), index: make(map[uint64]*list.Element)}
}

func (c *refCache) access(rec RecordRef) bool {
	size := int64(rec.Bytes)
	if el, ok := c.index[rec.ID]; ok {
		if el.Value.(refEntry).bytes == size {
			c.order.MoveToFront(el)
			c.hits++
			return true
		}
		c.removeElement(el)
	}
	c.misses++
	if size > c.capacity {
		return false
	}
	for c.used+size > c.capacity {
		if back := c.order.Back(); back != nil {
			c.removeElement(back)
		}
	}
	c.index[rec.ID] = c.order.PushFront(refEntry{id: rec.ID, bytes: size})
	c.used += size
	return false
}

func (c *refCache) remove(id uint64) {
	if el, ok := c.index[id]; ok {
		c.removeElement(el)
	}
}

func (c *refCache) removeElement(el *list.Element) {
	ent := el.Value.(refEntry)
	c.order.Remove(el)
	delete(c.index, ent.id)
	c.used -= ent.bytes
}

func (c *refCache) flush() {
	c.order.Init()
	c.index = make(map[uint64]*list.Element)
	c.used = 0
}

func TestLRUCacheMatchesReferenceModel(t *testing.T) {
	const capacity = 64 << 10
	got := NewLRUCache(capacity)
	want := newRefCache(capacity)
	rng := rand.New(rand.NewSource(99))

	// IDs drawn from a working set a few times the cache's record
	// capacity force constant eviction churn; a sprinkle of size changes,
	// removals and flushes exercises every mutation path.
	ids := make([]uint64, 512)
	for i := range ids {
		ids[i] = rng.Uint64() // hash-like IDs, as kvstore.KeyID produces
	}
	for step := 0; step < 200000; step++ {
		switch r := rng.Intn(100); {
		case r < 90:
			rec := RecordRef{ID: ids[rng.Intn(len(ids))], Bytes: 1 << (5 + rng.Intn(8))}
			if g, w := got.Access(rec), want.access(rec); g != w {
				t.Fatalf("step %d: Access(%+v) = %v, reference says %v", step, rec, g, w)
			}
		case r < 97:
			id := ids[rng.Intn(len(ids))]
			got.Remove(id)
			want.remove(id)
		case r < 99:
			// Uncacheable streaming record.
			rec := RecordRef{ID: ids[rng.Intn(len(ids))], Bytes: capacity * 2}
			if g, w := got.Access(rec), want.access(rec); g != w {
				t.Fatalf("step %d: streaming Access = %v, reference says %v", step, g, w)
			}
		default:
			got.Flush()
			want.flush()
		}
		if got.Used() != want.used {
			t.Fatalf("step %d: used %d, reference %d", step, got.Used(), want.used)
		}
		if got.Len() != want.order.Len() {
			t.Fatalf("step %d: len %d, reference %d", step, got.Len(), want.order.Len())
		}
		if got.Hits() != want.hits || got.Misses() != want.misses {
			t.Fatalf("step %d: hits/misses %d/%d, reference %d/%d",
				step, got.Hits(), got.Misses(), want.hits, want.misses)
		}
	}
}

// TestLRUCacheDenseIDs repeats a short model run with small sequential
// IDs, the worst case for a table that indexes IDs without re-hashing.
func TestLRUCacheDenseIDs(t *testing.T) {
	const capacity = 4 << 10
	got := NewLRUCache(capacity)
	want := newRefCache(capacity)
	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 50000; step++ {
		rec := RecordRef{ID: uint64(rng.Intn(256)), Bytes: 64 + rng.Intn(192)}
		if rng.Intn(20) == 0 {
			got.Remove(rec.ID)
			want.remove(rec.ID)
			continue
		}
		if g, w := got.Access(rec), want.access(rec); g != w {
			t.Fatalf("step %d: Access(%+v) = %v, reference says %v", step, rec, g, w)
		}
	}
	if got.Used() != want.used || got.Len() != want.order.Len() {
		t.Fatalf("final state diverged: used %d/%d len %d/%d",
			got.Used(), want.used, got.Len(), want.order.Len())
	}
}
