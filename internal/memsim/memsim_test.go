package memsim

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestTierString(t *testing.T) {
	if Fast.String() != "FastMem" || Slow.String() != "SlowMem" {
		t.Fatal("tier names wrong")
	}
	if Tier(9).String() == "" {
		t.Fatal("unknown tier should still format")
	}
}

func TestTableIRatios(t *testing.T) {
	// Table I: SlowMem has 3.62x latency and 0.12x bandwidth of FastMem.
	latRatio := SlowMemParams.LatencyNs / FastMemParams.LatencyNs
	bwRatio := SlowMemParams.BandwidthGBps / FastMemParams.BandwidthGBps
	if math.Abs(latRatio-3.62) > 0.01 {
		t.Errorf("latency ratio = %.3f, want 3.62", latRatio)
	}
	if math.Abs(bwRatio-0.12) > 0.005 {
		t.Errorf("bandwidth ratio = %.3f, want 0.12", bwRatio)
	}
}

func TestTransferAndChaseCosts(t *testing.T) {
	p := NodeParams{LatencyNs: 100, BandwidthGBps: 1}
	if got := p.ChaseNs(3); got != 300 {
		t.Errorf("ChaseNs(3) = %v, want 300", got)
	}
	if got := p.ChaseNs(0); got != 0 {
		t.Errorf("ChaseNs(0) = %v", got)
	}
	if got := p.ChaseNs(-1); got != 0 {
		t.Errorf("ChaseNs(-1) = %v", got)
	}
	// 1 GiB at 1 GB/s(GiB-based) = 1e9 ns.
	if got := p.TransferNs(1 << 30); math.Abs(got-1e9) > 1 {
		t.Errorf("TransferNs(1GiB) = %v, want 1e9", got)
	}
	if got := p.TransferNs(0); got != 0 {
		t.Errorf("TransferNs(0) = %v", got)
	}
	if got := p.AccessNs(2, 0); got != 200 {
		t.Errorf("AccessNs = %v", got)
	}
}

func TestNodeCapacityAccounting(t *testing.T) {
	n := NewNode(FastMemParams, 100)
	if err := n.Alloc(60); err != nil {
		t.Fatal(err)
	}
	if err := n.Alloc(50); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("over-alloc err = %v, want ErrNoCapacity", err)
	}
	if n.Used() != 60 {
		t.Fatalf("Used = %d, want 60 after failed alloc", n.Used())
	}
	n.Free(20)
	if n.Used() != 40 {
		t.Fatalf("Used = %d after free", n.Used())
	}
	n.Free(1000) // over-free clamps at zero
	if n.Used() != 0 {
		t.Fatalf("Used = %d, want 0", n.Used())
	}
	if n.Capacity() != 100 {
		t.Fatal("Capacity accessor wrong")
	}
}

func TestNodeUnlimitedCapacity(t *testing.T) {
	n := NewNode(SlowMemParams, 0)
	if err := n.Alloc(1 << 40); err != nil {
		t.Fatalf("unlimited node rejected alloc: %v", err)
	}
}

func TestNodePanics(t *testing.T) {
	n := NewNode(FastMemParams, 10)
	for _, fn := range []func(){
		func() { NewNode(FastMemParams, -1) },
		func() { _ = n.Alloc(-1) },
		func() { n.Free(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestMachineTouchMissThenHit(t *testing.T) {
	m := NewMachine(DefaultConfig())
	rec := RecordRef{ID: 1, Bytes: 4096}
	tr := m.Touch(Slow, rec, 2)
	if tr.CacheHit || tr.MissBytes != 4096 || tr.HitBytes != 0 {
		t.Fatalf("first touch should miss: %+v", tr)
	}
	tr = m.Touch(Slow, rec, 2)
	if !tr.CacheHit || tr.HitBytes != 4096 || tr.MissBytes != 0 {
		t.Fatalf("second touch should hit: %+v", tr)
	}
}

func TestMachineCostTiers(t *testing.T) {
	m := NewMachine(DefaultConfig())
	recA := RecordRef{ID: 1, Bytes: 100 << 10}
	recB := RecordRef{ID: 2, Bytes: 100 << 10}
	fast := m.CostNs(m.Touch(Fast, recA, 1))
	slow := m.CostNs(m.Touch(Slow, recB, 1))
	if slow <= fast {
		t.Fatalf("slow access (%.0f ns) should cost more than fast (%.0f ns)", slow, fast)
	}
	// 100 KiB at 1.81 GB/s ≈ 52.7 µs dominates; check within 10%.
	wantSlow := SlowMemParams.AccessNs(1, 100<<10)
	if math.Abs(slow-wantSlow) > 1 {
		t.Errorf("slow cost %.0f, want %.0f", slow, wantSlow)
	}
}

func TestMachineCostCacheHitCheap(t *testing.T) {
	m := NewMachine(DefaultConfig())
	rec := RecordRef{ID: 7, Bytes: 64 << 10}
	miss := m.CostNs(m.Touch(Slow, rec, 1))
	hit := m.CostNs(m.Touch(Slow, rec, 1))
	if hit >= miss/10 {
		t.Fatalf("cache hit %.0f ns not ≪ miss %.0f ns", hit, miss)
	}
}

func TestMachineCostDuration(t *testing.T) {
	m := NewMachine(DefaultConfig())
	tr := m.Touch(Fast, RecordRef{ID: 3, Bytes: 1024}, 1)
	if m.Cost(tr).Nanoseconds() <= 0 {
		t.Fatal("cost duration should be positive")
	}
}

func TestMachineInvalidate(t *testing.T) {
	m := NewMachine(DefaultConfig())
	rec := RecordRef{ID: 5, Bytes: 1024}
	m.Touch(Fast, rec, 1)
	m.Invalidate(rec)
	tr := m.Touch(Fast, rec, 1)
	if tr.CacheHit {
		t.Fatal("invalidated record still hit")
	}
}

func TestMachineNoLLC(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LLCBytes = 0
	m := NewMachine(cfg)
	if m.LLC() != nil {
		t.Fatal("LLC should be disabled")
	}
	rec := RecordRef{ID: 1, Bytes: 1024}
	m.Touch(Fast, rec, 1)
	tr := m.Touch(Fast, rec, 1)
	if tr.CacheHit {
		t.Fatal("hit without a cache model")
	}
	m.Invalidate(rec) // must not panic
}

func TestMachineNodeAccessor(t *testing.T) {
	m := NewMachine(DefaultConfig())
	if m.Node(Fast).Params.Name != "FastMem" || m.Node(Slow).Params.Name != "SlowMem" {
		t.Fatal("Node accessor returned wrong node")
	}
}

func TestCalibrateReproducesTableI(t *testing.T) {
	m := NewMachine(DefaultConfig())
	for _, tc := range []struct {
		tier    Tier
		wantLat float64
		wantBW  float64
	}{
		{Fast, 65.7, 14.9},
		{Slow, 238.1, 1.81},
	} {
		c := m.Calibrate(tc.tier)
		if math.Abs(c.LatencyNs-tc.wantLat) > 0.01 {
			t.Errorf("%v latency = %.2f, want %.2f", tc.tier, c.LatencyNs, tc.wantLat)
		}
		if math.Abs(c.BandwidthGBps-tc.wantBW) > 0.01 {
			t.Errorf("%v bandwidth = %.2f, want %.2f", tc.tier, c.BandwidthGBps, tc.wantBW)
		}
	}
}

func TestSlowTierPresets(t *testing.T) {
	tiers := SlowTiers()
	if len(tiers) < 4 {
		t.Fatalf("only %d slow-tier presets", len(tiers))
	}
	if tiers[0].Params != SlowMemParams || tiers[0].PriceFactor != 0.2 {
		t.Error("first preset must be the paper's emulated NVM at p=0.2")
	}
	names := map[string]bool{}
	for _, tier := range tiers {
		if tier.Params.LatencyNs <= FastMemParams.LatencyNs {
			t.Errorf("%s latency %.0f not above DRAM", tier.Params.Name, tier.Params.LatencyNs)
		}
		if tier.Params.BandwidthGBps <= 0 {
			t.Errorf("%s has no bandwidth", tier.Params.Name)
		}
		if tier.PriceFactor <= 0 || tier.PriceFactor >= 1 {
			t.Errorf("%s price factor %v outside (0,1)", tier.Params.Name, tier.PriceFactor)
		}
		if names[tier.Params.Name] {
			t.Errorf("duplicate preset %s", tier.Params.Name)
		}
		names[tier.Params.Name] = true
	}
}

// Property: cost is monotone in bytes and chases.
func TestCostMonotoneProperty(t *testing.T) {
	p := SlowMemParams
	f := func(b1, b2 uint16, c1, c2 uint8) bool {
		bytesLo, bytesHi := int(b1), int(b1)+int(b2)
		chLo, chHi := int(c1), int(c1)+int(c2)
		return p.AccessNs(chLo, bytesLo) <= p.AccessNs(chHi, bytesHi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
