package kvstore

import (
	"testing"
	"testing/quick"
)

func TestValueConstructors(t *testing.T) {
	b := Bytes([]byte("hello"))
	if b.Size != 5 || string(b.Data) != "hello" {
		t.Fatalf("Bytes = %+v", b)
	}
	s := Sized(100)
	if s.Size != 100 || s.Data != nil {
		t.Fatalf("Sized = %+v", s)
	}
}

func TestSizedPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Sized(-1)
}

func TestValueValidate(t *testing.T) {
	if err := Bytes([]byte("ab")).Validate(); err != nil {
		t.Errorf("valid data value rejected: %v", err)
	}
	if err := Sized(10).Validate(); err != nil {
		t.Errorf("valid sized value rejected: %v", err)
	}
	bad := Value{Size: 3, Data: []byte("ab")}
	if err := bad.Validate(); err == nil {
		t.Error("inconsistent value accepted")
	}
	neg := Value{Size: -1}
	if err := neg.Validate(); err == nil {
		t.Error("negative size accepted")
	}
}

func TestOpKindString(t *testing.T) {
	cases := map[OpKind]string{Read: "read", Write: "write", Delete: "delete"}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d → %q, want %q", int(k), k.String(), want)
		}
	}
	if OpKind(42).String() == "" {
		t.Error("unknown kind should still format")
	}
}

func TestKeyIDDeterministicAndSpread(t *testing.T) {
	if KeyID("user42") != KeyID("user42") {
		t.Fatal("KeyID not deterministic")
	}
	if KeyID("a") == KeyID("b") {
		t.Fatal("trivial collision")
	}
}

func TestKeyIDPureFunctionProperty(t *testing.T) {
	f := func(s string) bool { return KeyID(s) == KeyID(s) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
