package slabkv

import (
	"fmt"
	"testing"
	"testing/quick"

	"mnemo/internal/kvstore"
)

func TestPutGetRoundTrip(t *testing.T) {
	s := New(0)
	s.Put("k", kvstore.Bytes([]byte("world")))
	v, tr := s.Get("k")
	if !tr.Found || string(v.Data) != "world" {
		t.Fatalf("Get = %+v / %+v", v, tr)
	}
	if s.Len() != 1 || s.DataBytes() != 5 {
		t.Fatalf("len=%d bytes=%d", s.Len(), s.DataBytes())
	}
}

func TestGetMissing(t *testing.T) {
	s := New(0)
	if _, tr := s.Get("nope"); tr.Found {
		t.Fatal("missing key found")
	}
}

func TestClassSelection(t *testing.T) {
	s := New(0)
	// Tiny item lands in the smallest class.
	s.Put("a", kvstore.Sized(1))
	if s.ChunkBytes() != MinChunk {
		t.Fatalf("chunk bytes = %d, want %d", s.ChunkBytes(), MinChunk)
	}
	// A larger value moves to a larger class chunk.
	before := s.ChunkBytes()
	s.Put("b", kvstore.Sized(10_000))
	if s.ChunkBytes() <= before+10_000 {
		t.Fatalf("large item chunk not padded: %d", s.ChunkBytes()-before)
	}
}

func TestClassChangeOnReplace(t *testing.T) {
	s := New(0)
	s.Put("k", kvstore.Sized(50))
	small := s.ChunkBytes()
	s.Put("k", kvstore.Sized(100_000))
	if s.ChunkBytes() <= small {
		t.Fatal("chunk accounting did not grow on class change")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	v, tr := s.Get("k")
	if !tr.Found || v.Size != 100_000 {
		t.Fatal("replacement value lost")
	}
	if s.DataBytes() != 100_000 {
		t.Fatalf("DataBytes = %d", s.DataBytes())
	}
}

func TestOversizedItemRejected(t *testing.T) {
	s := New(0)
	tr := s.Put("huge", kvstore.Sized(2<<20))
	if tr.Found {
		t.Fatal("oversized item stored")
	}
	if s.Len() != 0 {
		t.Fatal("oversized item resident")
	}
}

func TestEvictionUnderMemoryPressure(t *testing.T) {
	// Room for ~10 chunks of the 1 KB class.
	s := New(12 * 1200)
	for i := 0; i < 50; i++ {
		s.Put(fmt.Sprintf("k%02d", i), kvstore.Sized(1000))
	}
	if s.Evictions() == 0 {
		t.Fatal("no evictions under pressure")
	}
	if s.ChunkBytes() > 12*1200 {
		t.Fatalf("chunk bytes %d exceed limit", s.ChunkBytes())
	}
	// Most recently written key must survive.
	if _, tr := s.Get("k49"); !tr.Found {
		t.Fatal("MRU key evicted")
	}
	// Oldest key must be gone.
	if _, tr := s.Get("k00"); tr.Found {
		t.Fatal("LRU key survived")
	}
	if s.TakePauseNs() == 0 {
		t.Error("evictions produced no pause")
	}
}

func TestLRUBumpOnGet(t *testing.T) {
	s := New(3 * 1200) // fits ~3 chunks of the 1000-byte class
	s.Put("a", kvstore.Sized(1000))
	s.Put("b", kvstore.Sized(1000))
	s.Get("a") // a becomes MRU; b is LRU within the class
	s.Put("c", kvstore.Sized(1000))
	s.Put("d", kvstore.Sized(1000)) // must evict b, not a
	if _, tr := s.Get("a"); !tr.Found {
		t.Fatal("recently read key evicted")
	}
	if _, tr := s.Get("b"); tr.Found {
		t.Fatal("LRU key not evicted first")
	}
}

func TestDelete(t *testing.T) {
	s := New(0)
	s.Put("x", kvstore.Sized(500))
	if tr := s.Del("x"); !tr.Found {
		t.Fatal("delete missed")
	}
	if s.Len() != 0 || s.DataBytes() != 0 || s.ChunkBytes() != 0 {
		t.Fatalf("residue after delete: len=%d data=%d chunk=%d", s.Len(), s.DataBytes(), s.ChunkBytes())
	}
	if tr := s.Del("x"); tr.Found {
		t.Fatal("double delete found")
	}
}

func TestProfile(t *testing.T) {
	s := New(0)
	if s.Name() != "memcachedlike" {
		t.Error("name wrong")
	}
	if s.Profile().MLP < 4 {
		t.Error("memcached-like engine needs high MLP to be SlowMem-insensitive")
	}
}

func TestNewPanicsOnNegativeLimit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(-1)
}

func TestPutInvalidValuePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0).Put("k", kvstore.Value{Size: 1, Data: []byte("xy")})
}

// Property: unlimited store agrees with a reference map, and chunk bytes
// always cover data bytes.
func TestMatchesReferenceMapProperty(t *testing.T) {
	type op struct {
		Kind byte
		Key  uint8
		Size uint16
	}
	f := func(ops []op) bool {
		s := New(0)
		ref := map[string]int{}
		for _, o := range ops {
			key := fmt.Sprintf("k%d", o.Key)
			switch o.Kind % 3 {
			case 0:
				s.Put(key, kvstore.Sized(int(o.Size)))
				ref[key] = int(o.Size)
			case 1:
				_, tr := s.Get(key)
				if _, ok := ref[key]; tr.Found != ok {
					return false
				}
			case 2:
				tr := s.Del(key)
				if _, ok := ref[key]; tr.Found != ok {
					return false
				}
				delete(ref, key)
			}
		}
		if s.Len() != len(ref) {
			return false
		}
		return s.ChunkBytes() >= s.DataBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
