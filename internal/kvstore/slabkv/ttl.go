package slabkv

import "mnemo/internal/kvstore"

// Memcached-style expiration. The reproduction's stores live on a
// virtual clock owned by the deployment layer, so TTLs are expressed in
// *operations* rather than wall time: an item with TTL n expires once n
// further operations have been served. Expiration is lazy — memcached
// likewise reclaims expired items on access (plus a background crawler
// this model does not need).

// opTick advances the store's logical time; called by every operation.
func (s *Store) opTick() { s.ops++ }

// expired reports whether the item's TTL has lapsed.
func (s *Store) expired(it *item) bool {
	return it.expireAt > 0 && s.ops >= it.expireAt
}

// reap removes an expired item, charging it as an eviction-style stall.
func (s *Store) reap(it *item) {
	s.classes[it.class].remove(it)
	delete(s.index, it.key)
	s.chunkUsed -= int64(s.classes[it.class].chunkSize)
	s.dataBytes -= int64(it.val.Size)
	s.expirations++
	s.pauseNs += 1_000
}

// PutTTL stores a value that expires after ttlOps further operations
// (0 = never). It reports the same trace a plain Put does.
func (s *Store) PutTTL(key string, v kvstore.Value, ttlOps int64) kvstore.OpTrace {
	if ttlOps < 0 {
		panic("slabkv: negative TTL")
	}
	tr := s.Put(key, v)
	if it, ok := s.index[key]; ok {
		if ttlOps == 0 {
			it.expireAt = 0
		} else {
			it.expireAt = s.ops + ttlOps
		}
	}
	return tr
}

// TTLRemaining reports the operations left before the key expires:
// (remaining, true) for a live TTL-bearing key, (0, true) for a live
// immortal key, (0, false) for a missing or already-expired key. It does
// not count as an operation and does not reap.
func (s *Store) TTLRemaining(key string) (int64, bool) {
	it, ok := s.index[key]
	if !ok || s.expired(it) {
		return 0, false
	}
	if it.expireAt == 0 {
		return 0, true
	}
	return it.expireAt - s.ops, true
}

// Expirations reports how many items lapsed and were reaped.
func (s *Store) Expirations() int64 { return s.expirations }

// FlushAll invalidates every item, as memcached's flush_all does. The
// store remains usable; chunk accounting is reset.
func (s *Store) FlushAll() {
	for i := range s.classes {
		s.classes[i].head, s.classes[i].tail, s.classes[i].items = nil, nil, 0
	}
	s.index = make(map[string]*item)
	s.chunkUsed = 0
	s.dataBytes = 0
	s.pauseNs += 5_000 // flush_all holds the cache lock briefly
}
