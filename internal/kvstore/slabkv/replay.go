package slabkv

import "mnemo/internal/kvstore"

// Batched-replay capability (kvstore.BatchReplayer, DESIGN.md §12).
//
// The slab store's traces are constant by construction — Get costs two
// dependent loads, Put three — and a same-size overwrite stays in its
// slab class, so no eviction can fire while replaying a fixed dataset.
// The LRU bumps a replay would perform are behaviourally invisible at
// constant residency (eviction order only matters when something is
// evicted), so skipping them preserves every simulated quantity.

// Quiesce implements kvstore.BatchReplayer; the slab store defers no
// background work.
func (s *Store) Quiesce() {}

// ReplayReady implements kvstore.BatchReplayer. TTL-bearing items
// disqualify the store: their lazy reaping depends on the store's
// logical op clock, which a batched replay does not advance.
func (s *Store) ReplayReady() bool {
	for _, it := range s.index {
		if it.expireAt != 0 {
			return false
		}
	}
	return true
}

// StaticTrace implements kvstore.BatchReplayer.
func (s *Store) StaticTrace(key string, id uint64) (getChases, putChases int, ok bool) {
	it, found := s.index[key]
	if !found || s.expired(it) || it.id != id {
		return 0, 0, false
	}
	return 2, 3, true
}

// ReplayPauses implements kvstore.BatchReplayer: eviction stalls only
// fire under a memory limit with residency growth, which a fixed-dataset
// replay never causes.
func (s *Store) ReplayPauses() kvstore.PauseModel { return kvstore.PauseModel{} }

// SyncReplayAccum implements kvstore.BatchReplayer; the slab store has
// no steady-state pause accumulator to restore.
func (s *Store) SyncReplayAccum(int64) {}

var _ kvstore.BatchReplayer = (*Store)(nil)
