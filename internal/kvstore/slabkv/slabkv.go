// Package slabkv implements the Memcached-like engine: a slab allocator
// with geometric size classes, a per-class LRU for eviction, and an item
// index. Memcached's defining performance property for this study is that
// its worker threads keep many memory operations in flight, so most of a
// request's memory stall time is overlapped with other requests — the
// engine's profile models that as a high memory-level parallelism,
// producing the "barely influenced by SlowMem" behaviour of Fig 8b/9.
package slabkv

import (
	"fmt"

	"mnemo/internal/kvstore"
)

// Profile is the calibrated engine profile (DESIGN.md §5): low CPU cost
// per byte (memcached's zero-parse binary item path) and MLP ≈ 10 from
// the worker-thread pool, so even a SlowMem-only deployment stays within
// ~8% of FastMem-only throughput.
var Profile = kvstore.EngineProfile{
	Name:               "memcachedlike",
	CPUBaseNs:          5_000,
	CPUPerByteNs:       0.55,
	MLP:                10,
	WritePenalty:       0.3,
	ReadAmplification:  1,
	WriteAmplification: 1,
}

// Slab class layout: classes grow geometrically from MinChunk by Factor
// until MaxChunk, matching memcached's default -f 1.25 growth.
const (
	MinChunk      = 96
	Factor        = 1.25
	MaxChunk      = 1 << 20 // memcached -I 1m
	itemOverheadB = 56      // item header + key pointer + CAS
)

type item struct {
	key        string
	id         uint64
	val        kvstore.Value
	class      int
	expireAt   int64 // logical op count at which the item lapses; 0 = never
	prev, next *item // LRU list links within the class
}

type slabClass struct {
	chunkSize int
	head      *item // most recently used
	tail      *item // least recently used
	items     int
}

func (c *slabClass) pushFront(it *item) {
	it.prev = nil
	it.next = c.head
	if c.head != nil {
		c.head.prev = it
	}
	c.head = it
	if c.tail == nil {
		c.tail = it
	}
	c.items++
}

func (c *slabClass) remove(it *item) {
	if it.prev != nil {
		it.prev.next = it.next
	} else {
		c.head = it.next
	}
	if it.next != nil {
		it.next.prev = it.prev
	} else {
		c.tail = it.prev
	}
	it.prev, it.next = nil, nil
	c.items--
}

func (c *slabClass) bump(it *item) {
	if c.head == it {
		return
	}
	c.remove(it)
	c.pushFront(it)
}

// Store is the Memcached-like engine. Not safe for concurrent use.
type Store struct {
	classes     []slabClass
	index       map[string]*item
	memLimit    int64 // total chunk bytes allowed; 0 = unlimited
	chunkUsed   int64
	dataBytes   int64
	pauseNs     float64
	evictions   int64
	ops         int64 // logical operation clock for TTLs
	expirations int64
}

// New creates a store with the given memory limit in bytes (0 =
// unlimited). The limit counts chunk bytes, as memcached's -m does.
func New(memLimit int64) *Store {
	if memLimit < 0 {
		panic("slabkv: negative memory limit")
	}
	s := &Store{index: make(map[string]*item), memLimit: memLimit}
	for size := MinChunk; ; size = int(float64(size) * Factor) {
		if size > MaxChunk {
			break
		}
		s.classes = append(s.classes, slabClass{chunkSize: size})
	}
	// Final class at exactly MaxChunk so max-size items fit.
	if s.classes[len(s.classes)-1].chunkSize != MaxChunk {
		s.classes = append(s.classes, slabClass{chunkSize: MaxChunk})
	}
	return s
}

// classFor returns the smallest class whose chunk fits need bytes.
func (s *Store) classFor(need int) (int, error) {
	for i := range s.classes {
		if s.classes[i].chunkSize >= need {
			return i, nil
		}
	}
	return 0, fmt.Errorf("slabkv: item of %d bytes exceeds max chunk %d", need, MaxChunk)
}

// Name implements kvstore.Store.
func (s *Store) Name() string { return Profile.Name }

// Profile implements kvstore.Store.
func (s *Store) Profile() kvstore.EngineProfile { return Profile }

// Len implements kvstore.Store.
func (s *Store) Len() int { return len(s.index) }

// DataBytes implements kvstore.Store.
func (s *Store) DataBytes() int64 { return s.dataBytes }

// ChunkBytes reports allocator bytes in use (≥ DataBytes: slab padding).
func (s *Store) ChunkBytes() int64 { return s.chunkUsed }

// Evictions reports how many items were evicted to make room.
func (s *Store) Evictions() int64 { return s.evictions }

// TakePauseNs implements kvstore.Store.
func (s *Store) TakePauseNs() float64 {
	p := s.pauseNs
	s.pauseNs = 0
	return p
}

// Get implements kvstore.Store.
func (s *Store) Get(key string) (kvstore.Value, kvstore.OpTrace) {
	return s.GetID(key, kvstore.KeyID(key))
}

// GetID implements kvstore.Store: Get with a precomputed KeyID.
func (s *Store) GetID(key string, id uint64) (kvstore.Value, kvstore.OpTrace) {
	s.opTick()
	// Index probe + item header: memcached's hash walk is O(1) with its
	// power-of-two table; two dependent loads model it.
	tr := kvstore.OpTrace{Kind: kvstore.Read, RecordID: id, Chases: 2}
	it, ok := s.index[key]
	if !ok {
		return kvstore.Value{}, tr
	}
	if s.expired(it) {
		s.reap(it)
		return kvstore.Value{}, tr
	}
	s.classes[it.class].bump(it)
	tr.Found = true
	tr.Touched = kvstore.Amplify(it.val.Size, Profile.ReadAmplification)
	return it.val, tr
}

// Put implements kvstore.Store.
func (s *Store) Put(key string, v kvstore.Value) kvstore.OpTrace {
	return s.PutID(key, kvstore.KeyID(key), v)
}

// PutID implements kvstore.Store: Put with a precomputed KeyID.
func (s *Store) PutID(key string, id uint64, v kvstore.Value) kvstore.OpTrace {
	if err := v.Validate(); err != nil {
		panic(err)
	}
	s.opTick()
	tr := kvstore.OpTrace{Kind: kvstore.Write, RecordID: id, Chases: 3,
		Touched: kvstore.Amplify(v.Size, Profile.WriteAmplification)}
	need := len(key) + v.Size + itemOverheadB
	cls, err := s.classFor(need)
	if err != nil {
		// Oversized item: memcached rejects it (SERVER_ERROR object too
		// large); we mirror that by reporting not-stored.
		tr.Found = false
		return tr
	}
	if it, ok := s.index[key]; ok {
		tr.Found = true
		oldChunk := int64(s.classes[it.class].chunkSize)
		if it.class == cls {
			s.dataBytes += int64(v.Size) - int64(it.val.Size)
			it.val = v
			it.expireAt = 0 // a plain set resets any TTL, as memcached does
			s.classes[cls].bump(it)
			return tr
		}
		// Class change: free old chunk, allocate anew below.
		s.classes[it.class].remove(it)
		delete(s.index, key)
		s.chunkUsed -= oldChunk
		s.dataBytes -= int64(it.val.Size)
	}
	chunk := int64(s.classes[cls].chunkSize)
	for s.memLimit > 0 && s.chunkUsed+chunk > s.memLimit {
		if !s.evictFrom(cls) {
			break // nothing evictable in class; store anyway (grow)
		}
	}
	it := &item{key: key, id: id, val: v, class: cls}
	s.classes[cls].pushFront(it)
	s.index[key] = it
	s.chunkUsed += chunk
	s.dataBytes += int64(v.Size)
	return tr
}

// evictFrom drops the LRU item of the class (memcached evicts within the
// class it needs a chunk from). Returns false when the class is empty.
func (s *Store) evictFrom(cls int) bool {
	victim := s.classes[cls].tail
	if victim == nil {
		return false
	}
	s.classes[cls].remove(victim)
	delete(s.index, victim.key)
	s.chunkUsed -= int64(s.classes[cls].chunkSize)
	s.dataBytes -= int64(victim.val.Size)
	s.evictions++
	s.pauseNs += 2_000 // lock hold while unlinking + freeing
	return true
}

// Del implements kvstore.Store.
func (s *Store) Del(key string) kvstore.OpTrace {
	return s.DelID(key, kvstore.KeyID(key))
}

// DelID implements kvstore.Store: Del with a precomputed KeyID.
func (s *Store) DelID(key string, id uint64) kvstore.OpTrace {
	s.opTick()
	tr := kvstore.OpTrace{Kind: kvstore.Delete, RecordID: id, Chases: 2}
	it, ok := s.index[key]
	if !ok {
		return tr
	}
	if s.expired(it) {
		s.reap(it)
		return tr
	}
	s.classes[it.class].remove(it)
	delete(s.index, key)
	s.chunkUsed -= int64(s.classes[it.class].chunkSize)
	s.dataBytes -= int64(it.val.Size)
	tr.Found = true
	return tr
}

var _ kvstore.Store = (*Store)(nil)
