package slabkv

import (
	"fmt"
	"testing"

	"mnemo/internal/kvstore"
)

func TestTTLExpiresAfterOps(t *testing.T) {
	s := New(0)
	s.PutTTL("k", kvstore.Sized(100), 3)
	if _, tr := s.Get("k"); !tr.Found {
		t.Fatal("fresh TTL key missing")
	}
	// Burn the remaining TTL with unrelated operations.
	s.Get("other")
	s.Get("other")
	if _, tr := s.Get("k"); tr.Found {
		t.Fatal("key outlived its TTL")
	}
	if s.Expirations() != 1 {
		t.Fatalf("expirations = %d", s.Expirations())
	}
	if s.Len() != 0 || s.DataBytes() != 0 {
		t.Fatalf("expired residue: len=%d bytes=%d", s.Len(), s.DataBytes())
	}
}

func TestTTLZeroNeverExpires(t *testing.T) {
	s := New(0)
	s.PutTTL("k", kvstore.Sized(10), 0)
	for i := 0; i < 1000; i++ {
		s.Get("noise")
	}
	if _, tr := s.Get("k"); !tr.Found {
		t.Fatal("immortal key expired")
	}
}

func TestTTLRemaining(t *testing.T) {
	s := New(0)
	s.PutTTL("k", kvstore.Sized(10), 10)
	rem, ok := s.TTLRemaining("k")
	if !ok || rem != 10 {
		t.Fatalf("remaining = %d, %v", rem, ok)
	}
	s.Get("x")
	s.Get("x")
	if rem, _ := s.TTLRemaining("k"); rem != 8 {
		t.Fatalf("remaining after 2 ops = %d", rem)
	}
	s.Put("plain", kvstore.Sized(1))
	if rem, ok := s.TTLRemaining("plain"); !ok || rem != 0 {
		t.Fatal("immortal key should report (0, true)")
	}
	if _, ok := s.TTLRemaining("missing"); ok {
		t.Fatal("missing key reported live")
	}
}

func TestPlainSetResetsTTL(t *testing.T) {
	s := New(0)
	s.PutTTL("k", kvstore.Sized(10), 2)
	s.Put("k", kvstore.Sized(10)) // memcached: set overwrites TTL
	for i := 0; i < 10; i++ {
		s.Get("noise")
	}
	if _, tr := s.Get("k"); !tr.Found {
		t.Fatal("TTL survived a plain set")
	}
}

func TestExpiredKeyDeleteReportsMissing(t *testing.T) {
	s := New(0)
	s.PutTTL("k", kvstore.Sized(10), 1)
	s.Get("noise")
	if tr := s.Del("k"); tr.Found {
		t.Fatal("delete found an expired key")
	}
	if s.Len() != 0 {
		t.Fatal("expired key still resident after delete")
	}
}

func TestNegativeTTLPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0).PutTTL("k", kvstore.Sized(1), -1)
}

func TestFlushAll(t *testing.T) {
	s := New(0)
	for i := 0; i < 50; i++ {
		s.Put(fmt.Sprintf("k%d", i), kvstore.Sized(100))
	}
	s.TakePauseNs()
	s.FlushAll()
	if s.Len() != 0 || s.DataBytes() != 0 || s.ChunkBytes() != 0 {
		t.Fatalf("flush residue: len=%d data=%d chunk=%d", s.Len(), s.DataBytes(), s.ChunkBytes())
	}
	if s.TakePauseNs() == 0 {
		t.Error("flush produced no pause")
	}
	// Store remains usable.
	s.Put("again", kvstore.Sized(10))
	if _, tr := s.Get("again"); !tr.Found {
		t.Fatal("store broken after flush")
	}
}

func TestTTLWithEvictionPressure(t *testing.T) {
	s := New(6 * 1200)
	for i := 0; i < 30; i++ {
		s.PutTTL(fmt.Sprintf("k%02d", i), kvstore.Sized(1000), 10)
	}
	// Both evictions and (possibly) expirations occurred; counters are
	// consistent and memory bounded.
	if s.Evictions() == 0 {
		t.Error("no evictions under pressure")
	}
	if s.ChunkBytes() > 6*1200 {
		t.Fatalf("chunk bytes %d exceed limit", s.ChunkBytes())
	}
}
