package slabkv

import (
	"fmt"
	"testing"

	"mnemo/internal/kvstore"
)

func TestReplayReadyAndQuiesce(t *testing.T) {
	s := New(0)
	for i := 0; i < 50; i++ {
		s.Put(fmt.Sprintf("key%02d", i), kvstore.Sized(100))
	}
	s.Quiesce() // no deferred work; must be a no-op
	if !s.ReplayReady() {
		t.Fatal("plain slab store not ReplayReady")
	}
	if s.Len() != 50 {
		t.Fatalf("Quiesce changed residency: len=%d", s.Len())
	}
	s.PutTTL("volatile", kvstore.Sized(10), 100)
	if s.ReplayReady() {
		t.Error("store with TTL-bearing item reported ReplayReady")
	}
}

// TestStaticTraceMatchesLiveOps pins the constant slab trace: Get costs
// two dependent loads, Put three, exactly what the live path reports.
func TestStaticTraceMatchesLiveOps(t *testing.T) {
	s := New(0)
	keys := make([]string, 20)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%02d", i)
		s.Put(keys[i], kvstore.Sized(100))
	}
	for _, k := range keys {
		id := kvstore.KeyID(k)
		getChases, putChases, ok := s.StaticTrace(k, id)
		if !ok {
			t.Fatalf("StaticTrace(%q) not ok on resident key", k)
		}
		if _, tr := s.GetID(k, id); tr.Chases != getChases {
			t.Fatalf("key %q: live Get chases %d, static %d", k, tr.Chases, getChases)
		}
		if tr := s.PutID(k, id, kvstore.Sized(100)); tr.Chases != putChases {
			t.Fatalf("key %q: live Put chases %d, static %d", k, tr.Chases, putChases)
		}
	}
}

func TestStaticTraceRejectsMissingMismatchedExpired(t *testing.T) {
	s := New(0)
	s.Put("here", kvstore.Sized(10))
	if _, _, ok := s.StaticTrace("gone", kvstore.KeyID("gone")); ok {
		t.Error("StaticTrace ok on missing key")
	}
	if _, _, ok := s.StaticTrace("here", 12345); ok {
		t.Error("StaticTrace ok on mismatched record ID")
	}
	s.PutTTL("brief", kvstore.Sized(10), 1)
	s.Get("other") // burn the TTL
	if _, _, ok := s.StaticTrace("brief", kvstore.KeyID("brief")); ok {
		t.Error("StaticTrace ok on expired key")
	}
}

func TestReplayPausesIsZero(t *testing.T) {
	s := New(0)
	s.Put("k", kvstore.Sized(10))
	if pm := s.ReplayPauses(); pm != (kvstore.PauseModel{}) {
		t.Errorf("slabkv PauseModel = %+v, want zero", pm)
	}
}
