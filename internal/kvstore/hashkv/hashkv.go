// Package hashkv implements the Redis-like engine: a chained hash table
// ("dict") with two tables and incremental rehashing, served by a single
// request lane, exactly the structure Redis uses for its main keyspace.
//
// The engine reproduces the request-path properties that matter to the
// paper's measurements: every operation walks the bucket chain (pointer
// chases against the tier holding the data), touches the value bytes once
// (Redis copies the value into the client output buffer), and table
// growth causes brief service hiccups (the allocation stall of the new
// bucket array plus the per-operation migration step), which show up in
// the tail latencies of Fig 8d/8e but not in the averages.
package hashkv

import (
	"mnemo/internal/kvstore"
)

// Profile is the calibrated engine profile (see DESIGN.md §5). With
// ≈100 KB thumbnails this yields ≈117 µs/op on FastMem and ≈166 µs/op on
// SlowMem — the ≈1.4× spread of the paper's Fig 5a — and ≈9 µs/op for
// 1 KB captions, in line with real Redis throughput over loopback.
var Profile = kvstore.EngineProfile{
	Name:               "redislike",
	CPUBaseNs:          8_000, // command parse, event loop, reply header
	CPUPerByteNs:       1.0,   // value copy through output buffer + TCP stack
	MLP:                1,     // single-threaded server: no overlap
	WritePenalty:       0.3,   // writes land in store buffers, rarely stall
	ReadAmplification:  1,
	WriteAmplification: 1,
}

type entry struct {
	key      string
	id       uint64
	val      kvstore.Value
	expireAt int64 // logical op count at which the key lapses; 0 = never
	next     *entry
}

type table struct {
	buckets []*entry
	used    int
}

func newTable(size int) *table { return &table{buckets: make([]*entry, size)} }

func (t *table) mask() uint64 { return uint64(len(t.buckets) - 1) }

// Store is the Redis-like engine. Not safe for concurrent use.
type Store struct {
	ht           [2]*table
	rehashIdx    int // -1 when not rehashing; else next bucket of ht[0] to migrate
	dataBytes    int64
	pauseNs      float64
	ops          int64 // logical operation clock for TTLs
	expirations  int64
	volatileKeys map[string]struct{} // keys carrying a TTL (Redis "expires" dict)
}

const initialTableSize = 16

// New creates an empty store.
func New() *Store {
	return &Store{
		ht:           [2]*table{newTable(initialTableSize), nil},
		rehashIdx:    -1,
		volatileKeys: make(map[string]struct{}),
	}
}

// Name implements kvstore.Store.
func (s *Store) Name() string { return Profile.Name }

// Profile implements kvstore.Store.
func (s *Store) Profile() kvstore.EngineProfile { return Profile }

// Len implements kvstore.Store.
func (s *Store) Len() int {
	n := s.ht[0].used
	if s.ht[1] != nil {
		n += s.ht[1].used
	}
	return n
}

// DataBytes implements kvstore.Store.
func (s *Store) DataBytes() int64 { return s.dataBytes }

// TakePauseNs implements kvstore.Store.
func (s *Store) TakePauseNs() float64 {
	p := s.pauseNs
	s.pauseNs = 0
	return p
}

// rehashing reports whether incremental rehash is in progress.
func (s *Store) rehashing() bool { return s.rehashIdx >= 0 }

// startRehash begins migration into a table of the given size.
func (s *Store) startRehash(size int) {
	s.ht[1] = newTable(size)
	s.rehashIdx = 0
	// Allocating and zeroing the new bucket array stalls the event loop
	// briefly — ~10 ns per bucket pointer is a conservative page-touch
	// cost. This is the rehash hiccup visible in Redis tail latencies.
	s.pauseNs += float64(size) * 10
}

// rehashStep migrates one non-empty bucket from ht[0] to ht[1], the same
// amortization Redis performs on every dict operation.
func (s *Store) rehashStep() {
	if !s.rehashing() {
		return
	}
	t0, t1 := s.ht[0], s.ht[1]
	// Skip up to a bounded run of empty buckets per step (Redis uses 10×n).
	emptyVisits := 0
	for s.rehashIdx < len(t0.buckets) && t0.buckets[s.rehashIdx] == nil {
		s.rehashIdx++
		emptyVisits++
		if emptyVisits > 10 {
			return
		}
	}
	if s.rehashIdx >= len(t0.buckets) {
		s.finishRehash()
		return
	}
	for e := t0.buckets[s.rehashIdx]; e != nil; {
		next := e.next
		idx := e.id & t1.mask()
		e.next = t1.buckets[idx]
		t1.buckets[idx] = e
		t0.used--
		t1.used++
		e = next
	}
	t0.buckets[s.rehashIdx] = nil
	s.rehashIdx++
	if t0.used == 0 {
		s.finishRehash()
	}
}

func (s *Store) finishRehash() {
	s.ht[0] = s.ht[1]
	s.ht[1] = nil
	s.rehashIdx = -1
}

// maybeExpand starts a rehash when the load factor reaches 1.
func (s *Store) maybeExpand() {
	if s.rehashing() {
		return
	}
	if s.ht[0].used >= len(s.ht[0].buckets) {
		size := len(s.ht[0].buckets) * 2
		for size < s.ht[0].used*2 {
			size *= 2
		}
		s.startRehash(size)
	}
}

// find locates the entry and reports the pointer chases spent walking.
func (s *Store) find(key string, id uint64) (*entry, int) {
	chases := 0
	for ti := 0; ti < 2; ti++ {
		t := s.ht[ti]
		if t == nil {
			break
		}
		chases++ // bucket head load
		for e := t.buckets[id&t.mask()]; e != nil; e = e.next {
			chases++
			if e.id == id && e.key == key {
				return e, chases
			}
		}
		if !s.rehashing() {
			break
		}
	}
	return nil, chases
}

// Get implements kvstore.Store.
func (s *Store) Get(key string) (kvstore.Value, kvstore.OpTrace) {
	return s.GetID(key, kvstore.KeyID(key))
}

// GetID implements kvstore.Store: Get with a precomputed KeyID.
func (s *Store) GetID(key string, id uint64) (kvstore.Value, kvstore.OpTrace) {
	s.opTick()
	s.rehashStep()
	e, chases := s.find(key, id)
	tr := kvstore.OpTrace{Kind: kvstore.Read, RecordID: id, Chases: chases}
	if s.reapIfLapsed(e) {
		e = nil
	}
	if e == nil {
		return kvstore.Value{}, tr
	}
	tr.Found = true
	tr.Chases++ // dereference the value object
	tr.Touched = kvstore.Amplify(e.val.Size, Profile.ReadAmplification)
	return e.val, tr
}

// Put implements kvstore.Store.
func (s *Store) Put(key string, v kvstore.Value) kvstore.OpTrace {
	return s.PutID(key, kvstore.KeyID(key), v)
}

// PutID implements kvstore.Store: Put with a precomputed KeyID.
func (s *Store) PutID(key string, id uint64, v kvstore.Value) kvstore.OpTrace {
	if err := v.Validate(); err != nil {
		panic(err)
	}
	s.opTick()
	s.rehashStep()
	s.maybeExpand()
	e, chases := s.find(key, id)
	tr := kvstore.OpTrace{Kind: kvstore.Write, RecordID: id, Chases: chases + 1,
		Touched: kvstore.Amplify(v.Size, Profile.WriteAmplification)}
	if s.reapIfLapsed(e) {
		e = nil
	}
	if e != nil {
		s.dataBytes += int64(v.Size) - int64(e.val.Size)
		e.val = v
		if e.expireAt != 0 {
			// A plain SET clears any TTL, as Redis does.
			e.expireAt = 0
			delete(s.volatileKeys, e.key)
		}
		tr.Found = true
		return tr
	}
	// Insert into the rehash-target table (ht[1] if rehashing).
	t := s.ht[0]
	if s.rehashing() {
		t = s.ht[1]
	}
	idx := id & t.mask()
	t.buckets[idx] = &entry{key: key, id: id, val: v, next: t.buckets[idx]}
	t.used++
	s.dataBytes += int64(v.Size)
	return tr
}

// Del implements kvstore.Store.
func (s *Store) Del(key string) kvstore.OpTrace {
	return s.DelID(key, kvstore.KeyID(key))
}

// DelID implements kvstore.Store: Del with a precomputed KeyID.
func (s *Store) DelID(key string, id uint64) kvstore.OpTrace {
	s.opTick()
	s.rehashStep()
	e, chases := s.find(key, id)
	tr := kvstore.OpTrace{Kind: kvstore.Delete, RecordID: id, Chases: chases}
	if e == nil {
		return tr
	}
	if s.reapIfLapsed(e) {
		return tr // lapsed before the delete: DEL reports 0, as Redis does
	}
	s.removeEntry(key, id)
	delete(s.volatileKeys, key)
	tr.Found = true
	return tr
}

var _ kvstore.Store = (*Store)(nil)
