package hashkv

import "mnemo/internal/kvstore"

// Batched-replay capability (kvstore.BatchReplayer, DESIGN.md §12).
//
// The dict's only dynamic steady-state behaviour is incremental rehash:
// while a rehash is in flight, find walks both tables and every
// operation migrates a bucket, so chase counts drift from op to op.
// Quiesce drains the rehash (and any follow-up expansion it uncovers),
// after which a trace depends only on the resident chain layout — reads
// and overwrites of resident keys never restructure the table.

// Quiesce implements kvstore.BatchReplayer: it drains any in-flight
// incremental rehash and keeps expanding until the load factor is below
// 1, so no later Put can trigger a rehash. The allocation stalls of the
// expansions accrue in pauseNs exactly as organic rehashes would.
func (s *Store) Quiesce() {
	for {
		for s.rehashing() {
			s.rehashStep()
		}
		if s.ht[0].used < len(s.ht[0].buckets) {
			return
		}
		s.maybeExpand()
	}
}

// ReplayReady implements kvstore.BatchReplayer. Volatile (TTL-bearing)
// keys disqualify the store: lazy and active expiration mutate the
// table mid-replay.
func (s *Store) ReplayReady() bool {
	return !s.rehashing() &&
		len(s.volatileKeys) == 0 &&
		s.ht[0].used < len(s.ht[0].buckets)
}

// StaticTrace implements kvstore.BatchReplayer. For a resident key both
// Get and Put pay the find walk plus one extra dereference (the value
// object for reads, the stored entry for writes).
func (s *Store) StaticTrace(key string, id uint64) (getChases, putChases int, ok bool) {
	e, chases := s.find(key, id)
	if e == nil || s.lapsed(e) {
		return 0, 0, false
	}
	return chases + 1, chases + 1, true
}

// ReplayPauses implements kvstore.BatchReplayer: the quiesced dict has
// no steady-state stall source (rehash hiccups only fire on growth).
func (s *Store) ReplayPauses() kvstore.PauseModel { return kvstore.PauseModel{} }

// SyncReplayAccum implements kvstore.BatchReplayer; the dict has no
// steady-state pause accumulator to restore.
func (s *Store) SyncReplayAccum(int64) {}

var _ kvstore.BatchReplayer = (*Store)(nil)
