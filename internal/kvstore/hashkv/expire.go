package hashkv

import "mnemo/internal/kvstore"

// Redis-style key expiration. TTLs are expressed in logical operations
// (the stores live on the deployment's virtual clock, not wall time):
// EXPIRE key n lapses after n further operations. Expired keys are
// reclaimed two ways, as in Redis:
//
//   - lazily, when an operation touches the key;
//   - actively, by an expiration cycle that samples a few volatile keys
//     per operation and deletes the lapsed ones (Redis runs this from
//     serverCron; amortizing it per operation keeps the store
//     single-threaded and deterministic).

// activeSamplesPerOp is how many volatile keys the active cycle checks
// per operation (Redis checks 20 per 100 ms cycle; per-op amortization
// uses a smaller constant).
const activeSamplesPerOp = 2

// opTick advances logical time and runs one active-expiration step.
func (s *Store) opTick() {
	s.ops++
	s.activeExpireStep()
}

// Expire sets the key's TTL to ttlOps operations from now, returning
// false if the key does not exist. ttlOps must be positive (Redis's
// EXPIRE with non-positive TTL deletes the key; callers wanting that
// should Del explicitly).
func (s *Store) Expire(key string, ttlOps int64) bool {
	if ttlOps <= 0 {
		panic("hashkv: Expire needs a positive TTL")
	}
	e, _ := s.find(key, kvstore.KeyID(key))
	if e == nil || s.lapsed(e) {
		return false
	}
	e.expireAt = s.ops + ttlOps
	s.volatileKeys[e.key] = struct{}{}
	return true
}

// Persist clears the key's TTL (Redis PERSIST), returning whether a TTL
// was removed.
func (s *Store) Persist(key string) bool {
	e, _ := s.find(key, kvstore.KeyID(key))
	if e == nil || e.expireAt == 0 || s.lapsed(e) {
		return false
	}
	e.expireAt = 0
	delete(s.volatileKeys, e.key)
	return true
}

// TTLRemaining reports the operations left before expiry: (n, true) for a
// volatile live key, (0, true) for a live key without TTL, (0, false)
// when missing or lapsed.
func (s *Store) TTLRemaining(key string) (int64, bool) {
	e, _ := s.find(key, kvstore.KeyID(key))
	if e == nil || s.lapsed(e) {
		return 0, false
	}
	if e.expireAt == 0 {
		return 0, true
	}
	return e.expireAt - s.ops, true
}

// Expirations reports how many keys have lapsed and been reclaimed.
func (s *Store) Expirations() int64 { return s.expirations }

// lapsed reports whether the entry's TTL has passed.
func (s *Store) lapsed(e *entry) bool {
	return e.expireAt > 0 && s.ops >= e.expireAt
}

// reapIfLapsed deletes the entry if expired, returning true if reaped.
// The caller must pass the entry's key.
func (s *Store) reapIfLapsed(e *entry) bool {
	if e == nil || !s.lapsed(e) {
		return false
	}
	s.removeEntry(e.key, e.id)
	delete(s.volatileKeys, e.key)
	s.expirations++
	return true
}

// activeExpireStep samples a few volatile keys and reaps the lapsed ones.
// Map iteration order provides the sampling randomness, as Redis's
// random-key sampling does.
func (s *Store) activeExpireStep() {
	if len(s.volatileKeys) == 0 {
		return
	}
	checked := 0
	for key := range s.volatileKeys {
		if checked >= activeSamplesPerOp {
			break
		}
		checked++
		e, _ := s.find(key, kvstore.KeyID(key))
		if e == nil {
			delete(s.volatileKeys, key) // key was deleted via Del
			continue
		}
		s.reapIfLapsed(e)
	}
}

// removeEntry unlinks a key from whichever table holds it, updating the
// byte accounting. It is the shared core of Del and expiration.
func (s *Store) removeEntry(key string, id uint64) bool {
	for ti := 0; ti < 2; ti++ {
		t := s.ht[ti]
		if t == nil {
			break
		}
		idx := id & t.mask()
		var prev *entry
		for e := t.buckets[idx]; e != nil; e = e.next {
			if e.id == id && e.key == key {
				if prev == nil {
					t.buckets[idx] = e.next
				} else {
					prev.next = e.next
				}
				t.used--
				s.dataBytes -= int64(e.val.Size)
				return true
			}
			prev = e
		}
		if !s.rehashing() {
			break
		}
	}
	return false
}
