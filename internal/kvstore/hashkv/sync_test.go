package hashkv

import (
	"testing"

	"mnemo/internal/kvstore"
)

// TestSyncReplayAccumNoop pins the pause-sync side of the streamed
// handshake for the pauseless engine: hash servers report an empty
// pause model and accept (and ignore) accumulator syncs.
func TestSyncReplayAccumNoop(t *testing.T) {
	s := New()
	populate(s, 50)
	s.TakePauseNs() // drain rehash pauses from the load
	if pm := s.ReplayPauses(); pm != (kvstore.PauseModel{}) {
		t.Fatalf("pauseless store reports pause model %+v", pm)
	}
	s.SyncReplayAccum(1 << 20)
	if pm := s.ReplayPauses(); pm != (kvstore.PauseModel{}) {
		t.Fatalf("SyncReplayAccum changed the pause model: %+v", pm)
	}
	if ns := s.TakePauseNs(); ns != 0 {
		t.Fatalf("pauseless store emitted a pause of %v ns", ns)
	}
}
