package hashkv

import (
	"fmt"
	"testing"

	"mnemo/internal/kvstore"
)

// populate inserts n fixed-size records and returns their keys.
func populate(s *Store, n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%04d", i)
		s.Put(keys[i], kvstore.Sized(64))
	}
	return keys
}

func TestQuiesceDrainsRehash(t *testing.T) {
	s := New()
	keys := populate(s, 500) // well past the initial table, rehash in flight

	s.Quiesce()
	if s.rehashing() {
		t.Fatal("Quiesce left a rehash in flight")
	}
	if !s.ReplayReady() {
		t.Fatal("quiesced store not ReplayReady")
	}
	// Load factor is below 1, so no future Put of a resident key expands.
	if s.ht[0].used >= len(s.ht[0].buckets) {
		t.Fatalf("load factor ≥ 1 after Quiesce: %d/%d", s.ht[0].used, len(s.ht[0].buckets))
	}
	for _, k := range keys {
		if _, tr := s.Get(k); !tr.Found {
			t.Fatalf("key %q lost across Quiesce", k)
		}
	}
}

// TestStaticTraceMatchesLiveOps is the batched-replay contract: on a
// quiesced store, StaticTrace must predict the exact Chases a live
// GetID and PutID report, and those must be stable across repetition.
func TestStaticTraceMatchesLiveOps(t *testing.T) {
	s := New()
	keys := populate(s, 300)
	s.Quiesce()
	s.TakePauseNs() // drain quiesce stalls, as Load does

	for _, k := range keys {
		id := kvstore.KeyID(k)
		getChases, putChases, ok := s.StaticTrace(k, id)
		if !ok {
			t.Fatalf("StaticTrace(%q) not ok on resident key", k)
		}
		for rep := 0; rep < 2; rep++ {
			if _, tr := s.GetID(k, id); tr.Chases != getChases {
				t.Fatalf("key %q rep %d: live Get chases %d, static %d", k, rep, tr.Chases, getChases)
			}
			if tr := s.PutID(k, id, kvstore.Sized(64)); tr.Chases != putChases {
				t.Fatalf("key %q rep %d: live Put chases %d, static %d", k, rep, tr.Chases, putChases)
			}
		}
	}
}

func TestStaticTraceRejectsMissingAndMismatched(t *testing.T) {
	s := New()
	s.Put("here", kvstore.Sized(10))
	s.Quiesce()
	if _, _, ok := s.StaticTrace("gone", kvstore.KeyID("gone")); ok {
		t.Error("StaticTrace ok on missing key")
	}
	if _, _, ok := s.StaticTrace("here", 12345); ok {
		t.Error("StaticTrace ok on mismatched record ID")
	}
}

func TestReplayReadyRejectsVolatileKeys(t *testing.T) {
	s := New()
	s.Put("k", kvstore.Sized(10))
	s.Quiesce()
	if !s.ReplayReady() {
		t.Fatal("plain store not ReplayReady")
	}
	s.Expire("k", 100)
	if s.ReplayReady() {
		t.Error("store with TTL-bearing key reported ReplayReady")
	}
}

func TestReplayPausesIsZero(t *testing.T) {
	s := New()
	populate(s, 100)
	s.Quiesce()
	if pm := s.ReplayPauses(); pm != (kvstore.PauseModel{}) {
		t.Errorf("hashkv PauseModel = %+v, want zero", pm)
	}
}
