package hashkv

import (
	"fmt"
	"testing"

	"mnemo/internal/kvstore"
)

func TestExpireLazyReap(t *testing.T) {
	s := New()
	s.Put("k", kvstore.Sized(100))
	if !s.Expire("k", 2) {
		t.Fatal("Expire on live key failed")
	}
	if _, tr := s.Get("k"); !tr.Found {
		t.Fatal("key gone before TTL")
	}
	s.Put("noise", kvstore.Sized(1)) // burns the last op of the TTL
	if _, tr := s.Get("k"); tr.Found {
		t.Fatal("key outlived TTL")
	}
	if s.Expirations() == 0 {
		t.Fatal("expiration not counted")
	}
	if s.DataBytes() != 1 { // only the noise key remains
		t.Fatalf("DataBytes = %d", s.DataBytes())
	}
}

func TestExpireActiveCycleReapsUntouchedKeys(t *testing.T) {
	s := New()
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("v%02d", i)
		s.Put(key, kvstore.Sized(10))
		s.Expire(key, 5)
	}
	// Never touch the volatile keys again; unrelated traffic must still
	// reclaim them through the active cycle.
	for i := 0; i < 500; i++ {
		s.Get("unrelated")
	}
	if s.Len() != 0 {
		t.Fatalf("%d volatile keys survived the active cycle", s.Len())
	}
	if s.Expirations() != 20 {
		t.Fatalf("expirations = %d, want 20", s.Expirations())
	}
}

func TestExpireOnMissingKey(t *testing.T) {
	s := New()
	if s.Expire("ghost", 5) {
		t.Fatal("Expire on missing key succeeded")
	}
}

func TestExpirePanicsOnNonPositiveTTL(t *testing.T) {
	s := New()
	s.Put("k", kvstore.Sized(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Expire("k", 0)
}

func TestPersist(t *testing.T) {
	s := New()
	s.Put("k", kvstore.Sized(1))
	s.Expire("k", 3)
	if !s.Persist("k") {
		t.Fatal("Persist failed on volatile key")
	}
	for i := 0; i < 100; i++ {
		s.Get("noise")
	}
	if _, tr := s.Get("k"); !tr.Found {
		t.Fatal("persisted key expired")
	}
	if s.Persist("k") {
		t.Fatal("Persist on immortal key reported a TTL")
	}
	if s.Persist("ghost") {
		t.Fatal("Persist on missing key succeeded")
	}
}

func TestTTLRemaining(t *testing.T) {
	s := New()
	s.Put("k", kvstore.Sized(1))
	s.Expire("k", 10)
	rem, ok := s.TTLRemaining("k")
	if !ok || rem != 10 {
		t.Fatalf("remaining = %d, %v", rem, ok)
	}
	s.Get("x")
	s.Get("x")
	if rem, _ := s.TTLRemaining("k"); rem != 8 {
		t.Fatalf("remaining after 2 ops = %d", rem)
	}
	s.Put("immortal", kvstore.Sized(1))
	if rem, ok := s.TTLRemaining("immortal"); !ok || rem != 0 {
		t.Fatal("immortal live key should report (0, true)")
	}
	if _, ok := s.TTLRemaining("ghost"); ok {
		t.Fatal("missing key reported live")
	}
}

func TestPlainSetClearsTTL(t *testing.T) {
	s := New()
	s.Put("k", kvstore.Sized(1))
	s.Expire("k", 2)
	s.Put("k", kvstore.Sized(1)) // SET clears TTL
	for i := 0; i < 50; i++ {
		s.Get("noise")
	}
	if _, tr := s.Get("k"); !tr.Found {
		t.Fatal("TTL survived a plain SET")
	}
}

func TestDelOnLapsedKeyReportsMissing(t *testing.T) {
	s := New()
	s.Put("k", kvstore.Sized(1))
	s.Expire("k", 1)
	s.Get("noise")
	s.Get("noise")
	if tr := s.Del("k"); tr.Found {
		t.Fatal("DEL found a lapsed key")
	}
}

func TestExpireSurvivesRehash(t *testing.T) {
	s := New()
	s.Put("target", kvstore.Sized(1))
	s.Expire("target", 5000)
	// Force table growth (rehash) with bulk inserts.
	for i := 0; i < 2000; i++ {
		s.Put(fmt.Sprintf("bulk%05d", i), kvstore.Sized(1))
	}
	rem, ok := s.TTLRemaining("target")
	if !ok || rem <= 0 {
		t.Fatalf("TTL lost across rehash: %d, %v", rem, ok)
	}
	if _, tr := s.Get("target"); !tr.Found {
		t.Fatal("volatile key lost across rehash")
	}
}
