package hashkv

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"mnemo/internal/kvstore"
)

func TestPutGetRoundTrip(t *testing.T) {
	s := New()
	tr := s.Put("k1", kvstore.Bytes([]byte("hello")))
	if tr.Found {
		t.Error("fresh insert reported Found")
	}
	v, tr := s.Get("k1")
	if !tr.Found || string(v.Data) != "hello" {
		t.Fatalf("Get = %+v / %+v", v, tr)
	}
	if tr.Kind != kvstore.Read {
		t.Error("Get trace kind wrong")
	}
	if tr.Touched != 5 {
		t.Errorf("Touched = %d, want 5", tr.Touched)
	}
	if tr.RecordID != kvstore.KeyID("k1") {
		t.Error("RecordID mismatch")
	}
}

func TestGetMissing(t *testing.T) {
	s := New()
	v, tr := s.Get("nope")
	if tr.Found || v.Size != 0 {
		t.Fatal("missing key reported found")
	}
	if tr.Touched != 0 {
		t.Error("missing key touched bytes")
	}
}

func TestPutReplaceAccounting(t *testing.T) {
	s := New()
	s.Put("k", kvstore.Sized(100))
	if s.DataBytes() != 100 {
		t.Fatalf("DataBytes = %d", s.DataBytes())
	}
	tr := s.Put("k", kvstore.Sized(250))
	if !tr.Found {
		t.Error("replace not reported")
	}
	if s.DataBytes() != 250 {
		t.Fatalf("DataBytes after replace = %d", s.DataBytes())
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestDelete(t *testing.T) {
	s := New()
	s.Put("a", kvstore.Sized(10))
	s.Put("b", kvstore.Sized(20))
	tr := s.Del("a")
	if !tr.Found {
		t.Fatal("delete existing not found")
	}
	if s.Len() != 1 || s.DataBytes() != 20 {
		t.Fatalf("after delete: len=%d bytes=%d", s.Len(), s.DataBytes())
	}
	if _, tr := s.Get("a"); tr.Found {
		t.Fatal("deleted key still found")
	}
	if tr := s.Del("a"); tr.Found {
		t.Fatal("double delete reported found")
	}
}

func TestGrowthTriggersRehashAndPause(t *testing.T) {
	s := New()
	var sawPause bool
	for i := 0; i < 1000; i++ {
		s.Put(fmt.Sprintf("key%06d", i), kvstore.Sized(8))
		if s.TakePauseNs() > 0 {
			sawPause = true
		}
	}
	if !sawPause {
		t.Error("growing to 1000 keys produced no rehash pause")
	}
	if s.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", s.Len())
	}
	// All keys still reachable mid/post rehash.
	for i := 0; i < 1000; i++ {
		if _, tr := s.Get(fmt.Sprintf("key%06d", i)); !tr.Found {
			t.Fatalf("key%06d lost during rehash", i)
		}
	}
}

func TestTakePauseDrains(t *testing.T) {
	s := New()
	for i := 0; i < 100; i++ {
		s.Put(fmt.Sprintf("k%d", i), kvstore.Sized(1))
	}
	s.TakePauseNs()
	if p := s.TakePauseNs(); p != 0 {
		t.Fatalf("second TakePauseNs = %v, want 0", p)
	}
}

func TestChasesGrowWithChainWalk(t *testing.T) {
	s := New()
	_, missTr := s.Get("absent")
	if missTr.Chases < 1 {
		t.Error("miss should still chase the bucket head")
	}
	s.Put("x", kvstore.Sized(10))
	_, hitTr := s.Get("x")
	if hitTr.Chases <= missTr.Chases {
		t.Errorf("hit chases %d should exceed empty-bucket miss %d (value deref)",
			hitTr.Chases, missTr.Chases)
	}
}

func TestProfileAndName(t *testing.T) {
	s := New()
	if s.Name() != "redislike" {
		t.Error("name wrong")
	}
	p := s.Profile()
	if p.MLP != 1 {
		t.Error("redis-like engine must be single-lane")
	}
	if p.WritePenalty >= 1 || p.WritePenalty <= 0 {
		t.Error("write penalty out of range")
	}
}

func TestPutInvalidValuePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().Put("k", kvstore.Value{Size: 2, Data: []byte("abc")})
}

// Property: the store agrees with a reference map under random ops.
func TestMatchesReferenceMapProperty(t *testing.T) {
	type op struct {
		Kind byte
		Key  uint8
		Size uint16
	}
	f := func(ops []op) bool {
		s := New()
		ref := map[string]int{}
		for _, o := range ops {
			key := fmt.Sprintf("k%d", o.Key)
			switch o.Kind % 3 {
			case 0:
				s.Put(key, kvstore.Sized(int(o.Size)))
				ref[key] = int(o.Size)
			case 1:
				v, tr := s.Get(key)
				want, ok := ref[key]
				if tr.Found != ok {
					return false
				}
				if ok && v.Size != want {
					return false
				}
			case 2:
				tr := s.Del(key)
				_, ok := ref[key]
				if tr.Found != ok {
					return false
				}
				delete(ref, key)
			}
			if s.Len() != len(ref) {
				return false
			}
		}
		var wantBytes int64
		for _, sz := range ref {
			wantBytes += int64(sz)
		}
		return s.DataBytes() == wantBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeRandomChurn(t *testing.T) {
	s := New()
	rng := rand.New(rand.NewSource(1))
	live := map[string]int{}
	for i := 0; i < 20000; i++ {
		key := fmt.Sprintf("key%d", rng.Intn(3000))
		switch rng.Intn(10) {
		case 0:
			s.Del(key)
			delete(live, key)
		default:
			sz := rng.Intn(4096)
			s.Put(key, kvstore.Sized(sz))
			live[key] = sz
		}
	}
	if s.Len() != len(live) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(live))
	}
	for k, sz := range live {
		v, tr := s.Get(k)
		if !tr.Found || v.Size != sz {
			t.Fatalf("key %s: found=%v size=%d want %d", k, tr.Found, v.Size, sz)
		}
	}
}
