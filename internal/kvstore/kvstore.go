// Package kvstore defines the in-memory key-value store abstraction the
// Mnemo reproduction profiles, plus shared types for reporting the memory
// behaviour of each operation.
//
// The paper treats Redis, Memcached and DynamoDB-local as black boxes and
// observes them only through request service times. This repository
// builds one engine per store (internal/kvstore/hashkv, slabkv, treekv)
// with genuinely different data structures and request paths; every
// operation returns an OpTrace describing the pointer chases and byte
// traffic it generated, which internal/server prices against the emulated
// hybrid memory machine. Value payloads may be carried in full (unit
// tests) or by size only (capacity-scale experiments, where 10 000 × 100 KB
// payloads would dominate host memory without changing any simulated
// quantity).
package kvstore

import (
	"fmt"
	"hash/fnv"
)

// Value is a stored payload. When Data is non-nil, Size must equal
// len(Data); size-only values (Data == nil) represent payloads of the
// given size without materializing the bytes.
type Value struct {
	Size int
	Data []byte
}

// Bytes returns a Value carrying real data.
func Bytes(data []byte) Value { return Value{Size: len(data), Data: data} }

// Sized returns a size-only Value.
func Sized(n int) Value {
	if n < 0 {
		panic(fmt.Sprintf("kvstore: negative value size %d", n))
	}
	return Value{Size: n}
}

// Validate checks the Size/Data consistency invariant.
func (v Value) Validate() error {
	if v.Data != nil && v.Size != len(v.Data) {
		return fmt.Errorf("kvstore: value size %d != len(data) %d", v.Size, len(v.Data))
	}
	if v.Size < 0 {
		return fmt.Errorf("kvstore: negative value size %d", v.Size)
	}
	return nil
}

// OpKind classifies an operation for profile accounting.
type OpKind int

// Operation kinds.
const (
	Read OpKind = iota
	Write
	Delete
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	case Delete:
		return "delete"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// OpTrace reports what one operation did to memory, in engine-neutral
// units the server layer prices against a memory tier.
type OpTrace struct {
	Kind     OpKind
	RecordID uint64 // stable identity of the record for the LLC model
	Chases   int    // dependent pointer dereferences on the record's tier
	Touched  int    // bytes of record data streamed (incl. amplification)
	Found    bool   // for Get/Delete: whether the key existed
}

// Store is an in-memory key-value store engine.
//
// Engines are deterministic and not safe for concurrent use (the paper's
// client issues requests sequentially; concurrency effects such as
// Memcached's worker threads are modeled as memory-level parallelism in
// the engine's Profile, not with goroutines).
//
// Every operation exists in two forms: a string-keyed form that derives
// the record identity itself, and an ID-addressed form (GetID/PutID/
// DelID) taking a precomputed KeyID(key). The ID forms are the replay
// fast path — a workload trace resolves each key's ID once at generation
// time, so per-request re-hashing would be pure overhead; the string
// forms remain for callers without a cached identity (tests, ad-hoc
// use). Both forms are behaviourally identical: GetID(k, KeyID(k))
// ≡ Get(k), and likewise for Put/Del.
type Store interface {
	// Name identifies the engine ("redislike", "memcachedlike",
	// "dynamolike").
	Name() string
	// Put inserts or replaces a value and reports the memory traffic.
	Put(key string, v Value) OpTrace
	// Get looks a key up. The returned Value is size-only if the store
	// holds a size-only payload.
	Get(key string) (Value, OpTrace)
	// Del removes a key if present.
	Del(key string) OpTrace
	// PutID is Put with the caller-supplied record identity; id must
	// equal KeyID(key).
	PutID(key string, id uint64, v Value) OpTrace
	// GetID is Get with the caller-supplied record identity.
	GetID(key string, id uint64) (Value, OpTrace)
	// DelID is Del with the caller-supplied record identity.
	DelID(key string, id uint64) OpTrace
	// Len reports the number of resident keys.
	Len() int
	// DataBytes reports the total resident payload bytes (the quantity
	// capacity sizing is about).
	DataBytes() int64
	// TakePauseNs drains any accumulated background stall (rehash, GC,
	// eviction) that the next request must absorb, in nanoseconds.
	TakePauseNs() float64
	// Profile exposes the engine's performance characteristics.
	Profile() EngineProfile
}

// PauseModel describes an engine's deterministic steady-state stall
// source as a linear allocation budget: every operation accrues the
// record's payload bytes plus PerOpBytes of framing garbage, and when the
// accumulator reaches BudgetBytes it resets to zero and the operation
// absorbs PauseNs. Engines without steady-state pauses return the zero
// model (BudgetBytes 0), which the replay kernel skips entirely.
type PauseModel struct {
	// BudgetBytes is the accrual threshold that triggers a pause; 0
	// disables the model.
	BudgetBytes int64
	// PerOpBytes is the fixed per-operation accrual added on top of the
	// record's payload size.
	PerOpBytes int64
	// PauseNs is the stall injected when the budget is crossed.
	PauseNs float64
	// Accum is the accumulator's current value — the starting point a
	// batched replay must resume from to stay bit-identical with the
	// store's own accounting.
	Accum int64
}

// BatchReplayer is the optional capability behind the server's batched
// replay kernel (DESIGN.md §12). An engine that implements it can promise
// that, once quiesced, its per-operation traces for resident keys are
// static: no rehash in flight, no TTL reaping, no structural mutation on
// overwrite — so Get/Put traces can be precomputed once into a flat cost
// table and replayed without touching the store at all.
type BatchReplayer interface {
	// Quiesce drives deferred background work (incremental rehash,
	// pending node splits) to completion so subsequent operations on
	// resident keys stop mutating structure. Stall time accrued while
	// quiescing lands in TakePauseNs, letting the load phase drain it
	// untimed. Quiesce is idempotent.
	Quiesce()
	// ReplayReady reports whether every resident key's Get/Put traces
	// are static — typically true only after Quiesce on a store with no
	// volatile (TTL-bearing) keys. A false return forces the caller back
	// onto the per-operation path.
	ReplayReady() bool
	// StaticTrace returns the constant Get and Put pointer-chase counts
	// of a resident key, without mutating the store. ok is false when the
	// key is absent (its traces would then depend on dynamic state).
	StaticTrace(key string, id uint64) (getChases, putChases int, ok bool)
	// ReplayPauses exposes the engine's steady-state stall source so the
	// batched kernel can reproduce TakePauseNs without calling it.
	ReplayPauses() PauseModel
	// SyncReplayAccum overwrites the engine's pause accumulator with the
	// kernel's mirrored value. The batched kernel advances its mirror
	// instead of the engine's accounting; when a replay must interleave
	// per-operation requests (a streamed frame carrying deletes), it
	// first writes the mirror back so the engine's own accounting
	// resumes exactly where the kernel left it — and reads the engine's
	// accumulator back (ReplayPauses().Accum) afterwards. Engines with a
	// zero PauseModel may ignore the call.
	SyncReplayAccum(accum int64)
}

// EngineProfile captures how an engine converts memory traffic into
// service time. These constants are the calibration described in
// DESIGN.md §5; they are chosen so that the three engines reproduce the
// paper's sensitivity ordering (DynamoDB ≫ Redis ≫ Memcached).
type EngineProfile struct {
	Name string
	// CPUBaseNs is the tier-independent request handling cost: parsing,
	// protocol, syscalls, client library.
	CPUBaseNs float64
	// CPUPerByteNs is the tier-independent per-byte handling cost
	// (serialization, checksums, copies within the CPU caches).
	CPUPerByteNs float64
	// MLP is the memory-level parallelism: how many outstanding memory
	// operations the request path overlaps. Byte-traffic time is divided
	// by this (Memcached's worker threads hide most stalls).
	MLP float64
	// WritePenalty scales the byte-traffic cost of writes relative to
	// reads; store write buffering means writes rarely stall on the slow
	// tier (Fig 5b).
	WritePenalty float64
	// ReadAmplification multiplies value bytes touched per Get
	// (DynamoDB-local parses/validates/copies the record repeatedly).
	ReadAmplification float64
	// WriteAmplification multiplies value bytes touched per Put.
	WriteAmplification float64
}

// Amplify scales a payload size by an engine amplification factor. A
// factor of 1 — the common case — is the identity and skips the float
// round trip on the per-operation path.
func Amplify(size int, factor float64) int {
	if factor == 1 {
		return size
	}
	return int(float64(size) * factor)
}

// KeyID derives the stable 64-bit record identity used by the LLC model
// and the placement engines. It must be a pure function of the key.
func KeyID(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key)) // fnv never errors
	return h.Sum64()
}
