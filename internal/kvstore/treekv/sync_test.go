package treekv

import (
	"testing"

	"mnemo/internal/kvstore"
)

// TestSyncReplayAccum pins the pause-sync side of the streamed
// handshake: the kernel's mirrored GC accumulator becomes the live
// allocation counter, observable through ReplayPauses and through the
// next charge crossing the budget.
func TestSyncReplayAccum(t *testing.T) {
	s := New()
	populateTree(s, 100)
	s.TakePauseNs()

	pm := s.ReplayPauses()
	if pm.BudgetBytes != gcAllocBudget || pm.PerOpBytes != requestGarbageB || pm.PauseNs != gcPauseNs {
		t.Fatalf("pause model %+v does not export the charge dynamics", pm)
	}

	s.SyncReplayAccum(12345)
	if got := s.ReplayPauses().Accum; got != 12345 {
		t.Fatalf("accum after SyncReplayAccum = %d, want 12345", got)
	}

	// Syncing to just below the GC budget makes the very next charge
	// cross it: the accumulator resets and the young-gen pause is
	// emitted — the behaviour the kernel relies on when handing per-op
	// frames back to the live store.
	s.SyncReplayAccum(gcAllocBudget - 1)
	s.Put("key0000", kvstore.Sized(64))
	if got := s.ReplayPauses().Accum; got >= gcAllocBudget-1 {
		t.Fatalf("accum did not reset across the budget: %d", got)
	}
	if ns := s.TakePauseNs(); ns < gcPauseNs {
		t.Fatalf("crossing the budget emitted %v ns, want >= %v", ns, gcPauseNs)
	}
}
