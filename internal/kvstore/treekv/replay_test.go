package treekv

import (
	"fmt"
	"testing"

	"mnemo/internal/kvstore"
)

func populateTree(s *Store, n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%04d", i)
		s.Put(keys[i], kvstore.Sized(64))
	}
	return keys
}

func TestQuiesceReachesFixpoint(t *testing.T) {
	s := New()
	keys := populateTree(s, 500) // deep enough to leave full nodes behind

	if s.ReplayReady() {
		t.Skip("bulk load left no full node; nothing to quiesce")
	}
	s.Quiesce()
	if !s.ReplayReady() {
		t.Fatal("Quiesce left a full node")
	}
	if msg := s.CheckInvariants(); msg != "" {
		t.Fatalf("tree invariants broken after Quiesce: %s", msg)
	}
	for _, k := range keys {
		if _, tr := s.Get(k); !tr.Found {
			t.Fatalf("key %q lost across Quiesce", k)
		}
	}
}

// TestStaticTraceMatchesLiveOps pins the batched-replay contract: on a
// quiesced tree StaticTrace predicts the exact Chases of live GetID and
// same-size PutID overwrites, stably across repetition (no Put descent
// may split).
func TestStaticTraceMatchesLiveOps(t *testing.T) {
	s := New()
	keys := populateTree(s, 300)
	s.Quiesce()
	s.TakePauseNs()

	for _, k := range keys {
		id := kvstore.KeyID(k)
		getChases, putChases, ok := s.StaticTrace(k, id)
		if !ok {
			t.Fatalf("StaticTrace(%q) not ok on resident key", k)
		}
		for rep := 0; rep < 2; rep++ {
			if _, tr := s.GetID(k, id); tr.Chases != getChases {
				t.Fatalf("key %q rep %d: live Get chases %d, static %d", k, rep, tr.Chases, getChases)
			}
			if tr := s.PutID(k, id, kvstore.Sized(64)); tr.Chases != putChases {
				t.Fatalf("key %q rep %d: live Put chases %d, static %d", k, rep, tr.Chases, putChases)
			}
		}
	}
	if !s.ReplayReady() {
		t.Fatal("replaying overwrites restructured the quiesced tree")
	}
}

func TestStaticTraceRejectsMissingAndMismatched(t *testing.T) {
	s := New()
	populateTree(s, 50)
	s.Quiesce()
	if _, _, ok := s.StaticTrace("zzz-gone", kvstore.KeyID("zzz-gone")); ok {
		t.Error("StaticTrace ok on missing key")
	}
	if _, _, ok := s.StaticTrace("key0000", 12345); ok {
		t.Error("StaticTrace ok on mismatched record ID")
	}
}

// TestReplayPausesExportsGCModel checks the PauseModel mirrors charge():
// same budget, same per-op framing garbage, same pause, and the live
// accumulator snapshot.
func TestReplayPausesExportsGCModel(t *testing.T) {
	s := New()
	populateTree(s, 10)
	pm := s.ReplayPauses()
	if pm.BudgetBytes != gcAllocBudget || pm.PerOpBytes != requestGarbageB || pm.PauseNs != gcPauseNs {
		t.Fatalf("PauseModel constants %+v diverge from charge()", pm)
	}
	if pm.Accum != s.allocBytes {
		t.Fatalf("PauseModel.Accum = %d, live accumulator %d", pm.Accum, s.allocBytes)
	}
	// The model must predict the next pause: drive the live accumulator
	// over the budget and check a pause fires exactly when predicted.
	opsToPause := 0
	accum := pm.Accum
	for accum < pm.BudgetBytes {
		accum += 64 + pm.PerOpBytes
		opsToPause++
	}
	s.TakePauseNs()
	for i := 0; i < opsToPause-1; i++ {
		s.Get("key0000")
		if p := s.TakePauseNs(); p != 0 {
			t.Fatalf("pause fired %d ops early", opsToPause-1-i)
		}
	}
	s.Get("key0000")
	if p := s.TakePauseNs(); p != gcPauseNs {
		t.Fatalf("pause at predicted op = %v, want %v", p, float64(gcPauseNs))
	}
}
