package treekv

import "mnemo/internal/kvstore"

// Batched-replay capability (kvstore.BatchReplayer, DESIGN.md §12).
//
// Two treekv behaviours are dynamic in steady state. First, Put splits
// any full node it descends through — even on a pure overwrite — so a
// tree fresh off a bulk load keeps restructuring for a while and its
// chase counts drift. Quiesce performs those preemptive splits up front,
// after which reads and overwrites of resident keys leave the structure
// untouched and every descent is static. Second, the GC budget (charge)
// injects a pause every gcAllocBudget bytes of request garbage; that is
// a pure function of the op sequence, exported to the kernel via
// ReplayPauses as a linear PauseModel.

// Quiesce implements kvstore.BatchReplayer: it splits every full node —
// exactly the splits future Puts would perform on their way down — until
// none remain. A pass may refill a parent (each child split pushes one
// item up), so passes repeat to a fixpoint; splits are capped by the
// final node count, which the fixed item population bounds. Only root
// splits stall the tree (the per-op path charges no pause for interior
// preemptive splits either); the stall accrues in pauseNs for the loader
// to drain untimed.
func (s *Store) Quiesce() {
	for s.quiescePass() {
	}
}

// quiescePass performs one top-down preemptive-split sweep, reporting
// whether it split anything. Children of a currently-full parent are
// skipped (splitChild needs room for the promoted median) and picked up
// by the next pass, after the parent itself has been split.
func (s *Store) quiescePass() bool {
	split := false
	if len(s.root.items) == 2*degree-1 {
		old := s.root
		s.root = &node{children: []*node{old}}
		s.splitChild(s.root, 0)
		s.pauseNs += 20_000 // root split: tree-wide latch, as in PutID
		split = true
	}
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf() {
			return
		}
		for i := 0; i < len(n.children); i++ {
			if len(n.items) < 2*degree-1 && len(n.children[i].items) == 2*degree-1 {
				s.splitChild(n, i)
				split = true
			}
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(s.root)
	return split
}

// ReplayReady implements kvstore.BatchReplayer: true when no node is
// full, so no Put descent can split.
func (s *Store) ReplayReady() bool {
	var full func(n *node) bool
	full = func(n *node) bool {
		if len(n.items) == 2*degree-1 {
			return true
		}
		for _, c := range n.children {
			if full(c) {
				return true
			}
		}
		return false
	}
	return !full(s.root)
}

// StaticTrace implements kvstore.BatchReplayer. On a quiesced tree Get
// and Put walk the identical descent (insertNonFull skips its split
// checks when nothing is full) and both add the six marshalling-layer
// dereferences on the found record.
func (s *Store) StaticTrace(key string, id uint64) (getChases, putChases int, ok bool) {
	chases := 0
	n := s.root
	for {
		chases++ // node fetch
		idx, found, cmps := n.findKey(key)
		chases += cmps / 2
		if found {
			if n.items[idx].id != id {
				return 0, 0, false
			}
			return chases + 6, chases + 6, true
		}
		if n.leaf() {
			return 0, 0, false
		}
		n = n.children[idx]
	}
}

// ReplayPauses implements kvstore.BatchReplayer, exporting the charge()
// dynamics: every op accrues its record bytes plus the request framing
// garbage, and crossing the GC budget resets the accumulator and injects
// the young-gen pause.
func (s *Store) ReplayPauses() kvstore.PauseModel {
	return kvstore.PauseModel{
		BudgetBytes: gcAllocBudget,
		PerOpBytes:  requestGarbageB,
		PauseNs:     gcPauseNs,
		Accum:       s.allocBytes,
	}
}

// SyncReplayAccum implements kvstore.BatchReplayer: the kernel's
// mirrored GC accumulator becomes the live allocation counter, so
// per-op requests interleaved into a batched replay charge() from the
// same point the kernel reached.
func (s *Store) SyncReplayAccum(accum int64) { s.allocBytes = accum }

var _ kvstore.BatchReplayer = (*Store)(nil)
