// Package treekv implements the DynamoDB-local-like engine: a B-tree
// keyed store with a heavyweight, layered request path. DynamoDB-local
// runs a Java service over an embedded SQL engine; each request is
// parsed, validated, marshalled and journalled, touching the record bytes
// several times, and the managed runtime injects periodic collection
// pauses. Those two properties — high read amplification and GC hiccups —
// make this engine the most sensitive to SlowMem placement (Fig 8b) and
// give it the heaviest tails (Fig 8d/8e).
package treekv

import (
	"mnemo/internal/kvstore"
)

// Profile is the calibrated engine profile (DESIGN.md §5): modest
// per-byte CPU (the marshalling work is memory traffic, not arithmetic)
// but 8× read/write amplification through the layered request path and no
// stall overlap, yielding ≈3.7× slowdown on SlowMem for 100 KB records.
var Profile = kvstore.EngineProfile{
	Name:               "dynamolike",
	CPUBaseNs:          40_000, // request routing, auth stub, SQL layer
	CPUPerByteNs:       0.5,
	MLP:                1,
	WritePenalty:       0.45, // journalled writes still re-read pages
	ReadAmplification:  8,
	WriteAmplification: 8,
}

// degree is the B-tree minimum degree (max 2·degree−1 keys per node),
// comparable to a page-sized SQLite interior node.
const degree = 16

// gcAllocBudget is how many bytes of allocation the managed runtime
// tolerates before a collection pause; gcPauseNs is the injected stall.
const (
	gcAllocBudget = 48 << 20
	gcPauseNs     = 2_500_000 // 2.5 ms young-gen pause
	// requestGarbageB is the fixed per-request framing garbage charged on
	// top of the record bytes.
	requestGarbageB = 4096
)

type treeItem struct {
	key string
	id  uint64
	val kvstore.Value
}

type node struct {
	items    []treeItem
	children []*node // nil for leaves
}

func (n *node) leaf() bool { return len(n.children) == 0 }

// findKey locates key within the node, reporting the comparisons made.
// The loop is sort.Search unrolled (same probe sequence, hence the same
// comparison count) — the inline form avoids allocating a closure on the
// replay hot path.
func (n *node) findKey(key string) (idx int, found bool, cmps int) {
	i, j := 0, len(n.items)
	for i < j {
		h := int(uint(i+j) >> 1)
		cmps++
		if n.items[h].key < key {
			i = h + 1
		} else {
			j = h
		}
	}
	found = i < len(n.items) && n.items[i].key == key
	return i, found, cmps
}

// Store is the DynamoDB-like engine. Not safe for concurrent use.
type Store struct {
	root       *node
	count      int
	dataBytes  int64
	pauseNs    float64
	allocBytes int64
	gcCount    int64
}

// New creates an empty store.
func New() *Store { return &Store{root: &node{}} }

// Name implements kvstore.Store.
func (s *Store) Name() string { return Profile.Name }

// Profile implements kvstore.Store.
func (s *Store) Profile() kvstore.EngineProfile { return Profile }

// Len implements kvstore.Store.
func (s *Store) Len() int { return s.count }

// DataBytes implements kvstore.Store.
func (s *Store) DataBytes() int64 { return s.dataBytes }

// GCCount reports how many collection pauses were injected.
func (s *Store) GCCount() int64 { return s.gcCount }

// TakePauseNs implements kvstore.Store.
func (s *Store) TakePauseNs() float64 {
	p := s.pauseNs
	s.pauseNs = 0
	return p
}

// charge accounts transient request allocations (parse buffers, copies)
// against the GC budget; DynamoDB-local allocates roughly the record size
// per request in garbage.
func (s *Store) charge(bytes int) {
	s.allocBytes += int64(bytes) + requestGarbageB
	if s.allocBytes >= gcAllocBudget {
		s.allocBytes = 0
		s.pauseNs += gcPauseNs
		s.gcCount++
	}
}

// Height reports the current tree height (root = 1).
func (s *Store) Height() int {
	h := 0
	for n := s.root; n != nil; {
		h++
		if n.leaf() {
			break
		}
		n = n.children[0]
	}
	return h
}

// Get implements kvstore.Store.
func (s *Store) Get(key string) (kvstore.Value, kvstore.OpTrace) {
	return s.GetID(key, kvstore.KeyID(key))
}

// GetID implements kvstore.Store: Get with a precomputed KeyID.
func (s *Store) GetID(key string, id uint64) (kvstore.Value, kvstore.OpTrace) {
	tr := kvstore.OpTrace{Kind: kvstore.Read, RecordID: id}
	n := s.root
	for {
		tr.Chases++ // node fetch
		idx, found, cmps := n.findKey(key)
		tr.Chases += cmps / 2 // binary-search probes that leave the node header
		if found {
			it := n.items[idx]
			tr.Found = true
			tr.Chases += 6 // marshalling layers re-dereference the record
			tr.Touched = kvstore.Amplify(it.val.Size, Profile.ReadAmplification)
			s.charge(it.val.Size)
			return it.val, tr
		}
		if n.leaf() {
			s.charge(0)
			return kvstore.Value{}, tr
		}
		n = n.children[idx]
	}
}

// Put implements kvstore.Store.
func (s *Store) Put(key string, v kvstore.Value) kvstore.OpTrace {
	return s.PutID(key, kvstore.KeyID(key), v)
}

// PutID implements kvstore.Store: Put with a precomputed KeyID.
func (s *Store) PutID(key string, id uint64, v kvstore.Value) kvstore.OpTrace {
	if err := v.Validate(); err != nil {
		panic(err)
	}
	tr := kvstore.OpTrace{Kind: kvstore.Write, RecordID: id,
		Touched: kvstore.Amplify(v.Size, Profile.WriteAmplification)}
	if len(s.root.items) == 2*degree-1 {
		old := s.root
		s.root = &node{children: []*node{old}}
		s.splitChild(s.root, 0)
		s.pauseNs += 20_000 // root split: tree-wide latch
	}
	replacedSize, replaced, chases := s.insertNonFull(s.root, treeItem{key: key, id: id, val: v})
	tr.Chases = chases + 6
	tr.Found = replaced
	if replaced {
		s.dataBytes += int64(v.Size) - int64(replacedSize)
	} else {
		s.count++
		s.dataBytes += int64(v.Size)
	}
	s.charge(v.Size)
	return tr
}

// splitChild splits the full child i of parent (standard CLRS B-tree).
func (s *Store) splitChild(parent *node, i int) {
	child := parent.children[i]
	mid := degree - 1
	right := &node{items: append([]treeItem(nil), child.items[mid+1:]...)}
	if !child.leaf() {
		right.children = append([]*node(nil), child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	median := child.items[mid]
	child.items = child.items[:mid]
	parent.children = append(parent.children, nil)
	copy(parent.children[i+2:], parent.children[i+1:])
	parent.children[i+1] = right
	parent.items = append(parent.items, treeItem{})
	copy(parent.items[i+1:], parent.items[i:])
	parent.items[i] = median
}

// insertNonFull inserts into a non-full subtree, returning the replaced
// value size (if the key existed) and the pointer chases spent.
func (s *Store) insertNonFull(n *node, it treeItem) (replacedSize int, replaced bool, chases int) {
	for {
		chases++
		idx, found, cmps := n.findKey(it.key)
		chases += cmps / 2
		if found {
			old := n.items[idx].val.Size
			n.items[idx].val = it.val
			return old, true, chases
		}
		if n.leaf() {
			n.items = append(n.items, treeItem{})
			copy(n.items[idx+1:], n.items[idx:])
			n.items[idx] = it
			return 0, false, chases
		}
		if len(n.children[idx].items) == 2*degree-1 {
			s.splitChild(n, idx)
			if it.key > n.items[idx].key {
				idx++
			} else if it.key == n.items[idx].key {
				old := n.items[idx].val.Size
				n.items[idx].val = it.val
				return old, true, chases
			}
		}
		n = n.children[idx]
	}
}

// Del implements kvstore.Store. Deletion uses the standard B-tree
// rebalancing algorithm (borrow or merge on the way down).
func (s *Store) Del(key string) kvstore.OpTrace {
	return s.DelID(key, kvstore.KeyID(key))
}

// DelID implements kvstore.Store: Del with a precomputed KeyID.
func (s *Store) DelID(key string, id uint64) kvstore.OpTrace {
	tr := kvstore.OpTrace{Kind: kvstore.Delete, RecordID: id}
	removedSize, removed, chases := s.delete(s.root, key)
	tr.Chases = chases + 4
	if len(s.root.items) == 0 && !s.root.leaf() {
		s.root = s.root.children[0]
	}
	if removed {
		tr.Found = true
		s.count--
		s.dataBytes -= int64(removedSize)
		s.charge(removedSize)
	} else {
		s.charge(0)
	}
	return tr
}

func (s *Store) delete(n *node, key string) (removedSize int, removed bool, chases int) {
	chases++
	idx, found, cmps := n.findKey(key)
	chases += cmps / 2
	if found {
		if n.leaf() {
			size := n.items[idx].val.Size
			n.items = append(n.items[:idx], n.items[idx+1:]...)
			return size, true, chases
		}
		// Interior hit: replace with predecessor and delete it below.
		size := n.items[idx].val.Size
		pred, c := s.maxItem(n.children[idx])
		chases += c
		n.items[idx] = pred
		_, _, c2 := s.delete(s.ensureChild(n, idx, &chases), pred.key)
		chases += c2
		return size, true, chases
	}
	if n.leaf() {
		return 0, false, chases
	}
	child := s.ensureChild(n, idx, &chases)
	size, ok, c := s.delete(child, key)
	return size, ok, chases + c
}

// ensureChild guarantees children[idx] has ≥ degree items before descent,
// borrowing from a sibling or merging. idx may shift after a merge; the
// returned node is the correct child to descend into.
func (s *Store) ensureChild(n *node, idx int, chases *int) *node {
	// After a predecessor swap idx can equal len(children)-1 already;
	// clamp defensively.
	if idx >= len(n.children) {
		idx = len(n.children) - 1
	}
	child := n.children[idx]
	if len(child.items) >= degree {
		return child
	}
	*chases += 2
	// Borrow from left sibling.
	if idx > 0 && len(n.children[idx-1].items) >= degree {
		left := n.children[idx-1]
		child.items = append([]treeItem{n.items[idx-1]}, child.items...)
		n.items[idx-1] = left.items[len(left.items)-1]
		left.items = left.items[:len(left.items)-1]
		if !left.leaf() {
			moved := left.children[len(left.children)-1]
			left.children = left.children[:len(left.children)-1]
			child.children = append([]*node{moved}, child.children...)
		}
		return child
	}
	// Borrow from right sibling.
	if idx < len(n.children)-1 && len(n.children[idx+1].items) >= degree {
		right := n.children[idx+1]
		child.items = append(child.items, n.items[idx])
		n.items[idx] = right.items[0]
		right.items = right.items[1:]
		if !right.leaf() {
			moved := right.children[0]
			right.children = right.children[1:]
			child.children = append(child.children, moved)
		}
		return child
	}
	// Merge with a sibling.
	if idx == len(n.children)-1 {
		idx--
		child = n.children[idx]
	}
	right := n.children[idx+1]
	child.items = append(child.items, n.items[idx])
	child.items = append(child.items, right.items...)
	child.children = append(child.children, right.children...)
	n.items = append(n.items[:idx], n.items[idx+1:]...)
	n.children = append(n.children[:idx+1], n.children[idx+2:]...)
	return child
}

// maxItem returns the rightmost item of a subtree.
func (s *Store) maxItem(n *node) (treeItem, int) {
	chases := 0
	for !n.leaf() {
		chases++
		n = n.children[len(n.children)-1]
	}
	return n.items[len(n.items)-1], chases + 1
}

// Keys returns all keys in sorted order (test/diagnostic helper).
func (s *Store) Keys() []string {
	var out []string
	var walk func(n *node)
	walk = func(n *node) {
		for i, it := range n.items {
			if !n.leaf() {
				walk(n.children[i])
			}
			out = append(out, it.key)
		}
		if !n.leaf() {
			walk(n.children[len(n.children)-1])
		}
	}
	walk(s.root)
	return out
}

// CheckInvariants validates B-tree structural invariants, returning a
// description of the first violation found ("" when valid). Used by the
// property tests.
func (s *Store) CheckInvariants() string {
	var check func(n *node, depth int, min, max string) (leafDepth int, msg string)
	check = func(n *node, depth int, min, max string) (int, string) {
		if len(n.items) > 2*degree-1 {
			return 0, "node overfull"
		}
		if n != s.root && len(n.items) < degree-1 {
			return 0, "node underfull"
		}
		for i := 1; i < len(n.items); i++ {
			if n.items[i-1].key >= n.items[i].key {
				return 0, "keys out of order"
			}
		}
		for _, it := range n.items {
			if min != "" && it.key <= min {
				return 0, "key below subtree bound"
			}
			if max != "" && it.key >= max {
				return 0, "key above subtree bound"
			}
		}
		if n.leaf() {
			return depth, ""
		}
		if len(n.children) != len(n.items)+1 {
			return 0, "child count mismatch"
		}
		leafDepth := -1
		for i, c := range n.children {
			lo, hi := min, max
			if i > 0 {
				lo = n.items[i-1].key
			}
			if i < len(n.items) {
				hi = n.items[i].key
			}
			d, msg := check(c, depth+1, lo, hi)
			if msg != "" {
				return 0, msg
			}
			if leafDepth == -1 {
				leafDepth = d
			} else if d != leafDepth {
				return 0, "leaves at unequal depth"
			}
		}
		return leafDepth, ""
	}
	_, msg := check(s.root, 0, "", "")
	return msg
}

var _ kvstore.Store = (*Store)(nil)
