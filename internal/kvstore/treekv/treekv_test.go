package treekv

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"mnemo/internal/kvstore"
)

func TestPutGetRoundTrip(t *testing.T) {
	s := New()
	s.Put("k", kvstore.Bytes([]byte("abc")))
	v, tr := s.Get("k")
	if !tr.Found || string(v.Data) != "abc" {
		t.Fatalf("Get = %+v / %+v", v, tr)
	}
	if tr.Touched != int(3*Profile.ReadAmplification) {
		t.Errorf("Touched = %d, want amplified", tr.Touched)
	}
}

func TestGetMissing(t *testing.T) {
	s := New()
	if _, tr := s.Get("nope"); tr.Found {
		t.Fatal("missing found")
	}
	s.Put("a", kvstore.Sized(1))
	if _, tr := s.Get("b"); tr.Found {
		t.Fatal("sibling key found")
	}
}

func TestReplaceKeepsCount(t *testing.T) {
	s := New()
	s.Put("k", kvstore.Sized(10))
	tr := s.Put("k", kvstore.Sized(30))
	if !tr.Found {
		t.Error("replace not flagged")
	}
	if s.Len() != 1 || s.DataBytes() != 30 {
		t.Fatalf("len=%d bytes=%d", s.Len(), s.DataBytes())
	}
}

func TestSortedIterationAfterManyInserts(t *testing.T) {
	s := New()
	rng := rand.New(rand.NewSource(1))
	want := map[string]bool{}
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("key%08d", rng.Intn(100000))
		s.Put(k, kvstore.Sized(8))
		want[k] = true
	}
	keys := s.Keys()
	if len(keys) != len(want) {
		t.Fatalf("Keys len = %d, want %d", len(keys), len(want))
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatal("Keys not sorted")
	}
	if msg := s.CheckInvariants(); msg != "" {
		t.Fatalf("invariant violated: %s", msg)
	}
	if s.Height() < 2 {
		t.Errorf("tree suspiciously shallow: height %d for %d keys", s.Height(), len(keys))
	}
}

func TestDeleteRebalances(t *testing.T) {
	s := New()
	const n = 3000
	for i := 0; i < n; i++ {
		s.Put(fmt.Sprintf("key%06d", i), kvstore.Sized(4))
	}
	rng := rand.New(rand.NewSource(2))
	perm := rng.Perm(n)
	for step, idx := range perm {
		key := fmt.Sprintf("key%06d", idx)
		tr := s.Del(key)
		if !tr.Found {
			t.Fatalf("delete %s missed", key)
		}
		if step%500 == 0 {
			if msg := s.CheckInvariants(); msg != "" {
				t.Fatalf("after %d deletes: %s", step+1, msg)
			}
		}
	}
	if s.Len() != 0 || s.DataBytes() != 0 {
		t.Fatalf("residue: len=%d bytes=%d", s.Len(), s.DataBytes())
	}
	if tr := s.Del("key000000"); tr.Found {
		t.Fatal("delete from empty tree found")
	}
}

func TestGCPausesAccrue(t *testing.T) {
	s := New()
	s.Put("big", kvstore.Sized(1<<20))
	var paused bool
	for i := 0; i < 100 && !paused; i++ {
		s.Get("big") // 1 MB per read: GC budget exhausted quickly
		if s.TakePauseNs() > 0 {
			paused = true
		}
	}
	if !paused {
		t.Fatal("no GC pause after ~100 MB of request garbage")
	}
	if s.GCCount() == 0 {
		t.Fatal("GC count not incremented")
	}
}

func TestRootSplitPause(t *testing.T) {
	s := New()
	var sawPause bool
	for i := 0; i < 2000; i++ {
		s.Put(fmt.Sprintf("k%06d", i), kvstore.Sized(1))
		if s.TakePauseNs() > 0 {
			sawPause = true
		}
	}
	if !sawPause {
		t.Error("growing tree produced no split pause")
	}
}

func TestProfileSensitivityOrdering(t *testing.T) {
	if Profile.ReadAmplification < 4 {
		t.Error("dynamo-like engine must amplify reads heavily")
	}
	if Profile.MLP != 1 {
		t.Error("dynamo-like engine should not overlap stalls")
	}
	if New().Name() != "dynamolike" {
		t.Error("name wrong")
	}
}

func TestPutInvalidValuePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().Put("k", kvstore.Value{Size: 9, Data: []byte("x")})
}

// Property: the tree agrees with a reference map and keeps its invariants
// under arbitrary interleavings of put/get/delete.
func TestMatchesReferenceMapProperty(t *testing.T) {
	type op struct {
		Kind byte
		Key  uint8
		Size uint16
	}
	f := func(ops []op) bool {
		s := New()
		ref := map[string]int{}
		for _, o := range ops {
			key := fmt.Sprintf("k%03d", o.Key)
			switch o.Kind % 3 {
			case 0:
				s.Put(key, kvstore.Sized(int(o.Size)))
				ref[key] = int(o.Size)
			case 1:
				v, tr := s.Get(key)
				want, ok := ref[key]
				if tr.Found != ok || (ok && v.Size != want) {
					return false
				}
			case 2:
				tr := s.Del(key)
				if _, ok := ref[key]; tr.Found != ok {
					return false
				}
				delete(ref, key)
			}
		}
		if s.Len() != len(ref) {
			return false
		}
		return s.CheckInvariants() == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHeightGrowsLogarithmically(t *testing.T) {
	s := New()
	for i := 0; i < 100000; i++ {
		s.Put(fmt.Sprintf("key%08d", i), kvstore.Sized(1))
	}
	if h := s.Height(); h > 6 {
		t.Errorf("height %d too tall for 100k keys at degree %d", h, degree)
	}
	if msg := s.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}
