package kvstore_test

// The ID-addressed operation path (GetID/PutID/DelID) is the replay fast
// path: callers pass a precomputed KeyID instead of having each engine
// re-hash the key per request. Its contract is strict behavioural
// equivalence — GetID(k, KeyID(k)) ≡ Get(k) and likewise for Put/Del.
// These tests drive two instances of every engine through an identical
// mixed operation sequence, one per path, and require identical traces,
// values and engine pauses throughout.

import (
	"fmt"
	"reflect"
	"testing"

	"mnemo/internal/kvstore"
	"mnemo/internal/kvstore/hashkv"
	"mnemo/internal/kvstore/slabkv"
	"mnemo/internal/kvstore/treekv"
)

func engineConstructors() map[string]func() kvstore.Store {
	return map[string]func() kvstore.Store{
		"hashkv": func() kvstore.Store { return hashkv.New() },
		"slabkv": func() kvstore.Store { return slabkv.New(0) },
		"treekv": func() kvstore.Store { return treekv.New() },
	}
}

func TestIDPathMatchesStringPath(t *testing.T) {
	for name, mk := range engineConstructors() {
		t.Run(name, func(t *testing.T) {
			str, id := mk(), mk()
			check := func(op string, key string, trStr, trID kvstore.OpTrace) {
				t.Helper()
				if !reflect.DeepEqual(trStr, trID) {
					t.Fatalf("%s(%q): string trace %+v != id trace %+v", op, key, trStr, trID)
				}
				if p, q := str.TakePauseNs(), id.TakePauseNs(); p != q {
					t.Fatalf("%s(%q): pauses diverged %v != %v", op, key, p, q)
				}
			}
			keys := make([]string, 96)
			for i := range keys {
				keys[i] = fmt.Sprintf("user%04d", i*7)
			}
			// Three rounds of inserts and overwrites at varying sizes,
			// with lookups (hits and misses) and deletes interleaved.
			for round := 0; round < 3; round++ {
				for i, k := range keys {
					size := 64 + (i*37+round*411)%4000
					check("Put", k,
						str.Put(k, kvstore.Sized(size)),
						id.PutID(k, kvstore.KeyID(k), kvstore.Sized(size)))
				}
				for i, k := range keys {
					v1, tr1 := str.Get(k)
					v2, tr2 := id.GetID(k, kvstore.KeyID(k))
					check("Get", k, tr1, tr2)
					if !reflect.DeepEqual(v1, v2) {
						t.Fatalf("Get(%q): values diverged %+v != %+v", k, v1, v2)
					}
					if i%5 == round {
						check("Del", k, str.Del(k), id.DelID(k, kvstore.KeyID(k)))
					}
				}
				miss := fmt.Sprintf("absent%d", round)
				_, tr1 := str.Get(miss)
				_, tr2 := id.GetID(miss, kvstore.KeyID(miss))
				check("Get", miss, tr1, tr2)
				if tr1.Found {
					t.Fatalf("Get(%q) found a key never inserted", miss)
				}
				check("Del", miss, str.Del(miss), id.DelID(miss, kvstore.KeyID(miss)))
			}
			if str.Len() != id.Len() {
				t.Fatalf("resident keys diverged: %d != %d", str.Len(), id.Len())
			}
			if str.DataBytes() != id.DataBytes() {
				t.Fatalf("data bytes diverged: %d != %d", str.DataBytes(), id.DataBytes())
			}
		})
	}
}
