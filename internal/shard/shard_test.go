package shard

import (
	"testing"

	"mnemo/internal/kvstore"
	"mnemo/internal/ycsb"
)

func TestNewRingValidates(t *testing.T) {
	for _, shards := range []int{0, -1, MaxShards + 1} {
		if _, err := NewRing(shards, 8); err == nil {
			t.Errorf("NewRing(%d) accepted invalid shard count", shards)
		}
	}
	if _, err := NewRing(1, 0); err != nil {
		t.Fatalf("NewRing(1, 0): %v", err)
	}
	if _, err := NewRing(MaxShards, DefaultVirtualNodes); err != nil {
		t.Fatalf("NewRing(MaxShards): %v", err)
	}
}

func TestRingDeterministicAndSingleShard(t *testing.T) {
	a, err := NewRing(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(8, DefaultVirtualNodes)
	if err != nil {
		t.Fatal(err)
	}
	for key := uint32(0); key < 50_000; key++ {
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("ring not a pure function of shape: key %d owned by %d vs %d", key, a.Owner(key), b.Owner(key))
		}
	}
	one, err := NewRing(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for key := uint32(0); key < 1000; key++ {
		if got := one.Owner(key); got != 0 {
			t.Fatalf("1-shard ring routed key %d to shard %d", key, got)
		}
	}
}

func TestRingBalance(t *testing.T) {
	const shards, keys = 8, 200_000
	r, err := NewRing(shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, shards)
	for key := uint32(0); key < keys; key++ {
		counts[r.Owner(key)]++
	}
	mean := float64(keys) / shards
	for s, c := range counts {
		if ratio := float64(c) / mean; ratio < 0.5 || ratio > 1.5 {
			t.Errorf("shard %d owns %d keys (%.2fx mean) — ring badly unbalanced: %v", s, c, ratio, counts)
		}
	}
}

func testWorkload(t *testing.T, keys, requests int) *ycsb.Workload {
	t.Helper()
	w, err := ycsb.Generate(ycsb.Spec{
		Name:      "shard-test",
		Keys:      keys,
		Requests:  requests,
		Dist:      ycsb.DistSpec{Kind: ycsb.Zipfian},
		ReadRatio: 0.9,
		Sizes:     ycsb.SizeFixed1KB,
		Seed:      42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestSplitCoversEverything(t *testing.T) {
	w := testWorkload(t, 5000, 40_000)
	p, err := Split(w, 8, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if p.Requests() != len(w.Ops) {
		t.Fatalf("partition carries %d requests, parent has %d", p.Requests(), len(w.Ops))
	}
	nrec := 0
	var bytes int64
	seen := make([]bool, len(w.Dataset.Records))
	for s, sub := range p.Subs {
		nrec += len(sub.W.Dataset.Records)
		bytes += sub.W.Dataset.TotalBytes
		prev := int32(-1)
		for local, g := range sub.GlobalIndex {
			if g <= prev {
				t.Fatalf("shard %d GlobalIndex not ascending at local %d", s, local)
			}
			prev = g
			if seen[g] {
				t.Fatalf("record %d assigned to more than one shard", g)
			}
			seen[g] = true
			if p.Assign[g] != int32(s) {
				t.Fatalf("Assign[%d]=%d but record lives in shard %d", g, p.Assign[g], s)
			}
			if sub.W.Dataset.Records[local] != w.Dataset.Records[g] {
				t.Fatalf("shard %d local record %d differs from global %d", s, local, g)
			}
		}
	}
	if nrec != len(w.Dataset.Records) || bytes != w.Dataset.TotalBytes {
		t.Fatalf("shards hold %d records / %d bytes; parent has %d / %d",
			nrec, bytes, len(w.Dataset.Records), w.Dataset.TotalBytes)
	}
}

// TestSplitPreservesOrder checks each shard's sub-trace is exactly the
// parent-trace subsequence owned by that shard, in order, and that the
// packed-only split agrees op-for-op with the materialized one.
func TestSplitPreservesOrder(t *testing.T) {
	w := testWorkload(t, 3000, 25_000)
	packed, err := Split(w, 4, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	withOps, err := Split(w, 4, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	cursor := make([]int, 4)
	for _, op := range w.Ops {
		s := packed.Assign[op.Key]
		sub := packed.Subs[s]
		pt := sub.W.Packed()
		if sub.W.Ops != nil {
			t.Fatalf("packed split materialized Ops on shard %d", s)
		}
		i := cursor[s]
		if g := sub.GlobalIndex[pt.Keys[i]]; int(g) != op.Key || kvstore.OpKind(pt.Kinds[i]) != op.Kind {
			t.Fatalf("shard %d packed op %d = (key %d, kind %d); want (%d, %d)",
				s, i, g, pt.Kinds[i], op.Key, op.Kind)
		}
		osub := withOps.Subs[s]
		if g := osub.GlobalIndex[osub.W.Ops[i].Key]; int(g) != op.Key || osub.W.Ops[i].Kind != op.Kind {
			t.Fatalf("shard %d materialized op %d mismatch", s, i)
		}
		cursor[s]++
	}
	for s, sub := range packed.Subs {
		if cursor[s] != sub.Requests {
			t.Fatalf("shard %d: walked %d ops, Requests=%d", s, cursor[s], sub.Requests)
		}
		if sub.W.RequestCount() != sub.Requests {
			t.Fatalf("shard %d: RequestCount %d != Requests %d", s, sub.W.RequestCount(), sub.Requests)
		}
	}
}

func TestSplitPackedOnlyParentRejectsOps(t *testing.T) {
	parent := testWorkload(t, 500, 2000)
	p, err := Split(parent, 2, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	// A sub-workload is packed-only; asking it for a materialized split
	// must fail rather than silently produce an empty trace.
	if _, err := Split(p.Subs[0].W, 2, 0, true); err == nil {
		t.Fatal("Split(withOps) on a packed-only workload succeeded")
	}
}

func TestHotShardSpread(t *testing.T) {
	w := testWorkload(t, 10_000, 100_000)
	p, err := Split(w, 8, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	reads, writes := w.AccessCounts()
	// The zipfian hot set must span shards: if the hottest 64 keys
	// collapse onto one or two shards, sharding gains are illusory.
	if spread := p.HotShardSpread(reads, writes, 64); spread < 4 {
		t.Fatalf("hottest 64 keys span only %d of 8 shards", spread)
	}
	if spread := p.HotShardSpread(reads, writes, len(reads)+10); spread != 8 {
		t.Fatalf("full-key spread = %d, want 8", spread)
	}
}

func TestForCaches(t *testing.T) {
	w := testWorkload(t, 1000, 5000)
	a, err := For(w, 4, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := For(w, 4, DefaultVirtualNodes, false)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("For did not cache: same shape returned distinct partitions")
	}
	c, err := For(w, 2, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("For returned the 4-shard partition for a 2-shard request")
	}
	// FIFO eviction: push past the limit, then re-request the first
	// shape — a fresh (but equivalent) partition is rebuilt.
	for i := 0; i < cacheLimit+2; i++ {
		if _, err := For(w, 4, 16+i, false); err != nil {
			t.Fatal(err)
		}
	}
	a2, err := For(w, 4, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if a2.Requests() != a.Requests() {
		t.Fatal("rebuilt partition differs from original")
	}
}
