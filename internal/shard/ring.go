// Package shard partitions a workload across N deployments behind a
// consistent-hash ring — the cluster scale-out layer of DESIGN.md §13.
// The ring places VirtualNodes points per shard on a 64-bit hash circle
// and routes each trace key (a dense int32 dataset index, hashed
// directly — no key-string round trips) to the owner of the first point
// at or after the key's hash. The partitioner (partition.go) applies the
// ring to a workload once, producing per-shard sub-workloads whose
// record indices are shard-local, so every existing single-deployment
// replay path works unchanged per shard.
package shard

import (
	"fmt"
	"sort"
)

// DefaultVirtualNodes is the ring's default virtual-node count per
// shard. 64 points per shard keeps the expected per-shard key-count
// imbalance within a few percent while the ring stays small enough
// (shards×64 points) that building and binary-searching it is noise
// next to trace partitioning.
const DefaultVirtualNodes = 64

// MaxShards bounds the cluster size. The partitioner stores shard
// assignments as int32 and builds one sub-workload per shard; 256
// deployments is far beyond any simulation this package targets, so the
// bound mostly guards against misparsed flag input.
const MaxShards = 256

// mix64 is the splitmix64 finalizer: a full-avalanche 64-bit mixer
// (each input bit flips each output bit with probability ~1/2). Trace
// keys are dense small integers, so a plain modulo or FNV of their
// bytes would correlate adjacent keys; the finalizer decorrelates them
// at the cost of three shifts and two multiplies — no string or byte-
// slice round trip, as the packed trace only carries uint32 indices.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// keyPoint hashes a trace key (dataset record index) onto the ring.
func keyPoint(key uint32) uint64 { return mix64(uint64(key)) }

// vnodeDomain offsets virtual-node identifiers into a hash domain
// disjoint from the uint32 key space, so a ring point can never be the
// image of a trace key under the same mixer.
const vnodeDomain = uint64(1) << 40

// Ring is an immutable consistent-hash ring over a fixed shard count.
type Ring struct {
	shards int
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int32
}

// NewRing builds the ring with vnodes virtual nodes per shard
// (≤ 0 = DefaultVirtualNodes).
func NewRing(shards, vnodes int) (*Ring, error) {
	if shards <= 0 || shards > MaxShards {
		return nil, fmt.Errorf("shard: shard count %d outside [1,%d]", shards, MaxShards)
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{shards: shards, points: make([]ringPoint, 0, shards*vnodes)}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			h := mix64(vnodeDomain + uint64(s)<<20 + uint64(v))
			r.points = append(r.points, ringPoint{hash: h, shard: int32(s)})
		}
	}
	// Ties (astronomically unlikely) break by shard index so the ring is
	// a pure function of (shards, vnodes).
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r, nil
}

// Shards returns the ring's shard count.
func (r *Ring) Shards() int { return r.shards }

// Owner returns the shard owning a trace key: the shard of the first
// ring point at or clockwise-after the key's hash, wrapping to the
// first point past the top of the circle.
func (r *Ring) Owner(key uint32) int {
	h := keyPoint(key)
	pts := r.points
	// Binary search for the first point with hash ≥ h.
	lo, hi := 0, len(pts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pts[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(pts) {
		lo = 0
	}
	return int(pts[lo].shard)
}
