package shard

import (
	"fmt"
	"sort"
	"sync"

	"mnemo/internal/ycsb"
)

// Sub is one shard's slice of a partitioned workload.
type Sub struct {
	// W is the shard-local sub-workload: its dataset holds only the
	// records the ring assigns to this shard (in global index order, so
	// relative record order is preserved) and its trace refers to them
	// by shard-local index. When the parent trace is batchable and ops
	// were not requested, the sub-trace exists only in packed form
	// (W.Ops is nil) — half the per-request footprint at 100M-request
	// cluster scale.
	W *ycsb.Workload
	// GlobalIndex maps shard-local record indices back to the parent
	// dataset (GlobalIndex[local] = global), for placement remapping and
	// reporting.
	GlobalIndex []int32
	// Requests is the number of trace operations routed to this shard.
	Requests int
}

// Partition is a workload split across a consistent-hash ring: one Sub
// per shard, covering every parent record and trace op exactly once
// with per-shard op order preserved.
type Partition struct {
	Shards       int
	VirtualNodes int
	// Assign maps each global record index to its owning shard.
	Assign []int32
	Subs   []Sub
}

// Split partitions the workload over a fresh ring. withOps materializes
// per-shard Op slices (required for the per-operation replay path);
// without it, batchable parent traces are split in packed form only.
// Callers should prefer the cached For.
func Split(w *ycsb.Workload, shards, vnodes int, withOps bool) (*Partition, error) {
	ring, err := NewRing(shards, vnodes)
	if err != nil {
		return nil, err
	}
	nrec := len(w.Dataset.Records)
	p := &Partition{
		Shards:       shards,
		VirtualNodes: vnodes,
		Assign:       make([]int32, nrec),
		Subs:         make([]Sub, shards),
	}

	// Pass 1: assign records to shards and build the local index map.
	local := make([]int32, nrec) // global index → shard-local index
	counts := make([]int, shards)
	for g := 0; g < nrec; g++ {
		s := ring.Owner(uint32(g))
		p.Assign[g] = int32(s)
		local[g] = int32(counts[s])
		counts[s]++
	}
	datasets := make([]ycsb.Dataset, shards)
	for s := range datasets {
		datasets[s].Records = make([]ycsb.Record, 0, counts[s])
		p.Subs[s].GlobalIndex = make([]int32, 0, counts[s])
	}
	for g, rec := range w.Dataset.Records {
		s := p.Assign[g]
		datasets[s].Records = append(datasets[s].Records, rec)
		datasets[s].TotalBytes += int64(rec.Size)
		p.Subs[s].GlobalIndex = append(p.Subs[s].GlobalIndex, int32(g))
	}

	// Pass 2: split the trace, preserving per-shard op order. A
	// stream-backed parent is spooled into per-shard .mtrc temp files
	// (O(frame) memory, stream.go); withOps is moot there — a streamed
	// sub falls back per-op frame by frame on its own. A batchable
	// parent without the ops requirement is split in packed form only
	// (one uint32+uint8 per op instead of a 16-byte Op).
	if w.Stream != nil {
		if err := splitStream(w, p, datasets, local); err != nil {
			return nil, err
		}
		return p, nil
	}
	pt := w.Packed()
	if pt.Batchable() && !withOps {
		perShard := make([]int, shards)
		for _, k := range pt.Keys {
			perShard[p.Assign[k]]++
		}
		keys := make([][]uint32, shards)
		kinds := make([][]uint8, shards)
		for s := range keys {
			keys[s] = make([]uint32, 0, perShard[s])
			kinds[s] = make([]uint8, 0, perShard[s])
		}
		for i, k := range pt.Keys {
			s := p.Assign[k]
			keys[s] = append(keys[s], uint32(local[k]))
			kinds[s] = append(kinds[s], pt.Kinds[i])
		}
		for s := range p.Subs {
			p.Subs[s].Requests = len(keys[s])
			p.Subs[s].W = ycsb.FromPacked(subSpec(w.Spec, s, counts[s], len(keys[s])), datasets[s], keys[s], kinds[s])
		}
		return p, nil
	}
	if w.Ops == nil && w.RequestCount() > 0 {
		return nil, fmt.Errorf("shard: parent trace is packed-only but per-op replay was requested")
	}

	perShard := make([]int, shards)
	for _, op := range w.Ops {
		perShard[p.Assign[op.Key]]++
	}
	ops := make([][]ycsb.Op, shards)
	for s := range ops {
		ops[s] = make([]ycsb.Op, 0, perShard[s])
	}
	for _, op := range w.Ops {
		s := p.Assign[op.Key]
		ops[s] = append(ops[s], ycsb.Op{Key: int(local[op.Key]), Kind: op.Kind})
	}
	for s := range p.Subs {
		p.Subs[s].Requests = len(ops[s])
		p.Subs[s].W = &ycsb.Workload{
			Spec:    subSpec(w.Spec, s, counts[s], len(ops[s])),
			Dataset: datasets[s],
			Ops:     ops[s],
		}
	}
	return p, nil
}

// subSpec derives a shard-local workload spec: same distribution
// metadata, shard-suffixed name, local dimensions.
func subSpec(spec ycsb.Spec, s, keys, requests int) ycsb.Spec {
	spec.Name = fmt.Sprintf("%s#s%d", spec.Name, s)
	spec.Keys = keys
	spec.Requests = requests
	return spec
}

// Requests sums the per-shard trace lengths (== the parent trace
// length; partitioning drops nothing).
func (p *Partition) Requests() int {
	total := 0
	for i := range p.Subs {
		total += p.Subs[i].Requests
	}
	return total
}

// HotShardSpread reports, for the hottest `hot` keys of the parent
// trace (by access count, ties to the lower index), how many distinct
// shards serve them — the guard observable against a skewed hot set
// collapsing onto one shard, and against "every shard equally hot"
// being assumed rather than measured.
func (p *Partition) HotShardSpread(reads, writes []int, hot int) int {
	type keyCount struct{ key, count int }
	ranked := make([]keyCount, len(reads))
	for i := range reads {
		ranked[i] = keyCount{key: i, count: reads[i] + writes[i]}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].count != ranked[j].count {
			return ranked[i].count > ranked[j].count
		}
		return ranked[i].key < ranked[j].key
	})
	if hot > len(ranked) {
		hot = len(ranked)
	}
	seen := make(map[int32]bool, p.Shards)
	for _, r := range ranked[:hot] {
		seen[p.Assign[r.key]] = true
	}
	return len(seen)
}

// partitionCache memoizes partitions à la the workload's sync.Once
// packing: repeated executions of one workload at one cluster shape
// (every repetition of ExecuteMean, every validation point) split the
// trace once, and concurrent callers share one build. The cache is
// keyed by workload identity plus cluster shape; a small FIFO bound
// keeps dead workloads from pinning multi-GB partitions.
type cacheKey struct {
	w       *ycsb.Workload
	shards  int
	vnodes  int
	withOps bool
}

type cacheEntry struct {
	once sync.Once
	p    *Partition
	err  error
}

var cache = struct {
	sync.Mutex
	m     map[cacheKey]*cacheEntry
	order []cacheKey
}{m: map[cacheKey]*cacheEntry{}}

// cacheLimit bounds the number of retained partitions (FIFO eviction).
// Evicting a partition still in use is harmless — the caller's pointer
// keeps it alive; only the memoization is lost.
const cacheLimit = 8

// For returns the cached partition of w at the given cluster shape,
// splitting at most once per (workload, shards, vnodes, withOps).
// vnodes ≤ 0 uses DefaultVirtualNodes (the normalized value also keys
// the cache, so explicit 64 and default hit the same entry).
func For(w *ycsb.Workload, shards, vnodes int, withOps bool) (*Partition, error) {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	key := cacheKey{w: w, shards: shards, vnodes: vnodes, withOps: withOps}
	cache.Lock()
	e, ok := cache.m[key]
	if !ok {
		e = &cacheEntry{}
		cache.m[key] = e
		cache.order = append(cache.order, key)
		for len(cache.order) > cacheLimit {
			delete(cache.m, cache.order[0])
			cache.order = cache.order[1:]
		}
	}
	cache.Unlock()
	e.once.Do(func() { e.p, e.err = Split(w, shards, vnodes, withOps) })
	return e.p, e.err
}
