package shard

import (
	"fmt"
	"io"
	"os"

	"mnemo/internal/trace"
	"mnemo/internal/ycsb"
)

// splitStream partitions a stream-backed parent trace without ever
// materializing it. Pass A counts each shard's requests (the .mtrc
// header declares its total up front); pass B spools each shard's ops —
// remapped to shard-local record indices — into a per-shard temp .mtrc
// file. Each spool is unlinked as soon as it is reopened: the open
// descriptor keeps it readable for the life of the sub-workload and the
// OS reclaims the space when the partition is collected or the process
// exits, so no files are left behind. Sub-streams satisfy the
// TraceStream contract (independent, repeatable iteration), which is
// what lets shard retries and straggler hedges re-run their slice.
//
// Resident memory is O(records + frame) regardless of trace length —
// the same bound as the unsharded streamed replay.
func splitStream(w *ycsb.Workload, p *Partition, datasets []ycsb.Dataset, local []int32) error {
	shards := p.Shards

	// Pass A: per-shard request counts.
	perShard := make([]int, shards)
	it, err := w.Stream.Frames()
	if err != nil {
		return fmt.Errorf("shard: opening parent stream: %w", err)
	}
	for {
		keys, _, _, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("shard: counting parent stream: %w", err)
		}
		for _, k := range keys {
			perShard[p.Assign[k]]++
		}
	}

	// Pass B: spool each non-empty shard's slice. paths[s] tracks spool
	// files not yet unlinked; on any error every one of them is removed.
	writers := make([]*trace.Writer, shards)
	paths := make([]string, shards)
	fail := func(err error) error {
		for s := range writers {
			if writers[s] != nil {
				writers[s].Close()
			}
			if paths[s] != "" {
				os.Remove(paths[s])
			}
		}
		return err
	}
	for s := 0; s < shards; s++ {
		if len(datasets[s].Records) == 0 {
			continue // recordless shard: no ops can route here
		}
		f, err := os.CreateTemp("", "mnemo-shard-*.mtrc")
		if err != nil {
			return fail(fmt.Errorf("shard: spool file: %w", err))
		}
		paths[s] = f.Name()
		f.Close()
		spec := subSpec(w.Spec, s, len(datasets[s].Records), perShard[s])
		writers[s], err = trace.CreateDataset(paths[s], spec.Name, &datasets[s], uint64(perShard[s]))
		if err != nil {
			return fail(fmt.Errorf("shard: spool writer: %w", err))
		}
	}
	it, err = w.Stream.Frames()
	if err != nil {
		return fail(fmt.Errorf("shard: reopening parent stream: %w", err))
	}
	var k1 [1]uint32
	var d1 [1]uint8
	for {
		keys, kinds, _, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fail(fmt.Errorf("shard: splitting parent stream: %w", err))
		}
		for i, k := range keys {
			s := p.Assign[k]
			k1[0] = uint32(local[k])
			d1[0] = kinds[i]
			if err := writers[s].Append(k1[:], d1[:]); err != nil {
				return fail(fmt.Errorf("shard: spooling shard %d: %w", s, err))
			}
		}
	}

	for s := 0; s < shards; s++ {
		p.Subs[s].Requests = perShard[s]
		if writers[s] == nil {
			p.Subs[s].W = &ycsb.Workload{
				Spec:    subSpec(w.Spec, s, 0, 0),
				Dataset: datasets[s],
			}
			continue
		}
		wr := writers[s]
		writers[s] = nil
		if err := wr.Close(); err != nil {
			return fail(fmt.Errorf("shard: finishing spool %d: %w", s, err))
		}
		f, err := trace.OpenFile(paths[s])
		if err != nil {
			return fail(fmt.Errorf("shard: reopening spool %d: %w", s, err))
		}
		os.Remove(paths[s]) // unlinked; the descriptor keeps it readable
		paths[s] = ""
		p.Subs[s].W = &ycsb.Workload{
			Spec:    subSpec(w.Spec, s, len(datasets[s].Records), perShard[s]),
			Dataset: datasets[s],
			Stream:  f.Stream(),
		}
	}
	return nil
}
