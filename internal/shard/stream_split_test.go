package shard

// In-package test of splitStream: partitioning a stream-backed (.mtrc)
// parent must spool per-shard sub-streams that cover the parent trace
// exactly, in per-shard order, remapped to shard-local indices, and
// each sub-stream must be independently re-iterable (the contract shard
// retries and straggler hedges rely on). End-to-end streamed-sharded
// replay equivalence lives in internal/client/stream_test.go.

import (
	"path/filepath"
	"testing"

	"mnemo/internal/kvstore"
	"mnemo/internal/trace"
	"mnemo/internal/ycsb"
)

func TestSplitStreamCoversParent(t *testing.T) {
	parent := ycsb.MustGenerate(ycsb.Spec{
		Name: "sst", Keys: 600, Requests: 12_000,
		Dist:      ycsb.DistSpec{Kind: ycsb.Zipfian, Theta: 0.99},
		ReadRatio: 0.9, Sizes: ycsb.SizeFixed1KB, Seed: 17,
	})
	// Sprinkle Deletes so sub-traces carry structural frames too.
	for i := 40; i < len(parent.Ops); i += 131 {
		parent.Ops[i].Kind = kvstore.Delete
	}
	path := filepath.Join(t.TempDir(), "parent.mtrc")
	if err := trace.WriteWorkload(parent, path); err != nil {
		t.Fatal(err)
	}
	w, err := trace.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if w.Stream == nil {
		t.Fatal("opened trace is not stream-backed")
	}

	const shards = 3
	p, err := Split(w, shards, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if p.Requests() != len(parent.Ops) {
		t.Fatalf("partition carries %d requests, parent has %d", p.Requests(), len(parent.Ops))
	}

	// Expected per-shard subsequences from the parent trace.
	local := make([]int32, len(parent.Dataset.Records))
	counts := make([]int, shards)
	for g := range local {
		s := p.Assign[g]
		local[g] = int32(counts[s])
		counts[s]++
	}
	wantKeys := make([][]int, shards)
	wantKinds := make([][]kvstore.OpKind, shards)
	for _, op := range parent.Ops {
		s := p.Assign[op.Key]
		wantKeys[s] = append(wantKeys[s], int(local[op.Key]))
		wantKinds[s] = append(wantKinds[s], op.Kind)
	}

	for s, sub := range p.Subs {
		if sub.W.Stream == nil {
			t.Fatalf("shard %d sub-workload is not stream-backed", s)
		}
		if sub.Requests != len(wantKeys[s]) {
			t.Fatalf("shard %d carries %d requests, want %d", s, sub.Requests, len(wantKeys[s]))
		}
		// Two passes: the sub-stream must be re-iterable from the start.
		for pass := 0; pass < 2; pass++ {
			i := 0
			err := sub.W.ForEachOp(func(key int, kind kvstore.OpKind) {
				if i < len(wantKeys[s]) && (key != wantKeys[s][i] || kind != wantKinds[s][i]) {
					t.Fatalf("shard %d pass %d op %d = (%d,%v), want (%d,%v)",
						s, pass, i, key, kind, wantKeys[s][i], wantKinds[s][i])
				}
				i++
			})
			if err != nil {
				t.Fatal(err)
			}
			if i != len(wantKeys[s]) {
				t.Fatalf("shard %d pass %d yielded %d ops, want %d", s, pass, i, len(wantKeys[s]))
			}
		}
	}
}
