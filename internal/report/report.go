// Package report renders the experiment harness's output: fixed-width
// text tables for the paper's tables and ASCII line plots for its
// figures, so `mnemo-bench` can regenerate every table and figure on a
// terminal without plotting dependencies.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple fixed-width text table.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// trimFloat renders floats compactly with four significant decimals.
func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// Render writes the table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Series is one labeled line of an ASCII plot.
type Series struct {
	Label string
	X, Y  []float64
}

// Plot renders one or more series into a width×height character grid
// with shared axes. Each series gets a distinct marker.
func Plot(w io.Writer, title, xlabel, ylabel string, width, height int, series ...Series) error {
	if width < 16 || height < 4 {
		return fmt.Errorf("report: plot area %dx%d too small", width, height)
	}
	if len(series) == 0 {
		return fmt.Errorf("report: no series to plot")
	}
	markers := []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}
	minX, maxX, minY, maxY := rangeOf(series)
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("report: series %q has mismatched lengths", s.Label)
		}
		m := markers[si%len(markers)]
		for i := range s.X {
			col := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((s.Y[i]-minY)/(maxY-minY)*float64(height-1))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = m
			}
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "== %s ==\n", title)
	}
	fmt.Fprintf(&b, "%s (top=%.4g bottom=%.4g)\n", ylabel, maxY, minY)
	for _, line := range grid {
		b.WriteByte('|')
		b.Write(line)
		b.WriteByte('\n')
	}
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	fmt.Fprintf(&b, " %s (left=%.4g right=%.4g)\n", xlabel, minX, maxX)
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Label)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func rangeOf(series []Series) (minX, maxX, minY, maxY float64) {
	first := true
	for _, s := range series {
		n := len(s.X)
		if len(s.Y) < n {
			n = len(s.Y)
		}
		for i := 0; i < n; i++ {
			if first {
				minX, maxX, minY, maxY = s.X[i], s.X[i], s.Y[i], s.Y[i]
				first = false
				continue
			}
			if s.X[i] < minX {
				minX = s.X[i]
			}
			if s.X[i] > maxX {
				maxX = s.X[i]
			}
			if s.Y[i] < minY {
				minY = s.Y[i]
			}
			if s.Y[i] > maxY {
				maxY = s.Y[i]
			}
		}
	}
	return minX, maxX, minY, maxY
}

// FormatBytes renders a byte count with a binary unit suffix.
func FormatBytes(b int64) string {
	const unit = 1024
	if b < unit {
		return fmt.Sprintf("%d B", b)
	}
	div, exp := int64(unit), 0
	for n := b / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB", float64(b)/float64(div), "KMGTPE"[exp])
}
