package report

import (
	"bytes"
	"strings"
	"testing"

	"mnemo/internal/obs"
)

func populatedSink() *obs.Sink {
	sink := obs.NewSink()
	sink.Counter("mnemo_client_runs_total").Add(4)
	sink.Gauge("mnemo_pool_workers_busy").Set(0)
	sink.Histogram("mnemo_stage_wall_seconds", []float64{0.01, 0.1, 1}).Observe(0.05)
	span := sink.StartSpan("measure")
	span.End(0)
	sink.Event(obs.EventTimeout, "client", "run cut off", 0)
	return sink
}

func TestWriteObsSection(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteObsSection(&buf, populatedSink()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"== run timeline ==",
		"span_started",
		"span_finished",
		"timeout",
		"== metrics ==",
		"mnemo_client_runs_total",
		"mnemo_stage_wall_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("section missing %q:\n%s", want, out)
		}
	}
}

func TestWriteObsSectionNilSink(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteObsSection(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil sink rendered %q", buf.String())
	}
}

func TestObsTimelineElision(t *testing.T) {
	sink := obs.NewSink()
	for i := 0; i < maxTimelineEvents+10; i++ {
		sink.Event(obs.EventRetry, "client", "again", 0)
	}
	var buf bytes.Buffer
	if err := ObsTimeline(&buf, sink); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "10 more events elided") {
		t.Errorf("missing elision summary:\n%s", buf.String())
	}
}

func TestObsHTMLSection(t *testing.T) {
	sec, ok := ObsHTMLSection(populatedSink())
	if !ok {
		t.Fatal("populated sink produced no section")
	}
	if sec.Heading != "Observability" || sec.Table == nil {
		t.Fatalf("unexpected section: %+v", sec)
	}
	if len(sec.Paragraphs) == 0 || !strings.Contains(sec.Paragraphs[0], "journal events") {
		t.Errorf("missing journal summary paragraph: %v", sec.Paragraphs)
	}
	if _, ok := ObsHTMLSection(nil); ok {
		t.Error("nil sink produced a section")
	}
}
