package report

import "fmt"

// AdaptiveRow is one policy's measured outcome in the adaptive-vs-static
// comparison, prepared by the caller (runtime and migration cost in
// simulated nanoseconds).
type AdaptiveRow struct {
	Policy        string
	Adaptive      bool
	RuntimeNs     float64
	ThroughputOps float64
	Epochs        int
	Moves         int
	MigratedBytes int64
	MigrationNs   float64
}

// AdaptiveEpochSeries is one adaptive policy's per-epoch migration
// traffic, indexed by epoch.
type AdaptiveEpochSeries struct {
	Policy string
	// Epoch/Bytes/CostNs are parallel: payload bytes migrated and
	// simulated cost charged at each epoch boundary.
	Epoch  []float64
	Bytes  []float64
	CostNs []float64
}

// AdaptiveSection builds the adaptive-tiering block of the HTML report:
// a table of every policy's measured runtime under one shared FastMem
// budget (migration cost included for adaptive rows) and a chart of
// per-epoch migration traffic for the adaptive policies.
func AdaptiveSection(rows []AdaptiveRow, epochs []AdaptiveEpochSeries) HTMLSection {
	sec := HTMLSection{
		Heading: "Adaptive tiering",
		Paragraphs: []string{
			"Every policy serves the same drifting workload under the same " +
				"FastMem byte budget. Static policies keep their initial " +
				"placement; adaptive policies migrate records at epoch " +
				"boundaries, with the copy time charged on the simulated clock.",
		},
	}
	if len(rows) == 0 {
		sec.Paragraphs = append(sec.Paragraphs, "No adaptive comparison was run.")
		return sec
	}
	table := NewTable("", "policy", "mode", "runtime (ms)", "ops/s",
		"epochs", "moves", "migrated (KiB)", "migration cost (µs)")
	for _, r := range rows {
		mode := "static"
		if r.Adaptive {
			mode = "adaptive"
		}
		table.AddRow(r.Policy, mode,
			fmt.Sprintf("%.3f", r.RuntimeNs/1e6),
			fmt.Sprintf("%.0f", r.ThroughputOps),
			fmt.Sprintf("%d", r.Epochs), fmt.Sprintf("%d", r.Moves),
			fmt.Sprintf("%.1f", float64(r.MigratedBytes)/1024),
			fmt.Sprintf("%.1f", r.MigrationNs/1e3))
	}
	sec.Table = table
	if len(epochs) > 0 {
		chart := &Chart{XLabel: "epoch", YLabel: "migrated KiB"}
		for _, s := range epochs {
			kib := make([]float64, len(s.Bytes))
			for i, b := range s.Bytes {
				kib[i] = b / 1024
			}
			chart.Series = append(chart.Series, Series{Label: s.Policy, X: s.Epoch, Y: kib})
		}
		sec.Chart = chart
	}
	return sec
}
