package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestHTMLReportRender(t *testing.T) {
	tb := NewTable("Baselines", "metric", "value")
	tb.AddRow("fast ops/s", 8064.0)
	tb.AddRow("slow <ops>", "5826 & more") // must be escaped
	rep := &HTMLReport{
		Title: "Mnemo report <test>",
		Sections: []HTMLSection{
			{
				Heading:    "Overview",
				Paragraphs: []string{"The advised sizing saves 64%."},
				Table:      tb,
			},
			{
				Heading: "Curve",
				Chart: &Chart{
					XLabel: "cost", YLabel: "ops/s",
					Series: []Series{
						{Label: "estimate", X: []float64{0.2, 0.5, 1}, Y: []float64{5800, 7300, 8100}},
						{Label: "measured", X: []float64{0.2, 1}, Y: []float64{5826, 8064}},
					},
				},
			},
		},
	}
	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html>",
		"Mnemo report &lt;test&gt;", // title escaped
		"slow &lt;ops&gt;",          // cell escaped
		"5826 &amp; more",
		"<svg", "polyline", "estimate", "measured",
		"The advised sizing saves 64%.",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("html missing %q", want)
		}
	}
}

func TestTableHTMLEscapes(t *testing.T) {
	tb := NewTable("<cap>", "h<1>")
	tb.AddRow("<script>alert(1)</script>")
	out := string(tb.HTML())
	if strings.Contains(out, "<script>") {
		t.Fatal("unescaped script tag")
	}
	if !strings.Contains(out, "&lt;cap&gt;") || !strings.Contains(out, "h&lt;1&gt;") {
		t.Error("caption/header not escaped")
	}
}

func TestChartSVGErrors(t *testing.T) {
	if _, err := (&Chart{}).SVG(); err == nil {
		t.Error("empty chart accepted")
	}
	c := &Chart{Width: 10, Height: 10, Series: []Series{{Label: "x", X: []float64{1}, Y: []float64{1}}}}
	if _, err := c.SVG(); err == nil {
		t.Error("tiny chart accepted")
	}
	ragged := &Chart{Series: []Series{{Label: "x", X: []float64{1, 2}, Y: []float64{1}}}}
	if _, err := ragged.SVG(); err == nil {
		t.Error("ragged series accepted")
	}
}

func TestChartSVGConstantSeries(t *testing.T) {
	c := &Chart{Series: []Series{{Label: "flat", X: []float64{1, 1}, Y: []float64{5, 5}}}}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(svg), "polyline") {
		t.Fatal("no polyline")
	}
}

func TestHTMLReportEmptySections(t *testing.T) {
	rep := &HTMLReport{Title: "empty"}
	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
}
