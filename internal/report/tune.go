package report

import (
	"fmt"
	"io"
	"strconv"
)

// CatalogParam is one tunable parameter of a policy, prepared by the
// caller for catalog rendering (-list-policies).
type CatalogParam struct {
	Name         string
	Min, Max     float64
	Default      float64
	Integer, Log bool
	Description  string
}

// CatalogEntry is one policy of the catalog: its description plus its
// tunable parameter space (empty for fixed policies).
type CatalogEntry struct {
	Name        string
	Description string
	Params      []CatalogParam
}

// PolicyCatalog renders the tiering-policy catalog the CLIs print for
// -list-policies: one line per policy, then one indented line per
// tunable parameter showing bounds, scale and default — the search
// space cmd/mnemo-tune explores and Options.PolicyParams accepts.
func PolicyCatalog(w io.Writer, entries []CatalogEntry) error {
	for _, e := range entries {
		if _, err := fmt.Fprintf(w, "%-14s %s\n", e.Name, e.Description); err != nil {
			return err
		}
		for _, p := range e.Params {
			scale := ""
			if p.Integer {
				scale += " int"
			}
			if p.Log {
				scale += " log"
			}
			bounds := fmt.Sprintf("[%s, %s]%s", formatParamValue(p.Min), formatParamValue(p.Max), scale)
			if _, err := fmt.Fprintf(w, "  %-12s %-16s default %-8s %s\n",
				p.Name, bounds, formatParamValue(p.Default), p.Description); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatParamValue prints a bound or default compactly (no trailing
// zeros, integers without a decimal point).
func formatParamValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// TuneRow is one evaluated candidate prepared for tuning-report
// rendering: the qualified policy-instance name plus its advised
// sizing under the search SLO.
type TuneRow struct {
	Policy      string
	CostFactor  float64
	Slowdown    float64
	FastBytes   int64
	KeysInFast  int
	Satisfiable bool
}

// TuneFrontierSection builds the tuning block of the HTML report: the
// cost/slowdown Pareto frontier as a chart (every non-dominated
// candidate, cheapest first), a frontier table with the winner marked,
// and the default-parameter baselines the tuned configuration is
// measured against. All candidates share one memoized baseline
// measurement, so differences are purely configuration quality.
func TuneFrontierSection(frontier, defaults []TuneRow, slo float64, measurements int64) HTMLSection {
	sec := HTMLSection{
		Heading: "Tuned configuration frontier",
		Paragraphs: []string{fmt.Sprintf(
			"Pareto frontier over %d evaluated candidates' advised sizings at the "+
				"%.0f%% slowdown SLO (%d shared baseline measurement%s): moving right "+
				"trades slowdown for memory cost. The winner is the cheapest "+
				"SLO-keeping point.",
			len(frontier), slo*100, measurements, plural(measurements)),
		},
	}
	if len(frontier) == 0 {
		sec.Paragraphs = append(sec.Paragraphs, "No candidates evaluated.")
		return sec
	}

	chart := &Chart{XLabel: "estimated slowdown vs FastMem-only", YLabel: "memory cost factor R(p)"}
	var fx, fy []float64
	for _, r := range frontier {
		fx = append(fx, r.Slowdown)
		fy = append(fy, r.CostFactor)
	}
	chart.Series = append(chart.Series, Series{Label: "frontier", X: fx, Y: fy})
	var dx, dy []float64
	for _, r := range defaults {
		dx = append(dx, r.Slowdown)
		dy = append(dy, r.CostFactor)
	}
	if len(dx) > 0 {
		chart.Series = append(chart.Series, Series{Label: "policy defaults", X: dx, Y: dy})
	}
	sec.Chart = chart

	table := NewTable("", "configuration", "cost factor", "slowdown", "FastMem", "keys in fast", "within SLO")
	for i, r := range frontier {
		name := r.Policy
		if i == 0 {
			name += "  ← winner"
		}
		table.AddRow(name, fmt.Sprintf("%.4f", r.CostFactor), fmt.Sprintf("%.4f", r.Slowdown),
			FormatBytes(r.FastBytes), r.KeysInFast, satisfiableMark(r.Satisfiable))
	}
	for _, r := range defaults {
		table.AddRow(r.Policy+"  (default)", fmt.Sprintf("%.4f", r.CostFactor),
			fmt.Sprintf("%.4f", r.Slowdown), FormatBytes(r.FastBytes), r.KeysInFast,
			satisfiableMark(r.Satisfiable))
	}
	sec.Table = table
	return sec
}

func satisfiableMark(ok bool) string {
	if ok {
		return "yes"
	}
	return "no"
}

func plural(n int64) string {
	if n == 1 {
		return ""
	}
	return "s"
}

// TuneFrontierTable renders the frontier as the CLI's stderr table,
// winner first.
func TuneFrontierTable(frontier, defaults []TuneRow, measurements int64) *Table {
	t := NewTable(
		fmt.Sprintf("tuned frontier vs policy defaults (%d baseline measurement%s)",
			measurements, plural(measurements)),
		"configuration", "cost factor", "slowdown", "FastMem")
	for i, r := range frontier {
		name := r.Policy
		if i == 0 {
			name = "* " + name
		}
		t.AddRow(name, fmt.Sprintf("%.4f", r.CostFactor),
			fmt.Sprintf("%.4f", r.Slowdown), FormatBytes(r.FastBytes))
	}
	for _, r := range defaults {
		t.AddRow(r.Policy+" (default)", fmt.Sprintf("%.4f", r.CostFactor),
			fmt.Sprintf("%.4f", r.Slowdown), FormatBytes(r.FastBytes))
	}
	return t
}
