package report

import (
	"fmt"

	"mnemo/internal/costmodel"
)

// ShardRow is one shard's slice of a consistent-hash replay cluster
// (DESIGN.md §13): how many records and bytes the ring assigned to it,
// how much of the advised FastMem sizing lands on it, and how many
// trace requests it serves. Rows are built by the caller (the report
// package knows nothing about rings or placements) so the same table
// serves experiments, cmd/mnemo and tests.
type ShardRow struct {
	Shard     int
	Keys      int
	Bytes     int64
	FastKeys  int
	FastBytes int64
	Requests  int
	// Health, when non-empty, annotates the shard's fault-domain state
	// from a degraded run ("dead: injected crash fault", "hedged", …).
	// When every row leaves it empty the table omits the health column
	// entirely, so fault-free reports render byte-identically to
	// pre-fault-domain ones.
	Health string
}

// ShardTable renders per-shard cluster layout rows with a per-shard
// cost-factor column R(p) (the shard's own fast/total byte ratio under
// the SlowMem price factor p) and a totals row. An empty shard — the
// ring assigned it no records — shows "-" for its cost factor. A
// health column appears only when some row carries a health annotation.
func ShardTable(title string, rows []ShardRow, price float64) *Table {
	withHealth := false
	for _, r := range rows {
		if r.Health != "" {
			withHealth = true
			break
		}
	}
	cols := []string{"shard", "keys", "bytes", "fast keys", "fast bytes", "requests", "cost R(p)"}
	if withHealth {
		cols = append(cols, "health")
	}
	t := NewTable(title, cols...)
	var total ShardRow
	for _, r := range rows {
		cells := []any{r.Shard, r.Keys, FormatBytes(r.Bytes), r.FastKeys, FormatBytes(r.FastBytes),
			r.Requests, shardCost(r, price)}
		if withHealth {
			h := r.Health
			if h == "" {
				h = "ok"
			}
			cells = append(cells, h)
		}
		t.AddRow(cells...)
		total.Keys += r.Keys
		total.Bytes += r.Bytes
		total.FastKeys += r.FastKeys
		total.FastBytes += r.FastBytes
		total.Requests += r.Requests
	}
	totalCells := []any{"total", total.Keys, FormatBytes(total.Bytes), total.FastKeys,
		FormatBytes(total.FastBytes), total.Requests, shardCost(total, price)}
	if withHealth {
		totalCells = append(totalCells, "")
	}
	t.AddRow(totalCells...)
	return t
}

func shardCost(r ShardRow, price float64) string {
	if r.Bytes <= 0 {
		return "-"
	}
	return trimFloat(costmodel.CostReduction(r.FastBytes, r.Bytes, price))
}

// ShardHTMLSection is the cluster-layout block of an HTML report: the
// per-shard table plus a summary paragraph calling out the provisioning
// answer (the largest per-shard FastMem requirement) and the request
// imbalance across shards.
func ShardHTMLSection(rows []ShardRow, price float64) HTMLSection {
	var maxFast int64
	minReq, maxReq := -1, 0
	for _, r := range rows {
		if r.FastBytes > maxFast {
			maxFast = r.FastBytes
		}
		if minReq < 0 || r.Requests < minReq {
			minReq = r.Requests
		}
		if r.Requests > maxReq {
			maxReq = r.Requests
		}
	}
	if minReq < 0 {
		minReq = 0
	}
	para := fmt.Sprintf(
		"The workload is partitioned across %d shard(s) by a consistent-hash ring. "+
			"Provisioning each shard with %s of FastMem satisfies the advised sizing on every shard; "+
			"per-shard request load spans %d–%d requests.",
		len(rows), FormatBytes(maxFast), minReq, maxReq)
	paras := []string{para}
	unhealthy := 0
	for _, r := range rows {
		if r.Health != "" {
			unhealthy++
		}
	}
	if unhealthy > 0 {
		paras = append(paras, fmt.Sprintf(
			"Fault domains: %d of %d shards reported degraded health during measurement "+
				"(see the health column); merged figures reweight by the surviving shards' requests.",
			unhealthy, len(rows)))
	}
	return HTMLSection{
		Heading:    "Cluster shard layout",
		Paragraphs: paras,
		Table:      ShardTable("", rows, price),
	}
}
