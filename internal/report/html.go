package report

import (
	"fmt"
	"html/template"
	"io"
	"strings"
)

// HTMLReport is a standalone self-contained HTML document: headings,
// prose, tables and SVG line charts, with no external assets — the
// shareable artifact of a consulting session (cmd/mnemo -html).
type HTMLReport struct {
	Title    string
	Sections []HTMLSection
}

// HTMLSection is one block of the document.
type HTMLSection struct {
	Heading    string
	Paragraphs []string
	Table      *Table
	Chart      *Chart
}

// Chart is an SVG line chart over one or more series.
type Chart struct {
	XLabel, YLabel string
	Series         []Series
	Width, Height  int // pixels; zero values use 640×360
}

// seriesPalette are the stroke colors cycled across chart series.
var seriesPalette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

var htmlTmpl = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>{{.Title}}</title>
<style>
body { font: 15px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 60rem; color: #222; }
h1 { border-bottom: 2px solid #444; padding-bottom: .3rem; }
h2 { margin-top: 2rem; }
table { border-collapse: collapse; margin: 1rem 0; }
th, td { border: 1px solid #bbb; padding: .3rem .7rem; text-align: left; }
th { background: #f0f0f0; }
figure { margin: 1rem 0; }
figcaption { font-size: .85em; color: #555; }
.legend span { margin-right: 1.2rem; font-size: .85em; }
</style></head><body>
<h1>{{.Title}}</h1>
{{range .Sections}}<section>
{{if .Heading}}<h2>{{.Heading}}</h2>{{end}}
{{range .Paragraphs}}<p>{{.}}</p>
{{end}}{{if .Table}}{{.Table}}{{end}}
{{if .Chart}}{{.Chart}}{{end}}
</section>
{{end}}</body></html>
`))

// Render writes the document.
func (r *HTMLReport) Render(w io.Writer) error {
	type section struct {
		Heading    string
		Paragraphs []string
		Table      template.HTML
		Chart      template.HTML
	}
	data := struct {
		Title    string
		Sections []section
	}{Title: r.Title}
	for _, s := range r.Sections {
		sec := section{Heading: s.Heading, Paragraphs: s.Paragraphs}
		if s.Table != nil {
			sec.Table = s.Table.HTML()
		}
		if s.Chart != nil {
			svg, err := s.Chart.SVG()
			if err != nil {
				return err
			}
			sec.Chart = svg
		}
		data.Sections = append(data.Sections, sec)
	}
	return htmlTmpl.Execute(w, data)
}

// HTML renders the table as an HTML fragment with cells escaped.
func (t *Table) HTML() template.HTML {
	var b strings.Builder
	b.WriteString("<table>")
	if t.title != "" {
		fmt.Fprintf(&b, "<caption>%s</caption>", template.HTMLEscapeString(t.title))
	}
	b.WriteString("<thead><tr>")
	for _, h := range t.headers {
		fmt.Fprintf(&b, "<th>%s</th>", template.HTMLEscapeString(h))
	}
	b.WriteString("</tr></thead><tbody>")
	for _, row := range t.rows {
		b.WriteString("<tr>")
		for _, cell := range row {
			fmt.Fprintf(&b, "<td>%s</td>", template.HTMLEscapeString(cell))
		}
		b.WriteString("</tr>")
	}
	b.WriteString("</tbody></table>")
	return template.HTML(b.String())
}

// SVG renders the chart as an inline SVG figure with axes and a legend.
func (c *Chart) SVG() (template.HTML, error) {
	if len(c.Series) == 0 {
		return "", fmt.Errorf("report: chart has no series")
	}
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 640
	}
	if height <= 0 {
		height = 360
	}
	const margin = 50
	plotW, plotH := float64(width-2*margin), float64(height-2*margin)
	if plotW <= 0 || plotH <= 0 {
		return "", fmt.Errorf("report: chart %dx%d too small", width, height)
	}
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return "", fmt.Errorf("report: series %q has mismatched lengths", s.Label)
		}
	}
	minX, maxX, minY, maxY := rangeOf(c.Series)
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	toX := func(x float64) float64 { return margin + (x-minX)/(maxX-minX)*plotW }
	toY := func(y float64) float64 { return float64(height-margin) - (y-minY)/(maxY-minY)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<figure><svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 %d %d" width="%d" height="%d" role="img">`,
		width, height, width, height)
	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#444"/>`,
		margin, height-margin, width-margin, height-margin)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#444"/>`,
		margin, margin, margin, height-margin)
	// Axis labels and extrema ticks.
	esc := template.HTMLEscapeString
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12" text-anchor="middle">%s</text>`,
		width/2, height-8, esc(c.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%d" font-size="12" text-anchor="middle" transform="rotate(-90 14 %d)">%s</text>`,
		height/2, height/2, esc(c.YLabel))
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10">%.3g</text>`, margin, height-margin+14, minX)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10" text-anchor="end">%.3g</text>`, width-margin, height-margin+14, maxX)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10" text-anchor="end">%.3g</text>`, margin-4, height-margin, minY)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10" text-anchor="end">%.3g</text>`, margin-4, margin+4, maxY)
	// Series polylines.
	for si, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return "", fmt.Errorf("report: series %q has mismatched lengths", s.Label)
		}
		color := seriesPalette[si%len(seriesPalette)]
		var pts strings.Builder
		for i := range s.X {
			fmt.Fprintf(&pts, "%.1f,%.1f ", toX(s.X[i]), toY(s.Y[i]))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`,
			strings.TrimSpace(pts.String()), color)
	}
	b.WriteString(`</svg><figcaption class="legend">`)
	for si, s := range c.Series {
		color := seriesPalette[si%len(seriesPalette)]
		fmt.Fprintf(&b, `<span style="color:%s">▬ %s</span>`, color, esc(s.Label))
	}
	b.WriteString(`</figcaption></figure>`)
	return template.HTML(b.String()), nil
}
