package report

import (
	"bytes"
	"strings"
	"testing"
)

func shardRowsFixture() []ShardRow {
	return []ShardRow{
		{Shard: 0, Keys: 10, Bytes: 1 << 20, FastKeys: 4, FastBytes: 1 << 18, Requests: 500},
		{Shard: 1, Keys: 12, Bytes: 3 << 20, FastKeys: 2, FastBytes: 1 << 19, Requests: 700},
		{Shard: 2}, // empty shard: the ring assigned it nothing
	}
}

func TestShardTable(t *testing.T) {
	var buf bytes.Buffer
	if err := ShardTable("layout", shardRowsFixture(), 0.2).Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"layout", "cost R(p)", "total", "1.0 MiB", "4.0 MiB", "1200"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// The empty shard renders "-" instead of panicking in the cost model.
	if !strings.Contains(out, "-") {
		t.Errorf("empty shard cost not dashed:\n%s", out)
	}
}

func TestShardCost(t *testing.T) {
	if got := shardCost(ShardRow{}, 0.2); got != "-" {
		t.Errorf("empty shard cost = %q, want -", got)
	}
	// All-fast shard costs 1; all-slow shard costs p.
	if got := shardCost(ShardRow{Bytes: 100, FastBytes: 100}, 0.2); got != "1" {
		t.Errorf("all-fast cost = %q, want 1", got)
	}
	if got := shardCost(ShardRow{Bytes: 100, FastBytes: 0}, 0.2); got != "0.2" {
		t.Errorf("all-slow cost = %q, want 0.2", got)
	}
}

func TestShardHTMLSection(t *testing.T) {
	sec := ShardHTMLSection(shardRowsFixture(), 0.2)
	if sec.Heading != "Cluster shard layout" {
		t.Errorf("heading = %q", sec.Heading)
	}
	if sec.Table == nil {
		t.Fatal("section has no table")
	}
	if len(sec.Paragraphs) != 1 {
		t.Fatalf("paragraphs = %d", len(sec.Paragraphs))
	}
	p := sec.Paragraphs[0]
	// Provisioning answer = max per-shard FastMem; request span min–max.
	for _, want := range []string{"3 shard(s)", "512.0 KiB", "0–700"} {
		if !strings.Contains(p, want) {
			t.Errorf("summary missing %q: %s", want, p)
		}
	}
}

// TestShardTableHealthColumn pins the conditional health column: it is
// absent when every row is healthy (so fault-free reports stay
// byte-identical to pre-fault-domain ones) and, once any row carries an
// annotation, renders that annotation with "ok" filled in for the rest.
func TestShardTableHealthColumn(t *testing.T) {
	var clean bytes.Buffer
	if err := ShardTable("layout", shardRowsFixture(), 0.2).Render(&clean); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(clean.String(), "health") {
		t.Errorf("healthy table grew a health column:\n%s", clean.String())
	}

	rows := shardRowsFixture()
	rows[1].Health = "dead: injected crash fault"
	var buf bytes.Buffer
	if err := ShardTable("layout", rows, 0.2).Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"health", "dead: injected crash fault", "ok"} {
		if !strings.Contains(out, want) {
			t.Errorf("annotated table missing %q:\n%s", want, out)
		}
	}

	sec := ShardHTMLSection(rows, 0.2)
	if len(sec.Paragraphs) != 2 {
		t.Fatalf("degraded section paragraphs = %d, want 2", len(sec.Paragraphs))
	}
	if !strings.Contains(sec.Paragraphs[1], "1 of 3 shards") {
		t.Errorf("fault-domain summary: %s", sec.Paragraphs[1])
	}
}

func TestShardHTMLSectionEmpty(t *testing.T) {
	sec := ShardHTMLSection(nil, 0.2)
	if !strings.Contains(sec.Paragraphs[0], "0 shard(s)") {
		t.Errorf("empty layout summary: %s", sec.Paragraphs[0])
	}
}
