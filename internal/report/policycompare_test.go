package report

import (
	"strings"
	"testing"
)

func TestPolicyComparisonSection(t *testing.T) {
	sec := PolicyComparisonSection([]PolicySeries{
		{Policy: "touch", X: []float64{0.2, 1}, Y: []float64{100, 200}, AdvisedCost: 0.5, AdvisedSavings: 0.5},
		{Policy: "mnemot", X: []float64{0.2, 1}, Y: []float64{150, 200}, AdvisedCost: 0.4, AdvisedSavings: 0.6},
		{Policy: "noslo", X: []float64{0.2, 1}, Y: []float64{120, 200}, AdvisedCost: -1},
	})
	if sec.Chart == nil || len(sec.Chart.Series) != 3 {
		t.Fatal("comparison chart missing series")
	}
	doc := &HTMLReport{Title: "t", Sections: []HTMLSection{sec}}
	var sb strings.Builder
	if err := doc.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Policy comparison", "touch", "mnemot", "0.400", "60.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered comparison lacks %q", want)
		}
	}
	// The no-advice row renders dashes, not a bogus cost.
	if !strings.Contains(out, "noslo") {
		t.Error("no-advice policy row missing")
	}

	empty := PolicyComparisonSection(nil)
	if empty.Chart != nil {
		t.Error("empty comparison grew a chart")
	}
	doc = &HTMLReport{Title: "t", Sections: []HTMLSection{empty}}
	sb.Reset()
	if err := doc.Render(&sb); err != nil {
		t.Fatal(err)
	}
}
