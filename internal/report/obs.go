package report

import (
	"fmt"
	"io"
	"strings"
	"time"

	"mnemo/internal/obs"
)

// maxTimelineEvents bounds the timeline rendering; a chaotic sweep can
// journal thousands of events, and a report wants the shape, not the log.
const maxTimelineEvents = 64

// ObsMetricsTable tabulates a sink's metric snapshot (counters and
// gauges by name; histograms as count/mean). Returns nil when the sink
// is nil or has recorded nothing.
func ObsMetricsTable(sink *obs.Sink) *Table {
	snap := sink.Registry().Snapshot()
	if len(snap) == 0 {
		return nil
	}
	t := NewTable("metrics", "metric", "kind", "value")
	for _, m := range snap {
		val := trimFloat(m.Value)
		if m.Kind == "histogram" && m.Hist != nil && m.Hist.Count > 0 {
			val = fmt.Sprintf("n=%d mean=%s", m.Hist.Count, trimFloat(m.Hist.Sum/float64(m.Hist.Count)))
		}
		t.AddRow(m.Name, m.Kind, val)
	}
	return t
}

// ObsTimeline renders the sink's run journal as a text timeline, wall
// time relative to the first retained event. Events beyond
// maxTimelineEvents are elided with a summary line, as are any the
// journal's retention cap already dropped.
func ObsTimeline(w io.Writer, sink *obs.Sink) error {
	events := sink.Journal().Events()
	if len(events) == 0 {
		return nil
	}
	var b strings.Builder
	b.WriteString("== run timeline ==\n")
	start := events[0].Wall
	shown := events
	if len(shown) > maxTimelineEvents {
		shown = shown[:maxTimelineEvents]
	}
	for _, e := range shown {
		fmt.Fprintf(&b, "%+12v  %-9s %-20s %s", e.Wall.Sub(start), e.Stage, e.Kind, e.Detail)
		if e.Sim != 0 {
			fmt.Fprintf(&b, " (sim %v)", e.Sim)
		}
		b.WriteByte('\n')
	}
	if hidden := int64(len(events)-len(shown)) + sink.Journal().Dropped(); hidden > 0 {
		fmt.Fprintf(&b, "  … %d more events elided\n", hidden)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteObsSection renders the full observability section — timeline
// followed by the metrics table. A nil or empty sink writes nothing.
func WriteObsSection(w io.Writer, sink *obs.Sink) error {
	if !sink.Enabled() {
		return nil
	}
	if err := ObsTimeline(w, sink); err != nil {
		return err
	}
	if t := ObsMetricsTable(sink); t != nil {
		return t.Render(w)
	}
	return nil
}

// ObsHTMLSection packages the observability data as a section of the
// HTML report. ok is false when there is nothing to show.
func ObsHTMLSection(sink *obs.Sink) (HTMLSection, bool) {
	t := ObsMetricsTable(sink)
	if t == nil {
		return HTMLSection{}, false
	}
	sec := HTMLSection{Heading: "Observability", Table: t}
	events := sink.Journal().Events()
	n := len(events)
	if n > 0 {
		first, last := events[0], events[n-1]
		sec.Paragraphs = append(sec.Paragraphs, fmt.Sprintf(
			"%d journal events over %v of wall time (first: %s %s, last: %s %s).",
			n, last.Wall.Sub(first.Wall).Round(time.Millisecond),
			first.Stage, first.Kind, last.Stage, last.Kind))
	}
	return sec, true
}
