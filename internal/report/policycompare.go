package report

import "fmt"

// PolicySeries is one tiering policy's estimate curve plus its advised
// sizing, prepared by the caller for comparison rendering. X/Y follow
// the estimate chart convention: memory cost factor against estimated
// throughput. AdvisedCost/AdvisedSavings describe the SLO sizing; a
// negative AdvisedCost marks "no advice" (the SLO was disabled).
type PolicySeries struct {
	Policy         string
	X, Y           []float64
	AdvisedCost    float64
	AdvisedSavings float64
}

// PolicyComparisonSection builds the per-policy comparison block of the
// HTML report: every policy's cost/throughput curve overlaid in one
// chart, plus a table of the advised sizings. All curves come from the
// same baseline measurement, so differences are purely ordering quality.
func PolicyComparisonSection(series []PolicySeries) HTMLSection {
	sec := HTMLSection{
		Heading: "Policy comparison",
		Paragraphs: []string{
			"Each curve estimates the same measured baselines under a different " +
				"tiering policy's key ordering; a higher curve reaches the same " +
				"throughput at lower memory cost.",
		},
	}
	if len(series) == 0 {
		sec.Paragraphs = append(sec.Paragraphs, "No policies to compare.")
		return sec
	}
	chart := &Chart{XLabel: "memory cost factor R(p)", YLabel: "estimated throughput (ops/s)"}
	table := NewTable("", "policy", "advised cost", "savings")
	for _, s := range series {
		chart.Series = append(chart.Series, Series{Label: s.Policy, X: s.X, Y: s.Y})
		if s.AdvisedCost < 0 {
			table.AddRow(s.Policy, "-", "-")
			continue
		}
		table.AddRow(s.Policy, fmt.Sprintf("%.3f", s.AdvisedCost),
			fmt.Sprintf("%.1f%%", s.AdvisedSavings*100))
	}
	sec.Chart = chart
	sec.Table = table
	return sec
}
