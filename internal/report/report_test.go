package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", "text")
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== Demo ==", "name", "value", "alpha", "1.5", "text"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Columns aligned: header and first row start at same offset.
	lines := strings.Split(out, "\n")
	if len(lines) < 4 {
		t.Fatal("too few lines")
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow(1)
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "==") {
		t.Error("empty title rendered")
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		1.5:    "1.5",
		2:      "2",
		0.3600: "0.36",
		0:      "0",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestPlotBasics(t *testing.T) {
	var buf bytes.Buffer
	err := Plot(&buf, "Curve", "cost", "tput", 40, 10,
		Series{Label: "measured", X: []float64{0, 1, 2}, Y: []float64{0, 1, 4}},
		Series{Label: "estimate", X: []float64{0, 1, 2}, Y: []float64{0, 1.1, 3.9}},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== Curve ==", "measured", "estimate", "*", "o", "cost", "tput"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q", want)
		}
	}
}

func TestPlotErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := Plot(&buf, "t", "x", "y", 5, 2); err == nil {
		t.Error("tiny plot accepted")
	}
	if err := Plot(&buf, "t", "x", "y", 40, 10); err == nil {
		t.Error("no series accepted")
	}
	if err := Plot(&buf, "t", "x", "y", 40, 10,
		Series{Label: "bad", X: []float64{1}, Y: []float64{1, 2}}); err == nil {
		t.Error("ragged series accepted")
	}
}

func TestPlotConstantSeries(t *testing.T) {
	var buf bytes.Buffer
	err := Plot(&buf, "flat", "x", "y", 20, 5,
		Series{Label: "c", X: []float64{1, 1}, Y: []float64{2, 2}})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		512:     "512 B",
		2048:    "2.0 KiB",
		5 << 20: "5.0 MiB",
		3 << 30: "3.0 GiB",
		1 << 40: "1.0 TiB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}
