package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one `# TYPE` line per metric family, samples
// sorted by name, histograms expanded into cumulative `_bucket{le=…}`
// series plus `_sum` and `_count`. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	typed := map[string]bool{}
	for _, m := range r.Snapshot() {
		base := baseName(m.Name)
		if !typed[base] {
			typed[base] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, m.Kind); err != nil {
				return err
			}
		}
		switch m.Kind {
		case "histogram":
			if err := writeHistogram(w, m.Name, m.Hist); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s %s\n", m.Name, formatValue(m.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistogram expands one histogram into its bucket/sum/count series.
// Labels already present in the name are merged with the le label.
func writeHistogram(w io.Writer, name string, h *HistogramSnapshot) error {
	base, labels := splitLabels(name)
	for i, bound := range h.Bounds {
		if err := writeSample(w, base+"_bucket", labels, "le", formatValue(bound),
			strconv.FormatInt(h.Cumulative[i], 10)); err != nil {
			return err
		}
	}
	if err := writeSample(w, base+"_bucket", labels, "le", "+Inf",
		strconv.FormatInt(h.Count, 10)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %s\n", base+"_sum"+wrapLabels(labels), formatValue(h.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", base+"_count"+wrapLabels(labels), h.Count)
	return err
}

func writeSample(w io.Writer, base, labels, extraKey, extraVal, value string) error {
	merged := labels
	extra := extraKey + `="` + extraVal + `"`
	if merged == "" {
		merged = extra
	} else {
		merged += "," + extra
	}
	_, err := fmt.Fprintf(w, "%s{%s} %s\n", base, merged, value)
	return err
}

// splitLabels separates `base{k="v"}` into base and the inner label text.
func splitLabels(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

func wrapLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// formatValue renders a float the way Prometheus clients do: integers
// without a decimal point, everything else in shortest round-trip form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// PublishExpvar publishes the registry under one expvar name as a JSON
// snapshot (name → value, histograms as their snapshot struct), so a
// process with an HTTP listener exposes it at /debug/vars alongside the
// runtime's memstats. Publishing the same name twice is an expvar panic,
// so PublishExpvar guards against re-registration and is a no-op on a
// nil registry.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any {
		out := map[string]any{}
		for _, m := range r.Snapshot() {
			if m.Hist != nil {
				out[m.Name] = m.Hist
			} else {
				out[m.Name] = m.Value
			}
		}
		return out
	}))
}

// ExpvarJSON renders the expvar view of the registry (the same JSON the
// published expvar.Func serves) — used by tests and the -metrics dump.
func (r *Registry) ExpvarJSON() ([]byte, error) {
	out := map[string]any{}
	for _, m := range r.Snapshot() {
		if m.Hist != nil {
			out[m.Name] = m.Hist
		} else {
			out[m.Name] = m.Value
		}
	}
	return json.MarshalIndent(out, "", "  ")
}
