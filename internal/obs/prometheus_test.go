package obs

import (
	"bytes"
	"encoding/json"
	"expvar"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestWritePrometheusGolden pins the exposition format byte for byte: a
// mixed registry (labeled counters of one family, a gauge, a histogram)
// must render exactly the checked-in golden file, so any formatting
// drift that would break a Prometheus scraper shows up as a diff.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter(Name("mnemo_server_ops_total", "engine", "redislike")).Add(120)
	r.Counter(Name("mnemo_server_ops_total", "engine", "dynamolike")).Add(30)
	r.Counter("mnemo_client_runs_total").Add(4)
	r.Gauge("mnemo_pool_workers_busy").Set(2.5)
	h := r.Histogram(Name("mnemo_stage_wall_seconds", "stage", "measure"), []float64{0.5, 1, 2})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestWritePrometheusTypeOncePerFamily checks labeled series of one
// family share a single # TYPE line.
func TestWritePrometheusTypeOncePerFamily(t *testing.T) {
	r := NewRegistry()
	r.Counter(Name("x_total", "engine", "a")).Inc()
	r.Counter(Name("x_total", "engine", "b")).Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "# TYPE x_total counter"); got != 1 {
		t.Fatalf("TYPE line appears %d times:\n%s", got, buf.String())
	}
}

func TestExpvarPublishAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("mnemo_client_runs_total").Add(7)
	r.PublishExpvar("mnemo_test_metrics")
	r.PublishExpvar("mnemo_test_metrics") // second publish must not panic

	v := expvar.Get("mnemo_test_metrics")
	if v == nil {
		t.Fatal("expvar not published")
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(v.String()), &decoded); err != nil {
		t.Fatalf("expvar JSON invalid: %v", err)
	}
	if decoded["mnemo_client_runs_total"] != 7.0 {
		t.Fatalf("expvar value = %v", decoded["mnemo_client_runs_total"])
	}

	raw, err := r.ExpvarJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"mnemo_client_runs_total": 7`) {
		t.Fatalf("ExpvarJSON = %s", raw)
	}
}
