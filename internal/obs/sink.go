package obs

import (
	"fmt"
	"time"

	"mnemo/internal/simclock"
)

// Sink bundles the three observability facilities — metric registry,
// stage tracer, run journal — behind one handle the pipeline threads
// through its configs. The nil *Sink is the uninstrumented
// configuration: every method no-ops, hands out nil metrics (themselves
// no-ops) and zero-cost spans, so instrumented code never branches on
// "is observability on" beyond the nil checks the types do internally.
type Sink struct {
	reg     *Registry
	journal *Journal
}

// NewSink creates a live sink with an empty registry and journal.
func NewSink() *Sink {
	return &Sink{reg: NewRegistry(), journal: NewJournal()}
}

// Registry returns the sink's metric registry (nil on a nil sink).
func (s *Sink) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Journal returns the sink's event journal (nil on a nil sink).
func (s *Sink) Journal() *Journal {
	if s == nil {
		return nil
	}
	return s.journal
}

// Counter resolves a counter by name (nil on a nil sink).
func (s *Sink) Counter(name string) *Counter { return s.Registry().Counter(name) }

// Gauge resolves a gauge by name (nil on a nil sink).
func (s *Sink) Gauge(name string) *Gauge { return s.Registry().Gauge(name) }

// Histogram resolves a fixed-boundary histogram by name
// (nil on a nil sink).
func (s *Sink) Histogram(name string, bounds []float64) *Histogram {
	return s.Registry().Histogram(name, bounds)
}

// Event appends a journal event (no-op on a nil sink). Callers on hot
// paths must pre-format detail strings only after checking Enabled, or
// emit events at run/stage granularity — this method is not meant for
// per-request use.
func (s *Sink) Event(kind EventKind, stage, detail string, sim simclock.Duration) {
	if s == nil {
		return
	}
	s.journal.Append(kind, stage, detail, sim)
}

// Eventf is Event with lazy formatting: the format arguments are only
// evaluated into a string when the sink is live.
func (s *Sink) Eventf(kind EventKind, stage string, sim simclock.Duration, format string, args ...any) {
	if s == nil {
		return
	}
	s.journal.Append(kind, stage, fmt.Sprintf(format, args...), sim)
}

// Enabled reports whether the sink records anything. Use it to skip
// expensive argument preparation in instrumented code.
func (s *Sink) Enabled() bool { return s != nil }

// stageDurationBounds are the wall-clock bucket upper bounds (seconds)
// of the per-stage duration histograms: 1ms to ~2min, geometric — the
// same bucketing rule internal/stats uses, at a coarser growth suited to
// stage granularity.
var stageDurationBounds = ExponentialBoundaries(0.001, 2, 18)

// Span is an in-flight stage trace. The zero Span (from a nil sink) is
// inert: End is a no-op.
type Span struct {
	sink      *Sink
	stage     string
	wallStart time.Time
}

// StartSpan opens a stage span, journaling the start event
// (inert on a nil sink).
func (s *Sink) StartSpan(stage string) Span {
	if s == nil {
		return Span{}
	}
	s.journal.Append(EventSpanStart, stage, "", 0)
	return Span{sink: s, stage: stage, wallStart: time.Now()}
}

// End closes the span: it journals the end event carrying the simulated
// duration the stage reports (0 when the stage consumed no simulated
// time) and feeds the wall-clock duration into the stage's histogram and
// counters. No-op on an inert span.
func (e Span) End(sim simclock.Duration) {
	s := e.sink
	if s == nil {
		return
	}
	wall := time.Since(e.wallStart)
	s.journal.Append(EventSpanEnd, e.stage, fmt.Sprintf("wall %v", wall.Round(time.Microsecond)), sim)
	s.reg.Counter(Name("mnemo_stage_runs_total", "stage", e.stage)).Inc()
	s.reg.Histogram(Name("mnemo_stage_wall_seconds", "stage", e.stage), stageDurationBounds).
		Observe(wall.Seconds())
	if sim != 0 {
		s.reg.Gauge(Name("mnemo_stage_sim_seconds", "stage", e.stage)).Add(sim.Seconds())
	}
}
