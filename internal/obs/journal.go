package obs

import (
	"fmt"
	"sync"
	"time"

	"mnemo/internal/simclock"
)

// EventKind classifies a journal event.
type EventKind string

// The journal's event vocabulary. Instrumented layers append these in
// the order they happen, so a journal read back is the timeline of one
// profiling run.
const (
	// EventMeasureStart / EventMeasureEnd bracket one measurement run
	// (a full trace replay against one deployment).
	EventMeasureStart EventKind = "measurement_started"
	EventMeasureEnd   EventKind = "measurement_finished"
	// EventRetry records a failed measurement attempt being retried.
	EventRetry EventKind = "retry"
	// EventOutlierRejected records a completed run dropped by the MAD
	// outlier gate.
	EventOutlierRejected EventKind = "outlier_rejected"
	// EventFault records an injected fault firing (fail, stall, outlier).
	EventFault EventKind = "fault_fired"
	// EventTimeout records a run cut off by the simulated-time budget.
	EventTimeout EventKind = "timeout"
	// EventDegraded records an aggregate folded from fewer runs than
	// requested, or a sharded run merged from fewer shards than the
	// cluster holds.
	EventDegraded EventKind = "degraded"
	// EventHedge records a straggler shard being speculatively re-run.
	EventHedge EventKind = "shard_hedged"
	// EventShardDropped records a shard dead after exhausting its
	// retries, skipped by a partial merge.
	EventShardDropped EventKind = "shard_dropped"
	// EventSpanStart / EventSpanEnd bracket a pipeline stage span.
	EventSpanStart EventKind = "span_started"
	EventSpanEnd   EventKind = "span_finished"
	// EventCacheHit records a Session stage served from its cached
	// artifact instead of recomputing.
	EventCacheHit EventKind = "cache_hit"
	// EventCurveBuilt records an estimate curve being materialized.
	EventCurveBuilt EventKind = "curve_built"
	// EventPlacement records a placement being emitted.
	EventPlacement EventKind = "placement_emitted"
	// EventPanic records a worker-pool job panic that was contained.
	EventPanic EventKind = "panic_recovered"
)

// Event is one journal entry. Wall is process wall-clock time; Sim, when
// non-zero, is the simulated duration the event reports (a run's
// simulated runtime, a span's simulated cost).
type Event struct {
	Seq    int64
	Wall   time.Time
	Kind   EventKind
	Stage  string // originating stage or subsystem ("measure", "client", "pool", …)
	Detail string
	Sim    simclock.Duration
}

// String renders the event for logs.
func (e Event) String() string {
	if e.Sim != 0 {
		return fmt.Sprintf("#%d %s %s: %s (sim %v)", e.Seq, e.Stage, e.Kind, e.Detail, e.Sim)
	}
	return fmt.Sprintf("#%d %s %s: %s", e.Seq, e.Stage, e.Kind, e.Detail)
}

// defaultJournalCap bounds journal memory: a full paper-scale profiling
// session emits tens of events, a chaotic matrix sweep a few thousand;
// beyond the cap events are counted but not retained.
const defaultJournalCap = 4096

// Journal is an append-only, bounded, ordered event log. The nil journal
// is a valid no-op. Appends are concurrency-safe; sequence numbers are
// assigned under the same lock that orders the slice, so Seq is strictly
// increasing in Events() order.
type Journal struct {
	mu      sync.Mutex
	events  []Event
	next    int64
	cap     int
	dropped int64
}

// NewJournal creates a journal retaining at most the default 4096 events.
func NewJournal() *Journal { return &Journal{cap: defaultJournalCap} }

// Append adds one event, stamping its sequence number and wall time
// (no-op on nil). Events past the retention cap are counted as dropped.
func (j *Journal) Append(kind EventKind, stage, detail string, sim simclock.Duration) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	seq := j.next
	j.next++
	if len(j.events) >= j.cap {
		j.dropped++
		return
	}
	j.events = append(j.events, Event{
		Seq: seq, Wall: time.Now(), Kind: kind, Stage: stage, Detail: detail, Sim: sim,
	})
}

// Events returns a copy of the retained events in append order
// (nil on a nil journal).
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Event(nil), j.events...)
}

// Dropped reports how many events the retention cap discarded.
func (j *Journal) Dropped() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// Len reports the number of retained events.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.events)
}
