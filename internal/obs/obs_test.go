package obs

import (
	"math"
	"sync"
	"testing"

	"mnemo/internal/simclock"
)

// TestNilSafety exercises every method on nil receivers — the zero-cost
// uninstrumented configuration the hot paths rely on.
func TestNilSafety(t *testing.T) {
	var s *Sink
	if s.Enabled() {
		t.Fatal("nil sink reports enabled")
	}
	s.Counter("c").Add(3)
	s.Counter("c").Inc()
	if got := s.Counter("c").Value(); got != 0 {
		t.Fatalf("nil counter value = %d", got)
	}
	s.Gauge("g").Set(1)
	s.Gauge("g").Add(2)
	if got := s.Gauge("g").Value(); got != 0 {
		t.Fatalf("nil gauge value = %v", got)
	}
	s.Histogram("h", []float64{1}).Observe(5)
	if snap := s.Histogram("h", []float64{1}).Snapshot(); snap.Count != 0 {
		t.Fatalf("nil histogram count = %d", snap.Count)
	}
	s.Event(EventRetry, "client", "x", 0)
	s.Eventf(EventRetry, "client", 0, "attempt %d", 1)
	s.StartSpan("measure").End(simclock.Second)
	if s.Journal().Len() != 0 || s.Journal().Dropped() != 0 || s.Journal().Events() != nil {
		t.Fatal("nil journal retained something")
	}
	if s.Registry().Snapshot() != nil {
		t.Fatal("nil registry snapshot non-nil")
	}
	var buf nopWriter
	if err := s.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	s.Registry().PublishExpvar("nil-reg")
}

type nopWriter struct{}

func (nopWriter) Write(p []byte) (int, error) { return len(p), nil }

// TestCounterConcurrent hammers one counter from many goroutines; run
// under -race this doubles as the data-race check of the atomic path.
func TestCounterConcurrent(t *testing.T) {
	s := NewSink()
	c := s.Counter("mnemo_test_total")
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("concurrent counter = %d, want %d", got, goroutines*perG)
	}
	// Get-or-create must return the same counter.
	if s.Counter("mnemo_test_total") != c {
		t.Fatal("registry handed out a second counter for one name")
	}
}

// TestGaugeAddConcurrent checks the CAS loop under contention.
func TestGaugeAddConcurrent(t *testing.T) {
	g := NewSink().Gauge("mnemo_busy")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if v := g.Value(); v != 0 {
		t.Fatalf("gauge after balanced adds = %v, want 0", v)
	}
	g.Set(2.5)
	if v := g.Value(); v != 2.5 {
		t.Fatalf("gauge set = %v, want 2.5", v)
	}
}

// TestHistogramBoundaries pins the bucket assignment at the boundary
// values themselves: Prometheus `le` semantics are inclusive, values
// above the last bound land in the +Inf bucket, and cumulative counts
// are monotone.
func TestHistogramBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 4, 4.5, 100} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	// ≤1: {0.5, 1} → 2; ≤2: +{1.0000001, 2} → 4; ≤4: +{4} → 5; +Inf: 7.
	wantCum := []int64{2, 4, 5, 7}
	for i, want := range wantCum {
		if snap.Cumulative[i] != want {
			t.Fatalf("cumulative[%d] = %d, want %d (snapshot %+v)", i, snap.Cumulative[i], want, snap)
		}
	}
	if snap.Count != 7 {
		t.Fatalf("count = %d, want 7", snap.Count)
	}
	wantSum := 0.5 + 1 + 1.0000001 + 2 + 4 + 4.5 + 100
	if math.Abs(snap.Sum-wantSum) > 1e-9 {
		t.Fatalf("sum = %v, want %v", snap.Sum, wantSum)
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {2, 1}, {1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds %v accepted", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestExponentialBoundaries(t *testing.T) {
	got := ExponentialBoundaries(100, 2, 4)
	want := []float64{100, 200, 400, 800}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", got, want)
		}
	}
}

// TestJournalOrderAndCap checks sequence ordering and the retention cap.
func TestJournalOrderAndCap(t *testing.T) {
	j := &Journal{cap: 3}
	for i := 0; i < 5; i++ {
		j.Append(EventRetry, "client", "x", 0)
	}
	evs := j.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	for i, e := range evs {
		if e.Seq != int64(i) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
		if e.Wall.IsZero() {
			t.Fatalf("event %d missing wall time", i)
		}
	}
	if j.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", j.Dropped())
	}
}

// TestSpanRecordsMetrics checks a span lands in the journal and the
// stage metric families.
func TestSpanRecordsMetrics(t *testing.T) {
	s := NewSink()
	sp := s.StartSpan("measure")
	sp.End(3 * simclock.Second)

	evs := s.Journal().Events()
	if len(evs) != 2 || evs[0].Kind != EventSpanStart || evs[1].Kind != EventSpanEnd {
		t.Fatalf("span events = %+v", evs)
	}
	if evs[1].Sim != 3*simclock.Second {
		t.Fatalf("span end sim = %v", evs[1].Sim)
	}
	if got := s.Counter(Name("mnemo_stage_runs_total", "stage", "measure")).Value(); got != 1 {
		t.Fatalf("stage run counter = %d", got)
	}
	if got := s.Gauge(Name("mnemo_stage_sim_seconds", "stage", "measure")).Value(); got != 3 {
		t.Fatalf("stage sim seconds = %v", got)
	}
}

func TestNameAndBase(t *testing.T) {
	n := Name("mnemo_server_ops_total", "engine", "redislike")
	if n != `mnemo_server_ops_total{engine="redislike"}` {
		t.Fatalf("Name = %q", n)
	}
	if baseName(n) != "mnemo_server_ops_total" {
		t.Fatalf("baseName = %q", baseName(n))
	}
	if Name("x", "", "") != "x" {
		t.Fatal("empty label must leave the base name untouched")
	}
}
