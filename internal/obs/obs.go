// Package obs is the reproduction's observability layer: a
// dependency-free metrics registry (counters, gauges, fixed-boundary
// histograms), lightweight stage tracing (spans carrying both wall-clock
// and simulated durations), and a structured run journal (the ordered
// event log of a profiling session).
//
// Everything is threaded through a *Sink, and every method on every
// type in this package is nil-safe: a nil *Sink, a nil *Counter, a nil
// *Histogram all no-op, so instrumented code calls them unconditionally
// and the uninstrumented configuration costs exactly one predictable
// nil-check branch per call site. The replay fast path relies on this —
// with no sink configured it must stay allocation-free
// (TestReplaySteadyStateZeroAllocs), and with a live sink the simulated
// measurements must stay bit-identical, which holds because nothing in
// this package ever touches the simulation's clock, RNG streams or
// accumulators.
//
// Metric names follow the Prometheus convention (snake_case, _total
// suffix on counters); a single optional label is encoded into the name
// with Name, e.g. Name("mnemo_server_ops_total", "engine", "redislike")
// → `mnemo_server_ops_total{engine="redislike"}`. DESIGN.md §11 has the
// full metric catalog.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The nil counter is a
// valid no-op, so callers hold pre-resolved *Counter fields and Add
// unconditionally.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (no-op on nil).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one (no-op on nil).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down, stored as a float64.
// The nil gauge is a valid no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v (no-op on nil).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add atomically adds d to the gauge (no-op on nil).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-boundary cumulative histogram in the Prometheus
// mold: Observe(v) increments every bucket whose upper bound is ≥ v
// lazily at exposition time (counts are stored per-bucket and summed
// cumulatively when read). The nil histogram is a valid no-op.
//
// Boundaries are fixed at construction; ExponentialBoundaries derives
// them from the same geometric bucketing internal/stats uses for its
// latency histograms, so observability and measurement histograms share
// one geometry.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf bucket is implicit
	mu     sync.Mutex
	counts []int64 // len(bounds)+1, last is the overflow bucket
	sum    float64
	n      int64
}

// NewHistogram builds a histogram with the given ascending bucket upper
// bounds. It panics on unsorted or empty boundaries.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one boundary")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram boundaries not ascending at %d: %v ≤ %v",
				i, bounds[i], bounds[i-1]))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
	}
}

// ExponentialBoundaries returns n geometric bucket upper bounds starting
// at min and growing by the given factor — the boundary rule of
// internal/stats.NewHistogram(min, growth), truncated to a fixed bucket
// count as Prometheus exposition requires.
func ExponentialBoundaries(min, growth float64, n int) []float64 {
	if min <= 0 || growth <= 1 || n <= 0 {
		panic("obs: exponential boundaries need min > 0, growth > 1, n > 0")
	}
	out := make([]float64, n)
	v := min
	for i := range out {
		out[i] = v
		v *= growth
	}
	return out
}

// Observe records one value (no-op on nil).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound ≥ v; the overflow bucket is
	// len(bounds).
	idx := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[idx]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// Snapshot returns the histogram's cumulative bucket counts (one per
// boundary, plus the +Inf total), sum and count.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := make([]int64, len(h.counts))
	var running int64
	for i, c := range h.counts {
		running += c
		cum[i] = running
	}
	return HistogramSnapshot{
		Bounds:     append([]float64(nil), h.bounds...),
		Cumulative: cum,
		Sum:        h.sum,
		Count:      h.n,
	}
}

// HistogramSnapshot is a point-in-time view of a Histogram.
// Cumulative[i] counts observations ≤ Bounds[i]; the final entry is the
// total (the +Inf bucket).
type HistogramSnapshot struct {
	Bounds     []float64
	Cumulative []int64
	Sum        float64
	Count      int64
}

// Name encodes one optional label pair into a metric name,
// Prometheus-style: Name("x_total", "engine", "redislike") is
// `x_total{engine="redislike"}`. The registry keys metrics by this full
// string; the exposition writer groups families by the base name.
func Name(base, label, value string) string {
	if label == "" {
		return base
	}
	return base + `{` + label + `="` + value + `"}`
}

// baseName strips the label portion of a metric name.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// Registry is a concurrency-safe name-keyed metric store. Metrics are
// created on first use and live for the registry's lifetime; get-or-
// create is idempotent, so call sites simply ask for the name they want.
// The nil registry hands out nil metrics, which are themselves no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use
// (nil on a nil registry).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use
// (nil on a nil registry).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named fixed-boundary histogram, creating it with
// the given boundaries on first use (nil on a nil registry). Boundaries
// of an existing histogram are not rechecked; first creation wins.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Metric is one name/value pair of a registry snapshot.
type Metric struct {
	Name  string
	Kind  string // "counter", "gauge" or "histogram"
	Value float64
	Hist  *HistogramSnapshot // set for histograms only
}

// Snapshot returns every registered metric sorted by name — the stable
// order the exposition writer and the report tables render in.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Kind: "counter", Value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, Metric{Name: name, Kind: "gauge", Value: g.Value()})
	}
	for name, h := range r.hists {
		snap := h.Snapshot()
		out = append(out, Metric{Name: name, Kind: "histogram", Value: float64(snap.Count), Hist: &snap})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
