// Package tiering implements a *generic* data-tiering profiler of the
// kind Mnemo's deployment mode 2b consumes (Fig 2b): an
// application-agnostic tool in the mold of OS-level and PEBS-based
// tiering systems that observes memory accesses at page granularity via
// hardware sampling, ranks pages by access density, and emits a
// DRAM-priority ordering.
//
// Unlike MnemoT's Pattern Engine — which computes exact per-key weights
// from the workload description alone — a generic profiler sees only
// sampled physical accesses. The reproduction models that faithfully:
// records are laid out in a virtual address space, each request touches
// the record's pages, and each page touch is observed with probability
// 1/rate. Low sampling rates are cheap but blur the hot/cold boundary;
// the ModeB experiment quantifies the resulting ordering-quality loss
// against MnemoT.
package tiering

import (
	"fmt"
	"math/rand"
	"sort"

	"mnemo/internal/kvstore"
	"mnemo/internal/ycsb"
)

// PageSize is the profiling granularity (4 KiB pages, the x86 default
// that OS-level tiering systems track).
const PageSize = 4096

// AddressSpace lays a dataset's records out contiguously in a virtual
// address space so page-level observations can be attributed back to
// records.
type AddressSpace struct {
	starts []int64 // byte offset of each record, index-aligned with the dataset
	ends   []int64
	total  int64
}

// NewAddressSpace builds the layout for a dataset, padding each record
// to page alignment the way slab-backed stores place large values.
func NewAddressSpace(ds ycsb.Dataset) *AddressSpace {
	s := &AddressSpace{
		starts: make([]int64, len(ds.Records)),
		ends:   make([]int64, len(ds.Records)),
	}
	var cursor int64
	for i, rec := range ds.Records {
		s.starts[i] = cursor
		size := int64(rec.Size)
		// Page-align each record: generic profilers cannot see two
		// records sharing a page apart, so stores avoid it for large
		// values.
		pages := (size + PageSize - 1) / PageSize
		if pages == 0 {
			pages = 1
		}
		cursor += pages * PageSize
		s.ends[i] = cursor
	}
	s.total = cursor
	return s
}

// Pages reports the record's page span.
func (s *AddressSpace) Pages(record int) (first, count int64) {
	first = s.starts[record] / PageSize
	count = (s.ends[record] - s.starts[record]) / PageSize
	return first, count
}

// TotalPages reports the mapped page count.
func (s *AddressSpace) TotalPages() int64 { return s.total / PageSize }

// RecordOf returns the record owning a page (-1 if unmapped). Lookup is
// a binary search over the layout.
func (s *AddressSpace) RecordOf(page int64) int {
	addr := page * PageSize
	idx := sort.Search(len(s.starts), func(i int) bool { return s.ends[i] > addr })
	if idx == len(s.starts) || s.starts[idx] > addr {
		return -1
	}
	return idx
}

// Profiler observes sampled page accesses for a workload replay.
type Profiler struct {
	space  *AddressSpace
	rate   int
	rng    *rand.Rand
	counts map[int64]int64 // page → sampled access count
	// samples is the total number of observations taken (the profiler's
	// data-collection cost is proportional to this).
	samples int64
}

// NewProfiler creates a sampling profiler. rate = 1 observes every page
// touch (Pin-like instrumentation); rate = 4000 approximates PEBS-style
// hardware sampling. It panics on a non-positive rate.
func NewProfiler(space *AddressSpace, rate int, seed int64) *Profiler {
	if rate <= 0 {
		panic(fmt.Sprintf("tiering: sampling rate %d must be positive", rate))
	}
	return &Profiler{
		space:  space,
		rate:   rate,
		rng:    rand.New(rand.NewSource(seed)),
		counts: map[int64]int64{},
	}
}

// Observe replays the workload's access pattern through the sampler:
// each request touches all pages of its record, and each touch is
// recorded with probability 1/rate.
func (p *Profiler) Observe(w *ycsb.Workload) {
	// ForEachOp covers every trace backing (ops, packed, streamed); a
	// stream decode error truncates the observation, matching the
	// best-effort contract of the ycsb pattern helpers.
	_ = w.ForEachOp(func(key int, _ kvstore.OpKind) {
		first, count := p.space.Pages(key)
		for pg := first; pg < first+count; pg++ {
			if p.rate == 1 || p.rng.Intn(p.rate) == 0 {
				p.counts[pg]++
				p.samples++
			}
		}
	})
}

// Samples reports how many page observations were collected.
func (p *Profiler) Samples() int64 { return p.samples }

// SampledPages reports how many distinct pages were observed hot.
func (p *Profiler) SampledPages() int { return len(p.counts) }

// KeyOrdering aggregates page heat back to records and returns keys in
// descending access-density order (sampled touches per page), the DRAM
// allocation priority a generic tiering solution would hand to Mnemo.
// Unobserved keys follow in dataset order.
func (p *Profiler) KeyOrdering(ds ycsb.Dataset) []string {
	type heat struct {
		record  int
		density float64
	}
	heats := make([]heat, 0, len(p.counts))
	byRecord := map[int]int64{}
	for pg, c := range p.counts {
		if rec := p.space.RecordOf(pg); rec >= 0 {
			byRecord[rec] += c
		}
	}
	for rec, c := range byRecord {
		_, pages := p.space.Pages(rec)
		heats = append(heats, heat{record: rec, density: float64(c) / float64(pages)})
	}
	sort.Slice(heats, func(i, j int) bool {
		if heats[i].density != heats[j].density {
			return heats[i].density > heats[j].density
		}
		return heats[i].record < heats[j].record
	})
	out := make([]string, 0, len(ds.Records))
	seen := make([]bool, len(ds.Records))
	for _, h := range heats {
		out = append(out, ds.Records[h.record].Key)
		seen[h.record] = true
	}
	for i, rec := range ds.Records {
		if !seen[i] {
			out = append(out, rec.Key)
		}
	}
	return out
}
