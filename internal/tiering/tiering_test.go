package tiering

import (
	"testing"
	"testing/quick"

	"mnemo/internal/ycsb"
)

func dataset(t *testing.T) *ycsb.Workload {
	t.Helper()
	return ycsb.MustGenerate(ycsb.Spec{
		Name: "tiering_test", Keys: 300, Requests: 6000,
		Dist:      ycsb.DistSpec{Kind: ycsb.Hotspot, HotSetFraction: 0.2, HotOpnFraction: 0.9},
		ReadRatio: 1.0, Sizes: ycsb.SizeThumbnail, Seed: 3,
	})
}

func TestAddressSpaceLayout(t *testing.T) {
	w := dataset(t)
	s := NewAddressSpace(w.Dataset)
	if s.TotalPages() <= 0 {
		t.Fatal("empty address space")
	}
	// Records are disjoint and page-aligned; every page maps back to its
	// record.
	var prevEnd int64
	for i := range w.Dataset.Records {
		first, count := s.Pages(i)
		if count <= 0 {
			t.Fatalf("record %d spans %d pages", i, count)
		}
		if first*PageSize < prevEnd {
			t.Fatalf("record %d overlaps previous", i)
		}
		prevEnd = (first + count) * PageSize
		if got := s.RecordOf(first); got != i {
			t.Fatalf("RecordOf(first page of %d) = %d", i, got)
		}
		if got := s.RecordOf(first + count - 1); got != i {
			t.Fatalf("RecordOf(last page of %d) = %d", i, got)
		}
	}
	if s.RecordOf(s.TotalPages()) != -1 {
		t.Fatal("page past the end mapped to a record")
	}
}

func TestAddressSpaceRoundTripProperty(t *testing.T) {
	w := dataset(t)
	s := NewAddressSpace(w.Dataset)
	total := s.TotalPages()
	f := func(raw uint32) bool {
		pg := int64(raw) % total
		rec := s.RecordOf(pg)
		if rec < 0 {
			return false
		}
		first, count := s.Pages(rec)
		return pg >= first && pg < first+count
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFullRateProfilerFindsHotSet(t *testing.T) {
	w := dataset(t)
	s := NewAddressSpace(w.Dataset)
	p := NewProfiler(s, 1, 1)
	p.Observe(w)
	if p.Samples() == 0 || p.SampledPages() == 0 {
		t.Fatal("no observations at rate 1")
	}
	order := p.KeyOrdering(w.Dataset)
	if len(order) != len(w.Dataset.Records) {
		t.Fatalf("ordering covers %d keys", len(order))
	}
	// The top 20% of the ordering must be dominated by the true hot set
	// (keys 0..59 in a 300-key hotspot workload).
	hot := 0
	for _, key := range order[:60] {
		var idx int
		if _, err := fmtSscanf(key, &idx); err != nil {
			t.Fatal(err)
		}
		if idx < 60 {
			hot++
		}
	}
	if hot < 55 {
		t.Errorf("only %d/60 of the top ordering are true hot keys", hot)
	}
}

// fmtSscanf extracts the numeric suffix of a ycsb key.
func fmtSscanf(key string, idx *int) (int, error) {
	n := 0
	for _, c := range key {
		if c >= '0' && c <= '9' {
			n = n*10 + int(c-'0')
		}
	}
	*idx = n
	return 1, nil
}

func TestSamplingRateDegradesGracefully(t *testing.T) {
	w := dataset(t)
	s := NewAddressSpace(w.Dataset)
	exact := NewProfiler(s, 1, 1)
	exact.Observe(w)
	sparse := NewProfiler(s, 500, 1)
	sparse.Observe(w)
	if sparse.Samples() >= exact.Samples()/100 {
		t.Fatalf("rate-500 sampler took %d of %d samples", sparse.Samples(), exact.Samples())
	}
	// Sparse ordering still surfaces mostly-hot keys at the top.
	order := sparse.KeyOrdering(w.Dataset)
	hot := 0
	for _, key := range order[:60] {
		var idx int
		fmtSscanf(key, &idx)
		if idx < 60 {
			hot++
		}
	}
	if hot < 30 {
		t.Errorf("sparse sampler found only %d/60 hot keys at the top", hot)
	}
}

func TestUnobservedKeysAppended(t *testing.T) {
	w := dataset(t)
	s := NewAddressSpace(w.Dataset)
	// Extreme rate: almost nothing observed.
	p := NewProfiler(s, 1_000_000, 1)
	p.Observe(w)
	order := p.KeyOrdering(w.Dataset)
	if len(order) != len(w.Dataset.Records) {
		t.Fatalf("ordering dropped keys: %d", len(order))
	}
	seen := map[string]bool{}
	for _, k := range order {
		if seen[k] {
			t.Fatalf("key %s duplicated", k)
		}
		seen[k] = true
	}
}

func TestProfilerPanicsOnBadRate(t *testing.T) {
	w := dataset(t)
	s := NewAddressSpace(w.Dataset)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewProfiler(s, 0, 1)
}
