package experiments

import (
	"context"
	"fmt"
	"io"

	"mnemo/internal/core"
	"mnemo/internal/report"
	"mnemo/internal/server"
	"mnemo/internal/ycsb"
)

// YCSBCoreResult extends the Fig 9 analysis to the stock YCSB core
// workloads (A/B/C/D/F) the paper's custom traces were adapted from —
// useful to readers who know the standard suite better than the
// Facebook-flavored Table III.
type YCSBCoreResult struct {
	SLO   float64
	Cells []Fig9Cell
}

// YCSBCore profiles every stock workload on every store and advises under
// the 10% SLO. Workload F uses its read-modify-write trace builder.
func YCSBCore(scale Scale, seed int64) (*YCSBCoreResult, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	res := &YCSBCoreResult{SLO: SLO}
	for _, spec := range ycsb.StandardWorkloads(seed) {
		var w *ycsb.Workload
		var err error
		if spec.Name == "ycsb_f" {
			w, err = ycsb.GenerateF(seed, scale.Keys, scale.Requests)
		} else {
			w, err = scale.workload(spec)
		}
		if err != nil {
			return nil, err
		}
		for _, e := range server.Engines() {
			rep, err := core.Profile(context.Background(), scale.coreConfig(e, seed), w, core.Touch, SLO)
			if err != nil {
				return nil, err
			}
			res.Cells = append(res.Cells, Fig9Cell{
				Workload:   spec.Name,
				Engine:     e.String(),
				CostFactor: rep.Advice.Point.CostFactor,
				FastBytes:  rep.Advice.Point.FastBytes,
				KeysInFast: rep.Advice.Point.KeysInFast,
			})
		}
	}
	return res, nil
}

// Cost returns the advised cost for a workload × engine pair (1 when
// missing).
func (r *YCSBCoreResult) Cost(workload, engine string) float64 {
	for _, c := range r.Cells {
		if c.Workload == workload && c.Engine == engine {
			return c.CostFactor
		}
	}
	return 1
}

// Render implements the experiment output.
func (r *YCSBCoreResult) Render(w io.Writer) error {
	t := report.NewTable(
		fmt.Sprintf("YCSB core workloads — memory cost at %.0f%% slowdown SLO (1 KB records)", r.SLO*100),
		"workload", "Redis(-like)", "Memcached(-like)", "DynamoDB(-like)")
	var order []string
	byWorkload := map[string]map[string]float64{}
	for _, c := range r.Cells {
		if _, ok := byWorkload[c.Workload]; !ok {
			byWorkload[c.Workload] = map[string]float64{}
			order = append(order, c.Workload)
		}
		byWorkload[c.Workload][c.Engine] = c.CostFactor
	}
	for _, wl := range order {
		m := byWorkload[wl]
		t.AddRow(wl,
			fmt.Sprintf("%.3f", m[server.RedisLike.String()]),
			fmt.Sprintf("%.3f", m[server.MemcachedLike.String()]),
			fmt.Sprintf("%.3f", m[server.DynamoLike.String()]))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w,
		"1 KB records are latency-bound and LLC-friendly, so every store tolerates"+
			"\nSlowMem well — the size effect of Fig 5c seen from the other side.")
	return err
}
