package experiments

import (
	"fmt"
	"io"

	"mnemo/internal/baselines"
	"mnemo/internal/costmodel"
	"mnemo/internal/memsim"
	"mnemo/internal/report"
	"mnemo/internal/server"
	"mnemo/internal/ycsb"
)

// Fig1Result is the cloud memory-cost-share analysis of the introduction.
type Fig1Result struct {
	Coefficients []costmodel.Coefficients
	Shares       []costmodel.ShareRow
}

// Fig1 fits each provider's VM catalog and computes the memory cost
// share of the memory-optimized instances.
func Fig1() (*Fig1Result, error) {
	res := &Fig1Result{}
	for _, p := range costmodel.Providers() {
		c, err := costmodel.Fit(costmodel.Instances(p))
		if err != nil {
			return nil, err
		}
		res.Coefficients = append(res.Coefficients, c)
	}
	shares, err := costmodel.Fig1()
	if err != nil {
		return nil, err
	}
	res.Shares = shares
	return res, nil
}

// Render implements the experiment output.
func (r *Fig1Result) Render(w io.Writer) error {
	coeff := report.NewTable("Fig 1 — least-squares VM cost decomposition",
		"provider", "$/vCPU/h", "$/GB/h", "instances", "rss")
	for _, c := range r.Coefficients {
		coeff.AddRow(c.Provider, c.CPerVCPU, c.MPerGB, c.Instances, c.RSS)
	}
	if err := coeff.Render(w); err != nil {
		return err
	}
	shares := report.NewTable("Fig 1 — memory share of Memory Optimized VM cost (paper: ~60-85%)",
		"provider", "instance", "memory share")
	for _, s := range r.Shares {
		shares.AddRow(s.Provider, s.Instance, fmt.Sprintf("%.0f%%", s.MemoryShare*100))
	}
	return shares.Render(w)
}

// Table1Result is the testbed calibration.
type Table1Result struct {
	Calibrations []memsim.Calibration
}

// Table1 measures the emulated nodes through the access path.
func Table1() *Table1Result {
	m := memsim.NewMachine(memsim.DefaultConfig())
	return &Table1Result{Calibrations: []memsim.Calibration{
		m.Calibrate(memsim.Fast),
		m.Calibrate(memsim.Slow),
	}}
}

// LatencyFactor returns SlowMem latency / FastMem latency (paper: 3.62).
func (r *Table1Result) LatencyFactor() float64 {
	return r.Calibrations[1].LatencyNs / r.Calibrations[0].LatencyNs
}

// BandwidthFactor returns SlowMem BW / FastMem BW (paper: 0.12).
func (r *Table1Result) BandwidthFactor() float64 {
	return r.Calibrations[1].BandwidthGBps / r.Calibrations[0].BandwidthGBps
}

// Render implements the experiment output.
func (r *Table1Result) Render(w io.Writer) error {
	t := report.NewTable("Table I — testbed bandwidth and latency (measured via microbenchmarks)",
		"node", "latency (ns)", "bandwidth (GB/s)")
	for _, c := range r.Calibrations {
		t.AddRow(c.Tier.String(), c.LatencyNs, c.BandwidthGBps)
	}
	t.AddRow("factors", fmt.Sprintf("L:%.2f", r.LatencyFactor()), fmt.Sprintf("B:%.2f", r.BandwidthFactor()))
	return t.Render(w)
}

// Table2Result is the cost-baseline summary.
type Table2Result struct {
	DatasetBytes int64
	PriceFactor  float64
	Rows         []costmodel.Baseline
}

// Table2 computes the baseline sizings for a Table III-scale dataset.
func Table2(scale Scale, seed int64) (*Table2Result, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	w, err := scale.workload(ycsb.Trending(seed))
	if err != nil {
		return nil, err
	}
	return &Table2Result{
		DatasetBytes: w.Dataset.TotalBytes,
		PriceFactor:  costmodel.DefaultPriceFactor,
		Rows:         costmodel.TableII(w.Dataset.TotalBytes, costmodel.DefaultPriceFactor),
	}, nil
}

// Render implements the experiment output.
func (r *Table2Result) Render(w io.Writer) error {
	t := report.NewTable(
		fmt.Sprintf("Table II — baselines for a %s dataset, p=%.1f",
			report.FormatBytes(r.DatasetBytes), r.PriceFactor),
		"runtime", "FastMem", "SlowMem", "cost factor R(p)")
	for _, b := range r.Rows {
		t.AddRow(b.Name, report.FormatBytes(b.FastBytes), report.FormatBytes(b.SlowBytes), b.CostReduction)
	}
	return t.Render(w)
}

// Table4Result is the profiling-overhead comparison.
type Table4Result struct {
	Reports []baselines.OverheadReport
	Tahoe   baselines.TahoeResult
}

// Table4 compares MnemoT's profiling overhead with the instrumented
// (X-Mem/Unimem-class) and ML-inferred (Tahoe-class) approaches on the
// Trending workload.
func Table4(scale Scale, seed int64) (*Table4Result, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	w, err := scale.workload(ycsb.Trending(seed))
	if err != nil {
		return nil, err
	}
	cfg := scale.coreConfig(server.RedisLike, seed)

	mnemoRep, _, _, err := baselines.MnemoTOverhead(cfg, w)
	if err != nil {
		return nil, err
	}
	instrRep, _, err := baselines.InstrumentedProfilerOverhead(cfg, w)
	if err != nil {
		return nil, err
	}
	// Train the Tahoe model on small instrumented workloads.
	model, err := baselines.TrainTahoe(cfg.Server, seed+1, scale.Keys/10, scale.Requests/10)
	if err != nil {
		return nil, err
	}
	tahoeRep, tahoeRes, err := baselines.TahoeOverhead(cfg, w, model)
	if err != nil {
		return nil, err
	}
	return &Table4Result{
		Reports: []baselines.OverheadReport{mnemoRep, instrRep, tahoeRep},
		Tahoe:   tahoeRes,
	}, nil
}

// Render implements the experiment output.
func (r *Table4Result) Render(w io.Writer) error {
	t := report.NewTable("Table IV — profiling overhead comparison (simulated time)",
		"method", "input prep", "baselines", "tiering", "total")
	for _, rep := range r.Reports {
		t.AddRow(rep.Method, rep.InputPrep.String(), rep.BaselineTime.String(),
			rep.TieringTime.String(), rep.Total().String())
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w,
		"Tahoe inference: fast baseline inferred with %.2f%% error after %d monitored training executions\n",
		r.Tahoe.InferenceErrorPct, r.Tahoe.TrainingExecutions)
	return err
}
