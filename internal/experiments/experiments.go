// Package experiments regenerates every table and figure of the paper's
// evaluation from the reproduction substrate. Each experiment returns a
// structured result (so tests and benchmarks can assert on it) with a
// Render method that prints the table or an ASCII plot the way
// cmd/mnemo-bench presents it.
//
// Experiments accept a Scale: Full matches the paper (10 000 keys,
// 100 000 requests per workload); Quick is a 10× reduction for unit tests
// and benchmarks.
package experiments

import (
	"fmt"

	"mnemo/internal/client"
	"mnemo/internal/core"
	"mnemo/internal/obs"
	"mnemo/internal/server"
	"mnemo/internal/shard"
	"mnemo/internal/simclock"
	"mnemo/internal/ycsb"
)

// Scale sets the experiment size.
type Scale struct {
	Name string
	// Keys and Requests override the Table III workload dimensions.
	Keys, Requests int
	// Runs is the repetitions averaged per measurement.
	Runs int
	// CurveSamples is how many interior tierings are measured per curve.
	CurveSamples int
	// Fault injects deterministic measurement faults into every run of
	// the experiment (chaos benchmarking); the zero value injects
	// nothing. When enabled, measurements retry and degrade per
	// defaultResilience instead of aborting the experiment.
	Fault server.FaultSpec
	// RunTimeout bounds each measurement run in simulated time (cuts off
	// injected stalls); 0 disables the bound.
	RunTimeout simclock.Duration
	// Obs, when non-nil, receives every measurement's observability
	// stream (metrics and the run journal); nil keeps the experiment
	// uninstrumented.
	Obs *obs.Sink
	// DisableBatchReplay forces every measurement run onto the per-op
	// replay path instead of the batched kernel. The two paths are
	// bit-identical; this is a debugging/comparison knob.
	DisableBatchReplay bool
	// Shards replays every measurement across a consistent-hash cluster
	// of N deployments (0 = single deployment; DESIGN.md §13).
	Shards int
	// ShardRetries, ShardFaultBudget and HedgeFactor are the per-shard
	// fault-domain remediation knobs (client.Policy), meaningful with
	// Shards ≥ 2: in-place retries of faulted shards, the number of
	// dead shards a run tolerates before failing (degrading to a
	// partial merge within budget), and the straggler hedging threshold
	// (0 = off, otherwise ≥ 1).
	ShardRetries     int
	ShardFaultBudget int
	HedgeFactor      float64
	// EpochOps sets the adaptive replay epoch length for experiments
	// that measure epoch-based migration (AdaptiveCompare); 0 picks the
	// experiment default. Profiling experiments ignore it: estimate
	// curves are static by construction (DESIGN.md §15).
	EpochOps int
	// MigrationCostPerByte is the simulated charge, in ns per payload
	// byte, for mid-run tier migrations; 0 picks the experiment default
	// for adaptive experiments.
	MigrationCostPerByte float64
	// MigrationBudget caps migrated payload bytes per epoch boundary
	// (0 = unlimited).
	MigrationBudget int64
}

// Full is the paper's scale.
var Full = Scale{Name: "full", Keys: 10_000, Requests: 100_000, Runs: 1, CurveSamples: 6}

// Quick is a 10×-reduced scale for tests and benchmarks.
var Quick = Scale{Name: "quick", Keys: 1_000, Requests: 10_000, Runs: 1, CurveSamples: 4}

// Validate checks the scale.
func (s Scale) Validate() error {
	if s.Keys <= 0 || s.Requests <= 0 || s.Runs <= 0 || s.CurveSamples <= 0 {
		return fmt.Errorf("experiments: invalid scale %+v", s)
	}
	if err := s.Fault.Validate(); err != nil {
		return err
	}
	if s.RunTimeout < 0 {
		return fmt.Errorf("experiments: run timeout %v must be non-negative", s.RunTimeout)
	}
	if s.Shards < 0 || s.Shards > shard.MaxShards {
		return fmt.Errorf("experiments: shards %d outside [0,%d]", s.Shards, shard.MaxShards)
	}
	if s.ShardRetries < 0 || s.ShardFaultBudget < 0 {
		return fmt.Errorf("experiments: shard retries %d and fault budget %d must be non-negative",
			s.ShardRetries, s.ShardFaultBudget)
	}
	if s.HedgeFactor != 0 && s.HedgeFactor < 1 {
		return fmt.Errorf("experiments: hedge factor %v must be 0 (disabled) or ≥ 1", s.HedgeFactor)
	}
	if (s.ShardRetries > 0 || s.ShardFaultBudget > 0 || s.HedgeFactor > 0) && s.Shards < 2 {
		return fmt.Errorf("experiments: shard fault-domain knobs require shards ≥ 2, got %d", s.Shards)
	}
	if s.EpochOps < 0 {
		return fmt.Errorf("experiments: epoch ops %d must be non-negative", s.EpochOps)
	}
	if s.MigrationCostPerByte < 0 {
		return fmt.Errorf("experiments: migration cost %v ns/byte must be non-negative", s.MigrationCostPerByte)
	}
	if s.MigrationBudget < 0 {
		return fmt.Errorf("experiments: migration budget %d bytes must be non-negative", s.MigrationBudget)
	}
	return nil
}

// workload generates a Table III workload at this scale.
func (s Scale) workload(spec ycsb.Spec) (*ycsb.Workload, error) {
	spec.Keys = s.Keys
	spec.Requests = s.Requests
	return ycsb.Generate(spec)
}

// coreConfig builds the profiling config for an engine at this scale.
// The LLC is scaled with the key space so a reduced-scale run keeps the
// paper's cache:dataset ratio (12 MB against 10 000 keys ≈ 1 GB);
// otherwise a small dataset would be mostly cache-resident and every
// SlowMem sensitivity would vanish.
func (s Scale) coreConfig(e server.Engine, seed int64) core.Config {
	cfg := core.DefaultConfig(e, seed)
	cfg.Runs = s.Runs
	cfg.Server.Machine.LLCBytes = int64(12<<20) * int64(s.Keys) / int64(Full.Keys)
	cfg.Server.Fault = s.Fault
	cfg.Server.RunTimeout = s.RunTimeout
	cfg.Server.Obs = s.Obs
	cfg.Server.DisableBatchReplay = s.DisableBatchReplay
	cfg.Server.Shards = s.Shards
	// Migration knobs are inert until a run also carries an Adaptive
	// policy and EpochOps ≥ 1 (only AdaptiveCompare sets those).
	cfg.Server.MigrationCostPerByte = s.MigrationCostPerByte
	cfg.Server.MigrationBudget = s.MigrationBudget
	if s.Fault.Enabled() {
		cfg.Resilience = defaultResilience
	}
	cfg.Resilience.ShardRetries = s.ShardRetries
	cfg.Resilience.ShardFaultBudget = s.ShardFaultBudget
	cfg.Resilience.HedgeFactor = s.HedgeFactor
	return cfg
}

// defaultResilience is the degradation policy a chaos-benchmarked
// experiment runs under: a couple of retries, a report as long as one
// repetition survives, and MAD rejection of outlier runtimes.
var defaultResilience = client.Policy{Retries: 2, MinRuns: 1, OutlierMAD: 3.5}

// SLO is the permissible application slowdown used by Fig 9 (10%, the
// value "commonly used in other research on optimizing performance and
// resource efficiency").
const SLO = 0.10

// engineLabel maps engine names to the store they stand in for, for
// report headers.
func engineLabel(e server.Engine) string {
	switch e {
	case server.RedisLike:
		return "Redis(-like)"
	case server.MemcachedLike:
		return "Memcached(-like)"
	case server.DynamoLike:
		return "DynamoDB(-like)"
	default:
		return e.String()
	}
}
