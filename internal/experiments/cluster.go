package experiments

import (
	"context"
	"fmt"
	"io"

	"mnemo/internal/client"
	"mnemo/internal/core"
	"mnemo/internal/costmodel"
	"mnemo/internal/report"
	"mnemo/internal/server"
	"mnemo/internal/shard"
	"mnemo/internal/ycsb"
)

// clusterDefaultShards is the cluster size a sweep uses when the scale
// does not pin one.
const clusterDefaultShards = 4

// clusterHotKeys is the hot-set size whose shard spread the sweep
// reports: enough keys that a zipfian head should land on several
// shards, few enough that they really are the head.
const clusterHotKeys = 64

// ClusterSweepResult answers the cluster-provisioning question of
// DESIGN.md §13: when a workload is scaled out across N consistent-hash
// shards, how much FastMem does each shard need to stay within the
// slowdown SLO — and does the merged sharded measurement confirm it?
type ClusterSweepResult struct {
	Workload     string
	Engine       string
	Shards       int
	VirtualNodes int
	SLO          float64

	// Advice is the curve advisor's cluster-wide sweet spot (cheapest
	// sizing within the SLO), measured over the sharded replay.
	Advice core.Advice
	// TotalBytes is the dataset size across all shards.
	TotalBytes int64
	// PerShard is the ring's layout of the advised sizing: each shard's
	// records, bytes, advised FastMem slice and request load.
	PerShard []report.ShardRow
	// FastBytesPerShard is the provisioning answer: the largest advised
	// per-shard FastMem footprint, i.e. what every shard must be built
	// with under uniform provisioning.
	FastBytesPerShard int64
	// HotShardSpread is how many distinct shards serve the trace's
	// hottest keys (top clusterHotKeys by access count) — the guard
	// against a skewed hot set collapsing onto one shard.
	HotShardSpread int

	// Measured is the merged sharded execution at the advised sizing;
	// MeasuredSlowdown is its runtime relative to the all-FastMem
	// baseline (the SLO is on this quantity's estimate).
	Measured         client.RunStats
	MeasuredSlowdown float64
}

// ClusterSweep profiles the trending workload (the paper's zipfian
// use case) on the Redis-like engine across a consistent-hash cluster
// (scale.Shards, defaulting to 4), asks the advisor for the cheapest
// sizing within the 10% SLO, lays the advised placement out over the
// ring, and verifies the advice with a measured sharded run at that
// sizing. Scale.Keys/Requests set the cluster size — the 10M-key /
// 100M-request recipe in README.md runs exactly this experiment.
func ClusterSweep(scale Scale, seed int64) (*ClusterSweepResult, error) {
	if scale.Shards == 0 {
		scale.Shards = clusterDefaultShards
	}
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	w, err := scale.workload(ycsb.Trending(seed))
	if err != nil {
		return nil, err
	}
	engine := server.RedisLike
	cfg := scale.coreConfig(engine, seed)
	ctx := context.Background()
	rep, err := core.Profile(ctx, cfg, w, core.Touch, SLO)
	if err != nil {
		return nil, err
	}
	res := &ClusterSweepResult{
		Workload:     w.Spec.Name,
		Engine:       engineLabel(engine),
		Shards:       scale.Shards,
		VirtualNodes: shard.DefaultVirtualNodes,
		SLO:          SLO,
		Advice:       *rep.Advice,
		TotalBytes:   rep.Ordering.TotalBytes(),
	}

	// Lay the advised placement out over the ring. The partition is the
	// cached one the sharded replay built, so this costs one map lookup.
	withOps := scale.DisableBatchReplay || !w.Packed().Batchable()
	part, err := shard.For(w, scale.Shards, 0, withOps)
	if err != nil {
		return nil, err
	}
	nrec := len(w.Dataset.Records)
	fast := make([]bool, nrec)
	for _, k := range rep.Ordering.Keys[:rep.Advice.Point.KeysInFast] {
		fast[k.Index] = true
	}
	res.PerShard = make([]report.ShardRow, scale.Shards)
	for s := range res.PerShard {
		res.PerShard[s].Shard = s
		res.PerShard[s].Requests = part.Subs[s].Requests
	}
	for g, rec := range w.Dataset.Records {
		row := &res.PerShard[part.Assign[g]]
		row.Keys++
		row.Bytes += int64(rec.Size)
		if fast[g] {
			row.FastKeys++
			row.FastBytes += int64(rec.Size)
		}
	}
	for _, row := range res.PerShard {
		if row.FastBytes > res.FastBytesPerShard {
			res.FastBytesPerShard = row.FastBytes
		}
	}
	reads := make([]int, nrec)
	writes := make([]int, nrec)
	for _, k := range rep.Ordering.Keys {
		reads[k.Index] = k.Reads
		writes[k.Index] = k.Writes
	}
	res.HotShardSpread = part.HotShardSpread(reads, writes, clusterHotKeys)

	// Verify the advice: one measured sharded execution at the advised
	// sizing, merged across shards, compared against the FastMem
	// baseline the profile already measured.
	var pe core.PlacementEngine
	placement, err := pe.PlacementFor(rep.Ordering, rep.Advice.Point)
	if err != nil {
		return nil, err
	}
	measured, err := client.ExecuteMeanCtx(ctx, cfg.Server, w, placement, scale.Runs, 0, cfg.Resilience)
	if err != nil {
		return nil, fmt.Errorf("experiments: cluster sweep measurement: %w", err)
	}
	res.Measured = measured
	if fastRt := rep.Baselines.Fast.Runtime; fastRt > 0 {
		res.MeasuredSlowdown = float64(measured.Runtime)/float64(fastRt) - 1
	}
	return res, nil
}

// Render implements the experiment output: a summary table answering
// "fast GB per shard", then the per-shard layout.
func (r *ClusterSweepResult) Render(w io.Writer) error {
	t := report.NewTable(
		fmt.Sprintf("Cluster sweep — %s on %s, %d shards (SLO %.0f%%)",
			r.Workload, r.Engine, r.Shards, r.SLO*100),
		"quantity", "value")
	t.AddRow("dataset", report.FormatBytes(r.TotalBytes))
	t.AddRow("advised FastMem (cluster)", report.FormatBytes(r.Advice.Point.FastBytes))
	t.AddRow("advised FastMem per shard (max)", report.FormatBytes(r.FastBytesPerShard))
	t.AddRow("advised keys in FastMem", r.Advice.Point.KeysInFast)
	t.AddRow("cost factor R(p)", r.Advice.Point.CostFactor)
	t.AddRow(fmt.Sprintf("hot-%d shard spread", clusterHotKeys),
		fmt.Sprintf("%d of %d shards", r.HotShardSpread, r.Shards))
	t.AddRow("measured slowdown at advice", fmt.Sprintf("%.2f%%", r.MeasuredSlowdown*100))
	t.AddRow("measured throughput", fmt.Sprintf("%.0f ops/s", r.Measured.ThroughputOpsSec))
	if m := r.Measured; m.ShardsFailed > 0 || m.ShardsHedged > 0 || m.ShardsRetried > 0 {
		t.AddRow("shard fault domains", fmt.Sprintf("%d dead / %d hedged / %d retries (degraded: %t)",
			m.ShardsFailed, m.ShardsHedged, m.ShardsRetried, m.Degraded))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	for _, reason := range r.Measured.DegradedReasons {
		if _, err := fmt.Fprintf(w, "  degraded: %s\n", reason); err != nil {
			return err
		}
	}
	return report.ShardTable(
		fmt.Sprintf("Per-shard layout (%d virtual nodes per shard)", r.VirtualNodes),
		r.PerShard, costmodel.DefaultPriceFactor).Render(w)
}
