package experiments

import (
	"context"
	"fmt"
	"io"
	"math"

	"mnemo/internal/client"
	"mnemo/internal/core"
	"mnemo/internal/registry"
	"mnemo/internal/report"
	"mnemo/internal/server"
	"mnemo/internal/simclock"
	"mnemo/internal/ycsb"
)

// Adaptive-compare defaults. The epoch length is one replay block (the
// smallest epoch the chunked kernel serves); the migration charge
// corresponds to a ~10 GB/s copy path between memory nodes.
const (
	DefaultAdaptiveEpochOps  = 4096
	DefaultMigrationCostNsPB = 0.1
	// adaptiveFastFraction is the FastMem byte budget every policy gets,
	// as a fraction of the dataset: small enough that a static ordering
	// cannot cover a drifting hot set, large enough that an adaptive one
	// can chase it.
	adaptiveFastFraction = 0.35
	// adaptiveMinEpochs keeps the drift slow relative to the epoch
	// clock: the workload is stretched so one full hot-set sweep spans
	// at least this many epochs, or migration would always arrive too
	// late to matter.
	adaptiveMinEpochs = 8
)

// AdaptiveCompareRow is one policy's measured outcome on the drift
// workload under a fixed FastMem byte budget.
type AdaptiveCompareRow struct {
	Policy string
	// Adaptive marks policies that migrated mid-run (core.EpochPolicy);
	// static policies keep their initial placement for the whole trace.
	Adaptive      bool
	Runtime       simclock.Duration
	ThroughputOps float64
	Epochs        int
	Moves         int
	MigratedBytes int64
	MigrationNs   float64
	// EpochTraffic is the per-epoch migration ledger (empty for static
	// rows).
	EpochTraffic []client.EpochTraffic
}

// AdaptiveCompareResult pits every registered policy — static and
// adaptive — against the same drifting workload and FastMem budget, with
// migration time charged on the simulated clock. This is the experiment
// DESIGN.md §15's claim rests on: online migration buys back what a
// static placement loses to non-stationarity.
type AdaptiveCompareResult struct {
	Workload     string
	Engine       server.Engine
	EpochOps     int
	CostPerByte  float64
	FastFraction float64
	Rows         []AdaptiveCompareRow
}

// BestStatic returns the lowest-runtime static row (nil if none).
func (r *AdaptiveCompareResult) BestStatic() *AdaptiveCompareRow { return r.best(false) }

// BestAdaptive returns the lowest-runtime adaptive row (nil if none).
func (r *AdaptiveCompareResult) BestAdaptive() *AdaptiveCompareRow { return r.best(true) }

func (r *AdaptiveCompareResult) best(adaptive bool) *AdaptiveCompareRow {
	var best *AdaptiveCompareRow
	for i := range r.Rows {
		row := &r.Rows[i]
		if row.Adaptive != adaptive {
			continue
		}
		if best == nil || row.Runtime < best.Runtime {
			best = row
		}
	}
	return best
}

// AdaptiveWins reports whether some adaptive policy beats every static
// policy on runtime, migration cost included.
func (r *AdaptiveCompareResult) AdaptiveWins() bool {
	ad, st := r.BestAdaptive(), r.BestStatic()
	return ad != nil && st != nil && ad.Runtime < st.Runtime
}

// AdaptiveCompare measures every cataloged policy on the hot-set-drift
// workload under one shared FastMem byte budget. Static policies place
// once from their whole-trace ordering; adaptive policies start from the
// same kind of placement and then migrate at every EpochOps boundary,
// paying CostPerByte on the simulated clock for every byte moved.
func AdaptiveCompare(scale Scale, seed int64) (*AdaptiveCompareResult, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	epochOps := scale.EpochOps
	if epochOps == 0 {
		epochOps = DefaultAdaptiveEpochOps
	}
	costPB := scale.MigrationCostPerByte
	if costPB == 0 {
		costPB = DefaultMigrationCostNsPB
	}
	spec := ycsb.HotDrift(seed)
	spec.Keys = scale.Keys
	spec.Requests = scale.Requests
	if min := adaptiveMinEpochs * epochOps; spec.Requests < min {
		spec.Requests = min
	}
	w, err := ycsb.Generate(spec)
	if err != nil {
		return nil, err
	}
	cfg := scale.coreConfig(server.RedisLike, seed)
	cfg.Server.MigrationCostPerByte = costPB
	res := &AdaptiveCompareResult{
		Workload:     w.Spec.Name,
		Engine:       server.RedisLike,
		EpochOps:     epochOps,
		CostPerByte:  costPB,
		FastFraction: adaptiveFastFraction,
	}
	ctx := context.Background()
	var pe core.PlacementEngine
	budget := int64(math.Floor(adaptiveFastFraction * float64(totalBytes(w))))
	for _, e := range registry.Entries() {
		pol := e.New(seed)
		ord, err := pol.Order(ctx, w)
		if err != nil {
			return nil, fmt.Errorf("experiments: ordering under %q: %w", e.Name, err)
		}
		placement, err := pe.PlacementFor(ord, core.CurvePoint{KeysInFast: prefixForBudget(ord, budget)})
		if err != nil {
			return nil, err
		}
		runCfg := cfg.Server
		runCfg.Adaptive, runCfg.EpochOps = nil, 0
		ep, adaptive := core.AsEpochPolicy(pol)
		if adaptive {
			runCfg.Adaptive, runCfg.EpochOps = ep, epochOps
		}
		st, err := client.ExecuteMeanCtx(ctx, runCfg, w, placement, cfg.Runs, 0, cfg.Resilience)
		if err != nil {
			return nil, fmt.Errorf("experiments: measuring %q: %w", e.Name, err)
		}
		res.Rows = append(res.Rows, AdaptiveCompareRow{
			Policy:        e.Name,
			Adaptive:      adaptive,
			Runtime:       st.Runtime,
			ThroughputOps: st.ThroughputOpsSec,
			Epochs:        st.Epochs,
			Moves:         st.MovesApplied,
			MigratedBytes: st.MigratedBytes,
			MigrationNs:   st.MigrationNs,
			EpochTraffic:  st.EpochTraffic,
		})
	}
	return res, nil
}

// totalBytes sums the dataset's payload bytes.
func totalBytes(w *ycsb.Workload) int64 {
	var total int64
	for _, r := range w.Dataset.Records {
		total += int64(r.Size)
	}
	return total
}

// prefixForBudget returns the longest ordering prefix whose payload
// bytes fit the FastMem budget — the same prefix semantics as the
// estimate curve's points.
func prefixForBudget(ord core.Ordering, budget int64) int {
	var used int64
	for i, k := range ord.Keys {
		if used += int64(k.Size); used > budget {
			return i
		}
	}
	return len(ord.Keys)
}

// Render implements the experiment output.
func (r *AdaptiveCompareResult) Render(w io.Writer) error {
	t := report.NewTable(
		fmt.Sprintf("Adaptive vs static tiering on %s (%s; FastMem budget %.0f%% of bytes, epoch %d ops, migration %.2f ns/B)",
			r.Workload, engineLabel(r.Engine), r.FastFraction*100, r.EpochOps, r.CostPerByte),
		"policy", "mode", "runtime", "ops/s", "epochs", "moves", "migrated", "migration cost")
	for _, row := range r.Rows {
		mode := "static"
		if row.Adaptive {
			mode = "adaptive"
		}
		t.AddRow(row.Policy, mode, row.Runtime.String(),
			fmt.Sprintf("%.0f", row.ThroughputOps),
			fmt.Sprintf("%d", row.Epochs), fmt.Sprintf("%d", row.Moves),
			fmt.Sprintf("%.1f KiB", float64(row.MigratedBytes)/1024),
			simclock.Duration(row.MigrationNs).String())
	}
	if err := t.Render(w); err != nil {
		return err
	}
	if ad, st := r.BestAdaptive(), r.BestStatic(); ad != nil && st != nil {
		gain := 0.0
		if ad.Runtime > 0 {
			gain = float64(st.Runtime)/float64(ad.Runtime) - 1
		}
		fmt.Fprintf(w, "best adaptive %q vs best static %q: %+.1f%% runtime gain (migration charged)\n",
			ad.Policy, st.Policy, gain*100)
	}
	return nil
}
