package experiments

import (
	"context"
	"fmt"
	"io"
	"math"

	"mnemo/internal/core"
	"mnemo/internal/report"
	"mnemo/internal/server"
	"mnemo/internal/stats"
	"mnemo/internal/ycsb"
)

// TailRow pairs predicted and measured percentiles at one tiering.
type TailRow struct {
	KeysInFast        int
	CostFactor        float64
	PredP95Ns         float64
	MeasP95Ns         float64
	PredP99Ns         float64
	MeasP99Ns         float64
	P95ErrPct, P99Pct float64
}

// ExtTailsResult is the tail-latency estimation extension study: the
// published model declines to estimate tails; the mixture-of-baselines
// extension does, and this experiment validates it against real
// executions.
type ExtTailsResult struct {
	Engine          string
	Rows            []TailRow
	MedianP95ErrPct float64
	MedianP99ErrPct float64
}

// ExtTails profiles Trending on the given engine and compares the
// TailEstimator's p95/p99 predictions with measured executions at the
// validated tierings.
func ExtTails(scale Scale, e server.Engine, seed int64) (*ExtTailsResult, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	w, err := scale.workload(ycsb.Trending(seed))
	if err != nil {
		return nil, err
	}
	cfg := scale.coreConfig(e, seed)
	rep, err := core.Profile(context.Background(), cfg, w, core.Touch, 0)
	if err != nil {
		return nil, err
	}
	points, err := core.Validate(context.Background(), cfg, w, rep.Curve, rep.Ordering, scale.CurveSamples)
	if err != nil {
		return nil, err
	}
	var te core.TailEstimator
	res := &ExtTailsResult{Engine: e.String()}
	var p95errs, p99errs []float64
	for _, vp := range points {
		pred, err := te.Estimate(rep.Baselines, rep.Ordering, vp.Point.KeysInFast)
		if err != nil {
			return nil, err
		}
		row := TailRow{
			KeysInFast: vp.Point.KeysInFast,
			CostFactor: vp.Point.CostFactor,
			PredP95Ns:  pred.P95Ns,
			MeasP95Ns:  vp.Measured.P95Ns,
			PredP99Ns:  pred.P99Ns,
			MeasP99Ns:  vp.Measured.P99Ns,
		}
		if row.MeasP95Ns > 0 {
			row.P95ErrPct = (row.MeasP95Ns - row.PredP95Ns) / row.MeasP95Ns * 100
			p95errs = append(p95errs, math.Abs(row.P95ErrPct))
		}
		if row.MeasP99Ns > 0 {
			row.P99Pct = (row.MeasP99Ns - row.PredP99Ns) / row.MeasP99Ns * 100
			p99errs = append(p99errs, math.Abs(row.P99Pct))
		}
		res.Rows = append(res.Rows, row)
	}
	if len(p95errs) > 0 {
		res.MedianP95ErrPct = stats.Median(p95errs)
	}
	if len(p99errs) > 0 {
		res.MedianP99ErrPct = stats.Median(p99errs)
	}
	return res, nil
}

// Render implements the experiment output.
func (r *ExtTailsResult) Render(w io.Writer) error {
	t := report.NewTable(
		fmt.Sprintf("Extension — tail latency estimation via baseline mixtures (%s, Trending)", r.Engine),
		"keys in fast", "cost", "p95 pred µs", "p95 meas µs", "p99 pred µs", "p99 meas µs")
	for _, row := range r.Rows {
		t.AddRow(row.KeysInFast, fmt.Sprintf("%.3f", row.CostFactor),
			fmt.Sprintf("%.1f", row.PredP95Ns/1000), fmt.Sprintf("%.1f", row.MeasP95Ns/1000),
			fmt.Sprintf("%.1f", row.PredP99Ns/1000), fmt.Sprintf("%.1f", row.MeasP99Ns/1000))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w,
		"median |error|: p95 %.2f%%, p99 %.2f%% — the paper's model produces no tail estimate at all\n",
		r.MedianP95ErrPct, r.MedianP99ErrPct)
	return err
}
