package experiments

import (
	"context"
	"fmt"
	"io"

	"mnemo/internal/core"
	"mnemo/internal/registry"
	"mnemo/internal/report"
	"mnemo/internal/server"
	"mnemo/internal/ycsb"
)

// PolicyCompareRow is one tiering policy's outcome on the shared
// baseline measurement.
type PolicyCompareRow struct {
	Policy string
	// EstTputAtHalfCost is the estimated throughput at cost factor 0.5.
	EstTputAtHalfCost float64
	// AdvisedCost is the 10%-SLO sizing's cost factor.
	AdvisedCost float64
	// AdvisedSavings is 1 − AdvisedCost.
	AdvisedSavings float64
}

// PolicyCompareResult pits every registered tiering policy against the
// same workload, engine and baseline measurement — the comparison the
// policy registry exists for.
type PolicyCompareResult struct {
	Workload string
	Engine   server.Engine
	// Measurements is how many baseline measurements the comparison ran;
	// the session pipeline guarantees 1.
	Measurements int
	Rows         []PolicyCompareRow
}

// PolicyCompare profiles Trending on Redis-like under every cataloged
// policy through a single session, so the Fast/Slow baselines are
// measured exactly once however many policies are registered.
func PolicyCompare(scale Scale, seed int64) (*PolicyCompareResult, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	w, err := scale.workload(ycsb.Trending(seed))
	if err != nil {
		return nil, err
	}
	session, err := core.NewSession(scale.coreConfig(server.RedisLike, seed), w)
	if err != nil {
		return nil, err
	}
	var policies []core.TieringPolicy
	for _, e := range registry.Entries() {
		policies = append(policies, e.New(seed))
	}
	reps, err := session.Compare(context.Background(), SLO, policies...)
	if err != nil {
		return nil, err
	}
	res := &PolicyCompareResult{
		Workload:     w.Spec.Name,
		Engine:       server.RedisLike,
		Measurements: session.MeasureCount(),
	}
	for _, rep := range reps {
		res.Rows = append(res.Rows, PolicyCompareRow{
			Policy:            rep.Policy,
			EstTputAtHalfCost: rep.Curve.PointAtCost(0.5).EstThroughputOps,
			AdvisedCost:       rep.Advice.Point.CostFactor,
			AdvisedSavings:    1 - rep.Advice.Point.CostFactor,
		})
	}
	return res, nil
}

// Render implements the experiment output.
func (r *PolicyCompareResult) Render(w io.Writer) error {
	t := report.NewTable(
		fmt.Sprintf("Tiering-policy comparison on one baseline measurement (%s, %s; %d measurement)",
			r.Workload, engineLabel(r.Engine), r.Measurements),
		"policy", "est ops/s @ cost 0.5", "advised cost (10% SLO)", "savings")
	for _, row := range r.Rows {
		t.AddRow(row.Policy, fmt.Sprintf("%.0f", row.EstTputAtHalfCost),
			fmt.Sprintf("%.3f", row.AdvisedCost), fmt.Sprintf("%.1f%%", row.AdvisedSavings*100))
	}
	return t.Render(w)
}
