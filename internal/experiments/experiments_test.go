package experiments

import (
	"bytes"
	"strings"
	"testing"

	"mnemo/internal/server"
)

func TestScaleValidate(t *testing.T) {
	if err := Full.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Quick.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Scale{}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero scale accepted")
	}
}

func TestFig1(t *testing.T) {
	r, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Coefficients) != 3 || len(r.Shares) < 10 {
		t.Fatalf("coeffs %d shares %d", len(r.Coefficients), len(r.Shares))
	}
	for _, s := range r.Shares {
		if s.MemoryShare < 0.5 || s.MemoryShare > 0.9 {
			t.Errorf("%s/%s share %.2f outside Fig 1 band", s.Provider, s.Instance, s.MemoryShare)
		}
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil || buf.Len() == 0 {
		t.Fatal("render failed")
	}
}

func TestTable1(t *testing.T) {
	r := Table1()
	if lf := r.LatencyFactor(); lf < 3.6 || lf > 3.65 {
		t.Errorf("latency factor %.3f, want 3.62", lf)
	}
	if bf := r.BandwidthFactor(); bf < 0.118 || bf > 0.125 {
		t.Errorf("bandwidth factor %.3f, want ≈0.12", bf)
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FastMem") {
		t.Error("render missing node names")
	}
}

func TestTable2(t *testing.T) {
	r, err := Table2(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Rows[0].CostReduction != 1 || r.Rows[2].CostReduction != 0.2 {
		t.Error("endpoints wrong")
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig3ShapesDistinguishDistributions(t *testing.T) {
	r, err := Fig3(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.CDFs) != 4 {
		t.Fatalf("cdfs = %d", len(r.CDFs))
	}
	at := func(name string, frac float64) float64 {
		for _, c := range r.CDFs {
			if c.Name != name {
				continue
			}
			idx := int(frac * float64(len(c.X)-1))
			return c.Y[idx]
		}
		t.Fatalf("cdf %q missing", name)
		return 0
	}
	// Hotspot: 20% of key IDs hold 90% of probability.
	if v := at("hotspot", 0.2); v < 0.85 {
		t.Errorf("hotspot CDF at 20%% keys = %.2f, want ≥0.85", v)
	}
	// Zipfian concentrates at low IDs; scrambled does not.
	if at("zipfian", 0.1) <= at("scrambled_zipfian", 0.1) {
		t.Error("zipfian should concentrate at low key IDs; scrambled should not")
	}
	// Latest is near-diagonal: at 50% of keys ≈ 50% of probability.
	if v := at("latest", 0.5); v < 0.35 || v > 0.7 {
		t.Errorf("latest CDF at 50%% keys = %.2f, want near diagonal", v)
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig4Ordering(t *testing.T) {
	r := Fig4(1)
	if len(r.CDFs) != 3 {
		t.Fatalf("cdfs = %d", len(r.CDFs))
	}
	// Median (q=0.5 is index 6 of the quantile list) sizes must be
	// ordered caption < text < thumbnail (log10 ≈ 3, 4, 5).
	med := func(i int) float64 { return r.CDFs[i].X[6] }
	if !(med(0) < med(1) && med(1) < med(2)) {
		t.Errorf("size medians not ordered: %.2f %.2f %.2f", med(0), med(1), med(2))
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig5aShapes(t *testing.T) {
	r, err := Fig5a(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Curves) != 3 {
		t.Fatalf("curves = %d", len(r.Curves))
	}
	for _, c := range r.Curves {
		// Measured throughput grows from slow to fast baseline.
		slow := c.MeasTput[0]
		fast := c.MeasTput[len(c.MeasTput)-1]
		if fast <= slow {
			t.Errorf("%s: fast %.0f not above slow %.0f", c.Workload, fast, slow)
		}
		// Estimate endpoints bracket the same range (within noise).
		if len(c.EstTput) < 10 {
			t.Errorf("%s: estimate curve too sparse", c.Workload)
		}
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "trending") {
		t.Error("render missing workload labels")
	}
}

func TestFig5bWriteHeavyLessImpacted(t *testing.T) {
	r, err := Fig5b(Quick, 2)
	if err != nil {
		t.Fatal(err)
	}
	ratio := func(c *CurveComparison) float64 {
		return c.MeasTput[len(c.MeasTput)-1] / c.MeasTput[0]
	}
	timeline, edit := r.Curves[0], r.Curves[1]
	if ratio(edit) >= ratio(timeline) {
		t.Errorf("write-heavy improvement %.3f not below read-only %.3f",
			ratio(edit), ratio(timeline))
	}
}

func TestFig5cLargeRecordsBiggerKnee(t *testing.T) {
	r, err := Fig5c(Quick, 3)
	if err != nil {
		t.Fatal(err)
	}
	ratio := func(c *CurveComparison) float64 {
		return c.MeasTput[len(c.MeasTput)-1] / c.MeasTput[0]
	}
	big, mid, small := r.Curves[0], r.Curves[1], r.Curves[2]
	if !(ratio(big) > ratio(mid) && ratio(mid) > ratio(small)) {
		t.Errorf("size impact not ordered: 100KB %.3f, 10KB %.3f, 1KB %.3f",
			ratio(big), ratio(mid), ratio(small))
	}
}

func TestFig8aAccuracy(t *testing.T) {
	r, err := Fig8a(Quick, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Errors) != 3 {
		t.Fatalf("engines = %d", len(r.Errors))
	}
	// Paper: 0.07% median at full scale; Quick scale has 10× fewer
	// requests so noise averages less — allow 1%.
	if r.OverallMedianPct > 1.0 {
		t.Errorf("overall median error %.3f%% too high", r.OverallMedianPct)
	}
	for name, b := range r.Boxes {
		if b.N == 0 {
			t.Errorf("%s: no samples", name)
		}
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig8bSensitivityOrdering(t *testing.T) {
	r, err := Fig8b(Quick, 5)
	if err != nil {
		t.Fatal(err)
	}
	d := r.Slowdowns[server.DynamoLike.String()]
	re := r.Slowdowns[server.RedisLike.String()]
	m := r.Slowdowns[server.MemcachedLike.String()]
	if !(d > re && re > m) {
		t.Errorf("slowdowns not ordered: dynamo %.2f, redis %.2f, memcached %.2f", d, re, m)
	}
	if m > 1.12 {
		t.Errorf("memcached slowdown %.2f; should be barely influenced", m)
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig8cdeLatencies(t *testing.T) {
	r, err := Fig8cde(Quick, server.RedisLike, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cost) != len(r.AvgMeasNs) || len(r.Cost) != len(r.P99Ns) {
		t.Fatal("ragged series")
	}
	// Average latency estimate is accurate.
	if r.AvgErrMedianPct > 2 {
		t.Errorf("avg latency median error %.2f%% too high", r.AvgErrMedianPct)
	}
	// Tails exceed averages everywhere.
	for i := range r.Cost {
		if r.P99Ns[i] < r.AvgMeasNs[i] {
			t.Errorf("p99 below mean at point %d", i)
		}
		if r.P99Ns[i] < r.P95Ns[i] {
			t.Errorf("p99 below p95 at point %d", i)
		}
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig8fMnemoTGain(t *testing.T) {
	r, err := Fig8f(Quick, 7)
	if err != nil {
		t.Fatal(err)
	}
	if r.TieredGainPct <= 0 {
		t.Errorf("MnemoT gain %.2f%% at cost 0.5 not positive", r.TieredGainPct)
	}
	if r.GainAt76Pct < -0.5 {
		t.Errorf("MnemoT gain %.2f%% at 70:30 should not be negative", r.GainAt76Pct)
	}
	if r.MnemoTMedianErrPct > 2 {
		t.Errorf("MnemoT estimate median error %.3f%% too high on thumbnails", r.MnemoTMedianErrPct)
	}
	// Mixed sizes stress the global-average model; it must still stay
	// within single-digit percent.
	if r.MixedSizeMedianErrPct > 8 {
		t.Errorf("mixed-size MnemoT error %.3f%% too high", r.MixedSizeMedianErrPct)
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig9Shape(t *testing.T) {
	r, err := Fig9(Quick, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 15 {
		t.Fatalf("cells = %d", len(r.Cells))
	}
	mem := server.MemcachedLike.String()
	red := server.RedisLike.String()
	dyn := server.DynamoLike.String()
	// Memcached reaches the floor on every workload.
	for _, wl := range []string{"trending", "news_feed", "timeline", "edit_thumbnail", "trending_preview"} {
		if c := r.Cost(wl, mem); c > 0.25 {
			t.Errorf("memcached %s cost %.3f; should reach the 0.2 floor", wl, c)
		}
	}
	// News Feed allows the least savings for Redis; Trending much more.
	if r.Cost("news_feed", red) <= r.Cost("trending", red) {
		t.Error("news_feed should cost more than trending on redis-like")
	}
	// Edit Thumbnail saves at least as much as Timeline (writes cheap).
	if r.Cost("edit_thumbnail", red) > r.Cost("timeline", red)+0.02 {
		t.Error("edit_thumbnail should not cost more than timeline")
	}
	// DynamoDB saves least on every workload.
	for _, wl := range []string{"trending", "news_feed", "timeline"} {
		if r.Cost(wl, dyn) < r.Cost(wl, red) {
			t.Errorf("%s: dynamo cost %.3f below redis %.3f", wl, r.Cost(wl, dyn), r.Cost(wl, red))
		}
	}
	if r.Cost("missing", red) != 1 {
		t.Error("missing pair should default to 1")
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestTable4Overheads(t *testing.T) {
	r, err := Table4(Quick, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Reports) != 3 {
		t.Fatalf("reports = %d", len(r.Reports))
	}
	mnemo, instr, tahoe := r.Reports[0], r.Reports[1], r.Reports[2]
	if !(mnemo.Total() < instr.Total() && mnemo.Total() < tahoe.Total()) {
		t.Errorf("MnemoT not cheapest: %v vs %v vs %v",
			mnemo.Total(), instr.Total(), tahoe.Total())
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestDownsamplePreservesTradeoffs(t *testing.T) {
	r, err := Downsample(Quick, 10, []int{2, 5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Advised cost from the sampled trace stays close to full-trace.
		if diff := row.AdvisedCost - r.FullCost; diff > 0.15 || diff < -0.15 {
			t.Errorf("factor %d: advised cost %.3f drifts from full %.3f",
				row.Factor, row.AdvisedCost, r.FullCost)
		}
		// The estimate still works on the sampled trace.
		if row.MedianErrPct > 2 {
			t.Errorf("factor %d: median err %.3f%%", row.Factor, row.MedianErrPct)
		}
		if row.CurveDeviationPct > 20 {
			t.Errorf("factor %d: curve deviation %.1f%%", row.Factor, row.CurveDeviationPct)
		}
	}
	if _, err := Downsample(Quick, 10, []int{0}); err == nil {
		t.Error("factor 0 accepted")
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestAblationLLC(t *testing.T) {
	r, err := AblationLLC(Quick, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Both configurations keep the estimate accurate.
	if r.WithLLC.MedianErrPct > 2 || r.WithoutLLC.MedianErrPct > 2 {
		t.Errorf("errors: with %.3f%%, without %.3f%%", r.WithLLC.MedianErrPct, r.WithoutLLC.MedianErrPct)
	}
	// Removing the LLC makes SlowMem look worse (no hot-key absorption).
	if r.WithoutLLC.Slowdown < r.WithLLC.Slowdown {
		t.Errorf("no-LLC slowdown %.2f below with-LLC %.2f", r.WithoutLLC.Slowdown, r.WithLLC.Slowdown)
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestAblationNoise(t *testing.T) {
	r, err := AblationNoise(Quick, 12, []float64{0, 0.02, 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatal("rows wrong")
	}
	// Zero noise → near-zero error; error grows with sigma.
	if r.Rows[0].MedianErrPct > 0.2 {
		t.Errorf("noise-free median error %.4f%% too high", r.Rows[0].MedianErrPct)
	}
	if r.Rows[2].MedianErrPct < r.Rows[0].MedianErrPct {
		t.Error("error should grow with noise")
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestAblationKnapsack(t *testing.T) {
	r, err := AblationKnapsack(Quick, 13)
	if err != nil {
		t.Fatal(err)
	}
	if r.ExactCoverage < r.GreedyCoverage-1e-9 {
		t.Errorf("exact %.4f below greedy %.4f", r.ExactCoverage, r.GreedyCoverage)
	}
	// The paper's justification for greedy: it is near-optimal at
	// key-value granularity.
	if r.GreedyCoverage < 0.95*r.ExactCoverage {
		t.Errorf("greedy %.4f much worse than exact %.4f", r.GreedyCoverage, r.ExactCoverage)
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestExtTech(t *testing.T) {
	r, err := ExtTech(Quick, 19)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	slow, _ := r.Row("SlowMem")
	cxl, ok := r.Row("CXL-DRAM")
	if !ok {
		t.Fatal("CXL row missing")
	}
	far, _ := r.Row("FarMemory")
	// CXL is fastest of the slow tiers; far memory slowest.
	if cxl.Slowdown >= slow.Slowdown {
		t.Errorf("CXL slowdown %.2f not below paper NVM %.2f", cxl.Slowdown, slow.Slowdown)
	}
	if far.Slowdown <= slow.Slowdown {
		t.Errorf("far memory slowdown %.2f not above paper NVM %.2f", far.Slowdown, slow.Slowdown)
	}
	// CXL tolerates near-total placement: advised cost close to its p.
	if cxl.AdvisedCost > cxl.PriceFactor+0.15 {
		t.Errorf("CXL advised cost %.3f far above its floor %.2f", cxl.AdvisedCost, cxl.PriceFactor)
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestYCSBCore(t *testing.T) {
	r, err := YCSBCore(Quick, 18)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 15 {
		t.Fatalf("cells = %d", len(r.Cells))
	}
	// 1 KB records: every store tolerates SlowMem almost fully, so costs
	// sit near the 0.2 floor.
	for _, c := range r.Cells {
		if c.CostFactor > 0.5 {
			t.Errorf("%s/%s: cost %.3f suspiciously high for 1KB records",
				c.Workload, c.Engine, c.CostFactor)
		}
	}
	// F's RMW trace must profile without error and favor writes slightly.
	if r.Cost("ycsb_f", server.RedisLike.String()) > r.Cost("ycsb_c", server.RedisLike.String())+0.1 {
		t.Error("F (write-mixed) should not cost much more than C (read-only)")
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestExtTails(t *testing.T) {
	r, err := ExtTails(Quick, server.RedisLike, 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no rows")
	}
	if r.MedianP95ErrPct > 8 {
		t.Errorf("p95 median error %.2f%% too high", r.MedianP95ErrPct)
	}
	if r.MedianP99ErrPct > 12 {
		t.Errorf("p99 median error %.2f%% too high", r.MedianP99ErrPct)
	}
	for _, row := range r.Rows {
		if row.PredP95Ns <= 0 || row.PredP99Ns < row.PredP95Ns {
			t.Errorf("k=%d: implausible predictions %+v", row.KeysInFast, row)
		}
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestModeBExternalOrderings(t *testing.T) {
	r, err := ModeB(Quick, 16, []int{1, 256})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	full, sparse := r.Rows[0], r.Rows[1]
	// Full-rate page profiling approximates MnemoT closely.
	if diff := full.AdvisedCost - r.MnemoTAdvisedCost; diff > 0.1 || diff < -0.1 {
		t.Errorf("full-rate external cost %.3f far from MnemoT %.3f",
			full.AdvisedCost, r.MnemoTAdvisedCost)
	}
	// Sparse sampling collects far fewer observations.
	if sparse.Samples >= full.Samples/50 {
		t.Errorf("sparse sampler took %d of %d samples", sparse.Samples, full.Samples)
	}
	// Sampled orderings must not beat the reference at equal cost by a
	// margin (they can only lose information).
	if sparse.EstTputAtHalfCost > r.MnemoTTputAtHalfCost*1.02 {
		t.Errorf("sparse ordering %.0f ops/s implausibly above MnemoT %.0f",
			sparse.EstTputAtHalfCost, r.MnemoTTputAtHalfCost)
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ModeB(Quick, 16, []int{0}); err == nil {
		t.Error("rate 0 should fail")
	}
}

func TestAblationSizeAware(t *testing.T) {
	r, err := AblationSizeAware(Quick, 15)
	if err != nil {
		t.Fatal(err)
	}
	// The extension must repair the mixed-size bias substantially...
	if r.MixedSizeAwareErrPct >= r.MixedGlobalErrPct/2 {
		t.Errorf("size-aware %.3f%% not well below global %.3f%% on mixed sizes",
			r.MixedSizeAwareErrPct, r.MixedGlobalErrPct)
	}
	// ...and must not hurt the single-class case.
	if r.ThumbSizeAwareErrPct > r.ThumbGlobalErrPct+0.5 {
		t.Errorf("size-aware %.3f%% regressed thumbnails vs global %.3f%%",
			r.ThumbSizeAwareErrPct, r.ThumbGlobalErrPct)
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestAblationAnchor(t *testing.T) {
	r, err := AblationAnchor(Quick, 14)
	if err != nil {
		t.Fatal(err)
	}
	// Both anchors work; neither should be wildly off.
	if r.FastAnchorMedianErrPct > 2 || r.SlowAnchorMedianErrPct > 2 {
		t.Errorf("anchor errors: fast %.3f%%, slow %.3f%%",
			r.FastAnchorMedianErrPct, r.SlowAnchorMedianErrPct)
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
}
