package experiments

import (
	"context"
	"fmt"
	"io"

	"mnemo/internal/core"
	"mnemo/internal/report"
	"mnemo/internal/server"
	"mnemo/internal/stats"
	"mnemo/internal/ycsb"
)

// AblationSizeAwareResult compares the paper's global-average estimate
// with the reproduction's per-size-class extension on the two cases that
// separate them: a MnemoT ordering over mixed record sizes (worst case
// for the global model) and over single-class thumbnails (where both
// models coincide).
type AblationSizeAwareResult struct {
	MixedGlobalErrPct    float64
	MixedSizeAwareErrPct float64
	ThumbGlobalErrPct    float64
	ThumbSizeAwareErrPct float64
}

// AblationSizeAware runs MnemoT profiles of Trending Preview (mixed
// sizes) and Timeline (thumbnails) on Redis-like with both estimate
// models, validating each against real executions.
func AblationSizeAware(scale Scale, seed int64) (*AblationSizeAwareResult, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	res := &AblationSizeAwareResult{}
	run := func(spec ycsb.Spec, sizeAware bool) (float64, error) {
		w, err := scale.workload(spec)
		if err != nil {
			return 0, err
		}
		cfg := scale.coreConfig(server.RedisLike, seed)
		cfg.SizeAwareEstimate = sizeAware
		rep, err := core.Profile(context.Background(), cfg, w, core.MnemoT, 0)
		if err != nil {
			return 0, err
		}
		points, err := core.Validate(context.Background(), cfg, w, rep.Curve, rep.Ordering, scale.CurveSamples)
		if err != nil {
			return 0, err
		}
		return stats.Median(core.AbsErrors(points)), nil
	}
	var err error
	if res.MixedGlobalErrPct, err = run(ycsb.TrendingPreview(seed), false); err != nil {
		return nil, err
	}
	if res.MixedSizeAwareErrPct, err = run(ycsb.TrendingPreview(seed), true); err != nil {
		return nil, err
	}
	if res.ThumbGlobalErrPct, err = run(ycsb.Timeline(seed), false); err != nil {
		return nil, err
	}
	if res.ThumbSizeAwareErrPct, err = run(ycsb.Timeline(seed), true); err != nil {
		return nil, err
	}
	return res, nil
}

// Render implements the experiment output.
func (r *AblationSizeAwareResult) Render(w io.Writer) error {
	t := report.NewTable("Ablation — global-average vs size-aware estimate (MnemoT ordering, Redis-like)",
		"workload", "global model err %", "size-aware err %")
	t.AddRow("trending_preview (mixed sizes)",
		fmt.Sprintf("%.4f", r.MixedGlobalErrPct), fmt.Sprintf("%.4f", r.MixedSizeAwareErrPct))
	t.AddRow("timeline (thumbnails)",
		fmt.Sprintf("%.4f", r.ThumbGlobalErrPct), fmt.Sprintf("%.4f", r.ThumbSizeAwareErrPct))
	return t.Render(w)
}
