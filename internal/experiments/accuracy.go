package experiments

import (
	"context"
	"fmt"
	"io"
	"math"

	"mnemo/internal/core"
	"mnemo/internal/report"
	"mnemo/internal/server"
	"mnemo/internal/stats"
	"mnemo/internal/ycsb"
)

// Fig8aResult is the estimate-error distribution per key-value store.
type Fig8aResult struct {
	// Errors maps engine name → |throughput error %| samples across all
	// Table III workloads.
	Errors map[string][]float64
	// Boxes are the corresponding five-number summaries.
	Boxes map[string]stats.Boxplot
	// OverallMedianPct is the paper's headline number (0.07%).
	OverallMedianPct float64
}

// Fig8a validates the estimate at sampled tierings for every workload ×
// engine pair and collects the percentage errors.
func Fig8a(scale Scale, seed int64) (*Fig8aResult, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	res := &Fig8aResult{Errors: map[string][]float64{}, Boxes: map[string]stats.Boxplot{}}
	var all []float64
	for _, e := range server.Engines() {
		for _, spec := range ycsb.TableIII(seed) {
			w, err := scale.workload(spec)
			if err != nil {
				return nil, err
			}
			cfg := scale.coreConfig(e, seed)
			rep, err := core.Profile(context.Background(), cfg, w, core.Touch, 0)
			if err != nil {
				return nil, err
			}
			points, err := core.Validate(context.Background(), cfg, w, rep.Curve, rep.Ordering, scale.CurveSamples)
			if err != nil {
				return nil, err
			}
			errs := core.AbsErrors(points)
			res.Errors[e.String()] = append(res.Errors[e.String()], errs...)
			all = append(all, errs...)
		}
	}
	for name, errs := range res.Errors {
		res.Boxes[name] = stats.NewBoxplot(errs)
	}
	res.OverallMedianPct = stats.Median(all)
	return res, nil
}

// Render implements the experiment output.
func (r *Fig8aResult) Render(w io.Writer) error {
	t := report.NewTable("Fig 8a — estimate |error| %% distribution per store (paper: 0.07% median)",
		"store", "min", "q1", "median", "q3", "max", "n")
	for _, e := range server.Engines() {
		b, ok := r.Boxes[e.String()]
		if !ok {
			continue
		}
		t.AddRow(engineLabel(e), b.Min, b.Q1, b.Median, b.Q3, b.Max, b.N)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "overall median |error| = %.4f%%\n", r.OverallMedianPct)
	return err
}

// Fig8bResult compares the stores on the Trending workload.
type Fig8bResult struct {
	Curves []*CurveComparison
	// Slowdowns maps engine → all-SlowMem runtime inflation.
	Slowdowns map[string]float64
}

// Fig8b measures the Trending cost/throughput curve on all three stores.
func Fig8b(scale Scale, seed int64) (*Fig8bResult, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	res := &Fig8bResult{Slowdowns: map[string]float64{}}
	for _, e := range server.Engines() {
		cc, rep, err := measuredCurve(scale, e, ycsb.Trending(seed), seed, core.Touch)
		if err != nil {
			return nil, err
		}
		res.Curves = append(res.Curves, cc)
		res.Slowdowns[e.String()] = rep.Baselines.SlowdownAllSlow()
	}
	return res, nil
}

// Render implements the experiment output.
func (r *Fig8bResult) Render(w io.Writer) error {
	var series []report.Series
	for _, c := range r.Curves {
		series = append(series, report.Series{Label: c.Engine, X: c.MeasCost, Y: normTo(c.MeasTput, c.MeasTput[len(c.MeasTput)-1])})
	}
	if err := report.Plot(w, "Fig 8b — Trending across stores (throughput ÷ FastMem-only)",
		"memory cost factor R(p)", "relative throughput", 72, 16, series...); err != nil {
		return err
	}
	t := report.NewTable("", "store", "all-SlowMem slowdown")
	for _, e := range server.Engines() {
		t.AddRow(engineLabel(e), fmt.Sprintf("%.2fx", r.Slowdowns[e.String()]))
	}
	return t.Render(w)
}

func normTo(ys []float64, base float64) []float64 {
	out := make([]float64, len(ys))
	for i, y := range ys {
		out[i] = y / base
	}
	return out
}

// Fig8cdeResult holds average and tail latencies across the curve.
type Fig8cdeResult struct {
	Engine string
	// Cost of each measured tiering.
	Cost []float64
	// Measured latencies (ns) and the model's average-latency estimate.
	AvgMeasNs, AvgEstNs []float64
	P95Ns, P99Ns        []float64
	// AvgErrMedianPct is the median |avg-latency error|.
	AvgErrMedianPct float64
}

// Fig8cde measures average (Fig 8c) and tail (Fig 8d: p95, Fig 8e: p99)
// latencies for Trending on the given engine across tierings.
func Fig8cde(scale Scale, e server.Engine, seed int64) (*Fig8cdeResult, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	cc, rep, err := measuredCurve(scale, e, ycsb.Trending(seed), seed, core.Touch)
	if err != nil {
		return nil, err
	}
	res := &Fig8cdeResult{Engine: e.String()}
	// Slow baseline first.
	res.Cost = append(res.Cost, rep.Curve.SlowOnly().CostFactor)
	res.AvgMeasNs = append(res.AvgMeasNs, rep.Baselines.Slow.AvgNs)
	res.AvgEstNs = append(res.AvgEstNs, rep.Curve.SlowOnly().EstAvgLatencyNs)
	res.P95Ns = append(res.P95Ns, rep.Baselines.Slow.P95Ns)
	res.P99Ns = append(res.P99Ns, rep.Baselines.Slow.P99Ns)
	var errs []float64
	for _, vp := range cc.Validation {
		res.Cost = append(res.Cost, vp.Point.CostFactor)
		res.AvgMeasNs = append(res.AvgMeasNs, vp.Measured.AvgNs)
		res.AvgEstNs = append(res.AvgEstNs, vp.Point.EstAvgLatencyNs)
		res.P95Ns = append(res.P95Ns, vp.Measured.P95Ns)
		res.P99Ns = append(res.P99Ns, vp.Measured.P99Ns)
		errs = append(errs, math.Abs(vp.AvgLatencyErrPct))
	}
	res.Cost = append(res.Cost, 1)
	res.AvgMeasNs = append(res.AvgMeasNs, rep.Baselines.Fast.AvgNs)
	res.AvgEstNs = append(res.AvgEstNs, rep.Curve.FastOnly().EstAvgLatencyNs)
	res.P95Ns = append(res.P95Ns, rep.Baselines.Fast.P95Ns)
	res.P99Ns = append(res.P99Ns, rep.Baselines.Fast.P99Ns)
	if len(errs) > 0 {
		res.AvgErrMedianPct = stats.Median(errs)
	}
	return res, nil
}

// Render implements the experiment output.
func (r *Fig8cdeResult) Render(w io.Writer) error {
	if err := report.Plot(w,
		fmt.Sprintf("Fig 8c — average latency, %s (estimate vs measured)", r.Engine),
		"memory cost factor R(p)", "avg latency µs", 72, 14,
		report.Series{Label: "measured", X: r.Cost, Y: scaleAll(r.AvgMeasNs, 1e-3)},
		report.Series{Label: "estimate", X: r.Cost, Y: scaleAll(r.AvgEstNs, 1e-3)},
	); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "median |avg latency error| = %.4f%%\n", r.AvgErrMedianPct); err != nil {
		return err
	}
	return report.Plot(w,
		fmt.Sprintf("Fig 8d/8e — tail latencies, %s (not estimated by the model)", r.Engine),
		"memory cost factor R(p)", "latency µs", 72, 14,
		report.Series{Label: "p95", X: r.Cost, Y: scaleAll(r.P95Ns, 1e-3)},
		report.Series{Label: "p99", X: r.Cost, Y: scaleAll(r.P99Ns, 1e-3)},
	)
}

func scaleAll(xs []float64, f float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x * f
	}
	return out
}

// Fig8fResult compares stand-alone Mnemo's touch ordering against
// MnemoT's tiered ordering, with the tiered estimate validated.
type Fig8fResult struct {
	Touch  *CurveComparison
	MnemoT *CurveComparison
	// TieredGainPct is MnemoT's estimated throughput gain over touch
	// ordering in the curve's steep region (cost 0.5); GainAt76Pct is the
	// paper's 70:30 capacity point (≈6% in the paper).
	TieredGainPct float64
	GainAt76Pct   float64
	// MnemoTMedianErrPct is the estimate accuracy on the tiered ordering.
	MnemoTMedianErrPct float64
	// MixedSizeMedianErrPct is the tiered-estimate accuracy on the mixed
	// record-size preview workload, where MnemoT's size-biased slow set
	// stresses the global-average service-time model — a limitation the
	// reproduction surfaces (see EXPERIMENTS.md).
	MixedSizeMedianErrPct float64
}

// Fig8f runs both orderings on the Timeline workload (scrambled zipfian:
// §V describes MnemoT "transforming the input distribution into a
// zipfian-like one"), plus a mixed-size stress on Trending Preview.
func Fig8f(scale Scale, seed int64) (*Fig8fResult, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	spec := ycsb.Timeline(seed)
	touch, _, err := measuredCurve(scale, server.RedisLike, spec, seed, core.Touch)
	if err != nil {
		return nil, err
	}
	tiered, _, err := measuredCurve(scale, server.RedisLike, spec, seed, core.MnemoT)
	if err != nil {
		return nil, err
	}
	res := &Fig8fResult{Touch: touch, MnemoT: tiered}
	if at := estTputAtCost(touch, 0.5); at > 0 {
		res.TieredGainPct = (estTputAtCost(tiered, 0.5)/at - 1) * 100
	}
	if at := estTputAtCost(touch, 0.76); at > 0 {
		res.GainAt76Pct = (estTputAtCost(tiered, 0.76)/at - 1) * 100
	}
	res.MnemoTMedianErrPct = stats.Median(core.AbsErrors(tiered.Validation))

	mixed, _, err := measuredCurve(scale, server.RedisLike, ycsb.TrendingPreview(seed), seed, core.MnemoT)
	if err != nil {
		return nil, err
	}
	res.MixedSizeMedianErrPct = stats.Median(core.AbsErrors(mixed.Validation))
	return res, nil
}

func estTputAtCost(c *CurveComparison, cost float64) float64 {
	for i, x := range c.EstCost {
		if x >= cost {
			return c.EstTput[i]
		}
	}
	return c.EstTput[len(c.EstTput)-1]
}

// Render implements the experiment output.
func (r *Fig8fResult) Render(w io.Writer) error {
	base := r.Touch.MeasTput[0]
	if err := report.Plot(w, "Fig 8f — Mnemo (touch order) vs MnemoT (tiered order) estimates",
		"memory cost factor R(p)", "throughput ÷ SlowMem-only", 72, 16,
		report.Series{Label: "mnemo est", X: r.Touch.EstCost, Y: normTo(r.Touch.EstTput, base)},
		report.Series{Label: "mnemot est", X: r.MnemoT.EstCost, Y: normTo(r.MnemoT.EstTput, base)},
		report.Series{Label: "mnemot meas", X: r.MnemoT.MeasCost, Y: normTo(r.MnemoT.MeasTput, base)},
	); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w,
		"MnemoT gain: %.1f%% at cost 0.5, %.1f%% at 70:30 capacity (paper ≈6%%)\n"+
			"MnemoT estimate median |error|: %.4f%% (thumbnails), %.4f%% (mixed sizes — model stress)\n",
		r.TieredGainPct, r.GainAt76Pct, r.MnemoTMedianErrPct, r.MixedSizeMedianErrPct)
	return err
}
