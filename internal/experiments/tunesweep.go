package experiments

import (
	"context"
	"fmt"
	"io"

	"mnemo/internal/report"
	"mnemo/internal/server"
	"mnemo/internal/tune"
	"mnemo/internal/ycsb"
)

// TuneSweepRow is one workload's tuning outcome.
type TuneSweepRow struct {
	Workload string
	// Evals is how many candidate configurations the search evaluated.
	Evals int
	// Measurements is how many Fast+Slow baseline measurements those
	// evaluations actually executed; the artifact cache guarantees 1.
	// A naive sweep would execute Evals of them.
	Measurements int64
	// BestDefault / DefaultCost name the cheapest registered policy at
	// default parameters and its advised cost factor.
	BestDefault string
	DefaultCost float64
	// Winner / WinnerCost are the tuned configuration and its cost.
	Winner     string
	WinnerCost float64
	// Gain is DefaultCost − WinnerCost (positive = tuning beat every
	// default).
	Gain float64
}

// TuneSweepResult summarizes mnemo-tune's search across the stock
// workloads: what the tuned configuration saves over the best
// default-parameter policy, and how memoization collapses the sweep's
// measurement bill to one baseline per workload.
type TuneSweepResult struct {
	Engine server.Engine
	SLO    float64
	Budget int
	Rows   []TuneSweepRow
}

// TuneSweep runs the mnemo-tune search (DESIGN.md §17) on two stock
// workloads at this scale and reports the winner against the
// default-parameter baselines. Each workload gets its own tuner so the
// per-workload measurement count is visible; within a workload every
// candidate shares one memoized baseline measurement.
func TuneSweep(scale Scale, seed int64) (*TuneSweepResult, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	budget := 48
	if scale.Name == "quick" {
		budget = 16
	}
	res := &TuneSweepResult{Engine: server.RedisLike, SLO: SLO, Budget: budget}
	for _, spec := range []ycsb.Spec{ycsb.Trending(seed), ycsb.NewsFeed(seed)} {
		w, err := scale.workload(spec)
		if err != nil {
			return nil, err
		}
		cfg := tune.Config{
			Core:   scale.coreConfig(server.RedisLike, seed),
			SLO:    SLO,
			Budget: budget,
			Seed:   seed,
		}
		r, err := tune.New().Run(context.Background(), cfg, w)
		if err != nil {
			return nil, fmt.Errorf("tune %s: %w", w.Spec.Name, err)
		}
		res.Rows = append(res.Rows, TuneSweepRow{
			Workload:     w.Spec.Name,
			Evals:        len(r.Evals),
			Measurements: r.Stats.Measurements,
			BestDefault:  r.Defaults[0].PolicyName,
			DefaultCost:  r.Defaults[0].CostFactor,
			Winner:       r.Winner.PolicyName,
			WinnerCost:   r.Winner.CostFactor,
			Gain:         r.Gain(),
		})
	}
	return res, nil
}

// Render implements the experiment output.
func (r *TuneSweepResult) Render(w io.Writer) error {
	t := report.NewTable(
		fmt.Sprintf("mnemo-tune search (%s, %.0f%% SLO, budget %d; memoized baselines)",
			engineLabel(r.Engine), r.SLO*100, r.Budget),
		"workload", "evals", "measurements", "best default", "cost", "tuned winner", "cost", "gain")
	for _, row := range r.Rows {
		t.AddRow(row.Workload, row.Evals, row.Measurements,
			row.BestDefault, fmt.Sprintf("%.4f", row.DefaultCost),
			row.Winner, fmt.Sprintf("%.4f", row.WinnerCost),
			fmt.Sprintf("%+.4f", row.Gain))
	}
	return t.Render(w)
}
