package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"

	"mnemo/internal/core"
	"mnemo/internal/dist"
	"mnemo/internal/report"
	"mnemo/internal/server"
	"mnemo/internal/ycsb"
)

// Fig3Result holds the key-space CDF per request distribution.
type Fig3Result struct {
	Keys     int
	Requests int
	CDFs     []NamedCDF
}

// NamedCDF is one labeled cumulative curve.
type NamedCDF struct {
	Name string
	// X[i], Y[i]: cumulative probability Y of a request targeting a key
	// with ID ≤ X.
	X, Y []float64
}

// Fig3 draws each Fig 3 distribution over the scaled key space and
// computes the probability CDF across key IDs.
func Fig3(scale Scale, seed int64) (*Fig3Result, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	choosers := []struct {
		name string
		spec ycsb.DistSpec
	}{
		{"hotspot", ycsb.DistSpec{Kind: ycsb.Hotspot, HotSetFraction: 0.2, HotOpnFraction: 0.9}},
		{"latest", ycsb.DistSpec{Kind: ycsb.Latest}},
		{"zipfian", ycsb.DistSpec{Kind: ycsb.Zipfian}},
		{"scrambled_zipfian", ycsb.DistSpec{Kind: ycsb.ScrambledZipfian}},
	}
	res := &Fig3Result{Keys: scale.Keys, Requests: scale.Requests}
	for _, c := range choosers {
		rng := rand.New(rand.NewSource(seed))
		counts := dist.Counts(c.spec.New(scale.Keys, scale.Requests), scale.Requests, rng)
		cdf := dist.CDFByKeyID(counts)
		nc := NamedCDF{Name: c.name}
		// Subsample the curve to ~200 points for plotting.
		step := len(cdf) / 200
		if step < 1 {
			step = 1
		}
		for i := 0; i < len(cdf); i += step {
			nc.X = append(nc.X, float64(i))
			nc.Y = append(nc.Y, cdf[i])
		}
		res.CDFs = append(res.CDFs, nc)
	}
	return res, nil
}

// Render implements the experiment output.
func (r *Fig3Result) Render(w io.Writer) error {
	series := make([]report.Series, len(r.CDFs))
	for i, c := range r.CDFs {
		series[i] = report.Series{Label: c.Name, X: c.X, Y: c.Y}
	}
	return report.Plot(w, fmt.Sprintf("Fig 3 — CDF of the key space (%d keys, %d requests)", r.Keys, r.Requests),
		"key ID", "P(request ≤ key)", 72, 18, series...)
}

// Fig4Result holds the record-size CDFs of the social-media payloads.
type Fig4Result struct {
	CDFs []NamedCDF
}

// Fig4 samples each size distribution and builds CDFs over log10(size).
func Fig4(seed int64) *Fig4Result {
	res := &Fig4Result{}
	for _, d := range []dist.SizeDist{dist.PhotoCaption(), dist.TextPost(), dist.Thumbnail()} {
		rng := rand.New(rand.NewSource(seed))
		samples := dist.SizeCDF(d, 20000, rng)
		sort.Float64s(samples)
		// Build CDF over log-scaled size, as the paper's Fig 4 axis is
		// logarithmic.
		nc := NamedCDF{Name: d.Name()}
		for _, q := range []float64{0.01, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99} {
			v := samples[int(q*float64(len(samples)-1))]
			nc.X = append(nc.X, math.Log10(v))
			nc.Y = append(nc.Y, q)
		}
		res.CDFs = append(res.CDFs, nc)
	}
	return res
}

// Render implements the experiment output.
func (r *Fig4Result) Render(w io.Writer) error {
	series := make([]report.Series, len(r.CDFs))
	for i, c := range r.CDFs {
		series[i] = report.Series{Label: c.Name, X: c.X, Y: c.Y}
	}
	return report.Plot(w, "Fig 4 — CDF of common data sizes (x = log10 bytes)",
		"log10(size B)", "CDF", 72, 16, series...)
}

// CurveComparison is one workload's estimated curve with measured points.
type CurveComparison struct {
	Workload string
	Engine   string
	// EstCost/EstTput trace the Estimate Engine's curve.
	EstCost, EstTput []float64
	// MeasCost/MeasTput are real executions at sampled tierings
	// (including both baselines).
	MeasCost, MeasTput []float64
	// Validation carries the per-point errors.
	Validation []core.ValidationPoint
}

// measuredCurve profiles a workload and measures it at sampled tierings.
func measuredCurve(scale Scale, e server.Engine, spec ycsb.Spec, seed int64, pol core.TieringPolicy) (*CurveComparison, *core.Report, error) {
	w, err := scale.workload(spec)
	if err != nil {
		return nil, nil, err
	}
	cfg := scale.coreConfig(e, seed)
	rep, err := core.Profile(context.Background(), cfg, w, pol, 0)
	if err != nil {
		return nil, nil, err
	}
	points, err := core.Validate(context.Background(), cfg, w, rep.Curve, rep.Ordering, scale.CurveSamples)
	if err != nil {
		return nil, nil, err
	}
	cc := &CurveComparison{Workload: spec.Name, Engine: e.String(), Validation: points}
	// Subsample the estimate for plotting.
	step := len(rep.Curve.Points) / 120
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(rep.Curve.Points); i += step {
		p := rep.Curve.Points[i]
		cc.EstCost = append(cc.EstCost, p.CostFactor)
		cc.EstTput = append(cc.EstTput, p.EstThroughputOps)
	}
	last := rep.Curve.FastOnly()
	cc.EstCost = append(cc.EstCost, last.CostFactor)
	cc.EstTput = append(cc.EstTput, last.EstThroughputOps)
	// Measured: slow baseline, sampled interior points, fast baseline.
	cc.MeasCost = append(cc.MeasCost, rep.Curve.SlowOnly().CostFactor)
	cc.MeasTput = append(cc.MeasTput, rep.Baselines.Slow.ThroughputOpsSec)
	for _, vp := range points {
		cc.MeasCost = append(cc.MeasCost, vp.Point.CostFactor)
		cc.MeasTput = append(cc.MeasTput, vp.Measured.ThroughputOpsSec)
	}
	cc.MeasCost = append(cc.MeasCost, 1)
	cc.MeasTput = append(cc.MeasTput, rep.Baselines.Fast.ThroughputOpsSec)
	return cc, rep, nil
}

// Fig5Result groups the curve comparisons of one Fig 5 panel.
type Fig5Result struct {
	Title  string
	Curves []*CurveComparison
}

// Fig5a reproduces the key-distribution panel: Redis-like across
// Trending, News Feed and Timeline (read-only thumbnails).
func Fig5a(scale Scale, seed int64) (*Fig5Result, error) {
	return fig5(scale, seed, "Fig 5a — key distribution (Redis-like, readonly thumbnails)",
		[]ycsb.Spec{ycsb.Trending(seed), ycsb.NewsFeed(seed), ycsb.Timeline(seed)})
}

// Fig5b reproduces the read:write panel: Timeline (100:0) vs Edit
// Thumbnail (50:50).
func Fig5b(scale Scale, seed int64) (*Fig5Result, error) {
	return fig5(scale, seed, "Fig 5b — read:write ratio (Redis-like, scrambled zipfian)",
		[]ycsb.Spec{ycsb.Timeline(seed), ycsb.EditThumbnail(seed)})
}

// Fig5c reproduces the record-size panel: the Trending pattern served
// with 100 KB, 10 KB and 1 KB records.
func Fig5c(scale Scale, seed int64) (*Fig5Result, error) {
	specs := make([]ycsb.Spec, 0, 3)
	for _, sk := range []ycsb.SizeKind{ycsb.SizeFixed100KB, ycsb.SizeFixed10KB, ycsb.SizeFixed1KB} {
		s := ycsb.Trending(seed)
		s.Name = "trending_" + sk.String()
		s.Sizes = sk
		specs = append(specs, s)
	}
	return fig5(scale, seed, "Fig 5c — record size (Redis-like, hotspot readonly)", specs)
}

func fig5(scale Scale, seed int64, title string, specs []ycsb.Spec) (*Fig5Result, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	res := &Fig5Result{Title: title}
	for _, spec := range specs {
		cc, _, err := measuredCurve(scale, server.RedisLike, spec, seed, core.Touch)
		if err != nil {
			return nil, err
		}
		res.Curves = append(res.Curves, cc)
	}
	return res, nil
}

// Render implements the experiment output: one plot with the measured
// points and estimate lines normalized to each curve's SlowMem origin so
// different workloads share the axis.
func (r *Fig5Result) Render(w io.Writer) error {
	var series []report.Series
	for _, c := range r.Curves {
		base := c.MeasTput[0]
		norm := func(ys []float64) []float64 {
			out := make([]float64, len(ys))
			for i, y := range ys {
				out[i] = y / base
			}
			return out
		}
		series = append(series,
			report.Series{Label: c.Workload + " est", X: c.EstCost, Y: norm(c.EstTput)},
			report.Series{Label: c.Workload + " meas", X: c.MeasCost, Y: norm(c.MeasTput)},
		)
	}
	if err := report.Plot(w, r.Title, "memory cost factor R(p)", "throughput ÷ SlowMem-only", 72, 18, series...); err != nil {
		return err
	}
	t := report.NewTable("", "workload", "slow ops/s", "fast ops/s", "improvement")
	for _, c := range r.Curves {
		slow := c.MeasTput[0]
		fast := c.MeasTput[len(c.MeasTput)-1]
		t.AddRow(c.Workload, fmt.Sprintf("%.0f", slow), fmt.Sprintf("%.0f", fast),
			fmt.Sprintf("%.0f%%", (fast/slow-1)*100))
	}
	return t.Render(w)
}
