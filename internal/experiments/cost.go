package experiments

import (
	"context"
	"fmt"
	"io"

	"mnemo/internal/core"
	"mnemo/internal/report"
	"mnemo/internal/server"
	"mnemo/internal/ycsb"
)

// Fig9Cell is one bar of Fig 9: the advised memory cost for a workload ×
// store pair under the 10% slowdown SLO.
type Fig9Cell struct {
	Workload   string
	Engine     string
	CostFactor float64
	FastBytes  int64
	KeysInFast int
}

// Fig9Result is the cost-reduction matrix.
type Fig9Result struct {
	PriceFloor float64 // p = 0.2, the all-SlowMem cost
	SLO        float64
	Cells      []Fig9Cell
}

// Fig9 profiles every Table III workload on every store and asks the
// advisor for the cheapest sizing within the 10% slowdown SLO.
func Fig9(scale Scale, seed int64) (*Fig9Result, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	res := &Fig9Result{PriceFloor: 0.2, SLO: SLO}
	for _, spec := range ycsb.TableIII(seed) {
		w, err := scale.workload(spec)
		if err != nil {
			return nil, err
		}
		for _, e := range server.Engines() {
			rep, err := core.Profile(context.Background(), scale.coreConfig(e, seed), w, core.Touch, SLO)
			if err != nil {
				return nil, err
			}
			res.Cells = append(res.Cells, Fig9Cell{
				Workload:   spec.Name,
				Engine:     e.String(),
				CostFactor: rep.Advice.Point.CostFactor,
				FastBytes:  rep.Advice.Point.FastBytes,
				KeysInFast: rep.Advice.Point.KeysInFast,
			})
		}
	}
	return res, nil
}

// Cost returns the advised cost factor for a workload × engine pair
// (NaN-free: missing pairs return 1).
func (r *Fig9Result) Cost(workload, engine string) float64 {
	for _, c := range r.Cells {
		if c.Workload == workload && c.Engine == engine {
			return c.CostFactor
		}
	}
	return 1
}

// Render implements the experiment output.
func (r *Fig9Result) Render(w io.Writer) error {
	t := report.NewTable(
		fmt.Sprintf("Fig 9 — memory cost at %.0f%% permissible slowdown (floor %.1f = all-SlowMem)",
			r.SLO*100, r.PriceFloor),
		"workload", "Redis(-like)", "Memcached(-like)", "DynamoDB(-like)")
	byWorkload := map[string]map[string]float64{}
	var order []string
	for _, c := range r.Cells {
		if _, ok := byWorkload[c.Workload]; !ok {
			byWorkload[c.Workload] = map[string]float64{}
			order = append(order, c.Workload)
		}
		byWorkload[c.Workload][c.Engine] = c.CostFactor
	}
	for _, wl := range order {
		m := byWorkload[wl]
		t.AddRow(wl,
			fmt.Sprintf("%.3f", m[server.RedisLike.String()]),
			fmt.Sprintf("%.3f", m[server.MemcachedLike.String()]),
			fmt.Sprintf("%.3f", m[server.DynamoLike.String()]))
	}
	return t.Render(w)
}
