package experiments

import (
	"context"
	"fmt"
	"io"

	"mnemo/internal/core"
	"mnemo/internal/memsim"
	"mnemo/internal/report"
	"mnemo/internal/server"
	"mnemo/internal/ycsb"
)

// TechRow is one slow-memory technology's sizing outcome.
type TechRow struct {
	Tech          string
	LatencyNs     float64
	BandwidthGBps float64
	PriceFactor   float64
	Slowdown      float64 // all-slow runtime inflation
	AdvisedCost   float64 // 10%-SLO cost factor
	SavingsPct    float64
}

// ExtTechResult is the technology-sensitivity extension: the paper fixes
// one emulated NVDIMM and p = 0.2; this experiment re-runs the consultant
// against the slow-tier technologies that shipped after publication
// (Optane DC, CXL-attached DRAM, disaggregated far memory).
type ExtTechResult struct {
	Workload string
	Engine   string
	Rows     []TechRow
}

// ExtTech profiles Trending on Redis-like against each bundled slow-tier
// preset, using each technology's own price factor.
func ExtTech(scale Scale, seed int64) (*ExtTechResult, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	w, err := scale.workload(ycsb.Trending(seed))
	if err != nil {
		return nil, err
	}
	res := &ExtTechResult{Workload: w.Spec.Name, Engine: server.RedisLike.String()}
	for _, tier := range memsim.SlowTiers() {
		cfg := scale.coreConfig(server.RedisLike, seed)
		cfg.Server.Machine.SlowParams = tier.Params
		cfg.PriceFactor = tier.PriceFactor
		rep, err := core.Profile(context.Background(), cfg, w, core.Touch, SLO)
		if err != nil {
			return nil, fmt.Errorf("experiments: tech %s: %w", tier.Params.Name, err)
		}
		res.Rows = append(res.Rows, TechRow{
			Tech:          tier.Params.Name,
			LatencyNs:     tier.Params.LatencyNs,
			BandwidthGBps: tier.Params.BandwidthGBps,
			PriceFactor:   tier.PriceFactor,
			Slowdown:      rep.Baselines.SlowdownAllSlow(),
			AdvisedCost:   rep.Advice.Point.CostFactor,
			SavingsPct:    rep.Advice.CostSavings * 100,
		})
	}
	return res, nil
}

// Row returns the named technology's outcome (false when absent).
func (r *ExtTechResult) Row(tech string) (TechRow, bool) {
	for _, row := range r.Rows {
		if row.Tech == tech {
			return row, true
		}
	}
	return TechRow{}, false
}

// Render implements the experiment output.
func (r *ExtTechResult) Render(w io.Writer) error {
	t := report.NewTable(
		fmt.Sprintf("Extension — slow-tier technology sweep (%s, %s, 10%% SLO)", r.Workload, r.Engine),
		"technology", "latency ns", "BW GB/s", "price p", "all-slow slowdown", "advised cost", "savings")
	for _, row := range r.Rows {
		t.AddRow(row.Tech, row.LatencyNs, row.BandwidthGBps, row.PriceFactor,
			fmt.Sprintf("%.2fx", row.Slowdown),
			fmt.Sprintf("%.3f", row.AdvisedCost),
			fmt.Sprintf("%.0f%%", row.SavingsPct))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w,
		"Fast slow tiers (CXL) tolerate aggressive placement but save little per byte;"+
			"\ncheap far memory saves the most per byte but tolerates the least placement.")
	return err
}
