package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"mnemo/internal/core"
	"mnemo/internal/knapsack"
	"mnemo/internal/report"
	"mnemo/internal/server"
	"mnemo/internal/simclock"
	"mnemo/internal/stats"
	"mnemo/internal/ycsb"
)

// DownsampleRow is one sampling factor's outcome.
type DownsampleRow struct {
	Factor int
	// Requests left after sampling.
	Requests int
	// AdvisedCost is the 10%-SLO sizing advised from the sampled trace.
	AdvisedCost float64
	// MedianErrPct is the estimate accuracy on the sampled trace itself.
	MedianErrPct float64
	// CurveDeviationPct is the max deviation of the sampled, normalized
	// estimate curve from the full-trace curve over a shared cost grid.
	CurveDeviationPct float64
}

// DownsampleResult is the §V workload-downsampling study.
type DownsampleResult struct {
	Workload string
	FullCost float64 // advised cost from the full trace
	Rows     []DownsampleRow
}

// Downsample profiles the Trending workload at several sampling factors
// and checks that the cost-to-performance trade-offs survive sampling —
// the paper's argument that users can profile with downsized traces.
func Downsample(scale Scale, seed int64, factors []int) (*DownsampleResult, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	full, err := scale.workload(ycsb.Trending(seed))
	if err != nil {
		return nil, err
	}
	cfg := scale.coreConfig(server.RedisLike, seed)
	fullRep, err := core.Profile(context.Background(), cfg, full, core.Touch, SLO)
	if err != nil {
		return nil, err
	}
	res := &DownsampleResult{Workload: full.Spec.Name, FullCost: fullRep.Advice.Point.CostFactor}
	grid := costGrid()
	fullCurve := normalizedEstAt(fullRep.Curve, grid)
	for _, f := range factors {
		if f <= 0 {
			return nil, fmt.Errorf("experiments: bad downsampling factor %d", f)
		}
		sampled := full.Downsample(f, seed+int64(f))
		rep, err := core.Profile(context.Background(), cfg, sampled, core.Touch, SLO)
		if err != nil {
			return nil, err
		}
		points, err := core.Validate(context.Background(), cfg, sampled, rep.Curve, rep.Ordering, scale.CurveSamples)
		if err != nil {
			return nil, err
		}
		row := DownsampleRow{
			Factor:      f,
			Requests:    len(sampled.Ops),
			AdvisedCost: rep.Advice.Point.CostFactor,
		}
		if errs := core.AbsErrors(points); len(errs) > 0 {
			row.MedianErrPct = stats.Median(errs)
		}
		sampledCurve := normalizedEstAt(rep.Curve, grid)
		for i := range grid {
			dev := (sampledCurve[i] - fullCurve[i]) / fullCurve[i] * 100
			if dev < 0 {
				dev = -dev
			}
			if dev > row.CurveDeviationPct {
				row.CurveDeviationPct = dev
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func costGrid() []float64 {
	var grid []float64
	for c := 0.25; c <= 0.95; c += 0.05 {
		grid = append(grid, c)
	}
	return grid
}

// normalizedEstAt samples the curve's estimated throughput (normalized to
// its FastMem-only endpoint) at the cost grid.
func normalizedEstAt(c *core.Curve, grid []float64) []float64 {
	fast := c.FastOnly().EstThroughputOps
	out := make([]float64, len(grid))
	for i, g := range grid {
		out[i] = c.PointAtCost(g).EstThroughputOps / fast
	}
	return out
}

// Render implements the experiment output.
func (r *DownsampleResult) Render(w io.Writer) error {
	t := report.NewTable(
		fmt.Sprintf("§V downsampling — %s (full-trace advised cost %.3f)", r.Workload, r.FullCost),
		"factor", "requests", "advised cost", "median est err %", "curve deviation %")
	for _, row := range r.Rows {
		t.AddRow(row.Factor, row.Requests, fmt.Sprintf("%.3f", row.AdvisedCost),
			fmt.Sprintf("%.4f", row.MedianErrPct), fmt.Sprintf("%.2f", row.CurveDeviationPct))
	}
	return t.Render(w)
}

// AblationLLCResult compares estimate accuracy with and without the LLC
// model (DESIGN.md §6).
type AblationLLCResult struct {
	WithLLC, WithoutLLC struct {
		MedianErrPct float64
		Slowdown     float64
	}
}

// AblationLLC runs Trending on Redis-like twice, toggling the cache
// model.
func AblationLLC(scale Scale, seed int64) (*AblationLLCResult, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	w, err := scale.workload(ycsb.Trending(seed))
	if err != nil {
		return nil, err
	}
	res := &AblationLLCResult{}
	for _, withLLC := range []bool{true, false} {
		cfg := scale.coreConfig(server.RedisLike, seed)
		if !withLLC {
			cfg.Server.Machine.LLCBytes = 0
		}
		rep, err := core.Profile(context.Background(), cfg, w, core.Touch, 0)
		if err != nil {
			return nil, err
		}
		points, err := core.Validate(context.Background(), cfg, w, rep.Curve, rep.Ordering, scale.CurveSamples)
		if err != nil {
			return nil, err
		}
		med := stats.Median(core.AbsErrors(points))
		if withLLC {
			res.WithLLC.MedianErrPct = med
			res.WithLLC.Slowdown = rep.Baselines.SlowdownAllSlow()
		} else {
			res.WithoutLLC.MedianErrPct = med
			res.WithoutLLC.Slowdown = rep.Baselines.SlowdownAllSlow()
		}
	}
	return res, nil
}

// Render implements the experiment output.
func (r *AblationLLCResult) Render(w io.Writer) error {
	t := report.NewTable("Ablation — LLC model on/off (Trending, Redis-like)",
		"config", "median est err %", "all-SlowMem slowdown")
	t.AddRow("12MB LLC", fmt.Sprintf("%.4f", r.WithLLC.MedianErrPct), fmt.Sprintf("%.2fx", r.WithLLC.Slowdown))
	t.AddRow("no LLC", fmt.Sprintf("%.4f", r.WithoutLLC.MedianErrPct), fmt.Sprintf("%.2fx", r.WithoutLLC.Slowdown))
	return t.Render(w)
}

// AblationNoiseRow is one noise level's estimate-error outcome.
type AblationNoiseRow struct {
	Sigma        float64
	MedianErrPct float64
	MaxErrPct    float64
}

// AblationNoiseResult sweeps the measurement-noise amplitude.
type AblationNoiseResult struct {
	Rows []AblationNoiseRow
}

// AblationNoise quantifies how run-to-run variability feeds the Fig 8a
// error distribution.
func AblationNoise(scale Scale, seed int64, sigmas []float64) (*AblationNoiseResult, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	w, err := scale.workload(ycsb.Trending(seed))
	if err != nil {
		return nil, err
	}
	res := &AblationNoiseResult{}
	for _, sigma := range sigmas {
		cfg := scale.coreConfig(server.RedisLike, seed)
		cfg.Server.NoiseSigma = sigma
		rep, err := core.Profile(context.Background(), cfg, w, core.Touch, 0)
		if err != nil {
			return nil, err
		}
		points, err := core.Validate(context.Background(), cfg, w, rep.Curve, rep.Ordering, scale.CurveSamples)
		if err != nil {
			return nil, err
		}
		errs := core.AbsErrors(points)
		row := AblationNoiseRow{Sigma: sigma}
		if len(errs) > 0 {
			row.MedianErrPct = stats.Median(errs)
			row.MaxErrPct = stats.Percentile(errs, 100)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render implements the experiment output.
func (r *AblationNoiseResult) Render(w io.Writer) error {
	t := report.NewTable("Ablation — measurement noise σ vs estimate error",
		"sigma", "median err %", "max err %")
	for _, row := range r.Rows {
		t.AddRow(row.Sigma, fmt.Sprintf("%.4f", row.MedianErrPct), fmt.Sprintf("%.4f", row.MaxErrPct))
	}
	return t.Render(w)
}

// AblationKnapsackResult compares MnemoT's greedy density tiering with
// the exact 0/1 knapsack at page granularity.
type AblationKnapsackResult struct {
	CapacityPages  int64
	GreedyCoverage float64 // fraction of accesses served by FastMem
	ExactCoverage  float64
	GreedyWall     time.Duration
	ExactWall      time.Duration
}

// AblationKnapsack builds the tiering problem from the Trending Preview
// workload (weights in pages, FastMem = 20% of the dataset) and solves it
// both ways. The page unit starts at 4 KB and doubles until the exact
// DP's n×capacity table fits a sane memory budget — at the paper's full
// scale the DP needs 16 KB units, which is itself part of the point:
// exact tiering does not scale, the greedy density heuristic does.
func AblationKnapsack(scale Scale, seed int64) (*AblationKnapsackResult, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	w, err := scale.workload(ycsb.TrendingPreview(seed))
	if err != nil {
		return nil, err
	}
	reads, writes := w.AccessCounts()
	page := 4096
	var items []knapsack.Item
	var totalPages int64
	var totalAccesses float64
	for {
		items = items[:0]
		totalPages, totalAccesses = 0, 0
		for i, rec := range w.Dataset.Records {
			pages := int64((rec.Size + page - 1) / page)
			acc := float64(reads[i] + writes[i])
			items = append(items, knapsack.Item{Weight: pages, Profit: acc})
			totalPages += pages
			totalAccesses += acc
		}
		if int64(len(items)+1)*(totalPages/5+1) <= 100_000_000 {
			break
		}
		page *= 2
	}
	capacity := totalPages / 5
	res := &AblationKnapsackResult{CapacityPages: capacity}

	t0 := time.Now()
	_, gp := knapsack.Greedy(items, capacity)
	res.GreedyWall = time.Since(t0)
	res.GreedyCoverage = gp / totalAccesses

	t0 = time.Now()
	_, ep := knapsack.Exact(items, capacity)
	res.ExactWall = time.Since(t0)
	res.ExactCoverage = ep / totalAccesses
	return res, nil
}

// Render implements the experiment output.
func (r *AblationKnapsackResult) Render(w io.Writer) error {
	t := report.NewTable(
		fmt.Sprintf("Ablation — greedy density vs exact 0/1 knapsack (capacity %d pages)", r.CapacityPages),
		"solver", "FastMem access coverage", "wall time")
	t.AddRow("greedy (MnemoT)", fmt.Sprintf("%.4f", r.GreedyCoverage), r.GreedyWall.String())
	t.AddRow("exact DP", fmt.Sprintf("%.4f", r.ExactCoverage), r.ExactWall.String())
	return t.Render(w)
}

// AblationAnchorResult compares anchoring the estimate at the FastMem
// baseline (the paper's formulation) vs at the SlowMem baseline.
type AblationAnchorResult struct {
	FastAnchorMedianErrPct float64
	SlowAnchorMedianErrPct float64
}

// AblationAnchor evaluates both anchors against the same measured
// tierings of the Trending workload on Redis-like.
func AblationAnchor(scale Scale, seed int64) (*AblationAnchorResult, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	w, err := scale.workload(ycsb.Trending(seed))
	if err != nil {
		return nil, err
	}
	cfg := scale.coreConfig(server.RedisLike, seed)
	rep, err := core.Profile(context.Background(), cfg, w, core.Touch, 0)
	if err != nil {
		return nil, err
	}
	points, err := core.Validate(context.Background(), cfg, w, rep.Curve, rep.Ordering, scale.CurveSamples)
	if err != nil {
		return nil, err
	}
	res := &AblationAnchorResult{FastAnchorMedianErrPct: stats.Median(core.AbsErrors(points))}

	// Slow-anchored estimate: Runtime(k) = SlowRuntime − fastOps(k)·Δ.
	b := rep.Baselines
	dRead := b.Slow.AvgReadNs - b.Fast.AvgReadNs
	dWrite := b.Slow.AvgWriteNs - b.Fast.AvgWriteNs
	prefixReads := make([]int, len(rep.Ordering.Keys)+1)
	prefixWrites := make([]int, len(rep.Ordering.Keys)+1)
	for i, k := range rep.Ordering.Keys {
		prefixReads[i+1] = prefixReads[i] + k.Reads
		prefixWrites[i+1] = prefixWrites[i] + k.Writes
	}
	var errs []float64
	for _, vp := range points {
		k := vp.Point.KeysInFast
		estNs := float64(b.Slow.Runtime.Nanoseconds()) -
			float64(prefixReads[k])*dRead - float64(prefixWrites[k])*dWrite
		estTput := float64(rep.Curve.Requests) / simclock.FromNanos(estNs).Seconds()
		e := (vp.Measured.ThroughputOpsSec - estTput) / vp.Measured.ThroughputOpsSec * 100
		if e < 0 {
			e = -e
		}
		errs = append(errs, e)
	}
	if len(errs) > 0 {
		res.SlowAnchorMedianErrPct = stats.Median(errs)
	}
	return res, nil
}

// Render implements the experiment output.
func (r *AblationAnchorResult) Render(w io.Writer) error {
	t := report.NewTable("Ablation — estimate anchor (Trending, Redis-like)",
		"anchor", "median est err %")
	t.AddRow("FastMem baseline (paper)", fmt.Sprintf("%.4f", r.FastAnchorMedianErrPct))
	t.AddRow("SlowMem baseline", fmt.Sprintf("%.4f", r.SlowAnchorMedianErrPct))
	return t.Render(w)
}
