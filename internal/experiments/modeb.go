package experiments

import (
	"context"
	"fmt"
	"io"

	"mnemo/internal/core"
	"mnemo/internal/registry"
	"mnemo/internal/report"
	"mnemo/internal/server"
	"mnemo/internal/ycsb"
)

// ModeBRow is one sampling rate's outcome in the deployment-mode-2b
// study.
type ModeBRow struct {
	// Rate is the page-sampling rate (1 = every touch, Pin-like).
	Rate int
	// Samples is the number of page observations the profiler collected
	// (its data-collection cost).
	Samples int64
	// EstTputAtHalfCost is the estimated throughput the external
	// ordering reaches at cost factor 0.5.
	EstTputAtHalfCost float64
	// AdvisedCost is the 10%-SLO sizing under the external ordering.
	AdvisedCost float64
}

// ModeBResult is the Fig 2b deployment study: Mnemo consuming a generic
// page-sampling tiering solution's key ordering, across sampling rates,
// against the MnemoT reference.
type ModeBResult struct {
	Workload string
	// MnemoT reference values.
	MnemoTTputAtHalfCost float64
	MnemoTAdvisedCost    float64
	Rows                 []ModeBRow
}

// ModeB profiles Trending on Redis-like through the page-sampling
// tiering policy at several sampling rates. The reference and every rate
// run through one profiling session, so the Fast/Slow baselines are
// measured once and only the orderings differ.
func ModeB(scale Scale, seed int64, rates []int) (*ModeBResult, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	w, err := scale.workload(ycsb.Trending(seed))
	if err != nil {
		return nil, err
	}
	session, err := core.NewSession(scale.coreConfig(server.RedisLike, seed), w)
	if err != nil {
		return nil, err
	}

	ref, err := session.Run(context.Background(), core.MnemoT, SLO)
	if err != nil {
		return nil, err
	}
	res := &ModeBResult{
		Workload:             w.Spec.Name,
		MnemoTTputAtHalfCost: ref.Curve.PointAtCost(0.5).EstThroughputOps,
		MnemoTAdvisedCost:    ref.Advice.Point.CostFactor,
	}

	for _, rate := range rates {
		if rate <= 0 {
			return nil, fmt.Errorf("experiments: sampling rate %d must be positive", rate)
		}
		pol := registry.PageSample(rate, seed)
		rep, err := session.Run(context.Background(), pol, SLO)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, ModeBRow{
			Rate:              rate,
			Samples:           pol.Samples(),
			EstTputAtHalfCost: rep.Curve.PointAtCost(0.5).EstThroughputOps,
			AdvisedCost:       rep.Advice.Point.CostFactor,
		})
	}
	return res, nil
}

// Render implements the experiment output.
func (r *ModeBResult) Render(w io.Writer) error {
	t := report.NewTable(
		fmt.Sprintf("Mode 2b — external page-sampling tiering feeding Mnemo (%s, Redis-like)", r.Workload),
		"ordering", "page samples", "est ops/s @ cost 0.5", "advised cost (10% SLO)")
	t.AddRow("MnemoT (reference)", "-", fmt.Sprintf("%.0f", r.MnemoTTputAtHalfCost),
		fmt.Sprintf("%.3f", r.MnemoTAdvisedCost))
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("page profiler 1/%d", row.Rate), row.Samples,
			fmt.Sprintf("%.0f", row.EstTputAtHalfCost), fmt.Sprintf("%.3f", row.AdvisedCost))
	}
	return t.Render(w)
}
