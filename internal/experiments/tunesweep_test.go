package experiments

import (
	"strings"
	"testing"
)

// The tune-sweep experiment amortizes every candidate onto one baseline
// measurement per workload, and its winner never loses to the best
// default-parameter policy.
func TestTuneSweepQuick(t *testing.T) {
	res, err := TuneSweep(Quick, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("want 2 workload rows, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Measurements != 1 {
			t.Errorf("%s: %d baseline measurements, want 1 (memoization broke)",
				row.Workload, row.Measurements)
		}
		if row.Evals < len(res.Rows) {
			t.Errorf("%s: only %d evals", row.Workload, row.Evals)
		}
		if row.WinnerCost > row.DefaultCost {
			t.Errorf("%s: winner cost %v worse than best default %v",
				row.Workload, row.WinnerCost, row.DefaultCost)
		}
		if row.Gain != row.DefaultCost-row.WinnerCost {
			t.Errorf("%s: gain %v inconsistent with costs", row.Workload, row.Gain)
		}
	}
	var out strings.Builder
	if err := res.Render(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"mnemo-tune search", "trending", "news_feed"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("render missing %q:\n%s", want, out.String())
		}
	}
}
