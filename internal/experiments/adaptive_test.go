package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestAdaptiveCompareWinsOnDrift pins the tentpole's headline claim: on
// a drifting hot set, with migration traffic charged to the clock, both
// adaptive policies must beat every static policy in the catalog.
func TestAdaptiveCompareWinsOnDrift(t *testing.T) {
	r, err := AdaptiveCompare(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !r.AdaptiveWins() {
		best := r.BestStatic()
		for _, row := range r.Rows {
			if row.Adaptive && row.Runtime >= best.Runtime {
				t.Errorf("adaptive %q (%v) did not beat best static %q (%v) with migration charged",
					row.Policy, row.Runtime, best.Policy, best.Runtime)
			}
		}
		t.Fatal("adaptive did not win on the drift workload")
	}
	// The win is honest: the winner actually migrated and paid for it.
	winner := r.BestAdaptive()
	if winner.Epochs == 0 || winner.Moves == 0 || winner.MigratedBytes == 0 || winner.MigrationNs == 0 {
		t.Fatalf("winning adaptive row carries no migration evidence: %+v", winner)
	}
	var traffic int64
	for _, e := range winner.EpochTraffic {
		traffic += e.Bytes
	}
	if traffic != winner.MigratedBytes {
		t.Fatalf("per-epoch traffic %d bytes does not ledger to the total %d", traffic, winner.MigratedBytes)
	}
}

// TestAdaptiveCompareDeterministic: same scale and seed, same result.
func TestAdaptiveCompareDeterministic(t *testing.T) {
	a, err := AdaptiveCompare(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AdaptiveCompare(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	var ra, rb bytes.Buffer
	if err := a.Render(&ra); err != nil {
		t.Fatal(err)
	}
	if err := b.Render(&rb); err != nil {
		t.Fatal(err)
	}
	if ra.String() != rb.String() {
		t.Fatalf("repeated AdaptiveCompare diverged:\n%s\nvs\n%s", ra.String(), rb.String())
	}
	if !strings.Contains(ra.String(), "runtime gain") {
		t.Fatalf("render lacks the gain line:\n%s", ra.String())
	}
}

// TestScaleMigrationKnobValidation covers the Scale-level knob checks.
func TestScaleMigrationKnobValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*Scale)
	}{
		{"negative epoch ops", func(s *Scale) { s.EpochOps = -1 }},
		{"negative migration cost", func(s *Scale) { s.MigrationCostPerByte = -0.5 }},
		{"negative migration budget", func(s *Scale) { s.MigrationBudget = -1 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := Quick
			tc.mut(&s)
			if err := s.Validate(); err == nil {
				t.Fatal("invalid scale accepted")
			}
		})
	}
}
