package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestClusterSweep(t *testing.T) {
	r, err := ClusterSweep(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Shards != clusterDefaultShards {
		t.Fatalf("shards = %d, want default %d", r.Shards, clusterDefaultShards)
	}
	if len(r.PerShard) != r.Shards {
		t.Fatalf("per-shard rows = %d, want %d", len(r.PerShard), r.Shards)
	}
	// The layout must cover the dataset and trace exactly once.
	var keys, fastKeys, requests int
	var bytesTotal, fastBytes int64
	for _, row := range r.PerShard {
		keys += row.Keys
		fastKeys += row.FastKeys
		requests += row.Requests
		bytesTotal += row.Bytes
		fastBytes += row.FastBytes
		if row.FastBytes > r.FastBytesPerShard {
			t.Fatalf("shard %d fast bytes %d exceed reported max %d", row.Shard, row.FastBytes, r.FastBytesPerShard)
		}
	}
	if keys != Quick.Keys {
		t.Errorf("keys across shards = %d, want %d", keys, Quick.Keys)
	}
	if requests != Quick.Requests {
		t.Errorf("requests across shards = %d, want %d", requests, Quick.Requests)
	}
	if bytesTotal != r.TotalBytes {
		t.Errorf("bytes across shards = %d, want %d", bytesTotal, r.TotalBytes)
	}
	if fastKeys != r.Advice.Point.KeysInFast {
		t.Errorf("fast keys across shards = %d, want advised %d", fastKeys, r.Advice.Point.KeysInFast)
	}
	if fastBytes != r.Advice.Point.FastBytes {
		t.Errorf("fast bytes across shards = %d, want advised %d", fastBytes, r.Advice.Point.FastBytes)
	}
	if r.HotShardSpread < 2 {
		t.Errorf("hot-set spread %d of %d shards — hot keys collapsed onto one shard", r.HotShardSpread, r.Shards)
	}
	if r.Measured.Requests != Quick.Requests {
		t.Errorf("measured requests = %d, want %d", r.Measured.Requests, Quick.Requests)
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Cluster sweep", "per shard", "Per-shard layout", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestClusterSweepHonorsScaleShards(t *testing.T) {
	s := Quick
	s.Shards = 2
	r, err := ClusterSweep(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Shards != 2 || len(r.PerShard) != 2 {
		t.Fatalf("shards = %d rows = %d, want 2", r.Shards, len(r.PerShard))
	}
}
