package trace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Independent schema validation, in the pack/scheme idiom: the .mtrc
// layout is written down once more as a declarative section scheme —
// each section a name, a size rule and a check — and Validate walks the
// scheme over the raw bytes. It shares no code with the Reader's decode
// path, so an encoder or reader bug that slips a malformed file through
// one implementation is caught by the other; the format tests run every
// fixture through both.

// Summary is what a full validation pass learned about a trace.
type Summary struct {
	Header   Header
	Frames   int
	Ops      uint64
	RWFrames int // frames flagged (and verified) read/write-only
}

// section is one named region of the scheme. Its check consumes the
// section's bytes from the walker and records findings on the summary.
type section struct {
	name  string
	check func(v *walker, s *Summary) error
}

// scheme is the declarative .mtrc v1 layout: the validation contract of
// DESIGN.md §16. Frames validate as one repeated section.
var scheme = []section{
	{"magic", checkMagic},
	{"version", checkVersion},
	{"header", checkHeader},
	{"frames", checkFrames},
}

// walker is the validator's cursor over the raw trace.
type walker struct {
	src  io.ReaderAt
	size int64
	off  int64
	buf  []byte
}

// read consumes n bytes at the cursor.
func (v *walker) read(n int64, what string) ([]byte, error) {
	if n < 0 || v.size-v.off < n {
		return nil, formatErr(v.off, ErrTruncated, "%s: need %d bytes, %d left", what, n, v.size-v.off)
	}
	if int64(cap(v.buf)) < n {
		v.buf = make([]byte, n)
	}
	b := v.buf[:n]
	if _, err := v.src.ReadAt(b, v.off); err != nil {
		return nil, formatErr(v.off, ErrTruncated, "%s: %v", what, err)
	}
	v.off += n
	return b, nil
}

// ValidateFile runs the scheme over a trace file on disk.
func ValidateFile(path string) (*Summary, error) {
	f, err := OpenFile(path)
	if err != nil {
		return nil, err
	}
	return Validate(f.src, f.size)
}

// Validate checks a raw .mtrc byte stream against the scheme,
// independently of the Reader. It reads the whole file once (header
// plus every frame), so it is the strong end-to-end check — the Reader
// performs the same per-frame validation lazily during replay.
func Validate(src io.ReaderAt, size int64) (*Summary, error) {
	v := &walker{src: src, size: size}
	s := &Summary{}
	for _, sec := range scheme {
		if err := sec.check(v, s); err != nil {
			return nil, fmt.Errorf("%s: %w", sec.name, err)
		}
	}
	if v.off != size {
		return nil, formatErr(v.off, ErrSchema, "%d trailing bytes after final frame", size-v.off)
	}
	return s, nil
}

func checkMagic(v *walker, _ *Summary) error {
	b, err := v.read(4, "magic")
	if err != nil {
		return err
	}
	if string(b) != Magic {
		return formatErr(v.off-4, ErrBadMagic, "got %q, want %q", b, Magic)
	}
	return nil
}

func checkVersion(v *walker, _ *Summary) error {
	b, err := v.read(2, "version")
	if err != nil {
		return err
	}
	if ver := binary.LittleEndian.Uint16(b); ver != Version {
		return formatErr(v.off-2, ErrBadVersion, "got %d, want %d", ver, Version)
	}
	return nil
}

func checkHeader(v *walker, s *Summary) error {
	b, err := v.read(4, "header length")
	if err != nil {
		return err
	}
	hdrLen := int64(binary.LittleEndian.Uint32(b))
	start := v.off
	raw, err := v.read(hdrLen, "header payload")
	if err != nil {
		return err
	}
	crcRaw := crc32.ChecksumIEEE(raw)
	c := &byteCursor{buf: raw, off: start}
	h := &s.Header
	if h.Flags, err = c.u16(); err != nil {
		return err
	}
	legend, err := c.take(2)
	if err != nil {
		return err
	}
	if legend[0] != OpKinds {
		return formatErr(c.at()-2, ErrSchema, "op-kind legend %d, want %d", legend[0], OpKinds)
	}
	keys, err := c.u32()
	if err != nil {
		return err
	}
	if keys == 0 || keys > MaxKeys {
		return formatErr(c.at()-4, ErrSchema, "key-space size %d outside [1, %d]", keys, MaxKeys)
	}
	h.Keys = int(keys)
	if h.Requests, err = c.u64(); err != nil {
		return err
	}
	nameLen, err := c.u16()
	if err != nil {
		return err
	}
	if nameLen > MaxNameLen {
		return formatErr(c.at()-2, ErrSchema, "name length %d exceeds %d", nameLen, MaxNameLen)
	}
	name, err := c.take(int(nameLen))
	if err != nil {
		return err
	}
	h.Name = string(name)
	sizesRaw, err := c.take(h.Keys * 4)
	if err != nil {
		return err
	}
	h.Sizes = make([]int32, h.Keys)
	for i := range h.Sizes {
		h.Sizes[i] = int32(binary.LittleEndian.Uint32(sizesRaw[i*4:]))
		if h.Sizes[i] < 0 {
			return formatErr(c.at(), ErrSchema, "value size of key %d overflows int32", i)
		}
	}
	if !h.Canonical() {
		h.KeyNames = make([]string, h.Keys)
		for i := range h.KeyNames {
			kl, err := c.u16()
			if err != nil {
				return err
			}
			if kl > MaxNameLen {
				return formatErr(c.at()-2, ErrSchema, "key-name length %d exceeds %d", kl, MaxNameLen)
			}
			kn, err := c.take(int(kl))
			if err != nil {
				return err
			}
			h.KeyNames[i] = string(kn)
		}
	}
	if c.pos != len(raw) {
		return formatErr(c.at(), ErrSchema, "%d trailing header bytes", len(raw)-c.pos)
	}
	crcb, err := v.read(4, "header checksum")
	if err != nil {
		return err
	}
	if want := binary.LittleEndian.Uint32(crcb); crcRaw != want {
		return formatErr(v.off-4, ErrChecksum, "header crc %08x, stored %08x", crcRaw, want)
	}
	return nil
}

func checkFrames(v *walker, s *Summary) error {
	remaining := s.Header.Requests
	for remaining > 0 {
		start := v.off
		head, err := v.read(frameHeadLen, "frame header")
		if err != nil {
			return err
		}
		count := binary.LittleEndian.Uint32(head[0:4])
		flags := head[4]
		if count == 0 || count > FrameOps {
			return formatErr(start, ErrSchema, "frame op count %d outside [1, %d]", count, FrameOps)
		}
		if uint64(count) > remaining {
			return formatErr(start, ErrSchema, "frame op count %d exceeds remaining declared ops %d", count, remaining)
		}
		crc := crc32.ChecksumIEEE(head)
		n := int64(count)
		payload, err := v.read(n*5, "frame payload")
		if err != nil {
			return err
		}
		crc = crc32.Update(crc, crc32.IEEETable, payload)
		rw := true
		for i := int64(0); i < n; i++ {
			if k := binary.LittleEndian.Uint32(payload[i*4:]); int(k) >= s.Header.Keys {
				return formatErr(start, ErrSchema, "key index %d outside key space %d", k, s.Header.Keys)
			}
		}
		for _, kind := range payload[n*4:] {
			if kind >= OpKinds {
				return formatErr(start, ErrSchema, "op kind %d outside legend %d", kind, OpKinds)
			}
			if kind > 1 {
				rw = false
			}
		}
		if flags&FrameReadWrite != 0 {
			if !rw {
				return formatErr(start, ErrSchema, "frame flagged read/write-only but contains structural ops")
			}
			s.RWFrames++
		}
		crcb, err := v.read(frameCRCLen, "frame checksum")
		if err != nil {
			return err
		}
		if want := binary.LittleEndian.Uint32(crcb); crc != want {
			return formatErr(start, ErrChecksum, "frame crc %08x, stored %08x", crc, want)
		}
		s.Frames++
		s.Ops += uint64(count)
		remaining -= uint64(count)
	}
	return nil
}
