package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"runtime"
	"sync"
)

// File is an opened .mtrc trace: the decoded schema header plus the
// frame region, addressed by offset so any number of independent frame
// iterators can stream it concurrently (sharded replay re-executes
// shard sub-traces; repetitions re-open the same trace). Only the
// header and one frame per iterator are ever resident.
type File struct {
	Header   Header
	src      io.ReaderAt
	size     int64
	frameOff int64
}

// OpenFile opens a .mtrc trace on disk and decodes its header. The
// underlying *os.File is held by the returned File for its lifetime
// (the os package's own finalizer reclaims the descriptor if the caller
// never explicitly closes the file).
func OpenFile(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	t, err := New(f, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	return t, nil
}

// New decodes a .mtrc header from any random-access source of the given
// size — a file, or a bytes.Reader in tests and the fuzz target.
func New(src io.ReaderAt, size int64) (*File, error) {
	f := &File{src: src, size: size}
	if err := f.decodeHeader(); err != nil {
		return nil, err
	}
	return f, nil
}

// Requests reports the declared op total of the trace.
func (f *File) Requests() int { return int(f.Header.Requests) }

// byteCursor walks a decoded byte slice with bounds checking.
type byteCursor struct {
	buf []byte
	pos int
	off int64 // absolute file offset of buf[0], for error reporting
}

func (c *byteCursor) at() int64 { return c.off + int64(c.pos) }

func (c *byteCursor) take(n int) ([]byte, error) {
	if len(c.buf)-c.pos < n {
		return nil, formatErr(c.at(), ErrTruncated, "need %d bytes, %d left in section", n, len(c.buf)-c.pos)
	}
	b := c.buf[c.pos : c.pos+n]
	c.pos += n
	return b, nil
}

func (c *byteCursor) u16() (uint16, error) {
	b, err := c.take(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (c *byteCursor) u32() (uint32, error) {
	b, err := c.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (c *byteCursor) u64() (uint64, error) {
	b, err := c.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// decodeHeader reads and validates the prelude and schema header.
// Allocations are bounded by the actual file size, never by a length
// field alone, so a hostile header cannot force an OOM.
func (f *File) decodeHeader() error {
	var pre [preludeLen]byte
	if _, err := io.ReadFull(io.NewSectionReader(f.src, 0, f.size), pre[:]); err != nil {
		return formatErr(0, ErrTruncated, "prelude: %v", err)
	}
	if string(pre[:4]) != Magic {
		return formatErr(0, ErrBadMagic, "got %q, want %q", pre[:4], Magic)
	}
	if v := binary.LittleEndian.Uint16(pre[4:6]); v != Version {
		return formatErr(4, ErrBadVersion, "got %d, want %d", v, Version)
	}
	hdrLen := int64(binary.LittleEndian.Uint32(pre[6:10]))
	if hdrLen < fixedHeaderLen {
		return formatErr(6, ErrSchema, "header length %d below fixed minimum %d", hdrLen, fixedHeaderLen)
	}
	if hdrLen > f.size-preludeLen-4 {
		return formatErr(6, ErrTruncated, "header length %d exceeds file size %d", hdrLen, f.size)
	}
	raw := make([]byte, hdrLen)
	if _, err := io.ReadFull(io.NewSectionReader(f.src, preludeLen, hdrLen), raw); err != nil {
		return formatErr(preludeLen, ErrTruncated, "header: %v", err)
	}
	var crcb [4]byte
	if _, err := io.ReadFull(io.NewSectionReader(f.src, preludeLen+hdrLen, 4), crcb[:]); err != nil {
		return formatErr(preludeLen+hdrLen, ErrTruncated, "header checksum: %v", err)
	}
	if got, want := crc32.ChecksumIEEE(raw), binary.LittleEndian.Uint32(crcb[:]); got != want {
		return formatErr(preludeLen+hdrLen, ErrChecksum, "header crc %08x, stored %08x", got, want)
	}

	c := &byteCursor{buf: raw, off: preludeLen}
	h := &f.Header
	var err error
	if h.Flags, err = c.u16(); err != nil {
		return err
	}
	legend, err := c.take(2) // opKinds, pad
	if err != nil {
		return err
	}
	if legend[0] != OpKinds {
		return formatErr(c.at()-2, ErrSchema, "op-kind legend %d, want %d", legend[0], OpKinds)
	}
	keys, err := c.u32()
	if err != nil {
		return err
	}
	if keys == 0 || keys > MaxKeys {
		return formatErr(c.at()-4, ErrSchema, "key-space size %d outside [1, %d]", keys, MaxKeys)
	}
	h.Keys = int(keys)
	if h.Requests, err = c.u64(); err != nil {
		return err
	}
	if h.Requests > math.MaxInt64 {
		return formatErr(c.at()-8, ErrSchema, "request total %d overflows", h.Requests)
	}
	nameLen, err := c.u16()
	if err != nil {
		return err
	}
	if nameLen > MaxNameLen {
		return formatErr(c.at()-2, ErrSchema, "name length %d exceeds %d", nameLen, MaxNameLen)
	}
	name, err := c.take(int(nameLen))
	if err != nil {
		return err
	}
	h.Name = string(name)
	sizesRaw, err := c.take(h.Keys * 4)
	if err != nil {
		return err
	}
	h.Sizes = make([]int32, h.Keys)
	for i := range h.Sizes {
		v := binary.LittleEndian.Uint32(sizesRaw[i*4:])
		if v > math.MaxInt32 {
			return formatErr(c.at(), ErrSchema, "value size %d for key %d overflows int32", v, i)
		}
		h.Sizes[i] = int32(v)
	}
	if !h.Canonical() {
		h.KeyNames = make([]string, h.Keys)
		for i := range h.KeyNames {
			kl, err := c.u16()
			if err != nil {
				return err
			}
			if kl > MaxNameLen {
				return formatErr(c.at()-2, ErrSchema, "key-name length %d exceeds %d", kl, MaxNameLen)
			}
			kn, err := c.take(int(kl))
			if err != nil {
				return err
			}
			h.KeyNames[i] = string(kn)
		}
	}
	if c.pos != len(raw) {
		return formatErr(c.at(), ErrSchema, "%d trailing header bytes", len(raw)-c.pos)
	}
	f.frameOff = preludeLen + hdrLen + 4
	return nil
}

// Frames starts an independent frame iterator at the first frame.
// Iterators share nothing but the (read-only) source, so concurrent
// iterators are safe.
func (f *File) Frames() (*FrameReader, error) {
	r := readAheadPool.Get().(*bufio.Reader)
	r.Reset(io.NewSectionReader(f.src, f.frameOff, f.size-f.frameOff))
	p := &framePrefetcher{
		f:         f,
		r:         r,
		off:       f.frameOff,
		remaining: f.Header.Requests,
		out:       make(chan frameResult, 1),
		free:      make(chan *frameBuf, 2),
		quit:      make(chan struct{}),
	}
	// Two buffers ping-pong between the prefetcher and the consumer:
	// while the consumer replays one decoded frame, the prefetcher reads,
	// CRC-checks and decodes the next into the other. They come from a
	// shared pool — replay paths open iterators per repetition (and per
	// shard), and re-zeroing 40KB twice per open would dominate short
	// traces.
	p.free <- frameBufPool.Get().(*frameBuf)
	p.free <- frameBufPool.Get().(*frameBuf)
	go p.run()
	it := &FrameReader{out: p.out, free: p.free, quit: p.quit}
	// The prefetcher deliberately holds no reference to the FrameReader,
	// so an iterator abandoned mid-trace (an error return in a replay
	// loop) becomes garbage; this finalizer then releases the goroutine,
	// which would otherwise block forever on its channels.
	runtime.SetFinalizer(it, func(it *FrameReader) { close(it.quit) })
	return it, nil
}

// frameBuf holds one decoded frame. Two of them ping-pong per iterator,
// so a frame handed to the consumer stays untouched while the next one
// is decoded — exactly two frames are resident per reader.
type frameBuf struct {
	keys    [FrameOps]uint32
	kinds   [FrameOps]uint8
	payload [FrameOps * 5]byte
	n       int
	rw      bool
}

// frameResult is the prefetcher→consumer handoff: a decoded buffer, or
// the terminal error (io.EOF at a clean end of trace).
type frameResult struct {
	buf *frameBuf
	err error
}

// frameBufPool recycles frame buffers across iterators. A buffer's
// contents are only ever read up to the decoded op count, so reuse
// without zeroing is safe.
var frameBufPool = sync.Pool{New: func() any { return new(frameBuf) }}

// readAheadPool recycles the 64KB read-ahead buffers across iterators
// for the same reason: allocating one per Frames() call would dominate
// short traces replayed many times.
var readAheadPool = sync.Pool{New: func() any { return bufio.NewReaderSize(nil, 1<<16) }}

// FrameReader streams a trace's frames in order, decoded one frame
// ahead by a prefetch goroutine so the next frame's read+CRC+decode
// overlaps consumption of the current one. Next's returned slices alias
// the reader's fixed frame buffers and are valid until the next call.
type FrameReader struct {
	out  chan frameResult
	free chan *frameBuf
	quit chan struct{}
	cur  *frameBuf // buffer handed out by the last Next, recycled on the following call
	err  error     // terminal state, sticky once set
}

// Next returns the next frame's key indices, op kinds, and whether the
// frame is read/write-only (the batched kernel's precondition, from the
// frame's recorded flag, verified against the content). It returns
// io.EOF exactly when the declared request total has been consumed and
// the file ends; errors (and EOF) are sticky.
func (it *FrameReader) Next() (keys []uint32, kinds []uint8, rw bool, err error) {
	if it.err != nil {
		return nil, nil, false, it.err
	}
	if it.cur != nil {
		it.free <- it.cur // cap 2, consumer holds at most 1: never blocks
		it.cur = nil
	}
	res := <-it.out
	// Keep the iterator reachable across the channel ops above so the
	// abandonment finalizer cannot fire mid-call.
	runtime.KeepAlive(it)
	if res.err != nil {
		it.err = res.err
		// The prefetcher exits after sending the terminal result, so the
		// abandonment finalizer has nothing left to release; clearing it
		// lets a completed iterator be collected in one GC cycle instead
		// of queueing finalizer work — replay paths open one iterator per
		// repetition, so this is per-replay cost.
		runtime.SetFinalizer(it, nil)
		// Terminal: recycle whatever buffers are still parked in the free
		// channel (the prefetcher pools its own on exit). Abandoned
		// iterators skip this and let the GC take the buffers instead.
		for {
			select {
			case b := <-it.free:
				frameBufPool.Put(b)
			default:
				return nil, nil, false, res.err
			}
		}
	}
	it.cur = res.buf
	return res.buf.keys[:res.buf.n], res.buf.kinds[:res.buf.n], res.buf.rw, nil
}

// framePrefetcher is the read-ahead half of a FrameReader: it decodes
// frames into recycled buffers one ahead of the consumer and exits on
// the terminal result (or when the quit channel closes — the abandoned-
// iterator path).
type framePrefetcher struct {
	f         *File
	r         *bufio.Reader
	off       int64 // absolute offset of the next unread byte
	remaining uint64

	out  chan frameResult
	free chan *frameBuf
	quit chan struct{}
}

func (p *framePrefetcher) run() {
	// The read-ahead buffer is touched only by this goroutine, so it can
	// be recycled on every exit path — terminal result sent or quit
	// closed. Reset drops the section-reader reference.
	defer func() {
		p.r.Reset(nil)
		readAheadPool.Put(p.r)
	}()
	for {
		var buf *frameBuf
		select {
		case buf = <-p.free:
		case <-p.quit:
			return
		}
		err := p.decode(buf)
		res := frameResult{buf: buf, err: err}
		if err != nil {
			res.buf = nil
			frameBufPool.Put(buf)
		}
		select {
		case p.out <- res:
		case <-p.quit:
			return
		}
		if err != nil {
			return
		}
	}
}

// decode reads, checksums and validates the next frame into buf. It
// returns io.EOF exactly when the declared request total has been
// consumed and the file ends.
func (p *framePrefetcher) decode(buf *frameBuf) error {
	if p.remaining == 0 {
		if _, err := p.r.ReadByte(); err != io.EOF {
			return formatErr(p.off, ErrSchema, "trailing bytes after declared %d ops", p.f.Header.Requests)
		}
		return io.EOF
	}
	var head [frameHeadLen]byte
	if _, err := io.ReadFull(p.r, head[:]); err != nil {
		return formatErr(p.off, ErrTruncated, "frame header: %v", err)
	}
	count := binary.LittleEndian.Uint32(head[0:4])
	flags := head[4]
	if count == 0 || count > FrameOps {
		return formatErr(p.off, ErrSchema, "frame op count %d outside [1, %d]", count, FrameOps)
	}
	if uint64(count) > p.remaining {
		return formatErr(p.off, ErrSchema, "frame op count %d exceeds remaining declared ops %d", count, p.remaining)
	}
	n := int(count)
	need := n * 5
	payload := buf.payload[:need]
	if _, err := io.ReadFull(p.r, payload); err != nil {
		return formatErr(p.off+frameHeadLen, ErrTruncated, "frame payload: %v", err)
	}
	var crcb [frameCRCLen]byte
	if _, err := io.ReadFull(p.r, crcb[:]); err != nil {
		return formatErr(p.off+frameHeadLen+int64(need), ErrTruncated, "frame checksum: %v", err)
	}
	crc := crc32.ChecksumIEEE(head[:])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	if want := binary.LittleEndian.Uint32(crcb[:]); crc != want {
		return formatErr(p.off, ErrChecksum, "frame crc %08x, stored %08x", crc, want)
	}

	nkeys := f32(p.f.Header.Keys)
	for i := 0; i < n; i++ {
		k := binary.LittleEndian.Uint32(payload[i*4:])
		if k >= nkeys {
			return formatErr(p.off, ErrSchema, "key index %d outside key space %d", k, nkeys)
		}
		buf.keys[i] = k
	}
	kindBytes := payload[n*4:]
	rwActual := true
	for i := 0; i < n; i++ {
		k := kindBytes[i]
		if k >= OpKinds {
			return formatErr(p.off, ErrSchema, "op kind %d outside legend %d", k, OpKinds)
		}
		if k > 1 {
			rwActual = false
		}
		buf.kinds[i] = k
	}
	if flags&FrameReadWrite != 0 && !rwActual {
		return formatErr(p.off, ErrSchema, "frame flagged read/write-only but contains structural ops")
	}
	p.remaining -= uint64(count)
	p.off += frameLen(n)
	buf.n = n
	buf.rw = flags&FrameReadWrite != 0
	return nil
}

// f32 converts a validated key-space size to uint32.
func f32(keys int) uint32 {
	if keys < 0 || keys > math.MaxUint32 {
		panic(fmt.Sprintf("trace: key space %d outside uint32", keys))
	}
	return uint32(keys)
}
