package trace

import (
	"fmt"
	"os"

	"mnemo/internal/kvstore"
	"mnemo/internal/ycsb"
)

// Bridges between the on-disk container and ycsb.Workload: opening a
// trace as a streamed workload, spilling an in-memory workload to disk,
// and generating a trace straight to disk in O(frame) memory.

// fileStream adapts a *File to the ycsb.TraceStream contract.
type fileStream struct{ f *File }

func (s fileStream) Requests() int { return s.f.Requests() }

func (s fileStream) Frames() (ycsb.FrameIter, error) { return s.f.Frames() }

// Open opens a .mtrc trace as a streamed workload: the dataset is
// reconstructed from the schema header (O(keys) memory) and the request
// trace stays on disk, yielded frame by frame during replay.
func Open(path string) (*ycsb.Workload, error) {
	f, err := OpenFile(path)
	if err != nil {
		return nil, err
	}
	return AsWorkload(f), nil
}

// AsWorkload wraps an opened trace file as a streamed ycsb.Workload.
func AsWorkload(f *File) *ycsb.Workload {
	h := &f.Header
	ds := ycsb.Dataset{Records: make([]ycsb.Record, h.Keys)}
	for i := range ds.Records {
		name := ""
		if h.Canonical() {
			name = ycsb.KeyName(i)
		} else {
			name = h.KeyNames[i]
		}
		size := int(h.Sizes[i])
		ds.Records[i] = ycsb.Record{Key: name, ID: kvstore.KeyID(name), Size: size}
		ds.TotalBytes += int64(size)
	}
	return &ycsb.Workload{
		Spec: ycsb.Spec{
			Name:     h.Name,
			Keys:     h.Keys,
			Requests: int(h.Requests),
			UseCase:  "streamed trace",
		},
		Dataset: ds,
		Stream:  fileStream{f},
	}
}

// Stream exposes the file as a ycsb.TraceStream without rebuilding a
// dataset from the header — for callers (the shard partitioner) that
// already hold the matching dataset.
func (f *File) Stream() ycsb.TraceStream { return fileStream{f} }

// CreateDataset is Create with the schema derived from the dataset: the
// value-size table verbatim, key names only when not canonical. The
// shard partitioner uses it to spool per-shard sub-traces.
func CreateDataset(path, name string, ds *ycsb.Dataset, requests uint64) (*Writer, error) {
	sizes, names := datasetSchema(ds)
	return Create(path, name, sizes, names, requests)
}

// datasetSchema derives the writer's header inputs from a dataset:
// the value-size table, and the per-key names unless every key is the
// canonical generated name (in which case names is nil and the file
// omits the key-name block).
func datasetSchema(ds *ycsb.Dataset) (sizes []int32, names []string) {
	sizes = make([]int32, len(ds.Records))
	canonical := true
	for i := range ds.Records {
		sizes[i] = int32(ds.Records[i].Size)
		if canonical && ds.Records[i].Key != ycsb.KeyName(i) {
			canonical = false
		}
	}
	if canonical {
		return sizes, nil
	}
	names = make([]string, len(ds.Records))
	for i := range ds.Records {
		names[i] = ds.Records[i].Key
	}
	return sizes, names
}

// WriteWorkload spills a workload's trace to a .mtrc file, whatever its
// backing (Ops, packed, or another stream). The workload's key strings
// round-trip: generated canonical names are elided from the file,
// arbitrary names (Redis MONITOR captures) are carried per key.
func WriteWorkload(w *ycsb.Workload, path string) (err error) {
	sizes, names := datasetSchema(&w.Dataset)
	wr, err := Create(path, w.Spec.Name, sizes, names, uint64(w.RequestCount()))
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			wr.Close()
			os.Remove(path)
		}
	}()
	var keys [FrameOps]uint32
	var kinds [FrameOps]uint8
	n := 0
	var appendErr error
	if err = w.ForEachOp(func(key int, kind kvstore.OpKind) {
		if appendErr != nil {
			return
		}
		keys[n] = uint32(key)
		kinds[n] = uint8(kind)
		n++
		if n == FrameOps {
			appendErr = wr.Append(keys[:n], kinds[:n])
			n = 0
		}
	}); err != nil {
		return err
	}
	if appendErr != nil {
		err = appendErr
		return err
	}
	if n > 0 {
		if err = wr.Append(keys[:n], kinds[:n]); err != nil {
			return err
		}
	}
	err = wr.Close()
	return err
}

// GenerateFile generates a workload's trace straight to a .mtrc file in
// O(frame) memory — the streamed twin of ycsb.Generate — and returns it
// reopened as a streamed workload. This is how cmd/workloadgen emits
// 100M+-op traces without holding them.
func GenerateFile(spec ycsb.Spec, path string) (*ycsb.Workload, error) {
	var wr *Writer
	_, err := ycsb.GenerateStream(spec,
		func(ds *ycsb.Dataset) error {
			sizes, names := datasetSchema(ds)
			var cerr error
			wr, cerr = Create(path, spec.Name, sizes, names, uint64(spec.Requests))
			return cerr
		},
		func(keys []uint32, kinds []uint8) error { return wr.Append(keys, kinds) })
	if err != nil {
		if wr != nil {
			wr.Close()
			os.Remove(path)
		}
		return nil, err
	}
	if err := wr.Close(); err != nil {
		os.Remove(path)
		return nil, err
	}
	w, err := Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: reopening generated trace: %w", err)
	}
	// The generated trace carries the full spec, not just the header's
	// dimensions — layout previews and reports read it.
	spec.Requests = w.Spec.Requests
	w.Spec = spec
	return w, nil
}
