package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "regenerate testdata/golden_v1.* (only valid alongside a format version bump)")

// goldenExpansion is the committed human-readable twin of the binary
// fixture: the decode any v1 reader must produce from golden_v1.mtrc.
type goldenExpansion struct {
	Name     string   `json:"name"`
	Keys     int      `json:"keys"`
	Requests uint64   `json:"requests"`
	Flags    uint16   `json:"flags"`
	Sizes    []int32  `json:"sizes"`
	Frames   []gFrame `json:"frames"`
}

type gFrame struct {
	RW    bool     `json:"rw"`
	Keys  []uint32 `json:"keys"`
	Kinds []uint8  `json:"kinds"`
}

// goldenOps is the fixture's op sequence: pure LCG arithmetic (genOps),
// pinned here by seed and shape so regeneration is exact and never
// depends on the workload generator.
func goldenOps() (string, []int32, []uint32, []uint8) {
	const nk = 37
	sizes := make([]int32, nk)
	for i := range sizes {
		sizes[i] = int32(512 + 31*i)
	}
	keys, kinds := genOps(0x6d6e656d6f, nk, 10_000) // "mnemo"
	return "golden_v1", sizes, keys, kinds
}

// TestGoldenCompat is the cross-version compatibility gate: the
// committed binary fixture must decode to the committed JSON expansion,
// and the current encoder must reproduce the committed bytes exactly.
// If either half fails, the wire format changed — bump Version and
// regenerate with -update per the rule in DESIGN.md §16; silently
// changing v1 breaks every trace already on disk.
func TestGoldenCompat(t *testing.T) {
	mtrcPath := filepath.Join("testdata", "golden_v1.mtrc")
	jsonPath := filepath.Join("testdata", "golden_v1.json")

	if *update {
		name, sizes, keys, kinds := goldenOps()
		raw := encode(t, name, sizes, nil, keys, kinds)
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(mtrcPath, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		exp := expand(t, raw)
		out, err := json.MarshalIndent(exp, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(jsonPath, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d bytes) and %s", mtrcPath, len(raw), jsonPath)
	}

	raw, err := os.ReadFile(mtrcPath)
	if err != nil {
		t.Fatalf("reading golden fixture (regenerate with -update): %v", err)
	}
	var want goldenExpansion
	wantRaw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(wantRaw, &want); err != nil {
		t.Fatal(err)
	}

	got := expand(t, raw)
	if got.Name != want.Name || got.Keys != want.Keys || got.Requests != want.Requests || got.Flags != want.Flags {
		t.Fatalf("header decodes as %s/%d/%d/%#x, expansion says %s/%d/%d/%#x",
			got.Name, got.Keys, got.Requests, got.Flags, want.Name, want.Keys, want.Requests, want.Flags)
	}
	if len(got.Sizes) != len(want.Sizes) {
		t.Fatalf("%d sizes, want %d", len(got.Sizes), len(want.Sizes))
	}
	for i := range want.Sizes {
		if got.Sizes[i] != want.Sizes[i] {
			t.Fatalf("size[%d] = %d, want %d", i, got.Sizes[i], want.Sizes[i])
		}
	}
	if len(got.Frames) != len(want.Frames) {
		t.Fatalf("%d frames, want %d", len(got.Frames), len(want.Frames))
	}
	for fi := range want.Frames {
		g, w := got.Frames[fi], want.Frames[fi]
		if g.RW != w.RW || len(g.Keys) != len(w.Keys) {
			t.Fatalf("frame %d: rw=%v len=%d, want rw=%v len=%d", fi, g.RW, len(g.Keys), w.RW, len(w.Keys))
		}
		for i := range w.Keys {
			if g.Keys[i] != w.Keys[i] || g.Kinds[i] != w.Kinds[i] {
				t.Fatalf("frame %d op %d = (%d,%d), want (%d,%d)",
					fi, i, g.Keys[i], g.Kinds[i], w.Keys[i], w.Kinds[i])
			}
		}
	}

	// Encoder stability: re-encoding the fixture's ops must reproduce the
	// committed file byte for byte.
	name, sizes, keys, kinds := goldenOps()
	if reRaw := encode(t, name, sizes, nil, keys, kinds); !bytes.Equal(reRaw, raw) {
		t.Fatalf("re-encoded fixture differs from committed bytes (%d vs %d bytes): encoder output changed — bump Version", len(reRaw), len(raw))
	}

	// And the independent validator must accept what the reader accepted.
	if _, err := Validate(bytes.NewReader(raw), int64(len(raw))); err != nil {
		t.Fatalf("Validate rejects golden fixture: %v", err)
	}
}

// expand decodes a raw trace into its JSON expansion form.
func expand(t *testing.T, raw []byte) *goldenExpansion {
	t.Helper()
	keys, kinds, rws, f := decodeAll(t, raw)
	exp := &goldenExpansion{
		Name:     f.Header.Name,
		Keys:     f.Header.Keys,
		Requests: f.Header.Requests,
		Flags:    f.Header.Flags,
		Sizes:    f.Header.Sizes,
	}
	off := 0
	for _, rw := range rws {
		n := FrameOps
		if off+n > len(keys) {
			n = len(keys) - off
		}
		exp.Frames = append(exp.Frames, gFrame{
			RW:    rw,
			Keys:  append([]uint32(nil), keys[off:off+n]...),
			Kinds: append([]uint8(nil), kinds[off:off+n]...),
		})
		off += n
	}
	return exp
}
