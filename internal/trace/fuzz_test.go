package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// FuzzTraceDecode is the format's differential oracle: the streaming
// Reader and the independent pack/scheme Validator share no decode
// code, so on every input — valid or hostile — they must agree on
// accept vs reject, and on the frame/op counts when both accept. Any
// disagreement means one of the two has a parsing bug. Both must also
// fail closed: typed *FormatError, never a panic or runaway
// allocation.
func FuzzTraceDecode(f *testing.F) {
	seed := func(name string, sizes []int32, names []string, keys []uint32, kinds []uint8) []byte {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, name, sizes, names, uint64(len(keys)))
		if err != nil {
			f.Fatal(err)
		}
		if err := w.Append(keys, kinds); err != nil {
			f.Fatal(err)
		}
		if err := w.Close(); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}

	// Valid corpus: canonical, named, Delete-bearing, multi-frame, empty.
	f.Add(seed("tiny", []int32{64, 128}, nil, []uint32{0, 1, 0}, []uint8{0, 1, 0}))
	f.Add(seed("named", []int32{8, 8}, []string{"a", "b"}, []uint32{1, 0}, []uint8{2, 1}))
	{
		keys, kinds := genOps(9, 6, FrameOps+100)
		f.Add(seed("multi", []int32{1, 2, 3, 4, 5, 6}, nil, keys, kinds))
	}
	f.Add(seed("empty", []int32{16}, nil, nil, nil))
	// Hostile corpus: truncations, flipped bytes, trailing garbage.
	base := seed("hostile", []int32{32, 32, 32}, nil, []uint32{0, 1, 2}, []uint8{0, 1, 2})
	f.Add(base[:len(base)/2])
	f.Add(append(append([]byte(nil), base...), 0x00))
	{
		flip := append([]byte(nil), base...)
		flip[preludeLen+3] ^= 0x40
		f.Add(flip)
	}
	f.Add([]byte("MTRC"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, raw []byte) {
		rFrames, rOps, rErr := fuzzRead(raw)
		sum, vErr := Validate(bytes.NewReader(raw), int64(len(raw)))
		if (rErr == nil) != (vErr == nil) {
			t.Fatalf("reader/validator disagree: reader err %v, validator err %v", rErr, vErr)
		}
		if rErr != nil {
			var fe *FormatError
			if !errors.As(rErr, &fe) {
				t.Fatalf("reader error is not a *FormatError: %v", rErr)
			}
			if !errors.As(vErr, &fe) {
				t.Fatalf("validator error is not a *FormatError: %v", vErr)
			}
			return
		}
		if rFrames != sum.Frames || uint64(rOps) != sum.Ops {
			t.Fatalf("reader saw %d frames/%d ops, validator %d/%d",
				rFrames, rOps, sum.Frames, sum.Ops)
		}
		if uint64(rOps) != binary.LittleEndian.Uint64(raw[preludeLen+8:]) {
			t.Fatalf("decoded %d ops, header declares %d",
				rOps, binary.LittleEndian.Uint64(raw[preludeLen+8:]))
		}
	})
}

// fuzzRead decodes header plus every frame through the Reader, counting
// what it accepts.
func fuzzRead(raw []byte) (frames, ops int, err error) {
	f, err := New(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		return 0, 0, err
	}
	it, err := f.Frames()
	if err != nil {
		return 0, 0, err
	}
	for {
		keys, _, _, err := it.Next()
		if err == io.EOF {
			return frames, ops, nil
		}
		if err != nil {
			return frames, ops, err
		}
		frames++
		ops += len(keys)
	}
}
