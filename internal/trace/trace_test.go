package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"

	"mnemo/internal/kvstore"
	"mnemo/internal/ycsb"
)

// lcg is the deterministic op-sequence generator of the tests and the
// golden fixture: self-contained arithmetic, so the fixture's expected
// content never depends on the workload generator's evolution.
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r)
}

// genOps produces n deterministic ops over the given key-space with
// roughly 80% reads, 15% writes, 5% deletes.
func genOps(seed uint64, keys, n int) ([]uint32, []uint8) {
	r := lcg(seed)
	ks := make([]uint32, n)
	kinds := make([]uint8, n)
	for i := range ks {
		ks[i] = uint32(r.next() % uint64(keys))
		switch v := r.next() % 100; {
		case v < 80:
			kinds[i] = uint8(kvstore.Read)
		case v < 95:
			kinds[i] = uint8(kvstore.Write)
		default:
			kinds[i] = uint8(kvstore.Delete)
		}
	}
	return ks, kinds
}

// encode writes a complete trace to memory via the production Writer.
func encode(t *testing.T, name string, sizes []int32, names []string, keys []uint32, kinds []uint8) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, name, sizes, names, uint64(len(keys)))
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	if err := w.Append(keys, kinds); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

// decodeAll streams every frame of raw through the Reader, returning
// the concatenated ops and the per-frame rw flags.
func decodeAll(t *testing.T, raw []byte) (keys []uint32, kinds []uint8, rws []bool, f *File) {
	t.Helper()
	f, err := New(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	it, err := f.Frames()
	if err != nil {
		t.Fatalf("Frames: %v", err)
	}
	for {
		fk, fd, rw, err := it.Next()
		if err == io.EOF {
			return keys, kinds, rws, f
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		keys = append(keys, fk...)
		kinds = append(kinds, fd...)
		rws = append(rws, rw)
	}
}

func TestRoundTripCanonical(t *testing.T) {
	const nk = 37
	sizes := make([]int32, nk)
	for i := range sizes {
		sizes[i] = int32(100 + i*13)
	}
	keys, kinds := genOps(1, nk, 10_000) // 3 frames: 4096+4096+1808
	raw := encode(t, "roundtrip", sizes, nil, keys, kinds)

	gk, gd, rws, f := decodeAll(t, raw)
	h := f.Header
	if h.Name != "roundtrip" || h.Keys != nk || h.Requests != 10_000 || !h.Canonical() {
		t.Fatalf("header = %+v", h)
	}
	for i, s := range h.Sizes {
		if s != sizes[i] {
			t.Fatalf("size[%d] = %d, want %d", i, s, sizes[i])
		}
	}
	if h.KeyNames != nil {
		t.Fatalf("canonical trace carries key names")
	}
	if len(gk) != len(keys) {
		t.Fatalf("decoded %d ops, wrote %d", len(gk), len(keys))
	}
	for i := range keys {
		if gk[i] != keys[i] || gd[i] != kinds[i] {
			t.Fatalf("op %d = (%d,%d), want (%d,%d)", i, gk[i], gd[i], keys[i], kinds[i])
		}
	}
	// Every frame's rw flag must match its content.
	off := 0
	for fi, rw := range rws {
		n := FrameOps
		if off+n > len(kinds) {
			n = len(kinds) - off
		}
		want := true
		for _, k := range kinds[off : off+n] {
			if k > 1 {
				want = false
			}
		}
		if rw != want {
			t.Fatalf("frame %d rw = %v, content says %v", fi, rw, want)
		}
		off += n
	}

	// The independent validator must agree in full.
	sum, err := Validate(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if sum.Ops != 10_000 || sum.Frames != 3 || sum.Header.Name != "roundtrip" {
		t.Fatalf("summary = %+v", sum)
	}
}

func TestRoundTripNamedKeys(t *testing.T) {
	sizes := []int32{10, 20, 30}
	names := []string{"alpha", "user:42", ""}
	keys := []uint32{0, 1, 2, 1}
	kinds := []uint8{0, 1, 2, 1}
	raw := encode(t, "named", sizes, names, keys, kinds)
	_, _, _, f := decodeAll(t, raw)
	if f.Header.Canonical() {
		t.Fatalf("named trace decoded as canonical")
	}
	for i, n := range f.Header.KeyNames {
		if n != names[i] {
			t.Fatalf("key name %d = %q, want %q", i, n, names[i])
		}
	}
}

func TestIndependentIterators(t *testing.T) {
	sizes := make([]int32, 5)
	for i := range sizes {
		sizes[i] = 8
	}
	keys, kinds := genOps(2, 5, 9000)
	raw := encode(t, "iters", sizes, nil, keys, kinds)
	f, err := New(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := f.Frames()
	b, _ := f.Frames()
	ak, _, _, err := a.Next()
	if err != nil {
		t.Fatal(err)
	}
	first := append([]uint32(nil), ak...)
	// Drain b fully; a's buffered first frame must be unaffected because
	// the iterators share nothing but the read-only source.
	for {
		if _, _, _, err := b.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	ak2, _, _, err := a.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != FrameOps || len(ak2) != FrameOps {
		t.Fatalf("frame lengths %d, %d", len(first), len(ak2))
	}
	for i := range first {
		if first[i] != keys[i] {
			t.Fatalf("iterator a frame 1 diverged at %d", i)
		}
		if ak2[i] != keys[FrameOps+i] {
			t.Fatalf("iterator a frame 2 diverged at %d", i)
		}
	}
}

func TestWriterRejects(t *testing.T) {
	sizes := []int32{1, 2}
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, "x", nil, nil, 0); err == nil {
		t.Fatal("empty key space accepted")
	}
	if _, err := NewWriter(&buf, "x", sizes, []string{"only-one"}, 0); err == nil {
		t.Fatal("name/size mismatch accepted")
	}
	w, err := NewWriter(&buf, "x", sizes, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]uint32{2}, []uint8{0}); err == nil {
		t.Fatal("out-of-range key accepted")
	}
	if err := w.Append([]uint32{0}, []uint8{3}); err == nil {
		t.Fatal("out-of-legend kind accepted")
	}
	if err := w.Append([]uint32{0, 1}, []uint8{0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Fatal("short trace (2 of 4 declared ops) closed clean")
	}
}

// frameOffset locates the first frame in a valid encoded trace.
func frameOffset(raw []byte) int {
	hdrLen := int(binary.LittleEndian.Uint32(raw[6:10]))
	return preludeLen + hdrLen + 4
}

// refixFrameCRC recomputes the first frame's checksum after a test
// mutated its bytes, so the corruption under test is reached.
func refixFrameCRC(raw []byte) {
	fo := frameOffset(raw)
	n := int(binary.LittleEndian.Uint32(raw[fo : fo+4]))
	end := fo + frameHeadLen + n*5
	binary.LittleEndian.PutUint32(raw[end:end+4], crc32.ChecksumIEEE(raw[fo:end]))
}

func TestRejectsCorruption(t *testing.T) {
	sizes := make([]int32, 4)
	for i := range sizes {
		sizes[i] = 64
	}
	keys, kinds := genOps(3, 4, 600)
	kinds[5] = uint8(kvstore.Delete) // ensure a structural op exists
	pristine := encode(t, "corrupt", sizes, nil, keys, kinds)

	cases := []struct {
		name     string
		mutate   func(raw []byte) []byte
		sentinel error
	}{
		{"bad magic", func(r []byte) []byte { r[0] = 'X'; return r }, ErrBadMagic},
		{"bad version", func(r []byte) []byte { r[4] = 99; return r }, ErrBadVersion},
		{"header crc", func(r []byte) []byte { r[preludeLen] ^= 0xFF; return r }, ErrChecksum},
		{"header length runaway", func(r []byte) []byte {
			binary.LittleEndian.PutUint32(r[6:10], math.MaxUint32)
			return r
		}, ErrTruncated},
		{"truncated mid-frame", func(r []byte) []byte { return r[:frameOffset(r)+10] }, ErrTruncated},
		{"truncated before frames", func(r []byte) []byte { return r[:frameOffset(r)] }, ErrTruncated},
		{"trailing garbage", func(r []byte) []byte { return append(r, 0xAB) }, ErrSchema},
		{"frame crc", func(r []byte) []byte { r[frameOffset(r)+frameHeadLen] ^= 0xFF; return r }, ErrChecksum},
		{"key out of range", func(r []byte) []byte {
			fo := frameOffset(r)
			binary.LittleEndian.PutUint32(r[fo+frameHeadLen:], 4) // keys are [0,4)
			refixFrameCRC(r)
			return r
		}, ErrSchema},
		{"kind out of legend", func(r []byte) []byte {
			fo := frameOffset(r)
			n := int(binary.LittleEndian.Uint32(r[fo : fo+4]))
			r[fo+frameHeadLen+n*4] = OpKinds
			refixFrameCRC(r)
			return r
		}, ErrSchema},
		{"rw flag lie", func(r []byte) []byte {
			fo := frameOffset(r) // first frame holds the Delete at op 5
			r[fo+4] |= FrameReadWrite
			refixFrameCRC(r)
			return r
		}, ErrSchema},
		{"zero-op frame", func(r []byte) []byte {
			fo := frameOffset(r)
			binary.LittleEndian.PutUint32(r[fo:fo+4], 0)
			refixFrameCRC(r)
			return r
		}, ErrSchema},
		{"over-declared requests", func(r []byte) []byte {
			// Bump the declared total; the file's frames now undershoot.
			off := preludeLen + 2 + 2 + 4
			binary.LittleEndian.PutUint64(r[off:], 601)
			end := preludeLen + int(binary.LittleEndian.Uint32(r[6:10]))
			binary.LittleEndian.PutUint32(r[end:end+4], crc32.ChecksumIEEE(r[preludeLen:end]))
			return r
		}, ErrTruncated},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			raw := tc.mutate(append([]byte(nil), pristine...))
			rerr := readAll(raw)
			if rerr == nil {
				t.Fatalf("reader accepted %s", tc.name)
			}
			if !errors.Is(rerr, tc.sentinel) {
				t.Fatalf("reader error %v, want sentinel %v", rerr, tc.sentinel)
			}
			var fe *FormatError
			if !errors.As(rerr, &fe) {
				t.Fatalf("reader error %v is not a *FormatError", rerr)
			}
			if _, verr := Validate(bytes.NewReader(raw), int64(len(raw))); verr == nil {
				t.Fatalf("validator accepted %s", tc.name)
			}
		})
	}
}

// readAll decodes header and every frame via the Reader, returning the
// first error.
func readAll(raw []byte) error {
	f, err := New(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		return err
	}
	it, err := f.Frames()
	if err != nil {
		return err
	}
	for {
		if _, _, _, err := it.Next(); err == io.EOF {
			return nil
		} else if err != nil {
			return err
		}
	}
}

func TestWorkloadRoundTrip(t *testing.T) {
	spec := ycsb.Spec{
		Name:      "rt",
		Keys:      50,
		Requests:  9000,
		Dist:      ycsb.DistSpec{Kind: ycsb.Zipfian, Theta: 0.99},
		ReadRatio: 0.8,
		Sizes:     ycsb.SizeThumbnail,
		Seed:      7,
	}
	w, err := ycsb.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "rt.mtrc")
	if err := WriteWorkload(w, path); err != nil {
		t.Fatal(err)
	}
	got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.RequestCount() != len(w.Ops) {
		t.Fatalf("stream declares %d requests, workload has %d", got.RequestCount(), len(w.Ops))
	}
	if len(got.Dataset.Records) != len(w.Dataset.Records) {
		t.Fatalf("dataset %d records, want %d", len(got.Dataset.Records), len(w.Dataset.Records))
	}
	for i, rec := range got.Dataset.Records {
		want := w.Dataset.Records[i]
		if rec.Key != want.Key || rec.ID != want.ID || rec.Size != want.Size {
			t.Fatalf("record %d = %+v, want %+v", i, rec, want)
		}
	}
	i := 0
	if err := got.ForEachOp(func(key int, kind kvstore.OpKind) {
		if op := w.Ops[i]; key != op.Key || kind != op.Kind {
			t.Fatalf("op %d = (%d,%v), want (%d,%v)", i, key, kind, op.Key, op.Kind)
		}
		i++
	}); err != nil {
		t.Fatal(err)
	}
	if i != len(w.Ops) {
		t.Fatalf("stream yielded %d ops, want %d", i, len(w.Ops))
	}
}

// TestGenerateFileMatchesGenerate is the generation-side bit-identity
// anchor: generating straight to disk must produce the exact op
// sequence the in-memory generator produces for the same spec.
func TestGenerateFileMatchesGenerate(t *testing.T) {
	spec := ycsb.Spec{
		Name:      "genfile",
		Keys:      80,
		Requests:  10_000,
		Dist:      ycsb.DistSpec{Kind: ycsb.Hotspot, HotSetFraction: 0.2, HotOpnFraction: 0.9},
		ReadRatio: 0.7,
		Sizes:     ycsb.SizeTextPost,
		Seed:      11,
	}
	mem, err := ycsb.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "gen.mtrc")
	streamed, err := GenerateFile(spec, path)
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Spec != spec {
		t.Fatalf("reopened spec = %+v, want %+v", streamed.Spec, spec)
	}
	i := 0
	if err := streamed.ForEachOp(func(key int, kind kvstore.OpKind) {
		if op := mem.Ops[i]; key != op.Key || kind != op.Kind {
			t.Fatalf("op %d = (%d,%v), want (%d,%v)", i, key, kind, op.Key, op.Kind)
		}
		i++
	}); err != nil {
		t.Fatal(err)
	}
	if i != len(mem.Ops) {
		t.Fatalf("streamed %d ops, generated %d", i, len(mem.Ops))
	}
}

func TestOpenRejectsMissingFile(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "absent.mtrc")); err == nil {
		t.Fatal("opened a missing file")
	}
	if _, err := os.Stat("testdata"); err != nil {
		t.Skip("no testdata directory")
	}
}
