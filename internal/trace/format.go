// Package trace defines the .mtrc streaming binary trace container:
// Mnemo's on-disk workload format for traces too large to replay from
// memory (DESIGN.md §16).
//
// A .mtrc file is a schema header followed by self-delimiting frames:
//
//	magic "MTRC" | version u16 | headerLen u32 | header | headerCRC u32
//	frame*  where frame = count u32 | flags u8 | keys count×u32 |
//	                      kinds count×u8 | frameCRC u32
//
// The header carries everything a replayer needs before the first
// request: the workload name, the key-space size, the declared request
// total, the op-kind legend, the per-key value-size table, and —
// for traces whose keys are not the canonical generated names — the key
// strings themselves. Frames hold at most FrameOps requests in
// struct-of-arrays form (32-bit key indices, one byte per op kind), the
// exact shape the batched replay kernel consumes, so a reader can hand
// frames to ReplayTable.Serve without any per-op transformation.
//
// Every multi-byte field is little-endian. The header and each frame
// carry a CRC-32 (IEEE) of their payload; a reader rejects — with a
// typed *FormatError, never a panic — any magic/version mismatch,
// checksum failure, truncation, out-of-legend op kind, out-of-range key
// index, over-long frame, or op count that disagrees with the declared
// total.
package trace

import (
	"errors"
	"fmt"
)

// Magic is the 4-byte file signature.
const Magic = "MTRC"

// Version is the current container version. Readers accept exactly this
// version; see DESIGN.md §16 for the version-bump rule (any change to
// the byte layout of the header or frames — field widths, order,
// meaning, or checksum coverage — must bump it, and the previous
// version's golden fixture keeps decoding under the new reader or the
// reader must reject it loudly).
const Version = 1

// FrameOps is the maximum request count of one frame. It equals the
// batched replay kernel's block size (server.ReplayBlockOps), so one
// frame is one kernel call.
const FrameOps = 4096

// OpKinds is the op-kind legend size of version 1: Read (0), Write (1),
// Delete (2) — kvstore.OpKind's values. A frame byte outside the legend
// is a format error.
const OpKinds = 3

// MaxKeys bounds the key-space size a reader will accept. The size
// table alone costs 4 bytes per key, so this caps a hostile header at
// an allocation the reader chunks anyway; it is far above the largest
// supported dataset (the 10M-key cluster recipe).
const MaxKeys = 1 << 28

// MaxNameLen bounds the workload-name and per-key string lengths.
const MaxNameLen = 1 << 12

// Header flag bits.
const (
	// FlagCanonicalKeys marks a trace whose key strings are exactly
	// ycsb.KeyName(i) ("user%08d") for every index — generated
	// workloads — letting the file omit the per-key name block.
	FlagCanonicalKeys = 1 << 0
)

// Frame flag bits.
const (
	// FrameReadWrite marks a frame containing only Read and Write ops —
	// the batched kernel's precondition, recorded at write time so a
	// replayer classifies the frame without rescanning it.
	FrameReadWrite = 1 << 0
)

// Header is the decoded schema header of a .mtrc file.
type Header struct {
	Name     string
	Keys     int    // key-space size; every frame key index is < Keys
	Requests uint64 // declared op total; frames must sum to exactly this
	Flags    uint16
	// Sizes is the per-key value-size table (bytes), indexed by key.
	Sizes []int32
	// KeyNames holds the per-key strings when FlagCanonicalKeys is
	// unset; nil otherwise (names are KeyName(i)).
	KeyNames []string
}

// Canonical reports whether the trace's key strings are the generated
// canonical names.
func (h *Header) Canonical() bool { return h.Flags&FlagCanonicalKeys != 0 }

// FormatError is the typed decode failure of the .mtrc reader: every
// malformed input — wrong magic, unknown version, truncation, checksum
// mismatch, schema violation — surfaces as one of these, wrapping a
// sentinel from the Err* list below.
type FormatError struct {
	Offset int64 // byte offset the failure was detected at
	Err    error // sentinel (ErrBadMagic, ErrChecksum, …)
	Detail string
}

// Error implements error.
func (e *FormatError) Error() string {
	return fmt.Sprintf("trace: offset %d: %s: %s", e.Offset, e.Err, e.Detail)
}

// Unwrap exposes the sentinel for errors.Is.
func (e *FormatError) Unwrap() error { return e.Err }

// Sentinel decode failures, matchable with errors.Is.
var (
	ErrBadMagic   = errors.New("bad magic")
	ErrBadVersion = errors.New("unsupported version")
	ErrTruncated  = errors.New("truncated")
	ErrChecksum   = errors.New("checksum mismatch")
	ErrSchema     = errors.New("schema violation")
)

// formatErr builds a *FormatError in one line.
func formatErr(off int64, sentinel error, format string, args ...any) error {
	return &FormatError{Offset: off, Err: sentinel, Detail: fmt.Sprintf(format, args...)}
}

// fixedHeaderLen is the byte length of the fixed (non-variable) header
// payload prefix: flags u16, opKinds u8, pad u8, keys u32, requests u64,
// nameLen u16.
const fixedHeaderLen = 2 + 1 + 1 + 4 + 8 + 2

// preludeLen is the byte length before the header payload: magic,
// version, headerLen.
const preludeLen = 4 + 2 + 4

// frameHeadLen is the byte length of a frame's count+flags prefix.
const frameHeadLen = 4 + 1

// frameCRCLen is the byte length of a frame's trailing checksum.
const frameCRCLen = 4

// frameLen returns the total encoded byte length of a frame holding n
// ops.
func frameLen(n int) int64 { return frameHeadLen + int64(n)*5 + frameCRCLen }
