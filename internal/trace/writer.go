package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Writer encodes a .mtrc trace incrementally: the schema header is
// written up front from the declared dimensions, Append buffers ops and
// emits a frame every FrameOps of them, and Close flushes the final
// partial frame and verifies the declared request total was met. Memory
// use is one frame regardless of trace length, which is what lets
// cmd/workloadgen emit 100M+-op traces without holding them.
type Writer struct {
	dst     *bufio.Writer
	closer  io.Closer // underlying file when created via Create; nil otherwise
	keys    int
	declare uint64
	written uint64
	closed  bool

	n        int // buffered ops
	bufKeys  [FrameOps]uint32
	bufKinds [FrameOps]uint8
	scratch  []byte // one encoded frame, reused
}

// NewWriter starts a .mtrc stream on dst. name is the workload name;
// sizes is the per-key value-size table (its length is the key-space
// size); keyNames supplies the per-key strings, or nil when every key
// is the canonical generated name (ycsb.KeyName); requests is the op
// total the frames must sum to. The header is written immediately.
func NewWriter(dst io.Writer, name string, sizes []int32, keyNames []string, requests uint64) (*Writer, error) {
	keys := len(sizes)
	if keys == 0 || keys > MaxKeys {
		return nil, fmt.Errorf("trace: key-space size %d outside [1, %d]", keys, MaxKeys)
	}
	if keyNames != nil && len(keyNames) != keys {
		return nil, fmt.Errorf("trace: %d key names for %d keys", len(keyNames), keys)
	}
	if len(name) > MaxNameLen {
		return nil, fmt.Errorf("trace: workload name length %d exceeds %d", len(name), MaxNameLen)
	}
	w := &Writer{
		dst:     bufio.NewWriterSize(dst, 1<<16),
		keys:    keys,
		declare: requests,
		scratch: make([]byte, 0, frameLen(FrameOps)),
	}

	var flags uint16
	if keyNames == nil {
		flags |= FlagCanonicalKeys
	}
	hdr := make([]byte, 0, fixedHeaderLen+len(name))
	hdr = binary.LittleEndian.AppendUint16(hdr, flags)
	hdr = append(hdr, OpKinds, 0)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(keys))
	hdr = binary.LittleEndian.AppendUint64(hdr, requests)
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(len(name)))
	hdr = append(hdr, name...)
	for _, s := range sizes {
		if s < 0 {
			return nil, fmt.Errorf("trace: negative value size %d", s)
		}
		hdr = binary.LittleEndian.AppendUint32(hdr, uint32(s))
	}
	if keyNames != nil {
		for _, kn := range keyNames {
			if len(kn) > MaxNameLen {
				return nil, fmt.Errorf("trace: key name length %d exceeds %d", len(kn), MaxNameLen)
			}
			hdr = binary.LittleEndian.AppendUint16(hdr, uint16(len(kn)))
			hdr = append(hdr, kn...)
		}
	}

	pre := make([]byte, 0, preludeLen)
	pre = append(pre, Magic...)
	pre = binary.LittleEndian.AppendUint16(pre, Version)
	pre = binary.LittleEndian.AppendUint32(pre, uint32(len(hdr)))
	if _, err := w.dst.Write(pre); err != nil {
		return nil, err
	}
	if _, err := w.dst.Write(hdr); err != nil {
		return nil, err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(hdr))
	if _, err := w.dst.Write(crc[:]); err != nil {
		return nil, err
	}
	return w, nil
}

// Create is NewWriter onto a freshly created file; Close closes it.
func Create(path, name string, sizes []int32, keyNames []string, requests uint64) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w, err := NewWriter(f, name, sizes, keyNames, requests)
	if err != nil {
		f.Close()
		return nil, err
	}
	w.closer = f
	return w, nil
}

// Append buffers a batch of ops (keys[i] is a key index, kinds[i] its
// op kind), emitting full frames as the buffer fills. Batches of any
// length are accepted; frame boundaries are the writer's business.
func (w *Writer) Append(keys []uint32, kinds []uint8) error {
	if w.closed {
		return fmt.Errorf("trace: Append after Close")
	}
	if len(keys) != len(kinds) {
		return fmt.Errorf("trace: %d keys vs %d kinds", len(keys), len(kinds))
	}
	for i := range keys {
		if int(keys[i]) >= w.keys {
			return fmt.Errorf("trace: key index %d outside key space %d", keys[i], w.keys)
		}
		if kinds[i] >= OpKinds {
			return fmt.Errorf("trace: op kind %d outside legend %d", kinds[i], OpKinds)
		}
		w.bufKeys[w.n] = keys[i]
		w.bufKinds[w.n] = kinds[i]
		w.n++
		if w.n == FrameOps {
			if err := w.flushFrame(); err != nil {
				return err
			}
		}
	}
	return nil
}

// flushFrame encodes and writes the buffered ops as one frame.
func (w *Writer) flushFrame() error {
	n := w.n
	if n == 0 {
		return nil
	}
	w.n = 0
	w.written += uint64(n)
	if w.written > w.declare {
		return fmt.Errorf("trace: %d ops appended, %d declared", w.written, w.declare)
	}
	var flags uint8 = FrameReadWrite
	for _, k := range w.bufKinds[:n] {
		if k > 1 { // beyond Write: Delete (and any future structural kind)
			flags &^= FrameReadWrite
			break
		}
	}
	buf := w.scratch[:0]
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	buf = append(buf, flags)
	for _, k := range w.bufKeys[:n] {
		buf = binary.LittleEndian.AppendUint32(buf, k)
	}
	buf = append(buf, w.bufKinds[:n]...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	w.scratch = buf[:0]
	_, err := w.dst.Write(buf)
	return err
}

// Close flushes the final partial frame, verifies the op total matches
// the declared request count, flushes buffered bytes and closes the
// underlying file if Create opened one.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	err := w.flushFrame()
	if err == nil && w.written != w.declare {
		err = fmt.Errorf("trace: %d ops written, %d declared", w.written, w.declare)
	}
	if ferr := w.dst.Flush(); err == nil {
		err = ferr
	}
	if w.closer != nil {
		if cerr := w.closer.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
