package trace

// In-package tests of the file-level helpers: Create/OpenFile/
// ValidateFile on disk, the dataset-derived schema (CreateDataset,
// datasetSchema), the TraceStream adapter, and GenerateFile's error
// paths. The byte-level format behaviour is pinned by trace_test.go;
// streamed-replay equivalence by internal/client.

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mnemo/internal/kvstore"
	"mnemo/internal/ycsb"
)

func TestCreateValidateFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rt.mtrc")
	sizes := []int32{100, 200, 300, 400, 500}
	keys, kinds := genOps(11, len(sizes), 2*FrameOps+17)

	wr, err := Create(path, "file-rt", sizes, nil, uint64(len(keys)))
	if err != nil {
		t.Fatal(err)
	}
	if err := wr.Append(keys, kinds); err != nil {
		t.Fatal(err)
	}
	if err := wr.Close(); err != nil {
		t.Fatal(err)
	}

	sum, err := ValidateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Header.Name != "file-rt" || sum.Header.Keys != len(sizes) {
		t.Fatalf("validated header %s/%d, want file-rt/%d", sum.Header.Name, sum.Header.Keys, len(sizes))
	}
	if sum.Frames != 3 || sum.Ops != uint64(len(keys)) {
		t.Fatalf("validated %d frames / %d ops, want 3 / %d", sum.Frames, sum.Ops, len(keys))
	}

	f, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Requests() != len(keys) {
		t.Fatalf("Requests() = %d, want %d", f.Requests(), len(keys))
	}

	// The TraceStream adapter must yield independent, repeatable
	// iterations of the same ops.
	st := f.Stream()
	if st.Requests() != len(keys) {
		t.Fatalf("stream Requests() = %d, want %d", st.Requests(), len(keys))
	}
	for pass := 0; pass < 2; pass++ {
		it, err := st.Frames()
		if err != nil {
			t.Fatal(err)
		}
		off := 0
		for {
			fk, fd, _, err := it.Next()
			if err != nil {
				break
			}
			for i := range fk {
				if fk[i] != keys[off] || fd[i] != kinds[off] {
					t.Fatalf("pass %d op %d = (%d,%d), want (%d,%d)", pass, off, fk[i], fd[i], keys[off], kinds[off])
				}
				off++
			}
		}
		if off != len(keys) {
			t.Fatalf("pass %d yielded %d ops, want %d", pass, off, len(keys))
		}
	}
}

func TestValidateFileRejects(t *testing.T) {
	if _, err := ValidateFile(filepath.Join(t.TempDir(), "absent.mtrc")); err == nil {
		t.Error("ValidateFile accepted a missing file")
	}

	bad := filepath.Join(t.TempDir(), "bad.mtrc")
	if err := os.WriteFile(bad, []byte("not a trace at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateFile(bad); err == nil {
		t.Error("ValidateFile accepted garbage bytes")
	}
}

// TestCreateDatasetSchema pins datasetSchema's two modes: canonical key
// names are elided from the file, arbitrary names are carried per key
// and round-trip through Open.
func TestCreateDatasetSchema(t *testing.T) {
	named := &ycsb.Dataset{Records: []ycsb.Record{
		{Key: "alpha", Size: 10},
		{Key: "beta", Size: 20},
	}}
	path := filepath.Join(t.TempDir(), "named.mtrc")
	wr, err := CreateDataset(path, "named", named, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := wr.Append([]uint32{0, 1, 0, 1}, []uint8{0, 1, 0, 2}); err != nil {
		t.Fatal(err)
	}
	if err := wr.Close(); err != nil {
		t.Fatal(err)
	}
	w, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if w.Dataset.Records[0].Key != "alpha" || w.Dataset.Records[1].Key != "beta" {
		t.Fatalf("named keys did not round-trip: %q, %q", w.Dataset.Records[0].Key, w.Dataset.Records[1].Key)
	}
	if w.Dataset.Records[1].Size != 20 {
		t.Fatalf("record size = %d, want 20", w.Dataset.Records[1].Size)
	}

	canonical := &ycsb.Dataset{Records: []ycsb.Record{
		{Key: ycsb.KeyName(0), Size: 10},
		{Key: ycsb.KeyName(1), Size: 20},
	}}
	path2 := filepath.Join(t.TempDir(), "canon.mtrc")
	wr, err = CreateDataset(path2, "canon", canonical, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := wr.Append([]uint32{1, 0}, []uint8{0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := wr.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := OpenFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Header.Canonical() {
		t.Error("canonical dataset produced a named-keys file")
	}
	if w, err := Open(path2); err != nil || w.Dataset.Records[1].Key != ycsb.KeyName(1) {
		t.Fatalf("canonical keys did not regenerate: %v, %q", err, w.Dataset.Records[1].Key)
	}
}

func TestCreateErrors(t *testing.T) {
	if _, err := Create(filepath.Join(t.TempDir(), "no", "such", "dir", "x.mtrc"), "x", []int32{1}, nil, 1); err == nil {
		t.Error("Create succeeded under a nonexistent directory")
	}
	// NewWriter rejection must close and not leave a half-writer behind.
	if _, err := Create(filepath.Join(t.TempDir(), "empty.mtrc"), "x", nil, nil, 0); err == nil {
		t.Error("Create accepted an empty key space")
	}
}

func TestGenerateFileErrors(t *testing.T) {
	good := ycsb.Spec{Name: "gf", Keys: 8, Requests: 64,
		Dist: ycsb.DistSpec{Kind: ycsb.Uniform}, ReadRatio: 1.0,
		Sizes: ycsb.SizeFixed1KB, Seed: 5}

	if _, err := GenerateFile(good, filepath.Join(t.TempDir(), "no", "dir", "x.mtrc")); err == nil {
		t.Error("GenerateFile succeeded under a nonexistent directory")
	}

	bad := good
	bad.Keys = 0
	path := filepath.Join(t.TempDir(), "bad.mtrc")
	if _, err := GenerateFile(bad, path); err == nil {
		t.Error("GenerateFile accepted an invalid spec")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("failed GenerateFile left %s behind (stat err %v)", path, err)
	}

	// And the success path end to end: generated trace reopens streamed
	// with the full spec restored.
	okPath := filepath.Join(t.TempDir(), "ok.mtrc")
	w, err := GenerateFile(good, okPath)
	if err != nil {
		t.Fatal(err)
	}
	if w.Stream == nil || w.Spec.Name != "gf" || w.Spec.Sizes != ycsb.SizeFixed1KB {
		t.Fatalf("generated workload spec not restored: %+v", w.Spec)
	}
	if got := w.RequestCount(); got != good.Requests {
		t.Fatalf("RequestCount = %d, want %d", got, good.Requests)
	}
}

// TestWriteWorkloadErrors covers the spill path's failure handling: the
// partial file must be removed.
func TestWriteWorkloadErrors(t *testing.T) {
	w := ycsb.MustGenerate(ycsb.Spec{Name: "spill", Keys: 4, Requests: 16,
		Dist: ycsb.DistSpec{Kind: ycsb.Uniform}, ReadRatio: 1.0,
		Sizes: ycsb.SizeFixed1KB, Seed: 2})
	if err := WriteWorkload(w, filepath.Join(t.TempDir(), "no", "dir", "x.mtrc")); err == nil {
		t.Error("WriteWorkload succeeded under a nonexistent directory")
	}

	// A workload whose ops disagree with its dataset (key index out of
	// range) must fail mid-spill and clean up.
	broken := ycsb.MustGenerate(ycsb.Spec{Name: "broken", Keys: 4, Requests: 4,
		Dist: ycsb.DistSpec{Kind: ycsb.Uniform}, ReadRatio: 1.0,
		Sizes: ycsb.SizeFixed1KB, Seed: 2})
	broken.Ops[2] = ycsb.Op{Key: 99, Kind: kvstore.Read}
	path := filepath.Join(t.TempDir(), "broken.mtrc")
	if err := WriteWorkload(broken, path); err == nil {
		t.Error("WriteWorkload accepted an out-of-range key index")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("failed WriteWorkload left %s behind (stat err %v)", path, err)
	}
}

// refixHeaderCRC recomputes the header checksum after a test mutated
// header bytes, so the corruption under test (not the CRC) is reached.
func refixHeaderCRC(raw []byte) {
	hdrLen := int(binary.LittleEndian.Uint32(raw[6:10]))
	binary.LittleEndian.PutUint32(raw[preludeLen+hdrLen:],
		crc32.ChecksumIEEE(raw[preludeLen:preludeLen+hdrLen]))
}

// TestRejectsNamedKeyCorruption drives the named-keys header branches
// of both the reader and the independent validator: an oversized
// workload-name length, an oversized key-name length, and a key-name
// length pointing past the header payload must all reject.
func TestRejectsNamedKeyCorruption(t *testing.T) {
	sizes := []int32{8, 16, 24}
	names := []string{"red", "green", "blue"}
	keys := []uint32{0, 1, 2, 1}
	kinds := []uint8{0, 1, 0, 0}
	base := encode(t, "named", sizes, names, keys, kinds)
	nameOff := preludeLen + fixedHeaderLen - 2 // workload nameLen u16
	firstKeyNameOff := preludeLen + fixedHeaderLen + len("named") + 4*len(sizes)

	cases := []struct {
		label string
		patch func(raw []byte)
	}{
		{"workload name length over cap", func(raw []byte) {
			binary.LittleEndian.PutUint16(raw[nameOff:], MaxNameLen+1)
		}},
		{"key-name length over cap", func(raw []byte) {
			binary.LittleEndian.PutUint16(raw[firstKeyNameOff:], MaxNameLen+1)
		}},
		{"key-name length past header end", func(raw []byte) {
			binary.LittleEndian.PutUint16(raw[firstKeyNameOff:], MaxNameLen-1)
		}},
	}
	for _, tc := range cases {
		raw := append([]byte(nil), base...)
		tc.patch(raw)
		refixHeaderCRC(raw)
		rerr := readAll(raw)
		verr := func() error { _, err := Validate(bytes.NewReader(raw), int64(len(raw))); return err }()
		if rerr == nil || verr == nil {
			t.Errorf("%s: reader err %v, validator err %v — both must reject", tc.label, rerr, verr)
		}
	}
}

func TestOpenFileRejectsCorruptHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.mtrc")
	if err := os.WriteFile(path, []byte("MTRC garbage beyond the magic"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path); err == nil {
		t.Error("OpenFile accepted a corrupt header")
	}
}

// TestWriterRejectsMore covers the writer validations beyond
// TestWriterRejects: schema limits at construction, misuse of Append,
// and over-appending past the declared total.
func TestWriterRejectsMore(t *testing.T) {
	var buf bytes.Buffer
	long := strings.Repeat("n", MaxNameLen+1)
	if _, err := NewWriter(&buf, long, []int32{1}, nil, 1); err == nil {
		t.Error("oversized workload name accepted")
	}
	if _, err := NewWriter(&buf, "x", []int32{-5}, nil, 1); err == nil {
		t.Error("negative value size accepted")
	}
	if _, err := NewWriter(&buf, "x", []int32{1}, []string{long}, 1); err == nil {
		t.Error("oversized key name accepted")
	}

	w, err := NewWriter(&buf, "x", []int32{1, 2}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]uint32{0, 1}, []uint8{0}); err == nil {
		t.Error("mismatched keys/kinds lengths accepted")
	}
	if err := w.Append([]uint32{0, 1}, []uint8{0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Error("2 ops against 1 declared closed clean")
	}
	if err := w.Append([]uint32{0}, []uint8{0}); err == nil {
		t.Error("Append after Close accepted")
	}
	if err := w.Close(); err != nil {
		t.Errorf("second Close not idempotent: %v", err)
	}
}
