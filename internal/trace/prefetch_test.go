package trace

import (
	"bytes"
	"io"
	"runtime"
	"testing"
	"time"
)

// prefetchTrace builds a small multi-frame trace for iterator tests.
func prefetchTrace(t *testing.T) *File {
	t.Helper()
	sizes := make([]int32, 5)
	for i := range sizes {
		sizes[i] = 64
	}
	keys, kinds := genOps(3, 5, 3*FrameOps)
	raw := encode(t, "prefetch", sizes, nil, keys, kinds)
	f, err := New(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// An iterator abandoned mid-trace must not leak its prefetch goroutine:
// once the FrameReader is collected, the finalizer releases the
// goroutine blocked on its channels.
func TestFrameReaderAbandonmentLeaksNoGoroutine(t *testing.T) {
	f := prefetchTrace(t)
	base := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		it, err := f.Frames()
		if err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := it.Next(); err != nil {
			t.Fatal(err)
		}
		// Abandon mid-trace: the error-return path of every replay loop.
	}
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		runtime.GC() // one cycle queues the finalizers, the next reclaims
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		t.Fatalf("%d goroutines after abandoning 8 iterators, started with %d", n, base)
	}
}

// EOF is sticky: Next keeps returning io.EOF after the trace ends, and
// the returned slices stay nil.
func TestFrameReaderStickyEOF(t *testing.T) {
	f := prefetchTrace(t)
	it, err := f.Frames()
	if err != nil {
		t.Fatal(err)
	}
	frames := 0
	for {
		_, _, _, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		frames++
	}
	if frames != 3 {
		t.Fatalf("decoded %d frames, want 3", frames)
	}
	for i := 0; i < 3; i++ {
		keys, kinds, _, err := it.Next()
		if err != io.EOF {
			t.Fatalf("Next after EOF = %v, want io.EOF", err)
		}
		if keys != nil || kinds != nil {
			t.Fatalf("Next after EOF returned data")
		}
	}
}

// The one-frame prefetch must not outrun the consumer: a frame handed
// out by Next stays intact while the iterator decodes ahead.
func TestFrameReaderHandedFrameStable(t *testing.T) {
	f := prefetchTrace(t)
	it, err := f.Frames()
	if err != nil {
		t.Fatal(err)
	}
	keys, kinds, _, err := it.Next()
	if err != nil {
		t.Fatal(err)
	}
	snapKeys := append([]uint32(nil), keys...)
	snapKinds := append([]uint8(nil), kinds...)
	// Give the prefetcher every chance to decode ahead into the other
	// buffer before we compare.
	time.Sleep(20 * time.Millisecond)
	runtime.Gosched()
	for i := range keys {
		if keys[i] != snapKeys[i] || kinds[i] != snapKinds[i] {
			t.Fatalf("op %d mutated while the frame was held", i)
		}
	}
}
