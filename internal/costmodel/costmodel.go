// Package costmodel implements the two cost analyses of the paper:
//
//  1. The hybrid-memory cost reduction factor of Section II,
//     R(p) = (F + (C−F)·p) / C, where F is the FastMem byte capacity, C
//     the total dataset capacity, and p the per-byte price of SlowMem
//     relative to FastMem (fixed to 0.2 throughout the paper, after
//     Dulloor et al.'s NVM price estimates).
//
//  2. The cloud VM cost regression of the introduction (Fig 1): modelling
//     VMCost = vCPU·C + GB·M per provider and solving for C and M by
//     least squares over the provider's instance catalog, following Amur
//     et al. — which shows memory is 60–85% of the cost of
//     memory-optimized VMs.
package costmodel

import (
	"fmt"
	"sort"

	"mnemo/internal/linalg"
)

// DefaultPriceFactor is the paper's p = 0.2 (SlowMem is 5× cheaper per
// byte than FastMem).
const DefaultPriceFactor = 0.2

// CostReduction returns R(p) for a hybrid sizing holding fastBytes of the
// totalBytes dataset in FastMem. R(1) would mean SlowMem costs the same
// as FastMem; R(p)→p as FastMem→0. It panics on invalid inputs.
func CostReduction(fastBytes, totalBytes int64, p float64) float64 {
	if totalBytes <= 0 {
		panic(fmt.Sprintf("costmodel: total bytes %d must be positive", totalBytes))
	}
	if fastBytes < 0 || fastBytes > totalBytes {
		panic(fmt.Sprintf("costmodel: fast bytes %d outside [0,%d]", fastBytes, totalBytes))
	}
	if p <= 0 || p > 1 {
		panic(fmt.Sprintf("costmodel: price factor %v outside (0,1]", p))
	}
	f := float64(fastBytes)
	c := float64(totalBytes)
	return (f + (c-f)*p) / c
}

// Baseline rows of Table II.
type Baseline struct {
	Name          string
	FastBytes     int64
	SlowBytes     int64
	CostReduction float64
}

// TableII returns the paper's baseline sizings for a dataset of c bytes
// at price factor p: best case (all FastMem, R = 1), worst case (all
// SlowMem, R = p), and an illustrative in-between point.
func TableII(c int64, p float64) []Baseline {
	half := c / 2
	return []Baseline{
		{Name: "Best Case", FastBytes: c, SlowBytes: 0, CostReduction: CostReduction(c, c, p)},
		{Name: "In between", FastBytes: half, SlowBytes: c - half, CostReduction: CostReduction(half, c, p)},
		{Name: "Worst Case", FastBytes: 0, SlowBytes: c, CostReduction: CostReduction(0, c, p)},
	}
}

// VMInstance is one catalog entry of a cloud provider.
type VMInstance struct {
	Provider  string
	Name      string
	VCPU      float64
	MemGB     float64
	HourlyUSD float64
	// MemoryOptimized marks the instances Fig 1 reports shares for.
	MemoryOptimized bool
}

// Coefficients are the fitted per-vCPU and per-GB hourly costs.
type Coefficients struct {
	Provider  string
	CPerVCPU  float64 // $/vCPU/hour
	MPerGB    float64 // $/GB/hour
	RSS       float64 // residual sum of squares of the fit
	Instances int
}

// Fit solves VMCost = vCPU·C + GB·M over the instances by least squares.
// At least two instances with non-collinear shapes are required.
func Fit(instances []VMInstance) (Coefficients, error) {
	if len(instances) < 2 {
		return Coefficients{}, fmt.Errorf("costmodel: need ≥2 instances, have %d", len(instances))
	}
	rows := make([][]float64, len(instances))
	b := make([]float64, len(instances))
	for i, inst := range instances {
		rows[i] = []float64{inst.VCPU, inst.MemGB}
		b[i] = inst.HourlyUSD
	}
	x, rss, err := linalg.LeastSquares(linalg.FromRows(rows), b)
	if err != nil {
		return Coefficients{}, fmt.Errorf("costmodel: fitting %s: %w", instances[0].Provider, err)
	}
	return Coefficients{
		Provider:  instances[0].Provider,
		CPerVCPU:  x[0],
		MPerGB:    x[1],
		RSS:       rss,
		Instances: len(instances),
	}, nil
}

// MemoryCostShare estimates the fraction of an instance's hourly price
// attributable to memory under the fitted coefficients.
func MemoryCostShare(inst VMInstance, c Coefficients) float64 {
	if inst.HourlyUSD <= 0 {
		panic(fmt.Sprintf("costmodel: instance %s has non-positive price", inst.Name))
	}
	share := c.MPerGB * inst.MemGB / inst.HourlyUSD
	if share < 0 {
		share = 0
	}
	if share > 1 {
		share = 1
	}
	return share
}

// ShareRow is one bar of Fig 1.
type ShareRow struct {
	Provider    string
	Instance    string
	MemoryShare float64
}

// Fig1 fits each provider's catalog and reports the memory cost share of
// every memory-optimized instance, sorted by provider then instance.
func Fig1() ([]ShareRow, error) {
	var rows []ShareRow
	for _, provider := range Providers() {
		catalog := Instances(provider)
		coeff, err := Fit(catalog)
		if err != nil {
			return nil, err
		}
		for _, inst := range catalog {
			if !inst.MemoryOptimized {
				continue
			}
			rows = append(rows, ShareRow{
				Provider:    provider,
				Instance:    inst.Name,
				MemoryShare: MemoryCostShare(inst, coeff),
			})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Provider != rows[j].Provider {
			return rows[i].Provider < rows[j].Provider
		}
		return rows[i].Instance < rows[j].Instance
	})
	return rows, nil
}

// PriceFactorFromHardware derives p from actual per-GB hardware or VM
// prices, the way a Mnemo user would in a "real usage scenario" (§II).
func PriceFactorFromHardware(slowPerGB, fastPerGB float64) (float64, error) {
	if slowPerGB <= 0 || fastPerGB <= 0 {
		return 0, fmt.Errorf("costmodel: prices must be positive (slow %v, fast %v)", slowPerGB, fastPerGB)
	}
	p := slowPerGB / fastPerGB
	if p >= 1 {
		return 0, fmt.Errorf("costmodel: slow memory (%v $/GB) is not cheaper than fast (%v $/GB)", slowPerGB, fastPerGB)
	}
	return p, nil
}
