package costmodel

// 2018-era on-demand list prices (US regions), approximating the price
// sheets the paper cites ([3] AWS ElastiCache pricing, [6] Google Compute
// Engine pricing, [11] Microsoft Azure Linux VM pricing, all retrieved
// November 2018). Absolute dollars matter less than the vCPU:GB:price
// shape, which is what the least-squares fit extracts; the resulting
// memory shares land in the paper's 60–85% band for the memory-optimized
// families (Fig 1).

// Provider identifiers.
const (
	AWS   = "aws"
	GCP   = "gcp"
	Azure = "azure"
)

// Providers returns all provider identifiers in Fig 1 order.
func Providers() []string { return []string{AWS, GCP, Azure} }

var awsInstances = []VMInstance{
	// ElastiCache cache.m5 (general purpose).
	{AWS, "cache.m5.large", 2, 6.38, 0.156, false},
	{AWS, "cache.m5.xlarge", 4, 12.93, 0.311, false},
	{AWS, "cache.m5.2xlarge", 8, 26.04, 0.622, false},
	{AWS, "cache.m5.4xlarge", 16, 52.26, 1.244, false},
	{AWS, "cache.m5.12xlarge", 48, 157.12, 3.732, false},
	{AWS, "cache.m5.24xlarge", 96, 314.32, 7.464, false},
	// ElastiCache cache.r5 (memory optimized — the Fig 1 family).
	{AWS, "cache.r5.large", 2, 13.07, 0.216, true},
	{AWS, "cache.r5.xlarge", 4, 26.32, 0.431, true},
	{AWS, "cache.r5.2xlarge", 8, 52.82, 0.862, true},
	{AWS, "cache.r5.4xlarge", 16, 105.81, 1.725, true},
	{AWS, "cache.r5.12xlarge", 48, 317.77, 5.174, true},
	{AWS, "cache.r5.24xlarge", 96, 635.61, 10.349, true},
}

var gcpInstances = []VMInstance{
	// n1-standard (3.75 GB/vCPU).
	{GCP, "n1-standard-1", 1, 3.75, 0.0475, false},
	{GCP, "n1-standard-2", 2, 7.5, 0.0950, false},
	{GCP, "n1-standard-4", 4, 15, 0.1900, false},
	{GCP, "n1-standard-8", 8, 30, 0.3800, false},
	{GCP, "n1-standard-16", 16, 60, 0.7600, false},
	{GCP, "n1-standard-32", 32, 120, 1.5200, false},
	{GCP, "n1-standard-64", 64, 240, 3.0400, false},
	{GCP, "n1-standard-96", 96, 360, 4.5600, false},
	// n1-highcpu (0.9 GB/vCPU) anchors the vCPU coefficient.
	{GCP, "n1-highcpu-16", 16, 14.4, 0.5672, false},
	{GCP, "n1-highcpu-32", 32, 28.8, 1.1344, false},
	{GCP, "n1-highcpu-64", 64, 57.6, 2.2688, false},
	// n1-highmem (6.5 GB/vCPU).
	{GCP, "n1-highmem-16", 16, 104, 0.9472, false},
	{GCP, "n1-highmem-32", 32, 208, 1.8944, false},
	{GCP, "n1-highmem-64", 64, 416, 3.7888, false},
	{GCP, "n1-highmem-96", 96, 624, 5.6832, false},
	// Memory-optimized megamem/ultramem (the Fig 1 family).
	{GCP, "n1-megamem-96", 96, 1433.6, 10.6740, true},
	{GCP, "n1-ultramem-40", 40, 961, 6.3039, true},
	{GCP, "n1-ultramem-80", 80, 1922, 12.6078, true},
	{GCP, "n1-ultramem-160", 160, 3844, 25.2156, true},
}

var azureInstances = []VMInstance{
	// Dv3 general purpose.
	{Azure, "D2v3", 2, 8, 0.096, false},
	{Azure, "D4v3", 4, 16, 0.192, false},
	{Azure, "D8v3", 8, 32, 0.384, false},
	{Azure, "D16v3", 16, 64, 0.768, false},
	{Azure, "D32v3", 32, 128, 1.536, false},
	{Azure, "D64v3", 64, 256, 3.072, false},
	// F-series compute optimized anchors the vCPU coefficient.
	{Azure, "F8sv2", 8, 16, 0.338, false},
	{Azure, "F16sv2", 16, 32, 0.677, false},
	{Azure, "F32sv2", 32, 64, 1.353, false},
	// Ev3 memory optimized (Fig 1 family).
	{Azure, "E2v3", 2, 16, 0.126, true},
	{Azure, "E4v3", 4, 32, 0.252, true},
	{Azure, "E8v3", 8, 64, 0.504, true},
	{Azure, "E16v3", 16, 128, 1.008, true},
	{Azure, "E32v3", 32, 256, 2.016, true},
	{Azure, "E64v3", 64, 432, 3.629, true},
	// M-series extreme memory optimized (Fig 1 family). List prices carry
	// a platform premium over the pure vCPU+GB decomposition.
	{Azure, "M64s", 64, 1024, 8.10, true},
	{Azure, "M64ms", 64, 1792, 12.70, true},
	{Azure, "M128s", 128, 2048, 16.10, true},
	{Azure, "M128ms", 128, 3892, 27.20, true},
}

// Instances returns the embedded catalog of a provider (nil for an
// unknown provider identifier).
func Instances(provider string) []VMInstance {
	switch provider {
	case AWS:
		return awsInstances
	case GCP:
		return gcpInstances
	case Azure:
		return azureInstances
	default:
		return nil
	}
}
