package costmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCostReductionEndpoints(t *testing.T) {
	// Table II: all-FastMem → 1, all-SlowMem → p.
	if got := CostReduction(100, 100, 0.2); got != 1 {
		t.Errorf("all-fast R = %v, want 1", got)
	}
	if got := CostReduction(0, 100, 0.2); got != 0.2 {
		t.Errorf("all-slow R = %v, want 0.2", got)
	}
	// p = 1 (SlowMem priced like FastMem) is the degenerate boundary of
	// the legal (0,1] range: cost reduction vanishes everywhere.
	if got := CostReduction(30, 100, 1); got != 1 {
		t.Errorf("R at p=1 = %v, want 1", got)
	}
}

func TestCostReductionMotivatingExample(t *testing.T) {
	// §III: FastMem sized to 20% of bytes → cost is 36% of FastMem-only.
	got := CostReduction(20, 100, 0.2)
	if math.Abs(got-0.36) > 1e-12 {
		t.Fatalf("R(20%%) = %v, want 0.36", got)
	}
}

func TestCostReductionPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { CostReduction(0, 0, 0.2) },
		func() { CostReduction(-1, 100, 0.2) },
		func() { CostReduction(101, 100, 0.2) },
		func() { CostReduction(50, 100, 0) },
		func() { CostReduction(50, 100, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestCostReductionMonotoneProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		lo, hi := int64(a), int64(a)+int64(b)
		total := hi + 1
		return CostReduction(lo, total, 0.2) <= CostReduction(hi, total, 0.2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableII(t *testing.T) {
	rows := TableII(1000, 0.2)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].CostReduction != 1 || rows[2].CostReduction != 0.2 {
		t.Fatalf("endpoint reductions: %+v", rows)
	}
	if rows[1].CostReduction <= 0.2 || rows[1].CostReduction >= 1 {
		t.Fatalf("in-between reduction %v not interior", rows[1].CostReduction)
	}
	for _, r := range rows {
		if r.FastBytes+r.SlowBytes != 1000 {
			t.Errorf("%s: bytes don't sum", r.Name)
		}
	}
}

func TestFitRecoversKnownCoefficients(t *testing.T) {
	// Synthetic provider priced exactly at C=0.05/vCPU, M=0.008/GB.
	var insts []VMInstance
	shapes := []struct{ v, g float64 }{{2, 4}, {4, 16}, {8, 64}, {16, 32}, {32, 256}}
	for _, s := range shapes {
		insts = append(insts, VMInstance{Provider: "test", VCPU: s.v, MemGB: s.g,
			HourlyUSD: 0.05*s.v + 0.008*s.g})
	}
	c, err := Fit(insts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.CPerVCPU-0.05) > 1e-9 || math.Abs(c.MPerGB-0.008) > 1e-9 {
		t.Fatalf("coefficients = %+v", c)
	}
	if c.RSS > 1e-12 {
		t.Errorf("rss = %v on exact data", c.RSS)
	}
	if c.Instances != 5 {
		t.Errorf("instances = %d", c.Instances)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil); err == nil {
		t.Error("empty catalog accepted")
	}
	// Collinear shapes: vCPU:GB ratio constant → singular normal matrix.
	collinear := []VMInstance{
		{Provider: "x", VCPU: 1, MemGB: 4, HourlyUSD: 0.1},
		{Provider: "x", VCPU: 2, MemGB: 8, HourlyUSD: 0.2},
		{Provider: "x", VCPU: 4, MemGB: 16, HourlyUSD: 0.4},
	}
	if _, err := Fit(collinear); err == nil {
		t.Error("collinear catalog accepted")
	}
}

func TestProvidersCatalogsSane(t *testing.T) {
	for _, p := range Providers() {
		insts := Instances(p)
		if len(insts) < 5 {
			t.Errorf("%s: catalog too small (%d)", p, len(insts))
		}
		memOpt := 0
		for _, in := range insts {
			if in.VCPU <= 0 || in.MemGB <= 0 || in.HourlyUSD <= 0 {
				t.Errorf("%s/%s: non-positive fields", p, in.Name)
			}
			if in.Provider != p {
				t.Errorf("%s/%s: provider mislabeled", p, in.Name)
			}
			if in.MemoryOptimized {
				memOpt++
			}
		}
		if memOpt == 0 {
			t.Errorf("%s: no memory-optimized instances", p)
		}
	}
	if Instances("nonsense") != nil {
		t.Error("unknown provider returned a catalog")
	}
}

func TestFig1SharesInPaperBand(t *testing.T) {
	rows, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 10 {
		t.Fatalf("only %d share rows", len(rows))
	}
	// Fig 1: memory is ~60–85% of memory-optimized VM cost. Allow slack
	// at the band edges for the approximate price tables.
	for _, r := range rows {
		if r.MemoryShare < 0.5 || r.MemoryShare > 0.9 {
			t.Errorf("%s/%s: memory share %.2f outside plausible Fig 1 band",
				r.Provider, r.Instance, r.MemoryShare)
		}
	}
	// At least one instance above 70% (the paper's upper range).
	var high bool
	for _, r := range rows {
		if r.MemoryShare > 0.7 {
			high = true
		}
	}
	if !high {
		t.Error("no instance above 70% memory share")
	}
}

func TestMemoryCostSharePanicsOnBadPrice(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MemoryCostShare(VMInstance{Name: "bad"}, Coefficients{})
}

func TestPriceFactorFromHardware(t *testing.T) {
	p, err := PriceFactorFromHardware(2, 10)
	if err != nil || p != 0.2 {
		t.Fatalf("p = %v, err = %v", p, err)
	}
	if _, err := PriceFactorFromHardware(0, 10); err == nil {
		t.Error("zero price accepted")
	}
	if _, err := PriceFactorFromHardware(10, 2); err == nil {
		t.Error("slow dearer than fast accepted")
	}
}
