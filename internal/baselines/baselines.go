// Package baselines implements the competing profiling approaches of
// Table IV, so the paper's overhead comparison can be regenerated:
//
//   - An instrumentation-based tiering profiler in the mold of X-Mem and
//     Unimem: the workload is executed under per-memory-access
//     instrumentation (Pin / PEBS style), which X-Mem's authors report
//     costs up to 40× in application runtime, and the observed access
//     counts drive the same density tiering MnemoT computes for free.
//   - An X-Mem-style microbenchmark stage that measures each tier's
//     latency and bandwidth before profiling.
//   - A Tahoe-style ML baseline: execute only the SlowMem run, then infer
//     the FastMem baseline from a model trained on instrumented training
//     executions — accurate, but the training-data collection dominates.
//
// All costs are accounted in simulated time on the same clock the
// workloads run on, so the comparison is apples-to-apples with MnemoT's
// two plain executions.
package baselines

import (
	"context"
	"fmt"

	"mnemo/internal/client"
	"mnemo/internal/core"
	"mnemo/internal/memsim"
	"mnemo/internal/server"
	"mnemo/internal/simclock"
	"mnemo/internal/ycsb"
)

// InstrumentationSlowdown is the application slowdown under per-access
// binary instrumentation, per the X-Mem authors' report ("can add up to
// 40x overhead").
const InstrumentationSlowdown = 40.0

// OverheadReport breaks a profiling method's cost into the Table IV
// stages. All durations are simulated time.
type OverheadReport struct {
	Method string
	// InputPrep covers instrumenting the server / wiring custom
	// allocation APIs (zero for black-box methods).
	InputPrep simclock.Duration
	// BaselineTime is the execution time spent obtaining performance
	// baselines (including any training-data collection).
	BaselineTime simclock.Duration
	// TieringTime is the time to compute the tiering ordering.
	TieringTime simclock.Duration
}

// Total sums the stages.
func (r OverheadReport) Total() simclock.Duration {
	return r.InputPrep + r.BaselineTime + r.TieringTime
}

// String renders one Table IV row.
func (r OverheadReport) String() string {
	return fmt.Sprintf("%-22s prep=%-12v baselines=%-12v tiering=%-12v total=%v",
		r.Method, r.InputPrep, r.BaselineTime, r.TieringTime, r.Total())
}

// instrumentedServerWiring is the simulated engineering cost of adapting
// the server to a custom allocation API (X-Mem/Unimem expose custom
// malloc-like interfaces the application must be ported to). Charged as a
// token constant — the paper's point is that it is nonzero and
// MnemoT's is zero.
const instrumentedServerWiring = 30 * simclock.Second

// MnemoTOverhead profiles the workload the MnemoT way — two plain
// executions for the baselines and an instantaneous weight calculation —
// and returns the overhead report together with the products (baselines
// and tiering ordering).
func MnemoTOverhead(cfg core.Config, w *ycsb.Workload) (OverheadReport, core.Baselines, core.Ordering, error) {
	se, err := core.NewSensitivityEngine(cfg)
	if err != nil {
		return OverheadReport{}, core.Baselines{}, core.Ordering{}, err
	}
	b, err := se.Baselines(context.Background(), w)
	if err != nil {
		return OverheadReport{}, core.Baselines{}, core.Ordering{}, err
	}
	// The Pattern Engine is pure arithmetic over the workload descriptor;
	// charge its real compute at a conservative 100ns per key.
	ord := core.MnemoTOrdering(w)
	tiering := simclock.Duration(len(ord.Keys)) * 100 * simclock.Nanosecond
	rep := OverheadReport{
		Method:       "MnemoT",
		InputPrep:    0,
		BaselineTime: b.Fast.Runtime + b.Slow.Runtime,
		TieringTime:  tiering,
	}
	return rep, b, ord, nil
}

// InstrumentedProfilerOverhead models the X-Mem/Unimem-class approach:
// port the server to the custom allocation API, execute the workload once
// under per-access instrumentation (InstrumentationSlowdown×) to obtain
// per-object access counts, run tier microbenchmarks for the performance
// baselines, and compute the same density tiering. The ordering produced
// is identical to MnemoT's — the point of Table IV is the cost of
// obtaining it.
func InstrumentedProfilerOverhead(cfg core.Config, w *ycsb.Workload) (OverheadReport, core.Ordering, error) {
	// One instrumented execution on the (default) FastMem deployment.
	runCfg := cfg.Server
	st, err := client.Execute(runCfg, w, server.AllFast())
	if err != nil {
		return OverheadReport{}, core.Ordering{}, err
	}
	instrumented := simclock.Duration(float64(st.Runtime) * InstrumentationSlowdown)

	// X-Mem microbenchmarks: pointer-chase and streaming sweeps per tier.
	micro := microbenchTime(runCfg)

	ord := core.MnemoTOrdering(w) // same weights, observed via instrumentation
	tiering := simclock.Duration(len(ord.Keys)) * 100 * simclock.Nanosecond
	return OverheadReport{
		Method:       "instrumented(X-Mem)",
		InputPrep:    instrumentedServerWiring,
		BaselineTime: instrumented + micro,
		TieringTime:  tiering,
	}, ord, nil
}

// microbenchTime estimates the cost of X-Mem's latency/bandwidth
// microbenchmark suite on the emulated machine: one million dependent
// chases plus a 1 GiB stream per tier.
func microbenchTime(cfg server.Config) simclock.Duration {
	m := memsim.NewMachine(cfg.Machine)
	var total float64
	for _, tier := range []memsim.Tier{memsim.Fast, memsim.Slow} {
		p := m.Node(tier).Params
		total += p.ChaseNs(1_000_000)
		total += p.TransferNs(1 << 30)
	}
	return simclock.FromNanos(total)
}

// TahoeResult carries the ML baseline's products: the measured SlowMem
// run, the inferred FastMem runtime, and the true FastMem runtime for
// error reporting.
type TahoeResult struct {
	Slow               client.RunStats
	InferredFastNs     float64
	TrueFastNs         float64
	InferenceErrorPct  float64
	TrainingWorkloads  int
	TrainingExecutions int
}

// TahoeOverhead models the Tahoe-style approach: execute the workload on
// SlowMem only, then infer the FastMem baseline with a model trained on
// instrumented executions of training workloads (each training workload
// must run on both tiers under monitoring). The returned report charges
// the training-data collection, which is what MnemoT's second plain run
// avoids many times over.
func TahoeOverhead(cfg core.Config, w *ycsb.Workload, trainer *TahoeModel) (OverheadReport, TahoeResult, error) {
	runCfg := cfg.Server
	slow, err := client.Execute(runCfg, w, server.AllSlow())
	if err != nil {
		return OverheadReport{}, TahoeResult{}, err
	}
	inferred := trainer.InferFastRuntimeNs(w, slow)

	// The true FastMem run, executed only to report inference error (not
	// charged to the method).
	fast, err := client.Execute(runCfg, w, server.AllFast())
	if err != nil {
		return OverheadReport{}, TahoeResult{}, err
	}
	res := TahoeResult{
		Slow:               slow,
		InferredFastNs:     inferred,
		TrueFastNs:         float64(fast.Runtime.Nanoseconds()),
		TrainingWorkloads:  trainer.Workloads(),
		TrainingExecutions: trainer.Executions(),
	}
	if res.TrueFastNs > 0 {
		res.InferenceErrorPct = (res.TrueFastNs - inferred) / res.TrueFastNs * 100
	}
	ord := core.MnemoTOrdering(w)
	tiering := simclock.Duration(len(ord.Keys)) * 100 * simclock.Nanosecond
	return OverheadReport{
		Method:       "ml-inferred(Tahoe)",
		InputPrep:    instrumentedServerWiring,
		BaselineTime: slow.Runtime + trainer.TrainingTime(),
		TieringTime:  tiering,
	}, res, nil
}
