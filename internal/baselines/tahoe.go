package baselines

import (
	"fmt"

	"mnemo/internal/client"
	"mnemo/internal/linalg"
	"mnemo/internal/server"
	"mnemo/internal/simclock"
	"mnemo/internal/ycsb"
)

// TahoeModel is the pre-trained regression Tahoe-style profilers use to
// infer the FastMem baseline from a SlowMem execution. Training collects
// (SlowMem, FastMem) runtime pairs for a set of training workloads — each
// pair costs two monitored executions, the hidden expense Table IV calls
// out — and fits
//
//	fastPerOpNs ≈ β0 + β1·slowPerOpNs + β2·avgRecordBytes
//	            + β3·readFrac + β4·(avgRecordBytes·readFrac)
//
// by least squares. The per-access monitoring during training runs is
// charged at the instrumentation slowdown.
type TahoeModel struct {
	beta         []float64
	workloads    int
	executions   int
	trainingTime simclock.Duration
}

// features builds the regression row for a workload/slow-run pair.
func features(w *ycsb.Workload, slow client.RunStats) []float64 {
	avgBytes := float64(w.Dataset.TotalBytes) / float64(len(w.Dataset.Records))
	readFrac := w.ReadFraction()
	slowPerOp := float64(slow.Runtime.Nanoseconds()) / float64(slow.Requests)
	return []float64{1, slowPerOp, avgBytes, readFrac, avgBytes * readFrac}
}

// TrainTahoe builds the model from a grid of training workloads spanning
// record sizes and read ratios, executed on the given engine
// configuration. More training workloads improve the fit and inflate the
// collection cost — exactly the trade Tahoe's authors report.
func TrainTahoe(cfg server.Config, seed int64, trainingKeys, trainingRequests int) (*TahoeModel, error) {
	if trainingKeys <= 0 || trainingRequests <= 0 {
		return nil, fmt.Errorf("baselines: training sizes must be positive")
	}
	sizeKinds := []ycsb.SizeKind{ycsb.SizeFixed1KB, ycsb.SizeFixed10KB, ycsb.SizeFixed100KB,
		ycsb.SizeThumbnail, ycsb.SizeTextPost}
	ratios := []float64{0, 0.5, 1}
	var rows [][]float64
	var targets []float64
	m := &TahoeModel{}
	for i, sk := range sizeKinds {
		for j, rr := range ratios {
			spec := ycsb.Spec{
				Name: fmt.Sprintf("tahoe_train_%d_%d", i, j),
				Keys: trainingKeys, Requests: trainingRequests,
				Dist:      ycsb.DistSpec{Kind: ycsb.Uniform},
				ReadRatio: rr, Sizes: sk,
				Seed: seed + int64(i*10+j),
			}
			w, err := ycsb.Generate(spec)
			if err != nil {
				return nil, err
			}
			slow, err := client.Execute(cfg, w, server.AllSlow())
			if err != nil {
				return nil, err
			}
			fast, err := client.Execute(cfg, w, server.AllFast())
			if err != nil {
				return nil, err
			}
			rows = append(rows, features(w, slow))
			targets = append(targets, float64(fast.Runtime.Nanoseconds())/float64(fast.Requests))
			m.workloads++
			m.executions += 2
			// Both training executions run under monitoring.
			monitored := float64(slow.Runtime+fast.Runtime) * InstrumentationSlowdown
			m.trainingTime += simclock.FromNanos(monitored)
		}
	}
	beta, _, err := linalg.LeastSquares(linalg.FromRows(rows), targets)
	if err != nil {
		return nil, fmt.Errorf("baselines: training Tahoe model: %w", err)
	}
	m.beta = beta
	return m, nil
}

// InferFastRuntimeNs predicts the FastMem-only total runtime of the
// workload from its SlowMem execution.
func (m *TahoeModel) InferFastRuntimeNs(w *ycsb.Workload, slow client.RunStats) float64 {
	row := features(w, slow)
	perOp := 0.0
	for i, b := range m.beta {
		perOp += b * row[i]
	}
	if perOp < 0 {
		perOp = 0
	}
	return perOp * float64(slow.Requests)
}

// Workloads reports how many training workloads were used.
func (m *TahoeModel) Workloads() int { return m.workloads }

// Executions reports how many monitored training executions were run.
func (m *TahoeModel) Executions() int { return m.executions }

// TrainingTime reports the simulated cost of collecting training data.
func (m *TahoeModel) TrainingTime() simclock.Duration { return m.trainingTime }
