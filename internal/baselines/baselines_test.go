package baselines

import (
	"context"
	"math"
	"strings"
	"testing"

	"mnemo/internal/core"
	"mnemo/internal/server"
	"mnemo/internal/ycsb"
)

func smallTrending(seed int64) *ycsb.Workload {
	return ycsb.MustGenerate(ycsb.Spec{
		Name: "trending_small", Keys: 500, Requests: 5000,
		Dist:      ycsb.DistSpec{Kind: ycsb.Hotspot, HotSetFraction: 0.2, HotOpnFraction: 0.9},
		ReadRatio: 1.0, Sizes: ycsb.SizeThumbnail, Seed: seed,
	})
}

func TestMnemoTOverhead(t *testing.T) {
	w := smallTrending(1)
	cfg := core.DefaultConfig(server.RedisLike, 1)
	rep, b, ord, err := MnemoTOverhead(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if rep.InputPrep != 0 {
		t.Error("MnemoT needs no input prep")
	}
	if rep.BaselineTime != b.Fast.Runtime+b.Slow.Runtime {
		t.Error("baseline time must be exactly the two executions")
	}
	if rep.TieringTime >= rep.BaselineTime/100 {
		t.Error("tiering must be negligible next to the baselines")
	}
	if len(ord.Keys) != 500 || ord.Name != "mnemot" {
		t.Error("ordering wrong")
	}
	if !strings.Contains(rep.String(), "MnemoT") {
		t.Error("String() missing method name")
	}
}

func TestInstrumentedProfilerCostlier(t *testing.T) {
	w := smallTrending(2)
	cfg := core.DefaultConfig(server.RedisLike, 2)
	mnemo, _, mnemoOrd, err := MnemoTOverhead(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	instr, instrOrd, err := InstrumentedProfilerOverhead(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	// Table IV: MnemoT has the lowest overhead at every stage.
	if instr.Total() <= mnemo.Total() {
		t.Fatalf("instrumented total %v not above MnemoT %v", instr.Total(), mnemo.Total())
	}
	if instr.InputPrep <= mnemo.InputPrep {
		t.Error("instrumented prep should exceed MnemoT's zero prep")
	}
	// ~40× on the baseline stage relative to a single plain run.
	plainRun := mnemo.BaselineTime / 2
	ratio := float64(instr.BaselineTime) / float64(plainRun)
	if ratio < 20 {
		t.Errorf("instrumented baseline stage only %.1fx a plain run; want ≳40x", ratio)
	}
	// Both methods compute the same tiering.
	for i := range mnemoOrd.Keys {
		if mnemoOrd.Keys[i].Key != instrOrd.Keys[i].Key {
			t.Fatalf("orderings diverge at %d", i)
		}
	}
}

func TestTahoeTrainingAndInference(t *testing.T) {
	cfg := core.DefaultConfig(server.RedisLike, 3)
	model, err := TrainTahoe(cfg.Server, 100, 100, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if model.Workloads() != 15 || model.Executions() != 30 {
		t.Fatalf("training counts: %d workloads, %d executions", model.Workloads(), model.Executions())
	}
	if model.TrainingTime() <= 0 {
		t.Fatal("training time not charged")
	}
	w := smallTrending(4)
	rep, res, err := TahoeOverhead(cfg, w, model)
	if err != nil {
		t.Fatal(err)
	}
	// The inference should be decent (Tahoe is accurate) but the total
	// cost must exceed MnemoT's because of training collection.
	if math.Abs(res.InferenceErrorPct) > 20 {
		t.Errorf("inference error %.1f%% too large for a trained model", res.InferenceErrorPct)
	}
	mnemo, _, _, err := MnemoTOverhead(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total() <= mnemo.Total() {
		t.Fatalf("Tahoe total %v not above MnemoT %v", rep.Total(), mnemo.Total())
	}
	if res.TrainingExecutions != 30 {
		t.Error("result should carry training counts")
	}
}

func TestTrainTahoeRejectsBadSizes(t *testing.T) {
	cfg := core.DefaultConfig(server.RedisLike, 5)
	if _, err := TrainTahoe(cfg.Server, 1, 0, 100); err == nil {
		t.Error("zero keys accepted")
	}
	if _, err := TrainTahoe(cfg.Server, 1, 100, 0); err == nil {
		t.Error("zero requests accepted")
	}
}

func TestTahoeInferenceNonNegative(t *testing.T) {
	m := &TahoeModel{beta: []float64{-1e12, 0, 0, 0, 0}}
	w := smallTrending(6)
	cfg := core.DefaultConfig(server.RedisLike, 6)
	se, err := core.NewSensitivityEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := se.Baselines(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.InferFastRuntimeNs(w, b.Slow); got != 0 {
		t.Fatalf("pathological model produced negative runtime %v", got)
	}
}

func TestOverheadReportTotal(t *testing.T) {
	r := OverheadReport{InputPrep: 1, BaselineTime: 2, TieringTime: 3}
	if r.Total() != 6 {
		t.Fatalf("Total = %v", r.Total())
	}
}
