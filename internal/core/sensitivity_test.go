package core

import (
	"context"
	"reflect"
	"testing"

	"mnemo/internal/client"
	"mnemo/internal/server"
	"mnemo/internal/ycsb"
)

// TestBaselinesConcurrentMatchesSerial pins the determinism contract of
// the concurrent Sensitivity Engine: running the AllFast and AllSlow
// executions in parallel must produce exactly the Baselines a serial
// back-to-back execution with the same seeds produces.
func TestBaselinesConcurrentMatchesSerial(t *testing.T) {
	w := ycsb.MustGenerate(ycsb.Spec{
		Name: "baseline", Keys: 500, Requests: 3000,
		Dist:      ycsb.DistSpec{Kind: ycsb.Hotspot, HotSetFraction: 0.2, HotOpnFraction: 0.9},
		ReadRatio: 0.9, Sizes: ycsb.SizeFixed10KB, Seed: 8,
	})
	cfg := DefaultConfig(server.RedisLike, 31)
	cfg.Runs = 2
	eng, err := NewSensitivityEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Baselines(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}

	// The serial reference: same seeds (slow decorrelated by +7919), one
	// worker, executed one after the other.
	n, err := cfg.normalized()
	if err != nil {
		t.Fatal(err)
	}
	fast, err := client.ExecuteMeanWorkers(n.Server, w, server.AllFast(), n.Runs, 1)
	if err != nil {
		t.Fatal(err)
	}
	slowCfg := n.Server
	slowCfg.Seed += 7919
	slow, err := client.ExecuteMeanWorkers(slowCfg, w, server.AllSlow(), n.Runs, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := Baselines{Fast: fast, Slow: slow}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("concurrent baselines diverged from serial:\ngot:  %+v\nwant: %+v", got, want)
	}
}
