package core

import (
	"context"
	"fmt"

	"mnemo/internal/ycsb"
)

// Mode selects which pattern engine orders keys for FastMem (the three
// deployment scenarios of Fig 2).
type Mode int

// Deployment modes.
const (
	// StandAlone sizes FastMem with keys in touch order (Fig 2a).
	StandAlone Mode = iota
	// WithExternalTiering follows a user-supplied tiered ordering
	// (Fig 2b); pass the ordering to ProfileWithOrdering.
	WithExternalTiering
	// MnemoT uses the built-in key-value-store-optimized tiering
	// (Fig 2c).
	MnemoT
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case StandAlone:
		return "standalone"
	case WithExternalTiering:
		return "external"
	case MnemoT:
		return "mnemot"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Report is the full output of one profiling session: baselines, the key
// ordering, the estimate curve, and (if an SLO was supplied) the advised
// sizing.
type Report struct {
	Workload  string
	Engine    string
	Mode      Mode
	Baselines Baselines
	Ordering  Ordering
	Curve     *Curve
	Advice    *Advice
	// Degraded marks a report whose baselines were aggregated from fewer
	// runs than requested (failed runs dropped per the config's
	// resilience policy); the per-baseline RunStats carry the exact
	// RunsUsed/RunsRetried counts.
	Degraded bool
}

// Profile runs the complete Mnemo pipeline for the workload: baselines
// via the Sensitivity Engine, ordering via the mode's Pattern Engine, the
// Estimate Engine's curve, and — when maxSlowdown > 0 — the advisor's
// sweet spot. For WithExternalTiering use ProfileWithOrdering. The
// context cancels the measurement sweeps; a cancelled profile returns
// ctx's error and no report.
func Profile(ctx context.Context, cfg Config, w *ycsb.Workload, mode Mode, maxSlowdown float64) (*Report, error) {
	var ord Ordering
	switch mode {
	case StandAlone:
		ord = TouchOrdering(w)
	case MnemoT:
		ord = MnemoTOrdering(w)
	case WithExternalTiering:
		return nil, fmt.Errorf("core: WithExternalTiering requires ProfileWithOrdering")
	default:
		return nil, fmt.Errorf("core: unknown mode %d", int(mode))
	}
	return profileWith(ctx, cfg, w, mode, ord, maxSlowdown)
}

// ProfileWithOrdering runs the pipeline with a caller-supplied ordering
// (deployment mode 2b: an existing tiering solution's DRAM key
// allocations).
func ProfileWithOrdering(ctx context.Context, cfg Config, w *ycsb.Workload, ord Ordering, maxSlowdown float64) (*Report, error) {
	return profileWith(ctx, cfg, w, WithExternalTiering, ord, maxSlowdown)
}

func profileWith(ctx context.Context, cfg Config, w *ycsb.Workload, mode Mode, ord Ordering, maxSlowdown float64) (*Report, error) {
	ncfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	se, err := NewSensitivityEngine(ncfg)
	if err != nil {
		return nil, err
	}
	baselines, err := se.Baselines(ctx, w)
	if err != nil {
		return nil, err
	}
	ee, err := NewEstimateEngine(ncfg.PriceFactor)
	if err != nil {
		return nil, err
	}
	ee.SetSizeAware(ncfg.SizeAwareEstimate)
	curve, err := ee.Curve(w, baselines, ord)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Workload:  w.Spec.Name,
		Engine:    ncfg.Server.Engine.String(),
		Mode:      mode,
		Baselines: baselines,
		Ordering:  ord,
		Curve:     curve,
		Degraded:  baselines.Fast.Degraded || baselines.Slow.Degraded,
	}
	if maxSlowdown > 0 {
		advice, err := Advise(curve, maxSlowdown)
		if err != nil {
			return nil, err
		}
		rep.Advice = &advice
	}
	return rep, nil
}
