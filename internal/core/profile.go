package core

import (
	"context"

	"mnemo/internal/ycsb"
)

// Report is the full output of one profiling session: baselines, the key
// ordering, the estimate curve, and (if an SLO was supplied) the advised
// sizing.
type Report struct {
	Workload string
	Engine   string
	// Policy is the tiering policy that produced the ordering ("touch",
	// "mnemot", "external", or any registered policy name).
	Policy    string
	Baselines Baselines
	Ordering  Ordering
	Curve     *Curve
	Advice    *Advice
	// Degraded marks a report whose baselines were aggregated from fewer
	// runs than requested (failed runs dropped per the config's
	// resilience policy) or, on a sharded cluster, merged from fewer
	// shards than configured; the per-baseline RunStats carry the exact
	// RunsUsed/RunsRetried and ShardsFailed/ShardsHedged/ShardsRetried
	// counts.
	Degraded bool
	// DegradedReasons explains a degraded report, each reason prefixed
	// with the baseline it came from ("FastMem: shard 3: …").
	DegradedReasons []string
}

// Profile runs the complete Mnemo pipeline for the workload under one
// tiering policy: baselines via the Sensitivity Engine, ordering via the
// policy's Pattern Engine, the Estimate Engine's curve, and — when
// maxSlowdown > 0 — the advisor's sweet spot. It is the one-shot form of
// a Session; to profile several policies against one measurement, use
// NewSession and Session.Compare. The context cancels the measurement
// sweeps; a cancelled profile returns ctx's error and no report.
func Profile(ctx context.Context, cfg Config, w *ycsb.Workload, p TieringPolicy, maxSlowdown float64) (*Report, error) {
	s, err := NewSession(cfg, w)
	if err != nil {
		return nil, err
	}
	return s.Run(ctx, p, maxSlowdown)
}

// ProfileWithOrdering runs the pipeline with a caller-supplied ordering
// (deployment mode 2b: an existing tiering solution's DRAM key
// allocations, already resolved to an Ordering).
func ProfileWithOrdering(ctx context.Context, cfg Config, w *ycsb.Workload, ord Ordering, maxSlowdown float64) (*Report, error) {
	return Profile(ctx, cfg, w, fixedPolicy{ord: ord}, maxSlowdown)
}
