package core

// Before/after benchmark of the validation sweep. The Sequential
// sub-benchmark is a frozen replica of the pre-optimization Validate:
// one point after another, every repetition on a freshly populated
// deployment driven through the per-op replay path
// (server.Config.DisableBatchReplay). The Parallel side is the shipped
// ValidateWorkers, which fans the deduplicated points over the worker
// pool and measures each through the batched kernel with post-Load
// snapshot reuse. On a single-CPU host the measured speedup is the
// kernel + reuse gain alone; with spare cores the pool fan-out
// multiplies it. Both sides produce the same validation points up to
// the replay path's bit-identity.

import (
	"context"
	"fmt"
	"testing"

	"mnemo/internal/client"
	"mnemo/internal/server"
	"mnemo/internal/ycsb"
)

// legacyValidate is the frozen pre-optimization sweep loop, preserved
// verbatim apart from the DisableBatchReplay pin that keeps it on the
// per-op path it was written against.
func legacyValidate(ctx context.Context, cfg Config, w *ycsb.Workload, c *Curve, ord Ordering, samples int) ([]ValidationPoint, error) {
	ncfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	keys := len(ord.Keys)
	var out []ValidationPoint
	var pe PlacementEngine
	for i := 1; i <= samples; i++ {
		k := i * keys / (samples + 1)
		if k <= 0 || k >= keys {
			continue
		}
		point := c.Points[k]
		placement, err := pe.PlacementFor(ord, point)
		if err != nil {
			return nil, err
		}
		runCfg := ncfg.Server
		runCfg.DisableBatchReplay = true
		runCfg.Seed += int64(i) * 104729
		measured, err := client.ExecuteMeanCtx(ctx, runCfg, w, placement, ncfg.Runs, 0, ncfg.Resilience)
		if err != nil {
			return nil, fmt.Errorf("core: validating point %d: %w", k, err)
		}
		vp := ValidationPoint{Point: point, Measured: measured}
		if measured.ThroughputOpsSec > 0 {
			vp.ThroughputErrPct = (measured.ThroughputOpsSec - point.EstThroughputOps) /
				measured.ThroughputOpsSec * 100
		}
		if measured.AvgNs > 0 {
			vp.AvgLatencyErrPct = (measured.AvgNs - point.EstAvgLatencyNs) /
				measured.AvgNs * 100
		}
		out = append(out, vp)
	}
	return out, nil
}

// BenchmarkValidateParallel measures one full validation sweep per
// iteration — 6 interior curve points, 3 repetitions each — through the
// frozen sequential/per-op sweep and the shipped parallel one.
func BenchmarkValidateParallel(b *testing.B) {
	w := ycsb.MustGenerate(ycsb.Spec{
		Name: "validate_bench", Keys: 1000, Requests: 10000,
		Dist:      ycsb.DistSpec{Kind: ycsb.Hotspot, HotSetFraction: 0.2, HotOpnFraction: 0.9},
		ReadRatio: 0.95, Sizes: ycsb.SizeFixed100KB, Seed: 42,
	})
	cfg := DefaultConfig(server.RedisLike, 42)
	cfg.Runs = 3
	rep, err := Profile(context.Background(), cfg, w, Touch, 0)
	if err != nil {
		b.Fatal(err)
	}
	const samples = 6

	b.Run("Sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := legacyValidate(context.Background(), cfg, w, rep.Curve, rep.Ordering, samples); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ValidateWorkers(context.Background(), cfg, w, rep.Curve, rep.Ordering, samples, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}
