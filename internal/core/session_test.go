package core

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"mnemo/internal/server"
)

// goldenReport replays the pre-refactor monolithic Profile pipeline by
// composing the engines directly — Sensitivity → pattern function →
// Estimate → Advise, exactly the old profileWith sequence — and returns
// it next to the staged Session pipeline's report for the same inputs.
func goldenReport(t *testing.T, cfg Config, pol TieringPolicy, seed int64) (*Report, *Report) {
	t.Helper()
	w := testWorkload(seed)
	ncfg, err := cfg.normalized()
	if err != nil {
		t.Fatal(err)
	}
	// Legacy composition (the pre-Session profileWith sequence).
	se, err := NewSensitivityEngine(ncfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := se.Baselines(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	var ord Ordering
	switch pol.Name() {
	case "touch":
		ord = TouchOrdering(w)
	case "mnemot":
		ord = MnemoTOrdering(w)
	default:
		t.Fatalf("golden test has no legacy path for %q", pol.Name())
	}
	ee, err := NewEstimateEngine(ncfg.PriceFactor)
	if err != nil {
		t.Fatal(err)
	}
	ee.SetSizeAware(ncfg.SizeAwareEstimate)
	curve, err := ee.Curve(w, b, ord)
	if err != nil {
		t.Fatal(err)
	}
	legacy := &Report{
		Workload:  w.Spec.Name,
		Engine:    ncfg.Server.Engine.String(),
		Policy:    pol.Name(),
		Baselines: b,
		Ordering:  ord,
		Curve:     curve,
		Degraded:  b.Fast.Degraded || b.Slow.Degraded,
	}
	advice, err := Advise(curve, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	legacy.Advice = &advice

	// Staged pipeline.
	staged, err := Profile(context.Background(), cfg, w, pol, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	return legacy, staged
}

// TestSessionGoldenEquivalence holds the refactored staged pipeline to
// the pre-refactor outputs for both default policies: the report structs
// must be deeply equal and the curve CSVs byte-identical.
func TestSessionGoldenEquivalence(t *testing.T) {
	for _, pol := range []TieringPolicy{Touch, MnemoT} {
		cfg := DefaultConfig(server.RedisLike, 33)
		legacy, staged := goldenReport(t, cfg, pol, 33)
		if !reflect.DeepEqual(legacy.Baselines, staged.Baselines) {
			t.Fatalf("%s: baselines differ", pol.Name())
		}
		if !reflect.DeepEqual(legacy.Curve, staged.Curve) {
			t.Fatalf("%s: curves differ", pol.Name())
		}
		if !reflect.DeepEqual(legacy, staged) {
			t.Fatalf("%s: reports differ", pol.Name())
		}
		var want, got bytes.Buffer
		if err := legacy.Curve.WriteCSV(&want); err != nil {
			t.Fatal(err)
		}
		if err := staged.Curve.WriteCSV(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Fatalf("%s: curve CSV not bit-identical", pol.Name())
		}
	}
}

// TestCompareMeasuresOnce is the artifact-reuse contract: profiling N
// policies through one session performs exactly one Fast+Slow baseline
// measurement, counted at the Sensitivity Engine.
func TestCompareMeasuresOnce(t *testing.T) {
	w := testWorkload(34)
	s, err := NewSession(DefaultConfig(server.RedisLike, 34), w)
	if err != nil {
		t.Fatal(err)
	}
	before := baselineMeasurements.Load()
	policies := []TieringPolicy{Touch, MnemoT, External([]string{w.Dataset.Records[3].Key})}
	reps, err := s.Compare(context.Background(), 0.10, policies...)
	if err != nil {
		t.Fatal(err)
	}
	if got := baselineMeasurements.Load() - before; got != 1 {
		t.Fatalf("Compare over %d policies ran %d baseline measurements, want exactly 1",
			len(policies), got)
	}
	if s.MeasureCount() != 1 {
		t.Fatalf("MeasureCount = %d, want 1", s.MeasureCount())
	}
	if len(reps) != len(policies) {
		t.Fatalf("got %d reports for %d policies", len(reps), len(policies))
	}
	for i, rep := range reps {
		if rep.Policy != policies[i].Name() {
			t.Errorf("report %d policy %q, want %q", i, rep.Policy, policies[i].Name())
		}
		if !reflect.DeepEqual(rep.Baselines, reps[0].Baselines) {
			t.Errorf("report %d does not share the session baselines", i)
		}
		if rep.Advice == nil {
			t.Errorf("report %d missing advice", i)
		}
	}
	// Every policy profiled through the session matches its one-shot
	// Profile twin — artifact reuse must not change results.
	solo, err := Profile(context.Background(), DefaultConfig(server.RedisLike, 34), w, MnemoT, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(solo.Curve, reps[1].Curve) {
		t.Error("session-profiled MnemoT curve differs from one-shot Profile")
	}
}

func TestSessionStagedArtifacts(t *testing.T) {
	w := testWorkload(35)
	s, err := NewSession(DefaultConfig(server.RedisLike, 35), w)
	if err != nil {
		t.Fatal(err)
	}
	if s.MeasureCount() != 0 {
		t.Fatal("fresh session should not have measured")
	}
	// Analyze alone does not trigger a measurement.
	ord, err := s.Analyze(context.Background(), Touch)
	if err != nil {
		t.Fatal(err)
	}
	if s.MeasureCount() != 0 {
		t.Fatal("Analyze triggered a measurement")
	}
	if len(ord.Keys) != len(w.Dataset.Records) {
		t.Fatal("analyze ordering incomplete")
	}
	// Estimate pulls in the measurement; repeating any stage reuses it.
	c1, err := s.Estimate(context.Background(), Touch)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s.Estimate(context.Background(), Touch)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("estimate not cached")
	}
	if s.MeasureCount() != 1 {
		t.Fatalf("MeasureCount = %d after two estimates", s.MeasureCount())
	}
	// Advise against the cached curve with two different SLOs: still one
	// measurement.
	tight, err := s.Advise(context.Background(), Touch, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := s.Advise(context.Background(), Touch, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Point.CostFactor < loose.Point.CostFactor {
		t.Error("tighter SLO advised cheaper sizing")
	}
	if s.MeasureCount() != 1 {
		t.Fatal("Advise re-measured")
	}
	// Place materializes against the cached ordering.
	pl, err := s.Place(context.Background(), Touch, loose.Point)
	if err != nil {
		t.Fatal(err)
	}
	if got := pl.FastKeyCount(); got != loose.Point.KeysInFast {
		t.Fatalf("placement holds %d fast keys, advice said %d", got, loose.Point.KeysInFast)
	}
}

func TestSessionAndCompareErrors(t *testing.T) {
	w := testWorkload(36)
	if _, err := NewSession(DefaultConfig(server.RedisLike, 36), nil); err == nil {
		t.Error("nil workload accepted")
	}
	bad := DefaultConfig(server.RedisLike, 36)
	bad.PriceFactor = 2
	if _, err := NewSession(bad, w); err == nil {
		t.Error("bad config accepted")
	}
	s, err := NewSession(DefaultConfig(server.RedisLike, 36), w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Compare(context.Background(), 0); err == nil {
		t.Error("empty policy list accepted")
	}
	if _, err := s.Compare(context.Background(), 0, Touch, nil); err == nil {
		t.Error("nil policy accepted")
	}
	if _, err := s.Compare(context.Background(), 0, Touch, Touch); err == nil {
		t.Error("duplicate policy names accepted")
	}
	if _, err := s.Analyze(context.Background(), nil); err == nil {
		t.Error("Analyze(nil) accepted")
	}
	if _, err := s.Estimate(context.Background(), nil); err == nil {
		t.Error("Estimate(nil) accepted")
	}
	// A policy returning an incomplete ordering is rejected.
	if _, err := s.Analyze(context.Background(), External([]string{"not-a-key"})); err == nil {
		t.Error("unknown external key accepted")
	}
}

func TestAdviseNilCurveErrors(t *testing.T) {
	if _, err := Advise(nil, 0.1); err == nil {
		t.Error("Advise(nil) accepted")
	}
	if _, err := AdviseLatency(nil, 1000); err == nil {
		t.Error("AdviseLatency(nil) accepted")
	}
	if _, err := AdviseLatency(&Curve{}, 1000); err == nil {
		t.Error("AdviseLatency(empty) accepted")
	}
}

// TestExternalOrderingEdgeCases pins the mode-2b input contract:
// duplicate tiered keys and unknown keys are rejected with descriptive
// errors, and an empty list degrades to pure dataset order.
func TestExternalOrderingEdgeCases(t *testing.T) {
	w := testWorkload(37)
	// Empty list: every key still covered, dataset order preserved.
	ord, err := ExternalOrdering(w, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ord.Keys) != len(w.Dataset.Records) {
		t.Fatalf("empty list ordering covers %d of %d keys", len(ord.Keys), len(w.Dataset.Records))
	}
	for i, k := range ord.Keys {
		if k.Key != w.Dataset.Records[i].Key {
			t.Fatalf("empty list ordering deviates from dataset order at %d", i)
		}
	}
	// Full-coverage list reverses cleanly.
	rev := make([]string, len(w.Dataset.Records))
	for i := range rev {
		rev[i] = w.Dataset.Records[len(rev)-1-i].Key
	}
	ord, err = ExternalOrdering(w, rev)
	if err != nil {
		t.Fatal(err)
	}
	if ord.Keys[0].Key != rev[0] || ord.Keys[len(rev)-1].Key != rev[len(rev)-1] {
		t.Fatal("full-coverage external list not preserved")
	}
	// Duplicates and unknowns are rejected, and the error names the key.
	if _, err := ExternalOrdering(w, []string{rev[0], rev[0]}); err == nil {
		t.Error("duplicate tiered key accepted")
	}
	if _, err := ExternalOrdering(w, []string{"ghost-key"}); err == nil {
		t.Error("key absent from the workload accepted")
	}
	// The same contract holds through the policy seam.
	if _, err := External([]string{"ghost-key"}).Order(context.Background(), w); err == nil {
		t.Error("policy seam let an unknown key through")
	}
}
