package core

// Summary is a JSON-friendly digest of a profiling report, consumed by
// cmd/mnemo's -json output and by downstream tooling that doesn't want
// the full 10 001-point curve.
type Summary struct {
	Workload string `json:"workload"`
	Engine   string `json:"engine"`
	// Mode is the legacy deployment-mode label kept for downstream
	// consumers ("standalone" | "mnemot" | "external", or the policy name
	// for policies outside the original three).
	Mode string `json:"mode"`
	// Policy is the tiering policy's registry name.
	Policy   string `json:"policy"`
	Ordering string `json:"ordering"`

	Keys         int   `json:"keys"`
	Requests     int   `json:"requests"`
	DatasetBytes int64 `json:"dataset_bytes"`

	Baselines BaselineSummary `json:"baselines"`
	Advice    *AdviceSummary  `json:"advice,omitempty"`
	Curve     []PointSummary  `json:"curve"`
}

// BaselineSummary digests the two extreme-configuration measurements.
type BaselineSummary struct {
	FastOpsPerSec   float64 `json:"fast_ops_per_sec"`
	SlowOpsPerSec   float64 `json:"slow_ops_per_sec"`
	SlowdownAllSlow float64 `json:"slowdown_all_slow"`
	FastAvgReadNs   float64 `json:"fast_avg_read_ns"`
	SlowAvgReadNs   float64 `json:"slow_avg_read_ns"`
	FastAvgWriteNs  float64 `json:"fast_avg_write_ns"`
	SlowAvgWriteNs  float64 `json:"slow_avg_write_ns"`
	FastP99Ns       float64 `json:"fast_p99_ns"`
	SlowP99Ns       float64 `json:"slow_p99_ns"`
}

// AdviceSummary digests the advised sizing.
type AdviceSummary struct {
	MaxSlowdown   float64 `json:"max_slowdown"`
	KeysInFast    int     `json:"keys_in_fast"`
	FastBytes     int64   `json:"fast_bytes"`
	CostFactor    float64 `json:"cost_factor"`
	CostSavings   float64 `json:"cost_savings"`
	EstOpsPerSec  float64 `json:"est_ops_per_sec"`
	EstAvgLatency float64 `json:"est_avg_latency_ns"`
}

// PointSummary is one sampled curve point.
type PointSummary struct {
	KeysInFast   int     `json:"keys_in_fast"`
	FastBytes    int64   `json:"fast_bytes"`
	CostFactor   float64 `json:"cost_factor"`
	EstOpsPerSec float64 `json:"est_ops_per_sec"`
}

// legacyMode maps a policy name onto the deployment-mode vocabulary the
// pre-registry JSON schema used (Fig 2's three scenarios). Policies
// beyond the original three report their own name.
func legacyMode(policy string) string {
	if policy == "touch" {
		return "standalone"
	}
	return policy
}

// Summary digests the report, sampling the curve down to at most
// curveSamples evenly spaced interior points plus both endpoints.
// curveSamples ≤ 0 omits the curve entirely.
func (r *Report) Summary(curveSamples int) Summary {
	s := Summary{
		Workload:     r.Workload,
		Engine:       r.Engine,
		Mode:         legacyMode(r.Policy),
		Policy:       r.Policy,
		Ordering:     r.Ordering.Name,
		Keys:         len(r.Ordering.Keys),
		Requests:     r.Curve.Requests,
		DatasetBytes: r.Curve.TotalBytes,
		Baselines: BaselineSummary{
			FastOpsPerSec:   r.Baselines.Fast.ThroughputOpsSec,
			SlowOpsPerSec:   r.Baselines.Slow.ThroughputOpsSec,
			SlowdownAllSlow: r.Baselines.SlowdownAllSlow(),
			FastAvgReadNs:   r.Baselines.Fast.AvgReadNs,
			SlowAvgReadNs:   r.Baselines.Slow.AvgReadNs,
			FastAvgWriteNs:  r.Baselines.Fast.AvgWriteNs,
			SlowAvgWriteNs:  r.Baselines.Slow.AvgWriteNs,
			FastP99Ns:       r.Baselines.Fast.P99Ns,
			SlowP99Ns:       r.Baselines.Slow.P99Ns,
		},
	}
	if r.Advice != nil {
		s.Advice = &AdviceSummary{
			MaxSlowdown:   r.Advice.MaxSlowdown,
			KeysInFast:    r.Advice.Point.KeysInFast,
			FastBytes:     r.Advice.Point.FastBytes,
			CostFactor:    r.Advice.Point.CostFactor,
			CostSavings:   r.Advice.CostSavings,
			EstOpsPerSec:  r.Advice.Point.EstThroughputOps,
			EstAvgLatency: r.Advice.Point.EstAvgLatencyNs,
		}
	}
	if curveSamples > 0 {
		n := len(r.Curve.Points)
		idxs := []int{0}
		for i := 1; i <= curveSamples; i++ {
			idxs = append(idxs, i*(n-1)/(curveSamples+1))
		}
		idxs = append(idxs, n-1)
		prev := -1
		for _, idx := range idxs {
			if idx == prev {
				continue
			}
			prev = idx
			p := r.Curve.Points[idx]
			s.Curve = append(s.Curve, PointSummary{
				KeysInFast:   p.KeysInFast,
				FastBytes:    p.FastBytes,
				CostFactor:   p.CostFactor,
				EstOpsPerSec: p.EstThroughputOps,
			})
		}
	}
	return s
}
