package core

import (
	"context"
	"testing"

	"mnemo/internal/obs"
	"mnemo/internal/server"
)

// countSpans tallies span start/end journal events per stage.
func countSpans(events []obs.Event) (starts, ends map[string]int) {
	starts, ends = map[string]int{}, map[string]int{}
	for _, e := range events {
		switch e.Kind {
		case obs.EventSpanStart:
			starts[e.Stage]++
		case obs.EventSpanEnd:
			ends[e.Stage]++
		}
	}
	return starts, ends
}

// TestSessionStageSpans asserts the staged pipeline traces each stage
// exactly once per actual execution, and that repeat calls hit the
// artifact caches (journaled cache_hit events, no extra spans).
func TestSessionStageSpans(t *testing.T) {
	sink := obs.NewSink()
	cfg := DefaultConfig(server.RedisLike, 7)
	cfg.Server.Obs = sink
	s, err := NewSession(cfg, testWorkload(7))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rep, err := s.Run(ctx, Touch, 0.10)
	if err != nil {
		t.Fatal(err)
	}

	starts, ends := countSpans(sink.Journal().Events())
	for _, stage := range []string{"measure", "analyze", "estimate"} {
		if starts[stage] != 1 || ends[stage] != 1 {
			t.Errorf("stage %s: %d starts, %d ends, want 1/1", stage, starts[stage], ends[stage])
		}
		runs := sink.Registry().Counter(obs.Name("mnemo_stage_runs_total", "stage", stage)).Value()
		if runs != 1 {
			t.Errorf("mnemo_stage_runs_total{stage=%q} = %d, want 1", stage, runs)
		}
	}
	if got := sink.Registry().Counter(obs.Name("mnemo_session_cache_hits_total", "artifact", "baselines")).Value(); got != 0 {
		t.Errorf("baselines cache hits after first run = %d, want 0", got)
	}

	// Re-reading stages reuses every artifact: cache hits, no new spans.
	if _, err := s.Measure(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(ctx, Touch, 0.10); err != nil {
		t.Fatal(err)
	}
	starts, ends = countSpans(sink.Journal().Events())
	for _, stage := range []string{"measure", "analyze", "estimate"} {
		if starts[stage] != 1 || ends[stage] != 1 {
			t.Errorf("after rerun, stage %s: %d starts, %d ends, want 1/1", stage, starts[stage], ends[stage])
		}
	}
	for _, artifact := range []string{"baselines", "curve"} {
		hits := sink.Registry().Counter(obs.Name("mnemo_session_cache_hits_total", "artifact", artifact)).Value()
		if hits < 1 {
			t.Errorf("cache hits for %s after rerun = %d, want ≥ 1", artifact, hits)
		}
	}
	var sawHit bool
	for _, e := range sink.Journal().Events() {
		if e.Kind == obs.EventCacheHit {
			sawHit = true
		}
	}
	if !sawHit {
		t.Error("no cache_hit events journaled on rerun")
	}

	// Place traces its own stage and journals the emitted placement.
	if _, err := s.Place(ctx, Touch, rep.Curve.Points[len(rep.Curve.Points)/2]); err != nil {
		t.Fatal(err)
	}
	starts, ends = countSpans(sink.Journal().Events())
	if starts["place"] != 1 || ends["place"] != 1 {
		t.Errorf("stage place: %d starts, %d ends, want 1/1", starts["place"], ends["place"])
	}
	var sawPlacement, sawCurve bool
	for _, e := range sink.Journal().Events() {
		switch e.Kind {
		case obs.EventPlacement:
			sawPlacement = true
		case obs.EventCurveBuilt:
			sawCurve = true
		}
	}
	if !sawPlacement {
		t.Error("no placement_emitted event journaled")
	}
	if !sawCurve {
		t.Error("no curve_built event journaled")
	}
}

// TestSessionNilSinkUntraced pins the zero-config behavior: a session
// without a sink runs the full pipeline and journals nothing anywhere.
func TestSessionNilSinkUntraced(t *testing.T) {
	cfg := DefaultConfig(server.RedisLike, 7)
	s, err := NewSession(cfg, testWorkload(7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background(), Touch, 0.10); err != nil {
		t.Fatal(err)
	}
	if s.sink().Enabled() {
		t.Fatal("nil sink reports enabled")
	}
	if got := s.sink().Journal().Events(); got != nil {
		t.Fatalf("nil sink journaled %d events", len(got))
	}
}
