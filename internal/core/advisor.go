package core

import (
	"fmt"
)

// Advice is the advisor's answer: the cheapest curve point whose
// estimated performance stays within the permissible slowdown of the
// FastMem-only ideal.
type Advice struct {
	// Point is the recommended sizing.
	Point CurvePoint
	// MaxSlowdown is the SLO used (e.g. 0.10 for the paper's 10%).
	MaxSlowdown float64
	// Satisfiable is false when even the all-FastMem configuration
	// violates the SLO (cannot happen for slowdowns ≥ 0, kept for
	// API completeness).
	Satisfiable bool
	// CostSavings is 1 − CostFactor: the fraction of the FastMem-only
	// memory cost saved.
	CostSavings float64
}

// Advise scans the curve for the minimum-cost point whose estimated
// runtime is within maxSlowdown of the FastMem-only estimate — the
// paper's Fig 9 uses maxSlowdown = 0.10. Curve points are cost-monotone
// in KeysInFast, so the scan returns the first satisfying point.
func Advise(c *Curve, maxSlowdown float64) (Advice, error) {
	if maxSlowdown < 0 {
		return Advice{}, fmt.Errorf("core: max slowdown %v must be non-negative", maxSlowdown)
	}
	if c == nil {
		return Advice{}, fmt.Errorf("core: nil curve (run the estimate stage before advising)")
	}
	if len(c.Points) == 0 {
		return Advice{}, fmt.Errorf("core: empty curve (no points to advise from)")
	}
	// Runtime budget: FastMem-only estimated runtime inflated by the SLO.
	// (Throughput ≥ (1−s)·T_fast ⇔ runtime ≤ R_fast/(1−s); for small s
	// the paper uses the two interchangeably — we use the runtime form.)
	fastRuntime := float64(c.FastOnly().EstRuntime)
	budget := fastRuntime * (1 + maxSlowdown)
	for _, p := range c.Points {
		if float64(p.EstRuntime) <= budget {
			return Advice{
				Point:       p,
				MaxSlowdown: maxSlowdown,
				Satisfiable: true,
				CostSavings: 1 - p.CostFactor,
			}, nil
		}
	}
	// The all-FastMem endpoint always satisfies slowdown ≥ 0 relative to
	// itself; reaching here means numerical noise — fall back to it.
	return Advice{
		Point:       c.FastOnly(),
		MaxSlowdown: maxSlowdown,
		Satisfiable: true,
		CostSavings: 1 - c.FastOnly().CostFactor,
	}, nil
}

// AdviseLatency finds the minimum-cost point whose *estimated average
// request latency* stays within an absolute budget — the form a
// client-facing SLA is usually written in ("serve within 150 µs on
// average"), rather than the paper's relative-slowdown form. Advice is
// unsatisfiable when even the all-FastMem configuration misses the
// budget.
func AdviseLatency(c *Curve, maxAvgLatencyNs float64) (Advice, error) {
	if maxAvgLatencyNs <= 0 {
		return Advice{}, fmt.Errorf("core: latency budget %v must be positive", maxAvgLatencyNs)
	}
	if c == nil {
		return Advice{}, fmt.Errorf("core: nil curve (run the estimate stage before advising)")
	}
	if len(c.Points) == 0 {
		return Advice{}, fmt.Errorf("core: empty curve (no points to advise from)")
	}
	for _, p := range c.Points {
		if p.EstAvgLatencyNs <= maxAvgLatencyNs {
			return Advice{
				Point:       p,
				Satisfiable: true,
				CostSavings: 1 - p.CostFactor,
			}, nil
		}
	}
	return Advice{Point: c.FastOnly(), Satisfiable: false}, nil
}
