package core

import (
	"math"
	"sync"
	"sync/atomic"

	"mnemo/internal/kvstore"
	"mnemo/internal/ycsb"
)

// ArtifactCache is the content-addressed, cross-session artifact store
// (DESIGN.md §17): Session artifacts keyed by what they depend on
// instead of by the Session that produced them. Baselines are keyed by
// (workload hash, measurement config), orderings by (workload hash,
// policy name, seed), curves by (ordering key, measurement key, price
// factor, size-awareness) — so N sessions that differ only in their
// tiering policy's parameter vector share exactly one Fast+Slow
// measurement, and sessions that differ in nothing but the placement cut
// (the SLO) re-read one cached curve.
//
// Every entry is computed at most once per key (singleflight): the first
// session to need an artifact computes it while concurrent sessions
// block on the same entry; a failed computation is evicted so a later
// call can retry rather than caching the error forever. Construct with
// NewArtifactCache and hand the same cache to each session via
// NewSharedSession. Cached artifacts are shared structures — treat them
// as immutable.
type ArtifactCache struct {
	mu      sync.Mutex
	whashes map[*ycsb.Workload]uint64

	baselines map[uint64]*flight[Baselines]
	orderings map[uint64]*flight[Ordering]
	curves    map[uint64]*flight[*Curve]

	measurements atomic.Int64
	baselineHits atomic.Int64
	orderingHits atomic.Int64
	curveHits    atomic.Int64
}

// NewArtifactCache returns an empty cache, ready to share across
// sessions and goroutines.
func NewArtifactCache() *ArtifactCache {
	return &ArtifactCache{
		whashes:   map[*ycsb.Workload]uint64{},
		baselines: map[uint64]*flight[Baselines]{},
		orderings: map[uint64]*flight[Ordering]{},
		curves:    map[uint64]*flight[*Curve]{},
	}
}

// CacheStats is an ArtifactCache usage snapshot.
type CacheStats struct {
	// Measurements is how many Fast+Slow baseline measurements were
	// actually executed through the cache — the work everything else
	// amortizes.
	Measurements int64
	// BaselineHits / OrderingHits / CurveHits count artifacts served
	// from the cache instead of recomputed.
	BaselineHits int64
	OrderingHits int64
	CurveHits    int64
}

// Stats snapshots the cache's counters.
func (c *ArtifactCache) Stats() CacheStats {
	return CacheStats{
		Measurements: c.measurements.Load(),
		BaselineHits: c.baselineHits.Load(),
		OrderingHits: c.orderingHits.Load(),
		CurveHits:    c.curveHits.Load(),
	}
}

// flight is one singleflight cache entry: done closes when val/err are
// final.
type flight[T any] struct {
	done chan struct{}
	val  T
	err  error
}

// flightDo returns the cached value for key, computing it via compute if
// absent. Concurrent callers for the same key block on the first
// caller's computation; failures are evicted. The returned bool reports
// whether this caller ran compute.
func flightDo[T any](mu *sync.Mutex, m map[uint64]*flight[T], hits *atomic.Int64, key uint64, compute func() (T, error)) (T, bool, error) {
	mu.Lock()
	if f, ok := m[key]; ok {
		mu.Unlock()
		<-f.done
		if f.err != nil {
			var zero T
			return zero, false, f.err
		}
		hits.Add(1)
		return f.val, false, nil
	}
	f := &flight[T]{done: make(chan struct{})}
	m[key] = f
	mu.Unlock()

	f.val, f.err = compute()
	if f.err != nil {
		mu.Lock()
		delete(m, key)
		mu.Unlock()
	}
	close(f.done)
	var zero T
	if f.err != nil {
		return zero, true, f.err
	}
	return f.val, true, nil
}

// WorkloadHash fingerprints a workload's full content — spec name,
// dataset (key names and sizes, in order) and request trace (key index
// and op kind, in order) — with FNV-64a. Two workloads with equal hashes
// produce bit-identical measurements under equal configs. The hash walks
// the whole trace, so the cache memoizes it per *Workload pointer; a
// streamed trace is read once end to end.
func (c *ArtifactCache) WorkloadHash(w *ycsb.Workload) (uint64, error) {
	c.mu.Lock()
	if h, ok := c.whashes[w]; ok {
		c.mu.Unlock()
		return h, nil
	}
	c.mu.Unlock()
	h, err := workloadHash(w)
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	c.whashes[w] = h
	c.mu.Unlock()
	return h, nil
}

func workloadHash(w *ycsb.Workload) (uint64, error) {
	x := newArtifactHasher()
	x.str(w.Spec.Name)
	x.u64(uint64(len(w.Dataset.Records)))
	for _, rec := range w.Dataset.Records {
		x.str(rec.Key)
		x.u64(uint64(rec.Size))
	}
	x.u64(uint64(w.RequestCount()))
	if err := w.ForEachOp(func(key int, kind kvstore.OpKind) {
		x.u64(uint64(key)<<8 | uint64(kind)&0xff)
	}); err != nil {
		return 0, err
	}
	return x.h, nil
}

// measurementKey fingerprints everything that can change a baseline
// measurement's bits: the workload plus every config field the replay
// reads. The observability sink is excluded (results are bit-identical
// with and without one); PriceFactor and SizeAwareEstimate are excluded
// here — they shape the estimate curve, not the measurement — and enter
// curveKey instead.
func measurementKey(whash uint64, cfg Config) uint64 {
	x := newArtifactHasher()
	x.u64(whash)
	x.u64(uint64(cfg.Runs))

	s := cfg.Server
	x.u64(uint64(s.Engine))
	for _, np := range []struct {
		name string
		lat  float64
		bw   float64
	}{
		{s.Machine.FastParams.Name, s.Machine.FastParams.LatencyNs, s.Machine.FastParams.BandwidthGBps},
		{s.Machine.SlowParams.Name, s.Machine.SlowParams.LatencyNs, s.Machine.SlowParams.BandwidthGBps},
		{s.Machine.LLCParams.Name, s.Machine.LLCParams.LatencyNs, s.Machine.LLCParams.BandwidthGBps},
	} {
		x.str(np.name)
		x.f64(np.lat)
		x.f64(np.bw)
	}
	x.u64(uint64(s.Machine.FastCapacity))
	x.u64(uint64(s.Machine.SlowCapacity))
	x.u64(uint64(s.Machine.LLCBytes))
	x.f64(s.NoiseSigma)
	x.u64(uint64(s.Seed))

	x.u64(uint64(s.Fault.Seed))
	x.f64(s.Fault.FailProb)
	x.f64(s.Fault.StallProb)
	x.f64(s.Fault.OutlierProb)
	x.f64(s.Fault.OutlierFactor)
	x.u64(uint64(s.Fault.Stall))
	x.u64(uint64(s.Fault.StallWindowOps))
	x.f64(s.Fault.CrashProb)
	x.f64(s.Fault.StragglerProb)
	x.f64(s.Fault.StragglerFactor)

	x.u64(uint64(s.RunTimeout))
	x.bool(s.DisableBatchReplay)
	x.u64(uint64(s.Shards))
	x.u64(uint64(s.VirtualNodes))
	x.u64(uint64(s.EpochOps))
	x.f64(s.MigrationCostPerByte)
	x.u64(uint64(s.MigrationBudget))
	if s.Adaptive != nil {
		// Adaptive sources are policies, so the qualified policy name
		// identifies one; an anonymous source conservatively gets a
		// never-shared marker (its own map identity is unknowable here).
		if named, ok := s.Adaptive.(interface{ Name() string }); ok {
			x.str("adaptive:" + named.Name())
		} else {
			x.str("adaptive:unnamed")
		}
	}

	r := cfg.Resilience
	x.u64(uint64(r.Retries))
	x.u64(uint64(r.BackoffBase))
	x.u64(uint64(r.BackoffCap))
	x.u64(uint64(r.MinRuns))
	x.f64(r.OutlierMAD)
	x.u64(uint64(r.ShardRetries))
	x.u64(uint64(r.ShardFaultBudget))
	x.f64(r.HedgeFactor)
	return x.h
}

// orderingKey fingerprints a pattern-analysis artifact: the workload,
// the policy instance's (parameter-qualified) name, and the seed the
// policy was constructed with. Reuse across sessions assumes policies
// resolve deterministically from (name, seed) — true for every
// registered policy.
func orderingKey(whash uint64, policyName string, seed int64) uint64 {
	x := newArtifactHasher()
	x.u64(whash)
	x.str(policyName)
	x.u64(uint64(seed))
	return x.h
}

// curveKey fingerprints an estimate curve: the measurement and ordering
// it was built from plus the two estimate-model knobs.
func curveKey(mkey, okey uint64, priceFactor float64, sizeAware bool) uint64 {
	x := newArtifactHasher()
	x.u64(mkey)
	x.u64(okey)
	x.f64(priceFactor)
	x.bool(sizeAware)
	return x.h
}

// sharedBaselines serves the (workload, config) baseline measurement,
// computing it at most once across every session sharing the cache.
func (c *ArtifactCache) sharedBaselines(whash uint64, cfg Config, compute func() (Baselines, error)) (Baselines, bool, error) {
	key := measurementKey(whash, cfg)
	return flightDo(&c.mu, c.baselines, &c.baselineHits, key, func() (Baselines, error) {
		b, err := compute()
		if err == nil {
			c.measurements.Add(1)
		}
		return b, err
	})
}

// sharedOrdering serves the (workload, policy, seed) ordering.
func (c *ArtifactCache) sharedOrdering(whash uint64, policyName string, seed int64, compute func() (Ordering, error)) (Ordering, bool, error) {
	return flightDo(&c.mu, c.orderings, &c.orderingHits, orderingKey(whash, policyName, seed), compute)
}

// sharedCurve serves the estimate curve derived from a measurement and
// an ordering under the estimate-model knobs.
func (c *ArtifactCache) sharedCurve(whash uint64, cfg Config, policyName string, compute func() (*Curve, error)) (*Curve, bool, error) {
	key := curveKey(measurementKey(whash, cfg), orderingKey(whash, policyName, cfg.Server.Seed),
		cfg.PriceFactor, cfg.SizeAwareEstimate)
	return flightDo(&c.mu, c.curves, &c.curveHits, key, compute)
}

// artifactHasher is FNV-64a over typed fields.
type artifactHasher struct{ h uint64 }

func newArtifactHasher() *artifactHasher {
	return &artifactHasher{h: 14695981039346656037}
}

func (x *artifactHasher) byte(b byte) {
	x.h ^= uint64(b)
	x.h *= 1099511628211
}

func (x *artifactHasher) u64(v uint64) {
	for i := 0; i < 8; i++ {
		x.byte(byte(v))
		v >>= 8
	}
}

func (x *artifactHasher) f64(v float64) { x.u64(math.Float64bits(v)) }

func (x *artifactHasher) bool(v bool) {
	if v {
		x.byte(1)
	} else {
		x.byte(0)
	}
}

func (x *artifactHasher) str(s string) {
	x.u64(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		x.byte(s[i])
	}
}
