package core

import (
	"bytes"
	"context"
	"math"
	"testing"

	"mnemo/internal/server"
	"mnemo/internal/stats"
	"mnemo/internal/ycsb"
)

// testWorkload returns a scaled-down Trending workload: the full 10k-key
// dataset makes each profiling run ~100ms, so tests use 1k keys.
func testWorkload(seed int64) *ycsb.Workload {
	return ycsb.MustGenerate(ycsb.Spec{
		Name: "trending_small", Keys: 1000, Requests: 10000,
		Dist:      ycsb.DistSpec{Kind: ycsb.Hotspot, HotSetFraction: 0.2, HotOpnFraction: 0.9},
		ReadRatio: 1.0, Sizes: ycsb.SizeThumbnail, Seed: seed,
	})
}

func mixedWorkload(seed int64) *ycsb.Workload {
	return ycsb.MustGenerate(ycsb.Spec{
		Name: "edit_small", Keys: 1000, Requests: 10000,
		Dist:      ycsb.DistSpec{Kind: ycsb.ScrambledZipfian},
		ReadRatio: 0.5, Sizes: ycsb.SizeThumbnail, Seed: seed,
	})
}

func TestSensitivityBaselines(t *testing.T) {
	w := testWorkload(1)
	se, err := NewSensitivityEngine(DefaultConfig(server.RedisLike, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := se.Baselines(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	if b.Fast.Runtime <= 0 || b.Slow.Runtime <= 0 {
		t.Fatal("baselines not measured")
	}
	if b.SlowdownAllSlow() <= 1 {
		t.Fatalf("all-slow slowdown %.3f not above 1", b.SlowdownAllSlow())
	}
	if b.Fast.AvgReadNs >= b.Slow.AvgReadNs {
		t.Fatal("fast reads not faster than slow reads")
	}
}

func TestBaselinesZeroValue(t *testing.T) {
	var b Baselines
	if b.SlowdownAllSlow() != 0 {
		t.Fatal("zero baselines should report 0 slowdown")
	}
}

func TestTouchOrderingCoversAllKeys(t *testing.T) {
	w := testWorkload(2)
	ord := TouchOrdering(w)
	if ord.Name != "touch" {
		t.Error("name wrong")
	}
	if len(ord.Keys) != 1000 {
		t.Fatalf("keys = %d", len(ord.Keys))
	}
	if ord.TotalBytes() != w.Dataset.TotalBytes {
		t.Fatal("ordering bytes != dataset bytes")
	}
	// First key of the ordering is the first op's key.
	if ord.Keys[0].Key != w.Dataset.Records[w.Ops[0].Key].Key {
		t.Fatal("touch ordering does not start at first touched key")
	}
}

func TestMnemoTOrderingIsWeightSorted(t *testing.T) {
	w := mixedWorkload(3)
	ord := MnemoTOrdering(w)
	if ord.Name != "mnemot" {
		t.Error("name wrong")
	}
	for i := 1; i < len(ord.Keys); i++ {
		if ord.Keys[i-1].Weight() < ord.Keys[i].Weight()-1e-15 {
			t.Fatalf("weights not descending at %d: %v < %v",
				i, ord.Keys[i-1].Weight(), ord.Keys[i].Weight())
		}
	}
}

func TestExternalOrdering(t *testing.T) {
	w := testWorkload(4)
	tiered := []string{w.Dataset.Records[5].Key, w.Dataset.Records[2].Key}
	ord, err := ExternalOrdering(w, tiered)
	if err != nil {
		t.Fatal(err)
	}
	if ord.Keys[0].Key != tiered[0] || ord.Keys[1].Key != tiered[1] {
		t.Fatal("external prefix not preserved")
	}
	if len(ord.Keys) != 1000 {
		t.Fatal("remaining keys not appended")
	}
	if _, err := ExternalOrdering(w, []string{"bogus"}); err == nil {
		t.Error("unknown key accepted")
	}
	if _, err := ExternalOrdering(w, []string{tiered[0], tiered[0]}); err == nil {
		t.Error("duplicate key accepted")
	}
}

func TestKeyStatWeight(t *testing.T) {
	k := KeyStat{Size: 100, Reads: 30, Writes: 20}
	if k.Accesses() != 50 {
		t.Fatal("accesses wrong")
	}
	if k.Weight() != 0.5 {
		t.Fatalf("weight = %v", k.Weight())
	}
	zero := KeyStat{Size: 0, Reads: 3}
	if zero.Weight() != 3 {
		t.Fatalf("zero-size weight = %v", zero.Weight())
	}
}

func TestEstimateCurveShape(t *testing.T) {
	w := testWorkload(5)
	rep, err := Profile(context.Background(), DefaultConfig(server.RedisLike, 5), w, Touch, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Curve
	if len(c.Points) != 1001 {
		t.Fatalf("points = %d", len(c.Points))
	}
	// Endpoints must coincide with the measured baselines.
	if math.Abs(float64(c.SlowOnly().EstRuntime)-float64(c.Baselines.Slow.Runtime)) >
		0.02*float64(c.Baselines.Slow.Runtime) {
		t.Errorf("slow endpoint %v far from measured %v",
			c.SlowOnly().EstRuntime, c.Baselines.Slow.Runtime)
	}
	if c.FastOnly().EstRuntime != c.Baselines.Fast.Runtime {
		t.Errorf("fast endpoint %v != measured %v",
			c.FastOnly().EstRuntime, c.Baselines.Fast.Runtime)
	}
	// Cost factor is monotone from p to 1.
	if math.Abs(c.SlowOnly().CostFactor-0.2) > 1e-12 || math.Abs(c.FastOnly().CostFactor-1) > 1e-12 {
		t.Fatalf("cost endpoints: %v, %v", c.SlowOnly().CostFactor, c.FastOnly().CostFactor)
	}
	for i := 1; i < len(c.Points); i++ {
		if c.Points[i].CostFactor < c.Points[i-1].CostFactor {
			t.Fatal("cost factor not monotone")
		}
		if c.Points[i].EstRuntime > c.Points[i-1].EstRuntime {
			t.Fatal("read-only estimate runtime must not increase with more FastMem")
		}
	}
	// Trending knee: at 36% cost (hot 20% of bytes in Fast) nearly all the
	// throughput gain is realized.
	knee := c.PointAtCost(0.37)
	gain := func(p CurvePoint) float64 {
		return (p.EstThroughputOps - c.SlowOnly().EstThroughputOps) /
			(c.FastOnly().EstThroughputOps - c.SlowOnly().EstThroughputOps)
	}
	// Touch order interleaves some early-touched cold keys with the hot
	// set, so the knee is slightly softer than the pure hot-ops share.
	if g := gain(knee); g < 0.7 {
		t.Errorf("at 36%% cost only %.2f of throughput gain realized; hotspot knee missing", g)
	}
	if g := gain(c.PointAtCost(0.55)); g < 0.9 {
		t.Errorf("at 55%% cost only %.2f of throughput gain realized", g)
	}
}

func TestEstimateAccuracy(t *testing.T) {
	// The headline claim (Fig 8a): the estimate tracks real executions
	// with sub-percent error.
	for _, tc := range []struct {
		name string
		w    *ycsb.Workload
	}{
		{"trending", testWorkload(6)},
		{"mixed", mixedWorkload(7)},
	} {
		cfg := DefaultConfig(server.RedisLike, 6)
		rep, err := Profile(context.Background(), cfg, tc.w, Touch, 0)
		if err != nil {
			t.Fatal(err)
		}
		points, err := Validate(context.Background(), cfg, tc.w, rep.Curve, rep.Ordering, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(points) == 0 {
			t.Fatal("no validation points")
		}
		errs := AbsErrors(points)
		med := stats.Median(errs)
		if med > 1.5 {
			t.Errorf("%s: median |throughput error| %.3f%% too high", tc.name, med)
		}
		for _, p := range points {
			if math.Abs(p.AvgLatencyErrPct) > 5 {
				t.Errorf("%s: avg latency error %.2f%% at k=%d", tc.name, p.AvgLatencyErrPct, p.Point.KeysInFast)
			}
		}
	}
}

func TestAdvisorFindsSweetSpot(t *testing.T) {
	w := testWorkload(8)
	rep, err := Profile(context.Background(), DefaultConfig(server.RedisLike, 8), w, Touch, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Advice == nil {
		t.Fatal("no advice with SLO set")
	}
	a := *rep.Advice
	if !a.Satisfiable {
		t.Fatal("10% SLO unsatisfiable")
	}
	// Trending on redis-like: hot 20% of keys suffices → cost well below 1.
	if a.Point.CostFactor > 0.6 {
		t.Errorf("advised cost %.3f; expected deep savings for trending", a.Point.CostFactor)
	}
	if a.Point.CostFactor < 0.2 {
		t.Errorf("advised cost %.3f below the p=0.2 floor", a.Point.CostFactor)
	}
	if math.Abs(a.CostSavings-(1-a.Point.CostFactor)) > 1e-12 {
		t.Error("savings inconsistent")
	}
	// SLO respected by the estimate.
	budget := float64(rep.Curve.FastOnly().EstRuntime) * 1.10
	if float64(a.Point.EstRuntime) > budget {
		t.Error("advised point violates SLO budget")
	}
}

func TestAdviseErrors(t *testing.T) {
	if _, err := Advise(&Curve{}, 0.1); err == nil {
		t.Error("empty curve accepted")
	}
	w := testWorkload(9)
	rep, err := Profile(context.Background(), DefaultConfig(server.RedisLike, 9), w, Touch, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Advise(rep.Curve, -0.1); err == nil {
		t.Error("negative slowdown accepted")
	}
}

func TestPlacementEngine(t *testing.T) {
	w := testWorkload(10)
	ord := TouchOrdering(w)
	var pe PlacementEngine
	p, err := pe.PlacementFor(ord, CurvePoint{KeysInFast: 10})
	if err != nil {
		t.Fatal(err)
	}
	if p.FastKeyCount() != 10 {
		t.Fatalf("fast keys = %d", p.FastKeyCount())
	}
	if _, err := pe.PlacementFor(ord, CurvePoint{KeysInFast: -1}); err == nil {
		t.Error("negative point accepted")
	}
	if _, err := pe.PlacementFor(ord, CurvePoint{KeysInFast: 9999}); err == nil {
		t.Error("oversized point accepted")
	}
	allFast, err := pe.PlacementFor(ord, CurvePoint{KeysInFast: len(ord.Keys)})
	if err != nil || allFast.Default().String() != "FastMem" {
		t.Error("full prefix should be AllFast")
	}
	allSlow, err := pe.PlacementFor(ord, CurvePoint{KeysInFast: 0})
	if err != nil || allSlow.Default().String() != "SlowMem" {
		t.Error("empty prefix should be AllSlow")
	}
	d, err := pe.Populate(server.DefaultConfig(server.RedisLike, 1), w, ord, CurvePoint{KeysInFast: 10})
	if err != nil {
		t.Fatal(err)
	}
	if d.Instance(0).Len() != 10 {
		t.Fatalf("populated fast instance has %d keys", d.Instance(0).Len())
	}
}

func TestCurveCSVRoundTrip(t *testing.T) {
	w := testWorkload(11)
	rep, err := Profile(context.Background(), DefaultConfig(server.RedisLike, 11), w, Touch, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.Curve.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	points, err := ReadCurveCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(rep.Curve.Points) {
		t.Fatalf("points = %d, want %d", len(points), len(rep.Curve.Points))
	}
	for i, p := range points {
		orig := rep.Curve.Points[i]
		if p.LastKey != orig.LastKey {
			t.Fatalf("row %d key %q != %q", i, p.LastKey, orig.LastKey)
		}
		if math.Abs(p.CostFactor-orig.CostFactor) > 1e-5 {
			t.Fatalf("row %d cost drift", i)
		}
	}
}

func TestReadCurveCSVErrors(t *testing.T) {
	for name, in := range map[string]string{
		"empty":      "",
		"bad header": "a,b,c\n",
		"bad tput":   "key,est_throughput_ops,cost_factor\nk,xx,0.5\n",
		"bad cost":   "key,est_throughput_ops,cost_factor\nk,5,yy\n",
		"ragged":     "key,est_throughput_ops,cost_factor\nk,5\n",
	} {
		if _, err := ReadCurveCSV(bytes.NewReader([]byte(in))); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestProfileArgErrors(t *testing.T) {
	w := testWorkload(12)
	cfg := DefaultConfig(server.RedisLike, 12)
	if _, err := Profile(context.Background(), cfg, w, nil, 0); err == nil {
		t.Error("nil policy accepted")
	}
	if _, err := Profile(context.Background(), cfg, nil, Touch, 0); err == nil {
		t.Error("nil workload accepted")
	}
	bad := cfg
	bad.PriceFactor = 2
	if _, err := Profile(context.Background(), bad, w, Touch, 0); err == nil {
		t.Error("bad price factor accepted")
	}
	bad2 := cfg
	bad2.Runs = -1
	if _, err := Profile(context.Background(), bad2, w, Touch, 0); err == nil {
		t.Error("negative runs accepted")
	}
}

func TestProfileWithExternalOrdering(t *testing.T) {
	w := testWorkload(13)
	ord, err := ExternalOrdering(w, []string{w.Dataset.Records[0].Key})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ProfileWithOrdering(context.Background(), DefaultConfig(server.RedisLike, 13), w, ord, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Policy != "external" || rep.Curve.Ordering != "external" {
		t.Error("policy/ordering labels wrong")
	}
}

func TestPolicyNames(t *testing.T) {
	if Touch.Name() != "touch" || MnemoT.Name() != "mnemot" ||
		External(nil).Name() != "external" {
		t.Error("policy names wrong")
	}
}

func TestEstimateEngineValidation(t *testing.T) {
	if _, err := NewEstimateEngine(-1); err == nil {
		t.Error("negative price accepted")
	}
	if _, err := NewEstimateEngine(1.5); err == nil {
		t.Error("price 1.5 accepted")
	}
	if _, err := NewEstimateEngine(1); err != nil {
		t.Errorf("price 1 (boundary of (0,1]) rejected: %v", err)
	}
	ee, err := NewEstimateEngine(0)
	if err != nil {
		t.Fatal(err)
	}
	w := testWorkload(14)
	ord := TouchOrdering(w)
	// Unmeasured baselines rejected.
	if _, err := ee.Curve(w, Baselines{}, ord); err == nil {
		t.Error("empty baselines accepted")
	}
	// Ordering/dataset mismatch rejected.
	short := Ordering{Name: "touch", Keys: ord.Keys[:5]}
	se, _ := NewSensitivityEngine(DefaultConfig(server.RedisLike, 14))
	b, err := se.Baselines(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ee.Curve(w, b, short); err == nil {
		t.Error("short ordering accepted")
	}
}

func TestValidateArgErrors(t *testing.T) {
	w := testWorkload(15)
	cfg := DefaultConfig(server.RedisLike, 15)
	rep, err := Profile(context.Background(), cfg, w, Touch, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Validate(context.Background(), cfg, w, rep.Curve, rep.Ordering, 0); err == nil {
		t.Error("samples=0 accepted")
	}
	shortOrd := Ordering{Keys: rep.Ordering.Keys[:5]}
	if _, err := Validate(context.Background(), cfg, w, rep.Curve, shortOrd, 3); err == nil {
		t.Error("mismatched ordering accepted")
	}
}

func TestMnemoTBeatsTouchOnMixedSizes(t *testing.T) {
	// Fig 8f: the tiered ordering reaches higher throughput at equal cost.
	// The advantage is largest where record sizes vary (small hot keys are
	// cheap to promote), so use the preview mixture on the curve's steep
	// region.
	w := ycsb.MustGenerate(ycsb.Spec{
		Name: "preview_small", Keys: 1000, Requests: 10000,
		Dist:      ycsb.DistSpec{Kind: ycsb.Hotspot, HotSetFraction: 0.2, HotOpnFraction: 0.9},
		ReadRatio: 1.0, Sizes: ycsb.SizeTrendingPreview, Seed: 16,
	})
	cfg := DefaultConfig(server.RedisLike, 16)
	touch, err := Profile(context.Background(), cfg, w, Touch, 0)
	if err != nil {
		t.Fatal(err)
	}
	tiered, err := Profile(context.Background(), cfg, w, MnemoT, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, cost := range []float64{0.3, 0.4, 0.5} {
		tp := touch.Curve.PointAtCost(cost).EstThroughputOps
		mp := tiered.Curve.PointAtCost(cost).EstThroughputOps
		if mp <= tp {
			t.Errorf("at cost %.2f: MnemoT %.0f ops/s not above touch %.0f ops/s", cost, mp, tp)
		}
	}
}
