package core

import (
	"fmt"

	"mnemo/internal/client"
	"mnemo/internal/costmodel"
	"mnemo/internal/simclock"
	"mnemo/internal/ycsb"
)

// bucketDiff builds a per-key penalty lookup from the slow and fast
// per-size-bucket baselines, falling back to the global diff when either
// side lacks the key's bucket.
func bucketDiff(slow, fast []client.BucketStat, global float64) func(KeyStat) float64 {
	return func(k KeyStat) float64 {
		b := client.SizeBucket(k.Size)
		s, okS := client.MeanFor(slow, b)
		f, okF := client.MeanFor(fast, b)
		if !okS || !okF {
			return global
		}
		return s - f
	}
}

// EstimateEngine turns measured baselines and a key ordering into the
// full cost/performance trade-off curve (paper §IV, component 3).
//
// The analytical model: with the first k keys of the ordering in FastMem,
// every read of a SlowMem-resident key costs the measured average
// SlowMem read time instead of the FastMem one (likewise writes), so
//
//	Runtime(k) = FastRuntime
//	           + slowReads(k)·(SlowReadTime − FastReadTime)
//	           + slowWrites(k)·(SlowWriteTime − FastWriteTime)
//
// Throughput(k) = Requests / Runtime(k), and the memory cost factor is
// R(p) for the FastMem byte capacity the prefix occupies. Because the
// simulator's service times are additive per request — as the paper
// observes real key-value store service times to be — this simple model
// is near-exact (Fig 8a: 0.07% median error).
type EstimateEngine struct {
	priceFactor float64
	sizeAware   bool
}

// NewEstimateEngine builds the engine for a price factor p (0 uses the
// paper's 0.2).
func NewEstimateEngine(priceFactor float64) (*EstimateEngine, error) {
	if priceFactor == 0 {
		priceFactor = costmodel.DefaultPriceFactor
	}
	if priceFactor < 0 || priceFactor > 1 {
		return nil, fmt.Errorf("core: price factor %v outside (0,1]", priceFactor)
	}
	return &EstimateEngine{priceFactor: priceFactor}, nil
}

// SetSizeAware enables the size-aware estimate extension: instead of the
// paper's single global (SlowTime − FastTime) average, each key's
// penalty uses the average measured for its power-of-two record-size
// class, falling back to the global average for unobserved classes.
//
// This is a reproduction extension beyond the published model. The
// global average is exact when the SlowMem-resident keys have the same
// size mix as the whole trace — true for the paper's single-size-class
// workloads and for touch orderings — but MnemoT orderings over mixed
// record sizes leave the *large* keys on SlowMem, where a global average
// systematically underestimates the penalty. See the size-aware ablation
// in internal/experiments.
func (e *EstimateEngine) SetSizeAware(on bool) { e.sizeAware = on }

// Curve computes the estimate curve for the workload with the given
// measured baselines and key ordering.
func (e *EstimateEngine) Curve(w *ycsb.Workload, b Baselines, ord Ordering) (*Curve, error) {
	if len(ord.Keys) != len(w.Dataset.Records) {
		return nil, fmt.Errorf("core: ordering covers %d keys, dataset has %d",
			len(ord.Keys), len(w.Dataset.Records))
	}
	if b.Fast.Runtime <= 0 || b.Slow.Runtime <= 0 {
		return nil, fmt.Errorf("core: baselines not measured (fast %v, slow %v)",
			b.Fast.Runtime, b.Slow.Runtime)
	}
	totalReads, totalWrites := 0, 0
	for _, k := range ord.Keys {
		totalReads += k.Reads
		totalWrites += k.Writes
	}
	requests := totalReads + totalWrites
	if requests != w.RequestCount() {
		return nil, fmt.Errorf("core: ordering accounts for %d requests, trace has %d",
			requests, w.RequestCount())
	}

	dRead := b.Slow.AvgReadNs - b.Fast.AvgReadNs
	dWrite := b.Slow.AvgWriteNs - b.Fast.AvgWriteNs
	readDiff := func(KeyStat) float64 { return dRead }
	writeDiff := func(KeyStat) float64 { return dWrite }
	if e.sizeAware {
		readDiff = bucketDiff(b.Slow.ReadBuckets, b.Fast.ReadBuckets, dRead)
		writeDiff = bucketDiff(b.Slow.WriteBuckets, b.Fast.WriteBuckets, dWrite)
	}

	c := &Curve{
		Workload:    w.Spec.Name,
		Engine:      b.Fast.Engine,
		Ordering:    ord.Name,
		PriceFactor: e.priceFactor,
		TotalBytes:  w.Dataset.TotalBytes,
		Requests:    requests,
		Baselines:   b,
		Points:      make([]CurvePoint, len(ord.Keys)+1),
	}

	fastNs := float64(b.Fast.Runtime.Nanoseconds())
	// slowPenaltyNs is the total extra time of the keys still resident on
	// SlowMem; keys peel off as the FastMem prefix grows.
	var slowPenaltyNs float64
	for _, k := range ord.Keys {
		slowPenaltyNs += float64(k.Reads)*readDiff(k) + float64(k.Writes)*writeDiff(k)
	}
	var fastBytes int64
	for k := 0; k <= len(ord.Keys); k++ {
		lastKey := ""
		if k > 0 {
			prev := ord.Keys[k-1]
			slowPenaltyNs -= float64(prev.Reads)*readDiff(prev) + float64(prev.Writes)*writeDiff(prev)
			fastBytes += int64(prev.Size)
			lastKey = prev.Key
		}
		estNs := fastNs + slowPenaltyNs
		if estNs < 1 {
			estNs = 1 // degenerate but keeps throughput finite
		}
		p := CurvePoint{
			KeysInFast:      k,
			LastKey:         lastKey,
			FastBytes:       fastBytes,
			CostFactor:      costmodel.CostReduction(fastBytes, c.TotalBytes, e.priceFactor),
			EstRuntime:      simclock.FromNanos(estNs),
			EstAvgLatencyNs: estNs / float64(requests),
		}
		p.EstThroughputOps = float64(requests) / p.EstRuntime.Seconds()
		c.Points[k] = p
	}
	return c, nil
}
