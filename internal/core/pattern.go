package core

import (
	"fmt"

	"mnemo/internal/knapsack"
	"mnemo/internal/ycsb"
)

// keyStats tallies the per-key access pattern of the trace.
func keyStats(w *ycsb.Workload) []KeyStat {
	reads, writes := w.AccessCounts()
	out := make([]KeyStat, len(w.Dataset.Records))
	for i, rec := range w.Dataset.Records {
		out[i] = KeyStat{Index: i, Key: rec.Key, Size: rec.Size, Reads: reads[i], Writes: writes[i]}
	}
	return out
}

// TouchOrdering is the stand-alone Mnemo Pattern Engine (Fig 2a): keys
// are prioritized for FastMem in the order the workload first touches
// them. Untouched keys follow in index order.
func TouchOrdering(w *ycsb.Workload) Ordering {
	stats := keyStats(w)
	order := w.TouchOrder()
	keys := make([]KeyStat, len(order))
	for i, idx := range order {
		keys[i] = stats[idx]
	}
	return Ordering{Name: "touch", Keys: keys}
}

// MnemoTOrdering is the MnemoT Pattern Engine (Fig 7): each key gets a
// placement weight of accesses ÷ key-value size, and keys are ordered by
// descending weight — the 0/1-knapsack density heuristic predominant
// across existing tiering solutions, computed here from just the workload
// description at key-value granularity (Table IV's zero-overhead tiering
// calculation).
func MnemoTOrdering(w *ycsb.Workload) Ordering {
	stats := keyStats(w)
	items := make([]knapsack.Item, len(stats))
	for i, k := range stats {
		items[i] = knapsack.Item{Weight: int64(k.Size), Profit: float64(k.Accesses())}
	}
	order := knapsack.DensityOrder(items)
	keys := make([]KeyStat, len(order))
	for i, idx := range order {
		keys[i] = stats[idx]
	}
	return Ordering{Name: "mnemot", Keys: keys}
}

// ExternalOrdering wraps a key ordering produced by an existing generic
// tiering solution (deployment mode of Fig 2b): Mnemo then estimates the
// cost curve for incremental DRAM sizing "following the tiered key
// ordering". Keys absent from the external list are appended in dataset
// order; unknown keys are rejected.
func ExternalOrdering(w *ycsb.Workload, tieredKeys []string) (Ordering, error) {
	stats := keyStats(w)
	byKey := make(map[string]int, len(stats))
	for i, k := range stats {
		byKey[k.Key] = i
	}
	seen := make([]bool, len(stats))
	keys := make([]KeyStat, 0, len(stats))
	for _, k := range tieredKeys {
		idx, ok := byKey[k]
		if !ok {
			return Ordering{}, fmt.Errorf("core: external ordering references unknown key %q", k)
		}
		if seen[idx] {
			return Ordering{}, fmt.Errorf("core: external ordering repeats key %q", k)
		}
		seen[idx] = true
		keys = append(keys, stats[idx])
	}
	for i := range stats {
		if !seen[i] {
			keys = append(keys, stats[i])
		}
	}
	return Ordering{Name: "external", Keys: keys}, nil
}
