package core

import (
	"context"
	"errors"
	"testing"

	"mnemo/internal/client"
	"mnemo/internal/server"
	"mnemo/internal/ycsb"
)

func resilienceWorkload() *ycsb.Workload {
	return ycsb.MustGenerate(ycsb.Spec{
		Name: "core-resilience", Keys: 64, Requests: 1000,
		Dist:      ycsb.DistSpec{Kind: ycsb.Uniform},
		ReadRatio: 0.9, Sizes: ycsb.SizeFixed1KB, Seed: 19,
	})
}

func TestProfileCancelled(t *testing.T) {
	w := resilienceWorkload()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Profile(ctx, DefaultConfig(server.RedisLike, 61), w, Touch, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestProfileDegradedReport(t *testing.T) {
	w := resilienceWorkload()
	cfg := DefaultConfig(server.RedisLike, 62)
	cfg.Runs = 6
	cfg.Server.Fault = server.FaultSpec{Seed: 7, FailProb: 0.4}
	cfg.Resilience = client.Policy{MinRuns: 1}
	rep, err := Profile(context.Background(), cfg, w, Touch, 0)
	if err != nil {
		t.Fatal(err)
	}
	fast, slow := rep.Baselines.Fast, rep.Baselines.Slow
	if fast.RunsRequested != 6 || slow.RunsRequested != 6 {
		t.Fatalf("run counts not recorded: fast %+v slow %+v", fast, slow)
	}
	if !rep.Degraded && fast.RunsUsed == 6 && slow.RunsUsed == 6 {
		t.Skip("chosen seeds produced no failures; degraded path untested")
	}
	if rep.Degraded != (fast.Degraded || slow.Degraded) {
		t.Fatalf("report degraded flag %v inconsistent with baselines (%v, %v)",
			rep.Degraded, fast.Degraded, slow.Degraded)
	}
}

func TestProfileStrictModeSurfacesFault(t *testing.T) {
	w := resilienceWorkload()
	cfg := DefaultConfig(server.RedisLike, 63)
	cfg.Server.Fault = server.FaultSpec{Seed: 7, FailProb: 1}
	_, err := Profile(context.Background(), cfg, w, Touch, 0)
	var ferr *server.FaultError
	if !errors.As(err, &ferr) {
		t.Fatalf("err = %v, want wrapped *server.FaultError", err)
	}
}

func TestConfigRejectsBadResilience(t *testing.T) {
	w := resilienceWorkload()
	bad := DefaultConfig(server.RedisLike, 64)
	bad.Resilience = client.Policy{Retries: -1}
	if _, err := Profile(context.Background(), bad, w, Touch, 0); err == nil {
		t.Error("negative retries accepted")
	}
	bad2 := DefaultConfig(server.RedisLike, 64)
	bad2.Server.Fault = server.FaultSpec{FailProb: 2}
	if _, err := Profile(context.Background(), bad2, w, Touch, 0); err == nil {
		t.Error("invalid fault spec accepted")
	}
	bad3 := DefaultConfig(server.RedisLike, 64)
	bad3.Server.RunTimeout = -1
	if _, err := Profile(context.Background(), bad3, w, Touch, 0); err == nil {
		t.Error("negative run timeout accepted")
	}
	// PriceFactor 1 is now legal: R(1) = 1 everywhere, a valid (if
	// pointless) price ratio.
	ok := DefaultConfig(server.RedisLike, 64)
	ok.PriceFactor = 1
	if _, err := Profile(context.Background(), ok, w, Touch, 0); err != nil {
		t.Errorf("price factor 1 rejected: %v", err)
	}
}

func TestBaselinesDegradedRunCountsDeterministic(t *testing.T) {
	w := resilienceWorkload()
	cfg := DefaultConfig(server.DynamoLike, 65)
	cfg.Runs = 5
	cfg.Server.Fault = server.FaultSpec{Seed: 3, FailProb: 0.3}
	cfg.Resilience = client.Policy{Retries: 1, MinRuns: 1}
	n, err := NewSensitivityEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := n.Baselines(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Baselines(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fast.RunsUsed != b.Fast.RunsUsed || a.Slow.RunsUsed != b.Slow.RunsUsed ||
		a.Fast.Runtime != b.Fast.Runtime || a.Slow.Runtime != b.Slow.Runtime {
		t.Fatalf("degraded baselines not deterministic:\n%+v\nvs\n%+v", a, b)
	}
}
