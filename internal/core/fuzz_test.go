package core

import (
	"strings"
	"testing"
)

// FuzzReadCurveCSV hammers the curve parser: arbitrary input must yield
// an error or a well-formed point list, never a panic.
func FuzzReadCurveCSV(f *testing.F) {
	f.Add("key,est_throughput_ops,cost_factor\n,5826.00,0.200000\nuser1,7326.14,0.360000\n")
	f.Add("key,est_throughput_ops,cost_factor\n")
	f.Add("")
	f.Add("a,b,c\n")
	f.Add("key,est_throughput_ops,cost_factor\nk,notanumber,0.5\n")
	f.Add("key,est_throughput_ops,cost_factor\nk,1,huge\n")
	f.Fuzz(func(t *testing.T, in string) {
		points, err := ReadCurveCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		for i, p := range points {
			if p.KeysInFast != i {
				t.Fatalf("point %d carries index %d", i, p.KeysInFast)
			}
		}
	})
}
