package core

import (
	"context"
	"fmt"
	"sync"

	"mnemo/internal/obs"
	"mnemo/internal/server"
	"mnemo/internal/ycsb"
)

// Session is the staged profiling pipeline: Measure → Analyze →
// Estimate → Place. Each stage's artifact (the measured Baselines, a
// policy's Ordering, its Curve) is cached inside the session, so later
// stages — and later policies — reuse earlier work instead of re-running
// it. In particular Compare profiles any number of tiering policies
// against a single Fast+Slow baseline measurement, and Advise re-reads a
// cached curve without touching the testbed at all.
//
// A session is bound to one workload and one engine configuration; the
// zero value is not usable, construct with NewSession. Methods are safe
// for concurrent use.
type Session struct {
	cfg Config // normalized
	w   *ycsb.Workload

	// shared, when non-nil, is the cross-session content-addressed
	// artifact store (NewSharedSession): artifacts missing from this
	// session's own cache are served from — and computed into — the
	// shared cache under (workload hash, config)-derived keys, so
	// sessions differing only in policy parameters share one baseline
	// measurement. whash memoizes the workload fingerprint (guarded by
	// mu; valid when whashed).
	shared  *ArtifactCache
	whash   uint64
	whashed bool

	mu        sync.Mutex
	baselines *Baselines
	measures  int // completed Measure executions (see MeasureCount)
	orderings map[string]Ordering
	curves    map[string]*Curve
}

// NewSession validates the config and binds the staged pipeline to the
// workload. No measurement happens until Measure (or a stage that needs
// it) is called.
func NewSession(cfg Config, w *ycsb.Workload) (*Session, error) {
	ncfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	if w == nil {
		return nil, fmt.Errorf("core: nil workload")
	}
	return &Session{
		cfg:       ncfg,
		w:         w,
		orderings: map[string]Ordering{},
		curves:    map[string]*Curve{},
	}, nil
}

// NewSharedSession is NewSession backed by a cross-session artifact
// cache: the session's Measure/Analyze/Estimate artifacts are keyed by
// content (workload hash, measurement config, policy name) in the cache,
// so any number of sessions over the same workload — one per candidate
// config, say — execute exactly one Fast+Slow baseline measurement
// between them. A nil cache degrades to a plain session.
func NewSharedSession(cfg Config, w *ycsb.Workload, cache *ArtifactCache) (*Session, error) {
	s, err := NewSession(cfg, w)
	if err != nil {
		return nil, err
	}
	s.shared = cache
	return s, nil
}

// workloadHashLocked resolves the session's workload fingerprint through
// the shared cache (which memoizes it per workload pointer).
func (s *Session) workloadHashLocked() (uint64, error) {
	if s.whashed {
		return s.whash, nil
	}
	h, err := s.shared.WorkloadHash(s.w)
	if err != nil {
		return 0, fmt.Errorf("core: hashing workload: %w", err)
	}
	s.whash, s.whashed = h, true
	return h, nil
}

// sink returns the session's observability sink (nil when the config
// carries none; every use below is nil-safe).
func (s *Session) sink() *obs.Sink { return s.cfg.Server.Obs }

// cacheHit records an artifact served from the session cache instead of
// re-running its stage.
func (s *Session) cacheHit(artifact, detail string) {
	sink := s.sink()
	if !sink.Enabled() {
		return
	}
	sink.Counter(obs.Name("mnemo_session_cache_hits_total", "artifact", artifact)).Inc()
	sink.Eventf(obs.EventCacheHit, "session", 0, "%s served from cache (%s)", artifact, detail)
}

// Workload returns the session's workload descriptor.
func (s *Session) Workload() *ycsb.Workload { return s.w }

// Config returns the session's normalized profiling config.
func (s *Session) Config() Config { return s.cfg }

// Measure is stage 1 (Sensitivity Engine): execute the workload in the
// all-FastMem and all-SlowMem extremes. The measurement runs once per
// session; every later call — and every policy profiled through this
// session — returns the cached artifact.
func (s *Session) Measure(ctx context.Context) (Baselines, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.measureLocked(ctx)
}

func (s *Session) measureLocked(ctx context.Context) (Baselines, error) {
	if s.baselines != nil {
		s.cacheHit("baselines", "Fast+Slow baselines")
		return *s.baselines, nil
	}
	if s.shared != nil {
		whash, err := s.workloadHashLocked()
		if err != nil {
			return Baselines{}, err
		}
		b, computed, err := s.shared.sharedBaselines(whash, s.cfg, func() (Baselines, error) {
			return s.runMeasurement(ctx)
		})
		if err != nil {
			return Baselines{}, err
		}
		if !computed {
			s.cacheHit("baselines", "shared artifact cache")
		} else {
			s.measures++
		}
		s.baselines = &b
		return b, nil
	}
	b, err := s.runMeasurement(ctx)
	if err != nil {
		return Baselines{}, err
	}
	s.baselines = &b
	s.measures++
	return b, nil
}

// runMeasurement executes the Sensitivity Engine's Fast+Slow baseline
// sweep — the expensive stage everything above caches.
func (s *Session) runMeasurement(ctx context.Context) (Baselines, error) {
	span := s.sink().StartSpan("measure")
	se, err := NewSensitivityEngine(s.cfg)
	if err != nil {
		return Baselines{}, err
	}
	b, err := se.Baselines(ctx, s.w)
	if err != nil {
		return Baselines{}, err
	}
	span.End(b.Fast.Runtime + b.Slow.Runtime)
	return b, nil
}

// MeasureCount reports how many baseline measurements this session has
// actually executed — 1 after any number of policies have been profiled,
// 0 if nothing forced a measurement yet.
func (s *Session) MeasureCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.measures
}

// Analyze is stage 2 (Pattern Engine): run the policy's orderer over the
// workload. The ordering is cached under the policy's name, so repeated
// Analyze/Estimate calls for the same policy re-use it.
func (s *Session) Analyze(ctx context.Context, p TieringPolicy) (Ordering, error) {
	if p == nil {
		return Ordering{}, fmt.Errorf("core: nil tiering policy")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.analyzeLocked(ctx, p)
}

func (s *Session) analyzeLocked(ctx context.Context, p TieringPolicy) (Ordering, error) {
	if ord, ok := s.orderings[p.Name()]; ok {
		s.cacheHit("ordering", "policy "+p.Name())
		return ord, nil
	}
	if s.shared != nil {
		whash, err := s.workloadHashLocked()
		if err != nil {
			return Ordering{}, err
		}
		ord, computed, err := s.shared.sharedOrdering(whash, p.Name(), s.cfg.Server.Seed, func() (Ordering, error) {
			return s.runAnalyze(ctx, p)
		})
		if err != nil {
			return Ordering{}, err
		}
		if !computed {
			s.cacheHit("ordering", "shared artifact cache, policy "+p.Name())
		}
		s.orderings[p.Name()] = ord
		return ord, nil
	}
	ord, err := s.runAnalyze(ctx, p)
	if err != nil {
		return Ordering{}, err
	}
	s.orderings[p.Name()] = ord
	return ord, nil
}

// runAnalyze executes the policy's Pattern Engine and validates the
// resulting ordering covers the dataset.
func (s *Session) runAnalyze(ctx context.Context, p TieringPolicy) (Ordering, error) {
	span := s.sink().StartSpan("analyze")
	ord, err := p.Order(ctx, s.w)
	if err != nil {
		return Ordering{}, fmt.Errorf("core: policy %q: %w", p.Name(), err)
	}
	if len(ord.Keys) != len(s.w.Dataset.Records) {
		return Ordering{}, fmt.Errorf("core: policy %q ordered %d of %d keys",
			p.Name(), len(ord.Keys), len(s.w.Dataset.Records))
	}
	span.End(0)
	return ord, nil
}

// Estimate is stage 3 (Estimate Engine): combine the cached baselines
// with the policy's ordering into the cost/performance curve, measuring
// and analyzing first if those artifacts are missing. The curve is
// cached under the policy's name.
func (s *Session) Estimate(ctx context.Context, p TieringPolicy) (*Curve, error) {
	if p == nil {
		return nil, fmt.Errorf("core: nil tiering policy")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.estimateLocked(ctx, p)
}

func (s *Session) estimateLocked(ctx context.Context, p TieringPolicy) (*Curve, error) {
	if c, ok := s.curves[p.Name()]; ok {
		s.cacheHit("curve", "policy "+p.Name())
		return c, nil
	}
	// Run (and Report assembly generally) reads the baselines and
	// ordering artifacts directly, so resolve them even when the curve
	// itself will be a shared-cache hit — through the shared cache these
	// are hits too, never new measurements.
	b, err := s.measureLocked(ctx)
	if err != nil {
		return nil, err
	}
	ord, err := s.analyzeLocked(ctx, p)
	if err != nil {
		return nil, err
	}
	build := func() (*Curve, error) {
		// The estimate span covers only the curve construction itself;
		// the measure and analyze stages it may trigger record their own
		// spans.
		span := s.sink().StartSpan("estimate")
		ee, err := NewEstimateEngine(s.cfg.PriceFactor)
		if err != nil {
			return nil, err
		}
		ee.SetSizeAware(s.cfg.SizeAwareEstimate)
		c, err := ee.Curve(s.w, b, ord)
		if err != nil {
			return nil, err
		}
		span.End(0)
		s.sink().Eventf(obs.EventCurveBuilt, "estimate", 0, "policy %s: %d curve points", p.Name(), len(c.Points))
		return c, nil
	}
	var c *Curve
	if s.shared != nil {
		whash, herr := s.workloadHashLocked()
		if herr != nil {
			return nil, herr
		}
		var computed bool
		c, computed, err = s.shared.sharedCurve(whash, s.cfg, p.Name(), build)
		if err == nil && !computed {
			s.cacheHit("curve", "shared artifact cache, policy "+p.Name())
		}
	} else {
		c, err = build()
	}
	if err != nil {
		return nil, err
	}
	s.curves[p.Name()] = c
	return c, nil
}

// Advise is stage 4 (Placement Engine, advisory half): pick the cheapest
// SLO-satisfying point off the policy's cached curve. Re-running with a
// different SLO reuses every cached artifact — no new measurement.
func (s *Session) Advise(ctx context.Context, p TieringPolicy, maxSlowdown float64) (Advice, error) {
	c, err := s.Estimate(ctx, p)
	if err != nil {
		return Advice{}, err
	}
	return Advise(c, maxSlowdown)
}

// Place is stage 4 (Placement Engine, materializing half): turn a chosen
// curve point into the static Fast/Slow placement for the policy's
// ordering.
func (s *Session) Place(ctx context.Context, p TieringPolicy, point CurvePoint) (server.Placement, error) {
	ord, err := s.Analyze(ctx, p)
	if err != nil {
		return server.Placement{}, err
	}
	span := s.sink().StartSpan("place")
	var pe PlacementEngine
	pl, err := pe.PlacementFor(ord, point)
	if err != nil {
		return server.Placement{}, err
	}
	span.End(0)
	s.sink().Eventf(obs.EventPlacement, "place", 0,
		"policy %s: placement at %d fast keys", p.Name(), point.KeysInFast)
	return pl, nil
}

// Run assembles the full report for one policy: cached baselines, the
// policy's ordering and curve, and — when maxSlowdown > 0 — the advised
// sizing. Equivalent to the one-shot Profile, but reusing the session's
// artifacts.
func (s *Session) Run(ctx context.Context, p TieringPolicy, maxSlowdown float64) (*Report, error) {
	if p == nil {
		return nil, fmt.Errorf("core: nil tiering policy")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Estimate drives the earlier stages as needed; read their cached
	// artifacts directly afterwards so the intra-call reuse does not
	// count as a session cache hit.
	curve, err := s.estimateLocked(ctx, p)
	if err != nil {
		return nil, err
	}
	b, ord := *s.baselines, s.orderings[p.Name()]
	rep := &Report{
		Workload:  s.w.Spec.Name,
		Engine:    s.cfg.Server.Engine.String(),
		Policy:    p.Name(),
		Baselines: b,
		Ordering:  ord,
		Curve:     curve,
		Degraded:  b.Fast.Degraded || b.Slow.Degraded,
	}
	for _, r := range b.Fast.DegradedReasons {
		rep.DegradedReasons = append(rep.DegradedReasons, "FastMem: "+r)
	}
	for _, r := range b.Slow.DegradedReasons {
		rep.DegradedReasons = append(rep.DegradedReasons, "SlowMem: "+r)
	}
	if maxSlowdown > 0 {
		advice, err := Advise(curve, maxSlowdown)
		if err != nil {
			return nil, err
		}
		rep.Advice = &advice
	}
	return rep, nil
}

// Compare profiles every policy against the session's single baseline
// measurement and returns one report per policy, input order preserved.
// Policies must have distinct names — the caches are name-keyed, and a
// silent collision would hand one policy another's curve.
func (s *Session) Compare(ctx context.Context, maxSlowdown float64, policies ...TieringPolicy) ([]*Report, error) {
	if len(policies) == 0 {
		return nil, fmt.Errorf("core: Compare needs at least one policy")
	}
	seen := make(map[string]bool, len(policies))
	for _, p := range policies {
		if p == nil {
			return nil, fmt.Errorf("core: nil tiering policy")
		}
		if seen[p.Name()] {
			return nil, fmt.Errorf("core: policy %q listed twice", p.Name())
		}
		seen[p.Name()] = true
	}
	out := make([]*Report, len(policies))
	for i, p := range policies {
		rep, err := s.Run(ctx, p, maxSlowdown)
		if err != nil {
			return nil, err
		}
		out[i] = rep
	}
	return out, nil
}
