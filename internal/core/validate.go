package core

import (
	"context"
	"fmt"
	"math"

	"mnemo/internal/client"
	"mnemo/internal/pool"
	"mnemo/internal/ycsb"
)

// ValidationPoint pairs an estimated curve point with a real measured
// execution at the same tiering.
type ValidationPoint struct {
	Point    CurvePoint
	Measured client.RunStats
	// ThroughputErrPct is the paper's error metric (r−e)/r·100% between
	// the real throughput r and the estimate e.
	ThroughputErrPct float64
	// AvgLatencyErrPct is the same metric on average request latency
	// (Fig 8c).
	AvgLatencyErrPct float64
}

// Validate executes the workload at `samples` evenly spaced tierings of
// the curve (excluding the endpoints, which were measured as baselines)
// and reports the estimate errors — the raw material of Fig 8a/8c.
// Points execute in parallel across GOMAXPROCS workers; see
// ValidateWorkers for the determinism contract.
func Validate(ctx context.Context, cfg Config, w *ycsb.Workload, c *Curve, ord Ordering, samples int) ([]ValidationPoint, error) {
	return ValidateWorkers(ctx, cfg, w, c, ord, samples, 0)
}

// validateJob is one deduplicated sample point of a validation sweep:
// the curve index k to measure and the sample index i whose seed stride
// the measurement inherits.
type validateJob struct {
	i, k int
}

// validateJobs enumerates the sweep's sample points, skipping the
// endpoints and collapsing duplicates: the integer sample spacing
// k = i·keys/(samples+1) repeats curve indices whenever samples+1
// exceeds keys, and re-measuring the same tiering would double-weight
// it in the Fig 8a error distribution. Each surviving point keeps the
// smallest sample index that produced it, so its derived seed — and
// therefore every measured number — is unchanged from the sequential
// sweep that simply skipped nothing.
func validateJobs(samples, keys int) []validateJob {
	var jobs []validateJob
	lastK := -1
	for i := 1; i <= samples; i++ {
		k := i * keys / (samples + 1)
		if k <= 0 || k >= keys || k == lastK {
			continue
		}
		lastK = k
		jobs = append(jobs, validateJob{i: i, k: k})
	}
	return jobs
}

// ValidateWorkers is Validate with an explicit worker bound (≤ 0 =
// GOMAXPROCS). Every sample point is an independent measurement — its
// own placement, deployments and noise streams, seeded only by the
// point's sample index — so points fan out over a bounded pool and fold
// in sample order, keeping the output bit-identical for every worker
// count; workers=1 is the serial reference execution of the same code
// path.
func ValidateWorkers(ctx context.Context, cfg Config, w *ycsb.Workload, c *Curve, ord Ordering, samples, workers int) ([]ValidationPoint, error) {
	ncfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	if samples <= 0 {
		return nil, fmt.Errorf("core: samples %d must be positive", samples)
	}
	keys := len(ord.Keys)
	if keys+1 != len(c.Points) {
		return nil, fmt.Errorf("core: curve/ordering mismatch (%d points, %d keys)", len(c.Points), keys)
	}
	jobs := validateJobs(samples, keys)
	var pe PlacementEngine
	out := make([]ValidationPoint, len(jobs))
	errs := make([]error, len(jobs))
	// One worker budget for the whole sweep: the nested repetition and
	// per-shard fan-outs below share it instead of multiplying into
	// points × runs × shards goroutines.
	ctx = pool.EnsureBudget(ctx)
	if perr := pool.RunObs(ctx, len(jobs), workers, ncfg.Server.Obs, func(j int) {
		job := jobs[j]
		point := c.Points[job.k]
		placement, err := pe.PlacementFor(ord, point)
		if err != nil {
			errs[j] = err
			return
		}
		// Each validation run is an independent execution with its own
		// noise stream, like a fresh run on the testbed. The sweep
		// validates the *static* estimate curve, so adaptive knobs are
		// stripped: measuring a migrated placement against a static
		// estimate would conflate model error with policy effect.
		runCfg := ncfg.Server
		runCfg.Adaptive, runCfg.EpochOps = nil, 0
		runCfg.Seed += int64(job.i) * 104729
		measured, err := client.ExecuteMeanCtx(ctx, runCfg, w, placement, ncfg.Runs, 0, ncfg.Resilience)
		if err != nil {
			errs[j] = fmt.Errorf("core: validating point %d: %w", job.k, err)
			return
		}
		vp := ValidationPoint{Point: point, Measured: measured}
		if measured.ThroughputOpsSec > 0 {
			vp.ThroughputErrPct = (measured.ThroughputOpsSec - point.EstThroughputOps) /
				measured.ThroughputOpsSec * 100
		}
		if measured.AvgNs > 0 {
			vp.AvgLatencyErrPct = (measured.AvgNs - point.EstAvgLatencyNs) /
				measured.AvgNs * 100
		}
		out[j] = vp
	}); perr != nil {
		return nil, perr
	}
	// First error in sample order wins, matching the sequential sweep's
	// abort-at-first-failure behavior.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// AbsErrors extracts |throughput error| percentages from validation
// points, the quantity boxplotted in Fig 8a.
func AbsErrors(points []ValidationPoint) []float64 {
	out := make([]float64, len(points))
	for i, p := range points {
		out[i] = math.Abs(p.ThroughputErrPct)
	}
	return out
}
