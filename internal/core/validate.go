package core

import (
	"context"
	"fmt"
	"math"

	"mnemo/internal/client"
	"mnemo/internal/ycsb"
)

// ValidationPoint pairs an estimated curve point with a real measured
// execution at the same tiering.
type ValidationPoint struct {
	Point    CurvePoint
	Measured client.RunStats
	// ThroughputErrPct is the paper's error metric (r−e)/r·100% between
	// the real throughput r and the estimate e.
	ThroughputErrPct float64
	// AvgLatencyErrPct is the same metric on average request latency
	// (Fig 8c).
	AvgLatencyErrPct float64
}

// Validate executes the workload at `samples` evenly spaced tierings of
// the curve (excluding the endpoints, which were measured as baselines)
// and reports the estimate errors — the raw material of Fig 8a/8c.
func Validate(ctx context.Context, cfg Config, w *ycsb.Workload, c *Curve, ord Ordering, samples int) ([]ValidationPoint, error) {
	ncfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	if samples <= 0 {
		return nil, fmt.Errorf("core: samples %d must be positive", samples)
	}
	keys := len(ord.Keys)
	if keys+1 != len(c.Points) {
		return nil, fmt.Errorf("core: curve/ordering mismatch (%d points, %d keys)", len(c.Points), keys)
	}
	var out []ValidationPoint
	var pe PlacementEngine
	for i := 1; i <= samples; i++ {
		k := i * keys / (samples + 1)
		if k <= 0 || k >= keys {
			continue
		}
		point := c.Points[k]
		placement, err := pe.PlacementFor(ord, point)
		if err != nil {
			return nil, err
		}
		// Each validation run is an independent execution with its own
		// noise stream, like a fresh run on the testbed.
		runCfg := ncfg.Server
		runCfg.Seed += int64(i) * 104729
		measured, err := client.ExecuteMeanCtx(ctx, runCfg, w, placement, ncfg.Runs, 0, ncfg.Resilience)
		if err != nil {
			return nil, fmt.Errorf("core: validating point %d: %w", k, err)
		}
		vp := ValidationPoint{Point: point, Measured: measured}
		if measured.ThroughputOpsSec > 0 {
			vp.ThroughputErrPct = (measured.ThroughputOpsSec - point.EstThroughputOps) /
				measured.ThroughputOpsSec * 100
		}
		if measured.AvgNs > 0 {
			vp.AvgLatencyErrPct = (measured.AvgNs - point.EstAvgLatencyNs) /
				measured.AvgNs * 100
		}
		out = append(out, vp)
	}
	return out, nil
}

// AbsErrors extracts |throughput error| percentages from validation
// points, the quantity boxplotted in Fig 8a.
func AbsErrors(points []ValidationPoint) []float64 {
	out := make([]float64, len(points))
	for i, p := range points {
		out[i] = math.Abs(p.ThroughputErrPct)
	}
	return out
}
