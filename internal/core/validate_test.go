package core

import (
	"context"
	"reflect"
	"testing"

	"mnemo/internal/server"
)

// TestValidateJobsDedupe pins the duplicate-sample fix: the integer
// spacing k = i·keys/(samples+1) repeats curve indices when samples
// crowd the key space, and each tiering must be measured exactly once,
// under the seed of the first sample index that produced it.
func TestValidateJobsDedupe(t *testing.T) {
	jobs := validateJobs(10, 6) // k = 0,1,1,2,2,3,3,4,5,5 for i=1..10
	seen := map[int]bool{}
	lastK := 0
	for _, j := range jobs {
		if j.k <= 0 || j.k >= 6 {
			t.Fatalf("job %+v outside (0,6)", j)
		}
		if seen[j.k] {
			t.Fatalf("curve index %d sampled twice", j.k)
		}
		seen[j.k] = true
		if j.k <= lastK {
			t.Fatalf("jobs out of order: %+v", jobs)
		}
		lastK = j.k
		if got := j.i * 6 / 11; got != j.k {
			t.Fatalf("job %+v: seed index %d does not map to k", j, j.i)
		}
	}
	if len(jobs) != 5 {
		t.Fatalf("got %d jobs, want the 5 distinct interior tierings", len(jobs))
	}
	// Duplicates keep the FIRST sample index: k=1 must come from i=2
	// (i=1 gives k=0, skipped), k=2 from i=4.
	if jobs[0].i != 2 || jobs[1].i != 4 {
		t.Fatalf("dedupe kept wrong sample indices: %+v", jobs)
	}
}

// TestValidateWorkersBitIdentical pins the parallel sweep against its
// serial reference: identical points for every worker count.
func TestValidateWorkersBitIdentical(t *testing.T) {
	w := testWorkload(21)
	cfg := DefaultConfig(server.RedisLike, 21)
	rep, err := Profile(context.Background(), cfg, w, Touch, 0)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := ValidateWorkers(context.Background(), cfg, w, rep.Curve, rep.Ordering, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) == 0 {
		t.Fatal("no validation points")
	}
	for _, workers := range []int{3, 0} {
		par, err := ValidateWorkers(context.Background(), cfg, w, rep.Curve, rep.Ordering, 4, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("workers=%d diverged from serial sweep", workers)
		}
	}
}
