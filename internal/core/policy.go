package core

import (
	"context"
	"fmt"

	"mnemo/internal/ycsb"
)

// TieringPolicy is a pluggable Pattern Engine: anything that can rank a
// workload's key space by FastMem priority. The three deployment
// scenarios of Fig 2 (stand-alone touch order, an external tiering
// solution's ordering, MnemoT's weighted tiering) are all policies, as
// are the related-work orderers (sampled-page profiling, exact knapsack,
// frequency heuristics) registered in internal/registry.
//
// Contract: Order must return an Ordering that covers every dataset key
// exactly once, must be deterministic for a given workload (any
// randomness seeded from the workload descriptor), and must not mutate
// the workload. Name identifies the policy in reports, caches and the
// registry, so registered policies need unique names.
type TieringPolicy interface {
	// Name is the policy's registry identifier (e.g. "touch", "mnemot").
	Name() string
	// Order ranks the workload's keys by FastMem priority. The context
	// bounds any measurement or replay the policy performs; pure
	// computations may ignore it.
	Order(ctx context.Context, w *ycsb.Workload) (Ordering, error)
}

// Touch is the stand-alone Mnemo Pattern Engine (Fig 2a) as a policy:
// keys in the order the workload first touches them.
var Touch TieringPolicy = touchPolicy{}

type touchPolicy struct{}

func (touchPolicy) Name() string { return "touch" }

func (touchPolicy) Order(_ context.Context, w *ycsb.Workload) (Ordering, error) {
	return TouchOrdering(w), nil
}

// MnemoT is the MnemoT Pattern Engine (Fig 2c / Fig 7) as a policy: keys
// by descending accesses-per-byte weight.
var MnemoT TieringPolicy = mnemotPolicy{}

type mnemotPolicy struct{}

func (mnemotPolicy) Name() string { return "mnemot" }

func (mnemotPolicy) Order(_ context.Context, w *ycsb.Workload) (Ordering, error) {
	return MnemoTOrdering(w), nil
}

// External wraps an existing tiering solution's DRAM key allocation
// (deployment mode 2b, Fig 2b) as a policy. The listed keys form the
// FastMem-priority prefix; unlisted keys follow in dataset order.
func External(tieredKeys []string) TieringPolicy {
	return externalPolicy{keys: tieredKeys}
}

type externalPolicy struct{ keys []string }

func (externalPolicy) Name() string { return "external" }

func (p externalPolicy) Order(_ context.Context, w *ycsb.Workload) (Ordering, error) {
	return ExternalOrdering(w, p.keys)
}

// fixedPolicy injects a pre-computed ordering into the pipeline — the
// seam ProfileWithOrdering uses so callers holding a raw Ordering don't
// have to reconstruct the key list.
type fixedPolicy struct{ ord Ordering }

func (p fixedPolicy) Name() string { return p.ord.Name }

func (p fixedPolicy) Order(_ context.Context, w *ycsb.Workload) (Ordering, error) {
	if len(p.ord.Keys) != len(w.Dataset.Records) {
		return Ordering{}, fmt.Errorf("core: ordering covers %d keys, dataset has %d",
			len(p.ord.Keys), len(w.Dataset.Records))
	}
	return p.ord, nil
}
