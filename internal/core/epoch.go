package core

import (
	"mnemo/internal/server"
)

// EpochPolicy is the stateful-epochal extension of TieringPolicy
// (DESIGN.md §15): a policy that can revise its placement online. Order
// remains the static degenerate case — it seeds the initial placement
// and is what every consumer of the static pipeline still calls — while
// Begin opens one adaptive run: it returns a server.EpochObserver that
// receives each epoch's access counts and answers with the migrations
// to apply before the next epoch.
//
// The epoch contract (Move, EpochStats, EpochObserver, EpochSource) is
// defined in internal/server because the replay loop in internal/client
// consumes it and core imports client; EpochPolicy simply glues the two:
// any EpochPolicy structurally satisfies server.EpochSource.
//
// Contract: all mutable adaptive state must live on the observer Begin
// returns, never on the policy receiver, so one policy instance can
// serve many — even concurrent — runs (the same freshness rule the
// registry enforces for static policies).
type EpochPolicy interface {
	TieringPolicy
	server.EpochSource
}

// AsEpochPolicy reports whether a policy supports epoch-based adaptive
// replay, returning the adaptive view when it does.
func AsEpochPolicy(p TieringPolicy) (EpochPolicy, bool) {
	ep, ok := p.(EpochPolicy)
	return ep, ok
}
