package core

import (
	"fmt"

	"mnemo/internal/server"
	"mnemo/internal/ycsb"
)

// PlacementEngine materializes a chosen curve point as a static key
// placement and, optionally, populates a live deployment with the actual
// dataset (paper §IV, component 4 — the only step that needs the real
// data rather than the workload descriptor). Mnemo produces static
// allocations only; there is no dynamic migration.
type PlacementEngine struct{}

// PlacementFor builds the placement that pins the first point.KeysInFast
// keys of the ordering to FastMem and leaves the rest on SlowMem. An
// ordering over a full dataset (every KeyStat.Index in range) yields an
// index-keyed placement — the replay fast path; partial or synthetic
// orderings fall back to the string-keyed form.
func (PlacementEngine) PlacementFor(ord Ordering, point CurvePoint) (server.Placement, error) {
	if point.KeysInFast < 0 || point.KeysInFast > len(ord.Keys) {
		return server.Placement{}, fmt.Errorf("core: point places %d keys, ordering has %d",
			point.KeysInFast, len(ord.Keys))
	}
	if point.KeysInFast == len(ord.Keys) {
		return server.AllFast(), nil
	}
	if point.KeysInFast == 0 {
		return server.AllSlow(), nil
	}
	fastIdx := make([]int, point.KeysInFast)
	indexed := true
	for i := 0; i < point.KeysInFast; i++ {
		idx := ord.Keys[i].Index
		if idx < 0 || idx >= len(ord.Keys) {
			indexed = false
			break
		}
		fastIdx[i] = idx
	}
	if indexed {
		return server.FastIndices(fastIdx, len(ord.Keys)), nil
	}
	fast := make([]string, point.KeysInFast)
	for i := 0; i < point.KeysInFast; i++ {
		fast[i] = ord.Keys[i].Key
	}
	return server.FastSet(fast), nil
}

// Populate loads the dataset into a fresh deployment under the placement
// for the chosen point, returning the ready-to-serve deployment.
func (pe PlacementEngine) Populate(cfg server.Config, w *ycsb.Workload, ord Ordering, point CurvePoint) (*server.Deployment, error) {
	p, err := pe.PlacementFor(ord, point)
	if err != nil {
		return nil, err
	}
	d := server.NewDeployment(cfg)
	if err := d.Load(w.Dataset, p); err != nil {
		return nil, fmt.Errorf("core: populating placement: %w", err)
	}
	return d, nil
}
