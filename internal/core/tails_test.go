package core

import (
	"context"
	"testing"

	"mnemo/internal/server"
)

func TestTailEstimatorEndpointsMatchBaselines(t *testing.T) {
	w := testWorkload(31)
	cfg := DefaultConfig(server.RedisLike, 31)
	rep, err := Profile(context.Background(), cfg, w, Touch, 0)
	if err != nil {
		t.Fatal(err)
	}
	var te TailEstimator
	// k = all keys → FastMem-only distribution; k = 0 → SlowMem-only.
	fast, err := te.Estimate(rep.Baselines, rep.Ordering, len(rep.Ordering.Keys))
	if err != nil {
		t.Fatal(err)
	}
	slow, err := te.Estimate(rep.Baselines, rep.Ordering, 0)
	if err != nil {
		t.Fatal(err)
	}
	within := func(pred, meas, tol float64) bool {
		if meas == 0 {
			return pred == 0
		}
		d := (pred - meas) / meas
		return d < tol && d > -tol
	}
	if !within(fast.P95Ns, rep.Baselines.Fast.P95Ns, 0.10) {
		t.Errorf("fast p95 pred %.0f vs meas %.0f", fast.P95Ns, rep.Baselines.Fast.P95Ns)
	}
	if !within(slow.P95Ns, rep.Baselines.Slow.P95Ns, 0.10) {
		t.Errorf("slow p95 pred %.0f vs meas %.0f", slow.P95Ns, rep.Baselines.Slow.P95Ns)
	}
	if !within(slow.P99Ns, rep.Baselines.Slow.P99Ns, 0.15) {
		t.Errorf("slow p99 pred %.0f vs meas %.0f", slow.P99Ns, rep.Baselines.Slow.P99Ns)
	}
	// The interior interpolates between the endpoints.
	mid, err := te.Estimate(rep.Baselines, rep.Ordering, len(rep.Ordering.Keys)/2)
	if err != nil {
		t.Fatal(err)
	}
	if mid.P95Ns > slow.P95Ns*1.05 {
		t.Errorf("mid-curve p95 %.0f above slow endpoint %.0f", mid.P95Ns, slow.P95Ns)
	}
	if mid.P50Ns <= 0 {
		t.Error("p50 missing")
	}
}

func TestTailEstimatorMonotoneInFastKeys(t *testing.T) {
	// More FastMem never raises the predicted tails (read-only trending).
	w := testWorkload(32)
	cfg := DefaultConfig(server.RedisLike, 32)
	rep, err := Profile(context.Background(), cfg, w, Touch, 0)
	if err != nil {
		t.Fatal(err)
	}
	var te TailEstimator
	ks := []int{0, 250, 500, 750, 1000}
	points, err := te.EstimateCurve(rep.Baselines, rep.Ordering, ks)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(ks) {
		t.Fatalf("points = %d", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].P95Ns > points[i-1].P95Ns*1.02 {
			t.Errorf("p95 rose from %.0f to %.0f as FastMem grew",
				points[i-1].P95Ns, points[i].P95Ns)
		}
	}
}

func TestTailEstimatorErrors(t *testing.T) {
	w := testWorkload(33)
	ord := TouchOrdering(w)
	var te TailEstimator
	if _, err := te.Estimate(Baselines{}, ord, 0); err == nil {
		t.Error("histogram-free baselines accepted")
	}
	cfg := DefaultConfig(server.RedisLike, 33)
	se, err := NewSensitivityEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := se.Baselines(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := te.Estimate(b, ord, -1); err == nil {
		t.Error("negative k accepted")
	}
	if _, err := te.Estimate(b, ord, len(ord.Keys)+1); err == nil {
		t.Error("oversized k accepted")
	}
	if _, err := te.EstimateCurve(b, ord, []int{0, -1}); err == nil {
		t.Error("EstimateCurve swallowed bad k")
	}
}
