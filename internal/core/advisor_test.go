package core

import (
	"context"
	"testing"

	"mnemo/internal/server"
)

func TestAdviseLatency(t *testing.T) {
	w := testWorkload(51)
	rep, err := Profile(context.Background(), DefaultConfig(server.RedisLike, 51), w, Touch, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Curve
	fastAvg := c.FastOnly().EstAvgLatencyNs
	slowAvg := c.SlowOnly().EstAvgLatencyNs
	if fastAvg >= slowAvg {
		t.Fatalf("fast avg %v not below slow avg %v", fastAvg, slowAvg)
	}

	// A budget between the endpoints yields an interior, satisfiable
	// sizing whose estimate honors the budget.
	budget := (fastAvg + slowAvg) / 2
	a, err := AdviseLatency(c, budget)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Satisfiable {
		t.Fatal("mid budget unsatisfiable")
	}
	if a.Point.EstAvgLatencyNs > budget {
		t.Fatal("advice misses its own budget")
	}
	if a.Point.KeysInFast == 0 || a.Point.KeysInFast == len(rep.Ordering.Keys) {
		t.Fatalf("mid budget should land interior, got k=%d", a.Point.KeysInFast)
	}
	// Minimality: no cheaper point honors the budget.
	for _, p := range c.Points {
		if p.CostFactor < a.Point.CostFactor-1e-12 && p.EstAvgLatencyNs <= budget {
			t.Fatalf("cheaper point %d also satisfies the budget", p.KeysInFast)
		}
	}

	// A generous budget is satisfied by all-SlowMem.
	loose, err := AdviseLatency(c, slowAvg*1.01)
	if err != nil {
		t.Fatal(err)
	}
	if loose.Point.KeysInFast != 0 {
		t.Errorf("generous budget advised %d keys in fast", loose.Point.KeysInFast)
	}

	// An impossible budget is reported unsatisfiable.
	tight, err := AdviseLatency(c, fastAvg*0.5)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Satisfiable {
		t.Error("impossible budget reported satisfiable")
	}
}

func TestAdviseLatencyErrors(t *testing.T) {
	if _, err := AdviseLatency(&Curve{}, 100); err == nil {
		t.Error("empty curve accepted")
	}
	w := testWorkload(52)
	rep, err := Profile(context.Background(), DefaultConfig(server.RedisLike, 52), w, Touch, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AdviseLatency(rep.Curve, 0); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := AdviseLatency(rep.Curve, -5); err == nil {
		t.Error("negative budget accepted")
	}
}
