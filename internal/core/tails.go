package core

import (
	"fmt"

	"mnemo/internal/client"
	"mnemo/internal/stats"
)

// TailEstimator predicts latency *percentiles* for hybrid tierings — a
// reproduction extension beyond the published system. The paper states
// (§V): "regarding the tail latency of the requests, Mnemo does not
// produce any estimate, since the simple analytical model it uses is not
// sufficient to capture the variabilities of the tail latencies."
//
// The extension's observation: the baselines Mnemo already collects are
// full executions, so they carry the complete per-tier latency
// *distributions*, not just their means. For a tiering that sends n_f
// requests of each size class to FastMem and n_s to SlowMem, the
// predicted latency distribution is the mixture of the corresponding
// baseline histograms weighted by those counts, and any percentile falls
// out of the mixture. Service hiccups (rehash, GC) appear in both
// baseline runs at their natural frequency, so the mixture carries them
// into the tails.
type TailEstimator struct{}

// TailPoint is one tiering's predicted percentiles (nanoseconds).
type TailPoint struct {
	KeysInFast          int
	P50Ns, P95Ns, P99Ns float64
}

// Estimate predicts latency percentiles when the first k keys of the
// ordering live on FastMem. The baselines must carry per-size-class
// latency histograms (any client.Execute result does).
func (TailEstimator) Estimate(b Baselines, ord Ordering, k int) (TailPoint, error) {
	if k < 0 || k > len(ord.Keys) {
		return TailPoint{}, fmt.Errorf("core: tail estimate for %d of %d keys", k, len(ord.Keys))
	}
	if len(b.Fast.ReadLatency)+len(b.Fast.WriteLatency) == 0 ||
		len(b.Slow.ReadLatency)+len(b.Slow.WriteLatency) == 0 {
		return TailPoint{}, fmt.Errorf("core: baselines carry no latency histograms")
	}
	// Per-size-class request counts on each side of the split.
	fastReads := map[int]float64{}
	fastWrites := map[int]float64{}
	slowReads := map[int]float64{}
	slowWrites := map[int]float64{}
	for i, key := range ord.Keys {
		bucket := client.SizeBucket(key.Size)
		if i < k {
			fastReads[bucket] += float64(key.Reads)
			fastWrites[bucket] += float64(key.Writes)
		} else {
			slowReads[bucket] += float64(key.Reads)
			slowWrites[bucket] += float64(key.Writes)
		}
	}
	var hists []*stats.Histogram
	var weights []float64
	appendComponents := func(src []client.BucketHistogram, byBucket map[int]float64) {
		for bucket, w := range byBucket {
			if w == 0 {
				continue
			}
			if h := client.HistFor(src, bucket); h != nil {
				hists = append(hists, h)
				weights = append(weights, w)
			}
		}
	}
	appendComponents(b.Fast.ReadLatency, fastReads)
	appendComponents(b.Fast.WriteLatency, fastWrites)
	appendComponents(b.Slow.ReadLatency, slowReads)
	appendComponents(b.Slow.WriteLatency, slowWrites)
	if len(hists) == 0 {
		return TailPoint{}, fmt.Errorf("core: no mixture components for k=%d", k)
	}
	return TailPoint{
		KeysInFast: k,
		P50Ns:      stats.MixtureQuantile(hists, weights, 0.50),
		P95Ns:      stats.MixtureQuantile(hists, weights, 0.95),
		P99Ns:      stats.MixtureQuantile(hists, weights, 0.99),
	}, nil
}

// EstimateCurve predicts percentiles at every sampled point of a curve.
func (te TailEstimator) EstimateCurve(b Baselines, ord Ordering, ks []int) ([]TailPoint, error) {
	out := make([]TailPoint, 0, len(ks))
	for _, k := range ks {
		tp, err := te.Estimate(b, ord, k)
		if err != nil {
			return nil, err
		}
		out = append(out, tp)
	}
	return out, nil
}
