package core

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"mnemo/internal/server"
	"mnemo/internal/ycsb"
)

func artifactsWorkload(t *testing.T) *ycsb.Workload {
	t.Helper()
	w, err := ycsb.Generate(ycsb.Spec{
		Name: "artifacts-test", Keys: 100, Requests: 2000, Seed: 11,
		ReadRatio: 0.9,
		Dist:      ycsb.DistSpec{Kind: ycsb.Hotspot, HotSetFraction: 0.2, HotOpnFraction: 0.9},
		Sizes:     ycsb.SizeThumbnail,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return w
}

// N sessions over one workload and config share exactly one baseline
// measurement through the cache, and their reports are bit-identical to
// an unshared session's.
func TestSharedSessionsShareOneMeasurement(t *testing.T) {
	w := artifactsWorkload(t)
	cfg := DefaultConfig(server.RedisLike, 42)
	cache := NewArtifactCache()
	ctx := context.Background()

	plain, err := NewSession(cfg, w)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	want, err := plain.Run(ctx, MnemoT, 0.10)
	if err != nil {
		t.Fatalf("plain Run: %v", err)
	}

	const n = 8
	for i := 0; i < n; i++ {
		s, err := NewSharedSession(cfg, w, cache)
		if err != nil {
			t.Fatalf("NewSharedSession: %v", err)
		}
		got, err := s.Run(ctx, MnemoT, 0.10)
		if err != nil {
			t.Fatalf("shared Run %d: %v", i, err)
		}
		if !reflect.DeepEqual(got.Baselines, want.Baselines) {
			t.Fatalf("session %d: shared baselines differ from unshared", i)
		}
		if !reflect.DeepEqual(got.Curve.Points, want.Curve.Points) {
			t.Fatalf("session %d: shared curve differs from unshared", i)
		}
		if !reflect.DeepEqual(got.Advice, want.Advice) {
			t.Fatalf("session %d: shared advice differs from unshared", i)
		}
		wantMeasures := 0
		if i == 0 {
			wantMeasures = 1
		}
		if s.MeasureCount() != wantMeasures {
			t.Fatalf("session %d executed %d measurements, want %d", i, s.MeasureCount(), wantMeasures)
		}
	}
	st := cache.Stats()
	if st.Measurements != 1 {
		t.Fatalf("cache executed %d measurements for %d sessions, want 1", st.Measurements, n)
	}
	if st.BaselineHits != n-1 || st.OrderingHits != n-1 || st.CurveHits != n-1 {
		t.Fatalf("hits = %+v, want %d of each", st, n-1)
	}
}

// Sessions whose policies differ share the measurement but not the
// ordering/curve; a different measurement config shares nothing.
func TestArtifactCacheKeying(t *testing.T) {
	w := artifactsWorkload(t)
	cfg := DefaultConfig(server.RedisLike, 42)
	cache := NewArtifactCache()
	ctx := context.Background()

	for _, p := range []TieringPolicy{Touch, MnemoT} {
		s, err := NewSharedSession(cfg, w, cache)
		if err != nil {
			t.Fatalf("NewSharedSession: %v", err)
		}
		if _, err := s.Run(ctx, p, 0.10); err != nil {
			t.Fatalf("Run(%s): %v", p.Name(), err)
		}
	}
	st := cache.Stats()
	if st.Measurements != 1 {
		t.Fatalf("distinct policies forced %d measurements, want 1", st.Measurements)
	}
	if st.OrderingHits != 0 || st.CurveHits != 0 {
		t.Fatalf("distinct policies shared orderings/curves: %+v", st)
	}

	// A config that changes the measurement (different seed) must not
	// reuse the baselines.
	cfg2 := DefaultConfig(server.RedisLike, 43)
	s, err := NewSharedSession(cfg2, w, cache)
	if err != nil {
		t.Fatalf("NewSharedSession: %v", err)
	}
	if _, err := s.Run(ctx, Touch, 0.10); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := cache.Stats().Measurements; got != 2 {
		t.Fatalf("changed seed reused the measurement (total %d, want 2)", got)
	}

	// Estimate-model knobs invalidate only the curve: same measurement,
	// same ordering, new curve.
	cfg3 := cfg
	cfg3.PriceFactor = 0.4
	before := cache.Stats()
	s3, err := NewSharedSession(cfg3, w, cache)
	if err != nil {
		t.Fatalf("NewSharedSession: %v", err)
	}
	if _, err := s3.Run(ctx, Touch, 0.10); err != nil {
		t.Fatalf("Run: %v", err)
	}
	after := cache.Stats()
	if after.Measurements != before.Measurements {
		t.Fatalf("price factor change forced a measurement")
	}
	if after.OrderingHits != before.OrderingHits+1 {
		t.Fatalf("price factor change did not reuse the ordering: %+v vs %+v", after, before)
	}
	if after.CurveHits != before.CurveHits {
		t.Fatalf("price factor change reused a stale curve: %+v vs %+v", after, before)
	}
}

// Two different workloads never collide in the cache.
func TestArtifactCacheDistinguishesWorkloads(t *testing.T) {
	cfg := DefaultConfig(server.RedisLike, 42)
	cache := NewArtifactCache()
	ctx := context.Background()
	w1 := artifactsWorkload(t)
	w2, err := ycsb.Generate(ycsb.Spec{
		Name: "artifacts-test", Keys: 100, Requests: 2000, Seed: 12, // same shape, different seed
		ReadRatio: 0.9,
		Dist:      ycsb.DistSpec{Kind: ycsb.Hotspot, HotSetFraction: 0.2, HotOpnFraction: 0.9},
		Sizes:     ycsb.SizeThumbnail,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	for _, w := range []*ycsb.Workload{w1, w2} {
		s, err := NewSharedSession(cfg, w, cache)
		if err != nil {
			t.Fatalf("NewSharedSession: %v", err)
		}
		if _, err := s.Run(ctx, Touch, 0.10); err != nil {
			t.Fatalf("Run: %v", err)
		}
	}
	if got := cache.Stats().Measurements; got != 2 {
		t.Fatalf("different workloads shared a measurement (total %d, want 2)", got)
	}
}

// A failed computation is evicted, not cached: the next session retries
// and can succeed.
func TestArtifactCacheEvictsFailures(t *testing.T) {
	w := artifactsWorkload(t)
	cfg := DefaultConfig(server.RedisLike, 42)
	cache := NewArtifactCache()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s1, err := NewSharedSession(cfg, w, cache)
	if err != nil {
		t.Fatalf("NewSharedSession: %v", err)
	}
	if _, err := s1.Measure(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Measure error = %v, want context.Canceled", err)
	}

	s2, err := NewSharedSession(cfg, w, cache)
	if err != nil {
		t.Fatalf("NewSharedSession: %v", err)
	}
	if _, err := s2.Measure(context.Background()); err != nil {
		t.Fatalf("retry after failure: %v", err)
	}
	if got := cache.Stats().Measurements; got != 1 {
		t.Fatalf("measurements = %d, want 1", got)
	}
}

// Concurrent shared sessions still execute the measurement exactly once
// (singleflight) and all observe identical baselines.
func TestArtifactCacheConcurrentSingleflight(t *testing.T) {
	w := artifactsWorkload(t)
	cfg := DefaultConfig(server.RedisLike, 42)
	cache := NewArtifactCache()
	ctx := context.Background()

	const n = 16
	results := make([]Baselines, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := NewSharedSession(cfg, w, cache)
			if err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = s.Measure(ctx)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("session %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatalf("session %d observed different baselines", i)
		}
	}
	if got := cache.Stats().Measurements; got != 1 {
		t.Fatalf("measurements = %d, want 1", got)
	}
}

// The workload hash covers name, dataset and trace content.
func TestWorkloadHashSensitivity(t *testing.T) {
	cache := NewArtifactCache()
	w := artifactsWorkload(t)
	h1, err := cache.WorkloadHash(w)
	if err != nil {
		t.Fatalf("WorkloadHash: %v", err)
	}
	// Memoized per pointer.
	h2, err := cache.WorkloadHash(w)
	if err != nil || h2 != h1 {
		t.Fatalf("memoized hash changed: %x vs %x (err %v)", h2, h1, err)
	}
	// An identical regeneration hashes equal through a fresh pointer.
	same := artifactsWorkload(t)
	h3, err := cache.WorkloadHash(same)
	if err != nil || h3 != h1 {
		t.Fatalf("identical workload hashed differently: %x vs %x (err %v)", h3, h1, err)
	}
	// Flipping one op kind changes the hash.
	mut := artifactsWorkload(t)
	mut.Ops[0].Kind ^= 1
	h4, err := cache.WorkloadHash(mut)
	if err != nil {
		t.Fatalf("WorkloadHash: %v", err)
	}
	if h4 == h1 {
		t.Fatal("op-kind mutation did not change the workload hash")
	}
	// Changing one record size changes the hash.
	mut2 := artifactsWorkload(t)
	mut2.Dataset.Records[0].Size++
	h5, err := cache.WorkloadHash(mut2)
	if err != nil {
		t.Fatalf("WorkloadHash: %v", err)
	}
	if h5 == h1 {
		t.Fatal("record-size mutation did not change the workload hash")
	}
}
