package core

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV emits the curve in the paper's output format (§IV,
// "Interfacing with Mnemo"): a csv with three columns — key identifier,
// estimated performance, and cost reduction factor. "Each row contains a
// key identifier, the estimated performance and cost reduction factor,
// when FastMem will service all previous keys in the file" — so row k
// describes the sizing that pins keys from rows 1..k to FastMem. The
// leading row with an empty key is the all-SlowMem origin.
func (c *Curve) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"key", "est_throughput_ops", "cost_factor"}); err != nil {
		return err
	}
	for _, p := range c.Points {
		row := []string{
			p.LastKey,
			strconv.FormatFloat(p.EstThroughputOps, 'f', 2, 64),
			strconv.FormatFloat(p.CostFactor, 'f', 6, 64),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCurveCSV parses a csv written by WriteCSV back into the point
// fields it carries (key, throughput, cost factor). It is the consumer
// side of the tool's interface: "The user of Mnemo should choose the line
// that satisfies its performance requirements and price allowance".
func ReadCurveCSV(r io.Reader) ([]CurvePoint, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("core: reading curve header: %w", err)
	}
	if header[0] != "key" {
		return nil, fmt.Errorf("core: unexpected curve header %q", header)
	}
	var out []CurvePoint
	k := 0
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("core: reading curve row %d: %w", k, err)
		}
		tput, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("core: row %d: bad throughput %q", k, row[1])
		}
		cost, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			return nil, fmt.Errorf("core: row %d: bad cost factor %q", k, row[2])
		}
		out = append(out, CurvePoint{
			KeysInFast:       k,
			LastKey:          row[0],
			EstThroughputOps: tput,
			CostFactor:       cost,
		})
		k++
	}
	return out, nil
}
