package core

import (
	"context"
	"math/rand"
	"testing"

	"mnemo/internal/server"
	"mnemo/internal/ycsb"
)

// randomSpec draws a small but arbitrary workload configuration.
func randomSpec(rng *rand.Rand) ycsb.Spec {
	dists := []ycsb.DistSpec{
		{Kind: ycsb.Uniform},
		{Kind: ycsb.Zipfian},
		{Kind: ycsb.ScrambledZipfian},
		{Kind: ycsb.Hotspot, HotSetFraction: 0.05 + rng.Float64()*0.4, HotOpnFraction: rng.Float64()},
		{Kind: ycsb.Latest},
	}
	sizes := []ycsb.SizeKind{
		ycsb.SizeThumbnail, ycsb.SizeTextPost, ycsb.SizePhotoCaption,
		ycsb.SizeTrendingPreview, ycsb.SizeFixed1KB, ycsb.SizeFixed100KB,
	}
	return ycsb.Spec{
		Name:      "prop",
		Keys:      50 + rng.Intn(300),
		Requests:  500 + rng.Intn(3000),
		Dist:      dists[rng.Intn(len(dists))],
		ReadRatio: rng.Float64(),
		Sizes:     sizes[rng.Intn(len(sizes))],
		Seed:      rng.Int63(),
	}
}

// TestPipelineInvariantsOnRandomWorkloads profiles a batch of arbitrary
// workloads on arbitrary engines and checks the invariants every curve
// must satisfy, whatever the inputs.
func TestPipelineInvariantsOnRandomWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 12; trial++ {
		spec := randomSpec(rng)
		w := ycsb.MustGenerate(spec)
		engine := server.Engines()[rng.Intn(3)]
		pol := Touch
		if rng.Intn(2) == 1 {
			pol = MnemoT
		}
		cfg := DefaultConfig(engine, rng.Int63())
		cfg.SizeAwareEstimate = rng.Intn(2) == 1
		rep, err := Profile(context.Background(), cfg, w, pol, 0.10)
		if err != nil {
			t.Fatalf("trial %d (%+v): %v", trial, spec, err)
		}
		c := rep.Curve

		// Structural invariants.
		if len(c.Points) != spec.Keys+1 {
			t.Fatalf("trial %d: %d points for %d keys", trial, len(c.Points), spec.Keys)
		}
		if c.FastOnly().FastBytes != w.Dataset.TotalBytes {
			t.Fatalf("trial %d: fast endpoint holds %d of %d bytes",
				trial, c.FastOnly().FastBytes, w.Dataset.TotalBytes)
		}
		prevCost := -1.0
		for k, p := range c.Points {
			if p.KeysInFast != k {
				t.Fatalf("trial %d: point %d misindexed", trial, k)
			}
			if p.CostFactor < prevCost {
				t.Fatalf("trial %d: cost not monotone at %d", trial, k)
			}
			prevCost = p.CostFactor
			if p.EstRuntime <= 0 || p.EstThroughputOps <= 0 {
				t.Fatalf("trial %d: degenerate estimate at %d", trial, k)
			}
		}
		if c.SlowOnly().CostFactor < 0.199 || c.FastOnly().CostFactor > 1.0001 {
			t.Fatalf("trial %d: cost endpoints %v..%v",
				trial, c.SlowOnly().CostFactor, c.FastOnly().CostFactor)
		}

		// Advisor optimality: the advised point satisfies the SLO budget
		// and no strictly cheaper curve point does.
		a := rep.Advice
		budget := float64(c.FastOnly().EstRuntime) * 1.10
		if float64(a.Point.EstRuntime) > budget {
			t.Fatalf("trial %d: advice violates SLO", trial)
		}
		for _, p := range c.Points {
			if p.CostFactor < a.Point.CostFactor-1e-12 && float64(p.EstRuntime) <= budget {
				t.Fatalf("trial %d: cheaper point %d (cost %.4f) also satisfies the SLO",
					trial, p.KeysInFast, p.CostFactor)
			}
		}

		// Ordering covers the whole key space exactly once.
		seen := map[string]bool{}
		for _, ks := range rep.Ordering.Keys {
			if seen[ks.Key] {
				t.Fatalf("trial %d: key %q repeated in ordering", trial, ks.Key)
			}
			seen[ks.Key] = true
		}
		if len(seen) != spec.Keys {
			t.Fatalf("trial %d: ordering covers %d of %d keys", trial, len(seen), spec.Keys)
		}
	}
}

// TestEstimateBracketsBaselines: for read-only workloads the estimate at
// every interior point must lie between the two baseline estimates.
func TestEstimateBracketsBaselines(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	for trial := 0; trial < 6; trial++ {
		spec := randomSpec(rng)
		spec.ReadRatio = 1.0
		w := ycsb.MustGenerate(spec)
		rep, err := Profile(context.Background(), DefaultConfig(server.RedisLike, rng.Int63()), w, Touch, 0)
		if err != nil {
			t.Fatal(err)
		}
		lo := rep.Curve.FastOnly().EstRuntime
		hi := rep.Curve.SlowOnly().EstRuntime
		for _, p := range rep.Curve.Points {
			if p.EstRuntime < lo || p.EstRuntime > hi {
				t.Fatalf("trial %d: point %d runtime %v outside [%v, %v]",
					trial, p.KeysInFast, p.EstRuntime, lo, hi)
			}
		}
	}
}
