package core

import (
	"context"
	"encoding/json"
	"testing"

	"mnemo/internal/server"
)

func TestReportSummary(t *testing.T) {
	w := testWorkload(41)
	rep, err := Profile(context.Background(), DefaultConfig(server.RedisLike, 41), w, Touch, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Summary(8)
	if s.Workload != "trending_small" || s.Engine != "redislike" || s.Mode != "standalone" {
		t.Errorf("labels: %+v", s)
	}
	if s.Keys != 1000 || s.Requests != 10000 {
		t.Errorf("scale: keys=%d requests=%d", s.Keys, s.Requests)
	}
	if s.Advice == nil {
		t.Fatal("advice missing")
	}
	if s.Advice.CostFactor <= 0 || s.Advice.CostFactor >= 1 {
		t.Errorf("advice cost %v", s.Advice.CostFactor)
	}
	// Curve: endpoints present, cost monotone.
	if len(s.Curve) < 3 {
		t.Fatalf("curve points = %d", len(s.Curve))
	}
	if s.Curve[0].KeysInFast != 0 || s.Curve[len(s.Curve)-1].KeysInFast != 1000 {
		t.Error("curve endpoints missing")
	}
	for i := 1; i < len(s.Curve); i++ {
		if s.Curve[i].CostFactor < s.Curve[i-1].CostFactor {
			t.Fatal("summary curve not cost-monotone")
		}
	}
	// Round-trips through JSON.
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Advice == nil || back.Advice.KeysInFast != s.Advice.KeysInFast {
		t.Error("JSON round trip lost advice")
	}
}

func TestReportSummaryNoAdviceNoCurve(t *testing.T) {
	w := testWorkload(42)
	rep, err := Profile(context.Background(), DefaultConfig(server.RedisLike, 42), w, Touch, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Summary(0)
	if s.Advice != nil {
		t.Error("advice should be absent without an SLO")
	}
	if len(s.Curve) != 0 {
		t.Error("curve should be omitted for samples ≤ 0")
	}
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) == "" {
		t.Fatal("empty JSON")
	}
}
