package core

import (
	"fmt"

	"mnemo/internal/client"
	"mnemo/internal/server"
	"mnemo/internal/ycsb"
)

// SensitivityEngine obtains the real performance baselines by executing
// the workload "as-is" in the two extreme configurations (paper §IV,
// component 1): a customized YCSB client run against an all-FastMem and
// an all-SlowMem deployment, extracting total runtime and average read
// and write response times.
type SensitivityEngine struct {
	cfg Config
}

// NewSensitivityEngine builds the engine, applying config defaults.
func NewSensitivityEngine(cfg Config) (*SensitivityEngine, error) {
	n, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	return &SensitivityEngine{cfg: n}, nil
}

// Baselines executes the workload under both extreme placements and
// returns the measured baselines.
func (s *SensitivityEngine) Baselines(w *ycsb.Workload) (Baselines, error) {
	fast, err := client.ExecuteMean(s.cfg.Server, w, server.AllFast(), s.cfg.Runs)
	if err != nil {
		return Baselines{}, fmt.Errorf("core: FastMem baseline: %w", err)
	}
	// Decorrelate the noise streams of the two baseline runs, as two
	// separate physical executions would be.
	slowCfg := s.cfg.Server
	slowCfg.Seed += 7919
	slow, err := client.ExecuteMean(slowCfg, w, server.AllSlow(), s.cfg.Runs)
	if err != nil {
		return Baselines{}, fmt.Errorf("core: SlowMem baseline: %w", err)
	}
	return Baselines{Fast: fast, Slow: slow}, nil
}
