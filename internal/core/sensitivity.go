package core

import (
	"context"
	"fmt"
	"sync/atomic"

	"mnemo/internal/client"
	"mnemo/internal/pool"
	"mnemo/internal/server"
	"mnemo/internal/ycsb"
)

// baselineMeasurements counts completed Fast+Slow baseline executions
// across the package — the observable the Session artifact-reuse tests
// assert on ("N policies, exactly one measurement").
var baselineMeasurements atomic.Int64

// SensitivityEngine obtains the real performance baselines by executing
// the workload "as-is" in the two extreme configurations (paper §IV,
// component 1): a customized YCSB client run against an all-FastMem and
// an all-SlowMem deployment, extracting total runtime and average read
// and write response times.
type SensitivityEngine struct {
	cfg Config
}

// NewSensitivityEngine builds the engine, applying config defaults.
func NewSensitivityEngine(cfg Config) (*SensitivityEngine, error) {
	n, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	return &SensitivityEngine{cfg: n}, nil
}

// Baselines executes the workload under both extreme placements and
// returns the measured baselines. The two executions are independent
// simulations, so they run concurrently; each owns its deployment and
// noise stream and keeps its fixed seed, so the result is bit-identical
// to running them back to back. Cancelling ctx aborts both mid-sweep;
// failing runs are retried/degraded per the config's resilience policy.
func (s *SensitivityEngine) Baselines(ctx context.Context, w *ycsb.Workload) (Baselines, error) {
	// Baselines measure the static extremes by definition: an adaptive
	// policy would find nothing to migrate on an all-fast or all-slow
	// placement anyway, so the knobs are stripped to keep the estimate
	// model's inputs on the exact legacy path.
	fastCfg := s.cfg.Server
	fastCfg.Adaptive, fastCfg.EpochOps = nil, 0
	// Decorrelate the noise streams of the two baseline runs, as two
	// separate physical executions would be.
	slowCfg := fastCfg
	slowCfg.Seed += 7919

	jobs := []struct {
		name string
		cfg  server.Config
		p    server.Placement
	}{
		{"FastMem", fastCfg, server.AllFast()},
		{"SlowMem", slowCfg, server.AllSlow()},
	}
	var results [2]client.RunStats
	var errs [2]error
	// Both baselines and their nested repetition/shard fan-outs share
	// one worker budget (see pool.Budget).
	ctx = pool.EnsureBudget(ctx)
	if err := pool.RunObs(ctx, len(jobs), len(jobs), s.cfg.Server.Obs, func(i int) {
		results[i], errs[i] = client.ExecuteMeanCtx(ctx, jobs[i].cfg, w, jobs[i].p, s.cfg.Runs, 0, s.cfg.Resilience)
	}); err != nil {
		return Baselines{}, err
	}
	for i, err := range errs {
		if err != nil {
			return Baselines{}, fmt.Errorf("core: %s baseline: %w", jobs[i].name, err)
		}
	}
	baselineMeasurements.Add(1)
	return Baselines{Fast: results[0], Slow: results[1]}, nil
}
