// Package core implements Mnemo itself: the Sensitivity, Pattern,
// Estimate and Placement engines of Fig 6, the MnemoT tiering extension
// of Fig 7, and the SLO advisor that finds the cost/performance sweet
// spot the paper's Fig 9 reports.
//
// Data flow (paper §IV):
//
//	workload descriptor ──► Sensitivity Engine ──► performance baselines
//	                    ──► Pattern Engine     ──► key ordering + Req(keys)
//	baselines + pattern ──► Estimate Engine    ──► cost/throughput curve (CSV)
//	chosen curve point  ──► Placement Engine   ──► static Fast/Slow placement
package core

import (
	"fmt"

	"mnemo/internal/client"
	"mnemo/internal/costmodel"
	"mnemo/internal/server"
	"mnemo/internal/shard"
	"mnemo/internal/simclock"
)

// Baselines are the two extreme-configuration measurements the
// Sensitivity Engine extracts by actually executing the workload: all
// data in FastMem (best case) and all data in SlowMem (worst case).
type Baselines struct {
	Fast client.RunStats
	Slow client.RunStats
}

// SlowdownAllSlow reports the runtime inflation of the all-SlowMem run
// relative to all-FastMem (≥ 1 for memory-sensitive stores).
func (b Baselines) SlowdownAllSlow() float64 {
	if b.Fast.Runtime == 0 {
		return 0
	}
	return float64(b.Slow.Runtime) / float64(b.Fast.Runtime)
}

// KeyStat is one key's contribution to the access pattern — the
// Req(keys) relationship the Pattern Engine establishes.
type KeyStat struct {
	Index  int // index into the workload's dataset
	Key    string
	Size   int
	Reads  int
	Writes int
}

// Accesses returns the key's total request count.
func (k KeyStat) Accesses() int { return k.Reads + k.Writes }

// Weight is MnemoT's placement weight: accesses divided by the key-value
// pair size, so hot and small keys are prioritized for FastMem.
func (k KeyStat) Weight() float64 {
	if k.Size <= 0 {
		return float64(k.Accesses())
	}
	return float64(k.Accesses()) / float64(k.Size)
}

// Ordering is a FastMem-priority ordering of the key space produced by a
// pattern engine: prefixes of the ordering are the incremental FastMem
// populations of the estimate curve.
type Ordering struct {
	// Name identifies the producing tiering policy: "touch" (stand-alone
	// Mnemo), "mnemot" (MnemoT weighted tiering), "external" (an existing
	// tiering solution's output, deployment mode 2b), or any other
	// registered TieringPolicy's name.
	Name string
	Keys []KeyStat
}

// TotalBytes sums the dataset bytes across the ordering.
func (o Ordering) TotalBytes() int64 {
	var total int64
	for _, k := range o.Keys {
		total += int64(k.Size)
	}
	return total
}

// CurvePoint is one row of Mnemo's output: the estimated performance and
// relative memory cost when FastMem holds exactly the first KeysInFast
// keys of the ordering.
type CurvePoint struct {
	KeysInFast int
	// LastKey is the key admitted to FastMem at this point ("" for the
	// all-SlowMem origin).
	LastKey string
	// FastBytes is the FastMem capacity this point requires.
	FastBytes int64
	// CostFactor is R(p) relative to a FastMem-only system.
	CostFactor float64
	// EstRuntime / EstThroughputOps / EstAvgLatencyNs are the Estimate
	// Engine's model outputs.
	EstRuntime       simclock.Duration
	EstThroughputOps float64
	EstAvgLatencyNs  float64
}

// Curve is the full cost/performance trade-off estimate for a workload on
// an engine — the solid blue line of Fig 5.
type Curve struct {
	Workload    string
	Engine      string
	Ordering    string
	PriceFactor float64
	TotalBytes  int64
	Requests    int
	Baselines   Baselines
	// Points has len(keys)+1 entries: point 0 is the all-SlowMem origin,
	// point len(keys) the all-FastMem best case.
	Points []CurvePoint
}

// FastOnly returns the all-FastMem endpoint of the curve.
func (c *Curve) FastOnly() CurvePoint { return c.Points[len(c.Points)-1] }

// SlowOnly returns the all-SlowMem origin of the curve.
func (c *Curve) SlowOnly() CurvePoint { return c.Points[0] }

// PointAtCost returns the first point whose cost factor is ≥ the target
// (points are cost-monotone), or the last point if none reaches it.
func (c *Curve) PointAtCost(target float64) CurvePoint {
	for _, p := range c.Points {
		if p.CostFactor >= target {
			return p
		}
	}
	return c.FastOnly()
}

// Config bundles everything Mnemo needs to profile one workload against
// one engine deployment.
type Config struct {
	Server server.Config
	// Runs is how many times the Sensitivity Engine repeats each baseline
	// execution (the paper reports means of multiple runs). Default 1.
	Runs int
	// PriceFactor is the SlowMem:FastMem per-byte price ratio p; 0 means
	// the paper's 0.2.
	PriceFactor float64
	// SizeAwareEstimate enables the per-size-class estimate extension
	// (see EstimateEngine.SetSizeAware). Off by default: the paper's
	// model uses a single global average.
	SizeAwareEstimate bool
	// Resilience governs how baseline and validation measurements cope
	// with failing runs (retry, degrade, reject outliers). The zero value
	// is strict: any failed run aborts the profiling session.
	Resilience client.Policy
}

// normalized applies defaults and validates.
func (c Config) normalized() (Config, error) {
	if c.Runs == 0 {
		c.Runs = 1
	}
	if c.Runs < 0 {
		return c, fmt.Errorf("core: runs %d must be positive", c.Runs)
	}
	if c.PriceFactor == 0 {
		c.PriceFactor = costmodel.DefaultPriceFactor
	}
	if c.PriceFactor <= 0 || c.PriceFactor > 1 {
		return c, fmt.Errorf("core: price factor %v outside (0,1]", c.PriceFactor)
	}
	if err := c.Server.Fault.Validate(); err != nil {
		return c, err
	}
	if c.Server.RunTimeout < 0 {
		return c, fmt.Errorf("core: run timeout %v must be non-negative", c.Server.RunTimeout)
	}
	if c.Server.Shards < 0 || c.Server.Shards > shard.MaxShards {
		return c, fmt.Errorf("core: shards %d outside [0,%d]", c.Server.Shards, shard.MaxShards)
	}
	if c.Server.VirtualNodes < 0 {
		return c, fmt.Errorf("core: virtual nodes %d must be non-negative", c.Server.VirtualNodes)
	}
	if c.Server.EpochOps < 0 {
		return c, fmt.Errorf("core: epoch ops %d must be non-negative", c.Server.EpochOps)
	}
	if c.Server.MigrationCostPerByte < 0 {
		return c, fmt.Errorf("core: migration cost %v ns/byte must be non-negative", c.Server.MigrationCostPerByte)
	}
	if c.Server.MigrationBudget < 0 {
		return c, fmt.Errorf("core: migration budget %d bytes must be non-negative", c.Server.MigrationBudget)
	}
	if err := c.Resilience.Validate(); err != nil {
		return c, err
	}
	return c, nil
}

// DefaultConfig returns a profiling config for the engine with the
// paper's defaults.
func DefaultConfig(e server.Engine, seed int64) Config {
	return Config{Server: server.DefaultConfig(e, seed), Runs: 1, PriceFactor: costmodel.DefaultPriceFactor}
}
