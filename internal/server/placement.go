package server

import (
	"mnemo/internal/memsim"
)

// Placement maps keys to memory tiers. The paper's deployment runs two
// server instances of the same key-value store, one bound to each memory
// node; a placement decides which instance serves each key. Placements
// are static — Mnemo produces "a static key allocation, with no support
// for dynamic data migration".
type Placement struct {
	defaultTier memsim.Tier
	overrides   map[string]memsim.Tier
}

// AllFast places every key on FastMem — the paper's best-case baseline.
func AllFast() Placement { return Placement{defaultTier: memsim.Fast} }

// AllSlow places every key on SlowMem — the worst-case baseline.
func AllSlow() Placement { return Placement{defaultTier: memsim.Slow} }

// FastSet places the listed keys on FastMem and everything else on
// SlowMem — the incremental tierings of the estimate curve.
func FastSet(fastKeys []string) Placement {
	p := Placement{defaultTier: memsim.Slow, overrides: make(map[string]memsim.Tier, len(fastKeys))}
	for _, k := range fastKeys {
		p.overrides[k] = memsim.Fast
	}
	return p
}

// TierOf returns the tier serving the key.
func (p Placement) TierOf(key string) memsim.Tier {
	if t, ok := p.overrides[key]; ok {
		return t
	}
	return p.defaultTier
}

// FastKeyCount reports how many keys are explicitly pinned to FastMem
// (0 for AllFast/AllSlow placements, which pin via the default).
func (p Placement) FastKeyCount() int {
	n := 0
	for _, t := range p.overrides {
		if t == memsim.Fast {
			n++
		}
	}
	return n
}

// Default reports the tier used for keys without an explicit override.
func (p Placement) Default() memsim.Tier { return p.defaultTier }
