package server

import (
	"mnemo/internal/memsim"
)

// Placement maps keys to memory tiers. The paper's deployment runs two
// server instances of the same key-value store, one bound to each memory
// node; a placement decides which instance serves each key. Placements
// are static — Mnemo produces "a static key allocation, with no support
// for dynamic data migration".
//
// A placement carries one of two representations. String-keyed
// placements (AllFast/AllSlow/FastSet) resolve tiers by key through a
// map. Index-keyed placements (FastIndices) carry a dense []memsim.Tier
// addressed by dataset record index — the replay fast path, since a
// workload trace already refers to records by index. Deployment.Load
// materializes either form into its per-record tier table, so both are
// equally usable; only the lookup cost differs.
type Placement struct {
	defaultTier memsim.Tier
	overrides   map[string]memsim.Tier
	// dense is the index-keyed representation: dense[i] is the tier of
	// dataset record i. When non-nil it is authoritative and overrides
	// is nil; string lookups on a dense placement fall back to the
	// default tier.
	dense []memsim.Tier
}

// AllFast places every key on FastMem — the paper's best-case baseline.
func AllFast() Placement { return Placement{defaultTier: memsim.Fast} }

// AllSlow places every key on SlowMem — the worst-case baseline.
func AllSlow() Placement { return Placement{defaultTier: memsim.Slow} }

// FastSet places the listed keys on FastMem and everything else on
// SlowMem — the incremental tierings of the estimate curve.
func FastSet(fastKeys []string) Placement {
	p := Placement{defaultTier: memsim.Slow, overrides: make(map[string]memsim.Tier, len(fastKeys))}
	for _, k := range fastKeys {
		p.overrides[k] = memsim.Fast
	}
	return p
}

// FastIndices places the records with the listed dataset indices on
// FastMem and the rest of the `total`-record dataset on SlowMem. This is
// the index-keyed equivalent of FastSet: no key strings are stored and
// tier resolution is a slice load. Indices outside [0, total) panic.
func FastIndices(fastIdx []int, total int) Placement {
	if total < 0 {
		panic("server: negative dataset size")
	}
	dense := make([]memsim.Tier, total)
	for i := range dense {
		dense[i] = memsim.Slow
	}
	for _, i := range fastIdx {
		dense[i] = memsim.Fast
	}
	return Placement{defaultTier: memsim.Slow, dense: dense}
}

// TierOf returns the tier serving the key. For index-keyed placements
// the key string carries no routing information, so the default tier is
// returned; resolve by index instead (TierOfIndex).
func (p Placement) TierOf(key string) memsim.Tier {
	if t, ok := p.overrides[key]; ok {
		return t
	}
	return p.defaultTier
}

// TierOfIndex returns the tier serving the record with the given dataset
// index. For string-keyed placements every record follows the map-free
// default, so callers holding keys should use TierOf; Deployment.Load
// resolves each record once through tierForRecord and caches the result.
func (p Placement) TierOfIndex(idx int) memsim.Tier {
	if p.dense != nil && idx >= 0 && idx < len(p.dense) {
		return p.dense[idx]
	}
	return p.defaultTier
}

// tierForRecord resolves one dataset record through whichever
// representation the placement carries.
func (p Placement) tierForRecord(idx int, key string) memsim.Tier {
	if p.dense != nil {
		if idx >= 0 && idx < len(p.dense) {
			return p.dense[idx]
		}
		return p.defaultTier
	}
	return p.TierOf(key)
}

// Dense reports whether the placement is index-keyed.
func (p Placement) Dense() bool { return p.dense != nil }

// FastKeyCount reports how many keys are explicitly pinned to FastMem
// (0 for AllFast/AllSlow placements, which pin via the default).
func (p Placement) FastKeyCount() int {
	n := 0
	for _, t := range p.dense {
		if t == memsim.Fast {
			n++
		}
	}
	for _, t := range p.overrides {
		if t == memsim.Fast {
			n++
		}
	}
	return n
}

// Default reports the tier used for keys without an explicit override.
func (p Placement) Default() memsim.Tier { return p.defaultTier }
