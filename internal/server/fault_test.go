package server

import (
	"errors"
	"testing"

	"mnemo/internal/simclock"
	"mnemo/internal/ycsb"
)

func faultWorkload(t *testing.T) *ycsb.Workload {
	t.Helper()
	w, err := ycsb.Generate(ycsb.Spec{
		Name: "fault", Keys: 64, Requests: 512,
		Dist:      ycsb.DistSpec{Kind: ycsb.Uniform},
		ReadRatio: 0.9, Sizes: ycsb.SizeFixed1KB, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func runAll(t *testing.T, cfg Config, w *ycsb.Workload) simclock.Duration {
	t.Helper()
	d := NewDeployment(cfg)
	if err := d.InjectedFailure(); err != nil {
		t.Fatal(err)
	}
	if err := d.Load(w.Dataset, AllFast()); err != nil {
		t.Fatal(err)
	}
	for _, op := range w.Ops {
		d.DoIndex(op.Key, op.Kind)
	}
	return d.Clock()
}

func TestFaultSpecValidate(t *testing.T) {
	good := []FaultSpec{
		{},
		{FailProb: 1, StallProb: 0.5, OutlierProb: 0.25, Seed: 3},
		{OutlierFactor: 100, Stall: simclock.Second, StallWindowOps: 10},
		{CrashProb: 1, StragglerProb: 0.5, StragglerFactor: 16},
	}
	for _, f := range good {
		if err := f.Validate(); err != nil {
			t.Errorf("%+v: unexpected error %v", f, err)
		}
	}
	bad := []FaultSpec{
		{FailProb: -0.1},
		{StallProb: 1.5},
		{OutlierProb: 2},
		{OutlierFactor: -1},
		{Stall: -simclock.Second},
		{StallWindowOps: -1},
		{CrashProb: -0.5},
		{CrashProb: 1.5},
		{StragglerProb: -1},
		{StragglerProb: 2},
		{StragglerFactor: -4},
	}
	for _, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("%+v: accepted", f)
		}
	}
}

func TestFaultRollDeterministic(t *testing.T) {
	spec := FaultSpec{Seed: 11, FailProb: 0.3, StallProb: 0.3, OutlierProb: 0.3}
	for seed := int64(0); seed < 200; seed++ {
		a, b := spec.roll(seed), spec.roll(seed)
		if a != b {
			t.Fatalf("seed %d: roll not deterministic: %+v vs %+v", seed, a, b)
		}
	}
}

func TestFaultRollZeroSpecIsInert(t *testing.T) {
	var spec FaultSpec
	for seed := int64(0); seed < 50; seed++ {
		if plan := spec.roll(seed); plan != inertPlan() {
			t.Fatalf("zero spec rolled %+v", plan)
		}
	}
}

func TestFaultRollCoversAllKinds(t *testing.T) {
	spec := FaultSpec{Seed: 7, FailProb: 0.25, StallProb: 0.25, OutlierProb: 0.25}
	var fails, stalls, outliers, clean int
	for seed := int64(0); seed < 400; seed++ {
		plan := spec.roll(seed)
		switch {
		case plan.fail:
			fails++
		case plan.stallAt >= 0:
			stalls++
		case plan.factor != 1:
			outliers++
		default:
			clean++
		}
	}
	if fails == 0 || stalls == 0 || outliers == 0 || clean == 0 {
		t.Fatalf("fault mix degenerate: fail=%d stall=%d outlier=%d clean=%d",
			fails, stalls, outliers, clean)
	}
}

// TestFaultRollShardClassesCovered extends the mix check to the
// shard-granular classes: crash and straggler plans both occur, a crash
// plan carries an in-window op index, and a straggler plan carries the
// configured factor.
func TestFaultRollShardClassesCovered(t *testing.T) {
	spec := FaultSpec{Seed: 7, CrashProb: 0.3, StragglerProb: 0.3, StallWindowOps: 128, StragglerFactor: 6}
	var crashes, stragglers, clean int
	for seed := int64(0); seed < 400; seed++ {
		plan := spec.roll(seed)
		switch {
		case plan.crashAt >= 0:
			crashes++
			if plan.crashAt >= 128 {
				t.Fatalf("seed %d: crashAt %d outside the %d-op window", seed, plan.crashAt, 128)
			}
		case plan.straggler:
			stragglers++
			if plan.factor != 6 {
				t.Fatalf("seed %d: straggler factor %v, want 6", seed, plan.factor)
			}
		default:
			clean++
		}
	}
	if crashes == 0 || stragglers == 0 || clean == 0 {
		t.Fatalf("shard fault mix degenerate: crash=%d straggler=%d clean=%d",
			crashes, stragglers, clean)
	}
}

// TestFaultRollLegacySchedulePreserved pins the draw-order invariant:
// the shard-granular classes draw after the legacy three, so enabling
// them must not change which runs fail, stall or complete as outliers —
// existing seeded fault schedules stay bit-identical.
func TestFaultRollLegacySchedulePreserved(t *testing.T) {
	legacy := FaultSpec{Seed: 11, FailProb: 0.25, StallProb: 0.25, OutlierProb: 0.25}
	extended := legacy
	extended.CrashProb = 0.5
	extended.StragglerProb = 0.5
	for seed := int64(0); seed < 400; seed++ {
		a, b := legacy.roll(seed), extended.roll(seed)
		if a.fail || a.stallAt >= 0 || a.factor != 1 {
			if a != b {
				t.Fatalf("seed %d: legacy fate changed: %+v vs %+v", seed, a, b)
			}
		}
	}
}

func TestInjectedFailureIsTyped(t *testing.T) {
	cfg := DefaultConfig(RedisLike, 1)
	cfg.Fault = FaultSpec{Seed: 2, FailProb: 1}
	d := NewDeployment(cfg)
	err := d.InjectedFailure()
	var ferr *FaultError
	if !errors.As(err, &ferr) {
		t.Fatalf("err = %v (%T), want *FaultError", err, err)
	}
	if ferr.Kind != FaultFail || ferr.Seed != cfg.Seed {
		t.Fatalf("fault error = %+v", ferr)
	}
}

func TestOutlierFaultInflatesRuntime(t *testing.T) {
	w := faultWorkload(t)
	cfg := DefaultConfig(RedisLike, 21)
	healthy := runAll(t, cfg, w)

	cfg.Fault = FaultSpec{Seed: 3, OutlierProb: 1, OutlierFactor: 50}
	outlier := runAll(t, cfg, w)
	if outlier < 10*healthy {
		t.Fatalf("outlier run %v not inflated vs healthy %v", outlier, healthy)
	}
}

func TestStallFaultJumpsClock(t *testing.T) {
	w := faultWorkload(t)
	cfg := DefaultConfig(RedisLike, 22)
	healthy := runAll(t, cfg, w)

	cfg.Fault = FaultSpec{Seed: 4, StallProb: 1, Stall: 30 * simclock.Second, StallWindowOps: 256}
	stalled := runAll(t, cfg, w)
	if stalled < healthy+30*simclock.Second {
		t.Fatalf("stalled run %v missing the 30s jump (healthy %v)", stalled, healthy)
	}
}

func TestZeroFaultSpecBitIdentical(t *testing.T) {
	w := faultWorkload(t)
	cfg := DefaultConfig(DynamoLike, 23)
	base := runAll(t, cfg, w)
	cfg.Fault = FaultSpec{} // explicitly zero
	again := runAll(t, cfg, w)
	if base != again {
		t.Fatalf("zero fault spec changed the clock: %v vs %v", base, again)
	}
}

func TestFaultStringers(t *testing.T) {
	for _, k := range []FaultKind{FaultFail, FaultStall, FaultOutlier, FaultCrash, FaultStraggler, FaultKind(99)} {
		if k.String() == "" {
			t.Fatalf("empty String for %d", int(k))
		}
	}
	e := &FaultError{Kind: FaultStall, Seed: 9}
	if e.Error() == "" {
		t.Fatal("empty FaultError message")
	}
}
