package server

// In-package tests of the streamed-replay handshake (stream.go): the
// pause-accumulator sync in both directions, the mutation latch, and
// RetryBatchTable's re-price. End-to-end bit-identity of streamed vs
// in-memory replay lives in internal/client/stream_test.go; these pin
// the handshake's own contracts at the server layer.

import (
	"testing"

	"mnemo/internal/kvstore"
	"mnemo/internal/ycsb"
)

// TestStreamHandshakeMatchesPerOp is the soundness contract of
// interleaving a per-op frame into a batched replay: serving a prefix
// through the kernel, a Delete per-op under SyncEnginePauses, re-pricing
// with RetryBatchTable and serving the suffix through the refreshed
// table must reproduce the all-per-op replay of the same op sequence
// exactly — latencies and final clock.
func TestStreamHandshakeMatchesPerOp(t *testing.T) {
	for _, e := range Engines() {
		t.Run(e.String(), func(t *testing.T) {
			w := smallWorkload(t, ycsb.SizeFixed10KB, 0.9)
			pt := w.Packed()
			keys := append([]uint32(nil), pt.Keys...)
			kinds := append([]uint8(nil), pt.Kinds...)
			mid := len(keys) / 2
			delKey := keys[mid]
			// The suffix must not touch the dead record (the client never
			// batches a frame that does): remap its occurrences.
			for i := mid; i < len(keys); i++ {
				if keys[i] == delKey {
					keys[i] = (delKey + 1) % uint32(len(w.Dataset.Records))
				}
			}
			cfg := DefaultConfig(e, 23)

			// Reference: the whole sequence per-op.
			perOp := loadHalfFast(t, cfg, w)
			want := make([]float64, 0, len(keys)+1)
			for i := 0; i < mid; i++ {
				want = append(want, float64(perOp.DoIndex(int(keys[i]), kvstore.OpKind(kinds[i])).Latency))
			}
			want = append(want, float64(perOp.DoIndex(int(delKey), kvstore.Delete).Latency))
			for i := mid; i < len(keys); i++ {
				want = append(want, float64(perOp.DoIndex(int(keys[i]), kvstore.OpKind(kinds[i])).Latency))
			}

			// Handshake: batched prefix, per-op Delete, retried table,
			// batched suffix.
			d := loadHalfFast(t, cfg, w)
			tab := d.BatchTable()
			if tab == nil {
				t.Fatal("no batch table")
			}
			got := make([]float64, 0, len(keys)+1)
			serve := func(tb *ReplayTable, ks []uint32, ds []uint8) {
				lat := tb.Block()
				for blk := 0; blk < len(ks); blk += ReplayBlockOps {
					end := blk + ReplayBlockOps
					if end > len(ks) {
						end = len(ks)
					}
					served := tb.Serve(ks[blk:end], ds[blk:end], 0, lat)
					if served != end-blk {
						t.Fatalf("Serve stopped at %d/%d", served, end-blk)
					}
					for _, l := range lat[:served] {
						got = append(got, float64(l))
					}
				}
			}
			serve(tab, keys[:mid], kinds[:mid])

			tab.SyncEnginePauses()
			got = append(got, float64(d.DoIndex(int(delKey), kvstore.Delete).Latency))
			d.MarkMutated()
			dead := make([]bool, len(w.Dataset.Records))
			dead[delKey] = true
			tab2 := d.RetryBatchTable(dead)
			if tab2 == nil {
				t.Fatal("RetryBatchTable latched off after a plain delete")
			}
			serve(tab2, keys[mid:], kinds[mid:])

			if len(got) != len(want) {
				t.Fatalf("%d latencies, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("op %d: handshake latency %v != per-op %v", i, got[i], want[i])
				}
			}
			if d.Clock() != perOp.Clock() {
				t.Fatalf("clocks diverged: handshake %v, per-op %v", d.Clock(), perOp.Clock())
			}
		})
	}
}

// TestSyncPausesBothDirections pins the accumulator mirroring on the
// engine with real pause dynamics (DynamoLike / treekv): after batched
// frames the kernel's mirror leads the engines; SyncEnginePauses writes
// it into them, per-op requests then advance the engines past the
// mirror, and ResyncKernelPauses reads them back.
func TestSyncPausesBothDirections(t *testing.T) {
	w := smallWorkload(t, ycsb.SizeFixed10KB, 0.5)
	d := loadHalfFast(t, DefaultConfig(DynamoLike, 23), w)
	tab := d.BatchTable()
	if tab == nil {
		t.Fatal("no batch table")
	}
	serveAll(t, d, w.Packed())

	brs := make([]kvstore.BatchReplayer, len(d.instances))
	for i, inst := range d.instances {
		br, ok := inst.(kvstore.BatchReplayer)
		if !ok {
			t.Fatal("treekv instance is not a BatchReplayer")
		}
		brs[i] = br
	}
	diverged := false
	for i, br := range brs {
		if tab.pause[i].accum != br.ReplayPauses().Accum {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("batched replay never advanced the mirror past the engines; test is vacuous")
	}

	tab.SyncEnginePauses()
	for i, br := range brs {
		if got, want := br.ReplayPauses().Accum, tab.pause[i].accum; got != want {
			t.Fatalf("engine %d accum after SyncEnginePauses = %d, want mirror %d", i, got, want)
		}
	}

	// Per-op writes advance the engines' own accounting; the mirror is
	// stale until resynced.
	for i := 0; i < 64; i++ {
		d.DoIndex(i, kvstore.Write)
	}
	tab.ResyncKernelPauses()
	for i, br := range brs {
		if got, want := tab.pause[i].accum, br.ReplayPauses().Accum; got != want {
			t.Fatalf("mirror %d after ResyncKernelPauses = %d, want engine %d", i, got, want)
		}
	}
}

func TestMarkMutatedBlocksResetRun(t *testing.T) {
	w := smallWorkload(t, ycsb.SizeFixed1KB, 0.9)
	d := loadHalfFast(t, DefaultConfig(RedisLike, 7), w)
	if d.BatchTable() == nil {
		t.Fatal("no batch table")
	}
	if !d.ResetRun(1) {
		t.Fatal("ResetRun refused on a pristine deployment")
	}
	d.MarkMutated()
	if d.ResetRun(2) {
		t.Error("ResetRun succeeded after MarkMutated")
	}
}

func TestRetryBatchTableUnavailable(t *testing.T) {
	w := smallWorkload(t, ycsb.SizeFixed1KB, 0.9)

	cfg := DefaultConfig(RedisLike, 5)
	cfg.DisableBatchReplay = true
	if d := loadHalfFast(t, cfg, w); d.RetryBatchTable(nil) != nil {
		t.Error("RetryBatchTable built a table with batching disabled")
	}

	if NewDeployment(DefaultConfig(RedisLike, 5)).RetryBatchTable(nil) != nil {
		t.Error("RetryBatchTable built a table on an unloaded deployment")
	}

	// Without a prior BatchTable call the retry builds the table from
	// scratch; it must serve like the lazily built one.
	d := loadHalfFast(t, DefaultConfig(RedisLike, 5), w)
	tab := d.RetryBatchTable(nil)
	if tab == nil {
		t.Fatal("RetryBatchTable did not build a fresh table")
	}
	if d.BatchTable() != tab {
		t.Error("BatchTable does not return the retried table")
	}
}
