package server

import (
	"mnemo/internal/kvstore"
	"mnemo/internal/memsim"
	"mnemo/internal/simclock"
	"mnemo/internal/ycsb"
)

// Online migration (DESIGN.md §15). The static pipeline freezes one
// placement at Load; adaptive tiering revises it mid-run. The contract
// lives here — not in core — because the client's replay loop consumes
// it (core imports client, so core cannot be imported back): an
// EpochSource begins a run by handing out an EpochObserver, the client
// feeds the observer each epoch's access counts, and the observer
// answers with the Moves the deployment should apply before the next
// epoch. Migration is not free: ApplyMoves charges every migrated byte
// to the simulated clock at Config.MigrationCostPerByte, so an adaptive
// policy only wins when its placement gains outrun its copy traffic.

// Move asks for one dataset record to be served from a different tier.
type Move struct {
	Index int         // dataset record index
	To    memsim.Tier // destination tier
}

// EpochStats is what the replay loop observed during one epoch: per-record
// read and write counts (indexed by dataset record index) plus the
// placement in force while they were collected. The slices are owned by
// the replay loop and reused between epochs — observers must copy
// anything they keep.
type EpochStats struct {
	Epoch  int // 0-based epoch index
	Ops    int // requests served this epoch
	Reads  []int32
	Writes []int32
	Tiers  []memsim.Tier // current placement, indexed by record
}

// EpochObserver is one run's adaptive state: it receives each epoch's
// access stats and answers with the moves to apply before the next
// epoch. Returning nil keeps the placement. Observers are single-run,
// single-goroutine objects; a fresh one is issued per run by Begin.
type EpochObserver interface {
	Observe(EpochStats) []Move
}

// EpochSource starts adaptive runs. Begin is called once per measurement
// run with the workload about to be replayed and returns that run's
// observer; all mutable adaptive state must live on the observer, never
// on the source, so one source can serve many (even concurrent) runs.
type EpochSource interface {
	Begin(w *ycsb.Workload) (EpochObserver, error)
}

// MigrationResult accounts for one ApplyMoves call.
type MigrationResult struct {
	Moves         int     // records actually migrated
	Bytes         int64   // payload bytes copied between tiers
	CostNs        float64 // simulated time charged for the copy traffic
	SkippedBudget int     // moves dropped by Config.MigrationBudget
	SkippedFull   int     // moves dropped because the destination tier was full
}

// ApplyMoves migrates records between the two instances mid-run,
// advancing the simulated clock by Bytes × Config.MigrationCostPerByte
// nanoseconds. Demotions run before promotions so a swap never
// transiently overflows FastMem. No-op moves (record already on the
// requested tier) are free; moves past Config.MigrationBudget bytes per
// call or into a full tier are dropped and counted.
//
// The structural work — DelID/PutID against the quiesced engines — is
// untimed, exactly like Load: the explicit per-byte charge is the whole
// cost model for migration. LLC residency is left untouched; a migrated
// record keeps its cache state, since the copy moves it between memory
// nodes, not out of the cache.
//
// A deployment that has migrated is permanently dirty for snapshot
// reuse: its store contents no longer match the post-Load snapshot, so
// ResetRun refuses and callers must rebuild fresh for the next run.
func (d *Deployment) ApplyMoves(moves []Move) MigrationResult {
	var res MigrationResult
	if len(moves) == 0 {
		return res
	}
	for pass := 0; pass < 2; pass++ {
		for _, m := range moves {
			if (pass == 0) != (m.To == memsim.Slow) {
				continue
			}
			if m.Index < 0 || m.Index >= len(d.records) || d.tiers[m.Index] == m.To {
				continue
			}
			rec := &d.records[m.Index]
			size := int64(rec.Size)
			if d.cfg.MigrationBudget > 0 && res.Bytes+size > d.cfg.MigrationBudget {
				res.SkippedBudget++
				continue
			}
			if err := d.machine.Node(m.To).Alloc(size); err != nil {
				res.SkippedFull++
				continue
			}
			from := d.tiers[m.Index]
			d.instances[from].DelID(rec.Key, rec.ID)
			d.instances[from].TakePauseNs() // migration stalls are untimed, like Load
			d.machine.Node(from).Free(size)
			d.instances[m.To].PutID(rec.Key, rec.ID, kvstore.Sized(rec.Size))
			d.instances[m.To].TakePauseNs()
			d.tiers[m.Index] = m.To
			res.Moves++
			res.Bytes += size
		}
	}
	d.migrated = d.migrated || res.Moves > 0
	if res.Moves > 0 {
		// Settle deferred structural work (rehash steps, node splits) the
		// migration writes queued, so post-migration traces are static
		// again — the same discipline Load applies.
		for _, inst := range d.instances {
			if br, ok := inst.(kvstore.BatchReplayer); ok {
				br.Quiesce()
				inst.TakePauseNs()
			}
		}
		d.patchTable()
	}
	res.CostNs = float64(res.Bytes) * d.cfg.MigrationCostPerByte
	if res.CostNs > 0 {
		d.clock.Advance(simclock.FromNanos(res.CostNs))
	}
	return res
}

// patchTable re-prices the batched-replay cost table in place after a
// migration, keeping the kernel hot across epochs instead of rebuilding
// the whole table: the table identity, its LLC/noise/clock state and the
// latency scratch all survive, only the cost rows are refreshed. Every
// row is re-probed, not just the moved ones — inserting or removing a
// record reshapes an engine's internal structure (hash chains, tree
// nodes), which can change the static trace of records that never moved,
// and the per-op reference path would price those live. If any re-probe
// fails (an engine stopped promising static traces) the table is
// invalidated so the next BatchTable call rebuilds or falls back to the
// per-op path.
func (d *Deployment) patchTable() {
	t := d.table
	if t == nil {
		return
	}
	var brs [2]kvstore.BatchReplayer
	for i, inst := range d.instances {
		br, ok := inst.(kvstore.BatchReplayer)
		if !ok || !br.ReplayReady() {
			d.table, d.tableBuilt = nil, false
			return
		}
		brs[i] = br
	}
	for idx := range d.records {
		if !d.fillCost(t, idx, brs) {
			d.table, d.tableBuilt = nil, false
			return
		}
	}
	// Migration writes advanced the engines' GC accounting; re-snapshot
	// the kernel's mirrors so the next block charges from the engines'
	// true post-migration accumulators.
	for i, br := range brs {
		pm := br.ReplayPauses()
		t.pause[i] = pauseState{budget: pm.BudgetBytes, perOp: pm.PerOpBytes,
			pauseNs: pm.PauseNs, accum: pm.Accum, reset: pm.Accum}
	}
}

// Migrated reports whether ApplyMoves has changed this deployment's
// placement since Load — in which case the post-Load snapshot is stale
// and ResetRun refuses to rewind.
func (d *Deployment) Migrated() bool { return d.migrated }

// RecordTiers exposes the live per-record placement (indexed by dataset
// record index). The returned slice is the deployment's own serving
// table — callers must not modify it.
func (d *Deployment) RecordTiers() []memsim.Tier { return d.tiers }

// AdaptiveSpec reports the configured epoch source and epoch length.
// Adaptive replay is active only when both are set: a nil source or
// EpochOps ≤ 0 keeps the legacy static path bit-exactly.
func (d *Deployment) AdaptiveSpec() (EpochSource, int) { return d.cfg.Adaptive, d.cfg.EpochOps }

// MigrationCostPerByte reports the configured per-byte migration charge.
func (d *Deployment) MigrationCostPerByte() float64 { return d.cfg.MigrationCostPerByte }
