package server

import (
	"testing"

	"mnemo/internal/kvstore"
	"mnemo/internal/memsim"
	"mnemo/internal/ycsb"
)

func smallWorkload(t *testing.T, sizes ycsb.SizeKind, readRatio float64) *ycsb.Workload {
	t.Helper()
	// 2000 keys keep the working set well above the 12 MB LLC for the
	// thumbnail sizes, as the paper's 10 000-key datasets do.
	return ycsb.MustGenerate(ycsb.Spec{
		Name: "test", Keys: 2000, Requests: 6000,
		Dist:      ycsb.DistSpec{Kind: ycsb.Uniform},
		ReadRatio: readRatio, Sizes: sizes, Seed: 1,
	})
}

func TestEngineStringAndLookup(t *testing.T) {
	for _, e := range Engines() {
		got, ok := EngineByName(e.String())
		if !ok || got != e {
			t.Errorf("round trip failed for %v", e)
		}
	}
	if _, ok := EngineByName("bogus"); ok {
		t.Error("bogus engine resolved")
	}
	if Engine(99).String() == "" {
		t.Error("unknown engine should format")
	}
}

func TestEngineProfilesDiffer(t *testing.T) {
	r, m, d := RedisLike.Profile(), MemcachedLike.Profile(), DynamoLike.Profile()
	if m.MLP <= r.MLP {
		t.Error("memcached-like must overlap more memory stalls than redis-like")
	}
	if d.ReadAmplification <= r.ReadAmplification {
		t.Error("dynamo-like must amplify reads more than redis-like")
	}
}

func TestPlacementRouting(t *testing.T) {
	p := FastSet([]string{"a", "b"})
	if p.TierOf("a") != memsim.Fast || p.TierOf("z") != memsim.Slow {
		t.Fatal("FastSet routing wrong")
	}
	if p.FastKeyCount() != 2 {
		t.Fatalf("FastKeyCount = %d", p.FastKeyCount())
	}
	if AllFast().TierOf("x") != memsim.Fast || AllSlow().TierOf("x") != memsim.Slow {
		t.Fatal("baseline placements wrong")
	}
	if AllFast().Default() != memsim.Fast {
		t.Fatal("Default accessor wrong")
	}
	if AllSlow().FastKeyCount() != 0 {
		t.Fatal("AllSlow has fast overrides")
	}
}

func TestLoadRoutesDataToTiers(t *testing.T) {
	w := smallWorkload(t, ycsb.SizeFixed1KB, 1)
	d := NewDeployment(DefaultConfig(RedisLike, 1))
	fastKeys := []string{w.Dataset.Records[0].Key, w.Dataset.Records[1].Key}
	if err := d.Load(w.Dataset, FastSet(fastKeys)); err != nil {
		t.Fatal(err)
	}
	if got := d.Instance(memsim.Fast).Len(); got != 2 {
		t.Fatalf("fast instance has %d keys, want 2", got)
	}
	if got := d.Instance(memsim.Slow).Len(); got != len(w.Dataset.Records)-2 {
		t.Fatalf("slow instance has %d keys", got)
	}
	if d.Machine().Node(memsim.Fast).Used() != 2*1024 {
		t.Fatalf("fast node used %d bytes", d.Machine().Node(memsim.Fast).Used())
	}
}

func TestLoadRespectsCapacity(t *testing.T) {
	w := smallWorkload(t, ycsb.SizeFixed1KB, 1)
	cfg := DefaultConfig(RedisLike, 1)
	cfg.Machine.FastCapacity = 512 // too small for even one record
	d := NewDeployment(cfg)
	if err := d.Load(w.Dataset, AllFast()); err == nil {
		t.Fatal("overflowing load accepted")
	}
}

func TestDoAdvancesClock(t *testing.T) {
	w := smallWorkload(t, ycsb.SizeFixed10KB, 1)
	d := NewDeployment(DefaultConfig(RedisLike, 1))
	if err := d.Load(w.Dataset, AllFast()); err != nil {
		t.Fatal(err)
	}
	before := d.Clock()
	res := d.Do(w.Dataset.Records[0].Key, kvstore.Read, 0)
	if !res.Found {
		t.Fatal("loaded key not found")
	}
	if res.Latency <= 0 || d.Clock() != before+res.Latency {
		t.Fatal("clock did not advance by latency")
	}
	if res.Tier != memsim.Fast {
		t.Fatal("wrong tier")
	}
}

func TestDoUnknownKindPanics(t *testing.T) {
	d := NewDeployment(DefaultConfig(RedisLike, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Do("k", kvstore.OpKind(9), 0)
}

func TestSlowTierSlowerForLargeRecords(t *testing.T) {
	w := smallWorkload(t, ycsb.SizeFixed100KB, 1)
	run := func(p Placement) float64 {
		cfg := DefaultConfig(RedisLike, 1)
		cfg.NoiseSigma = 0 // deterministic comparison
		d := NewDeployment(cfg)
		if err := d.Load(w.Dataset, p); err != nil {
			t.Fatal(err)
		}
		var total float64
		for _, op := range w.Ops {
			rec := w.Dataset.Records[op.Key]
			total += float64(d.Do(rec.Key, op.Kind, rec.Size).Latency)
		}
		return total
	}
	fast, slow := run(AllFast()), run(AllSlow())
	ratio := slow / fast
	if ratio < 1.25 || ratio > 1.65 {
		t.Fatalf("redis-like 100KB slow/fast runtime ratio = %.2f, want ≈1.4 (Fig 5a)", ratio)
	}
}

func TestSensitivityOrderingAcrossEngines(t *testing.T) {
	// Fig 8b: DynamoDB most sensitive to SlowMem, Memcached least.
	w := smallWorkload(t, ycsb.SizeFixed100KB, 1)
	ratioFor := func(e Engine) float64 {
		run := func(p Placement) float64 {
			cfg := DefaultConfig(e, 1)
			cfg.NoiseSigma = 0
			d := NewDeployment(cfg)
			if err := d.Load(w.Dataset, p); err != nil {
				t.Fatal(err)
			}
			var total float64
			for _, op := range w.Ops {
				rec := w.Dataset.Records[op.Key]
				total += float64(d.Do(rec.Key, op.Kind, rec.Size).Latency)
			}
			return total
		}
		return run(AllSlow()) / run(AllFast())
	}
	redis, memcached, dynamo := ratioFor(RedisLike), ratioFor(MemcachedLike), ratioFor(DynamoLike)
	if !(dynamo > redis && redis > memcached) {
		t.Fatalf("sensitivity ordering broken: dynamo %.2f, redis %.2f, memcached %.2f",
			dynamo, redis, memcached)
	}
	if memcached > 1.10 {
		t.Errorf("memcached-like slowdown %.3f; paper says barely influenced (<10%%)", memcached)
	}
	if dynamo < 2.0 {
		t.Errorf("dynamo-like slowdown %.2f; paper says severely impacted", dynamo)
	}
}

func TestWritesLessAffectedThanReads(t *testing.T) {
	// Fig 5b: write-heavy workloads are less impacted by SlowMem.
	ratioFor := func(readRatio float64) float64 {
		w := smallWorkload(t, ycsb.SizeFixed100KB, readRatio)
		run := func(p Placement) float64 {
			cfg := DefaultConfig(RedisLike, 1)
			cfg.NoiseSigma = 0
			d := NewDeployment(cfg)
			if err := d.Load(w.Dataset, p); err != nil {
				t.Fatal(err)
			}
			var total float64
			for _, op := range w.Ops {
				rec := w.Dataset.Records[op.Key]
				total += float64(d.Do(rec.Key, op.Kind, rec.Size).Latency)
			}
			return total
		}
		return run(AllSlow()) / run(AllFast())
	}
	readonly, writeheavy := ratioFor(1.0), ratioFor(0.0)
	if writeheavy >= readonly {
		t.Fatalf("write-heavy ratio %.3f not below read-only %.3f", writeheavy, readonly)
	}
}

func TestSmallRecordsLessAffected(t *testing.T) {
	// Fig 5c: the knee is bigger for large records.
	ratioFor := func(sizes ycsb.SizeKind) float64 {
		w := smallWorkload(t, sizes, 1)
		run := func(p Placement) float64 {
			cfg := DefaultConfig(RedisLike, 1)
			cfg.NoiseSigma = 0
			cfg.Machine.LLCBytes = 0 // isolate the pure size effect
			d := NewDeployment(cfg)
			if err := d.Load(w.Dataset, p); err != nil {
				t.Fatal(err)
			}
			var total float64
			for _, op := range w.Ops {
				rec := w.Dataset.Records[op.Key]
				total += float64(d.Do(rec.Key, op.Kind, rec.Size).Latency)
			}
			return total
		}
		return run(AllSlow()) / run(AllFast())
	}
	big, small := ratioFor(ycsb.SizeFixed100KB), ratioFor(ycsb.SizeFixed1KB)
	if small >= big {
		t.Fatalf("1KB ratio %.3f not below 100KB ratio %.3f", small, big)
	}
}

func TestLLCAbsorbsHotKeys(t *testing.T) {
	// A single hot small record should be cache-resident after first touch.
	w := smallWorkload(t, ycsb.SizeFixed1KB, 1)
	cfg := DefaultConfig(RedisLike, 1)
	cfg.NoiseSigma = 0
	d := NewDeployment(cfg)
	if err := d.Load(w.Dataset, AllSlow()); err != nil {
		t.Fatal(err)
	}
	key := w.Dataset.Records[0].Key
	first := d.Do(key, kvstore.Read, 0)
	second := d.Do(key, kvstore.Read, 0)
	if first.Hit {
		t.Fatal("cold access hit the LLC")
	}
	if !second.Hit {
		t.Fatal("hot access missed the LLC")
	}
	if second.Latency >= first.Latency {
		t.Fatal("cache hit not faster than miss")
	}
}

func TestNoiseZeroIsDeterministic(t *testing.T) {
	w := smallWorkload(t, ycsb.SizeFixed10KB, 0.5)
	run := func() int64 {
		cfg := DefaultConfig(DynamoLike, 7)
		cfg.NoiseSigma = 0
		d := NewDeployment(cfg)
		if err := d.Load(w.Dataset, AllSlow()); err != nil {
			t.Fatal(err)
		}
		for _, op := range w.Ops {
			rec := w.Dataset.Records[op.Key]
			d.Do(rec.Key, op.Kind, rec.Size)
		}
		return d.Clock().Nanoseconds()
	}
	if run() != run() {
		t.Fatal("noise-free runs differ")
	}
}

func TestNoiseFactorProperties(t *testing.T) {
	n := NewNoise(0.05, 1)
	sum := 0.0
	for i := 0; i < 20000; i++ {
		f := n.Factor()
		if f <= 0 {
			t.Fatal("non-positive noise factor")
		}
		sum += f
	}
	if mean := sum / 20000; mean < 0.99 || mean > 1.01 {
		t.Fatalf("noise mean %.4f too biased", mean)
	}
	if NewNoise(0, 1).Factor() != 1 {
		t.Fatal("zero-sigma noise not unity")
	}
	var nilNoise *Noise
	if nilNoise.Factor() != 1 || nilNoise.Sigma() != 0 {
		t.Fatal("nil noise not neutral")
	}
	if NewNoise(0.05, 1).Sigma() != 0.05 {
		t.Fatal("sigma accessor wrong")
	}
}

func TestNoisePanicsOnNegativeSigma(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewNoise(-0.1, 1)
}
