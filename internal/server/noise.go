package server

import (
	"math"
	"math/rand"
)

// Noise injects multiplicative measurement noise into per-request service
// times, standing in for the run-to-run variability of the paper's real
// testbed ("reported values are the mean of multiple experiment runs").
// A lognormal factor exp(σ·N(0,1)) keeps service times positive and
// averages to ≈1 for small σ, so aggregate runtimes stay unbiased while
// individual runs differ — this is what makes the Fig 8a error
// distribution non-degenerate.
type Noise struct {
	sigma float64
	rng   *rand.Rand
}

// DefaultNoiseSigma is the per-request lognormal σ used by experiments.
const DefaultNoiseSigma = 0.02

// NewNoise creates a noise source. sigma = 0 disables noise entirely.
func NewNoise(sigma float64, seed int64) *Noise {
	if sigma < 0 {
		panic("server: negative noise sigma")
	}
	return &Noise{sigma: sigma, rng: rand.New(rand.NewSource(seed))}
}

// Factor returns the next multiplicative noise factor.
func (n *Noise) Factor() float64 {
	if n == nil || n.sigma == 0 {
		return 1
	}
	return math.Exp(n.sigma * n.rng.NormFloat64())
}

// Sigma reports the configured σ.
func (n *Noise) Sigma() float64 {
	if n == nil {
		return 0
	}
	return n.sigma
}
