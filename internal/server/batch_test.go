package server

// In-package tests of the batched replay kernel (batch.go): table
// availability, Serve vs the per-op DoIndex path, the maxClock bound,
// and the ResetRun snapshot/reset. End-to-end bit-identity across
// engines, placements, faults and timeouts lives in
// internal/client/batch_test.go; these pin the kernel's own contracts.

import (
	"testing"

	"mnemo/internal/obs"
	"mnemo/internal/simclock"
	"mnemo/internal/ycsb"
)

// loadHalfFast loads the workload with the first half of the dataset in
// FastMem and returns the deployment.
func loadHalfFast(t *testing.T, cfg Config, w *ycsb.Workload) *Deployment {
	t.Helper()
	n := len(w.Dataset.Records)
	idx := make([]int, n/2)
	for i := range idx {
		idx[i] = i
	}
	d := NewDeployment(cfg)
	if err := d.Load(w.Dataset, FastIndices(idx, n)); err != nil {
		t.Fatal(err)
	}
	return d
}

// serveAll drives the whole packed trace through the kernel, returning
// every request latency in order.
func serveAll(t *testing.T, d *Deployment, pt *ycsb.PackedTrace) []simclock.Duration {
	t.Helper()
	tab := d.BatchTable()
	if tab == nil {
		t.Fatal("no batch table on a loaded default-config deployment")
	}
	out := make([]simclock.Duration, 0, len(pt.Keys))
	lat := tab.Block()
	for blk := 0; blk < len(pt.Keys); blk += ReplayBlockOps {
		end := blk + ReplayBlockOps
		if end > len(pt.Keys) {
			end = len(pt.Keys)
		}
		served := tab.Serve(pt.Keys[blk:end], pt.Kinds[blk:end], 0, lat)
		if served != end-blk {
			t.Fatalf("Serve stopped at %d/%d with no clock bound", served, end-blk)
		}
		out = append(out, lat[:served]...)
	}
	return out
}

// TestServeMatchesDoIndex replays the same trace through the per-op
// DoIndex path and the batched kernel on identically-seeded deployments
// and requires identical per-request latencies and final clocks — the
// kernel removes interface calls, not behaviour.
func TestServeMatchesDoIndex(t *testing.T) {
	for _, e := range Engines() {
		t.Run(e.String(), func(t *testing.T) {
			w := smallWorkload(t, ycsb.SizeFixed10KB, 0.9)
			pt := w.Packed()
			if !pt.Batchable() {
				t.Fatal("read/write trace not batchable")
			}
			cfg := DefaultConfig(e, 23)

			perOp := loadHalfFast(t, cfg, w)
			want := make([]simclock.Duration, len(w.Ops))
			for i, op := range w.Ops {
				want[i] = perOp.DoIndex(op.Key, op.Kind).Latency
			}

			batched := loadHalfFast(t, cfg, w)
			got := serveAll(t, batched, pt)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("op %d: batched latency %v != per-op %v", i, got[i], want[i])
				}
			}
			if perOp.Clock() != batched.Clock() {
				t.Fatalf("clocks diverged: per-op %v, batched %v", perOp.Clock(), batched.Clock())
			}
		})
	}
}

func TestBatchTableUnavailable(t *testing.T) {
	w := smallWorkload(t, ycsb.SizeFixed1KB, 1.0)

	cfg := DefaultConfig(RedisLike, 5)
	cfg.DisableBatchReplay = true
	d := loadHalfFast(t, cfg, w)
	if d.BatchTable() != nil {
		t.Error("DisableBatchReplay still built a table")
	}
	if d.BatchTable() != nil { // latched probe
		t.Error("second probe built a table despite the latch")
	}
	if d.ResetRun(99) {
		t.Error("ResetRun succeeded without a batch table")
	}

	if NewDeployment(DefaultConfig(RedisLike, 5)).BatchTable() != nil {
		t.Error("unloaded deployment built a table")
	}
}

// TestBatchTableRebuiltAfterLoad checks Load invalidates the latched
// table: the old table prices the old dataset and must not survive.
func TestBatchTableRebuiltAfterLoad(t *testing.T) {
	w := smallWorkload(t, ycsb.SizeFixed1KB, 1.0)
	cfg := DefaultConfig(RedisLike, 5)
	d := loadHalfFast(t, cfg, w)
	first := d.BatchTable()
	if first == nil {
		t.Fatal("no table after first load")
	}
	n := len(w.Dataset.Records)
	if err := d.Load(w.Dataset, FastIndices(nil, n)); err != nil {
		t.Fatal(err)
	}
	second := d.BatchTable()
	if second == nil || second == first {
		t.Fatalf("table not rebuilt after re-Load (first %p, second %p)", first, second)
	}
}

// TestServeMaxClock pins the budget contract: the request that crosses
// maxClock is still served and counted, matching the per-op path's
// post-op check.
func TestServeMaxClock(t *testing.T) {
	w := smallWorkload(t, ycsb.SizeFixed100KB, 0.9)
	d := loadHalfFast(t, DefaultConfig(RedisLike, 7), w)
	tab := d.BatchTable()
	pt := w.Packed()

	lat := tab.Block()
	// Serve one probe block unbounded to get a per-op cost scale, then
	// bound the next block to ~10 ops' worth of simulated time.
	served := tab.Serve(pt.Keys[:64], pt.Kinds[:64], 0, lat)
	if served != 64 {
		t.Fatalf("unbounded probe served %d/64", served)
	}
	perOp := d.Clock() / 64
	maxClock := d.Clock() + 10*perOp

	block := len(pt.Keys) - 64
	if block > ReplayBlockOps {
		block = ReplayBlockOps
	}
	served = tab.Serve(pt.Keys[64:64+block], pt.Kinds[64:64+block], maxClock, lat[:block])
	if served <= 0 || served >= block {
		t.Fatalf("bounded Serve served %d/%d", served, block)
	}
	if d.Clock() <= maxClock {
		t.Fatal("Serve stopped before crossing the bound")
	}
	// The clock crossed maxClock on exactly the last served op: before
	// it, the clock was within bounds.
	if prev := d.Clock() - lat[served-1]; prev > maxClock {
		t.Fatalf("Serve overshot: clock before last op %v > bound %v", prev, maxClock)
	}
}

// TestResetRunMatchesFreshLoad is the snapshot/reset contract at the
// server layer: a reset deployment replays bit-identically to a freshly
// populated one under the same seed.
func TestResetRunMatchesFreshLoad(t *testing.T) {
	for _, e := range Engines() {
		t.Run(e.String(), func(t *testing.T) {
			w := smallWorkload(t, ycsb.SizeFixed10KB, 0.9)
			pt := w.Packed()

			reused := loadHalfFast(t, DefaultConfig(e, 23), w)
			serveAll(t, reused, pt) // dirty the clock, LLC, noise, pauses
			if !reused.ResetRun(77) {
				t.Fatal("ResetRun failed on a batch-capable deployment")
			}
			got := serveAll(t, reused, pt)

			fresh := loadHalfFast(t, DefaultConfig(e, 77), w)
			want := serveAll(t, fresh, pt)

			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("op %d: reset latency %v != fresh %v", i, got[i], want[i])
				}
			}
			if reused.Clock() != fresh.Clock() {
				t.Fatalf("clocks diverged: reset %v, fresh %v", reused.Clock(), fresh.Clock())
			}
			rl, fl := reused.machine.LLC(), fresh.machine.LLC()
			if rl.Hits() != fl.Hits() || rl.Misses() != fl.Misses() {
				t.Fatalf("LLC stats diverged: reset %d/%d, fresh %d/%d",
					rl.Hits(), rl.Misses(), fl.Hits(), fl.Misses())
			}
		})
	}
}

// TestResetRunTelemetryParity checks a reset counts and journals like a
// fresh deployment: the deployments counter advances once per reset.
func TestResetRunTelemetryParity(t *testing.T) {
	w := smallWorkload(t, ycsb.SizeFixed1KB, 0.9)
	sink := obs.NewSink()
	cfg := DefaultConfig(RedisLike, 23)
	cfg.Obs = sink
	d := loadHalfFast(t, cfg, w)

	name := obs.Name("mnemo_server_deployments_total", "engine", RedisLike.String())
	if got := sink.Counter(name).Value(); got != 1 {
		t.Fatalf("deployments counter after load = %d, want 1", got)
	}
	serveAll(t, d, w.Packed())
	d.FlushObs()
	if !d.ResetRun(31) {
		t.Fatal("ResetRun failed")
	}
	if got := sink.Counter(name).Value(); got != 2 {
		t.Fatalf("deployments counter after reset = %d, want 2", got)
	}
	// Flush cursors rewound: the next flush re-publishes from zero, so
	// a second identical run doubles the op counter rather than
	// publishing an empty delta.
	serveAll(t, d, w.Packed())
	d.FlushObs()
	ops := sink.Counter(obs.Name("mnemo_server_ops_total", "engine", RedisLike.String())).Value()
	if ops != int64(2*len(w.Ops)) {
		t.Fatalf("ops counter after two flushed runs = %d, want %d", ops, 2*len(w.Ops))
	}
}
