package server

// Tests and microbenchmarks for the index-addressed request path:
// FastIndices placements, DoIndex vs the string-keyed Do, and the per-op
// cost of both (BenchmarkDeploymentDo).

import (
	"testing"

	"mnemo/internal/memsim"
	"mnemo/internal/ycsb"
)

func TestFastIndicesRouting(t *testing.T) {
	p := FastIndices([]int{0, 2}, 4)
	if !p.Dense() {
		t.Fatal("FastIndices placement not dense")
	}
	want := []memsim.Tier{memsim.Fast, memsim.Slow, memsim.Fast, memsim.Slow}
	for i, w := range want {
		if got := p.TierOfIndex(i); got != w {
			t.Fatalf("TierOfIndex(%d) = %v, want %v", i, got, w)
		}
	}
	if p.FastKeyCount() != 2 {
		t.Fatalf("FastKeyCount = %d, want 2", p.FastKeyCount())
	}
	if p.Default() != memsim.Slow {
		t.Fatal("dense placement default must be Slow")
	}
	// String lookups carry no routing information on a dense placement.
	if p.TierOf("whatever") != memsim.Slow {
		t.Fatal("TierOf on dense placement must fall back to the default")
	}
	// Out-of-range indices on a loaded table fall back to the default.
	if p.TierOfIndex(99) != memsim.Slow {
		t.Fatal("out-of-range TierOfIndex must fall back to the default")
	}
}

func TestFastIndicesRejectsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range index accepted")
		}
	}()
	FastIndices([]int{4}, 4)
}

// TestDoIndexMatchesDo drives two identically-seeded deployments through
// the same trace — one via the string-keyed Do on a FastSet placement,
// one via DoIndex on the equivalent FastIndices placement — and requires
// identical results per request and identical final clocks. This is the
// fast path's correctness contract: it removes string work, not
// behaviour.
func TestDoIndexMatchesDo(t *testing.T) {
	w := smallWorkload(t, ycsb.SizeFixed10KB, 0.9)
	recs := w.Dataset.Records
	half := len(recs) / 2
	fastKeys := make([]string, half)
	fastIdx := make([]int, half)
	for i := 0; i < half; i++ {
		fastKeys[i] = recs[i].Key
		fastIdx[i] = i
	}

	cfg := DefaultConfig(RedisLike, 23)
	byKey := NewDeployment(cfg)
	if err := byKey.Load(w.Dataset, FastSet(fastKeys)); err != nil {
		t.Fatal(err)
	}
	byIndex := NewDeployment(cfg)
	if err := byIndex.Load(w.Dataset, FastIndices(fastIdx, len(recs))); err != nil {
		t.Fatal(err)
	}

	for n, op := range w.Ops {
		rec := recs[op.Key]
		rk := byKey.Do(rec.Key, op.Kind, rec.Size)
		ri := byIndex.DoIndex(op.Key, op.Kind)
		if rk != ri {
			t.Fatalf("op %d (%s %q): Do %+v != DoIndex %+v", n, op.Kind, rec.Key, rk, ri)
		}
	}
	if byKey.Clock() != byIndex.Clock() {
		t.Fatalf("clocks diverged: %v != %v", byKey.Clock(), byIndex.Clock())
	}
}

// TestLoadResolvesDensePlacement checks that Load routes records through
// a dense placement's index table (TierOf is useless on a dense
// placement, so this exercises tierForRecord).
func TestLoadResolvesDensePlacement(t *testing.T) {
	w := smallWorkload(t, ycsb.SizeFixed1KB, 1.0)
	n := len(w.Dataset.Records)
	d := NewDeployment(DefaultConfig(RedisLike, 3))
	if err := d.Load(w.Dataset, FastIndices([]int{0, 1}, n)); err != nil {
		t.Fatal(err)
	}
	if got := d.Instance(memsim.Fast).Len(); got != 2 {
		t.Fatalf("fast instance holds %d records, want 2", got)
	}
	if got := d.Instance(memsim.Slow).Len(); got != n-2 {
		t.Fatalf("slow instance holds %d records, want %d", got, n-2)
	}
}

// BenchmarkDeploymentDo compares the per-request cost of the string-keyed
// path (placement map lookup + key re-hash inside the engine) against the
// index-addressed path (two slice loads + cached KeyID).
func BenchmarkDeploymentDo(b *testing.B) {
	w := ycsb.MustGenerate(ycsb.Spec{
		Name: "bench", Keys: 1000, Requests: 10000,
		Dist:      ycsb.DistSpec{Kind: ycsb.Hotspot, HotSetFraction: 0.2, HotOpnFraction: 0.9},
		ReadRatio: 0.95, Sizes: ycsb.SizeFixed1KB, Seed: 42,
	})
	recs := w.Dataset.Records
	half := len(recs) / 2
	fastKeys := make([]string, half)
	fastIdx := make([]int, half)
	for i := 0; i < half; i++ {
		fastKeys[i] = recs[i].Key
		fastIdx[i] = i
	}
	load := func(b *testing.B, p Placement) *Deployment {
		b.Helper()
		d := NewDeployment(DefaultConfig(RedisLike, 42))
		if err := d.Load(w.Dataset, p); err != nil {
			b.Fatal(err)
		}
		return d
	}

	b.Run("String", func(b *testing.B) {
		d := load(b, FastSet(fastKeys))
		ops := w.Ops
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			op := ops[i%len(ops)]
			rec := recs[op.Key]
			d.Do(rec.Key, op.Kind, rec.Size)
		}
	})
	b.Run("Index", func(b *testing.B) {
		d := load(b, FastIndices(fastIdx, len(recs)))
		ops := w.Ops
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			op := ops[i%len(ops)]
			d.DoIndex(op.Key, op.Kind)
		}
	})
}
