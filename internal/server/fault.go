package server

import (
	"fmt"
	"math/rand"

	"mnemo/internal/simclock"
)

// FaultSpec configures deterministic fault injection into measurement
// runs — the emulated-testbed analogue of a flaky physical machine,
// where a run can die outright, stall, or return garbage numbers. Each
// deployment rolls its fate once, from a stream seeded by the spec's
// Seed mixed with the run's own Config.Seed, so a given (spec, run)
// pair always fails the same way: fault schedules are replayable, and
// the zero-valued spec injects nothing and perturbs nothing (the noise
// RNG stream is untouched, preserving bit-identical results).
//
// At most one fault fires per run, decided in precedence order
// fail → stall → outlier.
type FaultSpec struct {
	// Seed decorrelates the fault schedule from the measurement seeds.
	Seed int64
	// FailProb is the probability a run dies before executing anything
	// (a crashed server process); surfaces as a *FaultError.
	FailProb float64
	// StallProb is the probability a run stalls: at a random request
	// the simulated clock jumps by Stall, so the run only terminates
	// within budget if a per-run timeout (Config.RunTimeout) cuts it off.
	StallProb float64
	// OutlierProb is the probability a run's service times are all
	// inflated by OutlierFactor — a measurement that completes but lies.
	OutlierProb float64
	// OutlierFactor is the latency multiplier of an outlier run
	// (default 8).
	OutlierFactor float64
	// Stall is the simulated-time jump of a stalled run (default 10s,
	// far beyond any healthy run at the paper's scale).
	Stall simclock.Duration
	// StallWindowOps bounds the request index at which a stall strikes
	// (default 4096); it also bounds the request index of a crash.
	StallWindowOps int
	// CrashProb is the probability a run crashes mid-replay: the server
	// serves a prefix of the trace and then dies, surfacing a
	// *FaultError of kind FaultCrash. Unlike FailProb (dead at connect
	// time), a crash burns simulated work before failing — the shard
	// fault class a sharded client remediates by resetting and retrying
	// just that member.
	CrashProb float64
	// StragglerProb is the probability a run is a persistent straggler:
	// every service time is inflated by StragglerFactor for the whole
	// run. The run completes and its numbers are internally consistent —
	// it is just slow, the shard fault class hedged speculative
	// re-execution remediates.
	StragglerProb float64
	// StragglerFactor is the service-time multiplier of a straggler run
	// (default 4).
	StragglerFactor float64
}

// Enabled reports whether the spec can inject any fault at all.
func (f FaultSpec) Enabled() bool {
	return f.FailProb > 0 || f.StallProb > 0 || f.OutlierProb > 0 ||
		f.CrashProb > 0 || f.StragglerProb > 0
}

// Validate rejects malformed specs with descriptive errors.
func (f FaultSpec) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"FailProb", f.FailProb}, {"StallProb", f.StallProb}, {"OutlierProb", f.OutlierProb},
		{"CrashProb", f.CrashProb}, {"StragglerProb", f.StragglerProb}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("server: fault %s %v outside [0,1]", p.name, p.v)
		}
	}
	if f.OutlierFactor < 0 {
		return fmt.Errorf("server: fault OutlierFactor %v must be non-negative", f.OutlierFactor)
	}
	if f.Stall < 0 {
		return fmt.Errorf("server: fault Stall %v must be non-negative", f.Stall)
	}
	if f.StallWindowOps < 0 {
		return fmt.Errorf("server: fault StallWindowOps %d must be non-negative", f.StallWindowOps)
	}
	if f.StragglerFactor < 0 {
		return fmt.Errorf("server: fault StragglerFactor %v must be non-negative", f.StragglerFactor)
	}
	return nil
}

// Defaults for the zero-valued tuning knobs.
const (
	defaultOutlierFactor   = 8.0
	defaultStall           = 10 * simclock.Second
	defaultStallWindowOps  = 4096
	defaultStragglerFactor = 4.0
)

func (f FaultSpec) outlierFactor() float64 {
	if f.OutlierFactor == 0 {
		return defaultOutlierFactor
	}
	return f.OutlierFactor
}

func (f FaultSpec) stall() simclock.Duration {
	if f.Stall == 0 {
		return defaultStall
	}
	return f.Stall
}

func (f FaultSpec) stallWindow() int {
	if f.StallWindowOps == 0 {
		return defaultStallWindowOps
	}
	return f.StallWindowOps
}

func (f FaultSpec) stragglerFactor() float64 {
	if f.StragglerFactor == 0 {
		return defaultStragglerFactor
	}
	return f.StragglerFactor
}

// FaultKind classifies an injected fault.
type FaultKind int

// The injected fault kinds.
const (
	FaultFail FaultKind = iota
	FaultStall
	FaultOutlier
	FaultCrash
	FaultStraggler
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultFail:
		return "fail"
	case FaultStall:
		return "stall"
	case FaultOutlier:
		return "outlier"
	case FaultCrash:
		return "crash"
	case FaultStraggler:
		return "straggler"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// FaultError is the typed error of an injected run failure, so callers
// can distinguish a scheduled fault (retryable) from a real bug.
type FaultError struct {
	Kind FaultKind
	// Seed is the run seed the fault was rolled for, for reproduction.
	Seed int64
}

// Error implements error.
func (e *FaultError) Error() string {
	return fmt.Sprintf("server: injected %s fault (run seed %d)", e.Kind, e.Seed)
}

// faultPlan is one deployment's rolled fate. The inert plan (no fail,
// stallAt/crashAt −1, factor 1) is what a zero-valued spec always
// produces.
type faultPlan struct {
	fail    bool
	stallAt int // request index of the simulated stall; −1 = none
	factor  float64
	crashAt int // request index of a mid-run crash; −1 = none
	// straggler marks a factor≠1 as a persistent straggler rather than a
	// measurement outlier — same pricing, different telemetry kind and
	// different client remediation (hedging vs MAD rejection).
	straggler bool
}

// inertPlan injects nothing.
func inertPlan() faultPlan { return faultPlan{stallAt: -1, crashAt: -1, factor: 1} }

// roll decides the deployment's fate deterministically from the spec
// seed and the run's measurement seed. A fresh RNG is used so the roll
// never consumes draws from the run's noise stream.
//
// The draw order is load-bearing: the legacy fail → stall → outlier
// draws come first so specs that only set the legacy probabilities
// reproduce their pre-shard fault schedules bit-exactly; the shard
// fault classes (crash, straggler) draw after them and only when no
// legacy fault fired, preserving the at-most-one-fault invariant.
func (f FaultSpec) roll(runSeed int64) faultPlan {
	if !f.Enabled() {
		return inertPlan()
	}
	rng := rand.New(rand.NewSource(mixSeeds(f.Seed, runSeed)))
	plan := inertPlan()
	switch {
	case rng.Float64() < f.FailProb:
		plan.fail = true
	case rng.Float64() < f.StallProb:
		plan.stallAt = rng.Intn(f.stallWindow())
	case rng.Float64() < f.OutlierProb:
		plan.factor = f.outlierFactor()
	case rng.Float64() < f.CrashProb:
		plan.crashAt = rng.Intn(f.stallWindow())
	case rng.Float64() < f.StragglerProb:
		plan.factor = f.stragglerFactor()
		plan.straggler = true
	}
	return plan
}

// mixSeeds combines the fault seed with a run seed via a splitmix64-style
// finalizer, so neighboring run seeds (i, i+1, …) land on uncorrelated
// fault rolls.
func mixSeeds(a, b int64) int64 {
	z := uint64(a)*0x9E3779B97F4A7C15 + uint64(b)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}
