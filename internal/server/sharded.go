package server

import (
	"fmt"

	"mnemo/internal/memsim"
	"mnemo/internal/shard"
	"mnemo/internal/simclock"
	"mnemo/internal/ycsb"
)

// Sharded replay cluster (DESIGN.md §13).
//
// A ShardedDeployment owns N single Deployments behind a consistent-
// hash ring: the workload is partitioned once (internal/shard, cached),
// each shard gets the records the ring assigns to it plus exactly its
// subsequence of the trace, and every existing single-deployment
// mechanism — the batched replay kernel, the ResetRun snapshot, fault
// injection, telemetry flushing — applies per shard unchanged. Shards
// are fully independent simulations: no shared clock, no shared LLC, no
// cross-shard requests, which is what lets the client replay them on
// separate goroutines and still merge deterministically.
//
// Clock semantics are max-over-shards: the cluster's runtime is the
// slowest shard's simulated time, the way a scatter-gather measurement
// completes when its last shard does. Config.RunTimeout bounds each
// shard's own clock (a watchdog per server process, not per cluster).

// shardSeedStride decorrelates per-shard noise/fault streams. Shard 0
// keeps the configured seed (so a 1-shard cluster reproduces the single
// deployment bit-for-bit); shard s runs at Seed + s·524287 — a stride
// coprime to and much larger than the repetition stride (1009), so run
// r of shard s never collides with run r′ of shard s′ within any
// realistic runs×shards grid.
const shardSeedStride = 524287

// ShardedDeployment is a consistent-hash cluster of Deployments
// replaying one partitioned workload.
type ShardedDeployment struct {
	cfg  Config
	part *shard.Partition
	deps []*Deployment
	// local[s] is shard s's remapped placement, kept for rebuilding a
	// shard whose snapshot reset is unavailable.
	local  []Placement
	loaded bool
}

// shardConfig derives shard s's deployment config: the per-shard seed,
// with the cluster fields cleared (a member deployment is a plain
// single deployment).
func (cfg Config) shardConfig(s int) Config {
	c := cfg
	c.Seed = cfg.Seed + int64(s)*shardSeedStride
	c.Shards = 0
	c.VirtualNodes = 0
	return c
}

// NewShardedDeployment partitions the workload over cfg.Shards shards
// (cfg.VirtualNodes ring points each) and builds one empty member
// deployment per shard. Partitioning is cached across clusters of the
// same workload and shape; per-shard noise and fault fates are rolled
// from the shard seeds at construction, like NewDeployment.
func NewShardedDeployment(cfg Config, w *ycsb.Workload) (*ShardedDeployment, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("server: sharded deployment needs Shards ≥ 1, got %d", cfg.Shards)
	}
	if cfg.Shards > shard.MaxShards {
		return nil, fmt.Errorf("server: sharded deployment supports at most %d shards, got %d", shard.MaxShards, cfg.Shards)
	}
	if cfg.VirtualNodes < 0 {
		return nil, fmt.Errorf("server: sharded deployment needs VirtualNodes ≥ 0 (0 = default %d), got %d", shard.DefaultVirtualNodes, cfg.VirtualNodes)
	}
	// The batched kernel consumes the packed sub-traces directly; only
	// a config or engine that forces the per-op path needs Ops
	// materialized per shard.
	withOps := cfg.DisableBatchReplay || !w.Packed().Batchable()
	part, err := shard.For(w, cfg.Shards, cfg.VirtualNodes, withOps)
	if err != nil {
		return nil, err
	}
	sd := &ShardedDeployment{
		cfg:   cfg,
		part:  part,
		deps:  make([]*Deployment, cfg.Shards),
		local: make([]Placement, cfg.Shards),
	}
	for s := range sd.deps {
		sd.deps[s] = NewDeployment(cfg.shardConfig(s))
	}
	return sd, nil
}

// Shards returns the cluster size.
func (sd *ShardedDeployment) Shards() int { return len(sd.deps) }

// MemberSeed returns the member seed shard s derives from a cluster
// seed — the base a client offsets into its retry or hedge stride
// before calling ResetShard.
func (sd *ShardedDeployment) MemberSeed(clusterSeed int64, s int) int64 {
	return clusterSeed + int64(s)*shardSeedStride
}

// Dep returns shard s's member deployment.
func (sd *ShardedDeployment) Dep(s int) *Deployment { return sd.deps[s] }

// Sub returns shard s's sub-workload.
func (sd *ShardedDeployment) Sub(s int) *ycsb.Workload { return sd.part.Subs[s].W }

// Partition exposes the cluster's workload partition (for reports).
func (sd *ShardedDeployment) Partition() *shard.Partition { return sd.part }

// InjectedFailure reports the first fail-fated shard (in shard order)
// as that shard's *FaultError, or nil when every shard is healthy —
// one dead server process fails the scatter-gather at connect time.
func (sd *ShardedDeployment) InjectedFailure() error {
	for s, d := range sd.deps {
		if err := d.InjectedFailure(); err != nil {
			if len(sd.deps) == 1 {
				return err
			}
			return fmt.Errorf("shard %d: %w", s, err)
		}
	}
	return nil
}

// Load populates every shard from its partition slice under the global
// placement, remapped to shard-local record indices: local record i of
// shard s gets the tier the global placement assigns to its global
// index. Placement semantics are therefore identical to the single
// deployment's — the same record lands on the same tier regardless of
// shard count.
func (sd *ShardedDeployment) Load(p Placement) error {
	for s, d := range sd.deps {
		sub := &sd.part.Subs[s]
		lp := sd.localPlacement(p, sub)
		if err := d.Load(sub.W.Dataset, lp); err != nil {
			return fmt.Errorf("shard %d: %w", s, err)
		}
		sd.local[s] = lp
	}
	sd.loaded = true
	return nil
}

// localPlacement remaps the global placement onto one shard's local
// record indices, resolving each record once through the same
// tierForRecord path Deployment.Load uses.
func (sd *ShardedDeployment) localPlacement(p Placement, sub *shard.Sub) Placement {
	dense := make([]memsim.Tier, len(sub.GlobalIndex))
	for local, g := range sub.GlobalIndex {
		dense[local] = p.tierForRecord(int(g), sub.W.Dataset.Records[local].Key)
	}
	return Placement{defaultTier: p.defaultTier, dense: dense}
}

// ResetRun rewinds every shard to its post-Load state under per-shard
// derivations of the new seed. A shard whose snapshot reset is
// unavailable (no batch table) is rebuilt fresh from its kept local
// placement — same end state, populate cost paid again. Returns false
// only when the cluster was never loaded.
func (sd *ShardedDeployment) ResetRun(seed int64) bool {
	if !sd.loaded {
		return false
	}
	for s := range sd.deps {
		if !sd.ResetShard(s, seed+int64(s)*shardSeedStride) {
			return false
		}
	}
	return true
}

// ResetShard rewinds one member to its post-Load state under an
// absolute member seed (the caller chooses the derivation — the regular
// per-shard stride for a whole-cluster rewind, a retry or hedge stride
// for a single-shard re-execution after a fault). Falls back to
// rebuilding the member fresh from its kept local placement when the
// snapshot reset is unavailable. Safe for concurrent calls on distinct
// shards: each touches only its own slice slot. Returns false only when
// the cluster was never loaded or the rebuild fails.
func (sd *ShardedDeployment) ResetShard(s int, memberSeed int64) bool {
	if !sd.loaded {
		return false
	}
	// The snapshot reset is only sound when the member replays through
	// the batched kernel: a non-batchable sub-trace runs the per-op path,
	// which mutates engine state the snapshot does not cover (the same
	// condition as the client's canReuse).
	if sd.part.Subs[s].W.Packed().Batchable() && sd.deps[s].ResetRun(memberSeed) {
		return true
	}
	c := sd.cfg.shardConfig(s)
	c.Seed = memberSeed
	nd := NewDeployment(c)
	if err := nd.Load(sd.part.Subs[s].W.Dataset, sd.local[s]); err != nil {
		return false
	}
	sd.deps[s] = nd
	return true
}

// Clock returns the cluster's simulated time: the max over shards — a
// scatter-gather run completes when its slowest shard does.
func (sd *ShardedDeployment) Clock() simclock.Duration {
	var max simclock.Duration
	for _, d := range sd.deps {
		if c := d.Clock(); c > max {
			max = c
		}
	}
	return max
}

// Engine reports the deployed engine (uniform across shards).
func (sd *ShardedDeployment) Engine() Engine { return sd.cfg.Engine }

// FlushObs publishes every shard's accumulated op and LLC counters, in
// shard order so the metric stream is deterministic.
func (sd *ShardedDeployment) FlushObs() {
	for _, d := range sd.deps {
		d.FlushObs()
	}
}

// Reusable reports whether every shard can serve further repetitions
// via the snapshot reset (all batch-capable) — the cluster analogue of
// the client's canReuse.
func (sd *ShardedDeployment) Reusable() bool {
	if !sd.loaded {
		return false
	}
	for s, d := range sd.deps {
		if d.BatchTable() == nil || !sd.part.Subs[s].W.Packed().Batchable() {
			return false
		}
	}
	return true
}
