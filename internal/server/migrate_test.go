package server

import (
	"testing"

	"mnemo/internal/memsim"
	"mnemo/internal/simclock"
	"mnemo/internal/ycsb"
)

// migrationDeployment loads a fixed-1KB workload with records 0 and 1 in
// FastMem, the canvas every ApplyMoves test paints on.
func migrationDeployment(t *testing.T, mut func(*Config)) (*Deployment, int) {
	t.Helper()
	w := smallWorkload(t, ycsb.SizeFixed1KB, 1)
	cfg := DefaultConfig(RedisLike, 1)
	if mut != nil {
		mut(&cfg)
	}
	d := NewDeployment(cfg)
	if err := d.Load(w.Dataset, FastIndices([]int{0, 1}, len(w.Dataset.Records))); err != nil {
		t.Fatal(err)
	}
	return d, len(w.Dataset.Records)
}

func TestApplyMovesMigratesAndCharges(t *testing.T) {
	d, _ := migrationDeployment(t, func(c *Config) { c.MigrationCostPerByte = 2 })
	before := d.Clock()
	res := d.ApplyMoves([]Move{{Index: 2, To: memsim.Fast}, {Index: 0, To: memsim.Slow}})
	if res.Moves != 2 || res.SkippedBudget != 0 || res.SkippedFull != 0 {
		t.Fatalf("result %+v, want 2 clean moves", res)
	}
	if res.Bytes != 2048 {
		t.Fatalf("migrated %d bytes, want 2048", res.Bytes)
	}
	if want := float64(res.Bytes) * 2; res.CostNs != want {
		t.Fatalf("cost %v ns, want %v", res.CostNs, want)
	}
	if got := d.Clock() - before; got != simclock.FromNanos(res.CostNs) {
		t.Fatalf("clock advanced %v, want %v", got, simclock.FromNanos(res.CostNs))
	}
	tiers := d.RecordTiers()
	if tiers[0] != memsim.Slow || tiers[1] != memsim.Fast || tiers[2] != memsim.Fast {
		t.Fatalf("tiers after swap: %v %v %v", tiers[0], tiers[1], tiers[2])
	}
	if !d.Migrated() {
		t.Fatal("Migrated() false after a real move")
	}
	if d.ResetRun(2) {
		t.Fatal("migrated deployment must refuse the post-Load snapshot reset")
	}
}

func TestApplyMovesSkipsNoopsAndBadIndices(t *testing.T) {
	d, n := migrationDeployment(t, nil)
	before := d.Clock()
	res := d.ApplyMoves([]Move{
		{Index: -1, To: memsim.Fast},
		{Index: n, To: memsim.Fast},
		{Index: 0, To: memsim.Fast}, // already fast
		{Index: 5, To: memsim.Slow}, // already slow
	})
	if res != (MigrationResult{}) {
		t.Fatalf("result %+v, want all-zero", res)
	}
	if d.Migrated() {
		t.Fatal("no-op call marked the deployment migrated")
	}
	if d.Clock() != before {
		t.Fatal("no-op call advanced the clock")
	}
	if !d.ResetRun(2) {
		t.Fatal("unmigrated deployment must still reset")
	}
}

func TestApplyMovesBudget(t *testing.T) {
	d, _ := migrationDeployment(t, func(c *Config) { c.MigrationBudget = 1500 })
	res := d.ApplyMoves([]Move{{Index: 2, To: memsim.Fast}, {Index: 3, To: memsim.Fast}})
	if res.Moves != 1 || res.Bytes != 1024 || res.SkippedBudget != 1 {
		t.Fatalf("result %+v, want 1 move / 1 skipped by the 1500-byte budget", res)
	}
}

func TestApplyMovesDemotionsRunFirst(t *testing.T) {
	// FastMem holds exactly the two loaded records: a swap listed
	// promotion-first can only succeed if the demotion runs first.
	d, _ := migrationDeployment(t, func(c *Config) { c.Machine.FastCapacity = 2048 })
	res := d.ApplyMoves([]Move{{Index: 2, To: memsim.Fast}, {Index: 1, To: memsim.Slow}})
	if res.Moves != 2 || res.SkippedFull != 0 {
		t.Fatalf("swap under exact capacity: %+v", res)
	}
	tiers := d.RecordTiers()
	if tiers[1] != memsim.Slow || tiers[2] != memsim.Fast {
		t.Fatal("swap did not take effect")
	}
}

func TestApplyMovesFullTier(t *testing.T) {
	d, _ := migrationDeployment(t, func(c *Config) { c.Machine.FastCapacity = 2048 })
	res := d.ApplyMoves([]Move{{Index: 2, To: memsim.Fast}})
	if res.Moves != 0 || res.SkippedFull != 1 {
		t.Fatalf("promotion into a full tier: %+v", res)
	}
	if d.Migrated() {
		t.Fatal("dropped move marked the deployment migrated")
	}
}

// TestApplyMovesPatchesBatchTable: migrating must keep the batched
// kernel's cost table usable, with the moved records re-priced for their
// new tier (a fast-tier read is strictly cheaper than the same record
// served slow on every engine).
func TestApplyMovesPatchesBatchTable(t *testing.T) {
	d, _ := migrationDeployment(t, nil)
	tab := d.BatchTable()
	if tab == nil {
		t.Fatal("no batch table before migration")
	}
	slowRead := tab.costs[2].readMissNs
	res := d.ApplyMoves([]Move{{Index: 2, To: memsim.Fast}})
	if res.Moves != 1 {
		t.Fatalf("move dropped: %+v", res)
	}
	tab2 := d.BatchTable()
	if tab2 == nil {
		t.Fatal("batch table invalidated by a clean migration")
	}
	if tab2 != tab {
		t.Fatal("migration rebuilt the table instead of patching it")
	}
	if tab2.costs[2].tier != uint8(memsim.Fast) {
		t.Fatal("moved record not re-routed to the fast instance")
	}
	if got := tab2.costs[2].readMissNs; got >= slowRead {
		t.Fatalf("fast read miss %v ns not cheaper than slow %v ns", got, slowRead)
	}
}
