// Package server assembles the paper's experimental deployment: two
// instances of one key-value store engine, each bound to a memory node of
// the emulated hybrid machine (the paper uses numactl to bind one server
// process to FastMem and one to SlowMem), plus the service-time model
// that turns each operation's memory traffic into simulated time.
//
// Service time of one request (DESIGN.md §5):
//
//	t = (cpuBase + cpuPerByte·valueBytes + memNs/MLP) · noise + pause
//
// where memNs prices the operation's pointer chases and (amplified)
// touched bytes against the tier that holds the record — or against the
// LLC when the record is cache-resident — and writes pay the engine's
// WritePenalty on the byte traffic.
package server

import (
	"fmt"

	"mnemo/internal/kvstore"
	"mnemo/internal/kvstore/hashkv"
	"mnemo/internal/kvstore/slabkv"
	"mnemo/internal/kvstore/treekv"
	"mnemo/internal/memsim"
	"mnemo/internal/obs"
	"mnemo/internal/simclock"
	"mnemo/internal/ycsb"
)

// Engine selects a key-value store implementation.
type Engine int

// The three engines of the paper's evaluation.
const (
	RedisLike Engine = iota
	MemcachedLike
	DynamoLike
)

// String implements fmt.Stringer.
func (e Engine) String() string {
	switch e {
	case RedisLike:
		return "redislike"
	case MemcachedLike:
		return "memcachedlike"
	case DynamoLike:
		return "dynamolike"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// Engines lists all engines in evaluation order.
func Engines() []Engine { return []Engine{RedisLike, MemcachedLike, DynamoLike} }

// EngineByName resolves an engine from its name.
func EngineByName(name string) (Engine, bool) {
	for _, e := range Engines() {
		if e.String() == name {
			return e, true
		}
	}
	return 0, false
}

// newStore instantiates one server process of the engine.
func (e Engine) newStore() kvstore.Store {
	switch e {
	case RedisLike:
		return hashkv.New()
	case MemcachedLike:
		return slabkv.New(0)
	case DynamoLike:
		return treekv.New()
	default:
		panic(fmt.Sprintf("server: unknown engine %d", int(e)))
	}
}

// Profile returns the engine's performance profile.
func (e Engine) Profile() kvstore.EngineProfile {
	switch e {
	case RedisLike:
		return hashkv.Profile
	case MemcachedLike:
		return slabkv.Profile
	case DynamoLike:
		return treekv.Profile
	default:
		panic(fmt.Sprintf("server: unknown engine %d", int(e)))
	}
}

// Config parameterizes a deployment.
type Config struct {
	Engine     Engine
	Machine    memsim.Config
	NoiseSigma float64
	Seed       int64
	// Fault injects deterministic measurement faults (zero value: none).
	// The per-run fate is rolled once per deployment from Fault.Seed
	// mixed with Seed; see FaultSpec.
	Fault FaultSpec
	// RunTimeout bounds one measurement run in simulated time; the
	// client aborts a replay whose clock exceeds it (cutting off
	// injected stalls). 0 disables the bound.
	RunTimeout simclock.Duration
	// Obs receives the deployment's telemetry (per-engine op counters,
	// fault events, LLC hit/miss). nil — the zero value — records
	// nothing and adds no per-request work beyond an inert branch, so
	// the replay fast path stays allocation-free.
	Obs *obs.Sink
	// DisableBatchReplay forces the per-operation replay path even when
	// the engine supports the batched kernel (BatchTable returns nil).
	// It exists as the reference knob for the golden equivalence tests
	// and frozen benchmarks; the two paths are bit-identical, so there
	// is no reason to set it in production.
	DisableBatchReplay bool
	// Shards splits the deployment into a consistent-hash cluster of N
	// independent fast+slow pairs (DESIGN.md §13). 0 keeps the legacy
	// single deployment; ≥ 1 routes execution through
	// ShardedDeployment (Shards=1 is a one-shard cluster, bit-identical
	// to the single deployment — the golden equivalence anchor).
	Shards int
	// VirtualNodes is the ring points per shard
	// (0 = shard.DefaultVirtualNodes).
	VirtualNodes int
	// EpochOps is the adaptive-replay epoch length in requests; the
	// client re-consults Adaptive after every EpochOps served requests.
	// 0 — the zero value — disables epochs and keeps the static replay
	// path bit-identical (DESIGN.md §15).
	EpochOps int
	// MigrationCostPerByte is the simulated-time charge, in nanoseconds
	// per payload byte, for records ApplyMoves copies between tiers.
	// 0 makes migration free on the clock (structural work is untimed).
	MigrationCostPerByte float64
	// MigrationBudget caps the payload bytes one ApplyMoves call may
	// migrate; excess moves are dropped and counted. 0 means unlimited.
	MigrationBudget int64
	// Adaptive supplies per-run epoch observers for online migration.
	// nil — the zero value — disables adaptive replay.
	Adaptive EpochSource
}

// DefaultConfig returns the Table I machine with default noise.
func DefaultConfig(e Engine, seed int64) Config {
	return Config{Engine: e, Machine: memsim.DefaultConfig(), NoiseSigma: DefaultNoiseSigma, Seed: seed}
}

// Deployment is two engine instances on the hybrid machine with a
// placement routing keys between them.
type Deployment struct {
	cfg       Config
	machine   *memsim.Machine
	clock     simclock.Clock
	instances [2]kvstore.Store // indexed by memsim.Tier
	placement Placement
	noise     *Noise
	profile   kvstore.EngineProfile

	// records and tiers are the index-addressed request path, built by
	// Load: records aliases the loaded dataset and tiers[i] caches the
	// placement decision for record i, so DoIndex resolves a request
	// with two slice loads instead of a map lookup plus a key hash.
	records []ycsb.Record
	tiers   []memsim.Tier

	// fault is this run's rolled fate and ops the served-request count
	// that triggers a scheduled stall. The inert plan costs two
	// predictable branches per request.
	fault faultPlan
	ops   int

	// telem carries the deployment's pre-resolved observability handles
	// (all nil without a configured sink; see obs.go).
	telem deployTelemetry

	// table is the lazily built batched-replay cost table (batch.go);
	// tableBuilt latches the build attempt so an unsupported deployment
	// is probed once, not per run. Load invalidates both.
	table      *ReplayTable
	tableBuilt bool

	// migrated latches once ApplyMoves changes the placement: the store
	// contents then diverge from the post-Load snapshot, so ResetRun
	// refuses to rewind (migrate.go). Load clears it.
	migrated bool
}

// NewDeployment builds an empty deployment with an AllFast placement.
func NewDeployment(cfg Config) *Deployment {
	d := &Deployment{
		cfg:       cfg,
		machine:   memsim.NewMachine(cfg.Machine),
		placement: AllFast(),
		noise:     NewNoise(cfg.NoiseSigma, cfg.Seed),
		profile:   cfg.Engine.Profile(),
		fault:     cfg.Fault.roll(cfg.Seed),
	}
	d.instances[memsim.Fast] = cfg.Engine.newStore()
	d.instances[memsim.Slow] = cfg.Engine.newStore()
	d.initTelemetry()
	return d
}

// Machine exposes the underlying memory machine (for calibration and
// inspection).
func (d *Deployment) Machine() *memsim.Machine { return d.machine }

// Clock returns the current simulated time.
func (d *Deployment) Clock() simclock.Duration { return d.clock.Now() }

// Engine reports the deployed engine.
func (d *Deployment) Engine() Engine { return d.cfg.Engine }

// Placement returns the active placement.
func (d *Deployment) Placement() Placement { return d.placement }

// Instance returns the store bound to a tier.
func (d *Deployment) Instance(t memsim.Tier) kvstore.Store { return d.instances[t] }

// InjectedFailure reports the scheduled fail-fault of this deployment as
// a typed *FaultError, or nil when the run is healthy. Clients check it
// before replaying, the way a dead server process is noticed at connect
// time.
func (d *Deployment) InjectedFailure() error {
	if d.fault.fail {
		d.telem.faultFired(d, FaultFail)
		return &FaultError{Kind: FaultFail, Seed: d.cfg.Seed}
	}
	return nil
}

// CrashOp returns the request index at which this run is fated to crash
// mid-replay, or −1 for a run that will not crash. The client replays
// the prefix before the crash point (the work a dying server performed)
// and then reports CrashError.
func (d *Deployment) CrashOp() int { return d.fault.crashAt }

// CrashError journals and returns the scheduled mid-run crash as a
// typed *FaultError of kind FaultCrash.
func (d *Deployment) CrashError() error {
	d.telem.faultFired(d, FaultCrash)
	return &FaultError{Kind: FaultCrash, Seed: d.cfg.Seed}
}

// Load populates the deployment from a dataset under the given placement.
// Loading is the untimed setup phase (the paper's YCSB load stage): it
// neither advances the clock nor perturbs the LLC model. Node capacity is
// accounted; an error is returned if a tier overflows a configured
// capacity.
func (d *Deployment) Load(ds ycsb.Dataset, p Placement) error {
	d.placement = p
	d.records = ds.Records
	d.tiers = make([]memsim.Tier, len(ds.Records))
	for i, rec := range ds.Records {
		tier := p.tierForRecord(i, rec.Key)
		d.tiers[i] = tier
		if err := d.machine.Node(tier).Alloc(int64(rec.Size)); err != nil {
			return fmt.Errorf("server: loading %q: %w", rec.Key, err)
		}
		d.instances[tier].PutID(rec.Key, rec.ID, kvstore.Sized(rec.Size))
		d.instances[tier].TakePauseNs() // setup-phase stalls are not timed
	}
	// Quiesce deferred background work (incremental rehash, pending node
	// splits) as part of the untimed setup phase, so the steady-state
	// request path starts structurally settled — the property the batched
	// replay kernel's static cost table relies on, applied to every
	// deployment so the per-op and batched paths price the same store.
	for _, inst := range d.instances {
		if br, ok := inst.(kvstore.BatchReplayer); ok {
			br.Quiesce()
			inst.TakePauseNs()
		}
	}
	d.table, d.tableBuilt = nil, false
	d.migrated = false
	if llc := d.machine.LLC(); llc != nil {
		llc.Flush()
		llc.ResetStats()
	}
	return nil
}

// Result reports how one request was served.
type Result struct {
	Tier    memsim.Tier
	Kind    kvstore.OpKind
	Latency simclock.Duration
	Found   bool
	Hit     bool // LLC hit
}

// Do executes one request against the deployment, advancing the clock by
// its service time. This is the string-keyed path; replay loops holding
// dataset indices should use DoIndex, which skips the placement map
// lookup and the key re-hash.
func (d *Deployment) Do(key string, kind kvstore.OpKind, size int) Result {
	tier := d.placement.TierOf(key)
	st := d.instances[tier]
	var tr kvstore.OpTrace
	switch kind {
	case kvstore.Read:
		_, tr = st.Get(key)
	case kvstore.Write:
		tr = st.Put(key, kvstore.Sized(size))
	case kvstore.Delete:
		tr = st.Del(key)
	default:
		panic(fmt.Sprintf("server: unknown op kind %v", kind))
	}
	return d.price(tier, st, kind, tr, size)
}

// DoIndex executes one request addressed by dataset record index — the
// replay fast path. The record's tier comes from the table Load built
// and its identity from the dataset's cached KeyID, so no per-request
// string work remains. Writes store the record's dataset size (the
// trace's record sizes are fixed for the workload's lifetime). DoIndex
// panics if the deployment has not been loaded or idx is out of range.
func (d *Deployment) DoIndex(idx int, kind kvstore.OpKind) Result {
	rec := &d.records[idx]
	tier := d.tiers[idx]
	st := d.instances[tier]
	var tr kvstore.OpTrace
	switch kind {
	case kvstore.Read:
		_, tr = st.GetID(rec.Key, rec.ID)
	case kvstore.Write:
		tr = st.PutID(rec.Key, rec.ID, kvstore.Value{Size: rec.Size})
	case kvstore.Delete:
		tr = st.DelID(rec.Key, rec.ID)
	default:
		panic(fmt.Sprintf("server: unknown op kind %v", kind))
	}
	return d.price(tier, st, kind, tr, rec.Size)
}

// price turns an operation trace into simulated service time and
// advances the clock — the shared back half of Do and DoIndex.
func (d *Deployment) price(tier memsim.Tier, st kvstore.Store, kind kvstore.OpKind, tr kvstore.OpTrace, size int) Result {
	// Cache residency is tracked at the record's value size; pricing uses
	// the engine's (possibly amplified) touched bytes.
	vb := d.valueBytes(tr, size)
	ref := memsim.RecordRef{ID: tr.RecordID, Bytes: vb}
	hit := d.machine.TouchHit(ref)
	if kind == kvstore.Delete {
		d.machine.Invalidate(ref)
	}

	var medium *memsim.NodeParams
	if hit {
		medium = &memsim.LLCParams
	} else {
		medium = &d.machine.Node(tier).Params
	}
	transferNs := medium.TransferNs(tr.Touched)
	if kind == kvstore.Write {
		transferNs *= d.profile.WritePenalty
	}
	memNs := medium.ChaseNs(tr.Chases) + transferNs
	if mlp := d.profile.MLP; mlp != 1 {
		memNs /= mlp
	}

	cpuNs := d.profile.CPUBaseNs + d.profile.CPUPerByteNs*float64(vb)
	serviceNs := (cpuNs+memNs)*d.noise.Factor() + st.TakePauseNs()

	// Scheduled faults: an outlier run inflates every service time; a
	// stalled run jumps the clock once, at its rolled request index.
	// The inert plan (factor 1, stallAt −1) leaves serviceNs bit-exact.
	if d.fault.factor != 1 {
		serviceNs *= d.fault.factor
	}
	if d.fault.stallAt >= 0 && d.ops == d.fault.stallAt {
		serviceNs += float64(d.cfg.Fault.stall())
		d.telem.faultFired(d, FaultStall) // fires once per run; off the steady-state path
	}
	d.ops++

	lat := simclock.FromNanos(serviceNs)
	d.clock.Advance(lat)
	return Result{Tier: tier, Kind: kind, Latency: lat, Found: tr.Found, Hit: hit}
}

// valueBytes recovers the record's actual payload size from an operation
// trace: the size the CPU handles once (serialization and copy) and the
// footprint the record occupies in the LLC. Engine traces report Touched
// = payload × amplification, so the engine's amplification factor is
// divided back out.
func (d *Deployment) valueBytes(tr kvstore.OpTrace, writeSize int) int {
	if tr.Kind == kvstore.Write {
		return writeSize
	}
	if !tr.Found {
		return 0
	}
	amp := d.profile.ReadAmplification
	if amp <= 1 {
		// Unamplified engines (hash, slab) touch exactly the payload;
		// dividing by 1.0 is the identity, so skip the float round trip.
		return tr.Touched
	}
	return int(float64(tr.Touched) / amp)
}
