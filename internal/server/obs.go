package server

import (
	"mnemo/internal/obs"
)

// deployTelemetry is a deployment's pre-resolved observability state.
// With no sink configured every field is nil and each hook degrades to a
// single inert branch, keeping the request path allocation-free and the
// simulated measurements bit-identical: nothing here touches the clock,
// the noise stream or the accumulators.
//
// Op and LLC counts are flushed at run granularity (FlushObs) rather
// than per request, so a live sink adds no atomics to the replay loop
// either — the only mid-run emissions are fault events, which fire at
// most once per deployment.
type deployTelemetry struct {
	sink *obs.Sink
	ops  *obs.Counter // mnemo_server_ops_total{engine=…}
	hits *obs.Counter // mnemo_server_llc_hits_total
	miss *obs.Counter // mnemo_server_llc_misses_total

	// Flush cursors: FlushObs publishes only the delta since the last
	// flush, so calling it more than once per deployment is harmless.
	flushedOps          int
	flushedHits, flMiss int64
}

// initTelemetry resolves the deployment's metric handles once, at
// construction; an outlier fate (which inflates the whole run rather
// than firing at one request) is journaled here.
func (d *Deployment) initTelemetry() {
	s := d.cfg.Obs
	if s == nil {
		return
	}
	engine := d.cfg.Engine.String()
	d.telem = deployTelemetry{
		sink: s,
		ops:  s.Counter(obs.Name("mnemo_server_ops_total", "engine", engine)),
		hits: s.Counter("mnemo_server_llc_hits_total"),
		miss: s.Counter("mnemo_server_llc_misses_total"),
	}
	s.Counter(obs.Name("mnemo_server_deployments_total", "engine", engine)).Inc()
	if d.fault.factor != 1 {
		d.telem.faultFired(d, d.factorFaultKind())
	}
}

// factorFaultKind classifies a factor≠1 fate: a persistent straggler or
// a measurement outlier.
func (d *Deployment) factorFaultKind() FaultKind {
	if d.fault.straggler {
		return FaultStraggler
	}
	return FaultOutlier
}

// faultFired counts and journals one injected fault.
func (t *deployTelemetry) faultFired(d *Deployment, kind FaultKind) {
	if t.sink == nil {
		return
	}
	t.sink.Counter(obs.Name("mnemo_server_faults_total", "kind", kind.String())).Inc()
	t.sink.Eventf(obs.EventFault, "server", 0, "%s fault on %s (run seed %d)",
		kind, d.cfg.Engine, d.cfg.Seed)
}

// FlushObs publishes the deployment's accumulated op and LLC hit/miss
// counts to the configured sink — the run-granularity flush the client
// calls after a replay (including a replay cut off mid-run, so partial
// runs stay observable). It is a no-op without a sink and idempotent
// per served request: repeated flushes publish only new deltas.
func (d *Deployment) FlushObs() {
	t := &d.telem
	if t.sink == nil {
		return
	}
	t.ops.Add(int64(d.ops - t.flushedOps))
	t.flushedOps = d.ops
	if llc := d.machine.LLC(); llc != nil {
		h, m := llc.Hits(), llc.Misses()
		if h < t.flushedHits || m < t.flMiss {
			// The LLC stats were reset (a reload between runs); restart
			// the cursors rather than publish a negative delta.
			t.flushedHits, t.flMiss = 0, 0
		}
		t.hits.Add(h - t.flushedHits)
		t.miss.Add(m - t.flMiss)
		t.flushedHits, t.flMiss = h, m
	}
}
