package server

import (
	"mnemo/internal/kvstore"
	"mnemo/internal/memsim"
	"mnemo/internal/obs"
	"mnemo/internal/simclock"
)

// Batched, table-driven replay kernel (DESIGN.md §12).
//
// After Load quiesces the engines, every operation on a resident key has
// a static trace: fixed pointer chases, fixed touched bytes, fixed
// payload size. BatchTable folds those constants through the pricing
// formula once per record — one precomputed pre-noise service time per
// (kind, LLC hit/miss) combination — and Serve replays whole blocks of
// requests against the flat table. The only state touched per request is
// the state that genuinely varies per request: the LLC model, the noise
// RNG stream, the GC-pause accumulator, the fault plan and the simulated
// clock. No kvstore.Store interface call remains on the path.
//
// Bit-identity with the per-operation path is by construction: the table
// builder executes the exact float-operation sequence of price() on each
// record's static trace, and Serve consumes the same noise draws, the
// same fault plan and the same LLC decisions in the same order.

// ReplayBlockOps is the number of requests a client serves per kernel
// call. It matches the per-op path's historical cancellation-poll stride
// (one ctx check every 4096 requests), so hoisting the poll to block
// granularity preserves the cancellation latency bound documented there.
const ReplayBlockOps = 4096

// opCost is one record's precomputed static service-time components:
// the full pre-noise service time (CPU + memory, MLP and write penalty
// applied) for each op kind and LLC outcome, plus the constants the
// kernel needs per access.
type opCost struct {
	readHitNs, readMissNs   float64
	writeHitNs, writeMissNs float64
	id                      uint64 // record identity for the LLC model
	readBytes, writeBytes   int32  // LLC footprint (valueBytes) per kind
	size                    int32  // payload bytes charged to the GC model
	tier                    uint8  // serving instance, for pause routing
}

// pauseState is the kernel-side mirror of one instance's
// kvstore.PauseModel, with the post-load accumulator snapshot kept for
// ResetRun.
type pauseState struct {
	budget, perOp int64
	pauseNs       float64
	accum, reset  int64
}

// ReplayTable is a deployment's batched-replay state: the per-record
// cost table, the per-tier pause models, and a block-sized latency
// scratch buffer. It is bound to the deployment that built it and shares
// its single-threaded discipline.
type ReplayTable struct {
	d       *Deployment
	costs   []opCost
	pause   [2]pauseState // indexed by memsim.Tier
	stallNs float64       // precomputed stall jump of the fault plan
	lat     [ReplayBlockOps]simclock.Duration
}

// Block returns the table's block-sized latency scratch buffer for Serve
// calls. The buffer is reused across blocks and runs; its contents are
// valid only until the next Serve.
func (t *ReplayTable) Block() []simclock.Duration { return t.lat[:] }

// BatchTable returns the deployment's batched-replay cost table,
// building it on first call after Load. It returns nil — directing the
// caller to the per-operation path — when batching is disabled by
// config, the deployment is unloaded, or an engine instance cannot
// promise static traces (kvstore.BatchReplayer absent or not
// ReplayReady). The probe result is latched until the next Load.
//
// Once a table exists, all replay against the deployment must go through
// Serve: the kernel mirrors engine-internal accounting (the GC budget)
// instead of advancing it, so interleaving per-op requests afterwards
// would let the two diverge.
func (d *Deployment) BatchTable() *ReplayTable {
	if d.tableBuilt {
		return d.table
	}
	d.tableBuilt = true
	if d.cfg.DisableBatchReplay || d.records == nil {
		return nil
	}
	var brs [2]kvstore.BatchReplayer
	for i, inst := range d.instances {
		br, ok := inst.(kvstore.BatchReplayer)
		if !ok || !br.ReplayReady() {
			return nil
		}
		brs[i] = br
	}
	t := &ReplayTable{d: d, costs: make([]opCost, len(d.records)), stallNs: float64(d.cfg.Fault.stall())}
	for i := range d.records {
		if !d.fillCost(t, i, brs) {
			return nil
		}
	}
	for i, br := range brs {
		pm := br.ReplayPauses()
		t.pause[i] = pauseState{budget: pm.BudgetBytes, perOp: pm.PerOpBytes,
			pauseNs: pm.PauseNs, accum: pm.Accum, reset: pm.Accum}
	}
	d.table = t
	return t
}

// DropBatchTable latches the batched kernel off for the rest of the
// deployment's life: BatchTable returns nil from now on — the state a
// failed migration re-probe leaves behind when the rebuild cannot
// recover either. It exists for chaos and regression tests that need to
// force the mid-run per-op fallback deterministically.
func (d *Deployment) DropBatchTable() { d.table, d.tableBuilt = nil, true }

// fillCost prices one record into the table from its current tier's
// static trace. It is the per-record half of the BatchTable build,
// shared with ApplyMoves, which re-invokes it to patch migrated records
// in place. It returns false when the record's trace is not static.
func (d *Deployment) fillCost(t *ReplayTable, i int, brs [2]kvstore.BatchReplayer) bool {
	rec := &d.records[i]
	tier := d.tiers[i]
	getChases, putChases, ok := brs[tier].StaticTrace(rec.Key, rec.ID)
	if !ok {
		return false
	}
	c := &t.costs[i]
	c.id = rec.ID
	c.size = int32(rec.Size)
	c.tier = uint8(tier)

	// Replicate valueBytes exactly, including its int/float round
	// trips: reads recover the payload from the amplified trace,
	// writes use the stored size directly.
	readTouched := kvstore.Amplify(rec.Size, d.profile.ReadAmplification)
	readVB := readTouched
	if amp := d.profile.ReadAmplification; amp > 1 {
		readVB = int(float64(readTouched) / amp)
	}
	writeTouched := kvstore.Amplify(rec.Size, d.profile.WriteAmplification)
	c.readBytes = int32(readVB)
	c.writeBytes = int32(rec.Size)

	node := &d.machine.Node(tier).Params
	c.readHitNs = d.staticCost(kvstore.Read, getChases, readTouched, readVB, &memsim.LLCParams)
	c.readMissNs = d.staticCost(kvstore.Read, getChases, readTouched, readVB, node)
	c.writeHitNs = d.staticCost(kvstore.Write, putChases, writeTouched, rec.Size, &memsim.LLCParams)
	c.writeMissNs = d.staticCost(kvstore.Write, putChases, writeTouched, rec.Size, node)
	return true
}

// staticCost folds a static trace through the pricing formula, in the
// exact operation order of price() so the precomputed sum is bit-equal
// to what the live path would have produced: transfer cost (with the
// write penalty applied to the transfer term only), plus chase cost,
// divided by MLP, plus the per-byte CPU cost.
func (d *Deployment) staticCost(kind kvstore.OpKind, chases, touched, vb int, medium *memsim.NodeParams) float64 {
	chaseNs, transferNs := medium.OpCost(chases, touched)
	if kind == kvstore.Write {
		transferNs *= d.profile.WritePenalty
	}
	memNs := chaseNs + transferNs
	if mlp := d.profile.MLP; mlp != 1 {
		memNs /= mlp
	}
	cpuNs := d.profile.CPUBaseNs + d.profile.CPUPerByteNs*float64(vb)
	return cpuNs + memNs
}

// Serve replays one block of requests — keys[i] is a dataset record
// index, kinds[i] its op kind — through the cost table, advancing the
// clock and writing each request's latency into lat. It returns the
// number of requests served: len(keys) normally, or fewer when maxClock
// (an absolute simulated-time bound, 0 = none) was exceeded — the
// request that crossed the bound is served and counted, matching the
// per-op path's post-op budget check.
func (t *ReplayTable) Serve(keys []uint32, kinds []uint8, maxClock simclock.Duration, lat []simclock.Duration) int {
	d := t.d
	llc := d.machine.LLC()
	noise := d.noise
	for i := range keys {
		c := &t.costs[keys[i]]
		read := kinds[i] == uint8(kvstore.Read)
		var ref memsim.RecordRef
		if read {
			ref = memsim.RecordRef{ID: c.id, Bytes: int(c.readBytes)}
		} else {
			ref = memsim.RecordRef{ID: c.id, Bytes: int(c.writeBytes)}
		}
		hit := llc != nil && llc.Access(ref)
		var base float64
		switch {
		case read && hit:
			base = c.readHitNs
		case read:
			base = c.readMissNs
		case hit:
			base = c.writeHitNs
		default:
			base = c.writeMissNs
		}

		// Mirror of TakePauseNs: the engine's own GC accounting would
		// charge this op's bytes and stall when the budget is crossed.
		var pause float64
		if ps := &t.pause[c.tier]; ps.budget > 0 {
			ps.accum += int64(c.size) + ps.perOp
			if ps.accum >= ps.budget {
				ps.accum = 0
				pause = ps.pauseNs
			}
		}

		serviceNs := base*noise.Factor() + pause
		if d.fault.factor != 1 {
			serviceNs *= d.fault.factor
		}
		if d.ops == d.fault.stallAt { // stallAt is −1 when unscheduled
			serviceNs += t.stallNs
			d.telem.faultFired(d, FaultStall)
		}
		d.ops++

		l := simclock.FromNanos(serviceNs)
		d.clock.Advance(l)
		lat[i] = l
		if maxClock > 0 && d.clock.Now() > maxClock {
			return i + 1
		}
	}
	return len(keys)
}

// ResetRun rewinds a batch-capable deployment to its post-Load state
// under a new measurement seed — the snapshot/reset that lets repeated
// runs (ExecuteMean, Session.Compare) load the populated store once
// instead of re-populating per run. It resets the clock, op counter,
// LLC contents and statistics, re-rolls the noise stream and fault plan
// from the seed, and restores the kernel's pause accumulators to their
// post-load snapshot; telemetry parity with a fresh deployment is kept
// by re-counting the deployment and re-journaling an outlier fate.
//
// It returns false — leaving the deployment untouched — when no batch
// table is available: the per-op path mutates engine state during
// replay, so only table-driven runs are rewindable. A deployment whose
// placement migrated mid-run (ApplyMoves) also refuses: its store
// contents no longer match the post-Load snapshot.
func (d *Deployment) ResetRun(seed int64) bool {
	if d.migrated {
		return false
	}
	t := d.BatchTable()
	if t == nil {
		return false
	}
	d.cfg.Seed = seed
	d.clock.Reset()
	d.ops = 0
	d.noise = NewNoise(d.cfg.NoiseSigma, seed)
	d.fault = d.cfg.Fault.roll(seed)
	for i := range t.pause {
		t.pause[i].accum = t.pause[i].reset
	}
	if llc := d.machine.LLC(); llc != nil {
		llc.Flush()
		llc.ResetStats()
	}
	d.resetRunTelemetry()
	return true
}

// resetRunTelemetry re-establishes the observability state a fresh
// deployment would have: zeroed flush cursors, the deployments counter
// bumped, and an outlier fate journaled — so a reused deployment's
// metric stream is indistinguishable from the fresh-populate path's.
func (d *Deployment) resetRunTelemetry() {
	tl := &d.telem
	if tl.sink == nil {
		return
	}
	tl.flushedOps, tl.flushedHits, tl.flMiss = 0, 0, 0
	tl.sink.Counter(obs.Name("mnemo_server_deployments_total", "engine", d.cfg.Engine.String())).Inc()
	if d.fault.factor != 1 {
		tl.faultFired(d, d.factorFaultKind())
	}
}
