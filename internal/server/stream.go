package server

import "mnemo/internal/kvstore"

// Streamed-replay support (DESIGN.md §16). A streamed trace arrives
// frame by frame, and frames carrying structural ops (deletes, writes
// that re-insert a deleted key) cannot go through the cost table — the
// client serves exactly those frames per-op and keeps batching the
// rest. Interleaving per-op requests into a batched replay is sound
// only under the handshake below:
//
//  1. before a per-op frame, SyncEnginePauses writes the kernel's
//     mirrored pause accumulators back into the engines, so their own
//     accounting resumes where the kernel left it;
//  2. after a frame that only read or overwrote resident keys,
//     ResyncKernelPauses reads the engines' accumulators back into the
//     mirror;
//  3. after a frame that changed store structure, RetryBatchTable
//     re-prices the whole table from the live structure — the same
//     every-row re-probe migration performs (patchTable), but without
//     quiescing: the per-op reference path for the same trace would
//     not quiesce either, and bit-identity with it is the contract.
//
// A structural frame also marks the deployment mutated (MarkMutated):
// its store contents have diverged from the post-Load snapshot, so
// ResetRun refuses exactly as it does after a migration.

// SyncEnginePauses writes the kernel's mirrored pause accumulators into
// the engines — the prologue of a per-op frame interleaved into a
// batched replay.
func (t *ReplayTable) SyncEnginePauses() {
	for i, inst := range t.d.instances {
		if br, ok := inst.(kvstore.BatchReplayer); ok {
			br.SyncReplayAccum(t.pause[i].accum)
		}
	}
}

// ResyncKernelPauses reads the engines' pause accumulators back into
// the kernel's mirror — the epilogue of a per-op frame. The ResetRun
// snapshot (pauseState.reset) is left alone; a run that needed per-op
// frames has marked itself mutated and is not rewindable anyway.
func (t *ReplayTable) ResyncKernelPauses() {
	for i, inst := range t.d.instances {
		if br, ok := inst.(kvstore.BatchReplayer); ok {
			t.pause[i].accum = br.ReplayPauses().Accum
		}
	}
}

// MarkMutated latches the deployment as diverged from its post-Load
// snapshot — the state a structural streamed frame leaves behind, with
// the same consequence a migration has: ResetRun refuses, repetitions
// rebuild fresh.
func (d *Deployment) MarkMutated() { d.migrated = true }

// RetryBatchTable re-prices the batched-replay cost table from the
// engines' live structure after per-op requests changed it: every
// non-dead row is re-probed (a delete reshapes hash chains and tree
// nodes, changing the static traces of records that never moved), and
// the pause mirrors are re-snapshotted from the engines. dead marks
// dataset records currently deleted; their rows are left stale, which
// is safe because the client never batches a frame touching a dead
// record. It returns the refreshed table, or nil — leaving the batched
// kernel latched off until the next retry — when an engine stopped
// promising static traces (e.g. a tree delete-merge left a full node).
//
// Unlike the migration path (ApplyMoves), no Quiesce happens here: the
// per-op reference replay of the same trace leaves deferred structural
// work pending, and settling it would change subsequent costs away
// from that reference.
func (d *Deployment) RetryBatchTable(dead []bool) *ReplayTable {
	if d.cfg.DisableBatchReplay || d.records == nil {
		return nil
	}
	var brs [2]kvstore.BatchReplayer
	for i, inst := range d.instances {
		br, ok := inst.(kvstore.BatchReplayer)
		if !ok || !br.ReplayReady() {
			d.table, d.tableBuilt = nil, true
			return nil
		}
		brs[i] = br
	}
	t := d.table
	if t == nil {
		t = &ReplayTable{d: d, costs: make([]opCost, len(d.records)), stallNs: float64(d.cfg.Fault.stall())}
	}
	for i := range d.records {
		if dead != nil && dead[i] {
			continue
		}
		if !d.fillCost(t, i, brs) {
			d.table, d.tableBuilt = nil, true
			return nil
		}
	}
	for i, br := range brs {
		pm := br.ReplayPauses()
		t.pause[i] = pauseState{budget: pm.BudgetBytes, perOp: pm.PerOpBytes,
			pauseNs: pm.PauseNs, accum: pm.Accum, reset: pm.Accum}
	}
	d.table, d.tableBuilt = t, true
	return t
}
