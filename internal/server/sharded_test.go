package server

import (
	"errors"
	"strings"
	"testing"

	"mnemo/internal/kvstore"
	"mnemo/internal/memsim"
	"mnemo/internal/ycsb"
)

func shardedWorkload(t *testing.T) *ycsb.Workload {
	t.Helper()
	w, err := ycsb.Generate(ycsb.Spec{
		Name: "sd-test", Keys: 800, Requests: 6000,
		Dist: ycsb.DistSpec{Kind: ycsb.Uniform}, ReadRatio: 0.8,
		Sizes: ycsb.SizeFixed1KB, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewShardedDeploymentValidates(t *testing.T) {
	w := shardedWorkload(t)
	cfg := DefaultConfig(RedisLike, 1)
	if _, err := NewShardedDeployment(cfg, w); err == nil {
		t.Fatal("Shards=0 accepted")
	}
	cfg.Shards = 300
	if err := mustShardedErr(t, cfg, w); !strings.Contains(err, "at most") {
		t.Fatalf("Shards=300 error not descriptive: %s", err)
	}
	cfg.Shards = 4
	cfg.VirtualNodes = -1
	if err := mustShardedErr(t, cfg, w); !strings.Contains(err, "VirtualNodes") {
		t.Fatalf("VirtualNodes=-1 error not descriptive: %s", err)
	}
}

func mustShardedErr(t *testing.T, cfg Config, w *ycsb.Workload) string {
	t.Helper()
	_, err := NewShardedDeployment(cfg, w)
	if err == nil {
		t.Fatalf("config %+v accepted", cfg)
	}
	return err.Error()
}

// TestShardedLoadRemapsPlacement checks tier assignment is invariant
// under sharding: each record lands on the tier the global placement
// gives it, resolved through the shard-local index.
func TestShardedLoadRemapsPlacement(t *testing.T) {
	w := shardedWorkload(t)
	third := len(w.Dataset.Records) / 3
	fastIdx := make([]int, third)
	for i := range fastIdx {
		fastIdx[i] = i
	}
	p := FastIndices(fastIdx, len(w.Dataset.Records))
	cfg := DefaultConfig(RedisLike, 5)
	cfg.Shards = 4
	sd, err := NewShardedDeployment(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := sd.Load(p); err != nil {
		t.Fatal(err)
	}
	fastSeen := 0
	for s := 0; s < sd.Shards(); s++ {
		d := sd.Dep(s)
		part := sd.Partition()
		for local, g := range part.Subs[s].GlobalIndex {
			want := p.TierOfIndex(int(g))
			if got := d.Placement().TierOfIndex(local); got != want {
				t.Fatalf("shard %d record %d (global %d): tier %v, want %v", s, local, g, got, want)
			}
			if want == memsim.Fast {
				fastSeen++
			}
		}
	}
	if fastSeen != third {
		t.Fatalf("remap covered %d fast records, want %d", fastSeen, third)
	}
}

func TestShardedSeedsAndClock(t *testing.T) {
	w := shardedWorkload(t)
	cfg := DefaultConfig(RedisLike, 100)
	cfg.Shards = 3
	if got := cfg.shardConfig(0).Seed; got != 100 {
		t.Fatalf("shard 0 seed %d, want the base seed", got)
	}
	if got := cfg.shardConfig(2).Seed; got != 100+2*shardSeedStride {
		t.Fatalf("shard 2 seed %d", got)
	}
	if got := cfg.shardConfig(1); got.Shards != 0 || got.VirtualNodes != 0 {
		t.Fatal("member config kept cluster fields")
	}

	sd, err := NewShardedDeployment(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if sd.ResetRun(1) {
		t.Fatal("ResetRun before Load should fail")
	}
	if err := sd.Load(AllFast()); err != nil {
		t.Fatal(err)
	}
	if !sd.Reusable() {
		t.Fatal("batch-capable cluster not reusable")
	}
	// Advance one shard's clock; cluster clock is the max.
	sd.Dep(1).DoIndex(0, kvstore.Read)
	if sd.Clock() != sd.Dep(1).Clock() {
		t.Fatalf("cluster clock %v != busiest shard %v", sd.Clock(), sd.Dep(1).Clock())
	}
	if !sd.ResetRun(7) {
		t.Fatal("ResetRun after Load failed")
	}
	if sd.Clock() != 0 {
		t.Fatalf("clock %v after reset", sd.Clock())
	}
}

func TestShardedAccessorsAndFaults(t *testing.T) {
	w := shardedWorkload(t)
	cfg := DefaultConfig(RedisLike, 9)
	cfg.Shards = 3
	sd, err := NewShardedDeployment(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if sd.Engine() != RedisLike {
		t.Fatalf("engine %v", sd.Engine())
	}
	recs, reqs := 0, 0
	for s := 0; s < sd.Shards(); s++ {
		sub := sd.Sub(s)
		recs += len(sub.Dataset.Records)
		reqs += sub.RequestCount()
	}
	if recs != len(w.Dataset.Records) || reqs != w.RequestCount() {
		t.Fatalf("subs cover %d records / %d requests, want %d / %d",
			recs, reqs, len(w.Dataset.Records), w.RequestCount())
	}
	if err := sd.InjectedFailure(); err != nil {
		t.Fatalf("healthy cluster reported fault: %v", err)
	}

	// Certain failure: the first fail-fated shard surfaces with a shard
	// prefix, still unwrappable to the typed *FaultError.
	fcfg := cfg
	fcfg.Fault = FaultSpec{Seed: 1, FailProb: 1}
	fsd, err := NewShardedDeployment(fcfg, w)
	if err != nil {
		t.Fatal(err)
	}
	ferr := fsd.InjectedFailure()
	if ferr == nil || !strings.HasPrefix(ferr.Error(), "shard 0:") {
		t.Fatalf("multi-shard fault = %v, want shard-prefixed", ferr)
	}
	var fe *FaultError
	if !errors.As(ferr, &fe) || fe.Kind != FaultFail {
		t.Fatalf("fault not unwrappable: %v", ferr)
	}

	// A one-shard cluster returns the member's error bare, matching the
	// single deployment's contract.
	fcfg.Shards = 1
	f1, err := NewShardedDeployment(fcfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if berr := f1.InjectedFailure(); berr == nil || strings.HasPrefix(berr.Error(), "shard") {
		t.Fatalf("one-shard fault = %v, want bare *FaultError", berr)
	}
}

// TestShardedResetRebuildsWhenSnapshotUnavailable pins ResetRun's
// fallback: with the batched kernel disabled no shard has a snapshot,
// so every member is rebuilt fresh from its kept local placement.
func TestShardedResetRebuildsWhenSnapshotUnavailable(t *testing.T) {
	w := shardedWorkload(t)
	cfg := DefaultConfig(RedisLike, 3)
	cfg.Shards = 2
	cfg.DisableBatchReplay = true
	sd, err := NewShardedDeployment(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := sd.Load(AllFast()); err != nil {
		t.Fatal(err)
	}
	if sd.Reusable() {
		t.Fatal("per-op cluster claims snapshot reuse")
	}
	before := []*Deployment{sd.Dep(0), sd.Dep(1)}
	sd.Dep(0).DoIndex(0, kvstore.Read)
	if !sd.ResetRun(5) {
		t.Fatal("rebuild reset failed")
	}
	if sd.Clock() != 0 {
		t.Fatalf("clock %v after rebuild reset", sd.Clock())
	}
	for s := range before {
		if sd.Dep(s) == before[s] {
			t.Fatalf("shard %d deployment not rebuilt", s)
		}
		if got := sd.Dep(s).Placement().TierOfIndex(0); got != memsim.Fast {
			t.Fatalf("shard %d rebuilt placement tier %v", s, got)
		}
	}
	sd.FlushObs() // sink-less flush must be a safe no-op, in shard order
}
