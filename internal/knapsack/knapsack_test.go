package knapsack

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDensityOrder(t *testing.T) {
	items := []Item{
		{Weight: 10, Profit: 10}, // density 1
		{Weight: 1, Profit: 5},   // density 5
		{Weight: 100, Profit: 1}, // density 0.01
		{Weight: 2, Profit: 4},   // density 2
	}
	order := DensityOrder(items)
	want := []int{1, 3, 0, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDensityOrderZeroWeightFirst(t *testing.T) {
	items := []Item{{Weight: 1, Profit: 100}, {Weight: 0, Profit: 1}}
	order := DensityOrder(items)
	if order[0] != 1 {
		t.Fatalf("zero-weight item not first: %v", order)
	}
}

func TestDensityOrderTiesStable(t *testing.T) {
	items := []Item{{Weight: 2, Profit: 2}, {Weight: 4, Profit: 4}, {Weight: 1, Profit: 1}}
	order := DensityOrder(items)
	want := []int{0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("tie order = %v, want index order", order)
		}
	}
}

func TestGreedyRespectsCapacity(t *testing.T) {
	items := []Item{
		{Weight: 6, Profit: 12}, // density 2
		{Weight: 5, Profit: 5},  // density 1
		{Weight: 4, Profit: 3},  // density 0.75
	}
	picked, profit := Greedy(items, 10)
	if !picked[0] || picked[1] || !picked[2] {
		t.Fatalf("picked = %v; greedy should skip the 5-weight and take the 4-weight", picked)
	}
	if profit != 15 {
		t.Fatalf("profit = %v, want 15", profit)
	}
	if TotalWeight(items, picked) > 10 {
		t.Fatal("capacity violated")
	}
}

func TestGreedyZeroCapacity(t *testing.T) {
	picked, profit := Greedy([]Item{{Weight: 1, Profit: 1}}, 0)
	if picked[0] || profit != 0 {
		t.Fatal("zero capacity packed something")
	}
}

func TestExactKnownInstance(t *testing.T) {
	// Classic: greedy is suboptimal here, exact is not.
	items := []Item{
		{Weight: 10, Profit: 60}, // density 6
		{Weight: 20, Profit: 100},
		{Weight: 30, Profit: 120},
	}
	_, exactProfit := Exact(items, 50)
	if exactProfit != 220 {
		t.Fatalf("exact profit = %v, want 220", exactProfit)
	}
}

func TestExactBeatsOrMatchesGreedyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	f := func() bool {
		n := 1 + rng.Intn(12)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{Weight: int64(1 + rng.Intn(30)), Profit: float64(rng.Intn(100))}
		}
		capacity := int64(rng.Intn(100))
		gp, gprofit := Greedy(items, capacity)
		ep, eprofit := Exact(items, capacity)
		if TotalWeight(items, gp) > capacity || TotalWeight(items, ep) > capacity {
			return false
		}
		return eprofit >= gprofit-1e-9
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestExactPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Exact([]Item{{Weight: -1, Profit: 1}}, 10) },
		func() { Exact(nil, -1) },
		func() { Greedy(nil, -1) },
		func() {
			big := make([]Item, 100000)
			Exact(big, 1<<40)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestTotalWeight(t *testing.T) {
	items := []Item{{Weight: 3}, {Weight: 5}, {Weight: 7}}
	if got := TotalWeight(items, []bool{true, false, true}); got != 10 {
		t.Fatalf("TotalWeight = %d", got)
	}
}
