// Package knapsack implements the tiering formulation used by MnemoT's
// Pattern Engine and by the existing tiering solutions the paper adopts
// its methodology from (X-Mem, Unimem, Tahoe): key-value pairs are items
// whose weight is their size and whose profit is their access count, and
// FastMem is a knapsack of fixed capacity.
//
// The predominant practical method — and what MnemoT uses — is the greedy
// profit-density ordering (accesses / size). The exact 0/1 dynamic
// program is also provided for the ablation benchmark that quantifies how
// little the greedy heuristic gives up at key-value granularity.
package knapsack

import (
	"fmt"
	"sort"
)

// Item is one key-value pair.
type Item struct {
	// Weight is the item's size in capacity units (bytes, or a coarser
	// unit for the exact DP).
	Weight int64
	// Profit is the benefit of placing the item in FastMem (access count,
	// or weighted access count).
	Profit float64
}

// DensityOrder returns item indices sorted by descending profit density
// (profit/weight) — hot keys first, with small keys advantaged so "more
// key-value pairs can be satisfied by FastMem until capacity is full"
// (§IV). Zero-weight items sort first (they cost nothing to place); ties
// break by index for determinism.
func DensityOrder(items []Item) []int {
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	density := func(it Item) float64 {
		if it.Weight <= 0 {
			return float64(1<<62) + it.Profit // effectively infinite
		}
		return it.Profit / float64(it.Weight)
	}
	sort.SliceStable(order, func(a, b int) bool {
		da, db := density(items[order[a]]), density(items[order[b]])
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	return order
}

// Greedy packs items in density order until capacity is exhausted,
// returning the picked set and total profit. Items that do not fit are
// skipped (classic greedy 0/1 behaviour), so a small later item may still
// be packed.
func Greedy(items []Item, capacity int64) (picked []bool, profit float64) {
	if capacity < 0 {
		panic(fmt.Sprintf("knapsack: negative capacity %d", capacity))
	}
	picked = make([]bool, len(items))
	remaining := capacity
	for _, idx := range DensityOrder(items) {
		it := items[idx]
		if it.Weight > remaining {
			continue
		}
		picked[idx] = true
		remaining -= it.Weight
		profit += it.Profit
	}
	return picked, profit
}

// Exact solves the 0/1 knapsack exactly by dynamic programming over
// capacity. Memory and time are O(n·capacity), so callers must keep
// capacity in coarse units (the ablation uses 4 KB pages). It panics on
// negative weights or capacity; use Greedy for byte-granularity problems.
func Exact(items []Item, capacity int64) (picked []bool, profit float64) {
	if capacity < 0 {
		panic(fmt.Sprintf("knapsack: negative capacity %d", capacity))
	}
	const maxCells = 200_000_000
	if int64(len(items)+1)*(capacity+1) > maxCells {
		panic(fmt.Sprintf("knapsack: DP of %d items × %d capacity too large; coarsen units",
			len(items), capacity))
	}
	cap := int(capacity)
	// dp[w] = best profit using items seen so far within weight w;
	// keep[i][w] records the decision for reconstruction.
	dp := make([]float64, cap+1)
	keep := make([][]bool, len(items))
	for i, it := range items {
		if it.Weight < 0 {
			panic(fmt.Sprintf("knapsack: negative weight %d", it.Weight))
		}
		keep[i] = make([]bool, cap+1)
		w := int(it.Weight)
		for c := cap; c >= w; c-- {
			if cand := dp[c-w] + it.Profit; cand > dp[c] {
				dp[c] = cand
				keep[i][c] = true
			}
		}
	}
	picked = make([]bool, len(items))
	c := cap
	for i := len(items) - 1; i >= 0; i-- {
		if keep[i][c] {
			picked[i] = true
			c -= int(items[i].Weight)
		}
	}
	return picked, dp[cap]
}

// TotalWeight sums the weights of picked items.
func TotalWeight(items []Item, picked []bool) int64 {
	var w int64
	for i, p := range picked {
		if p {
			w += items[i].Weight
		}
	}
	return w
}
