package client

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strconv"
	"testing"

	"mnemo/internal/kvstore"
	"mnemo/internal/server"
	"mnemo/internal/simclock"
	"mnemo/internal/trace"
	"mnemo/internal/ycsb"
)

// streamedTwin spills a workload to a temporary .mtrc file and reopens
// it as a streamed workload: same dataset, same op sequence, different
// backing. Every equivalence test below runs the pair through identical
// configs and demands bit-identical outcomes.
func streamedTwin(t *testing.T, w *ycsb.Workload) *ycsb.Workload {
	t.Helper()
	path := filepath.Join(t.TempDir(), "twin.mtrc")
	if err := trace.WriteWorkload(w, path); err != nil {
		t.Fatal(err)
	}
	tw, err := trace.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	// The on-disk header carries only the trace dimensions; restore the
	// full spec so run labels match the in-memory twin's.
	tw.Spec = w.Spec
	return tw
}

// requireTwinOutcome runs one config over both backings of the same
// trace and asserts bit-identical stats and error text.
func requireTwinOutcome(t *testing.T, label string, cfg server.Config, w, tw *ycsb.Workload, p server.Placement) {
	t.Helper()
	want, errW := Execute(cfg, w, p)
	got, errT := Execute(cfg, tw, p)
	if (errW == nil) != (errT == nil) {
		t.Fatalf("%s: in-memory err %v, streamed err %v", label, errW, errT)
	}
	if errW != nil && errW.Error() != errT.Error() {
		t.Fatalf("%s: error text diverged:\n  in-memory: %v\n  streamed:  %v", label, errW, errT)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("%s: stats diverged:\n  in-memory: %+v\n  streamed:  %+v", label, want, got)
	}
}

// TestStreamedReplayEngages pins the preconditions that make the
// equivalence tests below meaningful: a spilled read/write trace comes
// back stream-backed with every frame flagged for the batched kernel,
// and the default deployment actually exposes the kernel to serve them.
func TestStreamedReplayEngages(t *testing.T) {
	tw := streamedTwin(t, testWorkload(0.9))
	if tw.Stream == nil {
		t.Fatal("reopened trace is not stream-backed")
	}
	if tw.Packed() != nil {
		t.Fatal("stream-backed workload still exposes a packed trace")
	}
	it, err := tw.Stream.Frames()
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, _, rw, err := it.Next()
		if err != nil {
			break
		}
		if !rw {
			t.Fatal("read/write trace produced a frame not flagged for the kernel")
		}
	}
	d := server.NewDeployment(server.DefaultConfig(server.RedisLike, 1))
	if err := d.Load(tw.Dataset, server.AllFast()); err != nil {
		t.Fatal(err)
	}
	if d.BatchTable() == nil {
		t.Fatal("BatchTable nil on a loaded default deployment")
	}
}

// TestStreamedReplayBitIdentical is the streamed golden-equivalence
// test: for every engine, placement split, read ratio and replay path
// (kernel and per-op reference), replaying from disk must reproduce the
// in-memory run bit for bit.
func TestStreamedReplayBitIdentical(t *testing.T) {
	for _, ratio := range []float64{1.0, 0.7} {
		w := testWorkload(ratio)
		tw := streamedTwin(t, w)
		half := make([]int, 500)
		for i := range half {
			half[i] = i
		}
		for _, e := range goldenEngines {
			for _, p := range []server.Placement{server.AllFast(), server.AllSlow(), server.FastIndices(half, len(w.Dataset.Records))} {
				cfg := server.DefaultConfig(e, 42)
				requireTwinOutcome(t, e.String(), cfg, w, tw, p)
				perOp := cfg
				perOp.DisableBatchReplay = true
				requireTwinOutcome(t, e.String()+"/per-op", perOp, w, tw, p)
			}
		}
	}
}

// deleteStreamWorkload is deleteTraceWorkload's pattern at trace scale:
// a read-heavy trace with Deletes scattered through it, so streamed
// replay must classify frames, fall back to per-op pricing for the
// Delete-bearing ones, and re-prime the kernel afterwards.
func deleteStreamWorkload(t *testing.T) *ycsb.Workload {
	t.Helper()
	w, err := ycsb.Generate(ycsb.Spec{
		Name: "stream-delete", Keys: 400, Requests: 9000,
		Dist:      ycsb.DistSpec{Kind: ycsb.Zipfian},
		ReadRatio: 0.9,
		Sizes:     ycsb.SizeThumbnail,
		Seed:      13,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 50; i < len(w.Ops); i += 97 {
		w.Ops[i].Kind = kvstore.Delete
	}
	return w
}

// TestStreamedReplayDeleteBitIdentical covers the structural-frame
// path: Delete-bearing frames drop to per-op pricing (with the
// pause-state handshake around them) while read/write frames before and
// after still take the kernel — and the result must equal the in-memory
// run, which on a Delete-bearing trace is per-op throughout.
func TestStreamedReplayDeleteBitIdentical(t *testing.T) {
	w := deleteStreamWorkload(t)
	if w.Packed().Batchable() {
		t.Fatal("delete trace still batchable; kernel fallback not exercised")
	}
	tw := streamedTwin(t, w)
	for _, e := range goldenEngines {
		cfg := server.DefaultConfig(e, 42)
		requireTwinOutcome(t, e.String(), cfg, w, tw, server.AllSlow())
		perOp := cfg
		perOp.DisableBatchReplay = true
		requireTwinOutcome(t, e.String()+"/per-op", perOp, w, tw, server.AllFast())
	}
}

// TestStreamedReplayBitIdenticalWithFaults drives both backings through
// the fault fates — fail, stall, outlier — across enough seeds to roll
// each at least once.
func TestStreamedReplayBitIdenticalWithFaults(t *testing.T) {
	w := testWorkload(0.9)
	tw := streamedTwin(t, w)
	sawErr := false
	for _, e := range goldenEngines {
		for seed := int64(0); seed < 6; seed++ {
			cfg := server.DefaultConfig(e, seed)
			cfg.Fault = server.FaultSpec{Seed: 99, FailProb: 0.2, StallProb: 0.3, OutlierProb: 0.3}
			cfg.RunTimeout = 2 * simclock.Second
			want, errW := Execute(cfg, w, server.AllFast())
			got, errT := Execute(cfg, tw, server.AllFast())
			if (errW == nil) != (errT == nil) || (errW != nil && errW.Error() != errT.Error()) {
				t.Fatalf("%v seed %d: in-memory err %v, streamed err %v", e, seed, errW, errT)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%v seed %d: stats diverged:\n  in-memory: %+v\n  streamed:  %+v", e, seed, want, got)
			}
			if errW != nil {
				sawErr = true
			}
		}
	}
	if !sawErr {
		t.Error("no fault fired across seeds; coverage vacuous")
	}
}

// TestStreamedReplayTimeoutParity pins the budget cutoff: a streamed
// run must trip at the same request, with the same message, as the
// in-memory run.
func TestStreamedReplayTimeoutParity(t *testing.T) {
	w := testWorkload(0.9)
	tw := streamedTwin(t, w)
	cfg := server.DefaultConfig(server.RedisLike, 7)
	cfg.RunTimeout = 20 * simclock.Millisecond // trips mid-trace
	_, errW := Execute(cfg, w, server.AllSlow())
	_, errT := Execute(cfg, tw, server.AllSlow())
	if errW == nil || errT == nil {
		t.Fatalf("budget did not trip (in-memory %v, streamed %v)", errW, errT)
	}
	if !errors.Is(errT, ErrRunTimeout) {
		t.Fatalf("streamed error %v does not wrap ErrRunTimeout", errT)
	}
	if errW.Error() != errT.Error() {
		t.Fatalf("timeout text diverged:\n  in-memory: %v\n  streamed:  %v", errW, errT)
	}
}

// TestStreamedShardedBitIdentical covers the partitioner's spool path:
// a streamed workload split across a consistent-hash cluster — on both
// a clean read/write trace and a Delete-bearing one — must measure
// bit-identically to the same cluster fed from memory.
func TestStreamedShardedBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		w    *ycsb.Workload
	}{
		{"readwrite", testWorkload(0.9)},
		{"deletes", deleteStreamWorkload(t)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tw := streamedTwin(t, tc.w)
			for _, shards := range []int{2, 3} {
				cfg := server.DefaultConfig(server.RedisLike, 42)
				cfg.Shards = shards
				requireTwinOutcome(t, fmt.Sprintf("shards=%d", shards), cfg, tc.w, tw, server.AllFast())
			}
			// Sharded with faults: per-shard chaos must land identically.
			cfg := server.DefaultConfig(server.MemcachedLike, 5)
			cfg.Shards = 3
			cfg.Fault = server.FaultSpec{Seed: 11, OutlierProb: 0.5}
			requireTwinOutcome(t, "shards=3/faults", cfg, tc.w, tw, server.AllSlow())
		})
	}
}

// TestStreamedAdaptiveRejected pins the explicit incompatibility:
// adaptive tiering replays epoch windows out of a materialized trace,
// so a streamed workload must be refused up front, not half-replayed.
func TestStreamedAdaptiveRejected(t *testing.T) {
	tw := streamedTwin(t, testWorkload(0.9))
	cfg := server.DefaultConfig(server.RedisLike, 1)
	cfg.Adaptive = greedySource{}
	cfg.EpochOps = 4096
	if _, err := Execute(cfg, tw, server.AllFast()); err == nil {
		t.Fatal("adaptive replay accepted a streamed trace")
	}
}

// TestStreamedReplayBoundedMemory is the O(frame) guarantee: heap
// allocation during a streamed replay must not scale with trace length.
// The default trace is ~2.6M ops (64× the frame size); setting
// MNEMO_BIGTRACE_OPS=100000000 scales the same check to a 100M-op,
// ~500MB trace. Materializing the default trace would need ≥13MB for
// the packed ops alone; the streamed replay must stay far under that.
func TestStreamedReplayBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-op trace replay")
	}
	ops := 64 * 4096
	if env := os.Getenv("MNEMO_BIGTRACE_OPS"); env != "" {
		v, err := strconv.Atoi(env)
		if err != nil {
			t.Fatalf("MNEMO_BIGTRACE_OPS: %v", err)
		}
		ops = v
	}
	spec := ycsb.Spec{
		Name: "bigtrace", Keys: 4096, Requests: ops,
		Dist:      ycsb.DistSpec{Kind: ycsb.Hotspot, HotSetFraction: 0.2, HotOpnFraction: 0.9},
		ReadRatio: 0.95, Sizes: ycsb.SizeFixed1KB, Seed: 21,
	}
	path := filepath.Join(t.TempDir(), "big.mtrc")
	w, err := trace.GenerateFile(spec, path)
	if err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("trace: %d ops, %d bytes on disk", ops, st.Size())

	d := server.NewDeployment(server.DefaultConfig(server.RedisLike, 3))
	if err := d.Load(w.Dataset, server.AllFast()); err != nil {
		t.Fatal(err)
	}
	classes := sizeClasses(w.Dataset.Records)
	a := newReplayAccum()
	ctx := context.Background()

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if err := replayStatic(ctx, d, w, classes, a, 0); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	allocated := after.TotalAlloc - before.TotalAlloc

	// The whole replay may allocate a few frame buffers and iterator
	// scaffolding — nothing that grows with the trace. 8MB is ~40× the
	// per-iterator footprint and far below the packed in-memory cost of
	// even the default trace length.
	const capBytes = 8 << 20
	if allocated > capBytes {
		t.Fatalf("streamed replay of %d ops allocated %d bytes, cap %d", ops, allocated, capBytes)
	}
	t.Logf("replay allocated %d bytes total (cap %d)", allocated, capBytes)
}

// BenchmarkReplayStreamed measures the streamed frame path against the
// in-memory batched kernel it mirrors: same deployment, same trace,
// identical simulated results (TestStreamedReplayBitIdentical) — the
// streamed side additionally pays frame decode, CRC verification and
// the 64KB read-ahead. The benchgate family for this benchmark holds
// the streamed-over-batched ratio near 1.0: streaming from disk must
// stay within a few percent of replaying from memory.
func BenchmarkReplayStreamed(b *testing.B) {
	w := benchWorkload(b)
	path := filepath.Join(b.TempDir(), "bench.mtrc")
	if err := trace.WriteWorkload(w, path); err != nil {
		b.Fatal(err)
	}
	tw, err := trace.Open(path)
	if err != nil {
		b.Fatal(err)
	}
	tw.Spec = w.Spec
	recs := w.Dataset.Records
	half := len(recs) / 2
	fastIdx := make([]int, half)
	for i := 0; i < half; i++ {
		fastIdx[i] = i
	}
	p := server.FastIndices(fastIdx, len(recs))
	perOp := func(b *testing.B) {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(w.Ops)), "ns/req")
	}
	ctx := context.Background()

	b.Run("Batched", func(b *testing.B) {
		d := benchDeployment(b, w, p)
		tab := d.BatchTable()
		if tab == nil {
			b.Fatal("no batch table")
		}
		pt := w.Packed()
		classes := sizeClasses(recs)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a := newReplayAccum()
			if err := replayBatched(ctx, d, tab, pt.Keys, pt.Kinds, classes, a, 0); err != nil {
				b.Fatal(err)
			}
		}
		perOp(b)
	})
	b.Run("Streamed", func(b *testing.B) {
		d := benchDeployment(b, tw, p)
		classes := sizeClasses(recs)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a := newReplayAccum()
			if err := replayStatic(ctx, d, tw, classes, a, 0); err != nil {
				b.Fatal(err)
			}
		}
		perOp(b)
	})
}
