package client

// Before/after microbenchmarks of the replay fast path. The baseline
// sub-benchmark reproduces the pre-optimization per-op stack verbatim —
// string-keyed routing through a placement map, a key re-hash inside the
// engine, the container/list+map LLC model, the double valueBytes
// computation, log-formula histogram bucketing, Welford summaries, and
// map-based accumulators — so the speedup of the shipped path is measured
// against the real predecessor, not a strawman. The replicas are frozen
// copies of the superseded implementations; they live only here.

import (
	"container/list"
	"context"
	"fmt"
	"math"
	"runtime"
	"testing"

	"mnemo/internal/kvstore"
	"mnemo/internal/memsim"
	"mnemo/internal/server"
	"mnemo/internal/simclock"
	"mnemo/internal/stats"
	"mnemo/internal/ycsb"
)

func benchWorkload(b *testing.B) *ycsb.Workload {
	b.Helper()
	// Quick scale: 1 000 keys × 10 000 requests, the repo's fast
	// experiment tier. Records are the paper's ≈100 KB thumbnail objects,
	// which keeps the hot set (≈20 MB) larger than the 12 MB LLC so the
	// replay exercises the cache eviction path, not just hits.
	return ycsb.MustGenerate(ycsb.Spec{
		Name: "bench", Keys: 1000, Requests: 10000,
		Dist:      ycsb.DistSpec{Kind: ycsb.Hotspot, HotSetFraction: 0.2, HotOpnFraction: 0.9},
		ReadRatio: 0.95, Sizes: ycsb.SizeFixed100KB, Seed: 42,
	})
}

func benchDeployment(b *testing.B, w *ycsb.Workload, p server.Placement) *server.Deployment {
	b.Helper()
	d := server.NewDeployment(server.DefaultConfig(server.RedisLike, 42))
	if err := d.Load(w.Dataset, p); err != nil {
		b.Fatal(err)
	}
	return d
}

// legacyLLC is the pre-optimization memsim.LRUCache: container/list
// entries indexed by a map, exactly the structure the flat-slice cache
// replaced.
type legacyLLC struct {
	capacity     int64
	used         int64
	order        *list.List
	index        map[uint64]*list.Element
	hits, misses int64
}

type legacyLLCEntry struct {
	id    uint64
	bytes int64
}

func newLegacyLLC(capacity int64) *legacyLLC {
	return &legacyLLC{capacity: capacity, order: list.New(), index: make(map[uint64]*list.Element)}
}

func (c *legacyLLC) access(rec memsim.RecordRef) bool {
	size := int64(rec.Bytes)
	if el, ok := c.index[rec.ID]; ok {
		if el.Value.(legacyLLCEntry).bytes == size {
			c.order.MoveToFront(el)
			c.hits++
			return true
		}
		c.removeElement(el)
	}
	c.misses++
	if size > c.capacity {
		return false
	}
	for c.used+size > c.capacity {
		if back := c.order.Back(); back != nil {
			c.removeElement(back)
		}
	}
	c.index[rec.ID] = c.order.PushFront(legacyLLCEntry{id: rec.ID, bytes: size})
	c.used += size
	return false
}

func (c *legacyLLC) remove(id uint64) {
	if el, ok := c.index[id]; ok {
		c.removeElement(el)
	}
}

func (c *legacyLLC) removeElement(el *list.Element) {
	ent := el.Value.(legacyLLCEntry)
	c.order.Remove(el)
	delete(c.index, ent.id)
	c.used -= ent.bytes
}

// legacyMachine is the pre-optimization memsim.Machine access path: Touch
// builds a full Traffic breakdown per access (the shipped pricing path
// asks the narrow TouchHit instead) and the LLC is the container/list
// model above.
type legacyMachine struct {
	fast, slow *memsim.Node
	llc        *legacyLLC
}

func (m *legacyMachine) node(t memsim.Tier) *memsim.Node {
	if t == memsim.Fast {
		return m.fast
	}
	return m.slow
}

func (m *legacyMachine) touch(t memsim.Tier, rec memsim.RecordRef, chases int) memsim.Traffic {
	tr := memsim.Traffic{Tier: t, Chases: chases}
	if m.llc != nil && m.llc.access(rec) {
		tr.CacheHit = true
		tr.HitBytes = rec.Bytes
		return tr
	}
	tr.MissBytes = rec.Bytes
	return tr
}

func (m *legacyMachine) invalidate(rec memsim.RecordRef) {
	if m.llc != nil {
		m.llc.remove(rec.ID)
	}
}

// legacyDeployment reproduces the pre-optimization server.Deployment
// request path: string-keyed placement lookup, engine access through the
// string API (which re-hashes the key), the legacy machine and LLC model,
// and the service-time computation that derived valueBytes twice per
// request.
type legacyDeployment struct {
	machine   *legacyMachine
	clock     simclock.Clock
	instances [2]kvstore.Store
	placement server.Placement
	noise     *server.Noise
	profile   kvstore.EngineProfile
}

func newLegacyDeployment(cfg server.Config) *legacyDeployment {
	m := &legacyMachine{
		fast: memsim.NewNode(cfg.Machine.FastParams, cfg.Machine.FastCapacity),
		slow: memsim.NewNode(cfg.Machine.SlowParams, cfg.Machine.SlowCapacity),
	}
	if cfg.Machine.LLCBytes > 0 {
		m.llc = newLegacyLLC(cfg.Machine.LLCBytes)
	}
	d := &legacyDeployment{
		machine:   m,
		placement: server.AllFast(),
		noise:     server.NewNoise(cfg.NoiseSigma, cfg.Seed),
		profile:   cfg.Engine.Profile(),
	}
	d.instances[memsim.Fast] = newBenchStore(cfg.Engine)
	d.instances[memsim.Slow] = newBenchStore(cfg.Engine)
	return d
}

func newBenchStore(e server.Engine) kvstore.Store {
	// Instantiate through a throwaway deployment so the replica does not
	// need the unexported engine constructor table.
	return server.NewDeployment(server.Config{Engine: e}).Instance(memsim.Fast)
}

func (d *legacyDeployment) load(ds ycsb.Dataset, p server.Placement) {
	d.placement = p
	for _, rec := range ds.Records {
		tier := p.TierOf(rec.Key)
		d.instances[tier].Put(rec.Key, kvstore.Sized(rec.Size))
		d.instances[tier].TakePauseNs() // setup-phase stalls are not timed
	}
	if d.machine.llc != nil {
		d.machine.llc = newLegacyLLC(d.machine.llc.capacity)
	}
}

func (d *legacyDeployment) do(key string, kind kvstore.OpKind, size int) server.Result {
	tier := d.placement.TierOf(key)
	st := d.instances[tier]
	var tr kvstore.OpTrace
	switch kind {
	case kvstore.Read:
		_, tr = st.Get(key)
	case kvstore.Write:
		tr = st.Put(key, kvstore.Sized(size))
	case kvstore.Delete:
		tr = st.Del(key)
	default:
		panic(fmt.Sprintf("bench: unknown op kind %v", kind))
	}

	ref := memsim.RecordRef{ID: tr.RecordID, Bytes: d.valueBytes(tr, size)}
	traffic := d.machine.touch(tier, ref, tr.Chases)
	if kind == kvstore.Delete {
		d.machine.invalidate(ref)
	}

	var medium memsim.NodeParams
	if traffic.CacheHit {
		medium = memsim.LLCParams
	} else {
		medium = d.machine.node(tier).Params
	}
	transferNs := medium.TransferNs(tr.Touched)
	if kind == kvstore.Write {
		transferNs *= d.profile.WritePenalty
	}
	memNs := (medium.ChaseNs(tr.Chases) + transferNs) / d.profile.MLP

	// The predecessor recomputed valueBytes here instead of reusing ref.
	cpuNs := d.profile.CPUBaseNs + d.profile.CPUPerByteNs*float64(d.valueBytes(tr, size))
	serviceNs := (cpuNs+memNs)*d.noise.Factor() + st.TakePauseNs()

	lat := simclock.FromNanos(serviceNs)
	d.clock.Advance(lat)
	return server.Result{Tier: tier, Kind: kind, Latency: lat, Found: tr.Found, Hit: traffic.CacheHit}
}

func (d *legacyDeployment) valueBytes(tr kvstore.OpTrace, writeSize int) int {
	if tr.Kind == kvstore.Write {
		return writeSize
	}
	if !tr.Found {
		return 0
	}
	amp := d.profile.ReadAmplification
	if amp < 1 {
		amp = 1
	}
	return int(float64(tr.Touched) / amp)
}

// legacyHistogram reproduces the pre-optimization stats.Histogram Record
// path: the bucket index came straight from the defining formula with no
// cached log(growth) and no boundary table — two math.Log calls per
// recording.
type legacyHistogram struct {
	minVal, growth float64
	counts         []int64
	total          int64
	sum            float64
	maxSeen        float64
	minSeen        float64
}

func newLegacyHistogram(minVal, growth float64) *legacyHistogram {
	return &legacyHistogram{minVal: minVal, growth: growth, minSeen: math.Inf(1)}
}

func (h *legacyHistogram) Record(v float64) {
	idx := 0
	if v > h.minVal {
		idx = int(math.Log(v/h.minVal)/math.Log(h.growth)) + 1
	}
	if idx >= len(h.counts) {
		grown := make([]int64, idx+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[idx]++
	h.total++
	h.sum += v
	if v > h.maxSeen {
		h.maxSeen = v
	}
	if v < h.minSeen {
		h.minSeen = v
	}
}

// legacyReplay is the replay loop as it stood before the integer-keyed
// fast path: per-op string routing, map-keyed accumulators, Welford
// summaries, and a second run-level histogram recording per op.
func legacyReplay(d *legacyDeployment, w *ycsb.Workload) {
	var readSum, writeSum stats.Summary
	readBuckets := map[int]*stats.Summary{}
	writeBuckets := map[int]*stats.Summary{}
	readHists := map[int]*legacyHistogram{}
	writeHists := map[int]*legacyHistogram{}
	hist := newLegacyHistogram(latencyHistMin, latencyHistGrowth)
	for _, op := range w.Ops {
		rec := w.Dataset.Records[op.Key]
		res := d.do(rec.Key, op.Kind, rec.Size)
		ns := float64(res.Latency.Nanoseconds())
		hist.Record(ns)
		bkt := SizeBucket(rec.Size)
		if op.Kind == kvstore.Read {
			readSum.Add(ns)
			s, ok := readBuckets[bkt]
			if !ok {
				s = &stats.Summary{}
				readBuckets[bkt] = s
			}
			s.Add(ns)
			h, ok := readHists[bkt]
			if !ok {
				h = newLegacyHistogram(latencyHistMin, latencyHistGrowth)
				readHists[bkt] = h
			}
			h.Record(ns)
		} else {
			writeSum.Add(ns)
			s, ok := writeBuckets[bkt]
			if !ok {
				s = &stats.Summary{}
				writeBuckets[bkt] = s
			}
			s.Add(ns)
			h, ok := writeHists[bkt]
			if !ok {
				h = newLegacyHistogram(latencyHistMin, latencyHistGrowth)
				writeHists[bkt] = h
			}
			h.Record(ns)
		}
	}
}

// BenchmarkReplay measures one full Quick-scale trace replay per
// iteration: the pre-optimization string-keyed stack vs the shipped
// integer-keyed path (client.Run without the RunStats assembly).
func BenchmarkReplay(b *testing.B) {
	w := benchWorkload(b)
	recs := w.Dataset.Records
	half := len(recs) / 2
	fastKeys := make([]string, half)
	fastIdx := make([]int, half)
	for i := 0; i < half; i++ {
		fastKeys[i] = recs[i].Key
		fastIdx[i] = i
	}
	perOp := func(b *testing.B) {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(w.Ops)), "ns/req")
	}

	b.Run("StringKeyed", func(b *testing.B) {
		d := newLegacyDeployment(server.DefaultConfig(server.RedisLike, 42))
		d.load(w.Dataset, server.FastSet(fastKeys))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			legacyReplay(d, w)
		}
		perOp(b)
	})
	b.Run("Indexed", func(b *testing.B) {
		d := benchDeployment(b, w, server.FastIndices(fastIdx, len(recs)))
		classes := sizeClasses(recs)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a := newReplayAccum()
			replay(d, w, classes, a)
		}
		perOp(b)
	})
}

// BenchmarkReplayBatched measures the batched replay kernel against the
// shipped per-op indexed path it supersedes: same deployment layout,
// same trace, identical simulated results (TestBatchedReplayBitIdentical)
// — only the per-request machinery differs. Indexed drives every request
// through DoIndex (engine interface call, trace pricing, pause polling);
// Batched streams the packed trace through the precomputed cost table.
func BenchmarkReplayBatched(b *testing.B) {
	w := benchWorkload(b)
	recs := w.Dataset.Records
	half := len(recs) / 2
	fastIdx := make([]int, half)
	for i := 0; i < half; i++ {
		fastIdx[i] = i
	}
	p := server.FastIndices(fastIdx, len(recs))
	perOp := func(b *testing.B) {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(w.Ops)), "ns/req")
	}

	b.Run("Indexed", func(b *testing.B) {
		d := benchDeployment(b, w, p)
		classes := sizeClasses(recs)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a := newReplayAccum()
			replay(d, w, classes, a)
		}
		perOp(b)
	})
	b.Run("Batched", func(b *testing.B) {
		d := benchDeployment(b, w, p)
		tab := d.BatchTable()
		if tab == nil {
			b.Fatal("no batch table")
		}
		pt := w.Packed()
		if !pt.Batchable() {
			b.Fatal("trace not batchable")
		}
		classes := sizeClasses(recs)
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a := newReplayAccum()
			if err := replayBatched(ctx, d, tab, pt.Keys, pt.Kinds, classes, a, 0); err != nil {
				b.Fatal(err)
			}
		}
		perOp(b)
	})
}

// BenchmarkReplayAdaptive measures the epoch-chunked adaptive replay
// against the static path it wraps, on the same stationary trace and
// placement. The adaptive side pays the epoch machinery in full: chunk
// boundaries, the per-record access tally, an observer call per epoch,
// and a two-record migration with the cost-table re-price behind it.
// The benchgate family for this benchmark gates overhead, not speedup:
// its static-over-adaptive ratio sits near (slightly below) 1.0, and
// the gate fails if the adaptive path ever grows markedly slower than
// the static kernel on a trace that never needed to adapt.
func BenchmarkReplayAdaptive(b *testing.B) {
	w := benchWorkload(b)
	recs := w.Dataset.Records
	half := len(recs) / 2
	fastIdx := make([]int, half)
	for i := 0; i < half; i++ {
		fastIdx[i] = i
	}
	p := server.FastIndices(fastIdx, len(recs))
	perOp := func(b *testing.B) {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(w.Ops)), "ns/req")
	}
	ctx := context.Background()

	b.Run("Static", func(b *testing.B) {
		d := benchDeployment(b, w, p)
		classes := sizeClasses(recs)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a := newReplayAccum()
			if err := replayStatic(ctx, d, w, classes, a, 0); err != nil {
				b.Fatal(err)
			}
		}
		perOp(b)
	})
	b.Run("Adaptive", func(b *testing.B) {
		cfg := server.DefaultConfig(server.RedisLike, 42)
		cfg.Adaptive = greedySource{}
		cfg.EpochOps = 4096
		d := server.NewDeployment(cfg)
		if err := d.Load(w.Dataset, p); err != nil {
			b.Fatal(err)
		}
		classes := sizeClasses(recs)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a := newReplayAccum()
			if _, err := replayEpochs(ctx, d, greedySource{}, cfg.EpochOps, w, classes, a, 0); err != nil {
				b.Fatal(err)
			}
		}
		perOp(b)
	})
}

// BenchmarkExecuteMeanParallel measures repeated-run averaging serially
// and across the worker pool; the runs are independent simulations, so
// wall-clock time should scale down near-linearly with workers (given
// spare cores) while the folded result stays bit-identical
// (TestExecuteMeanWorkersBitIdentical).
func BenchmarkExecuteMeanParallel(b *testing.B) {
	w := benchWorkload(b)
	cfg := server.DefaultConfig(server.RedisLike, 42)
	const runs = 8
	bench := func(workers int) func(*testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ExecuteMeanWorkers(cfg, w, server.AllFast(), runs, workers); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("Workers1", bench(1))
	b.Run("WorkersMax", bench(runtime.GOMAXPROCS(0)))
}
