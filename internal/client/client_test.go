package client

import (
	"math"
	"testing"

	"mnemo/internal/server"
	"mnemo/internal/ycsb"
)

func testWorkload(readRatio float64) *ycsb.Workload {
	return ycsb.MustGenerate(ycsb.Spec{
		Name: "clienttest", Keys: 1000, Requests: 5000,
		Dist:      ycsb.DistSpec{Kind: ycsb.Hotspot, HotSetFraction: 0.2, HotOpnFraction: 0.9},
		ReadRatio: readRatio, Sizes: ycsb.SizeFixed100KB, Seed: 3,
	})
}

func TestExecuteBasics(t *testing.T) {
	w := testWorkload(1.0)
	st, err := Execute(server.DefaultConfig(server.RedisLike, 1), w, server.AllFast())
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 5000 || st.Reads != 5000 || st.Writes != 0 {
		t.Fatalf("counts: %+v", st)
	}
	if st.Runtime <= 0 || st.ThroughputOpsSec <= 0 {
		t.Fatal("no time elapsed")
	}
	if st.AvgReadNs <= 0 || st.AvgWriteNs != 0 {
		t.Fatalf("avg latencies: read %v write %v", st.AvgReadNs, st.AvgWriteNs)
	}
	if st.P50Ns > st.P95Ns || st.P95Ns > st.P99Ns || st.P99Ns > st.MaxNs {
		t.Fatal("percentiles not ordered")
	}
	if st.Workload != "clienttest" || st.Engine != "redislike" {
		t.Fatal("labels wrong")
	}
	if st.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestThroughputConsistentWithRuntime(t *testing.T) {
	w := testWorkload(0.5)
	st, err := Execute(server.DefaultConfig(server.MemcachedLike, 2), w, server.AllSlow())
	if err != nil {
		t.Fatal(err)
	}
	want := float64(st.Requests) / st.Runtime.Seconds()
	if math.Abs(st.ThroughputOpsSec-want)/want > 1e-9 {
		t.Fatalf("throughput %.2f != requests/runtime %.2f", st.ThroughputOpsSec, want)
	}
	if st.Reads+st.Writes != st.Requests {
		t.Fatal("read+write counts don't sum")
	}
}

func TestFastBeatsSlow(t *testing.T) {
	w := testWorkload(1.0)
	cfg := server.DefaultConfig(server.RedisLike, 5)
	fast, err := Execute(cfg, w, server.AllFast())
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Execute(cfg, w, server.AllSlow())
	if err != nil {
		t.Fatal(err)
	}
	if fast.ThroughputOpsSec <= slow.ThroughputOpsSec {
		t.Fatalf("fast %.0f ops/s not above slow %.0f ops/s",
			fast.ThroughputOpsSec, slow.ThroughputOpsSec)
	}
	if fast.AvgReadNs >= slow.AvgReadNs {
		t.Fatal("fast avg read latency not below slow")
	}
}

func TestHotspotLLCHitRateReflectsSkew(t *testing.T) {
	// 90% of ops hit 200 hot keys of ~100KB; the 12MB LLC holds ~120 of
	// them, so the hit rate must be clearly above the uniform level.
	w := testWorkload(1.0)
	st, err := Execute(server.DefaultConfig(server.RedisLike, 7), w, server.AllSlow())
	if err != nil {
		t.Fatal(err)
	}
	if st.LLCHitRate <= 0.1 {
		t.Fatalf("hotspot LLC hit rate %.3f suspiciously low", st.LLCHitRate)
	}
}

func TestExecuteCapacityError(t *testing.T) {
	w := testWorkload(1.0)
	cfg := server.DefaultConfig(server.RedisLike, 1)
	cfg.Machine.FastCapacity = 1024
	if _, err := Execute(cfg, w, server.AllFast()); err == nil {
		t.Fatal("capacity overflow not reported")
	}
}

func TestExecuteMeanAveragesRuns(t *testing.T) {
	w := testWorkload(1.0)
	cfg := server.DefaultConfig(server.RedisLike, 11)
	one, err := Execute(cfg, w, server.AllFast())
	if err != nil {
		t.Fatal(err)
	}
	mean, err := ExecuteMean(cfg, w, server.AllFast(), 3)
	if err != nil {
		t.Fatal(err)
	}
	// Means must be near a single run (noise is small and zero-mean).
	if math.Abs(mean.ThroughputOpsSec-one.ThroughputOpsSec)/one.ThroughputOpsSec > 0.05 {
		t.Fatalf("mean throughput %.0f far from single run %.0f",
			mean.ThroughputOpsSec, one.ThroughputOpsSec)
	}
	if mean.Requests != one.Requests {
		t.Fatal("request count changed under averaging")
	}
}

func TestExecuteMeanRejectsBadRuns(t *testing.T) {
	w := testWorkload(1.0)
	if _, err := ExecuteMean(server.DefaultConfig(server.RedisLike, 1), w, server.AllFast(), 0); err == nil {
		t.Fatal("runs=0 accepted")
	}
}

func TestExecuteMeanPropagatesErrors(t *testing.T) {
	w := testWorkload(1.0)
	cfg := server.DefaultConfig(server.RedisLike, 1)
	cfg.Machine.SlowCapacity = 1
	if _, err := ExecuteMean(cfg, w, server.AllSlow(), 2); err == nil {
		t.Fatal("load error swallowed")
	}
}

func TestTailsExceedAverages(t *testing.T) {
	// Fig 8d/8e: pauses and noise produce real tails.
	w := testWorkload(1.0)
	st, err := Execute(server.DefaultConfig(server.DynamoLike, 13), w, server.AllSlow())
	if err != nil {
		t.Fatal(err)
	}
	if st.P99Ns <= st.AvgNs {
		t.Fatalf("p99 %.0f not above mean %.0f", st.P99Ns, st.AvgNs)
	}
	if st.MaxNs < 2*st.AvgNs {
		t.Fatalf("max %.0f lacks pause spikes (mean %.0f)", st.MaxNs, st.AvgNs)
	}
}
