package client

// Determinism and allocation guarantees of the replay fast path: parallel
// ExecuteMean must be bit-identical to serial on every engine, and the
// steady-state replay loop must not allocate.

import (
	"reflect"
	"testing"

	"mnemo/internal/server"
	"mnemo/internal/ycsb"
)

// TestExecuteMeanWorkersBitIdentical is the determinism contract of the
// parallel measurement path: every repetition owns its deployment and
// noise stream, and results fold in run-index order, so the aggregate is
// the same float for float no matter how many workers execute it.
func TestExecuteMeanWorkersBitIdentical(t *testing.T) {
	w := testWorkload(0.9)
	for _, e := range server.Engines() {
		t.Run(e.String(), func(t *testing.T) {
			cfg := server.DefaultConfig(e, 17)
			serial, err := ExecuteMeanWorkers(cfg, w, server.AllFast(), 4, 1)
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := ExecuteMeanWorkers(cfg, w, server.AllFast(), 4, 4)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial, parallel) {
				t.Fatalf("parallel result diverged from serial:\nserial:   %+v\nparallel: %+v",
					serial, parallel)
			}
			deflt, err := ExecuteMean(cfg, w, server.AllFast(), 4)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial, deflt) {
				t.Fatal("ExecuteMean diverged from the serial reference")
			}
		})
	}
}

// TestReplaySteadyStateZeroAllocs pins the per-op allocation count of the
// replay loop at zero. The dataset (512 × 1 KB) fits the 12 MB LLC, so
// after a warmup pass every request is a cache hit against warm
// accumulators — any allocation the loop still performs is per-op
// overhead that would show up millions of times at full scale.
func TestReplaySteadyStateZeroAllocs(t *testing.T) {
	w := ycsb.MustGenerate(ycsb.Spec{
		Name: "alloc", Keys: 512, Requests: 4096,
		Dist:      ycsb.DistSpec{Kind: ycsb.Uniform},
		ReadRatio: 1.0, Sizes: ycsb.SizeFixed1KB, Seed: 9,
	})
	cfg := server.DefaultConfig(server.RedisLike, 3)
	cfg.NoiseSigma = 0 // keep the latency set closed across passes
	d := server.NewDeployment(cfg)
	if err := d.Load(w.Dataset, server.AllFast()); err != nil {
		t.Fatal(err)
	}
	classes := sizeClasses(w.Dataset.Records)
	a := newReplayAccum()
	replay(d, w, classes, a) // warm the LLC and size every accumulator

	allocs := testing.AllocsPerRun(5, func() {
		replay(d, w, classes, a)
	})
	if allocs != 0 {
		t.Fatalf("steady-state replay allocates %.1f times per pass, want 0", allocs)
	}
}
