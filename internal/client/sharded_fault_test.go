package client

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"mnemo/internal/kvstore"
	"mnemo/internal/server"
	"mnemo/internal/ycsb"
)

// runShardedOnce builds a fresh cluster for cfg, loads it under p and
// executes one sharded run under the policy — the unit under test for
// the fault-domain scatter-gather.
func runShardedOnce(t *testing.T, cfg server.Config, w *ycsb.Workload, p server.Placement, pol Policy) (RunStats, error) {
	t.Helper()
	sd, err := server.NewShardedDeployment(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := sd.Load(p); err != nil {
		t.Fatal(err)
	}
	return runSharded(context.Background(), cfg, sd, pol)
}

// TestShardedFaultDomainsHealthyIdentical is the fault-domain
// equivalence anchor: on a healthy cluster (no injected faults), runs
// under retry/budget/hedge policies must be bit-identical to the legacy
// all-or-nothing path — attempt 0 executes every member exactly as
// built, and a high hedge threshold selects no stragglers.
func TestShardedFaultDomainsHealthyIdentical(t *testing.T) {
	w := shardedTestWorkload(t, 800, 8000)
	p := halfFastPlacement(w)
	cfg := server.DefaultConfig(server.RedisLike, 42)
	cfg.Shards = 4
	legacy, err := runShardedOnce(t, cfg, w, p, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []Policy{
		{ShardRetries: 2, ShardFaultBudget: 1},
		{HedgeFactor: 10},
		{ShardRetries: 1, ShardFaultBudget: 2, HedgeFactor: 10},
	} {
		st, err := runShardedOnce(t, cfg, w, p, pol)
		if err != nil {
			t.Fatalf("policy %+v: %v", pol, err)
		}
		if st.ShardsFailed != 0 || st.ShardsRetried != 0 || st.Degraded {
			t.Fatalf("policy %+v: healthy cluster reported faults: %+v", pol, st)
		}
		// The anchor compares measurements; zero the telemetry-only
		// hedge counter (a hedge that selects no stragglers keeps every
		// primary, so the merged stats are otherwise identical).
		st.ShardsHedged = 0
		if !reflect.DeepEqual(legacy, st) {
			t.Fatalf("policy %+v diverged from legacy path:\nlegacy: %+v\ngot:    %+v", pol, legacy, st)
		}
	}
}

// TestShardedCrashFaultLegacyFails pins the pre-fault-domain contract:
// with the zero policy an injected mid-run crash on any shard fails the
// whole scatter-gather with a shard-attributed *server.FaultError.
func TestShardedCrashFaultLegacyFails(t *testing.T) {
	w := shardedTestWorkload(t, 500, 4000)
	p := halfFastPlacement(w)
	cfg := server.DefaultConfig(server.RedisLike, 42)
	cfg.Shards = 4
	// Keep the crash window inside every shard's sub-trace (~1000 ops):
	// the default 4096-op window mostly schedules the crash past the end
	// of a shard's slice, where it never fires.
	cfg.Fault = server.FaultSpec{CrashProb: 1, StallWindowOps: 200, Seed: 11}
	_, err := runShardedOnce(t, cfg, w, p, Policy{})
	var fe *server.FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("got %v, want a *server.FaultError", err)
	}
	if fe.Kind != server.FaultCrash {
		t.Fatalf("fault kind %v, want crash", fe.Kind)
	}
	if !strings.Contains(err.Error(), "shard ") {
		t.Fatalf("crash error does not name the shard: %v", err)
	}
}

// TestShardedCrashRetryRecovers finds a seeded schedule where crash
// faults hit some shards and per-shard retries recover every one of
// them: the run succeeds with a full (non-degraded) merge, the retry
// count is surfaced, and the whole remediated execution is
// deterministic across rebuilds.
func TestShardedCrashRetryRecovers(t *testing.T) {
	w := shardedTestWorkload(t, 600, 6000)
	p := halfFastPlacement(w)
	cfg := server.DefaultConfig(server.RedisLike, 42)
	cfg.Shards = 4
	pol := Policy{ShardRetries: 3}
	for fs := int64(1); fs <= 200; fs++ {
		cfg.Fault = server.FaultSpec{CrashProb: 0.5, StallWindowOps: 200, Seed: fs}
		st, err := runShardedOnce(t, cfg, w, p, pol)
		if err != nil || st.ShardsRetried == 0 {
			continue
		}
		if st.ShardsFailed != 0 || st.Degraded || len(st.DegradedReasons) != 0 {
			t.Fatalf("fault seed %d: recovered run flagged degraded: %+v", fs, st)
		}
		if st.Requests != w.RequestCount() {
			t.Fatalf("fault seed %d: recovered run served %d of %d requests",
				fs, st.Requests, w.RequestCount())
		}
		again, err := runShardedOnce(t, cfg, w, p, pol)
		if err != nil {
			t.Fatalf("fault seed %d: rerun failed: %v", fs, err)
		}
		if !reflect.DeepEqual(st, again) {
			t.Fatalf("fault seed %d: remediated run not deterministic:\nfirst: %+v\nagain: %+v",
				fs, st, again)
		}
		return
	}
	t.Fatal("no fault seed in [1,200] produced a retry-recovered run")
}

// TestShardedPartialMergeBudget finds a schedule where some shards die
// within the fault budget and checks the partial-merge invariants: the
// result is Degraded with one shard-attributed reason per dead shard,
// the merged request count is exactly the surviving shards' share, and
// throughput is re-derived from the partial makespan.
func TestShardedPartialMergeBudget(t *testing.T) {
	w := shardedTestWorkload(t, 600, 6000)
	p := halfFastPlacement(w)
	cfg := server.DefaultConfig(server.RedisLike, 42)
	cfg.Shards = 4
	pol := Policy{ShardFaultBudget: 3}
	for fs := int64(1); fs <= 200; fs++ {
		cfg.Fault = server.FaultSpec{CrashProb: 0.7, StallWindowOps: 200, Seed: fs}
		st, err := runShardedOnce(t, cfg, w, p, pol)
		if err != nil || st.ShardsFailed == 0 {
			continue
		}
		if !st.Degraded {
			t.Fatalf("fault seed %d: partial merge not flagged Degraded", fs)
		}
		if len(st.DegradedReasons) != st.ShardsFailed {
			t.Fatalf("fault seed %d: %d reasons for %d dead shards: %v",
				fs, len(st.DegradedReasons), st.ShardsFailed, st.DegradedReasons)
		}
		sd, err := server.NewShardedDeployment(cfg, w)
		if err != nil {
			t.Fatal(err)
		}
		deadReq := 0
		for _, reason := range st.DegradedReasons {
			var s int
			if n, err := fmt.Sscanf(reason, "shard %d:", &s); err != nil || n != 1 {
				t.Fatalf("fault seed %d: reason not shard-attributed: %q", fs, reason)
			}
			deadReq += sd.Sub(s).RequestCount()
		}
		if want := w.RequestCount() - deadReq; st.Requests != want {
			t.Fatalf("fault seed %d: partial merge served %d requests, want %d (total %d − dead %d)",
				fs, st.Requests, want, w.RequestCount(), deadReq)
		}
		if wantTput := float64(st.Requests) / st.Runtime.Seconds(); st.ThroughputOpsSec != wantTput {
			t.Fatalf("fault seed %d: partial throughput %v, want %v", fs, st.ThroughputOpsSec, wantTput)
		}
		return
	}
	t.Fatal("no fault seed in [1,200] produced a within-budget partial merge")
}

// TestShardedFaultBudgetExceeded: when more shards die than the budget
// allows, the run fails with an error naming the budget and wrapping
// the underlying injected fault.
func TestShardedFaultBudgetExceeded(t *testing.T) {
	w := shardedTestWorkload(t, 500, 4000)
	p := halfFastPlacement(w)
	cfg := server.DefaultConfig(server.RedisLike, 42)
	cfg.Shards = 4
	cfg.Fault = server.FaultSpec{FailProb: 1, Seed: 9}
	_, err := runShardedOnce(t, cfg, w, p, Policy{ShardRetries: 1, ShardFaultBudget: 1})
	var fe *server.FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("got %v, want a wrapped *server.FaultError", err)
	}
	if !strings.Contains(err.Error(), "fault budget") {
		t.Fatalf("error does not name the fault budget: %v", err)
	}
}

// TestShardedAllShardsDeadError: a budget generous enough to cover every
// shard still cannot merge nothing — at least one shard must survive.
func TestShardedAllShardsDeadError(t *testing.T) {
	w := shardedTestWorkload(t, 500, 4000)
	p := halfFastPlacement(w)
	cfg := server.DefaultConfig(server.RedisLike, 42)
	cfg.Shards = 4
	cfg.Fault = server.FaultSpec{FailProb: 1, Seed: 9}
	_, err := runShardedOnce(t, cfg, w, p, Policy{ShardFaultBudget: 4})
	if err == nil || !strings.Contains(err.Error(), "all 4 shards failed") {
		t.Fatalf("got %v, want an all-shards-failed error", err)
	}
}

// TestShardedHedgeStragglers finds a schedule where straggler faults
// inflate some shards and hedged re-execution fires: the hedge count is
// surfaced, the hedged makespan never exceeds the unhedged one (losers
// keep the primary), at least one schedule strictly improves, and the
// hedged run is deterministic across rebuilds.
func TestShardedHedgeStragglers(t *testing.T) {
	w := shardedTestWorkload(t, 600, 6000)
	p := halfFastPlacement(w)
	cfg := server.DefaultConfig(server.RedisLike, 42)
	cfg.Shards = 4
	pol := Policy{HedgeFactor: 1.5}
	hedged, improved := false, false
	for fs := int64(1); fs <= 120 && !(hedged && improved); fs++ {
		cfg.Fault = server.FaultSpec{StragglerProb: 0.5, Seed: fs}
		plain, err := runShardedOnce(t, cfg, w, p, Policy{})
		if err != nil {
			t.Fatalf("fault seed %d: unhedged run failed: %v", fs, err)
		}
		st, err := runShardedOnce(t, cfg, w, p, pol)
		if err != nil {
			t.Fatalf("fault seed %d: hedged run failed: %v", fs, err)
		}
		if st.Requests != plain.Requests {
			t.Fatalf("fault seed %d: hedging changed request count %d → %d",
				fs, plain.Requests, st.Requests)
		}
		if st.Runtime > plain.Runtime {
			t.Fatalf("fault seed %d: hedging worsened makespan %v → %v",
				fs, plain.Runtime, st.Runtime)
		}
		if st.ShardsHedged == 0 {
			continue
		}
		if !hedged {
			hedged = true
			again, err := runShardedOnce(t, cfg, w, p, pol)
			if err != nil {
				t.Fatalf("fault seed %d: hedged rerun failed: %v", fs, err)
			}
			if !reflect.DeepEqual(st, again) {
				t.Fatalf("fault seed %d: hedged run not deterministic:\nfirst: %+v\nagain: %+v",
					fs, st, again)
			}
		}
		if st.Runtime < plain.Runtime {
			improved = true
		}
	}
	if !hedged {
		t.Fatal("no fault seed in [1,120] triggered a hedge")
	}
	if !improved {
		t.Fatal("no fault seed in [1,120] saw a hedge improve the makespan")
	}
}

// TestShardedCancellationNotRemediated: a cancelled context surfaces as
// the context error, never dressed up as a shard fault, retried or
// charged to the fault budget.
func TestShardedCancellationNotRemediated(t *testing.T) {
	w := shardedTestWorkload(t, 500, 4000)
	p := halfFastPlacement(w)
	cfg := server.DefaultConfig(server.RedisLike, 42)
	cfg.Shards = 4
	sd, err := server.NewShardedDeployment(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := sd.Load(p); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = runSharded(ctx, cfg, sd, Policy{ShardRetries: 2, ShardFaultBudget: 3})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if strings.Contains(err.Error(), "fault budget") {
		t.Fatalf("cancellation charged to the fault budget: %v", err)
	}
}

// deleteTraceWorkload generates a read-heavy trace and rewrites a few
// ops into Deletes, making the trace non-batchable: the per-op replay
// path mutates engine state, so member deployments cannot be rewound by
// the snapshot reset and ResetShard must rebuild them fresh.
func deleteTraceWorkload(t *testing.T) *ycsb.Workload {
	t.Helper()
	w, err := ycsb.Generate(ycsb.Spec{
		Name: "sharded-delete", Keys: 400, Requests: 3000,
		Dist:      ycsb.DistSpec{Kind: ycsb.Zipfian},
		ReadRatio: 0.95,
		Sizes:     ycsb.SizeThumbnail,
		Seed:      13,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 50; i < len(w.Ops); i += 97 {
		w.Ops[i].Kind = kvstore.Delete
	}
	if w.Packed().Batchable() {
		t.Fatal("delete trace still batchable")
	}
	return w
}

// TestShardedResetShardRebuildFresh covers ResetShard's rebuild-fresh
// fallback: on a non-batchable (Delete-bearing) trace the snapshot
// reset is unavailable, so ResetShard must replace the consumed member
// with a freshly populated one — and a rewound-then-rerun cluster must
// measure byte-identically to a cluster built fresh at the same seed,
// injected fault state included.
func TestShardedResetShardRebuildFresh(t *testing.T) {
	w := deleteTraceWorkload(t)
	p := halfFastPlacement(w)
	cfg := server.DefaultConfig(server.RedisLike, 42)
	cfg.Shards = 3
	cfg.Fault = server.FaultSpec{OutlierProb: 1, Seed: 7}

	sd, err := server.NewShardedDeployment(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := sd.Load(p); err != nil {
		t.Fatal(err)
	}
	if sd.Reusable() {
		t.Fatal("delete-trace cluster should not be snapshot-reusable")
	}
	if _, err := runSharded(context.Background(), cfg, sd, Policy{}); err != nil {
		t.Fatal(err)
	}

	const seedB = 4242
	rebuilt := 0
	for s := 0; s < sd.Shards(); s++ {
		before := sd.Dep(s)
		if !sd.ResetShard(s, sd.MemberSeed(seedB, s)) {
			t.Fatalf("ResetShard(%d) failed", s)
		}
		// A sub-trace that got no Deletes is still batchable and may
		// legitimately rewind in place; a Delete-bearing one must have
		// been rebuilt.
		if !sd.Sub(s).Packed().Batchable() {
			if sd.Dep(s) == before {
				t.Fatalf("shard %d: expected a rebuilt member, got the snapshot-reset one", s)
			}
			rebuilt++
		}
	}
	if rebuilt == 0 {
		t.Fatal("no shard exercised the rebuild-fresh fallback")
	}
	cfgB := cfg
	cfgB.Seed = seedB
	reset, err := runSharded(context.Background(), cfgB, sd, Policy{})
	if err != nil {
		t.Fatal(err)
	}

	fresh, err := runShardedOnce(t, cfgB, w, p, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reset, fresh) {
		t.Fatalf("rebuilt-member run diverged from fresh cluster:\nreset: %+v\nfresh: %+v", reset, fresh)
	}
}
