package client

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"mnemo/internal/obs"
	"mnemo/internal/pool"
	"mnemo/internal/server"
	"mnemo/internal/simclock"
	"mnemo/internal/stats"
	"mnemo/internal/ycsb"
)

// ErrRunTimeout marks a measurement run whose simulated clock exceeded
// the per-run budget (server.Config.RunTimeout) — the way a stalled run
// on a real testbed is cut off by a watchdog. Detect with errors.Is.
var ErrRunTimeout = errors.New("client: run exceeded simulated time budget")

// Policy configures graceful degradation of repeated measurement runs:
// bounded retry with capped exponential backoff for runs that fail or
// stall, and median-absolute-deviation rejection of runs that complete
// with outlier runtimes. The zero value is the strict legacy behavior —
// no retries, no rejection, any failed repetition aborts the aggregate.
type Policy struct {
	// Retries is the extra attempts allowed per repetition after a
	// failure; each attempt re-rolls the measurement seed.
	Retries int
	// BackoffBase and BackoffCap bound the capped exponential wall-clock
	// backoff between attempts (defaults 1ms and 50ms). The jitter is
	// drawn from a seeded stream, so retry schedules are reproducible.
	BackoffBase, BackoffCap time.Duration
	// MinRuns is the minimum surviving repetitions required for the
	// aggregate; ≤ 0 keeps strict mode (all must survive, and outlier
	// rejection is disabled). With MinRuns ≥ 1 the aggregate degrades to
	// the surviving runs instead of aborting, flagged via
	// RunStats.Degraded.
	MinRuns int
	// OutlierMAD rejects surviving runs whose runtime deviates from the
	// median by more than OutlierMAD× the median absolute deviation
	// (3.5 is conventional). 0 disables rejection. At least half the
	// runs always survive the gate, by the definition of the MAD.
	OutlierMAD float64

	// The shard fault-domain knobs below apply only to sharded configs
	// (Shards ≥ 2); all three zero keeps the legacy whole-cluster
	// behavior, where any shard fault fails the scatter-gather.

	// ShardRetries is the extra attempts allowed per shard after a
	// fail, crash or timeout fault; each attempt rewinds just that
	// member (ShardedDeployment.ResetShard) under a re-rolled seed.
	ShardRetries int
	// ShardFaultBudget is the number of shards allowed to die (after
	// exhausting their retries) before the run fails: within budget the
	// merge skips the dead shards and returns a partial, Degraded
	// result with shard-attributed reasons. At least one shard must
	// survive regardless of budget.
	ShardFaultBudget int
	// HedgeFactor enables hedged re-execution of straggler shards:
	// after the scatter completes, every surviving shard whose simulated
	// runtime exceeds HedgeFactor× the median surviving runtime is
	// speculatively re-run on the shared pool budget under a hedge seed,
	// and the faster of the two executions wins (ties and hedge failures
	// keep the primary — hedging never worsens a run). 0 disables;
	// otherwise must be ≥ 1.
	HedgeFactor float64
}

// Validate rejects malformed policies with descriptive errors.
func (p Policy) Validate() error {
	if p.Retries < 0 {
		return fmt.Errorf("client: policy retries %d must be non-negative", p.Retries)
	}
	if p.BackoffBase < 0 || p.BackoffCap < 0 {
		return fmt.Errorf("client: policy backoff (base %v, cap %v) must be non-negative",
			p.BackoffBase, p.BackoffCap)
	}
	if p.OutlierMAD < 0 {
		return fmt.Errorf("client: policy outlier MAD gate %v must be non-negative", p.OutlierMAD)
	}
	if p.ShardRetries < 0 {
		return fmt.Errorf("client: policy shard retries %d must be non-negative", p.ShardRetries)
	}
	if p.ShardFaultBudget < 0 {
		return fmt.Errorf("client: policy shard fault budget %d must be non-negative", p.ShardFaultBudget)
	}
	if p.HedgeFactor != 0 && p.HedgeFactor < 1 {
		return fmt.Errorf("client: policy hedge factor %v must be 0 (disabled) or ≥ 1", p.HedgeFactor)
	}
	return nil
}

// shardFaultDomains reports whether any shard fault-domain remediation
// is enabled; false keeps the sharded path on its legacy all-or-nothing
// behavior, bit-identical to the pre-fault-domain client.
func (p Policy) shardFaultDomains() bool {
	return p.ShardRetries > 0 || p.ShardFaultBudget > 0 || p.HedgeFactor > 0
}

const (
	defaultBackoffBase = time.Millisecond
	defaultBackoffCap  = 50 * time.Millisecond

	// runSeedStride decorrelates repetitions (the legacy stride — it must
	// not change, or aggregates stop being bit-identical to the seed
	// repo's) and attemptSeedStride decorrelates retry attempts of one
	// repetition.
	runSeedStride     = 1009
	attemptSeedStride = 15485863
)

// backoffDelay computes the capped exponential delay before retry
// `attempt` (0-based), with seeded jitter in [delay/2, delay].
func (p Policy) backoffDelay(attempt int, jitter *rand.Rand) time.Duration {
	base, cap := p.BackoffBase, p.BackoffCap
	if base == 0 {
		base = defaultBackoffBase
	}
	if cap == 0 {
		cap = defaultBackoffCap
	}
	d := base
	for i := 0; i < attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(jitter.Int63n(int64(half)+1))
}

// sleepBackoff waits for d, returning early with ctx's error when the
// context is cancelled.
func sleepBackoff(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// repOutcome is one repetition's final state after retries.
type repOutcome struct {
	stats   RunStats
	err     error
	retries int
}

// meanRunner is one worker's reusable execution state across
// repetitions: the first successfully loaded batch-capable deployment is
// kept and rewound (ResetRun) for every later repetition the worker
// picks up, so an N-run aggregate pays the populate-and-quiesce cost
// once per worker instead of once per run. Deployments that cannot be
// rewound (per-op replay path) are never cached, and each repetition
// then builds a fresh one exactly as before.
type meanRunner struct {
	d *server.Deployment
	// sd is the sharded analogue: the first successfully loaded
	// all-batch-capable cluster, rewound shard-by-shard for later
	// repetitions.
	sd *server.ShardedDeployment
}

// execute runs one measurement attempt through the cached deployment
// when one is available, falling back to — and possibly caching — a
// fresh deployment otherwise. Both paths produce bit-identical stats,
// errors and telemetry; see executeReused. Configs with Shards ≥ 1
// route through the cluster path (sharded.go) under the same caching
// discipline.
func (r *meanRunner) execute(ctx context.Context, cfg server.Config, w *ycsb.Workload, p server.Placement, pol Policy) (RunStats, error) {
	if cfg.Shards >= 1 {
		if r != nil && r.sd != nil {
			return executeShardedReused(ctx, cfg, w, r.sd, pol)
		}
		st, sd, err := executeShardedFresh(ctx, cfg, w, p, pol)
		if r != nil && sd != nil && sd.Reusable() {
			r.sd = sd
		}
		return st, err
	}
	if r != nil && r.d != nil {
		return executeReused(ctx, cfg, w, r.d)
	}
	st, d, err := executeFresh(ctx, cfg, w, p)
	if r != nil && canReuse(d, w) {
		r.d = d
	}
	return st, err
}

// executeRepetition runs repetition i, retrying per the policy. Attempt
// a of repetition i measures with seed cfg.Seed + i·1009 + a·15485863,
// so attempt 0 reproduces the legacy seed schedule exactly and every
// retry is a fresh, deterministic re-measurement.
func executeRepetition(ctx context.Context, cfg server.Config, w *ycsb.Workload, p server.Placement, i int, pol Policy, r *meanRunner) repOutcome {
	jitter := rand.New(rand.NewSource(cfg.Seed*2654435761 + int64(i)))
	var out repOutcome
	for attempt := 0; ; attempt++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)*runSeedStride + int64(attempt)*attemptSeedStride
		st, err := r.execute(ctx, c, w, p, pol)
		if err == nil {
			out.stats, out.err = st, nil
			return out
		}
		out.err = fmt.Errorf("client: repetition %d attempt %d (seed %d): %w", i, attempt, c.Seed, err)
		// Cancellation is not a measurement failure — never retry it.
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || ctx.Err() != nil {
			return out
		}
		if attempt >= pol.Retries {
			return out
		}
		out.retries++
		cfg.Obs.Counter("mnemo_client_run_retries_total").Inc()
		cfg.Obs.Eventf(obs.EventRetry, "client", 0, "repetition %d attempt %d failed: %v", i, attempt, err)
		if serr := sleepBackoff(ctx, pol.backoffDelay(attempt, jitter)); serr != nil {
			return out
		}
	}
}

// rejectOutliers drops surviving repetitions whose runtime deviates from
// the median by more than gate× the MAD. With a degenerate deviation
// spread (MAD 0) only runs at the exact median survive — those are the
// majority by definition, so the result is never empty.
func rejectOutliers(out []repOutcome, survivors []int, gate float64) []int {
	if len(survivors) < 4 {
		return survivors
	}
	times := make([]float64, len(survivors))
	for j, i := range survivors {
		times[j] = float64(out[i].stats.Runtime)
	}
	med := stats.Median(times)
	devs := make([]float64, len(times))
	for j, x := range times {
		devs[j] = math.Abs(x - med)
	}
	mad := stats.Median(devs)
	kept := make([]int, 0, len(survivors))
	for j, i := range survivors {
		if devs[j] <= gate*mad {
			kept = append(kept, i)
		}
	}
	return kept
}

// ExecuteMeanCtx is the hardened repeated-measurement driver: ExecuteMean
// with cancellation, bounded retry, and outlier-rejecting degradation per
// the policy. Repetitions fan out over a bounded worker pool (workers ≤ 0
// = GOMAXPROCS) and fold in run-index order, so for any fixed policy the
// aggregate is bit-identical across worker counts; with the zero policy
// and no injected faults it is bit-identical to the legacy ExecuteMean.
//
// The returned RunStats carry the resilience summary: RunsRequested,
// RunsUsed (successful, outlier-surviving repetitions the aggregate is
// computed from), RunsRetried, and Degraded (RunsUsed < RunsRequested).
func ExecuteMeanCtx(ctx context.Context, cfg server.Config, w *ycsb.Workload, p server.Placement, runs, workers int, pol Policy) (RunStats, error) {
	if runs <= 0 {
		return RunStats{}, fmt.Errorf("client: runs %d must be positive", runs)
	}
	if err := pol.Validate(); err != nil {
		return RunStats{}, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// Share one worker budget with any nested per-shard fan-out (and any
	// outer validation sweep): composed layers cannot oversubscribe.
	ctx = pool.EnsureBudget(ctx)
	out := make([]repOutcome, runs)
	// One reusable runner per pool worker, handed out through a free
	// list: a worker grabs any idle runner, so a batch-capable deployment
	// is populated once per worker and rewound for each further
	// repetition that worker executes. Which runner serves which
	// repetition is scheduling-dependent — and irrelevant, since fresh
	// and rewound deployments measure bit-identically.
	nrunners := pool.Workers(workers, runs)
	runners := make(chan *meanRunner, nrunners)
	for k := 0; k < nrunners; k++ {
		runners <- new(meanRunner)
	}
	if err := pool.RunObs(ctx, runs, workers, cfg.Obs, func(i int) {
		r := <-runners
		out[i] = executeRepetition(ctx, cfg, w, p, i, pol, r)
		runners <- r
	}); err != nil {
		return RunStats{}, err
	}

	var survivors []int
	var firstErr, lastErr error
	retried := 0
	for i := range out {
		retried += out[i].retries
		if out[i].err != nil {
			if firstErr == nil {
				firstErr = out[i].err
			}
			lastErr = out[i].err
			continue
		}
		survivors = append(survivors, i)
	}
	strict := pol.MinRuns <= 0
	if strict {
		if firstErr != nil {
			return RunStats{}, firstErr
		}
	} else if pol.OutlierMAD > 0 {
		kept := rejectOutliers(out, survivors, pol.OutlierMAD)
		if sink := cfg.Obs; sink.Enabled() && len(kept) < len(survivors) {
			keptSet := make(map[int]bool, len(kept))
			for _, i := range kept {
				keptSet[i] = true
			}
			for _, i := range survivors {
				if !keptSet[i] {
					sink.Counter("mnemo_client_outliers_rejected_total").Inc()
					sink.Eventf(obs.EventOutlierRejected, "client", out[i].stats.Runtime,
						"repetition %d runtime %v strayed beyond %.1f MADs", i, out[i].stats.Runtime, pol.OutlierMAD)
				}
			}
		}
		survivors = kept
	}
	minRuns := pol.MinRuns
	if strict {
		minRuns = runs
	}
	if len(survivors) < minRuns {
		err := lastErr
		if err == nil {
			err = fmt.Errorf("outlier rejection kept %d runs", len(survivors))
		}
		return RunStats{}, fmt.Errorf("client: %d of %d repetitions survived, need %d: %w",
			len(survivors), runs, minRuns, err)
	}

	agg := foldRuns(out, survivors)
	agg.RunsRequested = runs
	agg.RunsUsed = len(survivors)
	agg.RunsRetried = retried
	// A partial sharded repetition (ShardsFailed > 0) keeps the
	// aggregate flagged Degraded even when every repetition survived.
	agg.Degraded = agg.Degraded || agg.RunsUsed < runs
	return agg, nil
}

// foldRuns averages the surviving repetitions in ascending run-index
// order — the deterministic fold that keeps parallel aggregates
// bit-identical to serial.
func foldRuns(out []repOutcome, survivors []int) RunStats {
	var agg RunStats
	for j, i := range survivors {
		st := out[i].stats
		if j == 0 {
			agg = st
			continue
		}
		agg.ReadBuckets = mergeBuckets(agg.ReadBuckets, st.ReadBuckets)
		agg.WriteBuckets = mergeBuckets(agg.WriteBuckets, st.WriteBuckets)
		agg.ReadLatency = mergeHistograms(agg.ReadLatency, st.ReadLatency)
		agg.WriteLatency = mergeHistograms(agg.WriteLatency, st.WriteLatency)
		agg.Runtime += st.Runtime
		agg.ThroughputOpsSec += st.ThroughputOpsSec
		agg.AvgReadNs += st.AvgReadNs
		agg.AvgWriteNs += st.AvgWriteNs
		agg.AvgNs += st.AvgNs
		agg.P50Ns += st.P50Ns
		agg.P95Ns += st.P95Ns
		agg.P99Ns += st.P99Ns
		agg.MaxNs += st.MaxNs
		agg.LLCHitRate += st.LLCHitRate
		// Shard fault-domain telemetry sums (it counts remediation
		// events, not a mean) and reasons accumulate across survivors.
		agg.ShardsFailed += st.ShardsFailed
		agg.ShardsHedged += st.ShardsHedged
		agg.ShardsRetried += st.ShardsRetried
		agg.DegradedReasons = append(agg.DegradedReasons, st.DegradedReasons...)
		agg.Degraded = agg.Degraded || st.Degraded
		// Migration telemetry likewise sums (total traffic across the
		// aggregate) and the per-epoch rows merge by epoch index.
		agg.Epochs += st.Epochs
		agg.MovesApplied += st.MovesApplied
		agg.MigratedBytes += st.MigratedBytes
		agg.MigrationNs += st.MigrationNs
		agg.EpochTraffic = mergeEpochTraffic(agg.EpochTraffic, st.EpochTraffic)
	}
	n := float64(len(survivors))
	agg.Runtime = simclock.Duration(float64(agg.Runtime) / n)
	agg.ThroughputOpsSec /= n
	agg.AvgReadNs /= n
	agg.AvgWriteNs /= n
	agg.AvgNs /= n
	agg.P50Ns /= n
	agg.P95Ns /= n
	agg.P99Ns /= n
	agg.MaxNs /= n
	agg.LLCHitRate /= n
	return agg
}
