package client

import (
	"context"
	"errors"
	"fmt"

	"mnemo/internal/obs"
	"mnemo/internal/pool"
	"mnemo/internal/server"
	"mnemo/internal/ycsb"
)

// Sharded execution (DESIGN.md §13): the scatter-gather client over a
// server.ShardedDeployment. Each shard replays its trace slice on its
// own worker (independent simulation state throughout), and the
// per-shard RunStats are merged with a deterministic, order-independent
// reduction: results land in a shard-indexed slice and are folded in
// ascending shard order, so the merged stats are bit-identical for
// every goroutine schedule and worker count — including workers=1,
// which is the serial reference execution of the same code path.

// executeShardedFresh is executeFresh over a cluster: build, check the
// injected fates (a dead shard fails the scatter-gather at connect
// time), load every shard under the remapped placement, replay and
// merge. The event and counter stream matches the single-deployment
// path one-for-one at Shards=1.
func executeShardedFresh(ctx context.Context, cfg server.Config, w *ycsb.Workload, p server.Placement) (RunStats, *server.ShardedDeployment, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return RunStats{}, nil, err
	}
	sink := cfg.Obs
	sink.Eventf(obs.EventMeasureStart, "client", 0, "%s on %s (seed %d)",
		w.Spec.Name, cfg.Engine, cfg.Seed)
	sd, err := server.NewShardedDeployment(cfg, w)
	if err != nil {
		sink.Counter("mnemo_client_run_failures_total").Inc()
		return RunStats{}, nil, err
	}
	if err := sd.InjectedFailure(); err != nil {
		sink.Counter("mnemo_client_run_failures_total").Inc()
		return RunStats{}, nil, err
	}
	if err := sd.Load(p); err != nil {
		sink.Counter("mnemo_client_run_failures_total").Inc()
		return RunStats{}, nil, err
	}
	st, err := runShardedAndFlush(ctx, cfg, w, sd)
	return st, sd, err
}

// executeShardedReused is executeReused over a cluster: every shard is
// rewound to its post-Load snapshot under the new seed's per-shard
// derivations.
func executeShardedReused(ctx context.Context, cfg server.Config, w *ycsb.Workload, sd *server.ShardedDeployment) (RunStats, error) {
	if err := ctx.Err(); err != nil {
		return RunStats{}, err
	}
	sink := cfg.Obs
	sink.Eventf(obs.EventMeasureStart, "client", 0, "%s on %s (seed %d)",
		w.Spec.Name, cfg.Engine, cfg.Seed)
	if !sd.ResetRun(cfg.Seed) {
		return RunStats{}, fmt.Errorf("client: cached cluster lost its run snapshot")
	}
	if err := sd.InjectedFailure(); err != nil {
		sink.Counter("mnemo_client_run_failures_total").Inc()
		return RunStats{}, err
	}
	return runShardedAndFlush(ctx, cfg, w, sd)
}

// runShardedAndFlush is runAndFlush over a cluster: the fanned-out
// replay, the shard-order telemetry flush (complete and cut-off shards
// alike), and the run-level counters and journal events under the
// parent workload's name.
func runShardedAndFlush(ctx context.Context, cfg server.Config, w *ycsb.Workload, sd *server.ShardedDeployment) (RunStats, error) {
	sink := cfg.Obs
	st, err := runSharded(ctx, cfg, sd)
	sd.FlushObs()
	if err != nil {
		if errors.Is(err, ErrRunTimeout) {
			sink.Counter("mnemo_client_run_timeouts_total").Inc()
			sink.Eventf(obs.EventTimeout, "client", sd.Clock(), "%s on %s: %v",
				w.Spec.Name, cfg.Engine, err)
		} else {
			sink.Counter("mnemo_client_run_failures_total").Inc()
		}
		return st, err
	}
	st.Workload = w.Spec.Name
	sink.Counter("mnemo_client_runs_total").Inc()
	sink.Counter("mnemo_client_ops_total").Add(int64(st.Requests))
	sink.Counter("mnemo_client_reads_total").Add(int64(st.Reads))
	sink.Counter("mnemo_client_writes_total").Add(int64(st.Writes))
	sink.Eventf(obs.EventMeasureEnd, "client", st.Runtime, "%s on %s: %d ops, %.0f ops/s",
		w.Spec.Name, cfg.Engine, st.Requests, st.ThroughputOpsSec)
	return st, err
}

// runSharded replays every shard and merges. A one-shard cluster runs
// inline on the calling goroutine — no pool, so its telemetry stream
// (and everything else) is indistinguishable from the single-deployment
// path. Larger clusters fan out across the shared worker budget
// (pool.Budget): each worker drives whole shards, and composition with
// outer fan-outs (validation points × repetitions) cannot oversubscribe
// the machine.
func runSharded(ctx context.Context, cfg server.Config, sd *server.ShardedDeployment) (RunStats, error) {
	n := sd.Shards()
	if n == 1 {
		st, err := RunCtx(ctx, sd.Dep(0), sd.Sub(0), cfg.RunTimeout)
		if err != nil {
			return RunStats{}, err
		}
		return st, nil
	}
	per := make([]RunStats, n)
	errs := make([]error, n)
	ctx = pool.EnsureBudget(ctx)
	if perr := pool.RunObs(ctx, n, n, cfg.Obs, func(s int) {
		per[s], errs[s] = RunCtx(ctx, sd.Dep(s), sd.Sub(s), cfg.RunTimeout)
	}); perr != nil {
		return RunStats{}, perr
	}
	for s, err := range errs {
		if err != nil {
			return RunStats{}, fmt.Errorf("client: shard %d: %w", s, err)
		}
	}
	return mergeShardRuns(per), nil
}

// mergeShardRuns folds per-shard run stats into cluster stats, in
// ascending shard order (deterministic and schedule-independent since
// `per` is shard-indexed). Counts sum; histograms and size-class
// buckets merge and every latency figure is re-derived from the merged
// histograms, exactly as RunCtx derives them from a single run's — so
// the merge is a pure reduction with no averaging-of-averages. Runtime
// is max-over-shards (the scatter-gather completes with its slowest
// shard) and throughput is total requests over that makespan. The LLC
// hit rate is the request-weighted mean, which equals total hits over
// total accesses.
func mergeShardRuns(per []RunStats) RunStats {
	agg := RunStats{
		Workload: per[0].Workload,
		Engine:   per[0].Engine,
	}
	hitWeighted := 0.0
	for s := range per {
		st := &per[s]
		agg.Requests += st.Requests
		agg.Reads += st.Reads
		agg.Writes += st.Writes
		if st.Runtime > agg.Runtime {
			agg.Runtime = st.Runtime
		}
		agg.ReadLatency = mergeHistograms(agg.ReadLatency, st.ReadLatency)
		agg.WriteLatency = mergeHistograms(agg.WriteLatency, st.WriteLatency)
		hitWeighted += st.LLCHitRate * float64(st.Requests)
	}
	if agg.Runtime > 0 {
		agg.ThroughputOpsSec = float64(agg.Requests) / agg.Runtime.Seconds()
	}
	agg.ReadBuckets = bucketsFromHistograms(agg.ReadLatency)
	agg.WriteBuckets = bucketsFromHistograms(agg.WriteLatency)
	readSum, writeSum := histogramSum(agg.ReadLatency), histogramSum(agg.WriteLatency)
	if agg.Reads > 0 {
		agg.AvgReadNs = readSum / float64(agg.Reads)
	}
	if agg.Writes > 0 {
		agg.AvgWriteNs = writeSum / float64(agg.Writes)
	}
	hist := mergedHistogram(agg.ReadLatency, agg.WriteLatency)
	agg.AvgNs = hist.Mean()
	agg.P50Ns = hist.Quantile(0.50)
	agg.P95Ns = hist.Quantile(0.95)
	agg.P99Ns = hist.Quantile(0.99)
	agg.MaxNs = hist.Max()
	if agg.Requests > 0 {
		agg.LLCHitRate = hitWeighted / float64(agg.Requests)
	}
	return agg
}

// bucketsFromHistograms derives the per-size-class count/mean table
// from merged class histograms — the same derivation histAccum
// .bucketStats performs on a single run's.
func bucketsFromHistograms(bhs []BucketHistogram) []BucketStat {
	var out []BucketStat
	for _, bh := range bhs {
		if bh.Hist.N() > 0 {
			out = append(out, BucketStat{Bucket: bh.Bucket, Count: int(bh.Hist.N()), MeanNs: bh.Hist.Mean()})
		}
	}
	return out
}

// histogramSum totals the exact latency sums of a class-histogram set.
func histogramSum(bhs []BucketHistogram) float64 {
	sum := 0.0
	for _, bh := range bhs {
		sum += bh.Hist.Sum()
	}
	return sum
}
