package client

import (
	"context"
	"errors"
	"fmt"

	"mnemo/internal/obs"
	"mnemo/internal/pool"
	"mnemo/internal/server"
	"mnemo/internal/stats"
	"mnemo/internal/ycsb"
)

// Sharded execution (DESIGN.md §13): the scatter-gather client over a
// server.ShardedDeployment. Each shard replays its trace slice on its
// own worker (independent simulation state throughout), and the
// per-shard RunStats are merged with a deterministic, order-independent
// reduction: results land in a shard-indexed slice and are folded in
// ascending shard order, so the merged stats are bit-identical for
// every goroutine schedule and worker count — including workers=1,
// which is the serial reference execution of the same code path.

// executeShardedFresh is executeFresh over a cluster: build, check the
// injected fates (a dead shard fails the scatter-gather at connect
// time), load every shard under the remapped placement, replay and
// merge. The event and counter stream matches the single-deployment
// path one-for-one at Shards=1.
func executeShardedFresh(ctx context.Context, cfg server.Config, w *ycsb.Workload, p server.Placement, pol Policy) (RunStats, *server.ShardedDeployment, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return RunStats{}, nil, err
	}
	sink := cfg.Obs
	sink.Eventf(obs.EventMeasureStart, "client", 0, "%s on %s (seed %d)",
		w.Spec.Name, cfg.Engine, cfg.Seed)
	sd, err := server.NewShardedDeployment(cfg, w)
	if err != nil {
		sink.Counter("mnemo_client_run_failures_total").Inc()
		return RunStats{}, nil, err
	}
	// On the fault-domain path a fail-fated shard is a per-shard matter
	// (retried, then charged to the shard fault budget), not a
	// connect-time cluster failure.
	if !pol.shardFaultDomains() || sd.Shards() == 1 {
		if err := sd.InjectedFailure(); err != nil {
			sink.Counter("mnemo_client_run_failures_total").Inc()
			return RunStats{}, nil, err
		}
	}
	if err := sd.Load(p); err != nil {
		sink.Counter("mnemo_client_run_failures_total").Inc()
		return RunStats{}, nil, err
	}
	st, err := runShardedAndFlush(ctx, cfg, w, sd, pol)
	return st, sd, err
}

// executeShardedReused is executeReused over a cluster: every shard is
// rewound to its post-Load snapshot under the new seed's per-shard
// derivations.
func executeShardedReused(ctx context.Context, cfg server.Config, w *ycsb.Workload, sd *server.ShardedDeployment, pol Policy) (RunStats, error) {
	if err := ctx.Err(); err != nil {
		return RunStats{}, err
	}
	sink := cfg.Obs
	sink.Eventf(obs.EventMeasureStart, "client", 0, "%s on %s (seed %d)",
		w.Spec.Name, cfg.Engine, cfg.Seed)
	if !sd.ResetRun(cfg.Seed) {
		return RunStats{}, fmt.Errorf("client: cached cluster lost its run snapshot")
	}
	if !pol.shardFaultDomains() || sd.Shards() == 1 {
		if err := sd.InjectedFailure(); err != nil {
			sink.Counter("mnemo_client_run_failures_total").Inc()
			return RunStats{}, err
		}
	}
	return runShardedAndFlush(ctx, cfg, w, sd, pol)
}

// runShardedAndFlush is runAndFlush over a cluster: the fanned-out
// replay, the shard-order telemetry flush (complete and cut-off shards
// alike), and the run-level counters and journal events under the
// parent workload's name.
func runShardedAndFlush(ctx context.Context, cfg server.Config, w *ycsb.Workload, sd *server.ShardedDeployment, pol Policy) (RunStats, error) {
	sink := cfg.Obs
	st, err := runSharded(ctx, cfg, sd, pol)
	sd.FlushObs()
	if err != nil {
		if errors.Is(err, ErrRunTimeout) {
			sink.Counter("mnemo_client_run_timeouts_total").Inc()
			sink.Eventf(obs.EventTimeout, "client", sd.Clock(), "%s on %s: %v",
				w.Spec.Name, cfg.Engine, err)
		} else {
			sink.Counter("mnemo_client_run_failures_total").Inc()
		}
		return st, err
	}
	st.Workload = w.Spec.Name
	sink.Counter("mnemo_client_runs_total").Inc()
	sink.Counter("mnemo_client_ops_total").Add(int64(st.Requests))
	sink.Counter("mnemo_client_reads_total").Add(int64(st.Reads))
	sink.Counter("mnemo_client_writes_total").Add(int64(st.Writes))
	if st.ShardsFailed > 0 {
		sink.Counter("mnemo_client_shards_failed_total").Add(int64(st.ShardsFailed))
		sink.Eventf(obs.EventDegraded, "client", st.Runtime,
			"%s on %s: partial merge, %d/%d shards dead within fault budget",
			w.Spec.Name, cfg.Engine, st.ShardsFailed, sd.Shards())
	}
	sink.Eventf(obs.EventMeasureEnd, "client", st.Runtime, "%s on %s: %d ops, %.0f ops/s",
		w.Spec.Name, cfg.Engine, st.Requests, st.ThroughputOpsSec)
	return st, err
}

// hedgeSeedStride places a shard's hedged re-execution in its own seed
// domain, disjoint from the repetition stride (1009), the retry stride
// (15485863) and the shard stride (524287) within any realistic grid.
const hedgeSeedStride = 7368787

// runSharded replays every shard and merges. A one-shard cluster runs
// inline on the calling goroutine — no pool, so its telemetry stream
// (and everything else) is indistinguishable from the single-deployment
// path. Larger clusters fan out across the shared worker budget
// (pool.Budget): each worker drives whole shards, and composition with
// outer fan-outs (validation points × repetitions) cannot oversubscribe
// the machine.
//
// With the policy's shard fault-domain knobs zeroed, any shard fault
// fails the whole scatter-gather, exactly as before fault domains
// existed. Otherwise each shard is its own fault domain: faulted shards
// are retried in place up to pol.ShardRetries (ResetShard under a
// retry-stride seed), straggler shards are hedged (see
// hedgeStragglers), and up to pol.ShardFaultBudget permanently dead
// shards are skipped by the merge, degrading the run to a partial
// result instead of failing it. Every remediation decision derives only
// from seeds and simulated clocks, so the merged result is bit-identical
// across goroutine schedules and worker counts.
func runSharded(ctx context.Context, cfg server.Config, sd *server.ShardedDeployment, pol Policy) (RunStats, error) {
	n := sd.Shards()
	if n == 1 {
		st, err := RunCtx(ctx, sd.Dep(0), sd.Sub(0), cfg.RunTimeout)
		if err != nil {
			return RunStats{}, err
		}
		return st, nil
	}
	per := make([]RunStats, n)
	errs := make([]error, n)
	retries := make([]int, n)
	ctx = pool.EnsureBudget(ctx)
	faultDomains := pol.shardFaultDomains()
	if perr := pool.RunObs(ctx, n, n, cfg.Obs, func(s int) {
		if faultDomains {
			per[s], retries[s], errs[s] = runShardAttempts(ctx, cfg, sd, s, pol)
		} else {
			per[s], errs[s] = RunCtx(ctx, sd.Dep(s), sd.Sub(s), cfg.RunTimeout)
		}
	}); perr != nil {
		return RunStats{}, perr
	}
	if !faultDomains {
		for s, err := range errs {
			if err != nil {
				return RunStats{}, fmt.Errorf("client: shard %d: %w", s, err)
			}
		}
		return mergeShardRuns(per), nil
	}
	// Cancellation mid-scatter is never remediated — surface it before
	// hedging or budget accounting can dress it up as a shard fault.
	if err := ctx.Err(); err != nil {
		return RunStats{}, err
	}
	hedgedCount, err := hedgeStragglers(ctx, cfg, sd, per, errs, pol)
	if err != nil {
		return RunStats{}, err
	}
	alive := make([]RunStats, 0, n)
	var reasons []string
	var firstErr error
	failed, totalRetries := 0, 0
	for s := 0; s < n; s++ {
		totalRetries += retries[s]
		if errs[s] == nil {
			alive = append(alive, per[s])
			continue
		}
		failed++
		if firstErr == nil {
			firstErr = errs[s]
		}
		reasons = append(reasons, fmt.Sprintf("shard %d: %v", s, errs[s]))
		cfg.Obs.Eventf(obs.EventShardDropped, "client", 0, "shard %d dead after %d retries: %v",
			s, retries[s], errs[s])
	}
	if failed > pol.ShardFaultBudget {
		return RunStats{}, fmt.Errorf("client: %d of %d shards failed, fault budget %d: %w",
			failed, n, pol.ShardFaultBudget, firstErr)
	}
	if len(alive) == 0 {
		return RunStats{}, fmt.Errorf("client: all %d shards failed: %w", n, firstErr)
	}
	agg := mergeShardRuns(alive)
	agg.ShardsFailed = failed
	agg.ShardsHedged = hedgedCount
	agg.ShardsRetried = totalRetries
	if failed > 0 {
		agg.Degraded = true
		agg.DegradedReasons = reasons
	}
	return agg, nil
}

// runShardAttempts executes one shard as its own fault domain: attempt
// 0 runs the member exactly as built (so healthy shards stay
// bit-identical to the legacy path), and each injected fail, crash or
// timeout fault rewinds just that member under the retry-stride seed —
// up to pol.ShardRetries times — before the shard is declared dead.
// Cancellation is never retried. Returns the shard's stats, the retry
// attempts spent, and the final error of a dead shard.
func runShardAttempts(ctx context.Context, cfg server.Config, sd *server.ShardedDeployment, s int, pol Policy) (RunStats, int, error) {
	retried := 0
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if !sd.ResetShard(s, sd.MemberSeed(cfg.Seed, s)+int64(attempt)*attemptSeedStride) {
				return RunStats{}, retried, fmt.Errorf("client: shard %d: reset for retry failed", s)
			}
		}
		d := sd.Dep(s)
		err := d.InjectedFailure()
		var st RunStats
		if err == nil {
			st, err = RunCtx(ctx, d, sd.Sub(s), cfg.RunTimeout)
		}
		if err == nil {
			return st, retried, nil
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || ctx.Err() != nil {
			return RunStats{}, retried, err
		}
		if attempt >= pol.ShardRetries {
			return RunStats{}, retried, err
		}
		retried++
		cfg.Obs.Counter("mnemo_client_shard_retries_total").Inc()
		cfg.Obs.Eventf(obs.EventRetry, "client", 0, "shard %d attempt %d failed: %v", s, attempt, err)
	}
}

// hedgeStragglers speculatively re-executes straggler shards. A
// straggler is detected post-hoc and deterministically: among the
// shards that survived the scatter, any whose simulated runtime exceeds
// pol.HedgeFactor× the median surviving runtime is re-run — all hedges
// concurrently on the shared pool budget — under the hedge-stride seed,
// and the faster execution wins per shard (simulated clocks, so the
// comparison is exact and schedule-independent). A hedge that errors or
// ties loses: hedging never worsens a run. Needs ≥ 2 survivors for a
// meaningful median; fewer disable it. per is updated in place with the
// winners; the returned count is how many shards were hedged.
func hedgeStragglers(ctx context.Context, cfg server.Config, sd *server.ShardedDeployment, per []RunStats, errs []error, pol Policy) (int, error) {
	if pol.HedgeFactor <= 0 {
		return 0, nil
	}
	var times []float64
	for s := range errs {
		if errs[s] == nil {
			times = append(times, float64(per[s].Runtime))
		}
	}
	if len(times) < 2 {
		return 0, nil
	}
	threshold := pol.HedgeFactor * stats.Median(times)
	var targets []int
	for s := range errs {
		if errs[s] == nil && float64(per[s].Runtime) > threshold {
			targets = append(targets, s)
		}
	}
	if len(targets) == 0 {
		return 0, nil
	}
	hstats := make([]RunStats, len(targets))
	herrs := make([]error, len(targets))
	if perr := pool.RunObs(ctx, len(targets), len(targets), cfg.Obs, func(j int) {
		s := targets[j]
		if !sd.ResetShard(s, sd.MemberSeed(cfg.Seed, s)+hedgeSeedStride) {
			herrs[j] = fmt.Errorf("client: shard %d: reset for hedge failed", s)
			return
		}
		d := sd.Dep(s)
		if err := d.InjectedFailure(); err != nil {
			herrs[j] = err
			return
		}
		hstats[j], herrs[j] = RunCtx(ctx, d, sd.Sub(s), cfg.RunTimeout)
	}); perr != nil {
		return 0, perr
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	for j, s := range targets {
		cfg.Obs.Counter("mnemo_client_shard_hedges_total").Inc()
		won := herrs[j] == nil && hstats[j].Runtime < per[s].Runtime
		cfg.Obs.Eventf(obs.EventHedge, "client", per[s].Runtime,
			"shard %d hedged (runtime %v > %.1fx median); hedge won: %t", s, per[s].Runtime, pol.HedgeFactor, won)
		if won {
			per[s] = hstats[j]
		}
	}
	return len(targets), nil
}

// mergeShardRuns folds per-shard run stats into cluster stats, in
// ascending shard order (deterministic and schedule-independent since
// `per` is shard-indexed). Counts sum; histograms and size-class
// buckets merge and every latency figure is re-derived from the merged
// histograms, exactly as RunCtx derives them from a single run's — so
// the merge is a pure reduction with no averaging-of-averages. Runtime
// is max-over-shards (the scatter-gather completes with its slowest
// shard) and throughput is total requests over that makespan. The LLC
// hit rate is the request-weighted mean, which equals total hits over
// total accesses.
func mergeShardRuns(per []RunStats) RunStats {
	agg := RunStats{
		Workload: per[0].Workload,
		Engine:   per[0].Engine,
	}
	hitWeighted := 0.0
	for s := range per {
		st := &per[s]
		agg.Requests += st.Requests
		agg.Reads += st.Reads
		agg.Writes += st.Writes
		if st.Runtime > agg.Runtime {
			agg.Runtime = st.Runtime
		}
		agg.ReadLatency = mergeHistograms(agg.ReadLatency, st.ReadLatency)
		agg.WriteLatency = mergeHistograms(agg.WriteLatency, st.WriteLatency)
		hitWeighted += st.LLCHitRate * float64(st.Requests)
	}
	if agg.Runtime > 0 {
		agg.ThroughputOpsSec = float64(agg.Requests) / agg.Runtime.Seconds()
	}
	agg.ReadBuckets = bucketsFromHistograms(agg.ReadLatency)
	agg.WriteBuckets = bucketsFromHistograms(agg.WriteLatency)
	readSum, writeSum := histogramSum(agg.ReadLatency), histogramSum(agg.WriteLatency)
	if agg.Reads > 0 {
		agg.AvgReadNs = readSum / float64(agg.Reads)
	}
	if agg.Writes > 0 {
		agg.AvgWriteNs = writeSum / float64(agg.Writes)
	}
	hist := mergedHistogram(agg.ReadLatency, agg.WriteLatency)
	agg.AvgNs = hist.Mean()
	agg.P50Ns = hist.Quantile(0.50)
	agg.P95Ns = hist.Quantile(0.95)
	agg.P99Ns = hist.Quantile(0.99)
	agg.MaxNs = hist.Max()
	if agg.Requests > 0 {
		agg.LLCHitRate = hitWeighted / float64(agg.Requests)
	}
	return agg
}

// bucketsFromHistograms derives the per-size-class count/mean table
// from merged class histograms — the same derivation histAccum
// .bucketStats performs on a single run's.
func bucketsFromHistograms(bhs []BucketHistogram) []BucketStat {
	var out []BucketStat
	for _, bh := range bhs {
		if bh.Hist.N() > 0 {
			out = append(out, BucketStat{Bucket: bh.Bucket, Count: int(bh.Hist.N()), MeanNs: bh.Hist.Mean()})
		}
	}
	return out
}

// histogramSum totals the exact latency sums of a class-histogram set.
func histogramSum(bhs []BucketHistogram) float64 {
	sum := 0.0
	for _, bh := range bhs {
		sum += bh.Hist.Sum()
	}
	return sum
}
