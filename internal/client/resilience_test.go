package client

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"mnemo/internal/server"
	"mnemo/internal/simclock"
	"mnemo/internal/ycsb"
)

// resWorkload is small enough that resilience tests with many
// repetitions and retries stay fast under -race.
func resWorkload() *ycsb.Workload {
	return ycsb.MustGenerate(ycsb.Spec{
		Name: "resilience", Keys: 128, Requests: 2000,
		Dist:      ycsb.DistSpec{Kind: ycsb.Uniform},
		ReadRatio: 0.9, Sizes: ycsb.SizeFixed1KB, Seed: 17,
	})
}

func fastPolicyBackoff(p Policy) Policy {
	p.BackoffBase = time.Microsecond
	p.BackoffCap = 10 * time.Microsecond
	return p
}

func TestPolicyValidate(t *testing.T) {
	good := []Policy{{}, {Retries: 3, MinRuns: 1, OutlierMAD: 3.5}}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("%+v: unexpected error %v", p, err)
		}
	}
	bad := []Policy{
		{Retries: -1},
		{BackoffBase: -time.Second},
		{BackoffCap: -time.Second},
		{OutlierMAD: -1},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%+v: accepted", p)
		}
	}
}

func TestBackoffDelayCappedAndJittered(t *testing.T) {
	pol := Policy{BackoffBase: time.Millisecond, BackoffCap: 8 * time.Millisecond}
	jitter := rand.New(rand.NewSource(1))
	prevMax := time.Duration(0)
	for attempt := 0; attempt < 10; attempt++ {
		d := pol.backoffDelay(attempt, jitter)
		if d > pol.BackoffCap {
			t.Fatalf("attempt %d: delay %v exceeds cap", attempt, d)
		}
		if d <= 0 {
			t.Fatalf("attempt %d: non-positive delay %v", attempt, d)
		}
		if d > prevMax {
			prevMax = d
		}
	}
	if prevMax < pol.BackoffCap/2 {
		t.Fatalf("delays never grew toward the cap (max %v)", prevMax)
	}
}

func TestExecuteCtxInjectedFailureIsTyped(t *testing.T) {
	w := resWorkload()
	cfg := server.DefaultConfig(server.RedisLike, 1)
	cfg.Fault = server.FaultSpec{Seed: 2, FailProb: 1}
	_, err := ExecuteCtx(context.Background(), cfg, w, server.AllFast())
	var ferr *server.FaultError
	if !errors.As(err, &ferr) {
		t.Fatalf("err = %v (%T), want *server.FaultError", err, err)
	}
}

func TestExecuteCtxTimeoutCutsStall(t *testing.T) {
	w := resWorkload()
	cfg := server.DefaultConfig(server.RedisLike, 3)
	cfg.Fault = server.FaultSpec{Seed: 5, StallProb: 1, Stall: 30 * simclock.Second, StallWindowOps: 256}
	cfg.RunTimeout = 2 * simclock.Second
	start := time.Now()
	_, err := ExecuteCtx(context.Background(), cfg, w, server.AllFast())
	if !errors.Is(err, ErrRunTimeout) {
		t.Fatalf("err = %v, want ErrRunTimeout", err)
	}
	if wall := time.Since(start); wall > 5*time.Second {
		t.Fatalf("simulated stall took %v of wall time", wall)
	}
}

func TestExecuteCtxHealthyRunWithinBudget(t *testing.T) {
	w := resWorkload()
	cfg := server.DefaultConfig(server.RedisLike, 3)
	cfg.RunTimeout = 3600 * simclock.Second // generous simulated budget
	st, err := ExecuteCtx(context.Background(), cfg, w, server.AllFast())
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != len(w.Ops) {
		t.Fatalf("requests %d, want %d", st.Requests, len(w.Ops))
	}
}

func TestExecuteCtxCancelled(t *testing.T) {
	w := resWorkload()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ExecuteCtx(ctx, server.DefaultConfig(server.RedisLike, 1), w, server.AllFast())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestExecuteMeanCtxRetryRecovers(t *testing.T) {
	w := resWorkload()
	cfg := server.DefaultConfig(server.RedisLike, 11)
	cfg.Fault = server.FaultSpec{Seed: 9, FailProb: 0.5}
	pol := fastPolicyBackoff(Policy{Retries: 8, MinRuns: 1})
	st, err := ExecuteMeanCtx(context.Background(), cfg, w, server.AllFast(), 8, 1, pol)
	if err != nil {
		t.Fatal(err)
	}
	if st.RunsRequested != 8 || st.RunsUsed < 1 {
		t.Fatalf("run counts: %+v", st)
	}
	if st.RunsRetried == 0 {
		t.Fatal("FailProb 0.5 over 8 reps triggered no retries — seed choice broken")
	}
	if st.RunsUsed == 8 && st.Degraded {
		t.Fatal("full survival flagged degraded")
	}
}

func TestExecuteMeanCtxStrictModeFailsFast(t *testing.T) {
	w := resWorkload()
	cfg := server.DefaultConfig(server.RedisLike, 11)
	cfg.Fault = server.FaultSpec{Seed: 9, FailProb: 1}
	_, err := ExecuteMeanCtx(context.Background(), cfg, w, server.AllFast(), 4, 1, Policy{})
	var ferr *server.FaultError
	if !errors.As(err, &ferr) {
		t.Fatalf("strict mode err = %v, want wrapped *server.FaultError", err)
	}
}

func TestExecuteMeanCtxDegradesToSurvivors(t *testing.T) {
	w := resWorkload()
	cfg := server.DefaultConfig(server.RedisLike, 29)
	cfg.Fault = server.FaultSpec{Seed: 13, FailProb: 0.5}
	pol := Policy{MinRuns: 1} // no retries: failed reps are simply dropped
	st, err := ExecuteMeanCtx(context.Background(), cfg, w, server.AllFast(), 10, 1, pol)
	if err != nil {
		t.Fatal(err)
	}
	if st.RunsUsed == 0 || st.RunsUsed >= 10 {
		t.Fatalf("FailProb 0.5 over 10 reps left %d survivors — seed choice broken", st.RunsUsed)
	}
	if !st.Degraded {
		t.Fatal("partial survival not flagged degraded")
	}
	if st.Runtime <= 0 || st.ThroughputOpsSec <= 0 {
		t.Fatalf("degraded aggregate empty: %+v", st)
	}
}

func TestExecuteMeanCtxAllRunsDeadReportsError(t *testing.T) {
	w := resWorkload()
	cfg := server.DefaultConfig(server.RedisLike, 29)
	cfg.Fault = server.FaultSpec{Seed: 13, FailProb: 1}
	_, err := ExecuteMeanCtx(context.Background(), cfg, w, server.AllFast(), 4, 1, Policy{MinRuns: 1})
	if err == nil {
		t.Fatal("zero survivors accepted")
	}
	var ferr *server.FaultError
	if !errors.As(err, &ferr) {
		t.Fatalf("err = %v, want wrapped *server.FaultError", err)
	}
}

func TestExecuteMeanCtxMADRejectsOutliers(t *testing.T) {
	w := resWorkload()
	cfg := server.DefaultConfig(server.RedisLike, 42)
	healthy, err := ExecuteMeanCtx(context.Background(), cfg, w, server.AllFast(), 8, 1, Policy{})
	if err != nil {
		t.Fatal(err)
	}

	// Seeds chosen so 2 of the 8 repetitions roll outlier fates — a
	// minority, so the healthy runtime is the median the MAD gate keeps.
	cfg.Fault = server.FaultSpec{Seed: 23, OutlierProb: 0.3, OutlierFactor: 50}
	pol := Policy{MinRuns: 1, OutlierMAD: 3.5}
	st, err := ExecuteMeanCtx(context.Background(), cfg, w, server.AllFast(), 8, 1, pol)
	if err != nil {
		t.Fatal(err)
	}
	if st.RunsUsed >= 8 {
		t.Fatal("OutlierProb 0.3 over 8 reps rejected nothing — seed choice broken")
	}
	if !st.Degraded {
		t.Fatal("outlier rejection not flagged degraded")
	}
	// The whole point: the 50×-inflated runs must not drag the mean.
	if st.Runtime > 2*healthy.Runtime {
		t.Fatalf("outliers leaked into the mean: %v vs healthy %v", st.Runtime, healthy.Runtime)
	}

	// Without rejection the same faulted schedule must be visibly skewed,
	// proving the gate (not luck) kept the mean clean.
	raw, err := ExecuteMeanCtx(context.Background(), cfg, w, server.AllFast(), 8, 1, Policy{MinRuns: 1})
	if err != nil {
		t.Fatal(err)
	}
	if raw.Runtime < 2*healthy.Runtime {
		t.Fatalf("faulted schedule not skewed without MAD gate: %v vs %v", raw.Runtime, healthy.Runtime)
	}
}

func TestExecuteMeanCtxDeterministicAcrossWorkers(t *testing.T) {
	w := resWorkload()
	cfg := server.DefaultConfig(server.DynamoLike, 53)
	cfg.Fault = server.FaultSpec{Seed: 31, FailProb: 0.2, OutlierProb: 0.2, OutlierFactor: 20}
	pol := fastPolicyBackoff(Policy{Retries: 2, MinRuns: 1, OutlierMAD: 3.5})
	var ref RunStats
	for i, workers := range []int{1, 2, 4, 7} {
		st, err := ExecuteMeanCtx(context.Background(), cfg, w, server.AllFast(), 6, workers, pol)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if i == 0 {
			ref = st
			continue
		}
		if !reflect.DeepEqual(ref, st) {
			t.Fatalf("workers=%d diverged from serial:\n%+v\nvs\n%+v", workers, ref, st)
		}
	}
}

func TestExecuteMeanCtxCancellation(t *testing.T) {
	w := resWorkload()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ExecuteMeanCtx(ctx, server.DefaultConfig(server.RedisLike, 1), w, server.AllFast(), 8, 2, Policy{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestExecuteMeanCtxRejectsBadArgs(t *testing.T) {
	w := resWorkload()
	cfg := server.DefaultConfig(server.RedisLike, 1)
	if _, err := ExecuteMeanCtx(context.Background(), cfg, w, server.AllFast(), 0, 1, Policy{}); err == nil {
		t.Fatal("runs=0 accepted")
	}
	if _, err := ExecuteMeanCtx(context.Background(), cfg, w, server.AllFast(), 2, 1, Policy{Retries: -1}); err == nil {
		t.Fatal("negative retries accepted")
	}
}
