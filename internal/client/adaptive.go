package client

import (
	"context"
	"fmt"

	"mnemo/internal/kvstore"
	"mnemo/internal/server"
	"mnemo/internal/simclock"
	"mnemo/internal/ycsb"
)

// Adaptive (epoch-chunked) replay — DESIGN.md §15.
//
// The trace is served in epoch-sized chunks; after each non-final chunk
// the run's EpochObserver receives the epoch's per-record access counts
// and may answer with migrations, which the deployment applies — and
// charges to the simulated clock — before the next chunk starts. Epoch
// boundaries are rounded up to the replay block size so the chunked run
// reuses the existing 4096-op block structure (one ctx poll and one
// budget check discipline per block, unchanged).
//
// The final chunk is served without a trailing Observe: no requests
// remain to recoup a migration, so consulting the policy there could
// only burn simulated time. Budget semantics are global to the run —
// migration cost counts against RunTimeout exactly like request service
// time, and a chunked run that trips the budget reports the same
// run-global request index a monolithic run would.

// epochTelemetry accumulates one adaptive run's migration accounting,
// folded into RunStats by RunCtx.
type epochTelemetry struct {
	epochs  int
	moves   int
	bytes   int64
	costNs  float64
	traffic []EpochTraffic
}

// mergeEpochTraffic folds run B's per-epoch migration rows into run A's,
// summing rows that share an epoch index. Both inputs are in ascending
// epoch order (the replay appends rows as epochs complete), and the
// merge preserves that order.
func mergeEpochTraffic(a, b []EpochTraffic) []EpochTraffic {
	if len(b) == 0 {
		return a
	}
	byEpoch := map[int]int{} // epoch → index in out
	out := append([]EpochTraffic(nil), a...)
	for i, row := range out {
		byEpoch[row.Epoch] = i
	}
	for _, row := range b {
		if i, ok := byEpoch[row.Epoch]; ok {
			out[i].Moves += row.Moves
			out[i].Bytes += row.Bytes
			out[i].CostNs += row.CostNs
		} else {
			byEpoch[row.Epoch] = len(out)
			out = append(out, row)
		}
	}
	return out
}

// epochLen rounds the configured epoch length up to a whole number of
// replay blocks.
func epochLen(epochOps int) int {
	blocks := (epochOps + replayBlockOps - 1) / replayBlockOps
	return blocks * replayBlockOps
}

// replayEpochs drives the workload through the deployment in epoch
// chunks, consulting src's per-run observer between them.
func replayEpochs(ctx context.Context, d *server.Deployment, src server.EpochSource, epochOps int, w *ycsb.Workload, classes []uint8, a *replayAccum, budget simclock.Duration) (epochTelemetry, error) {
	var tel epochTelemetry
	obsv, err := src.Begin(w)
	if err != nil {
		return tel, fmt.Errorf("client: adaptive policy rejected workload: %w", err)
	}
	start := d.Clock()
	per := epochLen(epochOps)
	n := len(w.Dataset.Records)
	reads := make([]int32, n)
	writes := make([]int32, n)

	// Resolve the trace once, truncated at a scheduled crash point like
	// the static path; the chunk loop below then never re-decides.
	crashAt := d.CrashOp()
	batched := d.BatchTable() != nil && w.Packed().Batchable()
	var keys []uint32
	var kinds []uint8
	var ops []ycsb.Op
	var total int
	if batched {
		pt := w.Packed()
		keys, kinds = pt.Keys, pt.Kinds
		if crashAt >= 0 && crashAt < len(keys) {
			keys, kinds = keys[:crashAt], kinds[:crashAt]
		} else {
			crashAt = -1
		}
		total = len(keys)
		// Keep the per-op trace in lockstep: the mid-run fallback below
		// (batch table invalidated by a failed patch) and its tally loop
		// slice ops[lo:hi], so ops must carry the same crash truncation
		// as keys/kinds or the fallback would replay past the scheduled
		// crash — or slice a nil trace.
		if w.Ops != nil {
			ops = w.Ops
			if crashAt >= 0 && crashAt <= len(ops) {
				ops = ops[:crashAt]
			}
		}
	} else if w.Ops == nil && w.RequestCount() > 0 {
		return tel, fmt.Errorf("client: packed-only trace requires the batched replay path")
	} else {
		ops = w.Ops
		if crashAt >= 0 && crashAt < len(ops) {
			ops = ops[:crashAt]
		} else {
			crashAt = -1
		}
		total = len(ops)
	}

	for lo := 0; lo < total; lo += per {
		hi := lo + per
		if hi > total {
			hi = total
		}
		epoch := tel.epochs
		tel.epochs++
		if batched {
			// The table can be invalidated by a failed mid-run patch;
			// re-fetch per chunk and fall back to the per-op trace if it
			// is gone for good (w.Ops is non-nil here — packed-only
			// traces were rejected above unless batching holds).
			if t := d.BatchTable(); t != nil {
				err = replayBatchedChunk(ctx, d, t, keys[lo:hi], kinds[lo:hi], classes, a, budget, start, lo, total)
			} else if w.Ops != nil {
				batched = false
				err = replayBoundedChunk(ctx, d, ops[lo:hi], classes, a, budget, start, lo, total)
			} else {
				return tel, fmt.Errorf("client: packed-only trace lost its batch table mid-run")
			}
		} else {
			err = replayBoundedChunk(ctx, d, ops[lo:hi], classes, a, budget, start, lo, total)
		}
		if err != nil {
			return tel, err
		}
		if hi >= total {
			break // final epoch: no Observe, nothing left to recoup
		}

		// Tally this epoch's accesses in a separate O(chunk) pass, off
		// the replay hot loop.
		if batched {
			for i := lo; i < hi; i++ {
				if kinds[i] == uint8(kvstore.Read) {
					reads[keys[i]]++
				} else {
					writes[keys[i]]++
				}
			}
		} else {
			for _, op := range ops[lo:hi] {
				if op.Kind == kvstore.Read {
					reads[op.Key]++
				} else {
					writes[op.Key]++
				}
			}
		}

		moves := obsv.Observe(server.EpochStats{
			Epoch: epoch, Ops: hi - lo,
			Reads: reads, Writes: writes,
			Tiers: d.RecordTiers(),
		})
		row := EpochTraffic{Epoch: epoch}
		if len(moves) > 0 {
			res := d.ApplyMoves(moves)
			row.Moves, row.Bytes, row.CostNs = res.Moves, res.Bytes, res.CostNs
			tel.moves += res.Moves
			tel.bytes += res.Bytes
			tel.costNs += res.CostNs
			if budget > 0 && d.Clock()-start > budget {
				tel.traffic = append(tel.traffic, row)
				return tel, fmt.Errorf("%w after %d/%d requests (simulated %v > budget %v)",
					ErrRunTimeout, hi, total, d.Clock()-start, budget)
			}
		}
		tel.traffic = append(tel.traffic, row)

		// The observer borrows the slices during Observe only; zero them
		// for the next epoch.
		for i := range reads {
			reads[i] = 0
		}
		for i := range writes {
			writes[i] = 0
		}
	}
	if crashAt >= 0 {
		return tel, d.CrashError()
	}
	return tel, nil
}
