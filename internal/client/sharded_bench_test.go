package client

import (
	"context"
	"fmt"
	"testing"

	"mnemo/internal/server"
)

// BenchmarkReplaySharded measures one full trace replay per iteration
// across cluster sizes — the benchgate scaling family. Each iteration
// rewinds the cluster (ResetRun snapshot free-list) and replays the
// partitioned trace through runSharded, so the measured work is exactly
// the steady-state multi-core replay: per-shard batched kernels plus
// the deterministic merge. On a multi-core host Shards4 should beat
// Shards1 by the core count (less merge overhead); on a single-core
// host the ratio is ~1 and the benchgate family pins it there.
func BenchmarkReplaySharded(b *testing.B) {
	w := benchWorkload(b)
	recs := w.Dataset.Records
	half := len(recs) / 2
	fastIdx := make([]int, half)
	for i := 0; i < half; i++ {
		fastIdx[i] = i
	}
	p := server.FastIndices(fastIdx, len(recs))
	perOp := func(b *testing.B) {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(w.Ops)), "ns/req")
	}
	ctx := context.Background()
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("Shards%d", shards), func(b *testing.B) {
			cfg := server.DefaultConfig(server.RedisLike, 42)
			cfg.Shards = shards
			sd, err := server.NewShardedDeployment(cfg, w)
			if err != nil {
				b.Fatal(err)
			}
			if err := sd.Load(p); err != nil {
				b.Fatal(err)
			}
			if !sd.Reusable() {
				b.Fatal("cluster not snapshot-resettable")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !sd.ResetRun(cfg.Seed) {
					b.Fatal("reset failed")
				}
				if _, err := runSharded(ctx, cfg, sd, Policy{}); err != nil {
					b.Fatal(err)
				}
			}
			perOp(b)
		})
	}
}
