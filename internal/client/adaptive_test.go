package client

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"mnemo/internal/memsim"
	"mnemo/internal/server"
	"mnemo/internal/ycsb"
)

// greedySource is a self-contained adaptive policy for client tests: at
// every epoch boundary it promotes the most-read slow record and demotes
// the least-read fast record (a minimal hot/cold chaser, no registry
// dependency).
type greedySource struct{}

type greedyObserver struct{}

func (greedySource) Begin(*ycsb.Workload) (server.EpochObserver, error) {
	return greedyObserver{}, nil
}

func (greedyObserver) Observe(s server.EpochStats) []server.Move {
	hotSlow, coldFast := -1, -1
	for i := range s.Reads {
		n := s.Reads[i] + s.Writes[i]
		if s.Tiers[i] == memsim.Slow {
			if hotSlow < 0 || n > s.Reads[hotSlow]+s.Writes[hotSlow] {
				hotSlow = i
			}
		} else if coldFast < 0 || n < s.Reads[coldFast]+s.Writes[coldFast] {
			coldFast = i
		}
	}
	if hotSlow < 0 || coldFast < 0 {
		return nil
	}
	return []server.Move{
		{Index: coldFast, To: memsim.Slow},
		{Index: hotSlow, To: memsim.Fast},
	}
}

// adaptiveTestWorkload keeps sizes uniform (1 KiB) so swap moves always
// fit, and spans several 4096-op epochs.
func adaptiveTestWorkload(readRatio float64) *ycsb.Workload {
	return ycsb.MustGenerate(ycsb.Spec{
		Name: "adapttest", Keys: 500, Requests: 20_000,
		Dist:      ycsb.DistSpec{Kind: ycsb.Hotspot, HotSetFraction: 0.2, HotOpnFraction: 0.9},
		ReadRatio: readRatio, Sizes: ycsb.SizeFixed1KB, Seed: 11,
	})
}

func halfFast(w *ycsb.Workload) server.Placement {
	n := len(w.Dataset.Records)
	idx := make([]int, 0, n/2)
	for i := n / 2; i < n; i++ {
		idx = append(idx, i)
	}
	return server.FastIndices(idx, n)
}

// TestAdaptiveEpochZeroIdentity pins the zero-value guarantee: a config
// carrying an adaptive source with EpochOps = 0 (and non-zero migration
// knobs, which must stay inert) is byte-identical to the plain static
// path.
func TestAdaptiveEpochZeroIdentity(t *testing.T) {
	w := adaptiveTestWorkload(0.9)
	p := halfFast(w)
	base, err := Execute(server.DefaultConfig(server.RedisLike, 7), w, p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := server.DefaultConfig(server.RedisLike, 7)
	cfg.Adaptive = greedySource{}
	cfg.EpochOps = 0
	cfg.MigrationCostPerByte = 5
	cfg.MigrationBudget = 1 << 20
	got, err := Execute(cfg, w, p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, got) {
		t.Fatalf("EpochOps=0 diverged from the static path:\nstatic   %+v\nadaptive %+v", base, got)
	}
}

// TestAdaptiveBatchedMatchesPerOp pins the patched-table kernel against
// the per-op reference: the same adaptive run must be bit-identical on
// both replay paths, migrations included.
func TestAdaptiveBatchedMatchesPerOp(t *testing.T) {
	w := adaptiveTestWorkload(0.9)
	p := halfFast(w)
	cfg := server.DefaultConfig(server.RedisLike, 7)
	cfg.Adaptive = greedySource{}
	cfg.EpochOps = 4096
	cfg.MigrationCostPerByte = 0.5
	batched, err := Execute(cfg, w, p)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DisableBatchReplay = true
	perOp, err := Execute(cfg, w, p)
	if err != nil {
		t.Fatal(err)
	}
	if batched.Epochs == 0 || batched.MovesApplied == 0 {
		t.Fatalf("adaptive run did not adapt: %+v", batched)
	}
	if !reflect.DeepEqual(batched, perOp) {
		t.Fatalf("batched and per-op adaptive runs diverged:\nbatched %+v\nper-op  %+v", batched, perOp)
	}
}

// TestAdaptiveTelemetry checks the migration ledger adds up: epoch count
// covers the trace, per-epoch traffic sums to the run totals, and the
// simulated cost charge matches bytes × cost.
func TestAdaptiveTelemetry(t *testing.T) {
	w := adaptiveTestWorkload(0.9)
	cfg := server.DefaultConfig(server.RedisLike, 7)
	cfg.Adaptive = greedySource{}
	cfg.EpochOps = 4096
	cfg.MigrationCostPerByte = 2
	st, err := Execute(cfg, w, halfFast(w))
	if err != nil {
		t.Fatal(err)
	}
	if want := (len(w.Ops) + 4095) / 4096; st.Epochs != want {
		t.Fatalf("epochs %d, want %d", st.Epochs, want)
	}
	var moves int
	var bytes int64
	var cost float64
	for _, e := range st.EpochTraffic {
		moves += e.Moves
		bytes += e.Bytes
		cost += e.CostNs
	}
	if moves != st.MovesApplied || bytes != st.MigratedBytes || cost != st.MigrationNs {
		t.Fatalf("ledger mismatch: traffic %d/%d/%v vs totals %d/%d/%v",
			moves, bytes, cost, st.MovesApplied, st.MigratedBytes, st.MigrationNs)
	}
	if want := float64(st.MigratedBytes) * 2; st.MigrationNs != want {
		t.Fatalf("migration cost %v ns, want %v", st.MigrationNs, want)
	}
	if st.MovesApplied == 0 {
		t.Fatal("greedy source never moved anything")
	}
	// The final epoch ends the run; no boundary migration after it.
	if len(st.EpochTraffic) >= st.Epochs {
		t.Fatalf("%d traffic rows for %d epochs — the last epoch has no boundary", len(st.EpochTraffic), st.Epochs)
	}
}

// dropTableObserver invalidates the deployment's batched kernel at the
// first epoch boundary — modeling a mid-run patch failure whose rebuild
// fails too — and otherwise behaves exactly like greedyObserver, so a
// dropped run stays move-for-move comparable to an undropped one.
type dropTableObserver struct{ d *server.Deployment }

func (o *dropTableObserver) Begin(*ycsb.Workload) (server.EpochObserver, error) { return o, nil }

func (o *dropTableObserver) Observe(s server.EpochStats) []server.Move {
	o.d.DropBatchTable()
	return greedyObserver{}.Observe(s)
}

// TestAdaptiveFallbackMidRun is the regression for the batched→per-op
// fallback: when the batch table disappears at an epoch boundary, the
// remaining epochs must replay (and tally) the per-op trace — the
// pre-fix code sliced a nil ops slice and panicked — and the run must
// stay bit-identical to an all-per-op run making the same moves.
func TestAdaptiveFallbackMidRun(t *testing.T) {
	w := adaptiveTestWorkload(0.9)
	p := halfFast(w)
	cfg := server.DefaultConfig(server.RedisLike, 7)
	cfg.EpochOps = 4096
	cfg.MigrationCostPerByte = 0.5
	src := &dropTableObserver{}
	cfg.Adaptive = src
	d := server.NewDeployment(cfg)
	if err := d.Load(w.Dataset, p); err != nil {
		t.Fatal(err)
	}
	src.d = d
	if d.BatchTable() == nil {
		t.Fatal("deployment is not batch-capable; the fallback cannot be exercised")
	}
	got, err := RunCtx(context.Background(), d, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.BatchTable() != nil {
		t.Fatal("batch table survived the drop")
	}
	if want := (len(w.Ops) + 4095) / 4096; got.Epochs != want {
		t.Fatalf("fallback run covered %d epochs, want %d", got.Epochs, want)
	}
	if got.MovesApplied == 0 {
		t.Fatal("no moves applied after the fallback — post-drop epochs were not observed")
	}

	refCfg := server.DefaultConfig(server.RedisLike, 7)
	refCfg.EpochOps = 4096
	refCfg.MigrationCostPerByte = 0.5
	refCfg.Adaptive = greedySource{}
	refCfg.DisableBatchReplay = true
	ref, err := Execute(refCfg, w, p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatalf("fallback run diverged from the all-per-op reference:\nfallback %+v\nper-op   %+v", got, ref)
	}
}

// TestAdaptiveFallbackRespectsCrash: a run that falls back mid-run must
// still honor its scheduled crash point — the per-op trace carries the
// same truncation as the batched one, so the crash fires at the same
// request index instead of the fallback replaying past it.
func TestAdaptiveFallbackRespectsCrash(t *testing.T) {
	w := adaptiveTestWorkload(0.9)
	p := halfFast(w)
	base := server.DefaultConfig(server.RedisLike, 7)
	base.EpochOps = 4096
	base.Fault = server.FaultSpec{Seed: 3, CrashProb: 1, StallWindowOps: len(w.Ops)}

	// The crash index is rolled from the run seed; probe for one that
	// lands after the first epoch boundary, so the table drop (and the
	// fallback) happens before the crash fires.
	seed := int64(-1)
	for s := int64(0); s < 64; s++ {
		cfg := base
		cfg.Seed = s
		if at := server.NewDeployment(cfg).CrashOp(); at > 2*4096 && at < len(w.Ops) {
			seed = s
			break
		}
	}
	if seed < 0 {
		t.Fatal("no probe seed rolled a crash past the first epoch")
	}

	cfg := base
	cfg.Seed = seed
	src := &dropTableObserver{}
	cfg.Adaptive = src
	d := server.NewDeployment(cfg)
	if err := d.Load(w.Dataset, p); err != nil {
		t.Fatal(err)
	}
	src.d = d
	if d.BatchTable() == nil {
		t.Fatal("deployment is not batch-capable; the fallback cannot be exercised")
	}
	_, err := RunCtx(context.Background(), d, w, 0)
	var fe *server.FaultError
	if !errors.As(err, &fe) || fe.Kind != server.FaultCrash {
		t.Fatalf("fallback run returned %v, want an injected crash", err)
	}
	if d.BatchTable() != nil {
		t.Fatal("batch table survived the drop")
	}
}

// TestAdaptiveDeploymentNotReused: a migrated deployment's placement no
// longer matches the requested one, so the execute-reuse fast path must
// rebuild rather than replay on it.
func TestAdaptiveDeploymentNotReused(t *testing.T) {
	w := adaptiveTestWorkload(1.0)
	cfg := server.DefaultConfig(server.RedisLike, 7)
	cfg.Adaptive = greedySource{}
	cfg.EpochOps = 4096
	st, d, err := executeFresh(context.Background(), cfg, w, halfFast(w))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Migrated() {
		t.Fatalf("adaptive run never migrated: %+v", st)
	}
	// A migrated deployment's placement no longer matches the requested
	// one; the execute-reuse fast path must rebuild, not replay on it.
	if canReuse(d, w) {
		t.Fatal("migrated deployment offered for snapshot reuse")
	}
	// Repetition sweeps therefore fold independent migrated runs; the
	// telemetry counters sum across them.
	mean, err := ExecuteMean(cfg, w, halfFast(w), 2)
	if err != nil {
		t.Fatal(err)
	}
	if mean.Epochs != 2*st.Epochs {
		t.Fatalf("mean of 2 runs folded %d epochs, want %d", mean.Epochs, 2*st.Epochs)
	}
}

// TestAdaptiveRespectsContext: cancellation still lands between blocks
// on the epoch-chunked path.
func TestAdaptiveRespectsContext(t *testing.T) {
	w := adaptiveTestWorkload(1.0)
	cfg := server.DefaultConfig(server.RedisLike, 7)
	cfg.Adaptive = greedySource{}
	cfg.EpochOps = 4096
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ExecuteCtx(ctx, cfg, w, halfFast(w)); err == nil {
		t.Fatal("cancelled adaptive run returned no error")
	}
}
