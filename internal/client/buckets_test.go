package client

import (
	"testing"
	"testing/quick"

	"mnemo/internal/server"
	"mnemo/internal/ycsb"
)

func TestSizeBucket(t *testing.T) {
	cases := map[int]int{
		0:    0,
		-5:   0,
		1:    1,
		2:    2,
		3:    2,
		4:    3,
		1024: 11,
		1025: 11,
	}
	for size, want := range cases {
		if got := SizeBucket(size); got != want {
			t.Errorf("SizeBucket(%d) = %d, want %d", size, got, want)
		}
	}
}

func TestBucketRangeRoundTrip(t *testing.T) {
	f := func(raw uint16) bool {
		size := int(raw) + 1
		b := SizeBucket(size)
		lo, hi := BucketRange(b)
		return size >= lo && size < hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if lo, hi := BucketRange(0); lo != 0 || hi != 1 {
		t.Errorf("BucketRange(0) = %d,%d", lo, hi)
	}
}

func TestBucketAccum(t *testing.T) {
	a := &histAccum{}
	a.add(SizeBucket(1000), 10)
	a.add(SizeBucket(1020), 30)
	a.add(SizeBucket(100_000), 500)
	bs := a.bucketStats()
	if len(bs) != 2 {
		t.Fatalf("buckets = %d, want 2", len(bs))
	}
	if bs[0].Bucket >= bs[1].Bucket {
		t.Fatal("buckets not sorted")
	}
	if m, ok := MeanFor(bs, SizeBucket(1000)); !ok || m != 20 {
		t.Fatalf("small bucket mean = %v, %v", m, ok)
	}
	if _, ok := MeanFor(bs, 99); ok {
		t.Fatal("missing bucket found")
	}
}

func TestMergeBuckets(t *testing.T) {
	a := []BucketStat{{Bucket: 10, Count: 2, MeanNs: 10}, {Bucket: 11, Count: 1, MeanNs: 100}}
	b := []BucketStat{{Bucket: 10, Count: 2, MeanNs: 30}, {Bucket: 17, Count: 4, MeanNs: 7}}
	m := mergeBuckets(a, b)
	if len(m) != 3 {
		t.Fatalf("merged = %d buckets", len(m))
	}
	if v, _ := MeanFor(m, 10); v != 20 {
		t.Fatalf("weighted mean = %v, want 20", v)
	}
	if v, _ := MeanFor(m, 17); v != 7 {
		t.Fatalf("disjoint bucket lost: %v", v)
	}
	for i := 1; i < len(m); i++ {
		if m[i-1].Bucket >= m[i].Bucket {
			t.Fatal("merged buckets not sorted")
		}
	}
}

func TestRunStatsCarryBuckets(t *testing.T) {
	w := ycsb.MustGenerate(ycsb.Spec{
		Name: "buckets", Keys: 200, Requests: 2000,
		Dist:      ycsb.DistSpec{Kind: ycsb.Uniform},
		ReadRatio: 0.5, Sizes: ycsb.SizeTrendingPreview, Seed: 2,
	})
	st, err := Execute(server.DefaultConfig(server.RedisLike, 1), w, server.AllSlow())
	if err != nil {
		t.Fatal(err)
	}
	if len(st.ReadBuckets) < 2 || len(st.WriteBuckets) < 2 {
		t.Fatalf("mixed-size run produced %d read / %d write buckets",
			len(st.ReadBuckets), len(st.WriteBuckets))
	}
	// Counts must sum to the op counts.
	sum := 0
	for _, b := range st.ReadBuckets {
		sum += b.Count
	}
	if sum != st.Reads {
		t.Fatalf("read bucket counts %d != reads %d", sum, st.Reads)
	}
	// Larger buckets cost more on SlowMem.
	first, last := st.ReadBuckets[0], st.ReadBuckets[len(st.ReadBuckets)-1]
	if last.MeanNs <= first.MeanNs {
		t.Errorf("big-record bucket %.0fns not above small %.0fns", last.MeanNs, first.MeanNs)
	}
}
