package client

import (
	"math/bits"
	"sort"
)

// BucketStat is the average service time observed for requests whose
// record size falls in one power-of-two bucket. The size-aware estimate
// extension (internal/core, SizeAware option) consumes these instead of
// the paper's single global average, which repairs the estimate's
// systematic bias on workloads whose FastMem/SlowMem split is
// size-skewed (e.g. MnemoT orderings over mixed record sizes).
type BucketStat struct {
	// Bucket is the power-of-two class: records of size s fall in bucket
	// bits.Len(s), i.e. bucket b covers [2^(b-1), 2^b).
	Bucket int
	Count  int
	MeanNs float64
}

// SizeBucket returns the bucket index for a record size.
func SizeBucket(size int) int {
	if size <= 0 {
		return 0
	}
	return bits.Len(uint(size))
}

// BucketRange reports the [lo, hi) size range of a bucket.
func BucketRange(bucket int) (lo, hi int) {
	if bucket <= 0 {
		return 0, 1
	}
	return 1 << (bucket - 1), 1 << bucket
}

// MeanFor returns the mean service time of the bucket, or (0, false) if
// the bucket was never observed.
func MeanFor(bs []BucketStat, bucket int) (float64, bool) {
	for _, b := range bs {
		if b.Bucket == bucket {
			return b.MeanNs, true
		}
	}
	return 0, false
}

// mergeBuckets combines two per-bucket breakdowns with count-weighted
// means (used when averaging repeated runs).
func mergeBuckets(a, b []BucketStat) []BucketStat {
	byBucket := map[int]BucketStat{}
	for _, s := range a {
		byBucket[s.Bucket] = s
	}
	for _, s := range b {
		if prev, ok := byBucket[s.Bucket]; ok {
			n := prev.Count + s.Count
			if n > 0 {
				prev.MeanNs = (prev.MeanNs*float64(prev.Count) + s.MeanNs*float64(s.Count)) / float64(n)
			}
			prev.Count = n
			byBucket[s.Bucket] = prev
		} else {
			byBucket[s.Bucket] = s
		}
	}
	out := make([]BucketStat, 0, len(byBucket))
	for _, s := range byBucket {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bucket < out[j].Bucket })
	return out
}
